// Package primecache is a library reproduction of Yang & Wu, "A Novel
// Cache Design for Vector Processing" (ISCA 1992): the prime-mapped vector
// cache, its Mersenne address-generation datapath, the conventional cache
// organisations it is compared against, the interleaved-memory machine
// models, the paper's analytical performance model, and the experiment
// harness that regenerates every figure of the evaluation.
//
// The root package is a facade over the implementation packages:
//
//   - Cache simulation and the prime-mapped device: NewPrimeCache,
//     NewDirectCache, NewSetAssocCache, NewFullyAssocCache (vector-level
//     API with strided loads, interference attribution, and adder-cost
//     accounting).
//   - Analytical model: Machine, Workload (the paper's VCM tuple),
//     DirectGeometry/PrimeGeometry, and the CyclesPerResult* evaluators.
//   - Experiments: Figures, SubblockTable, CrossCheckTable, SummaryTable.
//
// A minimal session:
//
//	vc, _ := primecache.NewPrimeCache(13) // 8191 lines, the paper's size
//	res, _ := vc.LoadVector(0, 512, 4096, 1)
//	fmt.Println(res.Misses, vc.Stats())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package primecache

import (
	"primecache/internal/blocking"
	"primecache/internal/cache"
	"primecache/internal/core"
	"primecache/internal/experiments"
	"primecache/internal/report"
	"primecache/internal/vcm"
	"primecache/internal/workloads"
)

// VectorCache is the vector-level cache device (see internal/core).
type VectorCache = core.VectorCache

// VectorResult summarises one vector operation.
type VectorResult = core.VectorResult

// Stats is the cache statistics record, including the three-C miss split
// and self/cross interference attribution.
type Stats = cache.Stats

// Policy selects a set-associative replacement policy.
type Policy = cache.Policy

// Access is one memory reference presented to a cache (byte address,
// read/write, stream id).
type Access = cache.Access

// Cache is the low-level set-associative cache simulator behind
// VectorCache, for callers that drive raw references.
type Cache = cache.Cache

// Replacement policies.
const (
	LRU    = cache.LRU
	FIFO   = cache.FIFO
	Random = cache.Random
)

// NewPrimeCache returns the paper's design: a prime-mapped vector cache of
// 2^c − 1 one-word lines (c ∈ {2,3,5,7,13,17,19,31}). The paper's
// configuration is c = 13.
func NewPrimeCache(c uint) (*VectorCache, error) { return core.NewPrime(c) }

// NewDirectCache returns a direct-mapped vector cache of lines lines (a
// power of two).
func NewDirectCache(lines int) (*VectorCache, error) { return core.NewDirect(lines) }

// NewSetAssocCache returns an n-way set-associative baseline.
func NewSetAssocCache(lines, ways int, policy Policy) (*VectorCache, error) {
	return core.NewSetAssoc(lines, ways, policy)
}

// NewFullyAssocCache returns a fully-associative LRU baseline.
func NewFullyAssocCache(lines int) (*VectorCache, error) { return core.NewFullyAssoc(lines) }

// SkewedCache is the two-way skewed-associative (XOR-hashed) baseline.
type SkewedCache = cache.SkewedCache

// NewSkewedCache returns a two-way skewed-associative cache of lines
// lines — conflict dispersion by hashing, the historical alternative to
// conflict elimination by prime mapping.
func NewSkewedCache(lines int) (*SkewedCache, error) { return cache.NewSkewed(lines) }

// PrefetchCache front-ends a cache with a Fu & Patel prefetcher.
type PrefetchCache = cache.PrefetchCache

// Prefetching schemes.
const (
	PrefetchSequential = cache.PrefetchSequential
	PrefetchStride     = cache.PrefetchStride
)

// NewPrefetchDirectCache returns a direct-mapped cache of lines lines
// front-ended by the given prefetcher fetching degree lines ahead.
func NewPrefetchDirectCache(lines int, kind cache.PrefetchKind, degree int) (*PrefetchCache, error) {
	c, err := cache.NewDirect(lines)
	if err != nil {
		return nil, err
	}
	return cache.NewPrefetchCache(c, kind, degree)
}

// Machine is the analytical machine model (M banks, t_m, MVL).
type Machine = vcm.Machine

// Workload is the paper's seven-tuple vector computation model.
type Workload = vcm.VCM

// CacheGeometry selects the CC-model cache for the analytical model.
type CacheGeometry = vcm.CacheGeom

// DefaultMachine returns the paper's machine parameters (MVL = 64,
// T_start = 30 + t_m).
func DefaultMachine(banks, tm int) Machine { return vcm.DefaultMachine(banks, tm) }

// DefaultWorkload returns the random-stride figure workload (R = B,
// P_ds = P_stride1 = 0.25).
func DefaultWorkload(b int) Workload { return vcm.DefaultVCM(b) }

// DirectGeometry returns a direct-mapped analytical cache of 2^c lines.
func DirectGeometry(c uint) CacheGeometry { return vcm.DirectGeom(c) }

// PrimeGeometry returns a prime-mapped analytical cache of 2^c − 1 lines.
func PrimeGeometry(c uint) CacheGeometry { return vcm.PrimeGeom(c) }

// CyclesPerResultMM evaluates the cacheless machine model (Eqs. 1–3).
func CyclesPerResultMM(m Machine, w Workload, n int) float64 {
	return vcm.CyclesPerResultMM(m, w, n)
}

// CyclesPerResultCC evaluates the cache machine model (Eqs. 4–8).
func CyclesPerResultCC(g CacheGeometry, m Machine, w Workload, n int) float64 {
	return vcm.CyclesPerResultCC(g, m, w, n)
}

// MaxConflictFreeBlock returns the §4 conflict-free sub-block (b1, b2) of
// a matrix with leading dimension p for a prime cache of c lines.
func MaxConflictFreeBlock(c, p int) (b1, b2 int, err error) {
	return vcm.MaxConflictFreeBlock(c, p)
}

// Figure is one reproduced evaluation figure.
type Figure = experiments.Figure

// Table is a renderable result table.
type Table = report.Table

// Figures regenerates every figure of the paper's evaluation.
func Figures() []Figure { return experiments.All() }

// SubblockTable regenerates the §4 sub-block demonstration.
func SubblockTable() *Table { return experiments.SubblockTable() }

// CrossCheckTable compares the analytic model against the cycle-level
// simulator.
func CrossCheckTable() *Table { return experiments.CrossCheck() }

// SummaryTable reports the headline paper-versus-measured ratios.
func SummaryTable() *Table { return experiments.Summary() }

// ProblemSizeTable regenerates the Lam-style problem-size sensitivity
// study (fixed vs §4-adaptive blocking across leading dimensions).
func ProblemSizeTable() *Table { return experiments.ProblemSizeTable() }

// LineSizeTable regenerates the §2.2 line-size/pollution study.
func LineSizeTable() *Table { return experiments.LineSizeTable() }

// PrefetchTable regenerates the Fu & Patel prefetching comparison.
func PrefetchTable() *Table { return experiments.PrefetchTable() }

// PrimeMemoryTable regenerates the prime-banked-memory comparison (the
// §2.3 Budnik–Kuck/BSP lineage).
func PrimeMemoryTable() *Table { return experiments.PrimeMemoryTable() }

// AssociativityTable regenerates the §2.1 associativity study.
func AssociativityTable() *Table { return experiments.AssociativityTable() }

// MultiStreamTable regenerates the Bailey multi-stream bank-contention
// study cited in §1.
func MultiStreamTable() *Table { return experiments.MultiStreamTable() }

// WritePolicyTable regenerates the write-through/write-back traffic
// comparison behind the paper's write-buffer assumption.
func WritePolicyTable() *Table { return experiments.WritePolicyTable() }

// CacheSizeTable regenerates the cache-size design-space sweep.
func CacheSizeTable() *Table { return experiments.CacheSizeTable() }

// ReplacementTable regenerates the §2.1 replacement-policy study (LRU vs
// FIFO vs Random vs prime on cyclic vector reuse).
func ReplacementTable() *Table { return experiments.ReplacementTable() }

// AlgorithmTable evaluates the paper's §3.1 named algorithm presets on
// the three machines.
func AlgorithmTable() *Table { return experiments.AlgorithmTable() }

// MatMulWorkload, LUWorkload and FFTWorkload return the §3.1 presets.
func MatMulWorkload(b int) (Workload, error) { return vcm.MatMulVCM(b) }

// LUWorkload returns the blocked-LU preset (R = 3b/2).
func LUWorkload(b int) (Workload, error) { return vcm.LUVCM(b) }

// FFTWorkload returns the blocked-FFT preset (R = log2 b).
func FFTWorkload(b int) (Workload, error) { return vcm.FFTVCM(b) }

// KernelTable runs the kernel benchmark suite across cache organisations.
func KernelTable() *Table { return experiments.KernelTable() }

// BlockChoice is a blocking recommendation from ChooseBlocking.
type BlockChoice = blocking.Choice

// ChooseBlocking recommends a sub-block shape for a matrix with leading
// dimension p on cache geometry g, capping the footprint at maxWords
// (0 = whole cache). For prime-mapped geometries the §4 recipe applies
// to every leading dimension; bit-selection geometries degrade to
// single-column blocks when p is a multiple of the set count.
func ChooseBlocking(g CacheGeometry, p, maxWords int) (BlockChoice, error) {
	return blocking.Choose(g, p, maxWords)
}

// Matrix is a column-major matrix bound to a word address range, usable
// as an operand of the blocked kernels.
type Matrix = workloads.Matrix

// Memory receives kernel memory references; (*VectorCache).Cache()
// satisfies it, as does any cache built by this package.
type Memory = workloads.Memory

// NewMatrix allocates a rows×cols zero matrix based at word address
// baseWord.
func NewMatrix(rows, cols int, baseWord uint64) *Matrix {
	return workloads.NewMatrix(rows, cols, baseWord)
}

// NewMatrixLD allocates a rows×cols matrix addressed as a sub-block of a
// larger array with leading dimension ld.
func NewMatrixLD(rows, cols, ld int, baseWord uint64) *Matrix {
	return workloads.NewMatrixLD(rows, cols, ld, baseWord)
}

// BlockedMatMul computes c = a·b with blk×blk blocking, tracing every
// reference into mem (nil to skip tracing).
func BlockedMatMul(a, b, c *Matrix, blk int, mem Memory) error {
	return workloads.BlockedMatMul(a, b, c, blk, mem)
}

// BlockedLU factors a in place (no pivoting) with blocked elimination.
func BlockedLU(a *Matrix, blk int, mem Memory) error {
	return workloads.BlockedLU(a, blk, mem)
}

// FFT2D performs the §4 blocked (four-step) FFT of x viewed as a B2×B1
// column-major matrix; the DFT appears in transposed order.
func FFT2D(x []complex128, b1, b2 int, baseWord uint64, mem Memory) error {
	return workloads.FFT2D(x, b1, b2, baseWord, mem)
}

// SAXPY computes y ← α·x + y with the given word strides, tracing the
// double-stream access pattern.
func SAXPY(alpha float64, x, y []float64, baseX, baseY uint64, strideX, strideY int64, n int, mem Memory) error {
	return workloads.SAXPY(alpha, x, y, baseX, baseY, strideX, strideY, n, mem)
}
