module primecache

go 1.22
