package primecache

import "testing"

func TestFacadeConstructors(t *testing.T) {
	if _, err := NewPrimeCache(13); err != nil {
		t.Errorf("NewPrimeCache: %v", err)
	}
	if _, err := NewDirectCache(8192); err != nil {
		t.Errorf("NewDirectCache: %v", err)
	}
	if _, err := NewSetAssocCache(8192, 4, LRU); err != nil {
		t.Errorf("NewSetAssocCache: %v", err)
	}
	if _, err := NewFullyAssocCache(64); err != nil {
		t.Errorf("NewFullyAssocCache: %v", err)
	}
	if _, err := NewPrimeCache(12); err == nil {
		t.Error("composite exponent accepted")
	}
}

func TestFacadeQuickstartFlow(t *testing.T) {
	vc, err := NewPrimeCache(13)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		if _, err := vc.LoadVector(0, 512, 4096, 1); err != nil {
			t.Fatal(err)
		}
	}
	s := vc.Stats()
	if s.Hits != 4096 || s.Conflict != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFacadeAnalyticModel(t *testing.T) {
	m := DefaultMachine(64, 64)
	w := DefaultWorkload(4096)
	const n = 1 << 20
	mm := CyclesPerResultMM(m, w, n)
	dir := CyclesPerResultCC(DirectGeometry(13), m, w, n)
	prm := CyclesPerResultCC(PrimeGeometry(13), m, w, n)
	if !(prm < dir && dir < mm) {
		t.Errorf("ordering: prime %v direct %v mm %v", prm, dir, mm)
	}
}

func TestFacadeSubblock(t *testing.T) {
	b1, b2, err := MaxConflictFreeBlock(8191, 10000)
	if err != nil || b1 != 1809 || b2 != 4 {
		t.Errorf("MaxConflictFreeBlock = (%d,%d,%v)", b1, b2, err)
	}
}

func TestFacadeExperimentEntryPoints(t *testing.T) {
	if figs := Figures(); len(figs) != 9 {
		t.Errorf("Figures returned %d figures, want 9", len(figs))
	}
	if SubblockTable().Rows() == 0 {
		t.Error("SubblockTable empty")
	}
	if SummaryTable().Rows() == 0 {
		t.Error("SummaryTable empty")
	}
}

func TestFacadeAlternativeOrganisations(t *testing.T) {
	sk, err := NewSkewedCache(8192)
	if err != nil {
		t.Fatal(err)
	}
	sk.Access(Access{Addr: 0, Stream: 1})
	if sk.Stats().Accesses != 1 {
		t.Error("skewed access not counted")
	}
	pf, err := NewPrefetchDirectCache(8192, PrefetchStride, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		pf.Access(Access{Addr: i * 13 * 8, Stream: 1})
	}
	if pf.PrefetchStats().Issued == 0 {
		t.Error("stride prefetcher never armed")
	}
	if _, err := NewSkewedCache(100); err == nil {
		t.Error("bad skewed size accepted")
	}
	if _, err := NewPrefetchDirectCache(100, PrefetchStride, 2); err == nil {
		t.Error("bad prefetch base accepted")
	}
}

func TestFacadeBlocking(t *testing.T) {
	ch, err := ChooseBlocking(PrimeGeometry(13), 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ch.ConflictFree || ch.B1 != 1809 {
		t.Errorf("choice = %+v", ch)
	}
}

func TestFacadeExtensionTables(t *testing.T) {
	for name, tab := range map[string]*Table{
		"problemsize": ProblemSizeTable(),
		"linesize":    LineSizeTable(),
		"prefetch":    PrefetchTable(),
		"primemem":    PrimeMemoryTable(),
		"assoc":       AssociativityTable(),
		"multistream": MultiStreamTable(),
		"writepolicy": WritePolicyTable(),
		"cachesize":   CacheSizeTable(),
	} {
		if tab.Rows() == 0 {
			t.Errorf("%s table empty", name)
		}
	}
}
