// Command vcached is the long-running simulation service: it serves
// cache simulations and VCM analytic-model evaluations over HTTP/JSON,
// with a worker pool bounding concurrent compute, an LRU memoizer
// deduplicating repeated configurations, an admission valve shedding
// load beyond a bounded backlog, and a metrics endpoint.
//
//	vcached -addr :8372
//
// Endpoints:
//
//	POST /v1/simulate  {"cache":{"kind":"prime","c":13},
//	                    "pattern":{"name":"strided","stride":512,"n":4096},
//	                    "passes":4}
//	POST /v1/model     {"banks":64,"tm":64,"b":4096}
//	POST /v1/sweep     {"jobs":[{"model":{...}},{"simulate":{...}}, ...]}
//	GET  /v1/healthz
//	GET  /v1/stats
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests drain
// (bounded by -drain) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"primecache/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8372", "listen address (port 0 picks a free port, logged at startup)")
		workers = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		memo    = flag.Int("memo", 4096, "memoization cache entries (negative disables)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request compute timeout (0 disables)")
		drain   = flag.Duration("drain", time.Minute, "graceful-shutdown drain limit")

		maxRefs   = flag.Int("max-refs", 0, "max references one simulate job may issue (0 = default 64Mi)")
		maxJobs   = flag.Int("max-sweep-jobs", 0, "max jobs in one sweep batch (0 = default 4096)")
		maxBody   = flag.Int64("max-body", 0, "max request body bytes (0 = default 8MiB)")
		queue     = flag.Int("queue", 0, "admission backlog beyond the worker count; excess requests get 429 (0 = default 256, negative = none)")
		epLimit   = flag.Int("endpoint-limit", 0, "max concurrently admitted requests per endpoint (0 = global queue only)")
		degradeAt = flag.Float64("degrade-threshold", 0, "admission-pressure fraction at which qualifying jobs degrade to analytic answers (0 = default 0.75, negative disables)")
	)
	flag.Parse()

	reqTimeout := *timeout
	if reqTimeout == 0 {
		reqTimeout = -1 // Options treats 0 as "default"; <0 disables
	}
	srv := server.New(server.Options{
		Workers:        *workers,
		MemoEntries:    *memo,
		RequestTimeout: reqTimeout,
		Limits: server.Limits{
			MaxRefsPerJob: *maxRefs,
			MaxSweepJobs:  *maxJobs,
			MaxBodyBytes:  *maxBody,
		},
		QueueDepth:          *queue,
		EndpointConcurrency: *epLimit,
		DegradeThreshold:    *degradeAt,
	})

	// Listen before forking the serve goroutine so -addr :0 logs the port
	// actually bound — tooling (and the integration test) parses this line.
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("vcached: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	log.Printf("vcached listening on %s (workers=%d memo=%d timeout=%v queue=%d)",
		l.Addr(), *workers, *memo, *timeout, *queue)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("vcached: %v", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("vcached: signal received, draining (limit %v)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "vcached: shutdown:", err)
			os.Exit(1)
		}
		log.Print("vcached: drained, bye")
	}
}
