// Command vcached is the long-running simulation service: it serves
// cache simulations and VCM analytic-model evaluations over HTTP/JSON,
// with a worker pool bounding concurrent compute, an LRU memoizer
// deduplicating repeated configurations, an admission valve shedding
// load beyond a bounded backlog, and a metrics endpoint.
//
//	vcached -addr :8372
//
// Endpoints:
//
//	POST /v1/simulate  {"cache":{"kind":"prime","c":13},
//	                    "pattern":{"name":"strided","stride":512,"n":4096},
//	                    "passes":4}
//	POST /v1/model     {"banks":64,"tm":64,"b":4096}
//	POST /v1/sweep     {"jobs":[{"model":{...}},{"simulate":{...}}, ...]}
//	GET  /v1/healthz   liveness: 200 while the process serves
//	GET  /v1/readyz    readiness: 503 {"draining":true} once shutdown begins
//	GET  /v1/stats
//	GET  /metrics          Prometheus text exposition
//	GET  /v1/debug/traces  finished request traces (ring buffer; 404 with -trace-ring=0)
//
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/, kept off the service port so profiling endpoints are
// never reachable from the service's own network exposure.
//
// SIGINT/SIGTERM trigger a graceful shutdown: readiness fails first
// (for -drain-grace, while the listener still accepts), then in-flight
// requests drain (bounded by -drain) before the process exits.
//
// With -coordinator, vcached instead fronts a set of backend instances
// as a cluster coordinator: jobs are routed by canonical key over a
// consistent-hash ring, sweeps scatter across healthy backends and
// gather in input order, and a health checker plus per-job failover
// route around dead or draining backends:
//
//	vcached -addr :8370 -coordinator -backends=http://h1:8372,http://h2:8372,http://h3:8372
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"primecache/internal/cluster"
	"primecache/internal/obs"
	"primecache/internal/persist"
	"primecache/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8372", "listen address (port 0 picks a free port, logged at startup)")
		workers = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		memo    = flag.Int("memo", 4096, "memoization cache entries (negative disables)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request compute timeout (0 disables)")
		drain   = flag.Duration("drain", time.Minute, "graceful-shutdown drain limit")
		grace   = flag.Duration("drain-grace", time.Second, "readiness grace: how long /v1/readyz reports draining before the listener closes (0 disables)")

		maxRefs   = flag.Int("max-refs", 0, "max references one simulate job may issue (0 = default 64Mi)")
		maxJobs   = flag.Int("max-sweep-jobs", 0, "max jobs in one sweep batch (0 = default 4096)")
		maxBody   = flag.Int64("max-body", 0, "max request body bytes (0 = default 8MiB)")
		queue     = flag.Int("queue", 0, "admission backlog beyond the worker count; excess requests get 429 (0 = default 256, negative = none)")
		epLimit   = flag.Int("endpoint-limit", 0, "max concurrently admitted requests per endpoint (0 = global queue only)")
		degradeAt = flag.Float64("degrade-threshold", 0, "admission-pressure fraction at which qualifying jobs degrade to analytic answers (0 = default 0.75, negative disables)")

		persistDir      = flag.String("persist-dir", "", "directory for the disk-backed memo tier; restarts start warm from it (empty disables persistence)")
		persistMaxBytes = flag.Int64("persist-max-bytes", 0, "disk budget for the persist log; oldest segments are dropped beyond it (0 = default 256MiB, negative = unbounded)")

		debugAddr  = flag.String("debug-addr", "", "listen address for the pprof debug server (empty disables)")
		traceRing  = flag.Int("trace-ring", 256, "finished-trace ring capacity served at /v1/debug/traces (0 disables tracing)")
		traceEvery = flag.Int("trace-log-every", 0, "log every Nth finished trace as a structured line (0 disables trace logging)")

		coordinator = flag.Bool("coordinator", false, "run as a cluster coordinator over -backends instead of computing locally")
		backends    = flag.String("backends", "", "comma-separated backend base URLs (coordinator mode)")
		replicas    = flag.Int("replicas", 0, "distinct backends a job may be tried on, primary + failovers (0 = default 2)")
		probeEvery  = flag.Duration("probe-interval", 0, "backend readiness-probe period (0 = default 2s, negative disables)")
		probeLimit  = flag.Duration("probe-timeout", 0, "per-probe readiness timeout (0 = default 1s)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "floor on the hedge delay for single jobs (0 = default 50ms, negative disables hedging)")
		maxInflight = flag.Int("coordinator-inflight", 0, "coordinator admission capacity (0 = default 256, negative = unbounded)")
		adminToken  = flag.String("admin-token", "", "bearer token enabling the coordinator's /v1/admin membership API (empty keeps it off)")
	)
	flag.Parse()

	startDebugServer(*debugAddr)

	if *coordinator {
		runCoordinator(*addr, *backends, *replicas, *probeEvery, *probeLimit, *hedgeAfter, *maxInflight, *drain,
			*adminToken, newTracer("coordinator", *traceRing, *traceEvery))
		return
	}

	reqTimeout := *timeout
	if reqTimeout == 0 {
		reqTimeout = -1 // Options treats 0 as "default"; <0 disables
	}
	var store *persist.Store
	if *persistDir != "" {
		var err error
		store, err = persist.Open(persist.Options{Dir: *persistDir, MaxBytes: *persistMaxBytes})
		if err != nil {
			log.Fatalf("vcached: opening persist dir: %v", err)
		}
		st := store.Stats()
		log.Printf("vcached persist tier open: %d warm keys, %d segments, %d bytes (snapshot=%v torn=%d corrupt=%d)",
			st.Keys, st.Segments, st.DiskBytes, st.SnapshotRestore, st.TornTruncations, st.CorruptRecords)
	}
	srv := server.New(server.Options{
		Workers:        *workers,
		MemoEntries:    *memo,
		RequestTimeout: reqTimeout,
		Limits: server.Limits{
			MaxRefsPerJob: *maxRefs,
			MaxSweepJobs:  *maxJobs,
			MaxBodyBytes:  *maxBody,
		},
		QueueDepth:          *queue,
		EndpointConcurrency: *epLimit,
		DegradeThreshold:    *degradeAt,
		Persist:             store,
		Tracer:              newTracer("vcached", *traceRing, *traceEvery),
	})

	// Listen before forking the serve goroutine so -addr :0 logs the port
	// actually bound — tooling (and the integration test) parses this line.
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("vcached: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	log.Printf("vcached listening on %s (workers=%d memo=%d timeout=%v queue=%d)",
		l.Addr(), *workers, *memo, *timeout, *queue)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("vcached: %v", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("vcached: signal received, draining (limit %v)", *drain)
		if *grace > 0 {
			// Fail readiness while the listener still accepts, so
			// probes see the 503 {"draining":true} transition before
			// Shutdown closes the port out from under them.
			srv.BeginDrain()
			time.Sleep(*grace)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "vcached: shutdown:", err)
			os.Exit(1)
		}
		log.Print("vcached: drained, bye")
	}
}

// newTracer builds the process tracer from the -trace-* flags, nil
// when tracing is disabled. The origin names this process in stitched
// multi-process traces; hostname is appended when available so two
// cluster members stay distinguishable.
func newTracer(role string, ring, logEvery int) *obs.Tracer {
	if ring <= 0 {
		return nil
	}
	origin := role
	if host, err := os.Hostname(); err == nil && host != "" {
		origin = role + "@" + host
	}
	var logger *slog.Logger
	if logEvery > 0 {
		logger = slog.Default()
	}
	return obs.NewTracer(obs.TracerOptions{
		Origin:      origin,
		Capacity:    ring,
		Logger:      logger,
		SampleEvery: logEvery,
	})
}

// startDebugServer serves net/http/pprof on its own listener and mux —
// never the service mux, so profiling is only reachable on the
// (typically loopback-bound) debug address. No-op when addr is empty.
func startDebugServer(addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("vcached: debug listener: %v", err)
	}
	log.Printf("vcached debug server (pprof) listening on %s", l.Addr())
	go func() {
		if err := http.Serve(l, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("vcached: debug server: %v", err)
		}
	}()
}

// runCoordinator is the -coordinator mode: serve the cluster
// coordinator over the given backends until a signal arrives.
func runCoordinator(addr, backendList string, replicas int, probeEvery, probeLimit, hedgeAfter time.Duration, maxInflight int, drain time.Duration, adminToken string, tracer *obs.Tracer) {
	var urls []string
	for _, b := range strings.Split(backendList, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	if len(urls) == 0 {
		log.Fatal("vcached: -coordinator requires -backends=url1,url2,...")
	}
	coord, err := cluster.New(cluster.Options{
		Backends:      urls,
		Replicas:      replicas,
		ProbeInterval: probeEvery,
		ProbeTimeout:  probeLimit,
		HedgeAfter:    hedgeAfter,
		MaxInflight:   maxInflight,
		AdminToken:    adminToken,
		Tracer:        tracer,
	})
	if err != nil {
		log.Fatalf("vcached: %v", err)
	}
	defer coord.Close()

	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("vcached: %v", err)
	}
	httpSrv := &http.Server{Handler: coord.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(l) }()
	log.Printf("vcached coordinator listening on %s (backends=%d replicas=%d)", l.Addr(), len(urls), replicas)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("vcached: %v", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("vcached coordinator: signal received, draining (limit %v)", drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "vcached: shutdown:", err)
			os.Exit(1)
		}
		log.Print("vcached coordinator: drained, bye")
	}
}
