package main

// Service-layer benchmarks in the style of the repo root's bench_test.go:
// an httptest server driven by concurrent clients, measuring sweep
// throughput when every job is computed (memo-miss) versus served from
// the memoizer (memo-hit). Future PRs track requests/sec here the way
// figure benchmarks track crossover points.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"primecache/internal/cache"
	"primecache/internal/server"
	"primecache/internal/trace"
)

// benchJobs builds a 16-job sweep; vary controls whether job configs are
// unique per call (forcing memo misses) or fixed (memo hits after warmup).
func benchJobs(vary uint64) []server.SweepJob {
	jobs := make([]server.SweepJob, 16)
	for i := range jobs {
		jobs[i] = server.SweepJob{Simulate: &server.SimulateRequest{
			Cache: cache.Spec{Kind: "prime", C: 7},
			Pattern: trace.Pattern{
				Name:   "strided",
				Start:  vary * 1024,
				Stride: int64(1 + i),
				N:      2048,
			},
		}}
	}
	return jobs
}

func postSweep(b *testing.B, url string, jobs []server.SweepJob) {
	b.Helper()
	buf, err := json.Marshal(server.SweepRequest{Jobs: jobs})
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != 200 {
		b.Fatalf("sweep status %d", resp.StatusCode)
	}
}

func benchSweep(b *testing.B, hit bool) {
	s := server.New(server.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if hit {
		// Warm the memo so every benchmarked request is a pure hit.
		postSweep(b, ts.URL, benchJobs(0))
	}
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			var v uint64
			if !hit {
				v = seq.Add(1) // unique configs: every job computes
			}
			postSweep(b, ts.URL, benchJobs(v))
		}
	})
	b.StopTimer()
	st := s.Metrics().Snapshot()
	if n := st.Counters["requests.sweep"]; n > 0 {
		b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "sweeps/sec")
	}
}

// BenchmarkSweepMemoMiss measures sweep throughput when every job is a
// fresh configuration (full simulation on a pool worker).
func BenchmarkSweepMemoMiss(b *testing.B) { benchSweep(b, false) }

// BenchmarkSweepMemoHit measures sweep throughput when every job is
// served from the memoization cache.
func BenchmarkSweepMemoHit(b *testing.B) { benchSweep(b, true) }

// BenchmarkModelRequest measures single /v1/model request latency
// end-to-end (decode, validate, pool round trip, encode), memo disabled
// so the analytic model really evaluates each time.
func BenchmarkModelRequest(b *testing.B) {
	s := server.New(server.Options{MemoEntries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"banks":64,"tm":%d,"b":4096}`, 1+i%128)
		resp, err := http.Post(ts.URL+"/v1/model", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("model status %d", resp.StatusCode)
		}
	}
}
