package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write lays out one file under root, creating parents.
func write(t *testing.T, root, name, content string) {
	t.Helper()
	path := filepath.Join(root, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// reporter collects check problems as rendered strings.
func reporter(problems *[]string) func(string, ...any) {
	return func(format string, args ...any) {
		*problems = append(*problems, fmt.Sprintf(format, args...))
	}
}

func TestRouteCoverage(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/server/server.go", `package server

import "net/http"

type Server struct{ mux *http.ServeMux }

func (s *Server) routes() {
	s.mux.Handle("POST /v1/documented", nil)
	s.mux.Handle("GET /v1/undocumented", nil)
}
`)
	write(t, root, "internal/cluster/coordinator.go", `package cluster

import "net/http"

type Coordinator struct{ mux *http.ServeMux }

func (c *Coordinator) routes() {
	c.mux.HandleFunc("DELETE /v1/admin/things", nil)
}

func notARoute(other *http.ServeMux) {
	// Receiver is not named mux: must be ignored.
	other.Handle("GET /not-a-route", nil)
}
`)
	write(t, root, "API.md", "### POST /v1/documented\n\n### DELETE /v1/admin/things\n")

	var problems []string
	checkRoutes(root, reporter(&problems))
	if len(problems) != 1 || !strings.Contains(problems[0], "GET /v1/undocumented") {
		t.Fatalf("problems = %v, want exactly the undocumented route", problems)
	}
}

func TestLinkResolution(t *testing.T) {
	root := t.TempDir()
	write(t, root, "TUTORIAL.md", "exists")
	write(t, root, "README.md", strings.Join([]string{
		"[good](TUTORIAL.md)",
		"[good anchor](TUTORIAL.md#section)",
		"[external](https://example.com/x.md)",
		"[mail](mailto:a@b.c)",
		"[fragment](#local-anchor)",
		"[broken](MISSING.md)",
	}, "\n"))

	var problems []string
	checkLinks(root, reporter(&problems))
	if len(problems) != 1 || !strings.Contains(problems[0], "MISSING.md") {
		t.Fatalf("problems = %v, want exactly the broken link", problems)
	}
}

func TestDocComments(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/cluster/x.go", `package cluster

// Documented has a doc comment.
type Documented struct{}

type Undocumented struct{}

// Fine is documented.
func Fine() {}

func Bare() {}

// Grouped constants share one block comment.
const (
	GroupedA = 1
	GroupedB = 2
)

const LoneConst = 3

// helper is unexported; its exported methods are exempt.
type helper struct{}

func (helper) Close() error { return nil }
`)
	if err := os.MkdirAll(filepath.Join(root, "internal/persist"), 0o755); err != nil {
		t.Fatal(err)
	}

	var problems []string
	checkDocComments(root, reporter(&problems))
	joined := strings.Join(problems, "\n")
	for _, want := range []string{"Undocumented", "Bare", "LoneConst"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing-doc report does not flag %s:\n%s", want, joined)
		}
	}
	for _, mustNot := range []string{"Documented ", "Fine", "GroupedA", "GroupedB", "Close"} {
		if strings.Contains(joined, mustNot) {
			t.Errorf("falsely flagged %s:\n%s", strings.TrimSpace(mustNot), joined)
		}
	}
	if len(problems) != 3 {
		t.Errorf("problems = %d, want 3:\n%s", len(problems), joined)
	}
}

// TestRepoIsClean runs all three checks against the actual repository —
// the same self-test obscheck performs, so the lint can never be
// shipped in a state where it fails its own codebase.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	var problems []string
	rep := reporter(&problems)
	checkRoutes(root, rep)
	checkLinks(root, rep)
	checkDocComments(root, rep)
	if len(problems) > 0 {
		t.Fatalf("doccheck fails against the repo:\n%s", strings.Join(problems, "\n"))
	}
}
