// Command doccheck keeps the documentation layer honest against the
// code. Three checks, any failure fails `make ci`:
//
//  1. Route coverage — every route pattern registered on a ServeMux in
//     internal/server and internal/cluster (e.g. "POST /v1/simulate")
//     must appear verbatim in API.md, so a new endpoint cannot ship
//     undocumented.
//
//  2. Markdown links — every intra-repo relative link in the tracked
//     markdown files must resolve to an existing file, so renames and
//     deletions cannot leave dangling references.
//
//  3. Doc comments — every exported top-level declaration in
//     internal/cluster and internal/persist (the membership and
//     migration surfaces API.md leans on) must carry a doc comment.
//
//     go run ./cmd/doccheck             # checks from the repo root
//     go run ./cmd/doccheck -root /path
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// routeDirs are the packages whose mux registrations define the HTTP
// surface; apiDoc is the reference that must cover all of them.
var routeDirs = []string{"internal/server", "internal/cluster"}

const apiDoc = "API.md"

// docFiles are the markdown files whose links are checked. Kept
// explicit so a stray scratch file cannot fail CI.
var docFiles = []string{
	"README.md", "TUTORIAL.md", "API.md", "OPERATIONS.md",
	"DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "PAPER.md", "CHANGES.md",
}

// commentDirs are the packages whose exported identifiers must carry
// doc comments.
var commentDirs = []string{"internal/cluster", "internal/persist"}

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	checkRoutes(*root, report)
	checkLinks(*root, report)
	checkDocComments(*root, report)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "doccheck: "+p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "doccheck: "+format+"\n", args...)
	os.Exit(2)
}

// checkRoutes extracts every literal route pattern from mux
// registrations under routeDirs and requires API.md to contain each
// one verbatim.
func checkRoutes(root string, report func(string, ...any)) {
	api, err := os.ReadFile(filepath.Join(root, apiDoc))
	if err != nil {
		fatalf("reading %s: %v", apiDoc, err)
	}
	doc := string(api)
	for _, dir := range routeDirs {
		for _, r := range muxRoutes(filepath.Join(root, dir)) {
			if !strings.Contains(doc, r.pattern) {
				report("%s: route %q registered at %s is not documented in %s",
					dir, r.pattern, r.pos, apiDoc)
			}
		}
	}
}

// route is one extracted mux registration.
type route struct {
	pattern string
	pos     string
}

// muxRoutes parses every non-test Go file in dir (flat, like the HTTP
// layers) and collects the string-literal patterns of Handle/HandleFunc
// calls on a mux.
func muxRoutes(dir string) []route {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var routes []route
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			fatalf("parsing %s: %v", name, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc") {
				return true
			}
			if !isMux(sel.X) || len(call.Args) != 2 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			pattern := strings.Trim(lit.Value, `"`)
			routes = append(routes, route{pattern: pattern, pos: fset.Position(call.Pos()).String()})
			return true
		})
	}
	return routes
}

// isMux mirrors obscheck's notion of the package mux: a field or
// variable named "mux".
func isMux(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "mux"
	case *ast.Ident:
		return x.Name == "mux"
	}
	return false
}

// mdLink matches inline markdown links [text](target); images share the
// shape with a leading '!', which the pattern tolerates.
var mdLink = regexp.MustCompile(`\[[^\]\n]*\]\(([^)\s]+)\)`)

// checkLinks resolves every relative link target in the tracked
// markdown files against the filesystem. External schemes and pure
// fragments are skipped; a fragment on a relative target is stripped
// (anchors are not checked, files are).
func checkLinks(root string, report func(string, ...any)) {
	for _, name := range docFiles {
		path := filepath.Join(root, name)
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // optional docs may not exist in every checkout
			}
			fatalf("reading %s: %v", name, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				report("%s: link target %q does not resolve (%s)", name, m[1], resolved)
			}
		}
	}
}

// checkDocComments requires a doc comment on every exported top-level
// declaration (funcs, methods on exported receivers, types, and
// exported names in const/var blocks without a block comment) in
// commentDirs.
func checkDocComments(root string, report func(string, ...any)) {
	for _, dir := range commentDirs {
		full := filepath.Join(root, dir)
		entries, err := os.ReadDir(full)
		if err != nil {
			fatalf("reading %s: %v", dir, err)
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(full, name), nil, parser.ParseComments)
			if err != nil {
				fatalf("parsing %s: %v", name, err)
			}
			for _, decl := range f.Decls {
				checkDecl(fset, dir, decl, report)
			}
		}
	}
}

func checkDecl(fset *token.FileSet, dir string, decl ast.Decl, report func(string, ...any)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		// Methods on unexported receiver types are not part of the
		// package's documented surface (the interface they satisfy is).
		if d.Recv != nil && len(d.Recv.List) > 0 && !ast.IsExported(strings.TrimPrefix(typeName(d.Recv.List[0].Type), "*")) {
			return
		}
		if d.Name.IsExported() && d.Doc.Text() == "" {
			report("%s: exported %s lacks a doc comment (%s)", dir, funcLabel(d), fset.Position(d.Pos()))
		}
	case *ast.GenDecl:
		blockDoc := d.Doc.Text() != ""
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !blockDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
					report("%s: exported type %s lacks a doc comment (%s)", dir, s.Name.Name, fset.Position(s.Pos()))
				}
			case *ast.ValueSpec:
				// A doc comment on the const/var block, the spec, or a
				// trailing line comment all count — grouped constants
				// conventionally share one comment.
				if blockDoc || s.Doc.Text() != "" || s.Comment.Text() != "" {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report("%s: exported %s lacks a doc comment (%s)", dir, n.Name, fset.Position(n.Pos()))
					}
				}
			}
		}
	}
}

// funcLabel renders "func Name" or "method (T).Name" for diagnostics.
func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	return fmt.Sprintf("method (%s).%s", typeName(d.Recv.List[0].Type), d.Name.Name)
}

func typeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return "*" + typeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return typeName(t.X)
	}
	return "?"
}
