// Command primebench is the repo's performance front door. With no
// subcommand it runs the kernel benchmark suite — SAXPY, blocked matrix
// multiply, blocked LU, the four-step FFT, blocked transpose, a 5-point
// stencil, and conjugate gradient, all computing real results — against
// six cache organisations and prints the miss and conflict matrices.
//
// Subcommands turn it into a benchmark-regression harness over the
// pinned scenario suite in internal/bench:
//
//	primebench bench   [-out FILE] [-smoke] [-benchtime D] [-run RE]
//	primebench compare [-tol PCT] OLD.json NEW.json
//	primebench list
//
// `bench` measures every scenario and emits a BENCH_*.json report
// (ns/op, B/op, allocs/op, refs/sec, git SHA, date); `compare` diffs two
// reports and exits non-zero when any scenario regressed beyond the
// tolerance or disappeared.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"time"

	"primecache/internal/bench"
	"primecache/internal/experiments"
	"primecache/internal/report"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "bench":
			os.Exit(runBench(os.Args[2:]))
		case "compare":
			os.Exit(runCompare(os.Args[2:]))
		case "list":
			os.Exit(runList())
		}
	}
	runKernels()
}

// runKernels is the original flag-driven kernel-matrix interface.
func runKernels() {
	conflicts := flag.Bool("conflicts", false, "print conflict-miss counts instead of miss ratios")
	both := flag.Bool("both", false, "print both matrices")
	md := flag.Bool("md", false, "emit Markdown")
	flag.Parse()

	emit := func(t *report.Table) {
		var err error
		if *md {
			err = t.WriteMarkdown(os.Stdout)
		} else {
			err = t.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "primebench:", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *both || !*conflicts {
		emit(experiments.KernelTable())
	}
	if *both || *conflicts {
		emit(experiments.KernelConflictTable())
	}
}

func runBench(args []string) int {
	fs := flag.NewFlagSet("primebench bench", flag.ExitOnError)
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	smoke := fs.Bool("smoke", false, "one iteration per scenario: validates the suite, numbers are meaningless")
	benchtime := fs.Duration("benchtime", 250*time.Millisecond, "minimum measuring time per scenario")
	run := fs.String("run", "", "regexp selecting scenario names")
	fs.Parse(args)

	scenarios := bench.Suite()
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "primebench:", err)
			return 2
		}
		kept := scenarios[:0]
		for _, s := range scenarios {
			if re.MatchString(s.Name) {
				kept = append(kept, s)
			}
		}
		scenarios = kept
	}
	if len(scenarios) == 0 {
		fmt.Fprintln(os.Stderr, "primebench: no scenarios match")
		return 2
	}

	opt := bench.Options{MinTime: *benchtime}
	if *smoke {
		opt.MinTime = 0
	}
	rep, err := bench.Run(scenarios, opt, func(r bench.Result) {
		fmt.Fprintf(os.Stderr, "%-40s %12.1f ns/op %10.0f B/op %8.1f allocs/op", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.RefsPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %14.0f refs/s", r.RefsPerSec)
		}
		fmt.Fprintln(os.Stderr)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "primebench:", err)
		return 1
	}
	rep.GitSHA = gitSHA()
	rep.Date = time.Now().UTC().Format(time.RFC3339)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "primebench:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "primebench:", err)
		return 1
	}
	return 0
}

func runCompare(args []string) int {
	fs := flag.NewFlagSet("primebench compare", flag.ExitOnError)
	tol := fs.Float64("tol", 15, "ns/op regression tolerance in percent")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: primebench compare [-tol PCT] OLD.json NEW.json")
		return 2
	}
	old, err := bench.ReadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "primebench:", err)
		return 2
	}
	new, err := bench.ReadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "primebench:", err)
		return 2
	}

	c := bench.CompareReports(old, new)
	for _, d := range c.Deltas {
		mark := ""
		if d.NsPct > *tol {
			mark = "  REGRESSED"
		}
		fmt.Printf("%-40s %12.1f → %12.1f ns/op  %+7.1f%%%s\n", d.Name, d.Old.NsPerOp, d.New.NsPerOp, d.NsPct, mark)
	}
	for _, name := range c.Missing {
		fmt.Printf("%-40s MISSING from %s\n", name, fs.Arg(1))
	}
	for _, name := range c.Added {
		fmt.Printf("%-40s added (no baseline)\n", name)
	}
	if regs := c.Regressions(*tol); c.Failed(*tol) {
		fmt.Printf("FAIL: %d regression(s) beyond %.0f%%, %d missing scenario(s)\n", len(regs), *tol, len(c.Missing))
		return 1
	}
	fmt.Printf("ok: %d scenario(s) within %.0f%% of baseline\n", len(c.Deltas), *tol)
	return 0
}

func runList() int {
	for _, s := range bench.Suite() {
		fmt.Println(s.Name)
	}
	return 0
}

// gitSHA stamps the report with the current commit; empty (and omitted
// from the JSON) when git or the work tree is unavailable.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
