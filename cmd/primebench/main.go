// Command primebench runs the kernel benchmark suite — SAXPY, blocked
// matrix multiply, blocked LU, the four-step FFT, blocked transpose, a
// 5-point stencil, and conjugate gradient, all computing real results —
// against six cache organisations (direct, 4-way LRU, 2-way skewed,
// victim-buffered, stride-prefetched, prime-mapped) and prints the miss
// and conflict matrices.
package main

import (
	"flag"
	"fmt"
	"os"

	"primecache/internal/experiments"
	"primecache/internal/report"
)

func main() {
	conflicts := flag.Bool("conflicts", false, "print conflict-miss counts instead of miss ratios")
	both := flag.Bool("both", false, "print both matrices")
	md := flag.Bool("md", false, "emit Markdown")
	flag.Parse()

	emit := func(t *report.Table) {
		var err error
		if *md {
			err = t.WriteMarkdown(os.Stdout)
		} else {
			err = t.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "primebench:", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *both || !*conflicts {
		emit(experiments.KernelTable())
	}
	if *both || *conflicts {
		emit(experiments.KernelConflictTable())
	}
}
