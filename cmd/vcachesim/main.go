// Command vcachesim is a trace-driven vector-cache simulator: it drives a
// chosen cache organisation with a synthetic vector access pattern and
// reports hit/miss statistics with the three-C split and self/cross
// interference attribution.
//
// Examples:
//
//	vcachesim -cache prime -c 13 -pattern strided -stride 512 -n 4096 -passes 3
//	vcachesim -cache direct -lines 8192 -pattern subblock -ld 10000 -b1 1809 -b2 4
//	vcachesim -cache assoc -lines 8192 -ways 4 -pattern fft -n 16384 -b2 128
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"primecache/internal/cache"
	"primecache/internal/core"
	"primecache/internal/stats"
	"primecache/internal/trace"
)

func main() {
	var (
		kind    = flag.String("cache", "prime", "cache organisation: prime, direct, assoc, full")
		cExp    = flag.Uint("c", 13, "Mersenne exponent for -cache prime (lines = 2^c-1)")
		lines   = flag.Int("lines", 8192, "line count for direct/assoc/full caches")
		ways    = flag.Int("ways", 4, "associativity for -cache assoc")
		policy  = flag.String("policy", "lru", "replacement policy for -cache assoc: lru, fifo, random")
		pattern = flag.String("pattern", "strided", "access pattern: strided, subblock, fft, rowcol, diagonal")
		start   = flag.Uint64("start", 0, "starting word address")
		stride  = flag.Int64("stride", 1, "word stride for -pattern strided")
		n       = flag.Int("n", 4096, "elements per pass (strided/diagonal) or total points (fft)")
		passes  = flag.Int("passes", 2, "number of sweeps over the pattern")
		ld      = flag.Int("ld", 10000, "matrix leading dimension (subblock/rowcol/diagonal)")
		b1      = flag.Int("b1", 64, "sub-block rows for -pattern subblock")
		b2      = flag.Int("b2", 64, "sub-block columns (subblock) or FFT B2 (fft)")
		inFile  = flag.String("tracefile", "", "replay a trace file ('R|W hexaddr [stream]' lines) instead of a synthetic pattern")
		asJSON  = flag.Bool("json", false, "emit statistics as JSON (for scripting)")
		fit     = flag.Bool("fit", false, "with -tracefile: also print the fitted VCM workload parameters")
	)
	flag.Parse()

	vc, err := core.FromSpec(cache.Spec{Kind: *kind, C: *cExp, Lines: *lines, Ways: *ways, Policy: *policy})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcachesim:", err)
		os.Exit(2)
	}

	// Strided patterns run through the vector API so the prime cache's
	// Figure-1 address unit (and its adder-step counter) is exercised;
	// composite patterns replay a prebuilt trace.
	refsPerPass := 0
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcachesim:", err)
			os.Exit(2)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcachesim:", err)
			os.Exit(2)
		}
		refsPerPass = len(tr)
		for p := 0; p < *passes; p++ {
			trace.Replay(vc.Cache(), tr)
		}
		printStats(vc, "file:"+*inFile, *passes, refsPerPass, *asJSON)
		if *fit {
			v, err := trace.FitVCM(tr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vcachesim:", err)
				os.Exit(1)
			}
			fmt.Printf("fitted VCM: B=%d R=%d Pds=%.3f P1(s1)=%.3f P1(s2)=%.3f\n",
				v.B, v.R, v.Pds, v.P1S1, v.P1S2)
			for _, prof := range trace.Profile(tr) {
				fmt.Printf("stream %d stride histogram (top 5 of %d steps):\n", prof.Stream, prof.Accesses-1)
				h := stats.NewHistogram()
				for st, n := range prof.StrideHist {
					h.ObserveN(st, n)
				}
				if err := h.Render(os.Stdout, 5, 30); err != nil {
					fmt.Fprintln(os.Stderr, "vcachesim:", err)
					os.Exit(1)
				}
			}
		}
		return
	}
	switch *pattern {
	case "strided", "diagonal":
		st := *stride
		if *pattern == "diagonal" {
			st = int64(*ld) + 1
		}
		refsPerPass = *n
		for p := 0; p < *passes; p++ {
			if _, err := vc.LoadVector(*start, st, *n, 1); err != nil {
				fmt.Fprintln(os.Stderr, "vcachesim:", err)
				os.Exit(1)
			}
		}
	default:
		tr, err := trace.Pattern{Name: *pattern, Start: *start, Stride: *stride,
			N: *n, LD: *ld, B1: *b1, B2: *b2}.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcachesim:", err)
			os.Exit(2)
		}
		refsPerPass = len(tr)
		for p := 0; p < *passes; p++ {
			trace.Replay(vc.Cache(), tr)
		}
	}
	printStats(vc, *pattern, *passes, refsPerPass, *asJSON)
}

func printStats(vc *core.VectorCache, pattern string, passes, refsPerPass int, asJSON bool) {
	s := vc.Stats()
	if asJSON {
		out := map[string]interface{}{
			"cache":       vc.Cache().Describe(),
			"pattern":     pattern,
			"passes":      passes,
			"refsPerPass": refsPerPass,
			"stats":       s,
			"adderSteps":  vc.AdderSteps(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "vcachesim:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("cache:    %s\n", vc.Cache().Describe())
	fmt.Printf("pattern:  %s × %d passes (%d refs/pass)\n", pattern, passes, refsPerPass)
	fmt.Printf("accesses: %d (reads %d, writes %d)\n", s.Accesses, s.Reads, s.Writes)
	fmt.Printf("hits:     %d (%.2f%%)\n", s.Hits, 100*s.HitRatio())
	fmt.Printf("misses:   %d (%.2f%%)  compulsory %d, capacity %d, conflict %d\n",
		s.Misses, 100*s.MissRatio(), s.Compulsory, s.Capacity, s.Conflict)
	fmt.Printf("interference: self %d, cross %d\n", s.SelfInterference, s.CrossInterference)
	if vc.IsPrimeMapped() {
		fmt.Printf("mersenne adder steps: %d\n", vc.AdderSteps())
	}
}

