// Command vcmodel evaluates the paper's analytical performance model for
// one operating point and prints every intermediate quantity (the
// interference terms, per-element times, block time, total time, and
// cycles per result), for all three machines side by side.
//
// Example:
//
//	vcmodel -banks 64 -tm 32 -b 4096 -r 4096 -pds 0.25 -p1 0.25 -n 1048576
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"primecache/internal/report"
	"primecache/internal/vcm"
)

func main() {
	var (
		banks = flag.Int("banks", 64, "number of interleaved memory banks M (power of two)")
		tm    = flag.Int("tm", 32, "memory access time t_m in cycles")
		b     = flag.Int("b", 4096, "blocking factor B")
		r     = flag.Int("r", 0, "reuse factor R (default: B)")
		pds   = flag.Float64("pds", 0.25, "double-stream probability P_ds")
		p1    = flag.Float64("p1", 0.25, "unit-stride probability P_stride1")
		n     = flag.Int("n", 1<<20, "total problem size N")
		cExp  = flag.Uint("c", 13, "cache size exponent (direct 2^c, prime 2^c-1)")
		sens  = flag.Float64("sensitivity", 0, "if in (0,1), also print a ±factor one-at-a-time sensitivity analysis")
	)
	flag.Parse()

	mach := vcm.DefaultMachine(*banks, *tm)
	if err := mach.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "vcmodel:", err)
		os.Exit(2)
	}
	reuse := *r
	if reuse == 0 {
		reuse = *b
	}
	work := vcm.VCM{B: *b, R: reuse, Pds: *pds, P1S1: *p1, P1S2: *p1}
	if err := work.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "vcmodel:", err)
		os.Exit(2)
	}

	dg, pg := vcm.DirectGeom(*cExp), vcm.PrimeGeom(*cExp)
	b2 := int(math.Round(float64(work.B) * work.Pds))

	t := report.New(
		fmt.Sprintf("analytic model at M=%d t_m=%d B=%d R=%d P_ds=%v P1=%v N=%d",
			*banks, *tm, work.B, work.R, work.Pds, *p1, *n),
		"quantity", "MM-model", "CC-direct", "CC-prime")
	t.MustAddRow("self-interference I_s (1st stream)",
		vcm.IsM(mach, work.P1S1), vcm.IsC(dg, mach, work.B, work.P1S1), vcm.IsC(pg, mach, work.B, work.P1S1))
	t.MustAddRow("self-interference I_s (2nd stream)",
		vcm.IsM(mach, work.P1S2), vcm.IsC(dg, mach, b2, work.P1S2), vcm.IsC(pg, mach, b2, work.P1S2))
	t.MustAddRow("cross-interference I_c",
		vcm.IcM(mach), vcm.IcC(dg, mach, work.B, work.Pds), vcm.IcC(pg, mach, work.B, work.Pds))
	t.MustAddRow("per-element time T_elemt",
		vcm.TElemtMM(mach, work), vcm.TElemtCC(dg, mach, work), vcm.TElemtCC(pg, mach, work))
	t.MustAddRow("block time T_B (memory pass)",
		vcm.TBlockMM(mach, work), vcm.TBlockMM(mach, work), vcm.TBlockMM(mach, work))
	t.MustAddRow("total time T_N",
		vcm.TotalMM(mach, work, *n), vcm.TotalCC(dg, mach, work, *n), vcm.TotalCC(pg, mach, work, *n))
	t.MustAddRow("cycles per result",
		vcm.CyclesPerResultMM(mach, work, *n),
		vcm.CyclesPerResultCC(dg, mach, work, *n),
		vcm.CyclesPerResultCC(pg, mach, work, *n))
	if err := t.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vcmodel:", err)
		os.Exit(1)
	}

	if *sens > 0 {
		for _, geom := range []struct {
			name string
			g    vcm.CacheGeom
		}{{"CC-direct", dg}, {"CC-prime", pg}} {
			entries, err := vcm.Sensitivity(geom.g, mach, work, *n, *sens)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vcmodel:", err)
				os.Exit(2)
			}
			st := report.New(fmt.Sprintf("\n%s sensitivity (±%.0f%%)", geom.name, 100**sens),
				"parameter", "CPR low", "CPR base", "CPR high", "swing")
			for _, e := range entries {
				st.MustAddRow(e.Parameter, e.Low, e.Base, e.High, e.Swing())
			}
			if err := st.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "vcmodel:", err)
				os.Exit(1)
			}
		}
	}
}
