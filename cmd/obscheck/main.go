// Command obscheck is the span-policy lint for the HTTP layers: every
// route registered on a ServeMux in internal/server and
// internal/cluster must pass its handler through one of the
// span-recording wrappers — instrument / traced (edge span per
// request) or instrumentLive / tracedLive (explicitly marked untraced:
// probes and scrapes). A bare registration compiles fine but silently
// drops that endpoint out of every trace, which is exactly the kind of
// drift a human review misses; this check fails `make ci` instead.
//
//	go run ./cmd/obscheck            # checks the default directories
//	go run ./cmd/obscheck ./internal/server
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// wrappers are the approved span-policy wrappers. A mux registration
// whose handler argument is not a direct call to one of these fails.
var wrappers = map[string]bool{
	"instrument":     true, // server: edge span + metrics + drain guard
	"instrumentLive": true, // server: metrics only, deliberately untraced
	"traced":         true, // coordinator: edge span
	"tracedLive":     true, // coordinator: deliberately untraced
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"internal/server", "internal/cluster"}
	}
	bad := 0
	for _, dir := range dirs {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "obscheck: %d unwrapped route registration(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir lints every non-test Go file in dir (no recursion: the HTTP
// layers are flat packages) and returns the violation count.
func checkDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	bad := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return 0, err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc") {
				return true
			}
			if !isMux(sel.X) || len(call.Args) != 2 {
				return true
			}
			if !isWrapped(call.Args[1]) {
				pos := fset.Position(call.Pos())
				fmt.Fprintf(os.Stderr, "%s: route %s registered without a span-policy wrapper (use instrument/instrumentLive or traced/tracedLive)\n",
					pos, routeName(call.Args[0]))
				bad++
			}
			return true
		})
	}
	return bad, nil
}

// isMux reports whether e denotes the package's request mux: a field
// or variable named "mux" (s.mux, c.mux, or a local mux).
func isMux(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "mux"
	case *ast.Ident:
		return x.Name == "mux"
	}
	return false
}

// isWrapped reports whether the handler argument is a direct call to an
// approved wrapper (method or function form).
func isWrapped(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return wrappers[fn.Sel.Name]
	case *ast.Ident:
		return wrappers[fn.Name]
	}
	return false
}

// routeName renders the pattern argument for the diagnostic.
func routeName(e ast.Expr) string {
	if lit, ok := e.(*ast.BasicLit); ok {
		return lit.Value
	}
	return "<dynamic>"
}
