package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDirFlagsBareRegistration(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "routes.go", `package p

func register(s *Server) {
	s.mux.Handle("GET /v1/x", s.instrument("x", s.handleX))
	s.mux.HandleFunc("GET /v1/y", s.tracedLive("y", s.handleY))
	s.mux.HandleFunc("GET /v1/z", s.handleZ) // the drift obscheck exists for
}
`)
	bad, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 1 {
		t.Fatalf("checkDir found %d violations, want exactly the bare /v1/z registration", bad)
	}
}

func TestCheckDirIgnoresTestsAndOtherMuxes(t *testing.T) {
	dir := t.TempDir()
	// _test.go files and non-mux Handle calls (e.g. a debug mux built in
	// main) are out of scope.
	writeFile(t, dir, "routes_test.go", `package p

func setup(s *Server) { s.mux.HandleFunc("GET /t", s.handleT) }
`)
	writeFile(t, dir, "other.go", `package p

func debug(m *http.ServeMux) { m.HandleFunc("/debug/pprof/", pprofIndex) }
`)
	bad, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("checkDir found %d violations in out-of-scope files, want 0", bad)
	}
}

// TestRepoIsClean runs the real check against the repo's own HTTP
// layers, from the module root.
func TestRepoIsClean(t *testing.T) {
	for _, dir := range []string{"../../internal/server", "../../internal/cluster"} {
		bad, err := checkDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if bad != 0 {
			t.Fatalf("%s: %d unwrapped route registrations", dir, bad)
		}
	}
}
