// Command vasm assembles and runs textual vector assembly (the format of
// internal/visa's Parse/Disassemble) on a configurable machine: choose
// the bank count, memory time, cache organisation, chaining, and initial
// memory contents, then inspect cycles, cache statistics and register
// results.
//
// Example:
//
//	cat > daxpy.vasm <<'END'
//	loads  s0, 2.5
//	loada  a0, 0
//	loada  a1, 1
//	loada  a2, 4096
//	loada  a3, 1
//	setvl  64
//	loop   16
//	  loadv  v0, (a0), a1
//	  mulvs  v0, v0, s0
//	  loadv  v1, (a2), a3
//	  addvv  v1, v1, v0
//	  storev v1, (a2), a3
//	  adda   a0, 64
//	  adda   a2, 64
//	endloop
//	END
//	vasm -file daxpy.vasm -cache prime -banks 64 -tm 32 -fill 1
package main

import (
	"flag"
	"fmt"
	"os"

	"primecache/internal/vcm"
	"primecache/internal/visa"
)

func main() {
	var (
		file   = flag.String("file", "", "assembly file (required; '-' for stdin)")
		cache  = flag.String("cache", "none", "cache organisation: none, direct, prime")
		banks  = flag.Int("banks", 64, "interleaved memory banks (power of two)")
		tm     = flag.Int("tm", 32, "memory access time in cycles")
		mem    = flag.Int("mem", 1<<16, "memory size in words")
		fill   = flag.Float64("fill", 0, "initialise every memory word to this value")
		chain  = flag.Bool("chain", false, "enable vector chaining")
		disasm = flag.Bool("disasm", false, "print the disassembled program before running")
	)
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "vasm: -file is required")
		flag.Usage()
		os.Exit(2)
	}

	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vasm:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	prog, err := visa.Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vasm:", err)
		os.Exit(2)
	}
	if *disasm {
		fmt.Print(visa.Disassemble(prog))
		fmt.Println()
	}

	cfg := visa.Config{Mach: vcm.DefaultMachine(*banks, *tm), MemWords: *mem, Chaining: *chain}
	switch *cache {
	case "none":
	case "direct":
		g := vcm.DirectGeom(13)
		cfg.CacheGeom = &g
	case "prime":
		g := vcm.PrimeGeom(13)
		cfg.CacheGeom = &g
	default:
		fmt.Fprintf(os.Stderr, "vasm: unknown cache %q\n", *cache)
		os.Exit(2)
	}
	cpu, err := visa.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vasm:", err)
		os.Exit(2)
	}
	if *fill != 0 {
		for i := range cpu.Mem() {
			cpu.Mem()[i] = *fill
		}
	}
	if err := cpu.Run(prog); err != nil {
		fmt.Fprintln(os.Stderr, "vasm:", err)
		os.Exit(1)
	}

	fmt.Printf("instructions: %d\n", len(prog))
	fmt.Printf("cycles:       %d\n", cpu.Cycles())
	if cfg.CacheGeom != nil {
		s := cpu.CacheStats()
		fmt.Printf("cache:        hit%% %.2f, misses %d (conflict %d)\n",
			100*s.HitRatio(), s.Misses, s.Conflict)
	}
	fmt.Printf("scalars:     ")
	for i := 0; i < visa.NumScalarRegs; i++ {
		fmt.Printf(" s%d=%g", i, cpu.Scalar(i))
	}
	fmt.Println()
}
