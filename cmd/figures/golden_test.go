package main

// Golden tests for the evaluation outputs the figures command emits.
// The experiments package is fully seeded, so these renderings are
// deterministic end to end; a golden drift means either an intended
// simulator change (rerun with -update) or a regression in the paper
// reproduction (investigate before updating).

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"primecache/internal/experiments"
	"primecache/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (rerun with -update if intended).\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func renderTable(t *testing.T, tab *report.Table) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestGoldenFigure4 pins the paper's headline figure: prime vs direct
// miss ratio across strides.
func TestGoldenFigure4(t *testing.T) {
	checkGolden(t, "figure4.txt", renderTable(t, experiments.Figure4().Table()))
}

// TestGoldenCrossCheck pins the analytic-vs-simulation agreement table.
func TestGoldenCrossCheck(t *testing.T) {
	checkGolden(t, "crosscheck.txt", renderTable(t, experiments.CrossCheck()))
}

// TestGoldenSummary pins the headline summary table the command prints
// for -fig summary.
func TestGoldenSummary(t *testing.T) {
	checkGolden(t, "summary.txt", renderTable(t, experiments.Summary()))
}

// TestGoldenFigure4SVG pins the SVG rendering path the -svg flag uses.
func TestGoldenFigure4SVG(t *testing.T) {
	f := experiments.Figure4()
	ps := make([]report.PlotSeries, len(f.Series))
	for i, s := range f.Series {
		ps[i] = report.PlotSeries{Name: s.Name, X: s.X, Y: s.Y}
	}
	var b bytes.Buffer
	if err := report.WriteSVG(&b, f.Title, f.XLabel, f.YLabel, ps, 640, 400); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure4.svg", b.Bytes())
}
