// Command figures regenerates the paper's evaluation: every figure
// (4–12), the §4 sub-block table, the analytic-versus-simulation
// cross-check, and the headline summary.
//
// Usage:
//
//	figures [-fig all|4|5|...|12|subblock|crosscheck|summary] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"primecache/internal/experiments"
	"primecache/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4..12, subblock, crosscheck, problemsize, linesize, prefetch, primemem, assoc, multistream, writepolicy, cachesize, replacement, algorithms, tornado, summary, or all")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	md := flag.Bool("md", false, "emit Markdown tables instead of aligned text")
	plot := flag.Bool("plot", false, "render numbered figures as ASCII charts in addition to tables")
	svgDir := flag.String("svg", "", "also write each numbered figure as an SVG file into this directory")
	config := flag.String("config", "", "run a custom JSON sweep config instead of a named figure")
	reportPath := flag.String("report", "", "write the complete reproduction as one Markdown report to this file")
	flag.Parse()

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
		if err := experiments.WriteReport(f); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *reportPath)
		return
	}

	emit := func(t *report.Table) {
		if *md {
			if err := t.WriteMarkdown(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			fmt.Println()
			return
		}
		if *csv {
			if t.Title != "" {
				fmt.Printf("# %s\n", t.Title)
			}
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
		} else {
			if err := t.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
		}
		fmt.Println()
	}

	emitFigure := func(f experiments.Figure) {
		emit(f.Table())
		if *svgDir != "" {
			ps := make([]report.PlotSeries, len(f.Series))
			for i, sr := range f.Series {
				ps[i] = report.PlotSeries{Name: sr.Name, X: sr.X, Y: sr.Y}
			}
			name := strings.ToLower(strings.ReplaceAll(f.ID, " ", "")) + ".svg"
			fp, err := os.Create(filepath.Join(*svgDir, name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			if err := report.WriteSVG(fp, f.ID+": "+f.Title, f.XLabel, f.YLabel, ps, 800, 480); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			fp.Close()
		}
		if *plot {
			ps := make([]report.PlotSeries, len(f.Series))
			for i, s := range f.Series {
				ps[i] = report.PlotSeries{Name: s.Name, X: s.X, Y: s.Y}
			}
			if err := report.Plot(os.Stdout, f.ID+" ("+f.YLabel+" vs "+f.XLabel+")", ps, 72, 20); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}

	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
		cfg, err := experiments.ParseSweepConfig(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(2)
		}
		fig, err := experiments.RunSweep(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		emitFigure(fig)
		return
	}

	byID := map[string]func() experiments.Figure{
		"4": experiments.Figure4, "5": experiments.Figure5, "6": experiments.Figure6,
		"7": experiments.Figure7, "8": experiments.Figure8, "9": experiments.Figure9,
		"10": experiments.Figure10, "11": experiments.Figure11, "12": experiments.Figure12,
	}

	switch *fig {
	case "all":
		for _, f := range experiments.All() {
			emitFigure(f)
		}
		emit(experiments.SubblockTable())
		emit(experiments.CrossCheck())
		emit(experiments.ProblemSizeTable())
		emit(experiments.LineSizeTable())
		emit(experiments.PrefetchTable())
		emit(experiments.PrimeMemoryTable())
		emit(experiments.AssociativityTable())
		emit(experiments.MultiStreamTable())
		emit(experiments.WritePolicyTable())
		emit(experiments.CacheSizeTable())
		emit(experiments.ReplacementTable())
		emit(experiments.AlgorithmTable())
		emit(experiments.TornadoTable())
		emit(experiments.Summary())
	case "subblock":
		emit(experiments.SubblockTable())
	case "crosscheck":
		emit(experiments.CrossCheck())
	case "problemsize":
		emit(experiments.ProblemSizeTable())
	case "linesize":
		emit(experiments.LineSizeTable())
	case "prefetch":
		emit(experiments.PrefetchTable())
	case "primemem":
		emit(experiments.PrimeMemoryTable())
	case "assoc":
		emit(experiments.AssociativityTable())
	case "multistream":
		emit(experiments.MultiStreamTable())
	case "writepolicy":
		emit(experiments.WritePolicyTable())
	case "cachesize":
		emit(experiments.CacheSizeTable())
	case "replacement":
		emit(experiments.ReplacementTable())
	case "algorithms":
		emit(experiments.AlgorithmTable())
	case "tornado":
		emit(experiments.TornadoTable())
	case "summary":
		emit(experiments.Summary())
	default:
		gen, ok := byID[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
			flag.Usage()
			os.Exit(2)
		}
		emitFigure(gen())
	}
}
