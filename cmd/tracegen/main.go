// Command tracegen writes address-trace files in the repository's text
// format ('R|W hexaddr stream'), either from a synthetic pattern or from
// a VCM workload specification — the producer side of vcachesim's
// -tracefile and -fit consumers.
//
// Examples:
//
//	tracegen -pattern strided -stride 512 -n 4096 -passes 3 > t.trace
//	tracegen -pattern vcm -b 2048 -r 8 -pds 0.25 -s1 512 -s2 1 > t.trace
//	tracegen -pattern subblock -ld 10000 -b1 1809 -b2 4 > t.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"primecache/internal/trace"
	"primecache/internal/vcm"
)

func main() {
	var (
		pattern = flag.String("pattern", "strided", "pattern: strided, diagonal, subblock, fft, vcm")
		start   = flag.Uint64("start", 0, "starting word address")
		stride  = flag.Int64("stride", 1, "word stride (strided)")
		n       = flag.Int("n", 4096, "elements per pass (strided/diagonal) or points (fft)")
		passes  = flag.Int("passes", 1, "repetitions of the pattern")
		ld      = flag.Int("ld", 10000, "leading dimension (subblock/diagonal)")
		b1      = flag.Int("b1", 64, "sub-block rows")
		b2      = flag.Int("b2", 64, "sub-block columns / FFT B2")
		b       = flag.Int("b", 2048, "VCM blocking factor")
		r       = flag.Int("r", 8, "VCM reuse factor")
		pds     = flag.Float64("pds", 0, "VCM double-stream probability")
		s1      = flag.Int64("s1", 1, "VCM stream-1 stride")
		s2      = flag.Int64("s2", 1, "VCM stream-2 stride")
	)
	flag.Parse()

	var tr trace.Trace
	var err error
	switch *pattern {
	case "strided":
		tr = trace.Strided(*start, *stride, *n, 1)
	case "diagonal":
		tr = trace.Diagonal(*start, *ld, *n, 1)
	case "subblock":
		tr = trace.Subblock(*start, *ld, *b1, *b2, 1)
	case "fft":
		if *b2 <= 0 || *n%*b2 != 0 {
			err = fmt.Errorf("fft pattern needs b2 dividing n")
		} else {
			for row := 0; row < *b2 && err == nil; row++ {
				tr = append(tr, trace.Strided(*start+uint64(row), int64(*b2), *n / *b2, 1)...)
			}
		}
	case "vcm":
		work := vcm.VCM{B: *b, R: *r, Pds: *pds, P1S1: 0.25, P1S2: 0.25}
		tr, err = trace.FromVCM(work, *s1, *s2, *start, *start+uint64(*b)*uint64(abs64(*s1))+4096)
		*passes = 1 // FromVCM already contains the R passes
	default:
		err = fmt.Errorf("unknown pattern %q", *pattern)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	tr = trace.Repeat(tr, *passes)
	if _, err := tr.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
