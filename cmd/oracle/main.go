// Command oracle runs a bounded differential-testing campaign: seeded
// random traces are replayed through every cache organisation's fast
// simulator and its slow-but-obviously-correct reference, and the first
// divergence (if any) is reported with a minimised counterexample.
//
// Usage:
//
//	oracle [-seed N] [-n traces-per-kind] [-maxrefs N]
//
// Exit status is 1 when any organisation diverges from its reference.
package main

import (
	"flag"
	"fmt"
	"os"

	"primecache/internal/oracle"
)

func main() {
	seed := flag.Int64("seed", 1, "master campaign seed")
	n := flag.Int("n", 100, "seeded traces per cache organisation")
	maxRefs := flag.Int("maxrefs", 1024, "maximum references per trace")
	props := flag.Bool("props", true, "also run the metamorphic property suite")
	rounds := flag.Int("rounds", 8, "randomized rounds per property")
	flag.Parse()

	results, err := oracle.RunCampaign(oracle.CampaignOptions{
		Seed: *seed, TracesPerKind: *n, MaxRefs: *maxRefs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracle: %v\n", err)
		os.Exit(2)
	}
	bad := oracle.WriteCampaignReport(os.Stdout, results)

	if *props {
		if err := oracle.CheckAll(oracle.Properties(), *seed, *rounds); err != nil {
			fmt.Fprintf(os.Stdout, "%v\n", err)
			bad++
		} else {
			fmt.Printf("oracle: %d metamorphic properties hold (%d rounds each, seed %d)\n",
				len(oracle.Properties()), *rounds, *seed)
		}
	}

	if bad > 0 {
		fmt.Println("oracle: FAIL")
		os.Exit(1)
	}
	fmt.Println("oracle: all organisations agree with their references")
}
