package primecache

// The benchmark harness regenerates every figure of the paper's
// evaluation (run `go test -bench=.` or `cmd/figures` for the printed
// series) and reports each figure's headline quantity as a custom metric,
// plus device-level microbenchmarks for the simulator substrates and
// ablations for the design choices DESIGN.md calls out.

import (
	"math"
	"strconv"
	"testing"

	"primecache/internal/cache"
	"primecache/internal/experiments"
	"primecache/internal/hw"
	"primecache/internal/membank"
	"primecache/internal/mersenne"
	"primecache/internal/stats"
	"primecache/internal/vcm"
	"primecache/internal/visa"
	"primecache/internal/vproc"
	"primecache/internal/workloads"
)

// BenchmarkFigure4 regenerates Figure 4 (cycles/result vs t_m, MM vs
// direct CC at B = 2K and 4K) and reports the two crossover points.
func BenchmarkFigure4(b *testing.B) {
	var x2, x4 float64
	for i := 0; i < b.N; i++ {
		f := experiments.Figure4()
		x2 = stats.Crossover(f.Series[0].X, f.Series[0].Y, f.Series[1].Y)
		x4 = stats.Crossover(f.Series[2].X, f.Series[2].Y, f.Series[3].Y)
	}
	b.ReportMetric(x2, "crossover-tm-B2K")
	b.ReportMetric(x4, "crossover-tm-B4K")
}

// BenchmarkFigure5 regenerates Figure 5 (cycles/result vs reuse factor)
// and reports the CC-model improvement from R = 1 to R = 64 at t_m = 16.
func BenchmarkFigure5(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		f := experiments.Figure5()
		cc := f.Series[3] // CC-direct tm=16
		gain = cc.Y[0] / cc.Y[len(cc.Y)-1]
	}
	b.ReportMetric(gain, "reuse-speedup-tm16")
}

// BenchmarkFigure6 regenerates Figure 6 (cycles/result vs blocking
// factor) and reports the B at which the direct CC curve crosses the MM
// curve for t_m = 32.
func BenchmarkFigure6(b *testing.B) {
	var x float64
	for i := 0; i < b.N; i++ {
		f := experiments.Figure6()
		mm, cc := f.Series[2], f.Series[3]
		x = stats.Crossover(cc.X, cc.Y, mm.Y)
	}
	b.ReportMetric(x, "crossover-B-tm32")
}

// BenchmarkFigure7 regenerates the headline Figure 7 and reports the
// speedups at t_m = M = 64 (paper: ≈3× over direct, ≈5× over MM).
func BenchmarkFigure7(b *testing.B) {
	var dp, mp float64
	for i := 0; i < b.N; i++ {
		f := experiments.Figure7()
		last := len(f.Series[0].Y) - 1
		dp = f.Series[1].Y[last] / f.Series[2].Y[last]
		mp = f.Series[0].Y[last] / f.Series[2].Y[last]
	}
	b.ReportMetric(dp, "direct/prime@tm64")
	b.ReportMetric(mp, "mm/prime@tm64")
}

// BenchmarkFigure8 regenerates Figure 8 and reports the prime curve's
// flatness (max/min over blocking factors) against the direct curve's.
func BenchmarkFigure8(b *testing.B) {
	var ps, ds float64
	for i := 0; i < b.N; i++ {
		f := experiments.Figure8()
		ps, _ = stats.Spread(f.Series[2].Y)
		ds, _ = stats.Spread(f.Series[1].Y)
	}
	b.ReportMetric(ps, "prime-spread")
	b.ReportMetric(ds, "direct-spread")
}

// BenchmarkFigure9 regenerates Figure 9 and reports the direct/prime gap
// at P_stride1 = 0 and 1.
func BenchmarkFigure9(b *testing.B) {
	var at0, at1 float64
	for i := 0; i < b.N; i++ {
		f := experiments.Figure9()
		dir, prm := f.Series[0], f.Series[1]
		at0 = dir.Y[0] / prm.Y[0]
		at1 = dir.Y[len(dir.Y)-1] / prm.Y[len(prm.Y)-1]
	}
	b.ReportMetric(at0, "gap@P1=0")
	b.ReportMetric(at1, "gap@P1=1")
}

// BenchmarkFigure10 regenerates Figure 10 and reports the peak prime
// advantage over the P_ds sweep (paper: 40%–2×).
func BenchmarkFigure10(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		f := experiments.Figure10()
		dir, prm := f.Series[1], f.Series[2]
		peak = 0
		for j := range dir.Y {
			if r := dir.Y[j] / prm.Y[j]; r > peak {
				peak = r
			}
		}
	}
	b.ReportMetric(peak, "peak-advantage")
}

// BenchmarkFigure11 regenerates the row/column figure and reports the
// direct-mapped degradation from all-columns to all-rows, and the prime
// curve's flatness.
func BenchmarkFigure11(b *testing.B) {
	var deg, flat float64
	for i := 0; i < b.N; i++ {
		f := experiments.Figure11()
		dir, prm := f.Series[0], f.Series[1]
		deg = dir.Y[len(dir.Y)-1] / dir.Y[0]
		flat, _ = stats.Spread(prm.Y)
	}
	b.ReportMetric(deg, "direct-degradation")
	b.ReportMetric(flat, "prime-spread")
}

// BenchmarkFigure12 regenerates the FFT figure and reports the worst-case
// (minimum) direct/prime improvement over B2 (paper: >2× everywhere).
func BenchmarkFigure12(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		f := experiments.Figure12()
		dir, prm := f.Series[0], f.Series[1]
		worst = math.Inf(1)
		for j := range dir.Y {
			if r := dir.Y[j] / prm.Y[j]; r < worst {
				worst = r
			}
		}
	}
	b.ReportMetric(worst, "min-fft-speedup")
}

// BenchmarkSubblock regenerates the §4 sub-block table and reports the
// mean utilisation of the maximal conflict-free blocks.
func BenchmarkSubblock(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		tab := experiments.SubblockTable()
		var us []float64
		for r := 0; r < tab.Rows(); r++ {
			if tab.Cell(r, 4) == "degenerate" {
				continue
			}
			if u, err := strconv.ParseFloat(tab.Cell(r, 3), 64); err == nil {
				us = append(us, u)
			}
		}
		util = stats.Mean(us)
	}
	b.ReportMetric(util, "mean-utilization")
}

// BenchmarkCrossCheck runs the analytic-versus-event-simulation
// comparison and reports the worst ratio (want ≈1).
func BenchmarkCrossCheck(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		work := vcm.VCM{B: 4096, R: 16, Pds: 0, P1S1: 0.25, P1S2: 0.25}
		const n = 1 << 15
		worst = 1
		for _, tm := range []int{8, 32} {
			mach := vcm.DefaultMachine(64, tm)
			pg := vcm.PrimeGeom(13)
			res, err := vproc.Run(vproc.Config{Mach: mach, Work: work, Geom: &pg, Seed: 1}, n)
			if err != nil {
				b.Fatal(err)
			}
			r := res.CyclesPerResult() / vcm.CyclesPerResultCC(pg, mach, work, n)
			if r < 1 {
				r = 1 / r
			}
			if r > worst {
				worst = r
			}
		}
	}
	b.ReportMetric(worst, "worst-ana/sim-ratio")
}

// --- device microbenchmarks -----------------------------------------------

// BenchmarkPrimeCacheAccess measures simulator throughput for the prime
// mapping (the Mersenne reduction is in the access path).
func BenchmarkPrimeCacheAccess(b *testing.B) {
	c, err := cache.NewPrime(13)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(cache.Access{Addr: uint64(i) * 4096, Stream: 1})
	}
}

// BenchmarkDirectCacheAccess is the bit-selection baseline for
// BenchmarkPrimeCacheAccess.
func BenchmarkDirectCacheAccess(b *testing.B) {
	c, err := cache.NewDirect(8192)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(cache.Access{Addr: uint64(i) * 4096, Stream: 1})
	}
}

// BenchmarkCacheAccessNoClassify ablates the three-C shadow directory.
func BenchmarkCacheAccessNoClassify(b *testing.B) {
	m, err := cache.NewPrimeMapper(13)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cache.New(cache.Config{Mapper: m, Ways: 1, DisableClassify: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(cache.Access{Addr: uint64(i) * 4096, Stream: 1})
	}
}

// BenchmarkMersenneReduce measures the folding reduction itself.
func BenchmarkMersenneReduce(b *testing.B) {
	m := mersenne.MustNew(13)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Reduce(uint64(i) * 2654435761)
	}
	_ = sink
}

// BenchmarkAddressUnitNext measures the steady-state Figure-1 datapath.
func BenchmarkAddressUnitNext(b *testing.B) {
	u := mersenne.NewAddressUnit(mersenne.MustNew(13))
	u.SetStride(517)
	u.Start(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Next()
	}
}

// BenchmarkVectorLoadPrime measures the full vector-cache load path.
func BenchmarkVectorLoadPrime(b *testing.B) {
	vc, err := NewPrimeCache(13)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vc.LoadVector(uint64(i), 512, 64, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockedMatMulTraced measures the traced kernel (32×32×32,
// blocked 16) through the prime cache.
func BenchmarkBlockedMatMulTraced(b *testing.B) {
	a := workloads.NewMatrix(32, 32, 0)
	bb := workloads.NewMatrix(32, 32, 1<<16)
	for i := range a.Data {
		a.Data[i] = float64(i % 17)
		bb.Data[i] = float64(i % 11)
	}
	c, err := cache.NewPrime(13)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := workloads.NewMatrix(32, 32, 1<<17)
		if err := workloads.BlockedMatMul(a, bb, out, 16, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticPoint measures one full analytic-model evaluation (all
// three machines), the unit of every figure sweep.
func BenchmarkAnalyticPoint(b *testing.B) {
	m := vcm.DefaultMachine(64, 32)
	v := vcm.DefaultVCM(4096)
	dg, pg := vcm.DirectGeom(13), vcm.PrimeGeom(13)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += vcm.CyclesPerResultMM(m, v, 1<<20)
		sink += vcm.CyclesPerResultCC(dg, m, v, 1<<20)
		sink += vcm.CyclesPerResultCC(pg, m, v, 1<<20)
	}
	_ = sink
}

// BenchmarkProblemSize regenerates the Lam-style problem-size study and
// reports how many sweep points spike for each fixed-block mapping (the
// adaptive prime blocking is conflict-free at every point by test).
func BenchmarkProblemSize(b *testing.B) {
	var direct, prime float64
	for i := 0; i < b.N; i++ {
		tab := experiments.ProblemSizeTable()
		direct, prime = 0, 0
		for r := 0; r < tab.Rows(); r++ {
			if tab.Cell(r, 1) != "0" {
				direct++
			}
			if tab.Cell(r, 2) != "0" {
				prime++
			}
		}
	}
	b.ReportMetric(direct, "direct-fixed-spikes")
	b.ReportMetric(prime, "prime-fixed-spikes")
}

// BenchmarkLineSize regenerates the §2.2 line-size study and reports the
// unit-stride gain and stride-8 pollution at 64-byte lines.
func BenchmarkLineSize(b *testing.B) {
	var gain, pollution float64
	for i := 0; i < b.N; i++ {
		tab := experiments.LineSizeTable()
		first, _ := strconv.ParseFloat(tab.Cell(0, 2), 64)
		last, _ := strconv.ParseFloat(tab.Cell(tab.Rows()-1, 2), 64)
		gain = first / last
		pollution, _ = strconv.ParseFloat(tab.Cell(tab.Rows()-1, 4), 64)
	}
	b.ReportMetric(gain, "unit-stride-gain-64B")
	b.ReportMetric(pollution, "stride8-pollution-64B")
}

// BenchmarkPrefetch regenerates the prefetching comparison and reports
// the stride-512 miss ratios for plain direct vs prime.
func BenchmarkPrefetch(b *testing.B) {
	var direct, prime float64
	for i := 0; i < b.N; i++ {
		tab := experiments.PrefetchTable()
		direct, _ = strconv.ParseFloat(tab.Cell(3, 1), 64)
		prime, _ = strconv.ParseFloat(tab.Cell(3, 5), 64)
	}
	b.ReportMetric(direct, "direct-miss%@512")
	b.ReportMetric(prime, "prime-miss%@512")
}

// BenchmarkPrimeMemory regenerates the prime-banked-memory comparison and
// reports power-of-two-stride stalls per element for both organisations.
func BenchmarkPrimeMemory(b *testing.B) {
	var pow2, prime float64
	for i := 0; i < b.N; i++ {
		tab := experiments.PrimeMemoryTable()
		pow2, _ = strconv.ParseFloat(tab.Cell(2, 1), 64)
		prime, _ = strconv.ParseFloat(tab.Cell(2, 2), 64)
	}
	b.ReportMetric(pow2, "pow2-stalls/elem")
	b.ReportMetric(prime, "prime-stalls/elem")
}

// BenchmarkHardwareClaim regenerates the §2.3 hardware quantities: gate
// count and critical-path margin of the Figure-1 datapath at the paper's
// parameters.
func BenchmarkHardwareClaim(b *testing.B) {
	var gates, margin float64
	for i := 0; i < b.N; i++ {
		d, err := hw.NewDatapath(13, 4)
		if err != nil {
			b.Fatal(err)
		}
		gates = float64(d.Gates())
		margin = float64(hw.AddressAdderDelay(32) - d.Delay())
	}
	b.ReportMetric(gates, "gates")
	b.ReportMetric(margin, "gate-delay-margin")
}

// BenchmarkKernelSuite runs the full kernel × organisation matrix and
// reports the suite-wide direct/prime conflict ratio.
func BenchmarkKernelSuite(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tab := experiments.KernelConflictTable()
		var direct, prime float64
		for r := 0; r < tab.Rows(); r++ {
			d, _ := strconv.ParseFloat(tab.Cell(r, 1), 64)
			p, _ := strconv.ParseFloat(tab.Cell(r, 6), 64)
			direct += d
			prime += p
		}
		ratio = direct / (prime + 1)
	}
	b.ReportMetric(ratio, "direct/prime-conflicts")
}

// BenchmarkSensitivity reports the prime design's dominant swing (P_ds)
// against its stride swing — the "stride sensitivity removed" ablation.
func BenchmarkSensitivity(b *testing.B) {
	var pds, p1 float64
	for i := 0; i < b.N; i++ {
		entries, err := vcm.Sensitivity(vcm.PrimeGeom(13), vcm.DefaultMachine(64, 32), vcm.DefaultVCM(4096), 1<<20, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			switch e.Parameter {
			case "P_ds":
				pds = e.Swing()
			case "P_stride1":
				p1 = e.Swing()
			}
		}
	}
	b.ReportMetric(pds, "pds-swing")
	b.ReportMetric(p1, "stride-swing")
}

// BenchmarkVisaDAXPY measures ISA-level simulation throughput.
func BenchmarkVisaDAXPY(b *testing.B) {
	cpu, err := visa.New(visa.Config{Mach: vcm.DefaultMachine(64, 32), MemWords: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	prog := visa.DAXPY(2.0, 0, 32768, 1, 1, 4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cpu.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// --- additional device microbenchmarks --------------------------------------

// BenchmarkSkewedCacheAccess measures the XOR-hashed baseline's
// simulation throughput.
func BenchmarkSkewedCacheAccess(b *testing.B) {
	c, err := cache.NewSkewed(8192)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(cache.Access{Addr: uint64(i) * 4096, Stream: 1})
	}
}

// BenchmarkVictimCacheAccess measures the victim-buffered baseline.
func BenchmarkVictimCacheAccess(b *testing.B) {
	c, err := cache.NewVictim(8192, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(cache.Access{Addr: uint64(i) * 4096, Stream: 1})
	}
}

// BenchmarkMembankVectorLoad measures the event-driven bank simulator.
func BenchmarkMembankVectorLoad(b *testing.B) {
	s := membank.MustNew(64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		s.VectorLoad(uint64(i), 16, 64)
	}
}

// BenchmarkFFT2DTraced measures the traced four-step FFT kernel.
func BenchmarkFFT2DTraced(b *testing.B) {
	c, _ := cache.NewPrime(13)
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := make([]complex128, len(x))
		copy(y, x)
		if err := workloads.FFT2D(y, 64, 64, 0, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConjugateGradient measures the traced CG solver.
func BenchmarkConjugateGradient(b *testing.B) {
	a := workloads.NewMatrix(24, 24, 0)
	for i := 0; i < 24; i++ {
		for j := 0; j <= i; j++ {
			v := float64((i*7+j*3)%11) - 5
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		a.Set(i, i, a.At(i, i)+24)
	}
	rhs := workloads.NewVector(24, 100000)
	for i := range rhs.Data {
		rhs.Data[i] = float64(i % 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := workloads.NewVector(24, 200000)
		if _, err := workloads.ConjugateGradient(a, rhs, x, 100, 1e-8, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVprocBlock measures the trace-level machine simulator per
// simulated block.
func BenchmarkVprocBlock(b *testing.B) {
	g := vcm.PrimeGeom(13)
	cfg := vproc.Config{
		Mach: vcm.DefaultMachine(64, 32),
		Work: vcm.VCM{B: 1024, R: 4, Pds: 0.25, P1S1: 0.25, P1S2: 0.25},
		Geom: &g,
		Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vproc.Run(cfg, 1024); err != nil {
			b.Fatal(err)
		}
	}
}
