package primecache_test

import (
	"fmt"

	"primecache"
)

// The headline behaviour: a power-of-two-stride sweep re-used once is
// conflict-free in the prime-mapped cache and thrashes the direct-mapped
// cache of the same size.
func Example() {
	prime, _ := primecache.NewPrimeCache(13) // 8191 one-word lines
	direct, _ := primecache.NewDirectCache(8192)
	for pass := 0; pass < 2; pass++ {
		prime.LoadVector(0, 512, 4096, 1)
		direct.LoadVector(0, 512, 4096, 1)
	}
	fmt.Printf("prime:  hits=%d conflicts=%d\n", prime.Stats().Hits, prime.Stats().Conflict)
	fmt.Printf("direct: hits=%d conflicts=%d\n", direct.Stats().Hits, direct.Stats().Conflict)
	// Output:
	// prime:  hits=4096 conflicts=0
	// direct: hits=0 conflicts=4096
}

// The analytical model at the paper's Figure-7 operating point.
func ExampleCyclesPerResultCC() {
	m := primecache.DefaultMachine(64, 64)
	w := primecache.DefaultWorkload(4096)
	const n = 1 << 20
	mm := primecache.CyclesPerResultMM(m, w, n)
	dir := primecache.CyclesPerResultCC(primecache.DirectGeometry(13), m, w, n)
	prm := primecache.CyclesPerResultCC(primecache.PrimeGeometry(13), m, w, n)
	fmt.Printf("MM %.1f, direct %.1f, prime %.1f cycles/result\n", mm, dir, prm)
	fmt.Printf("speedups: %.1fx over direct, %.1fx over MM\n", dir/prm, mm/prm)
	// Output:
	// MM 16.2, direct 11.8, prime 3.7 cycles/result
	// speedups: 3.2x over direct, 4.4x over MM
}

// §4's blocking recipe: for any leading dimension, a conflict-free
// sub-block with utilisation close to one.
func ExampleMaxConflictFreeBlock() {
	b1, b2, _ := primecache.MaxConflictFreeBlock(8191, 10000)
	fmt.Printf("b1=%d b2=%d utilization=%.3f\n", b1, b2, float64(b1*b2)/8191)
	// Output:
	// b1=1809 b2=4 utilization=0.883
}

// Blocked kernels run unchanged against any cache and produce real
// numeric results; the cache only observes the reference stream.
func ExampleBlockedMatMul() {
	a := primecache.NewMatrix(2, 2, 0)
	b := primecache.NewMatrix(2, 2, 100)
	c := primecache.NewMatrix(2, 2, 200)
	a.Set(0, 0, 1)
	a.Set(1, 1, 2)
	b.Set(0, 0, 3)
	b.Set(1, 0, 4)
	vc, _ := primecache.NewPrimeCache(13)
	primecache.BlockedMatMul(a, b, c, 2, vc.Cache())
	fmt.Printf("c = [%g %g; %g %g], refs=%d\n", c.At(0, 0), c.At(0, 1), c.At(1, 0), c.At(1, 1), vc.Stats().Accesses)
	// Output:
	// c = [3 0; 8 0], refs=28
}

// Blocking advice for any leading dimension: the §4 recipe.
func ExampleChooseBlocking() {
	prime, _ := primecache.ChooseBlocking(primecache.PrimeGeometry(13), 8192, 0)
	direct, _ := primecache.ChooseBlocking(primecache.DirectGeometry(13), 8192, 0)
	fmt.Printf("prime:  %dx%d conflict-free=%v\n", prime.B1, prime.B2, prime.ConflictFree)
	fmt.Printf("direct: %dx%d conflict-free=%v\n", direct.B1, direct.B2, direct.ConflictFree)
	// Output:
	// prime:  1x8191 conflict-free=true
	// direct: 8192x1 conflict-free=true
}

// The §3.1 presets plug straight into the model.
func ExampleMatMulWorkload() {
	w, _ := primecache.MatMulWorkload(64)
	fmt.Printf("B=%d R=%d Pds=%.4f\n", w.B, w.R, w.Pds)
	// Output:
	// B=4096 R=64 Pds=0.0156
}
