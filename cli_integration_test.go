package primecache

// End-to-end tests of the command-line tools: build each binary once and
// drive it the way a user would, checking real stdout. Skipped under
// -short.

import (
	"bufio"
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"primecache/internal/client"
	"primecache/internal/server"
	"primecache/internal/trace"
)

// buildTool compiles ./cmd/<name> into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, stdin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()

	t.Run("figures", func(t *testing.T) {
		bin := buildTool(t, dir, "figures")
		out := runTool(t, bin, "", "-fig", "7")
		for _, want := range []string{"Figure 7", "CC-prime", "t_m"} {
			if !strings.Contains(out, want) {
				t.Errorf("figures -fig 7 missing %q:\n%s", want, out)
			}
		}
		out = runTool(t, bin, "", "-fig", "summary", "-md")
		if !strings.Contains(out, "| quantity |") {
			t.Errorf("markdown summary malformed:\n%s", out)
		}
		out = runTool(t, bin, "", "-fig", "8", "-plot")
		if !strings.Contains(out, "|") || !strings.Contains(out, "* MM") {
			t.Errorf("plot output malformed:\n%s", out)
		}
		// SVG output.
		svgDir := t.TempDir()
		runTool(t, bin, "", "-fig", "9", "-svg", svgDir)
		data, err := os.ReadFile(filepath.Join(svgDir, "figure9.svg"))
		if err != nil || !strings.Contains(string(data), "<svg") {
			t.Errorf("svg file: %v", err)
		}
		// Custom config.
		cfg := filepath.Join(dir, "sweep.json")
		os.WriteFile(cfg, []byte(`{"name":"it","banks":64,"tm":32,"b":1024,"r":0,"pds":0.25,"p1":0.25,"n":65536,"sweep":"tm","from":8,"to":16,"step":8,"models":["direct","prime"]}`), 0o644)
		out = runTool(t, bin, "", "-config", cfg)
		if !strings.Contains(out, "custom: it") {
			t.Errorf("custom sweep output:\n%s", out)
		}
	})

	t.Run("vcachesim", func(t *testing.T) {
		bin := buildTool(t, dir, "vcachesim")
		out := runTool(t, bin, "", "-cache", "prime", "-pattern", "strided", "-stride", "512", "-n", "1024", "-passes", "2")
		if !strings.Contains(out, "conflict 0") && !strings.Contains(out, "conflict") {
			t.Errorf("vcachesim output:\n%s", out)
		}
		if !strings.Contains(out, "mersenne adder steps") {
			t.Errorf("missing adder steps:\n%s", out)
		}
		// Trace file round trip with -fit -json.
		tf := filepath.Join(dir, "t.trace")
		os.WriteFile(tf, []byte("R 0 1\nR 1000 1\nR 2000 1\nR 3000 1\n"), 0o644)
		out = runTool(t, bin, "", "-cache", "direct", "-tracefile", tf, "-json")
		if !strings.Contains(out, `"Accesses": 8`) {
			t.Errorf("json output:\n%s", out)
		}
	})

	t.Run("vcmodel", func(t *testing.T) {
		bin := buildTool(t, dir, "vcmodel")
		out := runTool(t, bin, "", "-banks", "64", "-tm", "32", "-b", "2048")
		for _, want := range []string{"cycles per result", "CC-prime", "cross-interference"} {
			if !strings.Contains(out, want) {
				t.Errorf("vcmodel missing %q:\n%s", want, out)
			}
		}
		out = runTool(t, bin, "", "-sensitivity", "0.25")
		if !strings.Contains(out, "sensitivity") || !strings.Contains(out, "P_ds") {
			t.Errorf("sensitivity output:\n%s", out)
		}
	})

	t.Run("tracegen", func(t *testing.T) {
		bin := buildTool(t, dir, "tracegen")
		out := runTool(t, bin, "", "-pattern", "strided", "-stride", "7", "-n", "8")
		lines := strings.Count(strings.TrimSpace(out), "\n") + 1
		if lines != 8 {
			t.Errorf("tracegen emitted %d lines, want 8:\n%s", lines, out)
		}
		if !strings.HasPrefix(out, "R 0 1") {
			t.Errorf("first ref: %q", strings.SplitN(out, "\n", 2)[0])
		}
	})

	t.Run("vasm", func(t *testing.T) {
		bin := buildTool(t, dir, "vasm")
		asm := filepath.Join(dir, "p.vasm")
		os.WriteFile(asm, []byte("loads s1, 0\nloads s2, 1\nloop 4\n addss s1, s1, s2\nendloop\n"), 0o644)
		out := runTool(t, bin, "", "-file", asm, "-disasm")
		for _, want := range []string{"cycles:", "s1=4", "loop   4"} {
			if !strings.Contains(out, want) {
				t.Errorf("vasm missing %q:\n%s", want, out)
			}
		}
		// Stdin mode with a cache.
		out = runTool(t, bin, "setvl 8\nloada a0, 0\nloada a1, 1\nloadv v0, (a0), a1\n", "-file", "-", "-cache", "prime")
		if !strings.Contains(out, "cache:") {
			t.Errorf("vasm cache stats missing:\n%s", out)
		}
	})

	t.Run("vcached", func(t *testing.T) {
		bin := buildTool(t, dir, "vcached")
		// -addr :0 binds a free port; the daemon logs the actual address.
		// A tiny -max-refs makes job_too_large reachable with a small job.
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-max-refs", "100000", "-drain", "10s")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer cmd.Process.Kill()

		// Parse "vcached listening on 127.0.0.1:PORT (...)" from the log.
		addrc := make(chan string, 1)
		logc := make(chan string, 1)
		go func() {
			var buf strings.Builder
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				line := sc.Text()
				buf.WriteString(line + "\n")
				if i := strings.Index(line, "listening on "); i >= 0 {
					addr := line[i+len("listening on "):]
					if j := strings.IndexByte(addr, ' '); j >= 0 {
						addr = addr[:j]
					}
					select {
					case addrc <- addr:
					default:
					}
				}
			}
			logc <- buf.String()
		}()
		var addr string
		select {
		case addr = <-addrc:
		case <-time.After(10 * time.Second):
			t.Fatal("vcached did not log its listen address")
		}

		c := client.New("http://"+addr, client.WithSeed(1))
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := c.Healthz(ctx); err != nil {
			t.Fatalf("healthz: %v", err)
		}
		res, err := c.Simulate(ctx, server.SimulateRequest{
			Pattern: trace.Pattern{Name: "strided", Stride: 512, N: 4096},
			Passes:  2,
		})
		if err != nil {
			t.Fatalf("simulate: %v", err)
		}
		if res.Stats.Accesses != 8192 {
			t.Errorf("accesses = %d, want 8192", res.Stats.Accesses)
		}
		// Above the flag-configured -max-refs cap: typed job_too_large.
		_, err = c.Simulate(ctx, server.SimulateRequest{
			Pattern: trace.Pattern{Name: "strided", Stride: 512, N: 200_000},
		})
		var ce *client.Error
		if !errors.As(err, &ce) || ce.Code != server.CodeJobTooLarge {
			t.Errorf("oversized job err = %v, want job_too_large", err)
		}
		stats, err := c.Stats(ctx)
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if stats.Admission.Capacity == 0 {
			t.Error("stats missing admission capacity")
		}

		// SIGTERM: the daemon drains and exits cleanly. Wait for the
		// stderr scanner to hit EOF (the process exiting) before calling
		// cmd.Wait — Wait closes the pipe and would race the final log
		// lines out from under the scanner.
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		var logs string
		select {
		case logs = <-logc:
		case <-time.After(15 * time.Second):
			t.Fatal("vcached did not exit after SIGTERM")
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("vcached exited with %v:\n%s", err, logs)
		}
		if !strings.Contains(logs, "drained") {
			t.Errorf("shutdown log missing drain message:\n%s", logs)
		}
	})

	t.Run("primebench", func(t *testing.T) {
		bin := buildTool(t, dir, "primebench")
		out := runTool(t, bin, "", "-conflicts")
		for _, want := range []string{"kernel", "prime", "fft 128x128"} {
			if !strings.Contains(out, want) {
				t.Errorf("primebench missing %q:\n%s", want, out)
			}
		}
		// Regression-harness subcommands: list, a smoke bench run over
		// the cache scenarios, and a self-comparison of the report.
		out = runTool(t, bin, "", "list")
		if !strings.Contains(out, "cache/prime/strided64/batch") {
			t.Errorf("primebench list missing the batch scenario:\n%s", out)
		}
		bf := filepath.Join(dir, "BENCH_it.json")
		runTool(t, bin, "", "bench", "-smoke", "-run", "^cache/", "-out", bf)
		if data, err := os.ReadFile(bf); err != nil || !strings.Contains(string(data), `"schemaVersion": 1`) {
			t.Errorf("bench report: %v\n%s", err, data)
		}
		out = runTool(t, bin, "", "compare", bf, bf)
		if !strings.Contains(out, "ok:") {
			t.Errorf("self-comparison did not pass:\n%s", out)
		}
	})
}
