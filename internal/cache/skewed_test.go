package cache

import "testing"

func TestNewSkewedValidation(t *testing.T) {
	for _, lines := range []int{0, 2, 3, 100} {
		if _, err := NewSkewed(lines); err == nil {
			t.Errorf("NewSkewed(%d) accepted", lines)
		}
	}
	s, err := NewSkewed(8192)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lines() != 8192 {
		t.Errorf("Lines = %d", s.Lines())
	}
}

func TestSkewedBasicHitMiss(t *testing.T) {
	s, _ := NewSkewed(64)
	r := s.Access(Access{Addr: 8, Stream: 1})
	if r.Hit || r.Kind != MissCompulsory {
		t.Errorf("first access: %+v", r)
	}
	if !s.Access(Access{Addr: 8, Stream: 1}).Hit {
		t.Error("second access should hit")
	}
	st := s.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestSkewedHashesDiffer(t *testing.T) {
	s, _ := NewSkewed(8192)
	// The two hashes agree only when the mid field is rotation-invariant
	// (0 or all-ones): sample widely-spread lines so mid is non-trivial.
	differ, total := 0, 0
	for i := uint64(0); i < 2000; i++ {
		line := i * 7919
		total++
		if s.hash(0, line) != s.hash(1, line) {
			differ++
		}
	}
	if differ < total*95/100 {
		t.Errorf("hashes equal too often: %d/%d differ", differ, total)
	}
	// Hash range check.
	for line := uint64(0); line < 100000; line += 997 {
		for w := 0; w < 2; w++ {
			if h := s.hash(w, line); h < 0 || h >= 4096 {
				t.Fatalf("hash(%d,%d) = %d out of range", w, line, h)
			}
		}
	}
}

// TestSkewedDispersesPowerOfTwoStride: the skewed cache breaks up the
// worst-case power-of-two stride far better than direct mapping (that is
// its design goal) but — unlike the prime mapping — it cannot make the
// pattern conflict-free: hashing disperses, a prime modulus eliminates.
func TestSkewedDispersesPowerOfTwoStride(t *testing.T) {
	const n, stride = 2048, 512
	direct, _ := NewDirect(8192)
	skewed, _ := NewSkewed(8192)
	prime, _ := NewPrime(13)
	for pass := 0; pass < 4; pass++ {
		a := int64(0)
		for i := 0; i < n; i++ {
			direct.Access(Access{Addr: uint64(a) * 8, Stream: 1})
			skewed.Access(Access{Addr: uint64(a) * 8, Stream: 1})
			prime.Access(Access{Addr: uint64(a) * 8, Stream: 1})
			a += stride
		}
	}
	ds, ss, ps := direct.Stats(), skewed.Stats(), prime.Stats()
	if ss.Conflict >= ds.Conflict {
		t.Errorf("skewed conflicts %d not below direct %d", ss.Conflict, ds.Conflict)
	}
	if ps.Conflict != 0 {
		t.Errorf("prime conflicts = %d, want 0", ps.Conflict)
	}
}

// TestSkewedBirthdayCollisionsNearCapacity separates hashing from prime
// mapping: at ~85% utilisation a strided working set still fits
// conflict-free in the prime cache (distinct residues), while the skewed
// cache's pseudo-random placement suffers birthday collisions.
func TestSkewedBirthdayCollisionsNearCapacity(t *testing.T) {
	const n, stride = 7000, 3 // 7000 distinct lines, coprime stride
	skewed, _ := NewSkewed(8192)
	prime, _ := NewPrime(13)
	for pass := 0; pass < 3; pass++ {
		a := int64(0)
		for i := 0; i < n; i++ {
			skewed.Access(Access{Addr: uint64(a) * 8, Stream: 1})
			prime.Access(Access{Addr: uint64(a) * 8, Stream: 1})
			a += stride
		}
	}
	if ps := prime.Stats(); ps.Conflict != 0 {
		t.Errorf("prime conflicts = %d, want 0 at 85%% utilisation", ps.Conflict)
	}
	if ss := skewed.Stats(); ss.Conflict == 0 {
		t.Error("skewed cache should suffer birthday collisions at 85% utilisation")
	}
}

func TestSkewedInterferenceAttribution(t *testing.T) {
	s, _ := NewSkewed(64)
	// Find three lines that collide in both ways pairwise... simpler:
	// hammer a working set larger than both candidate frames of one
	// index by brute force and check that classification invariants
	// hold.
	for i := 0; i < 5000; i++ {
		s.Access(Access{Addr: uint64(i%96) * 8 * 64, Stream: 1 + i%2})
	}
	st := s.Stats()
	if st.Hits+st.Misses != st.Accesses {
		t.Error("hit/miss accounting broken")
	}
	if st.Compulsory+st.Capacity+st.Conflict != st.Misses {
		t.Error("3C partition broken")
	}
	if st.SelfInterference+st.CrossInterference > st.Conflict {
		t.Error("interference attribution exceeds conflicts")
	}
}

func TestSkewedWriteCounting(t *testing.T) {
	s, _ := NewSkewed(64)
	s.Access(Access{Addr: 0, Write: true, Stream: 1})
	if st := s.Stats(); st.Writes != 1 || st.Reads != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestSkewedDescribeFlush(t *testing.T) {
	s, _ := NewSkewed(64)
	if got := s.Describe(); got != "skewed 2-way 32 sets × 8B lines (xor)" {
		t.Errorf("Describe = %q", got)
	}
	s.Access(Access{Addr: 0, Stream: 1})
	s.Flush()
	if s.Stats().Accesses != 0 {
		t.Error("Flush kept stats")
	}
	if r := s.Access(Access{Addr: 0, Stream: 1}); r.Hit || r.Kind != MissCompulsory {
		t.Errorf("post-flush access: %+v", r)
	}
}
