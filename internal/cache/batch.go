package cache

// Batched execution fast path. The per-access Sim.Access entry point
// pays interface dispatch, a virtual Mapper.Index call, and a Result
// copy on every reference; for trace replay those costs dominate once
// the simulated organisation itself is cheap. AccessBatch amortises
// them: set indices are computed by a devirtualized loop specialised on
// the concrete mapper, statistics and the LRU clock accumulate in
// locals and are written back once per batch, and callers that only
// fold statistics pass a nil result slice so no per-access Result is
// materialised at all.
//
// Batched and per-access execution are observably identical: the same
// access sequence produces byte-identical Stats and per-access Results
// regardless of how it is chunked (see TestAccessBatchEquivalence and
// the differential-oracle campaign, which drives the fast simulators
// through this path against per-access references).

import "context"

// BatchSim is implemented by organisations with a devirtualized batch
// fast path. AccessBatch processes accs in order, exactly as len(accs)
// sequential Access calls would; when out is non-nil it must have at
// least len(accs) elements and out[i] receives the Result of accs[i].
type BatchSim interface {
	Sim
	AccessBatch(accs []Access, out []Result)
}

var (
	_ BatchSim = (*Cache)(nil)
	_ BatchSim = (*SkewedCache)(nil)
	_ BatchSim = (*VictimCache)(nil)
	_ BatchSim = (*PrefetchCache)(nil)
)

// AccessBatchContext streams accs through s in chunks of chunkSize,
// checking ctx.Err() between chunks so a multi-million-reference batch
// can be abandoned mid-flight without a per-access branch. It returns
// how many references completed; when it stops early the error is
// ctx's. chunkSize <= 0 selects one ctx check for the whole slice.
// The access sequence it applies is byte-identical to AccessBatch's
// regardless of chunking (see TestAccessBatchEquivalence).
func AccessBatchContext(ctx context.Context, s Sim, accs []Access, out []Result, chunkSize int) (int, error) {
	if chunkSize <= 0 {
		chunkSize = len(accs)
	}
	done := 0
	for done < len(accs) {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		hi := done + chunkSize
		if hi > len(accs) {
			hi = len(accs)
		}
		var chunkOut []Result
		if out != nil {
			chunkOut = out[done:hi]
		}
		AccessBatch(s, accs[done:hi], chunkOut)
		done = hi
	}
	return done, nil
}

// AccessBatch streams accs through any Sim: organisations implementing
// BatchSim take their devirtualized fast path, everything else (e.g.
// the oracle's reference simulators) falls back to a per-access loop
// with identical semantics. out may be nil when the caller only wants
// the statistics side effects.
func AccessBatch(s Sim, accs []Access, out []Result) {
	if bs, ok := s.(BatchSim); ok {
		bs.AccessBatch(accs, out)
		return
	}
	if out == nil {
		for _, a := range accs {
			s.Access(a)
		}
		return
	}
	for i, a := range accs {
		out[i] = s.Access(a)
	}
}

// setScratch returns a reusable set-index buffer of at least n entries.
func (c *Cache) setScratch(n int) []int {
	if cap(c.scratch) < n {
		c.scratch = make([]int, n)
	}
	return c.scratch[:n]
}

// AccessBatch implements BatchSim. It is equivalent to calling Access
// for each element of accs in order (same Results, same Stats, same
// final cache state) but computes set indices without per-access
// interface dispatch and accumulates counters in registers.
func (c *Cache) AccessBatch(accs []Access, out []Result) {
	if len(accs) == 0 {
		return
	}
	idx := c.setScratch(len(accs))
	shift := c.lineShift
	switch m := c.cfg.Mapper.(type) {
	case DirectMapper:
		mask := m.mask
		for i := range accs {
			idx[i] = int((accs[i].Addr >> shift) & mask)
		}
	case PrimeMapper:
		mod := m.mod
		for i := range accs {
			idx[i] = int(mod.Reduce(accs[i].Addr >> shift))
		}
	case ModuloMapper:
		sets := uint64(m.sets)
		for i := range accs {
			idx[i] = int((accs[i].Addr >> shift) % sets)
		}
	default:
		mp := c.cfg.Mapper
		for i := range accs {
			idx[i] = mp.Index(accs[i].Addr >> shift)
		}
	}
	if c.cfg.Ways == 1 {
		c.batchDirect(accs, out, idx)
	} else {
		c.batchAssoc(accs, out, idx)
	}
}

// batchDirect is the one-way (direct- and prime-mapped) inner loop: no
// way scan, no replacement policy, victim is always frame 0.
func (c *Cache) batchDirect(accs []Access, out []Result, idx []int) {
	clock := c.clock
	st := c.stats
	shift := c.lineShift
	wb := c.cfg.WriteBack
	classify := c.shadow != nil
	for i := range accs {
		a := &accs[i]
		clock++
		st.Accesses++
		if a.Write {
			st.Writes++
			if !wb {
				st.MemoryWrites++
			}
		} else {
			st.Reads++
		}
		line := a.Addr >> shift
		set := idx[i]
		w := &c.sets[set][0]

		// A shadow hit implies the line was referenced before, so the
		// compulsory (seen) lookup is needed only on shadow misses —
		// steady-state replay skips one map operation per access.
		var firstRef, shadowHit bool
		if classify {
			shadowHit = c.shadow.touch(line)
			if !shadowHit && !c.seen[line] {
				firstRef = true
				c.seen[line] = true
			}
		}

		if w.valid && w.line == line {
			w.lastUse = clock
			if a.Write && wb {
				w.dirty = true
			}
			st.Hits++
			if out != nil {
				out[i] = Result{Hit: true, Set: set}
			}
			continue
		}

		st.Misses++
		res := Result{Set: set}
		if classify {
			switch {
			case firstRef:
				res.Kind = MissCompulsory
				st.Compulsory++
			case shadowHit:
				res.Kind = MissConflict
				st.Conflict++
				if evictor, ok := c.evictedBy[line]; ok && a.Stream != StreamNone && evictor != StreamNone {
					if evictor == a.Stream {
						res.SelfInterference = true
						st.SelfInterference++
					} else {
						res.CrossInterference = true
						st.CrossInterference++
					}
				}
			default:
				res.Kind = MissCapacity
				st.Capacity++
			}
		}
		if w.valid {
			res.Evicted = true
			res.EvictedLine = w.line
			st.Evictions++
			if w.prefetched {
				c.prefetchWasted++
			}
			if w.dirty {
				st.Writebacks++
				st.MemoryWrites++
			}
			if c.evictedBy != nil {
				c.evictedBy[w.line] = a.Stream
			}
		}
		*w = way{valid: true, line: line, stream: a.Stream, lastUse: clock, filled: clock,
			dirty: a.Write && wb}
		if out != nil {
			out[i] = res
		}
	}
	c.clock = clock
	c.stats = st
}

// batchAssoc is the set-associative inner loop: a way scan per access
// and the configured replacement policy, with the same local-counter
// accumulation as batchDirect.
func (c *Cache) batchAssoc(accs []Access, out []Result, idx []int) {
	clock := c.clock
	st := c.stats
	shift := c.lineShift
	wb := c.cfg.WriteBack
	classify := c.shadow != nil
	for i := range accs {
		a := &accs[i]
		clock++
		st.Accesses++
		if a.Write {
			st.Writes++
			if !wb {
				st.MemoryWrites++
			}
		} else {
			st.Reads++
		}
		line := a.Addr >> shift
		set := idx[i]
		ways := c.sets[set]

		// As in batchDirect: shadow hit ⇒ seen, so the compulsory lookup
		// runs only on shadow misses.
		var firstRef, shadowHit bool
		if classify {
			shadowHit = c.shadow.touch(line)
			if !shadowHit && !c.seen[line] {
				firstRef = true
				c.seen[line] = true
			}
		}

		hit := false
		for j := range ways {
			if ways[j].valid && ways[j].line == line {
				ways[j].lastUse = clock
				if a.Write && wb {
					ways[j].dirty = true
				}
				st.Hits++
				if out != nil {
					out[i] = Result{Hit: true, Set: set, Way: j}
				}
				hit = true
				break
			}
		}
		if hit {
			continue
		}

		st.Misses++
		res := Result{Set: set}
		if classify {
			switch {
			case firstRef:
				res.Kind = MissCompulsory
				st.Compulsory++
			case shadowHit:
				res.Kind = MissConflict
				st.Conflict++
				if evictor, ok := c.evictedBy[line]; ok && a.Stream != StreamNone && evictor != StreamNone {
					if evictor == a.Stream {
						res.SelfInterference = true
						st.SelfInterference++
					} else {
						res.CrossInterference = true
						st.CrossInterference++
					}
				}
			default:
				res.Kind = MissCapacity
				st.Capacity++
			}
		}
		victim := c.pickVictim(ways)
		if ways[victim].valid {
			res.Evicted = true
			res.EvictedLine = ways[victim].line
			st.Evictions++
			if ways[victim].prefetched {
				c.prefetchWasted++
			}
			if ways[victim].dirty {
				st.Writebacks++
				st.MemoryWrites++
			}
			if c.evictedBy != nil {
				c.evictedBy[ways[victim].line] = a.Stream
			}
		}
		ways[victim] = way{valid: true, line: line, stream: a.Stream, lastUse: clock, filled: clock,
			dirty: a.Write && wb}
		res.Way = victim
		if out != nil {
			out[i] = res
		}
	}
	c.clock = clock
	c.stats = st
}

// AccessBatch implements BatchSim: the two XOR hash probes and the
// recency compare run with counters in locals, written back once.
func (s *SkewedCache) AccessBatch(accs []Access, out []Result) {
	clock := s.clock
	st := s.stats
	shift := s.lineShift
	for i := range accs {
		a := &accs[i]
		clock++
		st.Accesses++
		if a.Write {
			st.Writes++
		} else {
			st.Reads++
		}
		line := a.Addr >> shift

		// Shadow hit ⇒ seen before, so the compulsory lookup runs only on
		// shadow misses (same reasoning as Cache.batchDirect).
		shadowHit := s.shadow.touch(line)
		firstRef := false
		if !shadowHit && !s.seen[line] {
			firstRef = true
			s.seen[line] = true
		}

		i0, i1 := s.hash(0, line), s.hash(1, line)
		e0, e1 := &s.ways[0][i0], &s.ways[1][i1]
		if e0.valid && e0.line == line {
			e0.lastUse = clock
			st.Hits++
			if out != nil {
				out[i] = Result{Hit: true, Set: i0, Way: 0}
			}
			continue
		}
		if e1.valid && e1.line == line {
			e1.lastUse = clock
			st.Hits++
			if out != nil {
				out[i] = Result{Hit: true, Set: i1, Way: 1}
			}
			continue
		}

		st.Misses++
		res := Result{}
		switch {
		case firstRef:
			res.Kind = MissCompulsory
			st.Compulsory++
		case shadowHit:
			res.Kind = MissConflict
			st.Conflict++
			if evictor, ok := s.evictedBy[line]; ok && a.Stream != StreamNone && evictor != StreamNone {
				if evictor == a.Stream {
					res.SelfInterference = true
					st.SelfInterference++
				} else {
					res.CrossInterference = true
					st.CrossInterference++
				}
			}
		default:
			res.Kind = MissCapacity
			st.Capacity++
		}

		w, victim := 0, e0
		switch {
		case !e0.valid:
		case !e1.valid:
			w, victim = 1, e1
		case e1.lastUse < e0.lastUse:
			w, victim = 1, e1
		}
		if victim.valid {
			res.Evicted = true
			res.EvictedLine = victim.line
			st.Evictions++
			s.evictedBy[victim.line] = a.Stream
		}
		*victim = way{valid: true, line: line, stream: a.Stream, lastUse: clock, filled: clock}
		if w == 0 {
			res.Set = i0
		} else {
			res.Set = i1
		}
		res.Way = w
		if out != nil {
			out[i] = res
		}
	}
	s.clock = clock
	s.stats = st
}

// AccessBatch implements BatchSim. The main array runs its own batch
// fast path first; the victim-buffer bookkeeping then replays the
// per-access outcomes in order. The buffer never influences the main
// array's state, so splitting the two phases is observably identical
// to interleaving them per access.
func (v *VictimCache) AccessBatch(accs []Access, out []Result) {
	if len(accs) == 0 {
		return
	}
	if cap(v.scratch) < len(accs) {
		v.scratch = make([]Result, len(accs))
	}
	res := v.scratch[:len(accs)]
	v.main.AccessBatch(accs, res)
	for i := range accs {
		v.clock++
		r := res[i]
		if !r.Hit {
			line := v.main.LineAddr(accs[i].Addr)
			if r.Evicted {
				v.insert(r.EvictedLine, accs[i].Stream)
			}
			swap := false
			for j := range v.buf {
				if v.buf[j].valid && v.buf[j].line == line {
					v.buf[j].valid = false
					v.hits++
					r.Hit = true
					r.Kind = MissNone
					swap = true
					break
				}
			}
			if !swap {
				v.misses++
			}
		}
		if out != nil {
			out[i] = r
		}
	}
}

// AccessBatch implements BatchSim: a direct (non-interface) per-access
// loop. Prefetch installs issued for element i change what element i+1
// sees, so the prefetcher is inherently sequential; the batch still
// removes the interface dispatch and Result copy of the generic
// fallback.
func (p *PrefetchCache) AccessBatch(accs []Access, out []Result) {
	if out == nil {
		for i := range accs {
			p.Access(accs[i])
		}
		return
	}
	for i := range accs {
		out[i] = p.Access(accs[i])
	}
}
