package cache

import "fmt"

// NewDirect returns a direct-mapped cache of lines lines (a power of two)
// with the paper's default 8-byte lines.
func NewDirect(lines int) (*Cache, error) {
	m, err := NewDirectMapper(lines)
	if err != nil {
		return nil, err
	}
	return New(Config{Mapper: m, Ways: 1})
}

// NewPrime returns a prime-mapped cache with 2^c − 1 lines (c a Mersenne
// prime exponent) and 8-byte lines — the paper's proposed design.
func NewPrime(c uint) (*Cache, error) {
	m, err := NewPrimeMapper(c)
	if err != nil {
		return nil, err
	}
	return New(Config{Mapper: m, Ways: 1})
}

// NewSetAssoc returns an n-way set-associative cache of lines total lines
// with bit-selection indexing and the given replacement policy. lines/ways
// must be a power of two.
func NewSetAssoc(lines, ways int, policy Policy) (*Cache, error) {
	if ways <= 0 || lines%ways != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible into %d ways", lines, ways)
	}
	m, err := NewDirectMapper(lines / ways)
	if err != nil {
		return nil, err
	}
	return New(Config{Mapper: m, Ways: ways, Policy: policy})
}

// NewFullyAssoc returns a fully-associative LRU cache of lines lines.
func NewFullyAssoc(lines int) (*Cache, error) {
	m, err := NewModuloMapper(1)
	if err != nil {
		return nil, err
	}
	return New(Config{Mapper: m, Ways: lines, Policy: LRU})
}

// NewPrimeAssoc returns a set-associative prime-mapped cache: 2^c − 1
// sets of ways ways with LRU replacement — a natural extension beyond the
// paper, combining the prime modulus (kills strided self-interference)
// with associativity (kills small-set ping-pong that even a prime modulus
// cannot: two lines congruent mod 2^c − 1 still collide direct-mapped).
func NewPrimeAssoc(c uint, ways int) (*Cache, error) {
	m, err := NewPrimeMapper(c)
	if err != nil {
		return nil, err
	}
	if ways < 1 {
		return nil, fmt.Errorf("cache: ways must be ≥ 1, got %d", ways)
	}
	return New(Config{Mapper: m, Ways: ways, Policy: LRU})
}
