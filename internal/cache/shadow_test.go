package cache

import "testing"

func TestShadowLRUBasics(t *testing.T) {
	s := newShadow(2)
	if s.touch(1) {
		t.Error("first touch(1) should report absent")
	}
	if !s.touch(1) {
		t.Error("second touch(1) should report present")
	}
	s.touch(2)
	s.touch(1) // 1 MRU, 2 LRU
	s.touch(3) // evicts 2
	if s.touch(2) {
		t.Error("2 should have been evicted as LRU")
	}
	// touching 2 evicted 1? capacity 2: after touch(3): {1,3}; touch(2)
	// evicts 1.
	if s.touch(1) {
		t.Error("1 should have been evicted")
	}
	if s.len() != 2 {
		t.Errorf("len = %d, want 2", s.len())
	}
}

func TestShadowReset(t *testing.T) {
	s := newShadow(4)
	s.touch(1)
	s.touch(2)
	s.reset()
	if s.len() != 0 {
		t.Errorf("len after reset = %d", s.len())
	}
	if s.touch(1) {
		t.Error("reset should forget entries")
	}
}

func TestShadowMatchesReferenceLRU(t *testing.T) {
	// Cross-check against a simple slice-based reference implementation
	// with a pseudo-random access pattern.
	const cap = 8
	s := newShadow(cap)
	var ref []uint64
	refTouch := func(line uint64) bool {
		for i, l := range ref {
			if l == line {
				ref = append(ref[:i], ref[i+1:]...)
				ref = append(ref, line)
				return true
			}
		}
		ref = append(ref, line)
		if len(ref) > cap {
			ref = ref[1:]
		}
		return false
	}
	x := uint64(12345)
	for i := 0; i < 10000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		line := (x >> 33) % 20
		if got, want := s.touch(line), refTouch(line); got != want {
			t.Fatalf("step %d line %d: shadow=%v ref=%v", i, line, got, want)
		}
	}
}
