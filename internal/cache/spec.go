package cache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sim is the minimal interface every cache organisation in this package
// implements: the plain Cache, the SkewedCache, and the VictimCache. It
// is what trace replay and the vcached server program against, so one
// codec can drive any organisation. Implementations are not safe for
// concurrent use; callers own one Sim per goroutine.
type Sim interface {
	Access(Access) Result
	Stats() Stats
	Describe() string
	Flush()
}

var (
	_ Sim = (*Cache)(nil)
	_ Sim = (*SkewedCache)(nil)
	_ Sim = (*VictimCache)(nil)
)

// Spec is a serialisable description of a cache organisation — the one
// configuration codec shared by the vcachesim CLI flags, the vcached
// server's JSON API, and tests. Zero-valued fields take kind-appropriate
// defaults in Normalize.
type Spec struct {
	// Kind selects the organisation: "prime", "direct", "assoc", "full",
	// "prime-assoc", "skewed", or "victim".
	Kind string `json:"kind"`
	// C is the Mersenne exponent for prime and prime-assoc kinds
	// (lines = 2^c − 1; default 13).
	C uint `json:"c,omitempty"`
	// Lines is the line count for the non-prime kinds (default 8192).
	Lines int `json:"lines,omitempty"`
	// Ways is the associativity for assoc and prime-assoc (default 4
	// resp. 2).
	Ways int `json:"ways,omitempty"`
	// Policy is the replacement policy for assoc: "lru", "fifo",
	// "random" (default "lru").
	Policy string `json:"policy,omitempty"`
	// VictimLines is the victim-buffer size for kind "victim"
	// (default 8).
	VictimLines int `json:"victimLines,omitempty"`
}

// SpecKinds lists the valid Spec.Kind values.
func SpecKinds() []string {
	return []string{"prime", "direct", "assoc", "full", "prime-assoc", "skewed", "victim"}
}

// ParsePolicy converts a policy name ("lru", "fifo", "random") into a
// Policy.
func ParsePolicy(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "", "lru":
		return LRU, nil
	case "fifo":
		return FIFO, nil
	case "random":
		return Random, nil
	default:
		return 0, fmt.Errorf("cache: unknown policy %q (want lru, fifo, or random)", name)
	}
}

// Normalize returns a copy of s with defaults filled in for zero-valued
// fields.
func (s Spec) Normalize() Spec {
	if s.Kind == "" {
		s.Kind = "prime"
	}
	s.Kind = strings.ToLower(s.Kind)
	if s.C == 0 {
		s.C = 13
	}
	if s.Lines == 0 {
		s.Lines = 8192
	}
	if s.Ways == 0 {
		switch s.Kind {
		case "prime-assoc":
			s.Ways = 2
		default:
			s.Ways = 4
		}
	}
	if s.Policy == "" {
		s.Policy = "lru"
	}
	if s.VictimLines == 0 {
		s.VictimLines = 8
	}
	return s
}

// Validate checks the (normalised) spec without building anything.
func (s Spec) Validate() error {
	_, err := s.Build()
	return err
}

// Build constructs the described cache organisation. The spec is
// normalised first, so zero-valued fields take their defaults.
func (s Spec) Build() (Sim, error) {
	s = s.Normalize()
	switch s.Kind {
	case "prime":
		return NewPrime(s.C)
	case "direct":
		return NewDirect(s.Lines)
	case "assoc":
		p, err := ParsePolicy(s.Policy)
		if err != nil {
			return nil, err
		}
		return NewSetAssoc(s.Lines, s.Ways, p)
	case "full":
		return NewFullyAssoc(s.Lines)
	case "prime-assoc":
		return NewPrimeAssoc(s.C, s.Ways)
	case "skewed":
		return NewSkewed(s.Lines)
	case "victim":
		return NewVictim(s.Lines, s.VictimLines)
	default:
		return nil, fmt.Errorf("cache: unknown kind %q (want one of %s)",
			s.Kind, strings.Join(SpecKinds(), ", "))
	}
}

// ParseSpec parses the compact one-string form "kind" or
// "kind:key=val,key=val" (e.g. "prime:c=13", "assoc:lines=8192,ways=4,
// policy=fifo", "victim:lines=8192,victim=8") used by CLI flags and
// tests. Keys: c, lines, ways, policy, victim.
func ParseSpec(expr string) (Spec, error) {
	var s Spec
	kind, rest, _ := strings.Cut(strings.TrimSpace(expr), ":")
	s.Kind = strings.ToLower(strings.TrimSpace(kind))
	if s.Kind == "" {
		return s, fmt.Errorf("cache: empty spec %q", expr)
	}
	if rest != "" {
		for _, field := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(field, "=")
			if !ok {
				return s, fmt.Errorf("cache: spec field %q is not key=value", field)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			switch key {
			case "c":
				n, err := strconv.ParseUint(val, 10, 8)
				if err != nil {
					return s, fmt.Errorf("cache: spec c=%q: %v", val, err)
				}
				s.C = uint(n)
			case "lines":
				n, err := strconv.Atoi(val)
				if err != nil {
					return s, fmt.Errorf("cache: spec lines=%q: %v", val, err)
				}
				s.Lines = n
			case "ways":
				n, err := strconv.Atoi(val)
				if err != nil {
					return s, fmt.Errorf("cache: spec ways=%q: %v", val, err)
				}
				s.Ways = n
			case "policy":
				s.Policy = val
			case "victim":
				n, err := strconv.Atoi(val)
				if err != nil {
					return s, fmt.Errorf("cache: spec victim=%q: %v", val, err)
				}
				s.VictimLines = n
			default:
				return s, fmt.Errorf("cache: unknown spec key %q", key)
			}
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// SpecFromJSON decodes a Spec from JSON, rejecting unknown fields, and
// validates it.
func SpecFromJSON(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("cache: decoding spec: %v", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// String returns the canonical compact form of the normalised spec: the
// kind followed by the key=value fields that matter for it, in a fixed
// order. Equal organisations render identically, so the string doubles
// as a memoization key component.
func (s Spec) String() string {
	s = s.Normalize()
	fields := map[string]string{}
	switch s.Kind {
	case "prime":
		fields["c"] = strconv.FormatUint(uint64(s.C), 10)
	case "prime-assoc":
		fields["c"] = strconv.FormatUint(uint64(s.C), 10)
		fields["ways"] = strconv.Itoa(s.Ways)
	case "direct", "full", "skewed":
		fields["lines"] = strconv.Itoa(s.Lines)
	case "assoc":
		fields["lines"] = strconv.Itoa(s.Lines)
		fields["ways"] = strconv.Itoa(s.Ways)
		fields["policy"] = strings.ToLower(s.Policy)
	case "victim":
		fields["lines"] = strconv.Itoa(s.Lines)
		fields["victim"] = strconv.Itoa(s.VictimLines)
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteString(s.Kind)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(fields[k])
	}
	return b.String()
}
