package cache

import (
	"fmt"

	"primecache/internal/mersenne"
)

// A Mapper converts a line address into a set index in [0, Sets()).
// Mappers must be deterministic and stateless.
type Mapper interface {
	// Index returns the set index for a line address.
	Index(lineAddr uint64) int
	// Sets returns the number of sets the mapper distributes lines over.
	Sets() int
	// Name identifies the mapping scheme in reports.
	Name() string
}

// DirectMapper is conventional bit-selection indexing: set = lineAddr mod
// 2^c, computed by masking. It models direct and set-associative caches
// with a power-of-two number of sets.
type DirectMapper struct {
	sets int
	mask uint64
}

// NewDirectMapper returns a bit-selection mapper over sets sets; sets must
// be a positive power of two.
func NewDirectMapper(sets int) (DirectMapper, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return DirectMapper{}, fmt.Errorf("cache: direct mapper needs power-of-two sets, got %d", sets)
	}
	return DirectMapper{sets: sets, mask: uint64(sets - 1)}, nil
}

// Index implements Mapper.
func (m DirectMapper) Index(lineAddr uint64) int { return int(lineAddr & m.mask) }

// Sets implements Mapper.
func (m DirectMapper) Sets() int { return m.sets }

// Name implements Mapper.
func (m DirectMapper) Name() string { return "direct" }

// PrimeMapper is the paper's prime mapping: set = lineAddr mod (2^c − 1),
// the Mersenne residue computed in hardware by the end-around-carry adder
// of the Figure-1 address unit.
type PrimeMapper struct {
	mod mersenne.Modulus
}

// NewPrimeMapper returns a prime mapper with 2^c − 1 sets. The exponent
// must denote a Mersenne prime (2, 3, 5, 7, 13, 17, 19, 31); that is what
// makes strided accesses conflict-free.
func NewPrimeMapper(c uint) (PrimeMapper, error) {
	mod, err := mersenne.NewPrime(c)
	if err != nil {
		return PrimeMapper{}, err
	}
	return PrimeMapper{mod: mod}, nil
}

// Index implements Mapper.
func (m PrimeMapper) Index(lineAddr uint64) int { return int(m.mod.Reduce(lineAddr)) }

// Sets implements Mapper.
func (m PrimeMapper) Sets() int { return int(m.mod.Value()) }

// Name implements Mapper.
func (m PrimeMapper) Name() string { return "prime" }

// Modulus returns the underlying Mersenne modulus.
func (m PrimeMapper) Modulus() mersenne.Modulus { return m.mod }

// ModuloMapper indexes by an arbitrary modulus. It is the "what if we used
// any prime, ignoring the hardware cost" baseline: functionally equivalent
// to PrimeMapper when sets is a Mersenne prime, but with no cheap hardware
// realisation.
type ModuloMapper struct {
	sets int
}

// NewModuloMapper returns a mapper with set = lineAddr mod sets.
func NewModuloMapper(sets int) (ModuloMapper, error) {
	if sets <= 0 {
		return ModuloMapper{}, fmt.Errorf("cache: modulo mapper needs positive sets, got %d", sets)
	}
	return ModuloMapper{sets: sets}, nil
}

// Index implements Mapper.
func (m ModuloMapper) Index(lineAddr uint64) int { return int(lineAddr % uint64(m.sets)) }

// Sets implements Mapper.
func (m ModuloMapper) Sets() int { return m.sets }

// Name implements Mapper.
func (m ModuloMapper) Name() string { return "modulo" }
