package cache

import "fmt"

// VictimCache is a direct-mapped cache backed by a small fully-associative
// victim buffer (Jouppi 1990) — the third contemporary fix for conflict
// misses alongside skewing and prime mapping. Evicted lines park in the
// buffer; a main-cache miss that hits the buffer swaps the two lines at a
// (modelled) reduced penalty. It rescues ping-pong conflicts among a
// handful of lines but cannot help strided sweeps whose conflict working
// set exceeds the buffer — the vector case the paper targets.
type VictimCache struct {
	main   *Cache
	buf    []way
	clock  uint64
	hits   uint64 // victim-buffer hits (swaps)
	misses uint64 // true misses (both levels)

	scratch []Result // AccessBatch main-array results, reused across batches
}

// NewVictim returns a direct-mapped cache of lines lines with a
// fully-associative LRU victim buffer of bufLines entries.
func NewVictim(lines, bufLines int) (*VictimCache, error) {
	main, err := NewDirect(lines)
	if err != nil {
		return nil, err
	}
	if bufLines < 1 {
		return nil, fmt.Errorf("cache: victim buffer needs at least 1 line, got %d", bufLines)
	}
	return &VictimCache{main: main, buf: make([]way, bufLines)}, nil
}

// Main returns the backing direct-mapped cache (its Stats count
// victim-buffer hits as misses of the main array; use VictimStats for the
// combined view).
func (v *VictimCache) Main() *Cache { return v.main }

// VictimStats reports the buffer's behaviour.
type VictimStats struct {
	// SwapHits counts main-cache misses served by the victim buffer.
	SwapHits uint64
	// TrueMisses counts misses of both levels.
	TrueMisses uint64
}

// VictimStats returns the buffer counters.
func (v *VictimCache) VictimStats() VictimStats {
	return VictimStats{SwapHits: v.hits, TrueMisses: v.misses}
}

// Stats returns the main array's counters so a VictimCache satisfies the
// Sim interface. Swap hits are counted as main-array misses here (the
// array did miss); use VictimStats and CombinedMissRatio for the
// two-level view, which is how Access reports its per-reference Result.
func (v *VictimCache) Stats() Stats { return v.main.Stats() }

// CombinedMissRatio returns true misses over all accesses.
func (v *VictimCache) CombinedMissRatio() float64 {
	acc := v.main.Stats().Accesses
	if acc == 0 {
		return 0
	}
	return float64(v.misses) / float64(acc)
}

// Access performs one reference: main cache first, then the buffer.
func (v *VictimCache) Access(a Access) Result {
	v.clock++
	line := v.main.LineAddr(a.Addr)
	r := v.main.Access(a)
	if r.Hit {
		return r
	}
	// The main access evicted r.EvictedLine (if any) and installed the
	// new line. Park the evicted line in the buffer.
	if r.Evicted {
		v.insert(r.EvictedLine, a.Stream)
	}
	// Did the buffer hold the requested line? Then this miss is a swap
	// hit: remove it from the buffer (it now lives in the main array).
	for i := range v.buf {
		if v.buf[i].valid && v.buf[i].line == line {
			v.buf[i].valid = false
			v.hits++
			r.Hit = true // report the combined outcome
			r.Kind = MissNone
			return r
		}
	}
	v.misses++
	return r
}

func (v *VictimCache) insert(line uint64, stream int) {
	victim := 0
	for i := range v.buf {
		if !v.buf[i].valid {
			victim = i
			break
		}
		if v.buf[i].lastUse < v.buf[victim].lastUse {
			victim = i
		}
	}
	v.buf[victim] = way{valid: true, line: line, stream: stream, lastUse: v.clock}
}

// Describe returns a short human-readable description.
func (v *VictimCache) Describe() string {
	return fmt.Sprintf("direct %d lines + %d-entry victim buffer", v.main.Lines(), len(v.buf))
}

// Flush invalidates both levels and clears statistics.
func (v *VictimCache) Flush() {
	v.main.Flush()
	for i := range v.buf {
		v.buf[i] = way{}
	}
	v.clock = 0
	v.hits = 0
	v.misses = 0
}
