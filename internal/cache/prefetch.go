package cache

import "fmt"

// PrefetchKind selects one of the two vector-cache prefetching schemes of
// Fu & Patel (ISCA 1991), which the paper's §2.2 discusses as the prior
// attempt to tame long-stride vector accesses before prime mapping.
type PrefetchKind int

const (
	// PrefetchSequential fetches the next Degree sequential lines on
	// every demand miss.
	PrefetchSequential PrefetchKind = iota
	// PrefetchStride detects each stream's stride and fetches the next
	// Degree lines along it once the stride repeats.
	PrefetchStride
)

// String implements fmt.Stringer.
func (k PrefetchKind) String() string {
	switch k {
	case PrefetchSequential:
		return "sequential"
	case PrefetchStride:
		return "stride"
	default:
		return fmt.Sprintf("prefetch(%d)", int(k))
	}
}

// PrefetchStats counts prefetch outcomes.
type PrefetchStats struct {
	// Issued counts prefetch fills sent to the cache.
	Issued uint64
	// Useful counts demand accesses whose first touch hit a prefetched
	// line — misses the prefetcher removed.
	Useful uint64
	// Wasted counts prefetched lines evicted before any demand touch —
	// the cache pollution §2.2 worries about.
	Wasted uint64
}

// Accuracy returns Useful/Issued, 0 when nothing was issued.
func (s PrefetchStats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// PrefetchCache front-ends a Cache with a prefetcher. It implements the
// same Access entry point, so kernels and traces can run against it
// unchanged.
type PrefetchCache struct {
	c      *Cache
	kind   PrefetchKind
	degree int

	// per-stream stride detection state
	lastLine   map[int]uint64
	lastStride map[int]int64
	confirmed  map[int]bool

	stats PrefetchStats
}

// NewPrefetchCache wraps c with a prefetcher of the given kind fetching
// degree lines ahead (degree ≥ 1).
func NewPrefetchCache(c *Cache, kind PrefetchKind, degree int) (*PrefetchCache, error) {
	if c == nil {
		return nil, fmt.Errorf("cache: nil cache")
	}
	if degree < 1 {
		return nil, fmt.Errorf("cache: prefetch degree must be ≥ 1, got %d", degree)
	}
	switch kind {
	case PrefetchSequential, PrefetchStride:
	default:
		return nil, fmt.Errorf("cache: unknown prefetch kind %d", int(kind))
	}
	return &PrefetchCache{
		c: c, kind: kind, degree: degree,
		lastLine:   make(map[int]uint64),
		lastStride: make(map[int]int64),
		confirmed:  make(map[int]bool),
	}, nil
}

// Cache returns the wrapped cache.
func (p *PrefetchCache) Cache() *Cache { return p.c }

// Stats returns the wrapped cache's demand statistics.
func (p *PrefetchCache) Stats() Stats { return p.c.Stats() }

// PrefetchStats returns the prefetcher's own counters.
func (p *PrefetchCache) PrefetchStats() PrefetchStats {
	s := p.stats
	s.Wasted = p.c.prefetchWasted
	return s
}

// Describe returns a short human-readable description.
func (p *PrefetchCache) Describe() string {
	return fmt.Sprintf("%s + %s prefetch ×%d", p.c.Describe(), p.kind, p.degree)
}

// Flush invalidates the wrapped cache and clears the stride-detection
// state and prefetch counters.
func (p *PrefetchCache) Flush() {
	p.c.Flush()
	p.lastLine = make(map[int]uint64)
	p.lastStride = make(map[int]int64)
	p.confirmed = make(map[int]bool)
	p.stats = PrefetchStats{}
}

// Access performs a demand access and then issues any prefetches the
// scheme calls for. Prefetch fills do not count as demand accesses.
func (p *PrefetchCache) Access(a Access) Result {
	r, wasPrefetched := p.c.demandAccess(a)
	if wasPrefetched {
		p.stats.Useful++
	}
	line := p.c.LineAddr(a.Addr)
	switch p.kind {
	case PrefetchSequential:
		if !r.Hit {
			for d := 1; d <= p.degree; d++ {
				p.install(line+uint64(d), a.Stream)
			}
		}
	case PrefetchStride:
		if last, ok := p.lastLine[a.Stream]; ok {
			stride := int64(line) - int64(last)
			if stride != 0 && stride == p.lastStride[a.Stream] {
				if p.confirmed[a.Stream] {
					for d := 1; d <= p.degree; d++ {
						p.install(uint64(int64(line)+stride*int64(d)), a.Stream)
					}
				}
				p.confirmed[a.Stream] = true
			} else {
				p.confirmed[a.Stream] = false
			}
			p.lastStride[a.Stream] = stride
		}
		p.lastLine[a.Stream] = line
	}
	return r
}

func (p *PrefetchCache) install(line uint64, stream int) {
	if p.c.installLine(line, stream) {
		p.stats.Issued++
	}
}

// demandAccess is Access plus a report of whether the hit line was a
// not-yet-touched prefetch.
func (c *Cache) demandAccess(a Access) (Result, bool) {
	line := c.LineAddr(a.Addr)
	set := c.cfg.Mapper.Index(line)
	wasPrefetched := false
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.line == line && w.prefetched {
			w.prefetched = false
			wasPrefetched = true
			break
		}
	}
	return c.Access(a), wasPrefetched
}

// installLine quietly fills a line (no demand statistics), marking it
// prefetched. It reports whether a fill actually happened (false when the
// line was already resident).
func (c *Cache) installLine(line uint64, stream int) bool {
	set := c.cfg.Mapper.Index(line)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].line == line {
			return false
		}
	}
	c.clock++
	victim := c.pickVictim(ways)
	if ways[victim].valid {
		if ways[victim].prefetched {
			c.prefetchWasted++
		}
		if c.evictedBy != nil {
			c.evictedBy[ways[victim].line] = stream
		}
	}
	ways[victim] = way{valid: true, line: line, stream: stream, lastUse: c.clock, filled: c.clock, prefetched: true}
	// Keep the shadow and compulsory history consistent: a prefetched
	// line has been brought in, so a later demand touch is not a
	// compulsory miss of the memory system's making — but the 3C model
	// classifies demand behaviour only, so the shadow is NOT updated
	// here (prefetches are not program references).
	return true
}
