package cache

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		expr     string
		want     Spec
		describe string // substring of the built cache's Describe()
	}{
		{"prime", Spec{Kind: "prime"}, "prime-mapped"},
		{"prime:c=5", Spec{Kind: "prime", C: 5}, "31"},
		{"direct:lines=1024", Spec{Kind: "direct", Lines: 1024}, "1024"},
		{"assoc:lines=4096,ways=4,policy=fifo", Spec{Kind: "assoc", Lines: 4096, Ways: 4, Policy: "fifo"}, "fifo"},
		{"full:lines=64", Spec{Kind: "full", Lines: 64}, ""},
		{"prime-assoc:c=5,ways=2", Spec{Kind: "prime-assoc", C: 5, Ways: 2}, ""},
		{"skewed:lines=1024", Spec{Kind: "skewed", Lines: 1024}, "skewed"},
		{"victim:lines=1024,victim=4", Spec{Kind: "victim", Lines: 1024, VictimLines: 4}, "victim"},
		{"  direct : lines = 512 ", Spec{Kind: "direct", Lines: 512}, "512"},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.expr)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.expr, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.expr, got, tc.want)
		}
		sim, err := got.Build()
		if err != nil {
			t.Errorf("ParseSpec(%q).Build: %v", tc.expr, err)
			continue
		}
		if d := sim.Describe(); !strings.Contains(d, tc.describe) {
			t.Errorf("ParseSpec(%q) describes %q, want substring %q", tc.expr, d, tc.describe)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, expr := range []string{
		"",
		"bogus",
		"prime:c=4",          // 2^4-1 = 15 is not prime
		"direct:lines=1000",  // not a power of two
		"assoc:policy=weird", // unknown policy
		"prime:c",            // not key=value
		"prime:c=x",          // not a number
		"prime:flavor=mint",  // unknown key
		"victim:lines=64,victim=-1",
	} {
		if _, err := ParseSpec(expr); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", expr)
		}
	}
}

func TestSpecFromJSON(t *testing.T) {
	s, err := SpecFromJSON(strings.NewReader(`{"kind":"assoc","lines":2048,"ways":2,"policy":"lru"}`))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Describe(); !strings.Contains(got, "2 ways") {
		t.Errorf("Describe() = %q, want 2 ways", got)
	}
	if _, err := SpecFromJSON(strings.NewReader(`{"kind":"prime","bogus":1}`)); err == nil {
		t.Error("unknown JSON field: want error, got nil")
	}
	if _, err := SpecFromJSON(strings.NewReader(`{"kind":"nope"}`)); err == nil {
		t.Error("unknown kind: want error, got nil")
	}
}

func TestSpecStringCanonical(t *testing.T) {
	// Equal organisations render identically regardless of which fields
	// were spelled out, and irrelevant fields do not leak into the key.
	a := Spec{Kind: "prime"}.String()
	b := Spec{Kind: "prime", C: 13, Lines: 4096, Ways: 7, Policy: "fifo"}.String()
	if a != b {
		t.Errorf("canonical strings differ: %q vs %q", a, b)
	}
	if want := "prime:c=13"; a != want {
		t.Errorf("Spec.String() = %q, want %q", a, want)
	}
	if got, want := (Spec{Kind: "victim", Lines: 256, VictimLines: 4}).String(), "victim:lines=256,victim=4"; got != want {
		t.Errorf("Spec.String() = %q, want %q", got, want)
	}
}

func TestSpecBuildDefaults(t *testing.T) {
	for _, kind := range SpecKinds() {
		sim, err := Spec{Kind: kind}.Build()
		if err != nil {
			t.Errorf("default %s spec: %v", kind, err)
			continue
		}
		// Every organisation must behave as a cache: a repeated access
		// hits the second time.
		sim.Access(Access{Addr: 8 * 100, Stream: 1})
		r := sim.Access(Access{Addr: 8 * 100, Stream: 1})
		if !r.Hit {
			t.Errorf("%s: second access to same address missed", kind)
		}
		if got := sim.Stats().Accesses; got != 2 {
			t.Errorf("%s: Stats().Accesses = %d, want 2", kind, got)
		}
		sim.Flush()
		if got := sim.Stats().Accesses; got != 0 {
			t.Errorf("%s: Accesses after Flush = %d, want 0", kind, got)
		}
	}
}
