package cache

// Analytic fast path for strided sweeps over one-way organisations.
//
// A P-pass, n-element, stride-s vector sweep is the paper's canonical
// workload, and for direct- and prime-mapped caches its trace-driven
// outcome has a closed form: with C sets, the visited set sequence is an
// arithmetic progression mod C, so the lines of the sweep distribute
// over an orbit of o = C/gcd(s mod C, C) sets, q = n/o of them per set
// (q+1 for the first r = n mod o orbit positions). From that, pass-level
// hit/miss/classification counts follow exactly — no per-reference
// simulation — so a huge vector job costs O(passes) instead of O(n·P).
//
// The derivation assumes every reference addresses a distinct line (one
// word per line, the paper's fixed 8-byte geometry) and that the int64
// address accumulator of trace.Strided never leaves [0, 2^63): within
// that range uint64 conversion is the identity, so residues mod C step
// uniformly by s mod C. StridedSweepStats reports ok=false whenever any
// precondition fails and callers fall back to replay; the formulas are
// additionally cross-checked against replay at run time by the oracle
// (VerifyStridedAnalytic) and at job-admission time by the server.

// StridedSweepStats returns the exact statistics a freshly built spec
// cache would accumulate replaying trace.Strided(startWord, strideWords,
// n, stream) passes times, or ok=false when the sweep is outside the
// model (non one-way organisation, zero stride, or address range the
// closed form cannot guarantee).
func StridedSweepStats(spec Spec, startWord uint64, strideWords int64, n, passes, stream int) (Stats, bool) {
	first, steady, ok := stridedSweepPasses(spec, startWord, strideWords, n, stream)
	if !ok || passes < 1 {
		return Stats{}, false
	}
	total := first
	if passes > 1 {
		scale := uint64(passes - 1)
		total.Accesses += scale * steady.Accesses
		total.Reads += scale * steady.Reads
		total.Hits += scale * steady.Hits
		total.Misses += scale * steady.Misses
		total.Conflict += scale * steady.Conflict
		total.Capacity += scale * steady.Capacity
		total.SelfInterference += scale * steady.SelfInterference
		total.Evictions += scale * steady.Evictions
	}
	return total, true
}

// stridedSweepPasses computes the first-pass and steady-state (pass ≥ 2)
// statistics of the sweep. Passes 2..P are identical: at the end of any
// pass each visited set holds the last line of its orbit position, which
// is exactly the state pass 2 started from.
func stridedSweepPasses(spec Spec, startWord uint64, strideWords int64, n, stream int) (first, steady Stats, ok bool) {
	sets, ok := analyticSets(spec)
	if !ok || n < 1 || strideWords == 0 {
		return Stats{}, Stats{}, false
	}
	if !stridedAddrsSafe(startWord, strideWords, n) {
		return Stats{}, Stats{}, false
	}
	C := int64(sets)

	// Orbit structure of the visited sets.
	s := strideWords % C
	if s < 0 {
		s += C
	}
	g := gcd64(s, C) // gcd(0, C) = C: stride multiples of C hammer one set
	o := C / g
	q := int64(n) / o
	r := int64(n) % o

	// Pass 1: every line is new — all compulsory misses. A set's k-th
	// visit (k ≥ 2) evicts, so evictions = n − (distinct sets visited).
	distinct := o
	if int64(n) < o {
		distinct = int64(n)
	}
	first = Stats{
		Accesses:   uint64(n),
		Reads:      uint64(n),
		Misses:     uint64(n),
		Compulsory: uint64(n),
		Evictions:  uint64(n) - uint64(distinct),
	}

	// Pass ≥ 2: a line hits iff it is alone in its set (the resident
	// line of a multi-line set is always the one mapped there last,
	// never the one about to be accessed). Single-line sets exist only
	// when q ≤ 1.
	var singles int64
	switch {
	case q == 0:
		singles = int64(n)
	case q == 1:
		singles = o - r
	}
	misses := uint64(int64(n) - singles)
	steady = Stats{
		Accesses:  uint64(n),
		Reads:     uint64(n),
		Hits:      uint64(singles),
		Misses:    misses,
		Evictions: misses, // every visited set is full after pass 1
	}
	// 3C split: the shadow directory holds the C most recently used
	// lines. When n ≤ C the whole sweep fits, every steady miss is a
	// shadow hit — a conflict miss, attributed to the sweep's own
	// stream (it evicted every one of its victims). When n > C the
	// re-accessed line always left the shadow a full pass ago: capacity.
	if int64(n) <= C {
		steady.Conflict = misses
		if stream != StreamNone {
			steady.SelfInterference = misses
		}
	} else {
		steady.Capacity = misses
	}
	return first, steady, true
}

// analyticSets returns the set count of organisations the closed form
// covers: one-way mappings whose set index is lineAddr mod sets — the
// prime- and direct-mapped kinds.
func analyticSets(spec Spec) (int, bool) {
	spec = spec.Normalize()
	switch spec.Kind {
	case "prime":
		// Mirror mersenne.NewPrime's exponent check cheaply.
		switch spec.C {
		case 2, 3, 5, 7, 13, 17, 19, 31:
			return 1<<spec.C - 1, true
		}
		return 0, false
	case "direct":
		if spec.Lines > 0 && spec.Lines&(spec.Lines-1) == 0 {
			return spec.Lines, true
		}
		return 0, false
	default:
		return 0, false
	}
}

// stridedAddrsSafe reports whether every address of the sweep keeps
// trace.Strided's int64 accumulator within [0, 2^63), where uint64
// conversion is the identity and set residues step uniformly. For a
// prime modulus this matters because 2^64 is not ≡ 0 (mod 2^c − 1): a
// wrap of the accumulator would shift every subsequent residue.
func stridedAddrsSafe(startWord uint64, strideWords int64, n int) bool {
	const lim = int64(1) << 62
	if startWord >= uint64(lim) {
		return false
	}
	if n == 1 {
		return true
	}
	abs := strideWords
	if abs < 0 {
		abs = -abs
	}
	if abs >= lim/int64(n-1) {
		return false
	}
	last := int64(startWord) + int64(n-1)*strideWords
	return last >= 0 && last < lim
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
