package cache_test

// External test package: the equivalence suite drives the batch fast
// path with the oracle package's seeded generator, and oracle imports
// cache.

import (
	"testing"

	"primecache/internal/cache"
	"primecache/internal/oracle"
)

// batchSeed seeds the generator for the equivalence suite; log it so a
// failure reproduces from the test output alone.
const batchSeed = 20260806

// chunkSizes are the batch granularities the equivalence suite proves
// indistinguishable from per-access execution: degenerate (1), odd and
// small (7), the common chunk (64), and larger-than-most-traces (1023).
var chunkSizes = []int{1, 7, 64, 1023}

// TestAccessBatchEquivalence proves AccessBatch is observably identical
// to the per-access path for every Spec organisation: same per-access
// Results, byte-identical final Stats, for every chunk size.
func TestAccessBatchEquivalence(t *testing.T) {
	t.Logf("generator seed %d", batchSeed)
	for _, kind := range cache.SpecKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			g := oracle.NewGen(batchSeed)
			for trial := 0; trial < 25; trial++ {
				spec := g.SpecOfKind(kind)
				tr := g.Trace(2048)
				accs := make([]cache.Access, len(tr))
				for i, r := range tr {
					accs[i] = cache.Access{Addr: r.Addr, Write: r.Write, Stream: r.Stream}
				}

				ref, err := spec.Build()
				if err != nil {
					t.Fatalf("trial %d: build reference %q: %v", trial, spec, err)
				}
				want := make([]cache.Result, len(accs))
				for i, a := range accs {
					want[i] = ref.Access(a)
				}

				for _, chunk := range chunkSizes {
					sim, err := spec.Build()
					if err != nil {
						t.Fatalf("trial %d: build %q: %v", trial, spec, err)
					}
					got := make([]cache.Result, len(accs))
					for lo := 0; lo < len(accs); lo += chunk {
						hi := lo + chunk
						if hi > len(accs) {
							hi = len(accs)
						}
						cache.AccessBatch(sim, accs[lo:hi], got[lo:hi])
					}
					for i := range accs {
						if got[i] != want[i] {
							t.Fatalf("trial %d spec %q chunk %d: access %d (addr=%#x write=%v stream=%d):\n got %+v\nwant %+v",
								trial, spec, chunk, i, accs[i].Addr, accs[i].Write, accs[i].Stream, got[i], want[i])
						}
					}
					if gs, ws := sim.Stats(), ref.Stats(); gs != ws {
						t.Fatalf("trial %d spec %q chunk %d: stats diverge:\n got %v\nwant %v", trial, spec, chunk, gs, ws)
					}
					gv, gok := sim.(interface{ VictimStats() cache.VictimStats })
					rv, rok := ref.(interface{ VictimStats() cache.VictimStats })
					if gok && rok && gv.VictimStats() != rv.VictimStats() {
						t.Fatalf("trial %d spec %q chunk %d: victim stats diverge: got %+v want %+v",
							trial, spec, chunk, gv.VictimStats(), rv.VictimStats())
					}
				}
			}
		})
	}
}

// TestAccessBatchNilOut proves the stats-only mode (nil result slice)
// accumulates the same counters as the result-collecting mode.
func TestAccessBatchNilOut(t *testing.T) {
	g := oracle.NewGen(batchSeed + 1)
	for trial := 0; trial < 10; trial++ {
		spec := g.Spec()
		tr := g.Trace(1024)
		accs := make([]cache.Access, len(tr))
		for i, r := range tr {
			accs[i] = cache.Access{Addr: r.Addr, Write: r.Write, Stream: r.Stream}
		}
		a, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		cache.AccessBatch(a, accs, nil)
		cache.AccessBatch(b, accs, make([]cache.Result, len(accs)))
		if a.Stats() != b.Stats() {
			t.Fatalf("trial %d spec %q: nil-out stats diverge:\n got %v\nwant %v", trial, spec, a.Stats(), b.Stats())
		}
	}
}

// TestAccessBatchPrefetch covers the PrefetchCache batch entry point,
// which is not reachable through Spec.Build.
func TestAccessBatchPrefetch(t *testing.T) {
	mk := func() *cache.PrefetchCache {
		base, err := cache.NewDirect(256)
		if err != nil {
			t.Fatal(err)
		}
		p, err := cache.NewPrefetchCache(base, cache.PrefetchStride, 2)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	accs := make([]cache.Access, 4096)
	for i := range accs {
		accs[i] = cache.Access{Addr: uint64(i) * 8 * 17, Stream: 1, Write: i%13 == 0}
	}
	ref := mk()
	want := make([]cache.Result, len(accs))
	for i, a := range accs {
		want[i] = ref.Access(a)
	}
	for _, chunk := range chunkSizes {
		p := mk()
		got := make([]cache.Result, len(accs))
		for lo := 0; lo < len(accs); lo += chunk {
			hi := lo + chunk
			if hi > len(accs) {
				hi = len(accs)
			}
			cache.AccessBatch(p, accs[lo:hi], got[lo:hi])
		}
		for i := range accs {
			if got[i] != want[i] {
				t.Fatalf("chunk %d access %d: got %+v want %+v", chunk, i, got[i], want[i])
			}
		}
		if p.Stats() != ref.Stats() || p.PrefetchStats() != ref.PrefetchStats() {
			t.Fatalf("chunk %d: stats diverge: got %v/%v want %v/%v",
				chunk, p.Stats(), p.PrefetchStats(), ref.Stats(), ref.PrefetchStats())
		}
	}
}

// benchStrided64 prepares a 64-element stride-512 sweep (the paper's
// canonical vector access) against spec, pre-warmed so the steady state
// is measured, and reports refs/sec.
func benchStrided64(b *testing.B, spec cache.Spec, batch bool) {
	sim, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	accs := make([]cache.Access, n)
	for i := range accs {
		accs[i] = cache.Access{Addr: uint64(i) * 512 * 8, Stream: 1}
	}
	cache.AccessBatch(sim, accs, nil) // warm: steady-state passes only
	b.ResetTimer()
	if batch {
		bs, ok := sim.(cache.BatchSim)
		if !ok {
			b.Fatalf("%s does not implement BatchSim", spec)
		}
		for i := 0; i < b.N; i++ {
			bs.AccessBatch(accs, nil)
		}
	} else {
		for i := 0; i < b.N; i++ {
			for _, a := range accs {
				sim.Access(a)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "refs/sec")
}

// BenchmarkStrided64PrimePerAccess and ...PrimeBatch are the 2× claim:
// the batched path on the prime-mapped organisation versus the
// per-access Sim interface for the same 64-element strided sweep.
func BenchmarkStrided64PrimePerAccess(b *testing.B) {
	benchStrided64(b, cache.Spec{Kind: "prime", C: 13}, false)
}

func BenchmarkStrided64PrimeBatch(b *testing.B) {
	benchStrided64(b, cache.Spec{Kind: "prime", C: 13}, true)
}

func BenchmarkStrided64DirectPerAccess(b *testing.B) {
	benchStrided64(b, cache.Spec{Kind: "direct", Lines: 8192}, false)
}

func BenchmarkStrided64DirectBatch(b *testing.B) {
	benchStrided64(b, cache.Spec{Kind: "direct", Lines: 8192}, true)
}
