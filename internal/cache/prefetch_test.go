package cache

import "testing"

func TestNewPrefetchCacheValidation(t *testing.T) {
	c, _ := NewDirect(64)
	if _, err := NewPrefetchCache(nil, PrefetchSequential, 1); err == nil {
		t.Error("nil cache accepted")
	}
	if _, err := NewPrefetchCache(c, PrefetchSequential, 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := NewPrefetchCache(c, PrefetchKind(9), 1); err == nil {
		t.Error("unknown kind accepted")
	}
	p, err := NewPrefetchCache(c, PrefetchSequential, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cache() != c {
		t.Error("Cache() mismatch")
	}
}

func TestPrefetchKindString(t *testing.T) {
	for k, want := range map[PrefetchKind]string{
		PrefetchSequential: "sequential", PrefetchStride: "stride", PrefetchKind(9): "prefetch(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", int(k), got)
		}
	}
}

func TestSequentialPrefetchUnitStride(t *testing.T) {
	// Unit-stride sweep with degree-1 sequential prefetch: each miss
	// fetches the next line, halving the demand miss count.
	c, _ := NewDirect(1024)
	p, _ := NewPrefetchCache(c, PrefetchSequential, 1)
	for w := uint64(0); w < 512; w++ {
		p.Access(Access{Addr: w * 8, Stream: 1})
	}
	s := p.Stats()
	if s.Misses != 256 {
		t.Errorf("misses = %d, want 256 (every other line prefetched)", s.Misses)
	}
	ps := p.PrefetchStats()
	if ps.Issued != 256 || ps.Useful != 256 {
		t.Errorf("prefetch issued/useful = %d/%d, want 256/256", ps.Issued, ps.Useful)
	}
	if acc := ps.Accuracy(); acc != 1 {
		t.Errorf("accuracy = %v, want 1", acc)
	}
}

func TestSequentialPrefetchDegree(t *testing.T) {
	// Degree 3: one miss per four lines.
	c, _ := NewDirect(1024)
	p, _ := NewPrefetchCache(c, PrefetchSequential, 3)
	for w := uint64(0); w < 512; w++ {
		p.Access(Access{Addr: w * 8, Stream: 1})
	}
	if s := p.Stats(); s.Misses != 128 {
		t.Errorf("misses = %d, want 128", s.Misses)
	}
}

func TestSequentialPrefetchPollutesOnLargeStride(t *testing.T) {
	// §2.2's complaint: with a non-unit stride, sequential prefetches are
	// pure pollution — issued but never touched.
	c, _ := NewDirect(1024)
	p, _ := NewPrefetchCache(c, PrefetchSequential, 2)
	for i := uint64(0); i < 256; i++ {
		p.Access(Access{Addr: i * 7 * 8, Stream: 1})
	}
	ps := p.PrefetchStats()
	if ps.Useful != 0 {
		t.Errorf("useful = %d, want 0 for stride 7", ps.Useful)
	}
	if ps.Issued == 0 {
		t.Error("no prefetches issued")
	}
	if s := p.Stats(); s.Misses != 256 {
		t.Errorf("misses = %d, want 256 (prefetching bought nothing)", s.Misses)
	}
}

func TestStridePrefetchLearnsStride(t *testing.T) {
	// Stride prefetch needs two consistent strides to arm, then removes
	// essentially all further misses of the stream.
	c, _ := NewDirect(8192)
	p, _ := NewPrefetchCache(c, PrefetchStride, 2)
	const stride, n = 13, 512
	for i := uint64(0); i < n; i++ {
		p.Access(Access{Addr: i * stride * 8, Stream: 1})
	}
	s := p.Stats()
	if s.Misses > 5 {
		t.Errorf("misses = %d, want ≤ 5 once the stride is armed", s.Misses)
	}
	ps := p.PrefetchStats()
	if ps.Useful < n-10 {
		t.Errorf("useful = %d, want ≈ %d", ps.Useful, n)
	}
}

func TestStridePrefetchPerStream(t *testing.T) {
	// Two interleaved streams with different strides are tracked
	// independently.
	c, _ := NewDirect(8192)
	p, _ := NewPrefetchCache(c, PrefetchStride, 1)
	const n = 256
	for i := uint64(0); i < n; i++ {
		p.Access(Access{Addr: i * 5 * 8, Stream: 1})
		p.Access(Access{Addr: (1<<20 + i*11) * 8, Stream: 2})
	}
	if s := p.Stats(); s.Misses > 10 {
		t.Errorf("misses = %d, want ≈ 4 (both streams armed)", s.Misses)
	}
}

func TestStridePrefetchResetOnChange(t *testing.T) {
	c, _ := NewDirect(8192)
	p, _ := NewPrefetchCache(c, PrefetchStride, 1)
	// Alternating strides never confirm.
	addrs := []uint64{0, 5, 7, 20, 21, 100}
	for _, a := range addrs {
		p.Access(Access{Addr: a * 8, Stream: 1})
	}
	if ps := p.PrefetchStats(); ps.Issued != 0 {
		t.Errorf("issued = %d, want 0 for erratic stream", ps.Issued)
	}
}

func TestPrefetchWastedCounting(t *testing.T) {
	// A tiny cache: prefetched lines get evicted before use.
	c, _ := NewDirect(2)
	p, _ := NewPrefetchCache(c, PrefetchSequential, 1)
	for i := uint64(0); i < 16; i++ {
		p.Access(Access{Addr: i * 4 * 8, Stream: 1}) // stride 4, prefetches always useless
	}
	ps := p.PrefetchStats()
	if ps.Wasted == 0 {
		t.Error("expected wasted prefetches in a 2-line cache")
	}
	if ps.Useful != 0 {
		t.Errorf("useful = %d, want 0", ps.Useful)
	}
}

func TestPrefetchDoesNotAlterDemandCorrectness(t *testing.T) {
	// The same demand trace with and without prefetching yields the same
	// hits-or-better and identical access counts.
	base, _ := NewDirect(256)
	pc, _ := NewDirect(256)
	p, _ := NewPrefetchCache(pc, PrefetchStride, 2)
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 128; i++ {
			base.Access(Access{Addr: i * 3 * 8, Stream: 1})
			p.Access(Access{Addr: i * 3 * 8, Stream: 1})
		}
	}
	bs, ps := base.Stats(), p.Stats()
	if bs.Accesses != ps.Accesses {
		t.Errorf("access counts differ: %d vs %d", bs.Accesses, ps.Accesses)
	}
	if ps.Misses > bs.Misses {
		t.Errorf("prefetching increased misses: %d > %d", ps.Misses, bs.Misses)
	}
}

func TestPrefetchAccuracyZeroWhenIdle(t *testing.T) {
	var s PrefetchStats
	if s.Accuracy() != 0 {
		t.Error("idle accuracy != 0")
	}
}
