package cache

import (
	"math/rand"
	"testing"
)

// refCache is a deliberately naive reference implementation of a
// set-associative LRU cache built on maps and slices, used to validate
// the production simulator on random traces.
type refCache struct {
	sets   int
	ways   int
	prime  bool
	frames []map[uint64]int // per set: line → recency rank storage
	order  [][]uint64       // per set: lines in LRU→MRU order
}

func newRefCache(sets, ways int, prime bool) *refCache {
	r := &refCache{sets: sets, ways: ways, prime: prime}
	r.frames = make([]map[uint64]int, sets)
	r.order = make([][]uint64, sets)
	for i := range r.frames {
		r.frames[i] = make(map[uint64]int)
	}
	return r
}

func (r *refCache) index(line uint64) int {
	return int(line % uint64(r.sets))
}

// access returns hit.
func (r *refCache) access(line uint64) bool {
	s := r.index(line)
	if _, ok := r.frames[s][line]; ok {
		// promote to MRU
		ord := r.order[s]
		for i, l := range ord {
			if l == line {
				r.order[s] = append(append(ord[:i:i], ord[i+1:]...), line)
				break
			}
		}
		return true
	}
	if len(r.order[s]) >= r.ways {
		victim := r.order[s][0]
		r.order[s] = r.order[s][1:]
		delete(r.frames[s], victim)
	}
	r.frames[s][line] = 1
	r.order[s] = append(r.order[s], line)
	return false
}

// TestCacheMatchesReferenceModel replays random traces through the
// production simulator and the naive reference, comparing every hit/miss
// outcome, for direct, set-associative, and prime organisations.
func TestCacheMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	configs := []struct {
		name  string
		mk    func() *Cache
		sets  int
		ways  int
		prime bool
	}{
		{"direct-64", func() *Cache { c, _ := NewDirect(64); return c }, 64, 1, false},
		{"assoc-64x4", func() *Cache { c, _ := NewSetAssoc(64, 4, LRU); return c }, 16, 4, false},
		{"prime-127", func() *Cache { c, _ := NewPrime(7); return c }, 127, 1, false},
		{"full-16", func() *Cache { c, _ := NewFullyAssoc(16); return c }, 1, 16, false},
	}
	for _, cfg := range configs {
		c := cfg.mk()
		ref := newRefCache(cfg.sets, cfg.ways, cfg.prime)
		for i := 0; i < 20000; i++ {
			// Mix of strided and random word addresses in a small range
			// so evictions are frequent.
			var w uint64
			switch i % 3 {
			case 0:
				w = uint64(rng.Intn(512))
			case 1:
				w = uint64((i / 3 * 17) % 700)
			default:
				w = uint64(rng.Intn(64)) * 64
			}
			got := c.Access(Access{Addr: w * 8, Stream: 1}).Hit
			want := ref.access(w)
			if got != want {
				t.Fatalf("%s: step %d word %d: sim hit=%v ref hit=%v", cfg.name, i, w, got, want)
			}
		}
		// Sanity: the workload produced both outcomes.
		s := c.Stats()
		if s.Hits == 0 || s.Misses == 0 {
			t.Errorf("%s: degenerate workload (hits %d misses %d)", cfg.name, s.Hits, s.Misses)
		}
	}
}

// TestClassificationInvariants checks global accounting invariants on a
// random trace: hits+misses = accesses, the 3C kinds partition misses,
// and interference attribution never exceeds the conflict count.
func TestClassificationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, _ := NewSetAssoc(128, 2, LRU)
	for i := 0; i < 50000; i++ {
		c.Access(Access{
			Addr:   uint64(rng.Intn(2048)) * 8,
			Write:  rng.Intn(4) == 0,
			Stream: rng.Intn(3) + 1,
		})
	}
	s := c.Stats()
	if s.Hits+s.Misses != s.Accesses {
		t.Errorf("hits %d + misses %d != accesses %d", s.Hits, s.Misses, s.Accesses)
	}
	if s.Reads+s.Writes != s.Accesses {
		t.Errorf("reads %d + writes %d != accesses %d", s.Reads, s.Writes, s.Accesses)
	}
	if s.Compulsory+s.Capacity+s.Conflict != s.Misses {
		t.Errorf("3C %d+%d+%d != misses %d", s.Compulsory, s.Capacity, s.Conflict, s.Misses)
	}
	if s.SelfInterference+s.CrossInterference > s.Conflict {
		t.Errorf("interference %d+%d > conflicts %d", s.SelfInterference, s.CrossInterference, s.Conflict)
	}
	if s.Evictions > s.Misses {
		t.Errorf("evictions %d > misses %d", s.Evictions, s.Misses)
	}
}
