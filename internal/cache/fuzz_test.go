package cache

import "testing"

// FuzzCacheDifferential drives the production simulator and the naive
// reference LRU model with a fuzzer-chosen access pattern and requires
// identical hit/miss behaviour plus intact accounting invariants.
func FuzzCacheDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 0, 1}, uint8(1))
	f.Add([]byte{7, 7, 7, 7}, uint8(2))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, pattern []byte, mode uint8) {
		var c *Cache
		var sets, ways int
		switch mode % 3 {
		case 0:
			c, _ = NewDirect(32)
			sets, ways = 32, 1
		case 1:
			c, _ = NewSetAssoc(32, 4, LRU)
			sets, ways = 8, 4
		default:
			c, _ = NewPrime(5) // 31 lines
			sets, ways = 31, 1
		}
		ref := newRefCache(sets, ways, false)
		for i, b := range pattern {
			w := uint64(b) * uint64(1+i%3)
			got := c.Access(Access{Addr: w * 8, Stream: 1 + i%2}).Hit
			want := ref.access(w)
			if got != want {
				t.Fatalf("step %d word %d: sim=%v ref=%v", i, w, got, want)
			}
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			t.Fatal("hit/miss accounting broken")
		}
		if s.Compulsory+s.Capacity+s.Conflict != s.Misses {
			t.Fatal("3C partition broken")
		}
	})
}
