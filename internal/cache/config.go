package cache

import (
	"fmt"
	"math/bits"
)

// Policy selects the replacement policy of a set-associative cache. It is
// irrelevant for direct-mapped caches (one way per set). The paper (§2.1)
// notes that serial vector access works against LRU; having all three lets
// the benches quantify that.
type Policy int

const (
	// LRU evicts the least-recently-used way.
	LRU Policy = iota
	// FIFO evicts the oldest-filled way.
	FIFO
	// Random evicts a uniformly random way (deterministically seeded).
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config describes a cache organisation.
type Config struct {
	// Mapper distributes line addresses over sets.
	Mapper Mapper
	// Ways is the associativity; 1 for direct- or prime-mapped caches.
	Ways int
	// LineBytes is the line size in bytes; must be a power of two. The
	// paper fixes it at 8 (one double-precision word), the default when 0.
	LineBytes int
	// Policy is the replacement policy for Ways > 1.
	Policy Policy
	// Seed seeds the Random policy; ignored otherwise.
	Seed int64
	// WriteBack selects write-back with dirty bits: stores mark the line
	// dirty and memory traffic happens on eviction (Stats.Writebacks).
	// The default is write-through, where every store reaches memory
	// (the paper's write-buffer assumption makes either free of stalls;
	// the policies differ in bus traffic, which the stats expose).
	WriteBack bool
	// DisableClassify turns off the three-C shadow directory, roughly
	// halving simulation cost for pure hit-ratio sweeps.
	DisableClassify bool
}

// DefaultLineBytes is the paper's fixed line size: one 8-byte double word.
const DefaultLineBytes = 8

func (c Config) validate() error {
	if c.Mapper == nil {
		return fmt.Errorf("cache: Config.Mapper is nil")
	}
	if c.Mapper.Sets() <= 0 {
		return fmt.Errorf("cache: mapper reports %d sets", c.Mapper.Sets())
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: Ways must be positive, got %d", c.Ways)
	}
	lb := c.LineBytes
	if lb == 0 {
		lb = DefaultLineBytes
	}
	if lb < 1 || bits.OnesCount(uint(lb)) != 1 {
		return fmt.Errorf("cache: LineBytes must be a power of two, got %d", c.LineBytes)
	}
	switch c.Policy {
	case LRU, FIFO, Random:
	default:
		return fmt.Errorf("cache: unknown policy %d", int(c.Policy))
	}
	return nil
}
