package cache

// shadow is a fully-associative LRU directory of fixed capacity used to
// split non-compulsory misses into capacity (would miss fully-associatively
// too) and conflict (artifact of the mapping). It stores only line
// addresses, no data.
//
// The directory is touched on every access of a classifying cache, so it
// sits on the hot path of both Access and AccessBatch. It therefore avoids
// the runtime map and per-entry heap nodes: lines live in an open-addressed
// linear-probe table of int32 indices into a flat node pool, and the
// recency list is intrusive (int32 prev/next) inside the pool. One touch
// is one hash probe plus a few int32 writes, with zero steady-state
// allocation.
type shadow struct {
	capacity int

	nodes []shadowNode // node pool; grows on demand up to capacity+1
	free  int32        // most recently evicted pool slot, -1 = none
	head  int32        // most recently used, -1 = empty
	tail  int32        // least recently used
	size  int          // live entries

	table []int32 // slot → pool index, shadowEmpty, or shadowTombstone
	mask  uint64  // len(table)-1; table length is a power of two
	used  int     // table slots holding a live entry or a tombstone
}

const (
	shadowEmpty     = -1
	shadowTombstone = -2
)

type shadowNode struct {
	line       uint64
	prev, next int32 // intrusive recency list, -1 = none
	slot       int32 // this node's table slot, for O(1) delete
}

func newShadow(capacity int) *shadow {
	s := &shadow{capacity: capacity, free: -1, head: -1, tail: -1}
	s.initTable(64)
	return s
}

func (s *shadow) initTable(n int) {
	s.table = make([]int32, n)
	for i := range s.table {
		s.table[i] = shadowEmpty
	}
	s.mask = uint64(n - 1)
	s.used = 0
}

// shadowHash is Fibonacci hashing: line addresses are often arithmetic
// progressions (strided sweeps), which the golden-ratio multiply spreads
// across the table instead of clustering into one probe run.
func shadowHash(line uint64) uint64 { return line * 0x9e3779b97f4a7c15 }

// touch looks up line, promoting it to most-recently-used and inserting it
// (evicting the LRU entry if full) when absent. It returns whether the line
// was present before the call — i.e. whether a fully-associative LRU cache
// of this capacity would have hit.
func (s *shadow) touch(line uint64) bool {
	i := shadowHash(line) >> 32 & s.mask
	reuse := int64(-1) // first tombstone seen, reusable if line is absent
	for {
		v := s.table[i]
		if v == shadowEmpty {
			break
		}
		if v == shadowTombstone {
			if reuse < 0 {
				reuse = int64(i)
			}
		} else if s.nodes[v].line == line {
			// Splice v to the front, fused here rather than via
			// moveToFront: v != head implies v has a predecessor, and
			// v's own links are overwritten, not cleared — the hit path
			// is the hottest code in a classifying simulation.
			if s.head != v {
				nd := &s.nodes[v]
				prev, next := nd.prev, nd.next
				s.nodes[prev].next = next
				if next >= 0 {
					s.nodes[next].prev = prev
				} else {
					s.tail = prev
				}
				nd.prev = -1
				nd.next = s.head
				s.nodes[s.head].prev = v
				s.head = v
			}
			return true
		}
		i = (i + 1) & s.mask
	}

	slot := i
	if reuse >= 0 {
		slot = uint64(reuse)
	} else {
		s.used++
	}
	n := s.alloc(line)
	s.nodes[n].slot = int32(slot)
	s.table[slot] = n
	s.pushFront(n)
	s.size++
	if s.size > s.capacity {
		t := s.tail
		s.unlink(t)
		s.table[s.nodes[t].slot] = shadowTombstone
		s.free = t
		s.size--
	}
	if s.used*4 >= len(s.table)*3 {
		s.rehash()
	}
	return false
}

// rehash rebuilds the table — doubled while the live load exceeds ½ —
// discarding accumulated tombstones.
func (s *shadow) rehash() {
	n := len(s.table)
	for s.size*2 >= n {
		n *= 2
	}
	s.initTable(n)
	for v := s.head; v >= 0; v = s.nodes[v].next {
		i := shadowHash(s.nodes[v].line) >> 32 & s.mask
		for s.table[i] != shadowEmpty {
			i = (i + 1) & s.mask
		}
		s.table[i] = v
		s.nodes[v].slot = int32(i)
		s.used++
	}
}

// alloc returns a pool slot holding line. Evictions always accompany an
// insertion, so at most one freed slot exists at a time.
func (s *shadow) alloc(line uint64) int32 {
	if n := s.free; n >= 0 {
		s.free = -1
		s.nodes[n] = shadowNode{line: line, prev: -1, next: -1}
		return n
	}
	s.nodes = append(s.nodes, shadowNode{line: line, prev: -1, next: -1})
	return int32(len(s.nodes) - 1)
}

func (s *shadow) pushFront(n int32) {
	nd := &s.nodes[n]
	nd.prev = -1
	nd.next = s.head
	if s.head >= 0 {
		s.nodes[s.head].prev = n
	}
	s.head = n
	if s.tail < 0 {
		s.tail = n
	}
}

func (s *shadow) unlink(n int32) {
	nd := &s.nodes[n]
	if nd.prev >= 0 {
		s.nodes[nd.prev].next = nd.next
	} else {
		s.head = nd.next
	}
	if nd.next >= 0 {
		s.nodes[nd.next].prev = nd.prev
	} else {
		s.tail = nd.prev
	}
	nd.prev, nd.next = -1, -1
}

func (s *shadow) moveToFront(n int32) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

func (s *shadow) len() int { return s.size }

func (s *shadow) reset() {
	s.nodes = s.nodes[:0]
	s.free, s.head, s.tail = -1, -1, -1
	s.size = 0
	s.initTable(64)
}
