package cache

// shadow is a fully-associative LRU directory of fixed capacity used to
// split non-compulsory misses into capacity (would miss fully-associatively
// too) and conflict (artifact of the mapping). It stores only line
// addresses, no data, as a doubly-linked recency list over a map.
type shadow struct {
	capacity int
	nodes    map[uint64]*shadowNode
	head     *shadowNode // most recently used
	tail     *shadowNode // least recently used
}

type shadowNode struct {
	line       uint64
	prev, next *shadowNode
}

func newShadow(capacity int) *shadow {
	return &shadow{capacity: capacity, nodes: make(map[uint64]*shadowNode, capacity)}
}

// touch looks up line, promoting it to most-recently-used and inserting it
// (evicting the LRU entry if full) when absent. It returns whether the line
// was present before the call — i.e. whether a fully-associative LRU cache
// of this capacity would have hit.
func (s *shadow) touch(line uint64) bool {
	if n, ok := s.nodes[line]; ok {
		s.moveToFront(n)
		return true
	}
	n := &shadowNode{line: line}
	s.nodes[line] = n
	s.pushFront(n)
	if len(s.nodes) > s.capacity {
		victim := s.tail
		s.unlink(victim)
		delete(s.nodes, victim.line)
	}
	return false
}

func (s *shadow) pushFront(n *shadowNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *shadow) unlink(n *shadowNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *shadow) moveToFront(n *shadowNode) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

func (s *shadow) len() int { return len(s.nodes) }

func (s *shadow) reset() {
	s.nodes = make(map[uint64]*shadowNode, s.capacity)
	s.head, s.tail = nil, nil
}
