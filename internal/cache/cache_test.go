package cache

import (
	"testing"
)

// readWord issues an 8-byte-aligned read of word index w on stream s.
func readWord(c *Cache, w uint64, s int) Result {
	return c.Access(Access{Addr: w * 8, Stream: s})
}

func TestDirectMappedBasics(t *testing.T) {
	c, err := NewDirect(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lines() != 8 || c.LineBytes() != 8 {
		t.Fatalf("Lines=%d LineBytes=%d", c.Lines(), c.LineBytes())
	}
	r := readWord(c, 3, 0)
	if r.Hit {
		t.Error("first access should miss")
	}
	if r.Kind != MissCompulsory {
		t.Errorf("first miss kind = %v, want compulsory", r.Kind)
	}
	if r.Set != 3 {
		t.Errorf("word 3 mapped to set %d, want 3", r.Set)
	}
	if !readWord(c, 3, 0).Hit {
		t.Error("second access should hit")
	}
	// Word 11 conflicts with word 3 in an 8-line direct-mapped cache.
	r = readWord(c, 11, 0)
	if r.Hit || r.Set != 3 || !r.Evicted || r.EvictedLine != 3 {
		t.Errorf("word 11: %+v, want miss evicting line 3 in set 3", r)
	}
	r = readWord(c, 3, 0)
	if r.Hit {
		t.Error("word 3 should have been evicted")
	}
	if r.Kind != MissConflict {
		t.Errorf("re-miss kind = %v, want conflict", r.Kind)
	}
}

func TestStatsAccounting(t *testing.T) {
	c, _ := NewDirect(8)
	readWord(c, 0, 0)
	readWord(c, 0, 0)
	c.Access(Access{Addr: 8, Write: true, Stream: 0})
	s := c.Stats()
	if s.Accesses != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Errorf("accesses/reads/writes = %d/%d/%d", s.Accesses, s.Reads, s.Writes)
	}
	if s.Hits != 1 || s.Misses != 2 || s.Compulsory != 2 {
		t.Errorf("hits/misses/compulsory = %d/%d/%d", s.Hits, s.Misses, s.Compulsory)
	}
	if s.MissRatio() < 0.66 || s.MissRatio() > 0.67 {
		t.Errorf("MissRatio = %v", s.MissRatio())
	}
	if got := s.HitRatio() + s.MissRatio(); got < 0.999 || got > 1.001 {
		t.Errorf("hit+miss ratio = %v, want 1", got)
	}
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("ResetStats did not zero stats")
	}
	if !readWord(c, 0, 0).Hit {
		t.Error("ResetStats should keep contents")
	}
}

func TestEmptyStatsRatios(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 || s.HitRatio() != 0 || s.InterferenceRatio() != 0 {
		t.Error("zero-access ratios should be 0")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 1, Hits: 1, Reads: 1}
	b := Stats{Accesses: 2, Misses: 2, Writes: 2, Conflict: 1, SelfInterference: 1}
	a.Add(b)
	if a.Accesses != 3 || a.Hits != 1 || a.Misses != 2 || a.Conflict != 1 || a.SelfInterference != 1 {
		t.Errorf("Add result %+v", a)
	}
}

func TestFlush(t *testing.T) {
	c, _ := NewDirect(8)
	readWord(c, 5, 0)
	c.Flush()
	if c.Stats().Accesses != 0 {
		t.Error("Flush should clear stats")
	}
	r := readWord(c, 5, 0)
	if r.Hit {
		t.Error("Flush should invalidate lines")
	}
	if r.Kind != MissCompulsory {
		t.Errorf("post-flush miss kind = %v, want compulsory (history cleared)", r.Kind)
	}
}

func TestCapacityVsConflictClassification(t *testing.T) {
	// Direct-mapped 4 lines. Stream through 8 distinct lines twice: the
	// second pass misses are capacity misses (fully-assoc LRU of 4 also
	// misses), not conflict.
	c, _ := NewDirect(4)
	for pass := 0; pass < 2; pass++ {
		for w := uint64(0); w < 8; w++ {
			readWord(c, w, 0)
		}
	}
	s := c.Stats()
	if s.Compulsory != 8 {
		t.Errorf("compulsory = %d, want 8", s.Compulsory)
	}
	if s.Capacity != 8 || s.Conflict != 0 {
		t.Errorf("capacity/conflict = %d/%d, want 8/0", s.Capacity, s.Conflict)
	}

	// Conversely: two lines that collide in a direct-mapped cache but fit
	// fully-associatively produce conflict misses.
	c2, _ := NewDirect(4)
	for i := 0; i < 4; i++ {
		readWord(c2, 0, 0)
		readWord(c2, 4, 0)
	}
	s2 := c2.Stats()
	if s2.Compulsory != 2 {
		t.Errorf("compulsory = %d, want 2", s2.Compulsory)
	}
	if s2.Conflict != 6 || s2.Capacity != 0 {
		t.Errorf("conflict/capacity = %d/%d, want 6/0", s2.Conflict, s2.Capacity)
	}
}

func TestSelfVsCrossInterference(t *testing.T) {
	// Lines 0 and 4 collide in set 0 of a 4-line direct cache.
	// Same stream ping-pong → self-interference.
	c, _ := NewDirect(4)
	readWord(c, 0, 1)
	readWord(c, 4, 1) // evicts 0 (stream 1)
	r := readWord(c, 0, 1)
	if !r.SelfInterference || r.CrossInterference {
		t.Errorf("same-stream conflict: %+v, want self-interference", r)
	}
	// Different streams → cross-interference.
	c2, _ := NewDirect(4)
	readWord(c2, 0, 1)
	readWord(c2, 4, 2) // stream 2 evicts stream 1's line
	r = readWord(c2, 0, 1)
	if !r.CrossInterference || r.SelfInterference {
		t.Errorf("cross-stream conflict: %+v, want cross-interference", r)
	}
	s := c2.Stats()
	if s.CrossInterference != 1 || s.SelfInterference != 0 {
		t.Errorf("stats cross/self = %d/%d, want 1/0", s.CrossInterference, s.SelfInterference)
	}
}

func TestStreamNoneNotAttributed(t *testing.T) {
	c, _ := NewDirect(4)
	readWord(c, 0, StreamNone)
	readWord(c, 4, StreamNone)
	r := readWord(c, 0, StreamNone)
	if r.Kind != MissConflict {
		t.Fatalf("kind = %v, want conflict", r.Kind)
	}
	if r.SelfInterference || r.CrossInterference {
		t.Error("StreamNone conflicts must not be attributed")
	}
}

func TestSetAssocLRU(t *testing.T) {
	// 2 sets × 2 ways. Lines 0,2,4 all map to set 0.
	c, err := NewSetAssoc(4, 2, LRU)
	if err != nil {
		t.Fatal(err)
	}
	readWord(c, 0, 0)
	readWord(c, 2, 0)
	readWord(c, 0, 0) // 0 now MRU
	r := readWord(c, 4, 0)
	if r.EvictedLine != 2 {
		t.Errorf("LRU evicted line %d, want 2", r.EvictedLine)
	}
	if !readWord(c, 0, 0).Hit {
		t.Error("line 0 should still be resident")
	}
}

func TestSetAssocFIFO(t *testing.T) {
	c, _ := NewSetAssoc(4, 2, FIFO)
	readWord(c, 0, 0)
	readWord(c, 2, 0)
	readWord(c, 0, 0) // touch does not matter for FIFO
	r := readWord(c, 4, 0)
	if r.EvictedLine != 0 {
		t.Errorf("FIFO evicted line %d, want 0 (oldest fill)", r.EvictedLine)
	}
}

func TestSetAssocRandomDeterministic(t *testing.T) {
	run := func() []uint64 {
		m, _ := NewDirectMapper(2)
		c := MustNew(Config{Mapper: m, Ways: 2, Policy: Random, Seed: 42})
		var ev []uint64
		for w := uint64(0); w < 20; w += 2 {
			if r := readWord(c, w, 0); r.Evicted {
				ev = append(ev, r.EvictedLine)
			}
		}
		return ev
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("expected evictions")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random policy with equal seeds diverged")
		}
	}
}

func TestFullyAssociativeNoConflicts(t *testing.T) {
	c, err := NewFullyAssoc(8)
	if err != nil {
		t.Fatal(err)
	}
	// Stride-8 sweep that would thrash a direct-mapped cache fits fully
	// associatively.
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < 8; i++ {
			readWord(c, i*8, 0)
		}
	}
	s := c.Stats()
	if s.Conflict != 0 {
		t.Errorf("fully-associative cache recorded %d conflicts", s.Conflict)
	}
	if s.Misses != 8 {
		t.Errorf("misses = %d, want 8 compulsory only", s.Misses)
	}
}

func TestPrimeMappedStridedConflictFree(t *testing.T) {
	// The headline property, via the cache (not just the mapper): a
	// power-of-two stride sweep repeatedly hits after its compulsory
	// load in a prime-mapped cache, while a direct-mapped cache of
	// comparable size thrashes.
	prime, _ := NewPrime(13) // 8191 lines
	direct, _ := NewDirect(8192)
	const n, stride = 4096, 8192 / 16 // stride 512, 4096 elements
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < n; i++ {
			readWord(prime, i*stride, 0)
			readWord(direct, i*stride, 0)
		}
	}
	ps, ds := prime.Stats(), direct.Stats()
	if ps.Conflict != 0 {
		t.Errorf("prime-mapped conflicts = %d, want 0", ps.Conflict)
	}
	if ps.Misses != n {
		t.Errorf("prime-mapped misses = %d, want %d compulsory", ps.Misses, n)
	}
	if ds.Conflict == 0 {
		t.Error("direct-mapped cache should thrash on stride-512 sweep")
	}
	if ds.MissRatio() < 0.9 {
		t.Errorf("direct-mapped miss ratio = %v, want ≈ 1", ds.MissRatio())
	}
}

func TestUtilizationAndContains(t *testing.T) {
	c, _ := NewDirect(8)
	if c.Utilization() != 0 {
		t.Error("empty cache utilization != 0")
	}
	readWord(c, 1, 0)
	readWord(c, 2, 0)
	if got := c.Utilization(); got != 0.25 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
	if !c.Contains(8) || c.Contains(0) {
		t.Error("Contains mismatch")
	}
}

func TestLineSizeSpatialLocality(t *testing.T) {
	// 64-byte lines: 8 consecutive words share a line, so a unit-stride
	// sweep misses once per 8 words.
	m, _ := NewDirectMapper(64)
	c := MustNew(Config{Mapper: m, Ways: 1, LineBytes: 64})
	for w := uint64(0); w < 256; w++ {
		readWord(c, w, 0)
	}
	s := c.Stats()
	if s.Misses != 32 {
		t.Errorf("misses = %d, want 32 (one per 64-byte line)", s.Misses)
	}
}

func TestCachePollutionLargeStride(t *testing.T) {
	// §2.2: with multi-word lines and a large stride, each access misses
	// anyway — the loaded excess words are pure pollution.
	m, _ := NewDirectMapper(64)
	c := MustNew(Config{Mapper: m, Ways: 1, LineBytes: 64})
	for i := uint64(0); i < 64; i++ {
		readWord(c, i*8, 0) // stride 8 words = one access per line
	}
	if s := c.Stats(); s.Hits != 0 {
		t.Errorf("hits = %d, want 0 (line size wasted by stride)", s.Hits)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil mapper accepted")
	}
	m, _ := NewDirectMapper(8)
	if _, err := New(Config{Mapper: m, Ways: 0}); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := New(Config{Mapper: m, Ways: 1, LineBytes: 12}); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := New(Config{Mapper: m, Ways: 1, Policy: Policy(99)}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewSetAssoc(8, 3, LRU); err == nil {
		t.Error("non-divisible ways accepted")
	}
	if _, err := NewDirect(12); err == nil {
		t.Error("non-power-of-two direct size accepted")
	}
}

func TestDisableClassify(t *testing.T) {
	m, _ := NewDirectMapper(4)
	c := MustNew(Config{Mapper: m, Ways: 1, DisableClassify: true})
	readWord(c, 0, 0)
	readWord(c, 4, 0)
	r := readWord(c, 0, 0)
	if r.Hit {
		t.Error("should miss")
	}
	if r.Kind != MissNone {
		t.Errorf("classification disabled but kind = %v", r.Kind)
	}
	s := c.Stats()
	if s.Misses != 3 || s.Compulsory+s.Capacity+s.Conflict != 0 {
		t.Errorf("stats with classification off: %+v", s)
	}
}

func TestMissKindString(t *testing.T) {
	for k, want := range map[MissKind]string{MissNone: "hit", MissCompulsory: "compulsory", MissCapacity: "capacity", MissConflict: "conflict", MissKind(9): "misskind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	for p, want := range map[Policy]string{LRU: "lru", FIFO: "fifo", Random: "random", Policy(9): "policy(9)"} {
		if got := p.String(); got != want {
			t.Errorf("Policy %d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestDescribe(t *testing.T) {
	c, _ := NewPrime(13)
	want := "prime-mapped 8191 sets × 1 ways × 8B lines (lru)"
	if got := c.Describe(); got != want {
		t.Errorf("Describe() = %q, want %q", got, want)
	}
}

func TestWriteThroughTraffic(t *testing.T) {
	c, _ := NewDirect(8) // write-through by default
	for i := 0; i < 5; i++ {
		c.Access(Access{Addr: 0, Write: true, Stream: 1})
	}
	s := c.Stats()
	if s.MemoryWrites != 5 {
		t.Errorf("MemoryWrites = %d, want 5 (write-through)", s.MemoryWrites)
	}
	if s.Writebacks != 0 {
		t.Errorf("Writebacks = %d, want 0", s.Writebacks)
	}
}

func TestWriteBackTraffic(t *testing.T) {
	m, _ := NewDirectMapper(8)
	c := MustNew(Config{Mapper: m, Ways: 1, WriteBack: true})
	// Five writes to the same resident line: zero memory traffic so far.
	for i := 0; i < 5; i++ {
		c.Access(Access{Addr: 0, Write: true, Stream: 1})
	}
	s := c.Stats()
	if s.MemoryWrites != 0 || s.Writebacks != 0 {
		t.Errorf("resident dirty line should not write memory yet: %+v", s)
	}
	// Evict it with a conflicting line: one writeback.
	c.Access(Access{Addr: 8 * 8, Stream: 1})
	s = c.Stats()
	if s.Writebacks != 1 || s.MemoryWrites != 1 {
		t.Errorf("after eviction: writebacks %d memwrites %d, want 1/1", s.Writebacks, s.MemoryWrites)
	}
	// A clean eviction does not write back.
	c.Access(Access{Addr: 16 * 8, Stream: 1})
	if s = c.Stats(); s.Writebacks != 1 {
		t.Errorf("clean eviction wrote back: %d", s.Writebacks)
	}
}

func TestWriteBackDirtyOnMissFill(t *testing.T) {
	m, _ := NewDirectMapper(8)
	c := MustNew(Config{Mapper: m, Ways: 1, WriteBack: true})
	c.Access(Access{Addr: 0, Write: true, Stream: 1}) // write miss → dirty fill
	c.Access(Access{Addr: 8 * 8, Stream: 1})          // evicts the dirty line
	if s := c.Stats(); s.Writebacks != 1 {
		t.Errorf("dirty-filled line eviction writebacks = %d, want 1", s.Writebacks)
	}
}

func TestWriteBackReducesTrafficOnReuse(t *testing.T) {
	// A kernel that rewrites the same block R times: write-through costs
	// R·B memory writes, write-back costs ≈ B.
	run := func(wb bool) Stats {
		m, _ := NewDirectMapper(64)
		c := MustNew(Config{Mapper: m, Ways: 1, WriteBack: wb})
		for pass := 0; pass < 8; pass++ {
			for w := uint64(0); w < 64; w++ {
				c.Access(Access{Addr: w * 8, Write: true, Stream: 1})
			}
		}
		// Flush-equivalent: evict everything to force final writebacks.
		for w := uint64(64); w < 128; w++ {
			c.Access(Access{Addr: w * 8, Stream: 1})
		}
		return c.Stats()
	}
	wt, wb := run(false), run(true)
	if wt.MemoryWrites != 512 {
		t.Errorf("write-through memory writes = %d, want 512", wt.MemoryWrites)
	}
	if wb.MemoryWrites != 64 {
		t.Errorf("write-back memory writes = %d, want 64", wb.MemoryWrites)
	}
}

func TestPrimeAssocExtension(t *testing.T) {
	if _, err := NewPrimeAssoc(12, 2); err == nil {
		t.Error("composite exponent accepted")
	}
	if _, err := NewPrimeAssoc(13, 0); err == nil {
		t.Error("zero ways accepted")
	}
	// Two lines congruent mod 8191 ping-pong in the direct prime cache
	// but coexist in the 2-way prime cache.
	direct, _ := NewPrime(13)
	assoc, _ := NewPrimeAssoc(13, 2)
	for i := 0; i < 16; i++ {
		for _, w := range []uint64{5, 5 + 8191} {
			direct.Access(Access{Addr: w * 8, Stream: 1})
			assoc.Access(Access{Addr: w * 8, Stream: 1})
		}
	}
	if s := direct.Stats(); s.Conflict == 0 {
		t.Error("prime direct should ping-pong on congruent lines")
	}
	if s := assoc.Stats(); s.Conflict != 0 {
		t.Errorf("prime 2-way conflicts = %d, want 0", s.Conflict)
	}
	// And strided sweeps stay conflict-free (the prime property is in the
	// mapper, not the associativity).
	sweep, _ := NewPrimeAssoc(13, 2)
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 4096; i++ {
			sweep.Access(Access{Addr: i * 512 * 8, Stream: 1})
		}
	}
	if s := sweep.Stats(); s.Conflict != 0 {
		t.Errorf("prime 2-way strided conflicts = %d, want 0", s.Conflict)
	}
}
