package cache

import "testing"

func TestNewVictimValidation(t *testing.T) {
	if _, err := NewVictim(100, 4); err == nil {
		t.Error("non-power-of-two main accepted")
	}
	if _, err := NewVictim(64, 0); err == nil {
		t.Error("empty buffer accepted")
	}
	v, err := NewVictim(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.Main().Lines() != 64 {
		t.Errorf("main lines = %d", v.Main().Lines())
	}
}

func TestVictimRescuesPingPong(t *testing.T) {
	// Two lines aliasing one set ping-pong: plain direct misses every
	// access after warm-up, the victim buffer converts them to swap hits.
	plain, _ := NewDirect(64)
	vict, _ := NewVictim(64, 4)
	for i := 0; i < 32; i++ {
		for _, w := range []uint64{0, 64} {
			plain.Access(Access{Addr: w * 8, Stream: 1})
			vict.Access(Access{Addr: w * 8, Stream: 1})
		}
	}
	if pm := plain.Stats().MissRatio(); pm < 0.9 {
		t.Fatalf("plain direct miss ratio %v, expected thrash", pm)
	}
	if cm := vict.CombinedMissRatio(); cm > 0.1 {
		t.Errorf("victim combined miss ratio %v, want ≈ 2/64", cm)
	}
	vs := vict.VictimStats()
	if vs.SwapHits == 0 {
		t.Error("no swap hits recorded")
	}
	if vs.TrueMisses != 2 {
		t.Errorf("true misses = %d, want 2 compulsory", vs.TrueMisses)
	}
}

func TestVictimCannotRescueStridedSweep(t *testing.T) {
	// A stride-512 sweep of 2048 elements folds onto 16 sets with a
	// conflict working set of 2048 lines — hopeless for a 4-entry buffer,
	// conflict-free for the prime cache.
	vict, _ := NewVictim(8192, 4)
	prime, _ := NewPrime(13)
	const n, stride = 2048, 512
	for pass := 0; pass < 3; pass++ {
		a := uint64(0)
		for i := 0; i < n; i++ {
			vict.Access(Access{Addr: a * 8, Stream: 1})
			prime.Access(Access{Addr: a * 8, Stream: 1})
			a += stride
		}
	}
	if vm := vict.CombinedMissRatio(); vm < 0.9 {
		t.Errorf("victim miss ratio %v, expected ≈ 1 on the sweep", vm)
	}
	if pm := prime.Stats().MissRatio(); pm > 0.4 {
		t.Errorf("prime miss ratio %v, want 1/3 (compulsory only)", pm)
	}
}

func TestVictimBufferLRU(t *testing.T) {
	v, _ := NewVictim(4, 2)
	// Fill set 0 with successive aliases: lines 0,4,8,12 → buffer holds
	// the last two evicted.
	for _, w := range []uint64{0, 4, 8, 12} {
		v.Access(Access{Addr: w * 8, Stream: 1})
	}
	// Buffer should now hold lines 4 and 8 (0 was evicted from buffer).
	r := v.Access(Access{Addr: 8 * 8, Stream: 1})
	if !r.Hit {
		t.Error("line 8 should swap-hit")
	}
	r = v.Access(Access{Addr: 0, Stream: 1})
	if r.Hit {
		t.Error("line 0 should be a true miss (aged out of the buffer)")
	}
}

func TestVictimEmptyStats(t *testing.T) {
	v, _ := NewVictim(64, 2)
	if v.CombinedMissRatio() != 0 {
		t.Error("empty combined miss ratio != 0")
	}
}

func TestVictimDescribeFlush(t *testing.T) {
	v, _ := NewVictim(64, 4)
	if got := v.Describe(); got != "direct 64 lines + 4-entry victim buffer" {
		t.Errorf("Describe = %q", got)
	}
	v.Access(Access{Addr: 0, Stream: 1})
	v.Access(Access{Addr: 64 * 8, Stream: 1})
	v.Flush()
	if v.CombinedMissRatio() != 0 {
		t.Error("Flush kept stats")
	}
	if r := v.Access(Access{Addr: 0, Stream: 1}); r.Hit {
		t.Error("Flush kept contents")
	}
}
