package cache

import (
	"testing"
	"testing/quick"
)

func TestDirectMapperIndex(t *testing.T) {
	m, err := NewDirectMapper(8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sets() != 8 || m.Name() != "direct" {
		t.Errorf("Sets=%d Name=%q", m.Sets(), m.Name())
	}
	for _, tc := range [][2]uint64{{0, 0}, {7, 7}, {8, 0}, {15, 7}, {1 << 30, 0}} {
		if got := m.Index(tc[0]); got != int(tc[1]) {
			t.Errorf("Index(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
}

func TestDirectMapperRejectsNonPowerOfTwo(t *testing.T) {
	for _, sets := range []int{0, -1, 3, 12, 1000} {
		if _, err := NewDirectMapper(sets); err == nil {
			t.Errorf("NewDirectMapper(%d) accepted", sets)
		}
	}
}

func TestPrimeMapperMatchesModulo(t *testing.T) {
	pm, err := NewPrimeMapper(13)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Sets() != 8191 || pm.Name() != "prime" {
		t.Errorf("Sets=%d Name=%q", pm.Sets(), pm.Name())
	}
	f := func(x uint64) bool { return pm.Index(x) == int(x%8191) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrimeMapperRejectsComposite(t *testing.T) {
	for _, c := range []uint{0, 1, 4, 11, 12} {
		if _, err := NewPrimeMapper(c); err == nil {
			t.Errorf("NewPrimeMapper(%d) accepted", c)
		}
	}
}

func TestModuloMapper(t *testing.T) {
	m, err := NewModuloMapper(10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sets() != 10 || m.Name() != "modulo" {
		t.Errorf("Sets=%d Name=%q", m.Sets(), m.Name())
	}
	if m.Index(25) != 5 {
		t.Errorf("Index(25) = %d", m.Index(25))
	}
	if _, err := NewModuloMapper(0); err == nil {
		t.Error("NewModuloMapper(0) accepted")
	}
}

func TestPrimeAndModuloMapperAgree(t *testing.T) {
	pm, _ := NewPrimeMapper(13)
	mm, _ := NewModuloMapper(8191)
	f := func(x uint64) bool { return pm.Index(x) == mm.Index(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMapperStrideCoverage checks the number-theoretic fact the design
// rests on: a stride-s sweep covers C/gcd(C,s) distinct sets, so the prime
// mapper covers all sets for every stride not divisible by C, while the
// direct mapper collapses power-of-two strides onto few sets.
func TestMapperStrideCoverage(t *testing.T) {
	gcd := func(a, b int) int {
		for b != 0 {
			a, b = b, a%b
		}
		return a
	}
	pm, _ := NewPrimeMapper(7) // 127 sets
	dm, _ := NewDirectMapper(128)
	for stride := 1; stride <= 256; stride++ {
		count := func(m Mapper) int {
			seen := make(map[int]bool)
			for i := 0; i < 4*m.Sets(); i++ {
				seen[m.Index(uint64(i*stride))] = true
			}
			return len(seen)
		}
		if got, want := count(pm), 127/gcd(127, stride); got != want {
			t.Fatalf("prime stride %d: covered %d sets, want %d", stride, got, want)
		}
		if got, want := count(dm), 128/gcd(128, stride); got != want {
			t.Fatalf("direct stride %d: covered %d sets, want %d", stride, got, want)
		}
	}
}
