package cache_test

// External test package: the oracle package imports cache, so the
// reference-model fuzz target must live outside package cache to avoid
// an import cycle.

import (
	"testing"

	"primecache/internal/cache"
	"primecache/internal/oracle"
	"primecache/internal/trace"
)

// FuzzSimVsReference replays a fuzzer-decoded trace through a seeded
// random cache organisation and its map-backed reference, requiring
// access-for-access and statistic-for-statistic agreement across all
// seven Spec kinds. The trace wire format is three bytes per reference:
// a 16-bit word address plus a flag byte (bit 0 write, bits 1.. stream).
// The seed corpus encodes the classic offenders from the table tests:
// stride-32 power-of-two sweeps, repeated single-line hammering, and a
// two-stream interleave.
func FuzzSimVsReference(f *testing.F) {
	pack := func(tr trace.Trace) []byte {
		var out []byte
		for _, r := range tr {
			w := r.Addr / 8
			flags := byte(r.Stream&0x7f) << 1
			if r.Write {
				flags |= 1
			}
			out = append(out, byte(w), byte(w>>8), flags)
		}
		return out
	}
	f.Add(int64(1), uint8(0), pack(trace.Strided(0, 32, 64, 1)))
	f.Add(int64(2), uint8(2), pack(trace.Strided(0, 1, 128, 1)))
	f.Add(int64(3), uint8(6), pack(trace.Concat(trace.Strided(7, 0, 16, 1), trace.Strided(7, 0, 16, 2))))
	f.Add(int64(4), uint8(5), pack(trace.Interleave(trace.Strided(0, 31, 62, 1), trace.StridedWrite(3, 8, 40, 2))))
	f.Fuzz(func(t *testing.T, seed int64, kindSel uint8, data []byte) {
		kinds := cache.SpecKinds()
		kind := kinds[int(kindSel)%len(kinds)]
		spec := oracle.NewGen(seed).SpecOfKind(kind)

		const maxRefs = 1024
		n := len(data) / 3
		if n > maxRefs {
			n = maxRefs
		}
		tr := make(trace.Trace, 0, n)
		for i := 0; i < n; i++ {
			b := data[i*3 : i*3+3]
			word := uint64(b[0]) | uint64(b[1])<<8
			tr = append(tr, trace.Ref{
				Addr:   word * 8,
				Write:  b[2]&1 != 0,
				Stream: 1 + int(b[2]>>1)%3,
			})
		}

		d, err := oracle.Diff(spec, tr)
		if err != nil {
			t.Fatalf("spec %v: %v", spec, err)
		}
		if d != nil {
			t.Fatalf("fast simulator diverged from reference:\n%s", d)
		}
	})
}
