package cache

import (
	"fmt"
	"math/bits"
)

// SkewedCache is a two-way skewed-associative cache (Seznec's design, the
// other 1990s attack on conflict misses): each way indexes with a
// *different* XOR-based hash of the line address, so two lines that
// collide in one way usually do not collide in the other. It is the
// natural foil for prime mapping — conflict dispersion by hashing versus
// conflict elimination by a prime modulus — and the experiments compare
// both against direct mapping.
//
// Way w of 2^c sets indexes with h_w(line) = low ⊕ rot_w(mid), where low
// and mid are the two c-bit fields above the offset and rot_w is a w-bit
// left rotate within c bits.
type SkewedCache struct {
	c         uint
	mask      uint64
	lineShift uint
	ways      [2][]way
	clock     uint64

	seen      map[uint64]bool
	shadow    *shadow
	evictedBy map[uint64]int

	stats Stats
}

// NewSkewed returns a two-way skewed cache of lines total lines (a power
// of two, so 2^(c) = lines/2 sets per way) with 8-byte lines.
func NewSkewed(lines int) (*SkewedCache, error) {
	if lines < 4 || lines&(lines-1) != 0 {
		return nil, fmt.Errorf("cache: skewed cache needs power-of-two lines ≥ 4, got %d", lines)
	}
	sets := lines / 2
	c := uint(bits.TrailingZeros(uint(sets)))
	s := &SkewedCache{
		c:         c,
		mask:      uint64(sets - 1),
		lineShift: 3, // 8-byte lines, as the paper fixes
		seen:      make(map[uint64]bool),
		shadow:    newShadow(lines),
		evictedBy: make(map[uint64]int),
	}
	s.ways[0] = make([]way, sets)
	s.ways[1] = make([]way, sets)
	return s, nil
}

// Lines returns the total line capacity.
func (s *SkewedCache) Lines() int { return 2 * len(s.ways[0]) }

// Stats returns accumulated statistics.
func (s *SkewedCache) Stats() Stats { return s.stats }

// hash computes way w's set index for a line address.
func (s *SkewedCache) hash(w int, line uint64) int {
	low := line & s.mask
	mid := (line >> s.c) & s.mask
	if w == 1 {
		mid = ((mid << 1) | (mid >> (s.c - 1))) & s.mask
	}
	return int(low ^ mid)
}

// Access simulates one reference; the semantics mirror Cache.Access
// (allocate on read and write, LRU-by-timestamp between the two
// candidate frames).
func (s *SkewedCache) Access(a Access) Result {
	s.clock++
	s.stats.Accesses++
	if a.Write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}
	line := a.Addr >> s.lineShift

	firstRef := !s.seen[line]
	s.seen[line] = true
	shadowHit := s.shadow.touch(line)

	idx := [2]int{s.hash(0, line), s.hash(1, line)}
	for w := 0; w < 2; w++ {
		e := &s.ways[w][idx[w]]
		if e.valid && e.line == line {
			e.lastUse = s.clock
			s.stats.Hits++
			return Result{Hit: true, Set: idx[w], Way: w}
		}
	}

	s.stats.Misses++
	res := Result{}
	switch {
	case firstRef:
		res.Kind = MissCompulsory
		s.stats.Compulsory++
	case shadowHit:
		res.Kind = MissConflict
		s.stats.Conflict++
		if evictor, ok := s.evictedBy[line]; ok && a.Stream != StreamNone && evictor != StreamNone {
			if evictor == a.Stream {
				res.SelfInterference = true
				s.stats.SelfInterference++
			} else {
				res.CrossInterference = true
				s.stats.CrossInterference++
			}
		}
	default:
		res.Kind = MissCapacity
		s.stats.Capacity++
	}

	// Victim: an invalid frame if either candidate is free, else the
	// least recently used of the two.
	w := 0
	switch {
	case !s.ways[0][idx[0]].valid:
		w = 0
	case !s.ways[1][idx[1]].valid:
		w = 1
	case s.ways[1][idx[1]].lastUse < s.ways[0][idx[0]].lastUse:
		w = 1
	}
	victim := &s.ways[w][idx[w]]
	if victim.valid {
		res.Evicted = true
		res.EvictedLine = victim.line
		s.stats.Evictions++
		s.evictedBy[victim.line] = a.Stream
	}
	*victim = way{valid: true, line: line, stream: a.Stream, lastUse: s.clock, filled: s.clock}
	res.Set, res.Way = idx[w], w
	return res
}

// Describe returns a short human-readable description.
func (s *SkewedCache) Describe() string {
	return fmt.Sprintf("skewed 2-way %d sets × 8B lines (xor)", len(s.ways[0]))
}

// Flush invalidates every line and clears statistics and history.
func (s *SkewedCache) Flush() {
	for w := 0; w < 2; w++ {
		for i := range s.ways[w] {
			s.ways[w][i] = way{}
		}
	}
	s.clock = 0
	s.stats = Stats{}
	s.seen = make(map[uint64]bool)
	s.shadow.reset()
	s.evictedBy = make(map[uint64]int)
}
