package cache

import "fmt"

// MissKind classifies a miss under the three-C model.
type MissKind int

const (
	// MissNone marks a hit.
	MissNone MissKind = iota
	// MissCompulsory is the first-ever reference to a line.
	MissCompulsory
	// MissCapacity would also have missed in a fully-associative LRU
	// cache of the same capacity.
	MissCapacity
	// MissConflict would have hit fully-associatively; it is an artifact
	// of the mapping function — the misses the prime mapping removes.
	MissConflict
)

// String implements fmt.Stringer.
func (k MissKind) String() string {
	switch k {
	case MissNone:
		return "hit"
	case MissCompulsory:
		return "compulsory"
	case MissCapacity:
		return "capacity"
	case MissConflict:
		return "conflict"
	default:
		return fmt.Sprintf("misskind(%d)", int(k))
	}
}

// Stats accumulates access outcomes for one cache.
type Stats struct {
	Accesses uint64
	Reads    uint64
	Writes   uint64
	Hits     uint64
	Misses   uint64

	Compulsory uint64
	Capacity   uint64
	Conflict   uint64

	// SelfInterference counts conflict misses whose victim was evicted by
	// an access of the same vector stream; CrossInterference by a
	// different stream. They sum to at most Conflict (a conflict miss on
	// a line never cached before eviction tracking saw it is counted in
	// neither).
	SelfInterference  uint64
	CrossInterference uint64

	Evictions uint64

	// Writebacks counts dirty-line evictions (write-back mode);
	// MemoryWrites counts the store traffic that reached memory: every
	// store in write-through mode, writebacks in write-back mode.
	Writebacks   uint64
	MemoryWrites uint64
}

// MissRatio returns Misses/Accesses, 0 when no accesses occurred.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRatio returns Hits/Accesses, 0 when no accesses occurred.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// InterferenceRatio returns the fraction of accesses that were conflict
// misses — the paper's "interference misses".
func (s Stats) InterferenceRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Conflict) / float64(s.Accesses)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Compulsory += o.Compulsory
	s.Capacity += o.Capacity
	s.Conflict += o.Conflict
	s.SelfInterference += o.SelfInterference
	s.CrossInterference += o.CrossInterference
	s.Evictions += o.Evictions
	s.Writebacks += o.Writebacks
	s.MemoryWrites += o.MemoryWrites
}

// String implements fmt.Stringer with a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("acc=%d hit=%d miss=%d (comp=%d cap=%d conf=%d self=%d cross=%d) miss%%=%.2f",
		s.Accesses, s.Hits, s.Misses, s.Compulsory, s.Capacity, s.Conflict,
		s.SelfInterference, s.CrossInterference, 100*s.MissRatio())
}
