// Package cache is a trace-driven cache simulation framework for the
// prime-mapped vector-cache study (Yang & Wu, ISCA 1992).
//
// A Cache is a set-associative array of lines configured by Config: total
// line count, associativity, line size, an index Mapper (bit-selection
// direct mapping, Mersenne prime mapping, or arbitrary modulo), and a
// replacement Policy (LRU, FIFO, Random). Direct-mapped and fully
// associative caches are the two extreme configurations of the same
// machinery.
//
// Beyond hit/miss counting the simulator classifies every miss with the
// standard three-C model (compulsory / capacity / conflict) using an
// embedded fully-associative LRU shadow directory of equal capacity, and
// attributes every conflict miss to self-interference (the evicting access
// belonged to the same vector stream) or cross-interference (a different
// stream), the distinction at the heart of the paper's argument.
package cache
