package cache_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"primecache/internal/cache"
)

// flipCtx is a Context whose Err flips to Canceled after `after` calls —
// AccessBatchContext and ReplayPatternContext consult only Err(), never
// Done(), so tests can pin exactly which checkpoint observes the
// cancellation.
type flipCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func strided(n int) []cache.Access {
	accs := make([]cache.Access, n)
	for i := range accs {
		accs[i] = cache.Access{Addr: uint64(i) * 512 * 8, Stream: 1}
	}
	return accs
}

// TestAccessBatchContextCompletes: an un-cancelled context runs the
// whole slice with stats identical to the plain batch path, and reports
// nil error even when the last chunk lands exactly on the boundary.
func TestAccessBatchContextCompletes(t *testing.T) {
	accs := strided(4096)
	spec := cache.Spec{Kind: "prime", C: 7}
	plain, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cache.AccessBatch(plain, accs, nil)

	for _, chunk := range []int{0, 1, 100, 1024, 4096, 5000} {
		chunked, _ := spec.Build()
		done, err := cache.AccessBatchContext(context.Background(), chunked, accs, nil, chunk)
		if err != nil || done != len(accs) {
			t.Fatalf("chunk %d: done=%d err=%v, want %d,nil", chunk, done, err, len(accs))
		}
		if chunked.Stats() != plain.Stats() {
			t.Errorf("chunk %d: stats diverge from unchunked batch:\n %+v\n %+v",
				chunk, chunked.Stats(), plain.Stats())
		}
	}
}

// TestAccessBatchContextStopsEarly: once Err flips, at most one more
// chunk completes, and the reported count matches the work done.
func TestAccessBatchContextStopsEarly(t *testing.T) {
	accs := strided(100_000)
	spec := cache.Spec{Kind: "direct", Lines: 1024}
	sim, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 1000
	ctx := &flipCtx{Context: context.Background(), after: 3}
	done, err := cache.AccessBatchContext(ctx, sim, accs, nil, chunk)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Checks run before each chunk: three pass, so exactly three chunks
	// of work completed before the fourth check observed cancellation.
	if done != 3*chunk {
		t.Errorf("done = %d, want %d (three chunks before the flip)", done, 3*chunk)
	}
	if got := sim.Stats().Accesses; got != uint64(done) {
		t.Errorf("stats saw %d accesses, reported done = %d", got, done)
	}
}

// TestAccessBatchContextAlreadyCancelled: a dead context does zero work.
func TestAccessBatchContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim, err := cache.Spec{Kind: "prime", C: 7}.Build()
	if err != nil {
		t.Fatal(err)
	}
	done, err := cache.AccessBatchContext(ctx, sim, strided(1000), nil, 10)
	if done != 0 || !errors.Is(err, context.Canceled) {
		t.Errorf("done=%d err=%v, want 0, context.Canceled", done, err)
	}
	if sim.Stats().Accesses != 0 {
		t.Error("cancelled batch still touched the cache")
	}
}
