package cache

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// StreamNone marks an access that belongs to no particular vector stream;
// its conflict misses are classified but not attributed to self/cross
// interference.
const StreamNone = -1

// Access is one memory reference presented to a cache.
type Access struct {
	// Addr is the byte address.
	Addr uint64
	// Write marks a store; everything else is a load.
	Write bool
	// Stream identifies the vector stream the access belongs to, for
	// interference attribution. Use StreamNone when unknown.
	Stream int
}

// Result reports the outcome of one access.
type Result struct {
	Hit  bool
	Kind MissKind
	// Set and Way locate the line after the access.
	Set, Way int
	// Evicted reports that a valid line was displaced.
	Evicted bool
	// EvictedLine is the displaced line address when Evicted.
	EvictedLine uint64
	// SelfInterference / CrossInterference attribute a conflict miss to
	// the stream that previously evicted this line.
	SelfInterference  bool
	CrossInterference bool
}

type way struct {
	valid      bool
	line       uint64
	stream     int    // stream of the access that filled the line
	lastUse    uint64 // LRU timestamp
	filled     uint64 // FIFO timestamp
	prefetched bool   // filled by a prefetch, not yet demand-touched
	dirty      bool   // written since fill (write-back mode)
}

// Cache is a set-associative cache simulator; see package documentation.
// It is not safe for concurrent use.
type Cache struct {
	cfg       Config
	lineShift uint
	sets      [][]way
	clock     uint64
	rng       *rand.Rand

	seen      map[uint64]bool // lines ever referenced (compulsory tracking)
	shadow    *shadow         // fully-assoc LRU of equal capacity (3C split)
	evictedBy map[uint64]int  // line → stream that evicted it most recently

	stats          Stats
	prefetchWasted uint64 // prefetched lines evicted before demand touch

	scratch []int // AccessBatch set-index buffer, reused across batches
}

// New validates cfg and returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = DefaultLineBytes
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		sets:      make([][]way, cfg.Mapper.Sets()),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Ways)
	}
	if !cfg.DisableClassify {
		c.seen = make(map[uint64]bool)
		c.shadow = newShadow(cfg.Mapper.Sets() * cfg.Ways)
		c.evictedBy = make(map[uint64]int)
	}
	return c, nil
}

// MustNew is New but panics on error; for tests and examples.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration (with defaults filled in).
func (c *Cache) Config() Config { return c.cfg }

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return c.cfg.Mapper.Sets() * c.cfg.Ways }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics but keeps cache contents and the
// compulsory-miss history.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates every line and clears statistics and classification
// history.
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
	c.prefetchWasted = 0
	if c.seen != nil {
		c.seen = make(map[uint64]bool)
		c.shadow.reset()
		c.evictedBy = make(map[uint64]int)
	}
}

// LineAddr returns the line address of a byte address under this cache's
// line size.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// Utilization returns the fraction of lines currently valid.
func (c *Cache) Utilization() float64 {
	valid := 0
	for i := range c.sets {
		for j := range c.sets[i] {
			if c.sets[i][j].valid {
				valid++
			}
		}
	}
	return float64(valid) / float64(c.Lines())
}

// Contains reports whether the line holding byte address addr is cached.
func (c *Cache) Contains(addr uint64) bool {
	line := c.LineAddr(addr)
	set := c.cfg.Mapper.Index(line)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].line == line {
			return true
		}
	}
	return false
}

// Access simulates one reference and returns its outcome. Both loads and
// stores allocate (the paper's CC-model assumes writes are buffered and do
// not stall the pipeline; allocation policy only affects contents).
func (c *Cache) Access(a Access) Result {
	c.clock++
	c.stats.Accesses++
	if a.Write {
		c.stats.Writes++
		if !c.cfg.WriteBack {
			c.stats.MemoryWrites++
		}
	} else {
		c.stats.Reads++
	}

	line := c.LineAddr(a.Addr)
	set := c.cfg.Mapper.Index(line)
	ways := c.sets[set]

	// Shadow/compulsory bookkeeping happens on every access so the 3C
	// split stays consistent even across hits.
	var shadowHit, firstRef bool
	if c.shadow != nil {
		firstRef = !c.seen[line]
		c.seen[line] = true
		shadowHit = c.shadow.touch(line)
	}

	for i := range ways {
		if ways[i].valid && ways[i].line == line {
			ways[i].lastUse = c.clock
			if a.Write && c.cfg.WriteBack {
				ways[i].dirty = true
			}
			c.stats.Hits++
			return Result{Hit: true, Set: set, Way: i}
		}
	}

	// Miss: classify, then fill.
	c.stats.Misses++
	res := Result{Set: set}
	if c.shadow != nil {
		switch {
		case firstRef:
			res.Kind = MissCompulsory
			c.stats.Compulsory++
		case shadowHit:
			res.Kind = MissConflict
			c.stats.Conflict++
			if evictor, ok := c.evictedBy[line]; ok && a.Stream != StreamNone && evictor != StreamNone {
				if evictor == a.Stream {
					res.SelfInterference = true
					c.stats.SelfInterference++
				} else {
					res.CrossInterference = true
					c.stats.CrossInterference++
				}
			}
		default:
			res.Kind = MissCapacity
			c.stats.Capacity++
		}
	}

	victim := c.pickVictim(ways)
	if ways[victim].valid {
		res.Evicted = true
		res.EvictedLine = ways[victim].line
		c.stats.Evictions++
		if ways[victim].prefetched {
			c.prefetchWasted++
		}
		if ways[victim].dirty {
			c.stats.Writebacks++
			c.stats.MemoryWrites++
		}
		if c.evictedBy != nil {
			c.evictedBy[ways[victim].line] = a.Stream
		}
	}
	ways[victim] = way{valid: true, line: line, stream: a.Stream, lastUse: c.clock, filled: c.clock,
		dirty: a.Write && c.cfg.WriteBack}
	res.Way = victim
	return res
}

func (c *Cache) pickVictim(ways []way) int {
	for i := range ways {
		if !ways[i].valid {
			return i
		}
	}
	switch c.cfg.Policy {
	case FIFO:
		oldest := 0
		for i := 1; i < len(ways); i++ {
			if ways[i].filled < ways[oldest].filled {
				oldest = i
			}
		}
		return oldest
	case Random:
		return c.rng.Intn(len(ways))
	default: // LRU
		lru := 0
		for i := 1; i < len(ways); i++ {
			if ways[i].lastUse < ways[lru].lastUse {
				lru = i
			}
		}
		return lru
	}
}

// Describe returns a short human-readable description of the organisation.
func (c *Cache) Describe() string {
	return fmt.Sprintf("%s-mapped %d sets × %d ways × %dB lines (%s)",
		c.cfg.Mapper.Name(), c.cfg.Mapper.Sets(), c.cfg.Ways, c.cfg.LineBytes, c.cfg.Policy)
}
