package experiments

import (
	"strings"
	"testing"
)

const demoCfg = `{
  "name": "demo sweep",
  "banks": 64, "tm": 32,
  "b": 4096, "r": 0, "pds": 0.25, "p1": 0.25,
  "n": 1048576,
  "sweep": "tm", "from": 8, "to": 32, "step": 8,
  "models": ["mm", "direct", "prime", "assoc4"]
}`

func TestParseSweepConfig(t *testing.T) {
	cfg, err := ParseSweepConfig(strings.NewReader(demoCfg))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "demo sweep" || cfg.Sweep != "tm" || len(cfg.Models) != 4 {
		t.Errorf("config = %+v", cfg)
	}
}

func TestParseSweepConfigErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"name":"x","sweep":"zz","from":1,"to":2,"step":1,"models":["mm"],"n":10,"banks":64,"tm":8,"b":64}`,
		`{"name":"x","sweep":"tm","from":2,"to":1,"step":1,"models":["mm"],"n":10,"banks":64,"tm":8,"b":64}`,
		`{"name":"x","sweep":"tm","from":1,"to":2,"step":1,"models":[],"n":10,"banks":64,"tm":8,"b":64}`,
		`{"name":"x","sweep":"tm","from":1,"to":2,"step":1,"models":["bogus"],"n":10,"banks":64,"tm":8,"b":64}`,
		`{"name":"","sweep":"tm","from":1,"to":2,"step":1,"models":["mm"],"n":10,"banks":64,"tm":8,"b":64}`,
		`{"name":"x","sweep":"tm","from":1,"to":2,"step":1,"models":["mm"],"n":0,"banks":64,"tm":8,"b":64}`,
		`{"name":"x","sweep":"tm","from":0,"to":100000,"step":0.001,"models":["mm"],"n":10,"banks":64,"tm":8,"b":64}`,
		`{"name":"x","unknown_field":1}`,
	}
	for i, in := range bad {
		if _, err := ParseSweepConfig(strings.NewReader(in)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunSweep(t *testing.T) {
	cfg, err := ParseSweepConfig(strings.NewReader(demoCfg))
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 4 { // 8,16,24,32
			t.Errorf("%s: points = %d, want 4", s.Name, len(s.X))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Errorf("%s: non-positive CPR", s.Name)
			}
		}
	}
	// Ordering at t_m = 32 (last point): prime < direct.
	last := len(fig.Series[0].X) - 1
	var direct, prime float64
	for _, s := range fig.Series {
		switch s.Name {
		case "direct":
			direct = s.Y[last]
		case "prime":
			prime = s.Y[last]
		}
	}
	if prime >= direct {
		t.Errorf("prime %v not below direct %v", prime, direct)
	}
}

func TestRunSweepInvalidPoint(t *testing.T) {
	cfg, _ := ParseSweepConfig(strings.NewReader(demoCfg))
	cfg.Sweep = "b"
	cfg.From, cfg.To, cfg.Step = 0, 10, 10 // B = 0 invalid
	if _, err := RunSweep(cfg); err == nil {
		t.Error("invalid sweep point accepted")
	}
}

func TestWriteReport(t *testing.T) {
	var sb strings.Builder
	if err := WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Reproduction report", "Figure 7", "Figure 12",
		"sub-block", "prefetching", "Headline summary", "direct/prime",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 5000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}
