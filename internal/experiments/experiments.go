// Package experiments regenerates every figure of the paper's evaluation
// (Figures 4–11, the FFT figure the paper also labels 11 — indexed here as
// Figure 12 — plus the §4 sub-block demonstration and an analytic-versus-
// simulation cross-check). Each Figure function returns the plotted series
// so cmd/figures, the benchmark harness, and the shape tests all consume
// the same data.
//
// Shared parameters, following §3.4: MVL = 64, T_start = 30 + t_m,
// P_stride1 = 0.25, direct cache 2^13 = 8192 one-word lines, prime cache
// 2^13 − 1 = 8191 lines. The paper does not state its double-stream
// probability; P_ds = 0.25 reproduces Figure 7's headline ratios (see
// EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"math"

	"primecache/internal/core"
	"primecache/internal/report"
	"primecache/internal/vcm"
	"primecache/internal/vproc"
)

// CacheExp is the paper's cache-size exponent: 8 K-word direct cache,
// 8191-line prime cache.
const CacheExp = 13

// ProblemSize is the total data size N used by the sweeps.
const ProblemSize = 1 << 20

// Series is one plotted curve.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is one reproduced figure: a set of series over a shared sweep.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Table renders the figure as a table with one column per series.
func (f Figure) Table() *report.Table {
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, f.XLabel)
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := report.New(fmt.Sprintf("%s: %s  [%s]", f.ID, f.Title, f.YLabel), cols...)
	if len(f.Series) == 0 {
		return t
	}
	for i := range f.Series[0].X {
		row := make([]interface{}, 0, len(cols))
		row = append(row, f.Series[0].X[i])
		for _, s := range f.Series {
			row = append(row, s.Y[i])
		}
		t.MustAddRow(row...)
	}
	return t
}

// tmSweep is the memory-access-time axis used by Figures 4 and 7.
var tmSweep = []float64{4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64}

// Figure4 sweeps memory access time at M = 32 banks for the MM-model and
// the direct-mapped CC-model at blocking factors 2K and 4K (R = B): the
// cache only pays off once the processor–memory gap is large enough, and
// the crossover moves with the blocking factor.
func Figure4() Figure {
	f := Figure{
		ID:     "Figure 4",
		Title:  "cycles per result vs memory access time (M=32, direct-mapped cache)",
		XLabel: "t_m (cycles)",
		YLabel: "clock cycles per result",
	}
	geom := vcm.DirectGeom(CacheExp)
	mm2 := Series{Name: "MM B=2K"}
	cc2 := Series{Name: "CC-direct B=2K"}
	mm4 := Series{Name: "MM B=4K"}
	cc4 := Series{Name: "CC-direct B=4K"}
	for _, tm := range tmSweep {
		m := vcm.DefaultMachine(32, int(tm))
		for _, p := range []struct {
			b      int
			mm, cc *Series
		}{{2048, &mm2, &cc2}, {4096, &mm4, &cc4}} {
			v := vcm.DefaultVCM(p.b)
			p.mm.X = append(p.mm.X, tm)
			p.mm.Y = append(p.mm.Y, vcm.CyclesPerResultMM(m, v, ProblemSize))
			p.cc.X = append(p.cc.X, tm)
			p.cc.Y = append(p.cc.Y, vcm.CyclesPerResultCC(geom, m, v, ProblemSize))
		}
	}
	f.Series = []Series{mm2, cc2, mm4, cc4}
	return f
}

// Figure5 sweeps the reuse factor at B = 1K, M = 32, for t_m ∈ {8, 16}:
// the two machines tie at R = 1 and the cache wins for every R > 1 with
// diminishing returns.
func Figure5() Figure {
	f := Figure{
		ID:     "Figure 5",
		Title:  "cycles per result vs reuse factor (M=32, B=1K)",
		XLabel: "reuse factor R",
		YLabel: "clock cycles per result",
	}
	geom := vcm.DirectGeom(CacheExp)
	sweep := []float64{1, 2, 4, 8, 16, 32, 64}
	for _, tm := range []int{8, 16} {
		m := vcm.DefaultMachine(32, tm)
		mm := Series{Name: fmt.Sprintf("MM tm=%d", tm)}
		cc := Series{Name: fmt.Sprintf("CC-direct tm=%d", tm)}
		for _, r := range sweep {
			v := vcm.DefaultVCM(1024)
			v.R = int(r)
			mm.X = append(mm.X, r)
			mm.Y = append(mm.Y, vcm.CyclesPerResultMM(m, v, ProblemSize))
			cc.X = append(cc.X, r)
			cc.Y = append(cc.Y, vcm.CyclesPerResultCC(geom, m, v, ProblemSize))
		}
		f.Series = append(f.Series, mm, cc)
	}
	return f
}

// blockSweep is the blocking-factor axis used by Figures 6 and 8.
var blockSweep = []float64{256, 512, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192}

// Figure6 sweeps the blocking factor at M = 32 for t_m ∈ {16, 32}
// (direct-mapped CC vs MM): beyond a few K the direct-mapped cache
// degrades past the cacheless machine.
func Figure6() Figure {
	f := Figure{
		ID:     "Figure 6",
		Title:  "cycles per result vs blocking factor (M=32, direct-mapped cache)",
		XLabel: "blocking factor B",
		YLabel: "clock cycles per result",
	}
	geom := vcm.DirectGeom(CacheExp)
	for _, tm := range []int{16, 32} {
		m := vcm.DefaultMachine(32, tm)
		mm := Series{Name: fmt.Sprintf("MM tm=%d", tm)}
		cc := Series{Name: fmt.Sprintf("CC-direct tm=%d", tm)}
		for _, b := range blockSweep {
			v := vcm.DefaultVCM(int(b))
			mm.X = append(mm.X, b)
			mm.Y = append(mm.Y, vcm.CyclesPerResultMM(m, v, ProblemSize))
			cc.X = append(cc.X, b)
			cc.Y = append(cc.Y, vcm.CyclesPerResultCC(geom, m, v, ProblemSize))
		}
		f.Series = append(f.Series, mm, cc)
	}
	return f
}

// Figure7 is the headline comparison: M = 64 banks, B = 4K, R = B; MM vs
// direct-mapped vs prime-mapped CC as the memory access time grows to
// t_m = M.
func Figure7() Figure {
	f := Figure{
		ID:     "Figure 7",
		Title:  "cycles per result vs memory access time (M=64, B=4K, random strides)",
		XLabel: "t_m (cycles)",
		YLabel: "clock cycles per result",
	}
	dg, pg := vcm.DirectGeom(CacheExp), vcm.PrimeGeom(CacheExp)
	mm := Series{Name: "MM"}
	dir := Series{Name: "CC-direct"}
	prm := Series{Name: "CC-prime"}
	for _, tm := range tmSweep {
		m := vcm.DefaultMachine(64, int(tm))
		v := vcm.DefaultVCM(4096)
		mm.X, mm.Y = append(mm.X, tm), append(mm.Y, vcm.CyclesPerResultMM(m, v, ProblemSize))
		dir.X, dir.Y = append(dir.X, tm), append(dir.Y, vcm.CyclesPerResultCC(dg, m, v, ProblemSize))
		prm.X, prm.Y = append(prm.X, tm), append(prm.Y, vcm.CyclesPerResultCC(pg, m, v, ProblemSize))
	}
	f.Series = []Series{mm, dir, prm}
	return f
}

// Figure8 sweeps the blocking factor with t_m = M/2 = 32 for the three
// machines: the direct-mapped cache crosses above the MM-model near
// B ≈ 3K; the prime-mapped curve stays flat.
func Figure8() Figure {
	f := Figure{
		ID:     "Figure 8",
		Title:  "cycles per result vs blocking factor (M=64, tm=32)",
		XLabel: "blocking factor B",
		YLabel: "clock cycles per result",
	}
	m := vcm.DefaultMachine(64, 32)
	dg, pg := vcm.DirectGeom(CacheExp), vcm.PrimeGeom(CacheExp)
	mm := Series{Name: "MM"}
	dir := Series{Name: "CC-direct"}
	prm := Series{Name: "CC-prime"}
	for _, b := range blockSweep {
		v := vcm.DefaultVCM(int(b))
		mm.X, mm.Y = append(mm.X, b), append(mm.Y, vcm.CyclesPerResultMM(m, v, ProblemSize))
		dir.X, dir.Y = append(dir.X, b), append(dir.Y, vcm.CyclesPerResultCC(dg, m, v, ProblemSize))
		prm.X, prm.Y = append(prm.X, b), append(prm.Y, vcm.CyclesPerResultCC(pg, m, v, ProblemSize))
	}
	f.Series = []Series{mm, dir, prm}
	return f
}

// Figure9 sweeps the unit-stride probability P_stride1: the mappings
// converge as P1 → 1.
func Figure9() Figure {
	f := Figure{
		ID:     "Figure 9",
		Title:  "cycles per result vs P_stride1 (M=64, tm=32, B=4K)",
		XLabel: "P_stride1",
		YLabel: "clock cycles per result",
	}
	m := vcm.DefaultMachine(64, 32)
	dg, pg := vcm.DirectGeom(CacheExp), vcm.PrimeGeom(CacheExp)
	dir := Series{Name: "CC-direct"}
	prm := Series{Name: "CC-prime"}
	for p1 := 0.0; p1 <= 1.0001; p1 += 0.125 {
		v := vcm.DefaultVCM(4096)
		v.P1S1, v.P1S2 = p1, p1
		dir.X, dir.Y = append(dir.X, p1), append(dir.Y, vcm.CyclesPerResultCC(dg, m, v, ProblemSize))
		prm.X, prm.Y = append(prm.X, p1), append(prm.Y, vcm.CyclesPerResultCC(pg, m, v, ProblemSize))
	}
	f.Series = []Series{dir, prm}
	return f
}

// Figure10 sweeps the double-stream fraction P_ds for the three machines:
// cross-interference grows with P_ds, and the prime mapping stays at or
// below the direct mapping throughout (40%–2× in the paper).
func Figure10() Figure {
	f := Figure{
		ID:     "Figure 10",
		Title:  "cycles per result vs double-stream fraction (M=64, tm=32, B=4K)",
		XLabel: "P_ds",
		YLabel: "clock cycles per result",
	}
	m := vcm.DefaultMachine(64, 32)
	dg, pg := vcm.DirectGeom(CacheExp), vcm.PrimeGeom(CacheExp)
	mm := Series{Name: "MM"}
	dir := Series{Name: "CC-direct"}
	prm := Series{Name: "CC-prime"}
	for pds := 0.0; pds <= 1.0001; pds += 0.125 {
		v := vcm.DefaultVCM(4096)
		v.Pds = pds
		mm.X, mm.Y = append(mm.X, pds), append(mm.Y, vcm.CyclesPerResultMM(m, v, ProblemSize))
		dir.X, dir.Y = append(dir.X, pds), append(dir.Y, vcm.CyclesPerResultCC(dg, m, v, ProblemSize))
		prm.X, prm.Y = append(prm.X, pds), append(prm.Y, vcm.CyclesPerResultCC(pg, m, v, ProblemSize))
	}
	f.Series = []Series{mm, dir, prm}
	return f
}

// Figure11 models matrix row/column access: stream 1 is always unit
// stride with probability 1−fRow of a column access (stride 1) and fRow of
// a row access (random stride mod the cache). The direct-mapped cache
// degrades as rows dominate; the prime-mapped cache is insensitive.
func Figure11() Figure {
	f := Figure{
		ID:     "Figure 11",
		Title:  "row/column accesses of a random-sized matrix (M=64, tm=32, B=4K)",
		XLabel: "fraction of row accesses",
		YLabel: "clock cycles per result",
	}
	m := vcm.DefaultMachine(64, 32)
	dg, pg := vcm.DirectGeom(CacheExp), vcm.PrimeGeom(CacheExp)
	dir := Series{Name: "CC-direct"}
	prm := Series{Name: "CC-prime"}
	for fr := 0.0; fr <= 1.0001; fr += 0.125 {
		v := vcm.DefaultVCM(4096)
		// A column access has stride 1; a row access of a random-sized
		// matrix has an effectively random stride.
		v.P1S1, v.P1S2 = 1-fr, 1-fr
		dir.X, dir.Y = append(dir.X, fr), append(dir.Y, vcm.CyclesPerResultCC(dg, m, v, ProblemSize))
		prm.X, prm.Y = append(prm.X, fr), append(prm.Y, vcm.CyclesPerResultCC(pg, m, v, ProblemSize))
	}
	f.Series = []Series{dir, prm}
	return f
}

// Figure12 is the paper's FFT figure (its second "Figure 11"): cycles per
// point of the two-pass blocked FFT versus the blocking factor B2, for
// both mappings, N = 2^20. Both dimensions stay within the cache, per the
// algorithm's assumption.
func Figure12() Figure {
	f := Figure{
		ID:     "Figure 12",
		Title:  "blocked FFT cycles per point vs B2 (N=2^20, M=64, tm=32)",
		XLabel: "B2",
		YLabel: "clock cycles per point",
	}
	m := vcm.DefaultMachine(64, 32)
	dg, pg := vcm.DirectGeom(CacheExp), vcm.PrimeGeom(CacheExp)
	dir := Series{Name: "CC-direct"}
	prm := Series{Name: "CC-prime"}
	for b2 := 256; b2 <= 4096; b2 *= 2 {
		plan := vcm.FFTPlan{N: ProblemSize, B1: ProblemSize / b2, B2: b2}
		dir.X, dir.Y = append(dir.X, float64(b2)), append(dir.Y, vcm.FFTCyclesPerPoint(dg, m, plan))
		prm.X, prm.Y = append(prm.X, float64(b2)), append(prm.Y, vcm.FFTCyclesPerPoint(pg, m, plan))
	}
	f.Series = []Series{dir, prm}
	return f
}

// SubblockTable reproduces the §4 sub-block claims by direct simulation:
// for arbitrary leading dimensions P, the paper's maximal conflict-free
// block (b1, b2) loads into the prime-mapped cache with zero conflict
// misses at utilisation ≈ 1, while a direct-mapped cache of 8192 lines
// conflicts for power-of-two-unfriendly P.
func SubblockTable() *report.Table {
	t := report.New("§4 sub-block accesses: maximal conflict-free blocks (C = 8191)",
		"P", "b1", "b2", "utilization", "prime conflicts", "prime 2nd-pass hit%", "direct conflicts")
	for _, p := range []int{1000, 4097, 8000, 8192, 10000, 12345, 16382, 65536} {
		b1, b2, err := vcm.MaxConflictFreeBlock(1<<CacheExp-1, p)
		if err != nil {
			t.MustAddRow(p, "-", "-", "-", "degenerate", "-", "-")
			continue
		}
		prime, _ := core.NewPrime(CacheExp)
		direct, _ := core.NewDirect(1 << CacheExp)
		for pass := 0; pass < 2; pass++ {
			prime.LoadSubblock(0, p, b1, b2, 1)
			direct.LoadSubblock(0, p, b1, b2, 1)
		}
		ps, ds := prime.Stats(), direct.Stats()
		secondPassHit := 100 * float64(ps.Hits) / float64(b1*b2)
		t.MustAddRow(p, b1, b2, vcm.SubblockUtilization(1<<CacheExp-1, b1, b2),
			ps.Conflict, secondPassHit, ds.Conflict)
	}
	return t
}

// CrossCheck compares the analytic model against the cycle-approximate
// simulator (package vproc) on the single-stream workload, where both
// rest on the same gcd arithmetic: one row per t_m and machine.
func CrossCheck() *report.Table {
	t := report.New("analytic model vs event simulation (M=64, B=4K, single stream)",
		"t_m", "machine", "analytic c/r", "simulated c/r", "ratio")
	work := vcm.VCM{B: 4096, R: 16, Pds: 0, P1S1: 0.25, P1S2: 0.25}
	const n = 1 << 16
	for _, tm := range []int{8, 16, 32} {
		mach := vcm.DefaultMachine(64, tm)
		dg, pg := vcm.DirectGeom(CacheExp), vcm.PrimeGeom(CacheExp)
		rows := []struct {
			name string
			ana  float64
			geom *vcm.CacheGeom
		}{
			{"MM", vcm.CyclesPerResultMM(mach, work, n), nil},
			{"CC-direct", vcm.CyclesPerResultCC(dg, mach, work, n), &dg},
			{"CC-prime", vcm.CyclesPerResultCC(pg, mach, work, n), &pg},
		}
		for _, r := range rows {
			res, err := vproc.Run(vproc.Config{Mach: mach, Work: work, Geom: r.geom, Seed: 11}, n)
			if err != nil {
				panic(err) // configs are fixed and valid
			}
			sim := res.CyclesPerResult()
			t.MustAddRow(tm, r.name, r.ana, sim, sim/r.ana)
		}
	}
	return t
}

// All returns every reproduced figure, in paper order.
func All() []Figure {
	return []Figure{
		Figure4(), Figure5(), Figure6(), Figure7(), Figure8(),
		Figure9(), Figure10(), Figure11(), Figure12(),
	}
}

// Summary computes the headline numbers quoted in EXPERIMENTS.md from the
// figure data: the Figure 7 speedups at t_m = 64 and the Figure 12 FFT
// improvement factor.
func Summary() *report.Table {
	t := report.New("headline reproduction numbers", "quantity", "paper", "measured")
	f7 := Figure7()
	last := len(f7.Series[0].Y) - 1
	mm, dir, prm := f7.Series[0].Y[last], f7.Series[1].Y[last], f7.Series[2].Y[last]
	t.MustAddRow("Fig 7 direct/prime speedup at t_m=M=64", "≈3x", ratio(dir, prm))
	t.MustAddRow("Fig 7 MM/prime speedup at t_m=M=64", "≈5x", ratio(mm, prm))
	f12 := Figure12()
	var worst float64 = math.Inf(1)
	var best float64
	for i := range f12.Series[0].Y {
		r := f12.Series[0].Y[i] / f12.Series[1].Y[i]
		if r < worst {
			worst = r
		}
		if r > best {
			best = r
		}
	}
	t.MustAddRow("Fig 12 FFT direct/prime improvement", ">2x for all B2", fmt.Sprintf("%.2fx–%.2fx", worst, best))
	return t
}

func ratio(a, b float64) string { return fmt.Sprintf("%.2fx", a/b) }
