package experiments

import "testing"

func TestKernelTable(t *testing.T) {
	tab := KernelTable()
	if tab.Rows() != 7 {
		t.Fatalf("rows = %d, want 7", tab.Rows())
	}
	// Column order: kernel, direct, 4-way, skewed, victim, stride-pf, prime.
	for r := 0; r < tab.Rows(); r++ {
		direct := cellFloat(t, tab.Cell(r, 1))
		prime := cellFloat(t, tab.Cell(r, 6))
		if prime > direct+1e-9 {
			t.Errorf("%s: prime miss%% %v above direct %v", tab.Cell(r, 0), prime, direct)
		}
	}
	// The power-of-two-layout kernels show a real gap.
	for _, r := range []int{0, 1, 3, 4} { // saxpy, matmul, fft, transpose (power-of-two layouts)
		direct := cellFloat(t, tab.Cell(r, 1))
		prime := cellFloat(t, tab.Cell(r, 6))
		if direct < 1.2*prime {
			t.Errorf("%s: direct %v not well above prime %v", tab.Cell(r, 0), direct, prime)
		}
	}
}

func TestKernelConflictTable(t *testing.T) {
	tab := KernelConflictTable()
	if tab.Rows() != 7 {
		t.Fatalf("rows = %d, want 7", tab.Rows())
	}
	var primeTotal, directTotal uint64
	for r := 0; r < tab.Rows(); r++ {
		directTotal += cellUint(t, tab.Cell(r, 1))
		primeTotal += cellUint(t, tab.Cell(r, 6))
	}
	if directTotal == 0 {
		t.Error("direct cache recorded no conflicts across the suite")
	}
	// The prime cache keeps cross-stream footprint overlaps (its own
	// I_c^C) but sheds the mapping conflicts: ≥ 5× fewer overall.
	if primeTotal*5 > directTotal {
		t.Errorf("prime conflicts %d not ≪ direct %d", primeTotal, directTotal)
	}
}
