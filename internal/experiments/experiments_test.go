package experiments

import (
	"math"
	"strings"
	"testing"

	"primecache/internal/stats"
)

func seriesByName(t *testing.T, f Figure, name string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("%s: no series %q", f.ID, name)
	return Series{}
}

func TestAllFiguresWellFormed(t *testing.T) {
	for _, f := range All() {
		if f.ID == "" || len(f.Series) == 0 {
			t.Fatalf("malformed figure %+v", f.ID)
		}
		n := len(f.Series[0].X)
		for _, s := range f.Series {
			if len(s.X) != n || len(s.Y) != n {
				t.Errorf("%s/%s: ragged series (%d,%d) vs %d", f.ID, s.Name, len(s.X), len(s.Y), n)
			}
			for i, y := range s.Y {
				if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
					t.Errorf("%s/%s[%d]: non-positive or non-finite %v", f.ID, s.Name, i, y)
				}
			}
		}
		tab := f.Table()
		if tab.Rows() != n {
			t.Errorf("%s: table has %d rows, want %d", f.ID, tab.Rows(), n)
		}
	}
}

// TestFigure4Crossover: the direct-mapped cache must overtake the MM-model
// somewhere in the sweep, and earlier (smaller t_m) for B = 2K than for
// B = 4K — the paper reports ≈7 and ≈20 cycles.
func TestFigure4Crossover(t *testing.T) {
	f := Figure4()
	mm2 := seriesByName(t, f, "MM B=2K")
	cc2 := seriesByName(t, f, "CC-direct B=2K")
	mm4 := seriesByName(t, f, "MM B=4K")
	cc4 := seriesByName(t, f, "CC-direct B=4K")
	// Crossover where MM rises above CC.
	x2 := stats.Crossover(mm2.X, mm2.Y, cc2.Y)
	x4 := stats.Crossover(mm4.X, mm4.Y, cc4.Y)
	if math.IsNaN(x2) || math.IsNaN(x4) {
		t.Fatalf("no crossover: B=2K %v, B=4K %v", x2, x4)
	}
	if !(x2 < x4) {
		t.Errorf("B=2K crossover (%v) should precede B=4K (%v)", x2, x4)
	}
	if x2 < 4 || x2 > 16 {
		t.Errorf("B=2K crossover at t_m=%v; paper reports ≈7", x2)
	}
	if x4 < 10 || x4 > 28 {
		t.Errorf("B=4K crossover at t_m=%v; paper reports ≈20", x4)
	}
}

// TestFigure5ReuseShape: equality at R = 1, CC wins beyond, flattening out.
func TestFigure5ReuseShape(t *testing.T) {
	f := Figure5()
	for _, tm := range []string{"8", "16"} {
		mm := seriesByName(t, f, "MM tm="+tm)
		cc := seriesByName(t, f, "CC-direct tm="+tm)
		if d := math.Abs(mm.Y[0]-cc.Y[0]) / mm.Y[0]; d > 1e-9 {
			t.Errorf("tm=%s: R=1 values differ by %v", tm, d)
		}
		for i := 1; i < len(cc.Y); i++ {
			if cc.Y[i] >= mm.Y[i] {
				t.Errorf("tm=%s R=%v: CC %v not below MM %v", tm, cc.X[i], cc.Y[i], mm.Y[i])
			}
			if cc.Y[i] >= cc.Y[i-1] {
				t.Errorf("tm=%s: CC curve not monotonically improving at R=%v", tm, cc.X[i])
			}
		}
		// Diminishing returns: the last doubling buys <10% improvement.
		n := len(cc.Y)
		if gain := cc.Y[n-2]/cc.Y[n-1] - 1; gain > 0.10 {
			t.Errorf("tm=%s: reuse curve still improving %v%% at the end", tm, 100*gain)
		}
	}
}

// TestFigure6BlockingLimit: at t_m = 32 the direct CC curve crosses above
// MM within the sweep; the paper puts the t_m = 32 crossover near B ≈ 5K.
func TestFigure6BlockingLimit(t *testing.T) {
	f := Figure6()
	mm := seriesByName(t, f, "MM tm=32")
	cc := seriesByName(t, f, "CC-direct tm=32")
	x := stats.Crossover(cc.X, cc.Y, mm.Y)
	if math.IsNaN(x) {
		t.Fatal("direct CC never crossed MM at tm=32")
	}
	if x < 2048 || x > 8192 {
		t.Errorf("crossover at B=%v; paper reports ≈5K", x)
	}
}

// TestFigure7Headline: prime lowest everywhere; ≈3× over direct and ≈5×
// over MM at t_m = 64; prime curve nearly flat.
func TestFigure7Headline(t *testing.T) {
	f := Figure7()
	mm := seriesByName(t, f, "MM")
	dir := seriesByName(t, f, "CC-direct")
	prm := seriesByName(t, f, "CC-prime")
	for i := range prm.Y {
		if prm.Y[i] > dir.Y[i] || prm.Y[i] > mm.Y[i] {
			t.Errorf("t_m=%v: prime %v not lowest (direct %v, mm %v)", prm.X[i], prm.Y[i], dir.Y[i], mm.Y[i])
		}
	}
	last := len(prm.Y) - 1
	if r := dir.Y[last] / prm.Y[last]; r < 2 || r > 5 {
		t.Errorf("direct/prime at t_m=64 = %vx; paper ≈3x", r)
	}
	if r := mm.Y[last] / prm.Y[last]; r < 3.5 || r > 7 {
		t.Errorf("mm/prime at t_m=64 = %vx; paper ≈5x", r)
	}
	spread, err := stats.Spread(prm.Y)
	if err != nil {
		t.Fatal(err)
	}
	if spread > 2.2 {
		t.Errorf("prime curve spread %vx; paper shows little change with t_m", spread)
	}
}

// TestFigure8Shape: direct crosses MM around B ≈ 3K; prime flat and lowest.
func TestFigure8Shape(t *testing.T) {
	f := Figure8()
	mm := seriesByName(t, f, "MM")
	dir := seriesByName(t, f, "CC-direct")
	prm := seriesByName(t, f, "CC-prime")
	x := stats.Crossover(dir.X, dir.Y, mm.Y)
	if math.IsNaN(x) {
		t.Fatal("direct never crossed MM")
	}
	if x < 1024 || x > 6144 {
		t.Errorf("crossover at B=%v; paper reports ≈3K", x)
	}
	// "Remains flat" is relative: with P_ds > 0 the footprint
	// cross-interference grows with B even for the prime mapping (the
	// paper's own I_c^C), but far more slowly than the direct curve.
	primeSpread, _ := stats.Spread(prm.Y)
	directSpread, _ := stats.Spread(dir.Y)
	if primeSpread > directSpread/2 {
		t.Errorf("prime spread %vx not ≪ direct spread %vx", primeSpread, directSpread)
	}
	if primeSpread > 2.5 {
		t.Errorf("prime spread over blocking factors = %vx, want nearly flat", primeSpread)
	}
	for i := range prm.Y {
		if prm.Y[i] > dir.Y[i] || prm.Y[i] > mm.Y[i] {
			t.Errorf("B=%v: prime not lowest", prm.X[i])
		}
	}
}

// TestFigure9Convergence: prime strictly better for P1 < 1, within 1% at
// P1 = 1.
func TestFigure9Convergence(t *testing.T) {
	f := Figure9()
	dir := seriesByName(t, f, "CC-direct")
	prm := seriesByName(t, f, "CC-prime")
	n := len(dir.Y)
	for i := 0; i < n-1; i++ {
		if prm.Y[i] >= dir.Y[i] {
			t.Errorf("P1=%v: prime %v ≥ direct %v", dir.X[i], prm.Y[i], dir.Y[i])
		}
	}
	if d := math.Abs(dir.Y[n-1]-prm.Y[n-1]) / dir.Y[n-1]; d > 0.01 {
		t.Errorf("P1=1: curves differ by %v%%", 100*d)
	}
	// The gap should shrink as P1 grows.
	if gap0, gapEnd := dir.Y[0]-prm.Y[0], dir.Y[n-2]-prm.Y[n-2]; gapEnd >= gap0 {
		t.Errorf("gap did not shrink: %v → %v", gap0, gapEnd)
	}
}

// TestFigure10Range: prime ≤ direct for every P_ds, with the advantage in
// the paper's 40%–2× band somewhere in the sweep.
func TestFigure10Range(t *testing.T) {
	f := Figure10()
	dir := seriesByName(t, f, "CC-direct")
	prm := seriesByName(t, f, "CC-prime")
	var bestAdvantage float64
	for i := range dir.Y {
		if prm.Y[i] > dir.Y[i]+1e-9 {
			t.Errorf("Pds=%v: prime above direct", dir.X[i])
		}
		if r := dir.Y[i] / prm.Y[i]; r > bestAdvantage {
			bestAdvantage = r
		}
	}
	if bestAdvantage < 1.4 {
		t.Errorf("peak prime advantage %vx; paper reports 40%%–2x", bestAdvantage)
	}
}

// TestFigure11RowColumn: direct degrades with the row fraction; prime stays
// flat and below.
func TestFigure11RowColumn(t *testing.T) {
	f := Figure11()
	dir := seriesByName(t, f, "CC-direct")
	prm := seriesByName(t, f, "CC-prime")
	for i := 1; i < len(dir.Y); i++ {
		if dir.Y[i] < dir.Y[i-1] {
			t.Errorf("direct curve not increasing at fRow=%v", dir.X[i])
		}
	}
	spread, _ := stats.Spread(prm.Y)
	if spread > 1.3 {
		t.Errorf("prime spread %vx; paper: same performance in both cases", spread)
	}
	last := len(dir.Y) - 1
	if dir.Y[last] < 1.5*prm.Y[last] {
		t.Errorf("row-dominated: direct %v not well above prime %v", dir.Y[last], prm.Y[last])
	}
}

// TestFigure12FFT: prime beats direct by >2× for every B2, per the paper.
func TestFigure12FFT(t *testing.T) {
	f := Figure12()
	dir := seriesByName(t, f, "CC-direct")
	prm := seriesByName(t, f, "CC-prime")
	for i := range dir.Y {
		if r := dir.Y[i] / prm.Y[i]; r < 2 {
			t.Errorf("B2=%v: improvement %vx < 2x", dir.X[i], r)
		}
	}
}

func TestSubblockTable(t *testing.T) {
	tab := SubblockTable()
	if tab.Rows() != 8 {
		t.Fatalf("rows = %d, want 8", tab.Rows())
	}
	if !strings.Contains(tab.String(), "degenerate") {
		t.Error("P = 2·8191 should be reported degenerate")
	}
}

func TestSubblockTableConflictFree(t *testing.T) {
	tab := SubblockTable()
	for r := 0; r < tab.Rows(); r++ {
		if tab.Cell(r, 4) == "degenerate" {
			continue
		}
		if got := tab.Cell(r, 4); got != "0" {
			t.Errorf("P=%s: prime conflicts = %s, want 0", tab.Cell(r, 0), got)
		}
		if got := tab.Cell(r, 5); got != "100" {
			t.Errorf("P=%s: second-pass hit%% = %s, want 100", tab.Cell(r, 0), got)
		}
	}
}

func TestCrossCheckTable(t *testing.T) {
	tab := CrossCheck()
	if tab.Rows() != 9 {
		t.Fatalf("rows = %d, want 9", tab.Rows())
	}
}

func TestSummaryTable(t *testing.T) {
	tab := Summary()
	if tab.Rows() != 3 {
		t.Fatalf("rows = %d, want 3", tab.Rows())
	}
	if !strings.Contains(tab.String(), "x") {
		t.Error("summary missing ratio cells")
	}
}
