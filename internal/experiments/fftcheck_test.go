package experiments

import (
	"testing"

	"primecache/internal/cache"
	"primecache/internal/vcm"
	"primecache/internal/workloads"
)

// TestFFTModelAgainstTrace validates the §4 FFT interference model with
// the real four-step FFT kernel: the model predicts
// B1 − C/gcd(B2, C) self-interference misses per row FFT on the direct
// map and none on the prime map; the traced kernel (which re-touches each
// row log₂B1 times inside fftInPlace) must agree on which mapping
// conflicts and roughly on magnitude.
func TestFFTModelAgainstTrace(t *testing.T) {
	const b1, b2 = 128, 128 // N = 16384, predicted fold: 8192/128 = 64 lines/row
	predictedPerRow := b1 - (1<<CacheExp)/b2
	if predictedPerRow <= 0 {
		t.Fatal("test parameters do not predict conflicts")
	}

	run := func(mk func() (*cache.Cache, error)) cache.Stats {
		c, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, b1*b2)
		for i := range x {
			x[i] = complex(float64(i%11), 0)
		}
		if err := workloads.FFT2D(x, b1, b2, 0, c); err != nil {
			t.Fatal(err)
		}
		return c.Stats()
	}

	direct := run(func() (*cache.Cache, error) { return cache.NewDirect(1 << CacheExp) })
	prime := run(func() (*cache.Cache, error) { return cache.NewPrime(CacheExp) })

	if prime.Conflict != 0 {
		t.Errorf("prime FFT conflicts = %d, model predicts 0", prime.Conflict)
	}
	// The model's per-row count is a per-pass figure; the kernel touches
	// each row ~2·log2(B1) times (loads+stores per stage), so the traced
	// conflict count must be within [1×, 4·log2(B1)×] of B2 rows worth.
	lo := uint64(predictedPerRow) * b2
	hi := lo * 4 * 7 // log2(128) = 7
	if direct.Conflict < lo/2 || direct.Conflict > hi {
		t.Errorf("direct FFT conflicts = %d, model band [%d, %d]", direct.Conflict, lo/2, hi)
	}

	// Mapping-level agreement with the analytic fold: the row pattern
	// occupies exactly C/gcd(B2,C) sets on the direct map.
	dg := vcm.DirectGeom(CacheExp)
	if got := dg.LinesVisited(b2); got != 64 {
		t.Errorf("direct lines visited = %d, want 64", got)
	}
	pg := vcm.PrimeGeom(CacheExp)
	if got := pg.LinesVisited(b2); got != 8191 {
		t.Errorf("prime lines visited = %d, want 8191", got)
	}
}
