package experiments

import (
	"fmt"

	"primecache/internal/cache"
	"primecache/internal/core"
	"primecache/internal/membank"
	"primecache/internal/report"
	"primecache/internal/trace"
	"primecache/internal/vcm"
)

// ProblemSizeTable is the Lam-style problem-size sensitivity study the
// paper's §1/§2.1 cite: a fixed 16×16 sub-block of a matrix is loaded and
// re-used for a sweep of leading dimensions, counting conflict misses.
// Fixed blocking spikes on pathological dimensions for *both* mappings
// (the prime modulus has its own bad residues, near 0, ±1 and C/2); the
// §4 recipe — adapt (b1, b2) to the leading dimension — is available only
// for the prime mapping and is conflict-free for every non-degenerate
// dimension. That asymmetry, not fixed-block behaviour, is the paper's
// sub-block claim.
func ProblemSizeTable() *report.Table {
	t := report.New("problem-size sensitivity: 16×16 sub-block reuse across leading dimensions",
		"P", "direct fixed conflicts", "prime fixed conflicts", "prime adaptive block", "prime adaptive conflicts")
	sweep := []int{997, 1009, 1016, 1024, 1031, 4090, 4094, 4096, 4100, 8188, 8192, 8200}
	for _, p := range sweep {
		dirFixed := subblockConflicts(core.MustDirect(1<<CacheExp), p, 16, 16)
		prmFixed := subblockConflicts(core.MustPrime(CacheExp), p, 16, 16)

		adaptive := "degenerate"
		adaptiveConf := "-"
		if b1, b2, err := vcm.MaxConflictFreeBlock(1<<CacheExp-1, p); err == nil {
			// Keep the adaptive footprint moderate (≤ 4096 words) so the
			// comparison is about shape, not size.
			for b1*b2 > 4096 && b2 > 1 {
				b2--
			}
			adaptive = fmt.Sprintf("%dx%d", b1, b2)
			adaptiveConf = fmt.Sprintf("%d", subblockConflicts(core.MustPrime(CacheExp), p, b1, b2))
		}
		t.MustAddRow(p, dirFixed, prmFixed, adaptive, adaptiveConf)
	}
	return t
}

func subblockConflicts(v *core.VectorCache, p, b1, b2 int) uint64 {
	for pass := 0; pass < 2; pass++ {
		if _, err := v.LoadSubblock(0, p, b1, b2, 1); err != nil {
			panic(err) // inputs are fixed and valid
		}
	}
	return v.Stats().Conflict
}

// LineSizeTable reproduces the §2.2 discussion: with the cache capacity
// fixed in bytes (64 KB), larger lines exploit unit-stride spatial
// locality but are pure pollution for non-unit strides — and they shrink
// the line count, inviting more interference. Line size is the one cache
// parameter with no safe setting, the paper's motivation for fixing one
// word per line and attacking the mapping instead.
func LineSizeTable() *report.Table {
	t := report.New("line-size effects at fixed 64 KB capacity (direct-mapped)",
		"line bytes", "lines", "unit-stride miss%", "stride-8 miss%", "stride-8 pollution words/miss")
	const capacityBytes = 64 << 10
	const n = 8192 // words per sweep
	for _, lb := range []int{8, 16, 32, 64} {
		lines := capacityBytes / lb
		mk := func() *cache.Cache {
			m, err := cache.NewDirectMapper(lines)
			if err != nil {
				panic(err)
			}
			return cache.MustNew(cache.Config{Mapper: m, Ways: 1, LineBytes: lb})
		}
		unit := mk()
		for pass := 0; pass < 2; pass++ {
			trace.Replay(unit, trace.Strided(0, 1, n, 1))
		}
		strided := mk()
		for pass := 0; pass < 2; pass++ {
			trace.Replay(strided, trace.Strided(0, 8, n, 1))
		}
		us, ss := unit.Stats(), strided.Stats()
		wordsPerLine := lb / 8
		pollution := 0.0
		if ss.Misses > 0 {
			// Each stride-8 miss loads wordsPerLine words; one is used.
			pollution = float64(wordsPerLine - 1)
		}
		t.MustAddRow(lb, lines, 100*us.MissRatio(), 100*ss.MissRatio(), pollution)
	}
	return t
}

// PrefetchTable compares the Fu & Patel prefetching schemes (§2.2's prior
// art) against the prime mapping on strided sweeps: stride prefetching
// rescues the direct-mapped cache's constant-stride misses, but the
// prime-mapped cache reaches the same place with no prefetch hardware,
// no wasted memory traffic, and no pollution.
func PrefetchTable() *report.Table {
	t := report.New("prefetching vs prime mapping (8 K lines, 2 passes over 4 K elements)",
		"stride", "direct miss%", "direct+seq miss%", "direct+stride miss%", "stride-pf wasted", "prime miss%")
	const n = 4096
	for _, stride := range []int64{1, 7, 64, 512} {
		direct := runStrided(plainCache(), stride, n)
		seqC, seqP := prefetchCache(cache.PrefetchSequential)
		runStridedPF(seqP, stride, n)
		strC, strP := prefetchCache(cache.PrefetchStride)
		runStridedPF(strP, stride, n)
		prime := core.MustPrime(CacheExp)
		for pass := 0; pass < 2; pass++ {
			prime.LoadVector(0, stride, n, 1)
		}
		t.MustAddRow(stride,
			100*direct.MissRatio(),
			100*seqC.Stats().MissRatio(),
			100*strC.Stats().MissRatio(),
			strP.PrefetchStats().Wasted,
			100*prime.Stats().MissRatio())
	}
	return t
}

func plainCache() *cache.Cache {
	c, err := cache.NewDirect(1 << CacheExp)
	if err != nil {
		panic(err)
	}
	return c
}

func prefetchCache(kind cache.PrefetchKind) (*cache.Cache, *cache.PrefetchCache) {
	c := plainCache()
	p, err := cache.NewPrefetchCache(c, kind, 2)
	if err != nil {
		panic(err)
	}
	return c, p
}

func runStrided(c *cache.Cache, stride int64, n int) cache.Stats {
	for pass := 0; pass < 2; pass++ {
		trace.Replay(c, trace.Strided(0, stride, n, 1))
	}
	return c.Stats()
}

func runStridedPF(p *cache.PrefetchCache, stride int64, n int) {
	for pass := 0; pass < 2; pass++ {
		a := int64(0)
		for i := 0; i < n; i++ {
			p.Access(cache.Access{Addr: uint64(a) * 8, Stream: 1})
			a += stride
		}
	}
}

// PrimeMemoryTable contrasts the §2.3 lineage the paper cites: a prime
// number of memory *banks* (Budnik–Kuck, Burroughs BSP, Lawrie–Vora)
// versus conventional 2^m interleaving, measured by the event-driven bank
// simulator across stride classes. Prime banks fix the power-of-two
// strides but pay the modulo in the address path on every access — the
// cost the prime-mapped *cache* avoids via the Mersenne trick.
func PrimeMemoryTable() *report.Table {
	t := report.New("prime-banked memory vs 2^m interleaving (t_m = 16, 256-element loads, stalls/element)",
		"stride class", "64 banks", "61 banks (prime)")
	classes := []struct {
		name    string
		strides []int64
	}{
		{"unit", []int64{1}},
		{"odd 3..63", []int64{3, 5, 7, 9, 15, 21, 33, 63}},
		{"power-of-two 2..64", []int64{2, 4, 8, 16, 32, 64}},
		{"multiples of 61", []int64{61, 122}},
	}
	pow2 := membank.MustNew(64, 16)
	prime, err := membank.NewPrimeBanked(61, 16)
	if err != nil {
		panic(err)
	}
	const n = 256
	for _, cl := range classes {
		mean := func(s *membank.System) float64 {
			var total int64
			for _, st := range cl.strides {
				s.Reset()
				total += s.VectorLoad(0, st, n).StallCycles
			}
			return float64(total) / float64(len(cl.strides)) / n
		}
		t.MustAddRow(cl.name, mean(pow2), mean(prime))
	}
	return t
}

// AssociativityTable quantifies §2.1 ("Can associativity help?") two
// ways: the analytic average self-interference of a 4 K-element block
// across associativities, and a simulated strided-resweep conflict count.
// For the same capacity, raising the associativity shrinks the set count,
// so power-of-two strides reach exactly the same number of line frames —
// the marginal improvement the paper predicts — while the prime mapping
// removes the interference outright.
func AssociativityTable() *report.Table {
	t := report.New("§2.1 associativity study (8 K lines, B = 4 K, t_m = 32)",
		"organisation", "analytic I_s stalls", "simulated conflicts (stride-1024 resweep)")
	mach := vcm.DefaultMachine(64, 32)
	const b = 4096
	rows := []struct {
		name string
		geom vcm.CacheGeom
		mk   func() *core.VectorCache
	}{
		{"direct", vcm.DirectGeom(CacheExp), func() *core.VectorCache { return core.MustDirect(1 << CacheExp) }},
		{"2-way LRU", vcm.AssocGeom(CacheExp, 2), func() *core.VectorCache {
			v, err := core.NewSetAssoc(1<<CacheExp, 2, cache.LRU)
			if err != nil {
				panic(err)
			}
			return v
		}},
		{"4-way LRU", vcm.AssocGeom(CacheExp, 4), func() *core.VectorCache {
			v, err := core.NewSetAssoc(1<<CacheExp, 4, cache.LRU)
			if err != nil {
				panic(err)
			}
			return v
		}},
		{"8-way LRU", vcm.AssocGeom(CacheExp, 8), func() *core.VectorCache {
			v, err := core.NewSetAssoc(1<<CacheExp, 8, cache.LRU)
			if err != nil {
				panic(err)
			}
			return v
		}},
		{"prime", vcm.PrimeGeom(CacheExp), func() *core.VectorCache { return core.MustPrime(CacheExp) }},
	}
	for _, r := range rows {
		v := r.mk()
		for pass := 0; pass < 4; pass++ {
			if _, err := v.LoadVector(0, 1024, 2048, 1); err != nil {
				panic(err)
			}
		}
		t.MustAddRow(r.name, vcm.IsCExact(r.geom, mach, b, 0.25), v.Stats().Conflict)
	}
	return t
}

// MultiStreamTable reproduces Bailey's observation (cited in §1): a
// single unit-stride stream pipelines perfectly, but concurrent streams
// steal banks from each other, and the bank count needed to feed k
// streams grows far faster than k — the memory-side pressure that makes
// a cache attractive as the processor–memory gap widens.
func MultiStreamTable() *report.Table {
	t := report.New("multi-stream bank contention (unit-stride streams, 512 elements each, t_m = 32)",
		"streams", "64 banks: stalls/elem", "256 banks: stalls/elem", "1024 banks: stalls/elem")
	for _, k := range []int{1, 2, 4, 8, 16} {
		row := []interface{}{k}
		for _, banks := range []int{64, 256, 1024} {
			s := membank.MustNew(banks, 32)
			specs := make([]membank.StreamSpec, k)
			for i := range specs {
				specs[i] = membank.StreamSpec{Start: uint64(i * 7), Stride: 1, N: 512}
			}
			var total int64
			for _, r := range s.MultiLoad(specs) {
				total += r.StallCycles
			}
			row = append(row, float64(total)/float64(k)/512)
		}
		t.MustAddRow(row...)
	}
	return t
}

// WritePolicyTable quantifies the paper's write-buffer assumption: with
// separate write buses and buffers neither policy stalls the pipeline,
// but they differ sharply in memory write traffic. A blocked kernel that
// rewrites its output block R times sends R·B stores down the bus under
// write-through and ≈ B under write-back — the bandwidth the second read
// bus competes with.
func WritePolicyTable() *report.Table {
	t := report.New("write policy traffic on an 8-times-rewritten 4 K block (8 K-line caches)",
		"organisation", "stores issued", "memory writes", "traffic ratio")
	const b, reps = 4096, 8
	run := func(mapper cache.Mapper, wb bool) cache.Stats {
		c := cache.MustNew(cache.Config{Mapper: mapper, Ways: 1, WriteBack: wb})
		for pass := 0; pass < reps; pass++ {
			for w := uint64(0); w < b; w++ {
				c.Access(cache.Access{Addr: w * 8, Write: true, Stream: 1})
			}
		}
		// Drain: sweep a full cache-sized alias range so every dirty
		// line is evicted and write-back pays its deferred cost.
		for w := uint64(1 << (CacheExp + 1)); w < 1<<(CacheExp+1)+1<<CacheExp; w++ {
			c.Access(cache.Access{Addr: w * 8, Stream: 1})
		}
		return c.Stats()
	}
	dm, _ := cache.NewDirectMapper(1 << CacheExp)
	pm, _ := cache.NewPrimeMapper(CacheExp)
	for _, row := range []struct {
		name   string
		mapper cache.Mapper
		wb     bool
	}{
		{"direct write-through", dm, false},
		{"direct write-back", dm, true},
		{"prime write-back", pm, true},
	} {
		s := run(row.mapper, row.wb)
		ratio := float64(s.MemoryWrites) / float64(s.Writes)
		t.MustAddRow(row.name, s.Writes, s.MemoryWrites, ratio)
	}
	return t
}

// CacheSizeTable sweeps the cache size exponent: cycles/result of the
// direct- and prime-mapped CC-models at each Mersenne-prime-compatible
// size, with the MM-model as the horizontal reference. The prime
// advantage is not an artifact of the paper's 8 K-line point: it holds at
// every size where interference (not capacity) dominates, and shrinks
// only when the cache dwarfs the blocking factor.
func CacheSizeTable() *report.Table {
	t := report.New("cycles per result vs cache size (M=64, t_m=32, B=4K, R=B)",
		"c", "direct lines", "prime lines", "MM", "CC-direct", "CC-prime", "direct/prime")
	mach := vcm.DefaultMachine(64, 32)
	work := vcm.DefaultVCM(4096)
	const n = 1 << 20
	mm := vcm.CyclesPerResultMM(mach, work, n)
	for _, c := range []uint{13, 17, 19} {
		dg, pg := vcm.DirectGeom(c), vcm.PrimeGeom(c)
		dir := vcm.CyclesPerResultCC(dg, mach, work, n)
		prm := vcm.CyclesPerResultCC(pg, mach, work, n)
		t.MustAddRow(int(c), dg.Lines, pg.Lines, mm, dir, prm, dir/prm)
	}
	// Small caches (B > C): both designs are capacity-bound; include one
	// row to show the regime boundary.
	smallWork := vcm.DefaultVCM(64)
	mmSmall := vcm.CyclesPerResultMM(mach, smallWork, n)
	dg, pg := vcm.DirectGeom(7), vcm.PrimeGeom(7)
	t.MustAddRow(7, dg.Lines, pg.Lines, mmSmall,
		vcm.CyclesPerResultCC(dg, mach, smallWork, n),
		vcm.CyclesPerResultCC(pg, mach, smallWork, n),
		vcm.CyclesPerResultCC(dg, mach, smallWork, n)/vcm.CyclesPerResultCC(pg, mach, smallWork, n))
	return t
}

// ReplacementTable addresses §2.1's open question — "serial access to
// vectors dictates against LRU replacement … whether there exists a
// better replacement algorithm needs further study" — with the classic
// cyclic-thrash experiment: a strided vector whose per-set footprint
// slightly exceeds the associativity is re-swept. LRU (and FIFO) evict
// exactly the line about to be needed and score zero reuse hits; Random
// keeps a fraction alive. The prime-mapped direct cache sidesteps the
// question entirely: the same sweep fits without any replacement policy.
func ReplacementTable() *report.Table {
	t := report.New("§2.1 replacement study: cyclic re-sweep, per-set footprint = ways+2 (8 K lines)",
		"organisation", "reuse-pass hit%", "conflict misses")
	// 8-way, 1024 sets: stride 1024 maps everything to set 0; 10 lines
	// cycle through 8 ways.
	const n, stride, passes = 10, 1024, 12
	run := func(policy cache.Policy) cache.Stats {
		c, err := cache.NewSetAssoc(1<<CacheExp, 8, policy)
		if err != nil {
			panic(err)
		}
		for p := 0; p < passes; p++ {
			for i := 0; i < n; i++ {
				c.Access(cache.Access{Addr: uint64(i*stride) * 8, Stream: 1})
			}
		}
		return c.Stats()
	}
	hitPct := func(s cache.Stats) float64 {
		// Exclude the compulsory pass: hits over the reuse accesses.
		reuse := float64(s.Accesses - uint64(n))
		if reuse <= 0 {
			return 0
		}
		return 100 * float64(s.Hits) / reuse
	}
	for _, row := range []struct {
		name   string
		policy cache.Policy
	}{{"8-way LRU", cache.LRU}, {"8-way FIFO", cache.FIFO}, {"8-way Random", cache.Random}} {
		s := run(row.policy)
		t.MustAddRow(row.name, hitPct(s), s.Conflict)
	}
	prime := core.MustPrime(CacheExp)
	for p := 0; p < passes; p++ {
		prime.LoadVector(0, stride, n, 1)
	}
	ps := prime.Stats()
	t.MustAddRow("prime direct", 100*float64(ps.Hits)/float64(ps.Accesses-uint64(n)), ps.Conflict)
	return t
}

// AlgorithmTable evaluates the paper's §3.1 named algorithm presets —
// blocked matrix multiply (B = b², R = b), blocked LU (R = 3b/2), blocked
// FFT (R = log₂ b), row/column and diagonal accesses — on the three
// machines, the per-application view of the evaluation.
func AlgorithmTable() *report.Table {
	t := report.New("§3.1 algorithm presets, cycles per result (M=64, t_m=32)",
		"algorithm", "VCM [B R Pds P1]", "MM", "CC-direct", "CC-prime", "direct/prime")
	mach := vcm.DefaultMachine(64, 32)
	const n = 1 << 20
	rows := []struct {
		name string
		mk   func() (vcm.VCM, error)
	}{
		{"matmul b=64", func() (vcm.VCM, error) { return vcm.MatMulVCM(64) }},
		{"LU b=64", func() (vcm.VCM, error) { return vcm.LUVCM(64) }},
		{"FFT b=4096", func() (vcm.VCM, error) { return vcm.FFTVCM(4096) }},
		{"row/col b=4096 r=64", func() (vcm.VCM, error) { return vcm.RowColumnVCM(4096, 64) }},
		{"diagonal b=4096 r=64", func() (vcm.VCM, error) { return vcm.DiagonalVCM(4096, 64) }},
	}
	dg, pg := vcm.DirectGeom(CacheExp), vcm.PrimeGeom(CacheExp)
	for _, r := range rows {
		v, err := r.mk()
		if err != nil {
			panic(err)
		}
		desc := fmt.Sprintf("[%d %d %.3f %.2f]", v.B, v.R, v.Pds, v.P1S1)
		mm := vcm.CyclesPerResultMM(mach, v, n)
		dir := vcm.CyclesPerResultCC(dg, mach, v, n)
		prm := vcm.CyclesPerResultCC(pg, mach, v, n)
		t.MustAddRow(r.name, desc, mm, dir, prm, dir/prm)
	}
	return t
}

// TornadoTable is the one-at-a-time sensitivity analysis of the analytic
// model at the Figure-7 operating point, for both cache mappings: which
// parameter moves cycles-per-result the most. For the direct map the
// stride distribution is a first-order effect; the prime map's only
// material lever is the double-stream fraction — the model's statement
// that prime mapping removed the stride sensitivity.
func TornadoTable() *report.Table {
	t := report.New("sensitivity of cycles/result to ±25% parameter excursions (M=64, t_m=32, B=4K)",
		"parameter", "direct swing", "prime swing")
	mach := vcm.DefaultMachine(64, 32)
	work := vcm.DefaultVCM(4096)
	const n = 1 << 20
	dEntries, err := vcm.Sensitivity(vcm.DirectGeom(CacheExp), mach, work, n, 0.25)
	if err != nil {
		panic(err)
	}
	pEntries, err := vcm.Sensitivity(vcm.PrimeGeom(CacheExp), mach, work, n, 0.25)
	if err != nil {
		panic(err)
	}
	for i := range dEntries {
		t.MustAddRow(dEntries[i].Parameter, dEntries[i].Swing(), pEntries[i].Swing())
	}
	return t
}
