package experiments

import (
	"math/rand"
	"sync"

	"primecache/internal/cache"
	"primecache/internal/report"
	"primecache/internal/workloads"
)

// organisation is one cache design under test, exposing the uniform
// access entry point plus a combined miss ratio.
type organisation struct {
	name  string
	mem   workloads.Memory
	missR func() float64
	confl func() uint64
}

func organisations() []organisation {
	direct, _ := cache.NewDirect(1 << CacheExp)
	assoc, _ := cache.NewSetAssoc(1<<CacheExp, 4, cache.LRU)
	skew, _ := cache.NewSkewed(1 << CacheExp)
	vict, _ := cache.NewVictim(1<<CacheExp, 8)
	pfBase, _ := cache.NewDirect(1 << CacheExp)
	pf, _ := cache.NewPrefetchCache(pfBase, cache.PrefetchStride, 2)
	prime, _ := cache.NewPrime(CacheExp)
	return []organisation{
		{"direct", direct, func() float64 { return direct.Stats().MissRatio() }, func() uint64 { return direct.Stats().Conflict }},
		{"4-way", assoc, func() float64 { return assoc.Stats().MissRatio() }, func() uint64 { return assoc.Stats().Conflict }},
		{"skewed", skew, func() float64 { return skew.Stats().MissRatio() }, func() uint64 { return skew.Stats().Conflict }},
		{"victim+8", vict, func() float64 { return vict.CombinedMissRatio() }, func() uint64 { return vict.Main().Stats().Conflict }},
		{"stride-pf", pf, func() float64 { return pf.Stats().MissRatio() }, func() uint64 { return pf.Cache().Stats().Conflict }},
		{"prime", prime, func() float64 { return prime.Stats().MissRatio() }, func() uint64 { return prime.Stats().Conflict }},
	}
}

// kernelSpec names a workload and runs it against one memory.
type kernelSpec struct {
	name string
	run  func(mem workloads.Memory)
}

// kernels returns the benchmark suite. Every kernel computes real
// results. Leading dimensions are multiples of the direct-mapped cache
// size with a generic residue mod 8191 (tiles of a huge array — the §4
// scenario): fatal for bit selection, benign for the prime modulus. Base
// addresses avoid exact powers of two: a power-of-two base with a
// power-of-two stride keeps both streams in one residue coset and
// defeats *any* modulus — the prime cache's own pathology, exercised
// separately in ProblemSizeTable.
func kernels() []kernelSpec {
	return []kernelSpec{
		{"saxpy s=512", func(mem workloads.Memory) {
			n := 2048
			x := make([]float64, n*512)
			y := make([]float64, n*512)
			for r := 0; r < 2; r++ {
				if err := workloads.SAXPY(2.0, x, y, 0, 1<<24+12345, 512, 512, n, mem); err != nil {
					panic(err)
				}
			}
		}},
		{"matmul LD=300·2^13", func(mem workloads.Memory) {
			rng := rand.New(rand.NewSource(31))
			const ld = 300 << CacheExp
			a := workloads.NewMatrixLD(64, 16, ld, 0)
			b := workloads.NewMatrixLD(16, 16, ld, 1<<22)
			c := workloads.NewMatrixLD(64, 16, ld, 1<<26+512)
			for i := range a.Data {
				a.Data[i] = rng.Float64()
			}
			if err := workloads.BlockedMatMul(a, b, c, 16, mem); err != nil {
				panic(err)
			}
		}},
		{"LU n=48", func(mem workloads.Memory) {
			rng := rand.New(rand.NewSource(32))
			a := workloads.NewMatrix(48, 48, 0)
			for i := range a.Data {
				a.Data[i] = rng.Float64()
			}
			for i := 0; i < 48; i++ {
				a.Set(i, i, a.At(i, i)+48)
			}
			if err := workloads.BlockedLU(a, 16, mem); err != nil {
				panic(err)
			}
		}},
		{"fft 128x128", func(mem workloads.Memory) {
			x := make([]complex128, 128*128)
			for i := range x {
				x[i] = complex(float64(i%17), float64(i%5))
			}
			if err := workloads.FFT2D(x, 128, 128, 0, mem); err != nil {
				panic(err)
			}
		}},
		{"transpose LD=300·2^13", func(mem workloads.Memory) {
			const ld = 300 << CacheExp
			a := workloads.NewMatrixLD(64, 32, ld, 0)
			b := workloads.NewMatrixLD(32, 64, ld, 1<<25)
			// One pass of transpose has no temporal reuse (100%
			// compulsory on any mapping); repeat it so reuse separates
			// the designs.
			for pass := 0; pass < 2; pass++ {
				if err := workloads.BlockedTranspose(a, b, 16, mem); err != nil {
					panic(err)
				}
			}
		}},
		{"stencil 64x64", func(mem workloads.Memory) {
			src := workloads.NewMatrix(64, 64, 0)
			dst := workloads.NewMatrix(64, 64, 1<<23)
			for i := range src.Data {
				src.Data[i] = float64(i % 9)
			}
			if err := workloads.Stencil5(src, dst, mem); err != nil {
				panic(err)
			}
		}},
		{"cg n=24", func(mem workloads.Memory) {
			rng := rand.New(rand.NewSource(33))
			a := workloads.NewMatrix(24, 24, 0)
			for i := 0; i < 24; i++ {
				for j := 0; j <= i; j++ {
					v := rng.Float64() - 0.5
					a.Set(i, j, v)
					a.Set(j, i, v)
				}
				a.Set(i, i, a.At(i, i)+24)
			}
			b := workloads.NewVector(24, 100000)
			for i := range b.Data {
				b.Data[i] = rng.Float64()
			}
			x := workloads.NewVector(24, 200000)
			if _, err := workloads.ConjugateGradient(a, b, x, 100, 1e-8, mem); err != nil {
				panic(err)
			}
		}},
	}
}

// suiteCell is one (kernel, organisation) outcome.
type suiteCell struct {
	missPct   float64
	conflicts uint64
}

// runSuite executes every kernel against every organisation concurrently
// — each cell owns a fresh cache and a fresh kernel instance, so the
// fan-out is embarrassingly parallel — and returns the result matrix
// indexed [kernel][organisation].
func runSuite() [][]suiteCell {
	ks := kernels()
	nOrgs := len(organisations())
	out := make([][]suiteCell, len(ks))
	var wg sync.WaitGroup
	for ki := range ks {
		out[ki] = make([]suiteCell, nOrgs)
		for oi := 0; oi < nOrgs; oi++ {
			wg.Add(1)
			go func(ki, oi int) {
				defer wg.Done()
				o := organisations()[oi] // fresh caches per cell
				kernels()[ki].run(o.mem) // fresh kernel state per cell
				out[ki][oi] = suiteCell{missPct: 100 * o.missR(), conflicts: o.confl()}
			}(ki, oi)
		}
	}
	wg.Wait()
	return out
}

// KernelTable runs the full benchmark suite: miss percentage of every
// kernel on every organisation.
func KernelTable() *report.Table {
	ks := kernels()
	orgNames := []string{}
	for _, o := range organisations() {
		orgNames = append(orgNames, o.name+" miss%")
	}
	cols := append([]string{"kernel"}, orgNames...)
	t := report.New("kernel suite miss ratios across cache organisations (8 K lines each)", cols...)
	cells := runSuite()
	for ki, k := range ks {
		row := []interface{}{k.name}
		for _, c := range cells[ki] {
			row = append(row, c.missPct)
		}
		t.MustAddRow(row...)
	}
	return t
}

// KernelConflictTable is KernelTable with conflict-miss counts instead of
// miss ratios.
func KernelConflictTable() *report.Table {
	ks := kernels()
	orgNames := []string{}
	for _, o := range organisations() {
		orgNames = append(orgNames, o.name)
	}
	cols := append([]string{"kernel"}, orgNames...)
	t := report.New("kernel suite conflict misses across cache organisations", cols...)
	cells := runSuite()
	for ki, k := range ks {
		row := []interface{}{k.name}
		for _, c := range cells[ki] {
			row = append(row, c.conflicts)
		}
		t.MustAddRow(row...)
	}
	return t
}
