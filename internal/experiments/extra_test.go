package experiments

import (
	"strconv"
	"strings"
	"testing"

	"primecache/internal/report"
)

func cellUint(t *testing.T, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("cell %q not an integer: %v", s, err)
	}
	return v
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", s, err)
	}
	return v
}

func TestProblemSizeTable(t *testing.T) {
	tab := ProblemSizeTable()
	if tab.Rows() != 12 {
		t.Fatalf("rows = %d, want 12", tab.Rows())
	}
	var directSpikes, primeSpikes int
	for r := 0; r < tab.Rows(); r++ {
		if cellUint(t, tab.Cell(r, 1)) > 0 {
			directSpikes++
		}
		if cellUint(t, tab.Cell(r, 2)) > 0 {
			primeSpikes++
		}
		// The §4 adaptive block must be conflict-free whenever it exists.
		if tab.Cell(r, 3) != "degenerate" {
			if got := tab.Cell(r, 4); got != "0" {
				t.Errorf("P=%s: adaptive conflicts = %s, want 0", tab.Cell(r, 0), got)
			}
		}
	}
	if directSpikes == 0 {
		t.Error("expected fixed-block spikes on the direct-mapped cache")
	}
	if primeSpikes == 0 {
		t.Error("expected fixed-block spikes on the prime cache at its own bad residues")
	}
	// P = 8192 ≡ 1 (mod 8191) degenerates the adaptive block to 1×8191 —
	// still representable; only P ≡ 0 (mod 8191) is degenerate, and the
	// sweep has none.
	if strings.Contains(tab.String(), "degenerate") {
		t.Error("unexpected degenerate row in this sweep")
	}
}

func TestLineSizeTable(t *testing.T) {
	tab := LineSizeTable()
	if tab.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", tab.Rows())
	}
	// Unit-stride miss ratio falls as lines grow; stride-8 miss ratio
	// does not improve once the line is shorter than the stride.
	prevUnit := 101.0
	for r := 0; r < tab.Rows(); r++ {
		unit := cellFloat(t, tab.Cell(r, 2))
		if unit >= prevUnit {
			t.Errorf("line %s: unit-stride miss%% %v did not fall (prev %v)", tab.Cell(r, 0), unit, prevUnit)
		}
		prevUnit = unit
	}
	// 8-byte lines: stride-8 (words) never reuses a line → 50% (2 passes,
	// second pass hits only if resident; 8192 words at stride 8 = 8192
	// lines... capacity 8192 lines → second pass hits → 50%).
	s8First := cellFloat(t, tab.Cell(0, 3))
	s8Last := cellFloat(t, tab.Cell(tab.Rows()-1, 3))
	if s8Last < s8First {
		t.Errorf("stride-8 miss%% improved with big lines (%v → %v); expected pollution, not help", s8First, s8Last)
	}
	// Pollution column grows with the line size.
	if cellFloat(t, tab.Cell(3, 4)) <= cellFloat(t, tab.Cell(0, 4)) {
		t.Error("pollution should grow with line size")
	}
}

func TestPrefetchTable(t *testing.T) {
	tab := PrefetchTable()
	if tab.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", tab.Rows())
	}
	for r := 0; r < tab.Rows(); r++ {
		stride := tab.Cell(r, 0)
		direct := cellFloat(t, tab.Cell(r, 1))
		strPF := cellFloat(t, tab.Cell(r, 3))
		prime := cellFloat(t, tab.Cell(r, 5))
		// Stride prefetching should never hurt the constant-stride sweeps.
		if strPF > direct+1e-9 {
			t.Errorf("stride %s: stride-prefetch %v worse than plain %v", stride, strPF, direct)
		}
		// The prime cache without any prefetcher stays at or below the
		// plain direct cache.
		if prime > direct+1e-9 {
			t.Errorf("stride %s: prime %v worse than direct %v", stride, prime, direct)
		}
	}
	// The stride-512 row is the showcase: direct thrashes (~100%), prime
	// compulsory-only (~50% over two passes).
	if d := cellFloat(t, tab.Cell(3, 1)); d < 90 {
		t.Errorf("stride-512 direct miss%% = %v, want ≈ 100", d)
	}
	if p := cellFloat(t, tab.Cell(3, 5)); p > 55 {
		t.Errorf("stride-512 prime miss%% = %v, want ≈ 50", p)
	}
}

func TestPrimeMemoryTable(t *testing.T) {
	tab := PrimeMemoryTable()
	if tab.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", tab.Rows())
	}
	// Power-of-two strides: 2^m banks stall, prime banks do not.
	pow2 := cellFloat(t, tab.Cell(2, 1))
	prime := cellFloat(t, tab.Cell(2, 2))
	if pow2 <= 0 {
		t.Error("2^m banks should stall on power-of-two strides")
	}
	if prime != 0 {
		t.Errorf("prime banks stalled %v on power-of-two strides", prime)
	}
	// Multiples of 61: the prime system's own worst case.
	if v := cellFloat(t, tab.Cell(3, 2)); v <= 0 {
		t.Error("prime banks should stall on multiples of 61")
	}
	// Unit stride: both fine.
	if cellFloat(t, tab.Cell(0, 1)) != 0 || cellFloat(t, tab.Cell(0, 2)) != 0 {
		t.Error("unit stride should not stall either system")
	}
}

func TestAssociativityTable(t *testing.T) {
	tab := AssociativityTable()
	if tab.Rows() != 5 {
		t.Fatalf("rows = %d, want 5", tab.Rows())
	}
	direct := cellFloat(t, tab.Cell(0, 1))
	way8 := cellFloat(t, tab.Cell(3, 1))
	prime := cellFloat(t, tab.Cell(4, 1))
	if way8 > direct {
		t.Errorf("8-way analytic Is %v above direct %v", way8, direct)
	}
	if way8 < 0.5*direct {
		t.Errorf("8-way analytic Is %v improved > 2x over direct %v; §2.1 expects marginal", way8, direct)
	}
	if prime > direct/50 {
		t.Errorf("prime analytic Is %v not ≪ direct %v", prime, direct)
	}
	// Simulated stride-1024 resweep: identical conflicts at every
	// power-of-two associativity, zero for prime.
	base := tab.Cell(0, 2)
	for r := 1; r < 4; r++ {
		if tab.Cell(r, 2) != base {
			t.Errorf("row %d conflicts %s != direct %s", r, tab.Cell(r, 2), base)
		}
	}
	if tab.Cell(4, 2) != "0" {
		t.Errorf("prime conflicts = %s, want 0", tab.Cell(4, 2))
	}
}

func TestMultiStreamTable(t *testing.T) {
	tab := MultiStreamTable()
	if tab.Rows() != 5 {
		t.Fatalf("rows = %d, want 5", tab.Rows())
	}
	// Single stream: no stalls anywhere.
	for col := 1; col <= 3; col++ {
		if v := cellFloat(t, tab.Cell(0, col)); v != 0 {
			t.Errorf("1 stream col %d stalls = %v, want 0", col, v)
		}
	}
	// 16 streams on 64 banks contend hard; 1024 banks absorb them.
	if v := cellFloat(t, tab.Cell(4, 1)); v <= 1 {
		t.Errorf("16 streams / 64 banks stalls = %v, want heavy contention", v)
	}
	if small, big := cellFloat(t, tab.Cell(4, 1)), cellFloat(t, tab.Cell(4, 3)); big >= small {
		t.Errorf("1024 banks (%v) should absorb contention better than 64 (%v)", big, small)
	}
	// Contention grows with k at fixed banks.
	prev := -1.0
	for r := 0; r < tab.Rows(); r++ {
		v := cellFloat(t, tab.Cell(r, 1))
		if v < prev {
			t.Errorf("row %d: stalls fell (%v < %v)", r, v, prev)
		}
		prev = v
	}
}

func TestWritePolicyTable(t *testing.T) {
	tab := WritePolicyTable()
	if tab.Rows() != 3 {
		t.Fatalf("rows = %d, want 3", tab.Rows())
	}
	wt := cellUint(t, tab.Cell(0, 2))
	wbDirect := cellUint(t, tab.Cell(1, 2))
	wbPrime := cellUint(t, tab.Cell(2, 2))
	if wt != 8*4096 {
		t.Errorf("write-through memory writes = %d, want %d", wt, 8*4096)
	}
	if wbDirect != 4096 {
		t.Errorf("direct write-back memory writes = %d, want 4096", wbDirect)
	}
	if wbPrime != 4096 {
		t.Errorf("prime write-back memory writes = %d, want 4096", wbPrime)
	}
}

func TestCacheSizeTable(t *testing.T) {
	tab := CacheSizeTable()
	if tab.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", tab.Rows())
	}
	// Prime wins at every size; the advantage shrinks as the cache grows
	// far past the blocking factor.
	prevAdv := -1.0
	for r := 0; r < 3; r++ {
		adv := cellFloat(t, tab.Cell(r, 6))
		if adv <= 1 {
			t.Errorf("c=%s: direct/prime = %v, want > 1", tab.Cell(r, 0), adv)
		}
		if prevAdv > 0 && adv > prevAdv {
			t.Errorf("advantage grew with cache size (%v → %v); expected shrink", prevAdv, adv)
		}
		prevAdv = adv
	}
	// The small-cache row: B=64 in 127/128 lines — the prime advantage
	// persists even here (Is^C ∝ B²/C stays material at B ≈ C/2).
	if adv := cellFloat(t, tab.Cell(3, 6)); adv <= 1 || adv > 4 {
		t.Errorf("tiny-cache advantage %v outside (1, 4]", adv)
	}
}

func TestReplacementTable(t *testing.T) {
	tab := ReplacementTable()
	if tab.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", tab.Rows())
	}
	lru := cellFloat(t, tab.Cell(0, 1))
	fifo := cellFloat(t, tab.Cell(1, 1))
	random := cellFloat(t, tab.Cell(2, 1))
	prime := cellFloat(t, tab.Cell(3, 1))
	// The §2.1 claim: LRU (and FIFO) are worst-case on cyclic vector
	// reuse — zero reuse hits — while Random salvages some.
	if lru != 0 || fifo != 0 {
		t.Errorf("LRU/FIFO reuse hit%% = %v/%v, want 0/0 on cyclic thrash", lru, fifo)
	}
	if random <= 10 {
		t.Errorf("Random reuse hit%% = %v, want > 10", random)
	}
	if prime != 100 {
		t.Errorf("prime reuse hit%% = %v, want 100", prime)
	}
}

// TestAllTablesRenderEverywhere exercises every table through every
// report format, catching renderer regressions in one sweep.
func TestAllTablesRenderEverywhere(t *testing.T) {
	tables := []*report.Table{
		SubblockTable(), CrossCheck(), ProblemSizeTable(), LineSizeTable(),
		PrefetchTable(), PrimeMemoryTable(), AssociativityTable(),
		MultiStreamTable(), WritePolicyTable(), CacheSizeTable(),
		ReplacementTable(), Summary(),
	}
	for _, f := range All() {
		tables = append(tables, f.Table())
	}
	for i, tab := range tables {
		var sb strings.Builder
		if err := tab.WriteText(&sb); err != nil {
			t.Errorf("table %d text: %v", i, err)
		}
		if err := tab.WriteCSV(&sb); err != nil {
			t.Errorf("table %d csv: %v", i, err)
		}
		if err := tab.WriteMarkdown(&sb); err != nil {
			t.Errorf("table %d markdown: %v", i, err)
		}
		if sb.Len() == 0 {
			t.Errorf("table %d rendered empty", i)
		}
	}
}

func TestAlgorithmTable(t *testing.T) {
	tab := AlgorithmTable()
	if tab.Rows() != 5 {
		t.Fatalf("rows = %d, want 5", tab.Rows())
	}
	for r := 0; r < tab.Rows(); r++ {
		// Prime is never worse; for the unit-stride matmul/LU presets the
		// analytic model (which has no layout pathologies) makes the two
		// mappings tie.
		if adv := cellFloat(t, tab.Cell(r, 5)); adv < 1-1e-9 {
			t.Errorf("%s: direct/prime = %v, want ≥ 1", tab.Cell(r, 0), adv)
		}
	}
	// The strided presets show the big gaps.
	if adv := cellFloat(t, tab.Cell(2, 5)); adv < 2 { // FFT
		t.Errorf("FFT advantage %v, want > 2", adv)
	}
	if adv := cellFloat(t, tab.Cell(4, 5)); adv < 2 { // diagonal
		t.Errorf("diagonal advantage %v, want > 2", adv)
	}
}

func TestTornadoTable(t *testing.T) {
	tab := TornadoTable()
	if tab.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", tab.Rows())
	}
	var directStride, primeStride, primePds float64
	for r := 0; r < tab.Rows(); r++ {
		switch tab.Cell(r, 0) {
		case "P_stride1":
			directStride = cellFloat(t, tab.Cell(r, 1))
			primeStride = cellFloat(t, tab.Cell(r, 2))
		case "P_ds":
			primePds = cellFloat(t, tab.Cell(r, 2))
		}
	}
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	if abs(directStride) < 10*abs(primeStride) {
		t.Errorf("direct stride swing %v not ≫ prime's %v", directStride, primeStride)
	}
	if abs(primePds) < 5*abs(primeStride) {
		t.Errorf("prime P_ds swing %v not dominant over stride %v", primePds, primeStride)
	}
}
