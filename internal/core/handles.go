package core

import (
	"fmt"

	"primecache/internal/cache"
)

// The paper's §2.3 closes with a hardware trade-off: a register file that
// remembers each active vector's converted starting index (fast restarts,
// more registers) versus recomputing the Mersenne residue at each vector
// start-up (1–2 extra adder steps per restart, no registers). Vector
// handles expose both policies so the ablation benchmarks can price them.

// VectorHandle names a defined vector for repeated access.
type VectorHandle struct {
	id     int
	start  uint64
	stride int64
	n      int
	stream int
	saved  bool
}

// DefineVector registers a vector (start word, stride, length, stream)
// with the cache and, when save is true and the cache is prime-mapped,
// stores its converted starting index in a Figure-1 start register.
func (v *VectorCache) DefineVector(id int, startWord uint64, stride int64, n, stream int, save bool) (*VectorHandle, error) {
	if n < 0 {
		return nil, fmt.Errorf("core: negative vector length %d", n)
	}
	h := &VectorHandle{id: id, start: startWord, stride: stride, n: n, stream: stream}
	if save && v.unit != nil {
		v.unit.SetStride(stride)
		v.unit.Start(startWord)
		if err := v.unit.SaveStart(id); err != nil {
			return nil, err
		}
		h.saved = true
	}
	return h, nil
}

// LoadHandle re-accesses the vector. With a saved start register the
// prime-mapped address unit restores the starting index at zero adder
// cost and pays one end-around addition per subsequent element; without
// one it reconverts the starting address (the 1–2 extra steps the paper
// is willing to spend to save registers).
func (v *VectorCache) LoadHandle(h *VectorHandle) (VectorResult, error) {
	if h == nil {
		return VectorResult{}, fmt.Errorf("core: nil vector handle")
	}
	if v.unit == nil || !h.saved {
		return v.LoadVector(h.start, h.stride, h.n, h.stream)
	}
	res := VectorResult{Elements: h.n}
	if h.n == 0 {
		return res, nil
	}
	before := v.unit.AdderOps()
	v.unit.SetStride(h.stride)
	if _, ok := v.unit.Restart(h.id); !ok {
		return res, fmt.Errorf("core: start register %d lost", h.id)
	}
	addr := int64(h.start)
	for i := 0; i < h.n; i++ {
		if i > 0 {
			idx := v.unit.Next()
			if want := v.c.Config().Mapper.Index(uint64(addr)); int(idx) != want {
				return res, fmt.Errorf("core: element %d: address unit index %d disagrees with mapper %d", i, idx, want)
			}
		}
		r := v.c.Access(cache.Access{Addr: uint64(addr) * trace8, Stream: h.stream})
		if r.Hit {
			res.Hits++
		} else {
			res.Misses++
		}
		addr += h.stride
	}
	res.AdderSteps = v.unit.AdderOps() - before
	return res, nil
}

// ReleaseHandle frees the handle's start register, if any.
func (v *VectorCache) ReleaseHandle(h *VectorHandle) {
	if h != nil && h.saved && v.unit != nil {
		v.unit.DropStart(h.id)
		h.saved = false
	}
}
