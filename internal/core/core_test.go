package core

import (
	"testing"
	"testing/quick"

	"primecache/internal/cache"
	"primecache/internal/vcm"
)

func TestNewPrimeRejectsComposite(t *testing.T) {
	if _, err := NewPrime(12); err == nil {
		t.Error("composite Mersenne exponent accepted")
	}
	v, err := NewPrime(13)
	if err != nil {
		t.Fatal(err)
	}
	if v.Lines() != 8191 || !v.IsPrimeMapped() {
		t.Errorf("Lines=%d prime=%v", v.Lines(), v.IsPrimeMapped())
	}
}

func TestDatapathAgreesWithMapper(t *testing.T) {
	// The load path cross-checks every generated index against the
	// architectural mapping; a disagreement returns an error.
	v, _ := NewPrime(13)
	for _, tc := range []struct {
		start  uint64
		stride int64
		n      int
	}{
		{0, 1, 1000}, {12345, 8192, 5000}, {1 << 30, -7, 3000}, {42, 8191, 100},
	} {
		if _, err := v.LoadVector(tc.start, tc.stride, tc.n, 0); err != nil {
			t.Errorf("LoadVector(%d,%d,%d): %v", tc.start, tc.stride, tc.n, err)
		}
	}
}

func TestDatapathAgreesWithMapperProperty(t *testing.T) {
	v, _ := NewPrime(7)
	f := func(start uint32, stride int16, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		_, err := v.LoadVector(uint64(start), int64(stride), n, 0)
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadVectorCounts(t *testing.T) {
	v, _ := NewPrime(13)
	r, err := v.LoadVector(0, 1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Elements != 100 || r.Misses != 100 || r.Hits != 0 {
		t.Errorf("first load: %+v", r)
	}
	r, _ = v.LoadVector(0, 1, 100, 1)
	if r.Hits != 100 || r.Misses != 0 {
		t.Errorf("second load: %+v", r)
	}
}

func TestAdderStepsPerElement(t *testing.T) {
	// Steady state costs exactly one c-bit addition per element — the
	// paper's no-critical-path-increase claim. Start-up adds the stride
	// conversion and the starting-index folding.
	v, _ := NewPrime(13)
	r, _ := v.LoadVector(5, 3, 1000, 0)
	perElem := float64(r.AdderSteps) / float64(r.Elements)
	if perElem > 1.01 {
		t.Errorf("adder steps per element = %v, want ≈ 1", perElem)
	}
	if r.AdderSteps < 999 {
		t.Errorf("adder steps = %d, want ≥ n−1", r.AdderSteps)
	}
}

func TestDirectHasNoAdder(t *testing.T) {
	v, _ := NewDirect(8192)
	r, _ := v.LoadVector(0, 512, 100, 0)
	if r.AdderSteps != 0 || v.AdderSteps() != 0 {
		t.Error("direct-mapped cache should not use the Mersenne adder")
	}
	if v.IsPrimeMapped() {
		t.Error("direct cache claims prime mapping")
	}
}

func TestStoreVector(t *testing.T) {
	v, _ := NewPrime(13)
	if _, err := v.StoreVector(0, 2, 50, 0); err != nil {
		t.Fatal(err)
	}
	if s := v.Stats(); s.Writes != 50 {
		t.Errorf("writes = %d, want 50", s.Writes)
	}
}

func TestNegativeLengthRejected(t *testing.T) {
	v, _ := NewPrime(13)
	if _, err := v.LoadVector(0, 1, -1, 0); err == nil {
		t.Error("negative length accepted")
	}
	if r, err := v.LoadVector(0, 1, 0, 0); err != nil || r.Elements != 0 {
		t.Errorf("zero-length load: %+v, %v", r, err)
	}
}

func TestFlush(t *testing.T) {
	v, _ := NewPrime(13)
	v.LoadVector(0, 1, 10, 0)
	v.Flush()
	if v.Stats().Accesses != 0 || v.AdderSteps() != 0 {
		t.Error("Flush did not clear state")
	}
}

func TestPrimeVsDirectPowerOfTwoStrideReuse(t *testing.T) {
	// The paper's core comparison at the device level: repeatedly sweep a
	// 4K-element vector with stride 512. Direct: 16 lines reused → ~100%
	// misses. Prime: conflict-free → second pass all hits.
	prime, _ := NewPrime(13)
	direct, _ := NewDirect(8192)
	const n, stride = 4096, 512
	for pass := 0; pass < 2; pass++ {
		if _, err := prime.LoadVector(0, stride, n, 1); err != nil {
			t.Fatal(err)
		}
		direct.LoadVector(0, stride, n, 1)
	}
	ps, ds := prime.Stats(), direct.Stats()
	if ps.Hits != n {
		t.Errorf("prime second-pass hits = %d, want %d", ps.Hits, n)
	}
	if ds.Hits > n/100 {
		t.Errorf("direct hits = %d, expected thrashing", ds.Hits)
	}
}

func TestSelfVsCrossAttributionThroughVectors(t *testing.T) {
	// One stream whose stride folds onto a single set, re-swept: its own
	// elements evict each other → self-interference. The 16 distinct
	// lines fit fully-associatively, so the misses classify as conflict.
	d, _ := NewDirect(64)
	d.LoadVector(0, 64, 16, 1)
	d.LoadVector(0, 64, 16, 1)
	s := d.Stats()
	if s.SelfInterference == 0 {
		t.Errorf("self-interference = %d, want > 0", s.SelfInterference)
	}
	if s.CrossInterference != 0 {
		t.Errorf("cross-interference = %d, want 0", s.CrossInterference)
	}
	// Two streams whose footprints collide set-wise but fit
	// fully-associatively: stream 2 evicts stream 1 → cross-interference
	// on stream 1's re-access.
	d2, _ := NewDirect(64)
	d2.LoadVector(0, 1, 32, 1)
	d2.LoadVector(64, 1, 32, 2) // sets 0..31 again, 64 distinct lines total
	d2.LoadVector(0, 1, 32, 1)
	s2 := d2.Stats()
	if s2.CrossInterference == 0 {
		t.Errorf("cross-interference = %d, want > 0", s2.CrossInterference)
	}
	if s2.SelfInterference != 0 {
		t.Errorf("self-interference = %d, want 0", s2.SelfInterference)
	}
}

func TestLoadSubblockConflictFree(t *testing.T) {
	// §4: the maximal conflict-free sub-block of an arbitrary matrix
	// loads with zero conflicts and near-1 utilization, twice.
	const C = 8191
	for _, p := range []int{1000, 8000, 10000, 12345} {
		b1, b2, err := vcm.MaxConflictFreeBlock(C, p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		v, _ := NewPrime(13)
		for pass := 0; pass < 2; pass++ {
			if _, err := v.LoadSubblock(0, p, b1, b2, 1); err != nil {
				t.Fatal(err)
			}
		}
		s := v.Stats()
		if s.Conflict != 0 {
			t.Errorf("P=%d b1=%d b2=%d: %d conflicts, want 0", p, b1, b2, s.Conflict)
		}
		if s.Hits != uint64(b1*b2) {
			t.Errorf("P=%d: second pass hits = %d, want %d", p, s.Hits, b1*b2)
		}
		if u := v.Cache().Utilization(); u < 0.75 {
			t.Errorf("P=%d: utilization %v, want ≈ 1", p, u)
		}
	}
}

func TestLoadSubblockDirectThrashes(t *testing.T) {
	// The same near-full blocking in a direct-mapped cache of 8192 lines
	// conflicts when the leading dimension is a power of two.
	v, _ := NewDirect(8192)
	// Leading dimension 8192: all columns image onto the same sets, so a
	// 2048×3 block (6144 words, comfortably inside the cache) folds its
	// three columns onto sets 0..2047 and conflicts on reuse.
	for pass := 0; pass < 2; pass++ {
		v.LoadSubblock(0, 8192, 2048, 3, 1)
	}
	if s := v.Stats(); s.Conflict == 0 {
		t.Error("direct-mapped sub-block should conflict")
	}
}

func TestWrapAndSetAssocBaselines(t *testing.T) {
	sa, err := NewSetAssoc(64, 4, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Lines() != 64 {
		t.Errorf("set-assoc lines = %d", sa.Lines())
	}
	fa, err := NewFullyAssoc(32)
	if err != nil {
		t.Fatal(err)
	}
	fa.LoadVector(0, 1024, 32, 0)
	fa.LoadVector(0, 1024, 32, 0)
	if s := fa.Stats(); s.Conflict != 0 || s.Hits != 32 {
		t.Errorf("fully-assoc stats: %+v", s)
	}
	raw, _ := cache.NewDirect(16)
	w := Wrap(raw)
	if w.Cache() != raw {
		t.Error("Wrap did not keep the cache")
	}
	if _, err := NewDirect(100); err == nil {
		t.Error("NewDirect(100) accepted")
	}
	if _, err := NewSetAssoc(100, 3, cache.LRU); err == nil {
		t.Error("NewSetAssoc invalid accepted")
	}
	if _, err := NewFullyAssoc(0); err == nil {
		t.Error("NewFullyAssoc(0) accepted")
	}
}

// TestAssociativityDoesNotHelpStrides reproduces §2.1's argument: for the
// same capacity, raising associativity shrinks the set count, so a
// power-of-two stride still reaches exactly the same number of line frames
// — "we will not see significant reduction in interference misses" — while
// the prime mapping removes them outright.
func TestAssociativityDoesNotHelpStrides(t *testing.T) {
	run := func(v *VectorCache) cache.Stats {
		const n, stride = 2048, 1024
		for pass := 0; pass < 4; pass++ {
			if _, err := v.LoadVector(0, stride, n, 1); err != nil {
				t.Fatal(err)
			}
		}
		return v.Stats()
	}
	direct, _ := NewDirect(8192)
	assoc, _ := NewSetAssoc(8192, 4, cache.LRU)
	prime, _ := NewPrime(13)
	ds, as, ps := run(direct), run(assoc), run(prime)
	if ps.Conflict != 0 {
		t.Errorf("prime conflicts = %d, want 0", ps.Conflict)
	}
	if as.Conflict != ds.Conflict {
		// stride 1024: direct reaches 8 sets; 4-way reaches 2 sets × 4
		// ways — 8 frames either way.
		t.Errorf("4-way conflicts %d != direct %d; §2.1 predicts identical frame reach", as.Conflict, ds.Conflict)
	}
	if ds.Conflict == 0 {
		t.Error("direct should conflict on the strided resweep")
	}
}

// TestAssociativityHelpsPingPong shows the flip side: when the per-set
// working set fits in the ways (two lines ping-ponging on one set),
// associativity does eliminate the conflicts — associativity's benefit is
// workload-shaped, the paper's reason to attack mapping instead.
func TestAssociativityHelpsPingPong(t *testing.T) {
	direct, _ := NewDirect(8192)
	assoc, _ := NewSetAssoc(8192, 2, cache.LRU)
	for i := 0; i < 16; i++ {
		for _, v := range []*VectorCache{direct, assoc} {
			v.LoadVector(0, 1, 1, 1)
			v.LoadVector(8192, 1, 1, 2)
		}
	}
	if s := direct.Stats(); s.Conflict == 0 {
		t.Error("direct ping-pong should conflict")
	}
	if s := assoc.Stats(); s.Conflict != 0 {
		t.Errorf("2-way ping-pong conflicts = %d, want 0", s.Conflict)
	}
}
