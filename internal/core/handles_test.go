package core

import "testing"

func TestVectorHandleSavedRestart(t *testing.T) {
	v, _ := NewPrime(13)
	h, err := v.DefineVector(1, 12345, 7, 500, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	// First access: fills the cache.
	r1, err := v.LoadHandle(h)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Misses != 500 {
		t.Errorf("first pass misses = %d, want 500", r1.Misses)
	}
	// Second access: all hits, and — the point of the register — exactly
	// n−1 adder steps plus the stride reload, none for the start address.
	r2, err := v.LoadHandle(h)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Hits != 500 {
		t.Errorf("second pass hits = %d, want 500", r2.Hits)
	}
	if r2.AdderSteps > 500 {
		t.Errorf("saved restart used %d adder steps, want ≤ n", r2.AdderSteps)
	}
}

func TestVectorHandleUnsavedRecomputes(t *testing.T) {
	v, _ := NewPrime(13)
	h, err := v.DefineVector(1, 0xFFFFFF00, 7, 500, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := v.LoadHandle(h)
	r2, _ := v.LoadHandle(h)
	// The unsaved path reconverts the 32-bit starting address: a couple
	// of extra folding steps per pass.
	if r2.AdderSteps <= 499 {
		t.Errorf("unsaved restart used %d adder steps, want > n−1 (start reconversion)", r2.AdderSteps)
	}
	if r1.Misses != 500 || r2.Hits != 500 {
		t.Errorf("cache behaviour wrong: %+v %+v", r1, r2)
	}
}

func TestVectorHandleSavedCheaperThanUnsaved(t *testing.T) {
	// The §2.3 trade-off, priced: over many restarts the register file
	// saves the start-up conversions.
	saved, _ := NewPrime(13)
	unsaved, _ := NewPrime(13)
	hs, _ := saved.DefineVector(1, 0xFFFFFF00, 513, 100, 1, true)
	hu, _ := unsaved.DefineVector(1, 0xFFFFFF00, 513, 100, 1, false)
	var stepsSaved, stepsUnsaved uint64
	for i := 0; i < 10; i++ {
		rs, err := saved.LoadHandle(hs)
		if err != nil {
			t.Fatal(err)
		}
		ru, err := unsaved.LoadHandle(hu)
		if err != nil {
			t.Fatal(err)
		}
		stepsSaved += rs.AdderSteps
		stepsUnsaved += ru.AdderSteps
	}
	if stepsSaved >= stepsUnsaved {
		t.Errorf("saved %d steps not below unsaved %d", stepsSaved, stepsUnsaved)
	}
}

func TestVectorHandleOnDirectCache(t *testing.T) {
	// Handles degrade gracefully on non-prime caches: no registers, the
	// plain load path.
	v, _ := NewDirect(8192)
	h, err := v.DefineVector(1, 0, 3, 100, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if h.saved {
		t.Error("direct cache should not save start registers")
	}
	if _, err := v.LoadHandle(h); err != nil {
		t.Fatal(err)
	}
}

func TestVectorHandleErrors(t *testing.T) {
	v, _ := NewPrime(13)
	if _, err := v.DefineVector(1, 0, 1, -1, 1, true); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := v.LoadHandle(nil); err == nil {
		t.Error("nil handle accepted")
	}
	h, _ := v.DefineVector(2, 0, 1, 0, 1, true)
	if r, err := v.LoadHandle(h); err != nil || r.Elements != 0 {
		t.Errorf("zero-length handle: %+v, %v", r, err)
	}
	// Releasing drops the register; the handle then reports a lost
	// register rather than silently using a stale index.
	h3, _ := v.DefineVector(3, 0, 1, 10, 1, true)
	v.ReleaseHandle(h3)
	if h3.saved {
		t.Error("ReleaseHandle should clear saved")
	}
	if _, err := v.LoadHandle(h3); err != nil {
		t.Errorf("released handle should fall back to plain load: %v", err)
	}
}
