package cluster

import (
	"bytes"
	"net/http"

	"primecache/internal/obs"
	"primecache/internal/server"
)

// promContentType mirrors the server's exposition version so a scraper
// cannot tell a coordinator from a single node by the handshake.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromFamilies renders the coordinator's own counters plus one sample
// per backend (labeled backend=<url>) for the routing-layer families.
// The coordinator has no Metrics registry — its counters are raw fields
// — so the families are assembled by hand here.
func (c *Coordinator) PromFamilies() []obs.Family {
	counter := func(name, help string, v uint64) obs.Family {
		return obs.Family{Name: name, Help: help, Kind: obs.KindCounter,
			Samples: []obs.Sample{{Value: float64(v)}}}
	}
	fams := []obs.Family{
		counter("vcached_coordinator_requests_total", "Requests accepted by the coordinator.", c.requests.Value()),
		counter("vcached_coordinator_shed_total", "Requests shed by the coordinator's admission valve.", c.shed.Value()),
		counter("vcached_coordinator_hedges_total", "Hedged backend calls launched.", c.hedges.Value()),
		counter("vcached_coordinator_reroutes_total", "Jobs rerouted to another replica after a failure.", c.reroutes.Value()),
		counter("vcached_coordinator_joins_total", "Completed backend joins.", c.joins.Value()),
		counter("vcached_coordinator_leaves_total", "Completed backend leaves.", c.leaves.Value()),
		counter("vcached_coordinator_migrated_keys_total", "Warm-state records moved by membership changes.", c.migratedKeys.Value()),
		counter("vcached_coordinator_migrated_bytes_total", "Warm-state value bytes moved by membership changes.", c.migratedBytes.Value()),
		counter("vcached_coordinator_migration_errors_total", "Failed or skipped migration transfers.", c.migrationErrors.Value()),
		{
			Name: "vcached_coordinator_healthy_backends", Help: "Backends currently passing readiness probes.",
			Kind:    obs.KindGauge,
			Samples: []obs.Sample{{Value: float64(c.health.healthyCount())}},
		},
		{
			Name: "vcached_coordinator_ring_version", Help: "Atomic ring swaps since the coordinator booted.",
			Kind:    obs.KindGauge,
			Samples: []obs.Sample{{Value: float64(c.RingVersion())}},
		},
	}

	// Per-backend families: one sample per backend, distinguished by the
	// backend label. Base URLs contain '://', so these exercise the label
	// escaping path on every scrape.
	reqs := obs.Family{Name: "vcached_backend_requests_total",
		Help: "Calls issued to the backend.", Kind: obs.KindCounter}
	fails := obs.Family{Name: "vcached_backend_failures_total",
		Help: "Failed calls to the backend.", Kind: obs.KindCounter}
	inflight := obs.Family{Name: "vcached_backend_inflight",
		Help: "Calls in flight to the backend.", Kind: obs.KindGauge}
	latency := obs.Family{Name: "vcached_backend_latency_seconds",
		Help: "Observed call latency per backend in seconds.", Kind: obs.KindHistogram}
	for _, u := range c.currentRing().Backends() {
		b := c.backendFor(u)
		if b == nil {
			continue // removed between the ring read and here
		}
		label := []obs.Label{{Name: "backend", Value: u}}
		reqs.Samples = append(reqs.Samples, obs.Sample{Labels: label, Value: float64(b.requests.Value())})
		fails.Samples = append(fails.Samples, obs.Sample{Labels: label, Value: float64(b.failures.Value())})
		inflight.Samples = append(inflight.Samples, obs.Sample{Labels: label, Value: float64(b.inflight.Value())})
		latency.Samples = append(latency.Samples, obs.Sample{Labels: label, Hist: promHist(b.latency.Snapshot())})
	}
	return append(fams, reqs, fails, inflight, latency)
}

// promHist re-derives the full cumulative ladder from a sparse latency
// snapshot, bounds scaled from microseconds to seconds (the server
// keeps an identical converter for its registry histograms).
func promHist(s server.HistogramSnapshot) *obs.HistValue {
	uppersUs, cum := s.Cumulative()
	edges := make([]float64, len(uppersUs))
	for i, us := range uppersUs {
		edges[i] = float64(us) / 1e6
	}
	return &obs.HistValue{Edges: edges, CumCounts: cum, Sum: float64(s.SumUs) / 1e6}
}

// handleMetrics serves the coordinator's families in the Prometheus
// text exposition format.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := obs.WriteProm(&buf, c.PromFamilies()); err != nil {
		writeErr(w, server.Errf(server.CodeInternal, "rendering metrics: %v", err))
		return
	}
	w.Header().Set("Content-Type", promContentType)
	w.Write(buf.Bytes())
}

// handleTraces serves the finished-trace ring; a structured not_found
// envelope when the coordinator was built without a tracer.
func (c *Coordinator) handleTraces(w http.ResponseWriter, r *http.Request) {
	if c.tracer == nil {
		writeErr(w, server.Errf(server.CodeNotFound, "tracing is not enabled on this coordinator"))
		return
	}
	c.tracer.TracesHandler().ServeHTTP(w, r)
}
