package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"primecache/internal/cache"
	"primecache/internal/client"
	"primecache/internal/persist"
	"primecache/internal/server"
	"primecache/internal/trace"
)

const testAdminToken = "test-admin-token"

// persistBackend boots one vcached node with its own disk tier.
func persistBackend(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	store, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{Persist: store})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func adminJob(i int) server.SimulateRequest {
	return server.SimulateRequest{
		Cache:   cache.Spec{Kind: "prime", C: 13},
		Pattern: trace.Pattern{Name: "strided", Stride: int64(3 + 2*i), N: 256, Stream: 1},
	}
}

func TestAdminAuth(t *testing.T) {
	lc, err := StartLocal(2, server.Options{}, Options{ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	// No token configured: the admin surface does not exist.
	cl := client.New(lc.URL(), client.WithAdminToken(testAdminToken))
	defer cl.Close()
	_, err = cl.AdminBackends(context.Background())
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Code != server.CodeNotFound {
		t.Fatalf("admin list on token-less coordinator: err = %v, want not_found", err)
	}

	lc2, err := StartLocal(2, server.Options{}, Options{ProbeInterval: -1, HedgeAfter: -1, AdminToken: testAdminToken})
	if err != nil {
		t.Fatal(err)
	}
	defer lc2.Close()

	// Wrong (and missing) credentials: unauthorized.
	for _, bad := range []*client.Client{
		client.New(lc2.URL(), client.WithAdminToken("wrong")),
		client.New(lc2.URL()),
	} {
		_, err = bad.AdminBackends(context.Background())
		if !errors.As(err, &ce) || ce.Code != server.CodeUnauthorized {
			t.Fatalf("bad credential: err = %v, want unauthorized", err)
		}
		bad.Close()
	}

	// The right token lists the membership.
	good := client.New(lc2.URL(), client.WithAdminToken(testAdminToken))
	defer good.Close()
	view, err := good.AdminBackends(context.Background())
	if err != nil {
		t.Fatalf("authorized list: %v", err)
	}
	if len(view.Backends) != 2 || view.VirtualNodes != DefaultVirtualNodes || view.RingVersion != 0 {
		t.Fatalf("unexpected membership view: %+v", view)
	}
	for _, b := range view.Backends {
		if !b.Healthy {
			t.Fatalf("backend %s not healthy in fresh cluster: %+v", b.URL, view)
		}
	}
}

// TestAdminJoinMigratesWarmState is the tentpole end to end: warm a
// 2-node cluster through real traffic, join a third node, and prove
// the coordinator moved the joiner's shard onto it before routing
// flipped — the joiner answers a migrated job memoized, from disk,
// with zero pool work.
func TestAdminJoinMigratesWarmState(t *testing.T) {
	var backends []string
	for i := 0; i < 2; i++ {
		_, ts := persistBackend(t)
		backends = append(backends, ts.URL)
	}
	coord, err := New(Options{Backends: backends, ProbeInterval: -1, HedgeAfter: -1, AdminToken: testAdminToken})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()
	cl := client.New(cts.URL, client.WithAdminToken(testAdminToken))
	defer cl.Close()

	// Warm the cluster: every computed job lands in its owner's disk
	// tier. Remember each job by its canonical key for the probe below.
	jobByKey := map[string]server.SimulateRequest{}
	var sweep server.SweepRequest
	for i := 0; i < 48; i++ {
		req := adminJob(i)
		jobByKey[server.SweepJob{Simulate: &req}.Key()] = req
		sweep.Jobs = append(sweep.Jobs, server.SweepJob{Simulate: &req})
	}
	results, err := cl.Sweep(context.Background(), sweep)
	if err != nil {
		t.Fatalf("warming sweep: %v", err)
	}
	for _, sr := range results {
		if sr.Error != "" {
			t.Fatalf("warming job %d failed: %s", sr.Index, sr.Error)
		}
	}

	joinSrv, joinTS := persistBackend(t)
	res, err := cl.AdminJoin(context.Background(), joinTS.URL)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if res.RingVersion != 1 {
		t.Errorf("ring version after join = %d, want 1", res.RingVersion)
	}
	if len(res.Backends) != 3 {
		t.Errorf("membership after join = %v, want 3 backends", res.Backends)
	}
	if res.MigratedKeys == 0 {
		t.Fatal("join migrated zero keys from a warmed cluster")
	}
	if res.MigrationErrors != 0 {
		t.Errorf("join reported %d migration errors", res.MigrationErrors)
	}

	// Every key the joiner now holds must be one it owns on the new
	// ring, and the joiner must answer it memoized without pool work.
	ring := coord.Ring()
	if !ring.Has(joinTS.URL) {
		t.Fatal("joiner missing from the swapped ring")
	}
	probed := 0
	pool0 := joinSrv.Metrics().Counter("pool.completed").Value()
	jcl := client.New(joinTS.URL, client.WithRetries(0))
	defer jcl.Close()
	for key, req := range jobByKey {
		if ring.Primary(key) != joinTS.URL {
			continue
		}
		if !joinSrv.Persist().Has(key) {
			t.Fatalf("joiner owns key %s but migration did not deliver it", key)
		}
		out, err := jcl.Simulate(context.Background(), req)
		if err != nil {
			t.Fatalf("probing joiner for %s: %v", key, err)
		}
		if !out.Memoized {
			t.Fatalf("joiner answered its migrated key %s unmemoized", key)
		}
		probed++
	}
	if probed == 0 {
		t.Fatal("joiner captured none of the warmed keys; distribution tests should make this impossible")
	}
	if pool1 := joinSrv.Metrics().Counter("pool.completed").Value(); pool1 != pool0 {
		t.Errorf("joiner burned %d pool jobs answering migrated keys, want 0", pool1-pool0)
	}
}

func TestAdminLeaveDrainsAndMigrates(t *testing.T) {
	var backends []string
	var servers []*server.Server
	for i := 0; i < 3; i++ {
		srv, ts := persistBackend(t)
		backends = append(backends, ts.URL)
		servers = append(servers, srv)
	}
	coord, err := New(Options{Backends: backends, Replicas: 3, ProbeInterval: -1, HedgeAfter: -1, AdminToken: testAdminToken})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()
	cl := client.New(cts.URL, client.WithAdminToken(testAdminToken))
	defer cl.Close()

	var sweep server.SweepRequest
	keys := make([]string, 0, 48)
	for i := 0; i < 48; i++ {
		req := adminJob(i)
		keys = append(keys, server.SweepJob{Simulate: &req}.Key())
		sweep.Jobs = append(sweep.Jobs, server.SweepJob{Simulate: &req})
	}
	if _, err := cl.Sweep(context.Background(), sweep); err != nil {
		t.Fatalf("warming sweep: %v", err)
	}

	leaver := backends[0]
	wasOwned := 0
	for _, k := range keys {
		if coord.Ring().Primary(k) == leaver {
			wasOwned++
		}
	}
	res, err := cl.AdminLeave(context.Background(), leaver)
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	if !res.Drained {
		t.Error("leave reported an un-drained removal on an idle cluster")
	}
	if len(res.Backends) != 2 {
		t.Errorf("membership after leave = %v, want 2 backends", res.Backends)
	}
	if res.RingVersion != 1 {
		t.Errorf("ring version after leave = %d, want 1", res.RingVersion)
	}
	if wasOwned > 0 && res.MigratedKeys == 0 {
		t.Errorf("leaver owned %d warmed keys but the leave migrated none", wasOwned)
	}
	if coord.Ring().Has(leaver) {
		t.Fatal("departed backend still on the ring")
	}

	// The departed backend's shard must answer from its new owners —
	// memoized, since the leave migrated the records out.
	for i := 0; i < 48; i++ {
		req := adminJob(i)
		key := server.SweepJob{Simulate: &req}.Key()
		out, err := cl.Simulate(context.Background(), req)
		if err != nil {
			t.Fatalf("post-leave job %d: %v", i, err)
		}
		if !out.Memoized {
			t.Errorf("post-leave repeat of key %s recomputed; warm state was lost", key)
		}
	}

	// A double leave is rejected cleanly.
	var ce *client.Error
	if _, err := cl.AdminLeave(context.Background(), leaver); !errors.As(err, &ce) || ce.Code != server.CodeInvalidRequest {
		t.Fatalf("second leave: err = %v, want invalid_request", err)
	}
}

// TestRingSwapNeverUnavailable hammers the coordinator with zero-retry
// traffic while the membership churns through repeated join/leave
// cycles. The atomic ring swap plus per-request ring capture must keep
// every request servable: no request may ever observe
// upstream_unavailable (or any other error) because the ring changed
// under it.
func TestRingSwapNeverUnavailable(t *testing.T) {
	lc, err := StartLocal(2, server.Options{}, Options{ProbeInterval: -1, HedgeAfter: -1, AdminToken: testAdminToken})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	extraSrv := server.New(server.Options{})
	extraTS := httptest.NewServer(extraSrv.Handler())
	defer extraTS.Close()
	defer extraSrv.Close()

	stop := make(chan struct{})
	var firstErr atomic.Value
	var requests atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := client.New(lc.URL(), client.WithRetries(0))
			defer cl.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := adminJob((w*31 + i) % 24)
				if _, err := cl.Simulate(context.Background(), req); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("worker %d request %d: %w", w, i, err))
					return
				}
				requests.Add(1)
			}
		}(w)
	}

	acl := client.New(lc.URL(), client.WithAdminToken(testAdminToken))
	defer acl.Close()
	const cycles = 5
	for i := 0; i < cycles; i++ {
		if _, err := acl.AdminJoin(context.Background(), extraTS.URL); err != nil {
			t.Fatalf("cycle %d join: %v", i, err)
		}
		if _, err := acl.AdminLeave(context.Background(), extraTS.URL); err != nil {
			t.Fatalf("cycle %d leave: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if err := firstErr.Load(); err != nil {
		t.Fatalf("request failed during ring churn: %v", err)
	}
	if v := lc.Coordinator.RingVersion(); v != 2*cycles {
		t.Errorf("ring version = %d after %d swaps", v, 2*cycles)
	}
	if requests.Load() == 0 {
		t.Error("no requests completed during the churn window")
	}
	t.Logf("churn survived: %d zero-retry requests across %d ring swaps", requests.Load(), 2*cycles)
}
