package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"primecache/internal/client"
	"primecache/internal/obs"
	"primecache/internal/server"
	"primecache/internal/sim"
)

// Options configures a Coordinator.
type Options struct {
	// Backends are the vcached base URLs behind the coordinator.
	Backends []string
	// VirtualNodes is the per-backend ring point count; <= 0 selects
	// DefaultVirtualNodes.
	VirtualNodes int
	// Replicas is how many distinct backends a job may be tried on
	// (primary plus failovers); <= 0 selects 2, values beyond the
	// backend count are clamped.
	Replicas int
	// ProbeInterval is the active health-check period; 0 selects 2s,
	// < 0 disables the background loop (CheckNow still works).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one readiness probe; 0 selects 1s.
	ProbeTimeout time.Duration
	// HedgeAfter is the floor on the hedge delay for single-job calls:
	// when the primary has not answered after max(HedgeAfter, its
	// observed HedgeQuantile latency), the request is also fired at the
	// next replica and the first success wins. 0 selects 50ms, < 0
	// disables hedging.
	HedgeAfter time.Duration
	// HedgeQuantile is the per-backend latency quantile priced into the
	// hedge delay; 0 selects 0.95.
	HedgeQuantile float64
	// MaxInflight caps concurrently admitted requests at the
	// coordinator — its own admission valve, in front of the backends'.
	// 0 selects 256; < 0 disables the valve.
	MaxInflight int
	// RequestTimeout bounds one proxied request end to end, including
	// failover attempts; 0 selects 2 minutes, < 0 disables.
	RequestTimeout time.Duration
	// ClientOptions apply to every backend client. The coordinator owns
	// retry policy (failover across replicas), so per-backend clients
	// default to zero retries.
	ClientOptions []client.Option
	// Clock is the time source behind the readiness-probe ticker, hedge
	// timers, and per-backend latency histograms; nil selects the real
	// clock. Simulation tests inject a sim.Virtual clock.
	Clock sim.Clock
	// Tracer, when non-nil, roots a trace per proxied request and spans
	// every backend call and scatter-gather leg; the trace ID rides the
	// X-Vcache-Trace header so backend spans stitch under the
	// coordinator's. Finished traces are served at /v1/debug/traces.
	Tracer *obs.Tracer
	// DropRescatter is a test-only fault: instead of re-scattering a
	// failed sub-sweep to the next replica, the coordinator silently
	// drops the group. It exists so the chaos harness can prove its
	// no-lost-jobs invariant actually trips on a failover bug; nothing
	// outside a test may set it.
	DropRescatter bool
	// AdminToken, when non-empty, enables the /v1/admin membership API,
	// gated by this bearer token. Empty keeps the admin surface off
	// (requests answer not_found).
	AdminToken string
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Replicas > len(o.Backends) {
		o.Replicas = len(o.Backends)
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 50 * time.Millisecond
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0.95
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 256
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 2 * time.Minute
	}
	return o
}

// backendState is one backend as the coordinator sees it: its client
// plus the gauges /v1/stats reports.
type backendState struct {
	url      string
	client   *client.Client
	requests server.Counter
	failures server.Counter
	inflight server.Gauge
	latency  server.Histogram
}

// Coordinator fronts a set of vcached backends: it routes /v1/simulate
// and /v1/model by canonical job key over a consistent-hash ring,
// scatters /v1/sweep batches across healthy backends and gathers the
// results back in input order, and fails jobs over to the next ring
// replica when a backend dies, drains, or sheds.
type Coordinator struct {
	opts   Options
	clock  sim.Clock
	tracer *obs.Tracer
	health *health
	mux    *http.ServeMux

	// Membership. The ring is copy-on-write: a membership change builds
	// a whole new Ring and swaps the pointer under memberMu, so a
	// request that captured the old ring keeps routing on a consistent
	// view while new requests see the new one. adminMu serializes
	// join/leave end to end (migration included) without holding
	// memberMu, so routing never blocks on a migration.
	adminMu     sync.Mutex
	memberMu    sync.RWMutex
	ring        *Ring
	ringVersion uint64
	backends    map[string]*backendState

	// Admission valve: nil when disabled.
	slots chan struct{}
	shed  server.Counter

	hedges   server.Counter
	reroutes server.Counter
	requests server.Counter

	// Membership-change counters, surfaced in /v1/stats and /metrics.
	joins           server.Counter
	leaves          server.Counter
	migratedKeys    server.Counter
	migratedBytes   server.Counter
	migrationErrors server.Counter
}

// New builds a Coordinator over opts.Backends and runs one synchronous
// round of health checks before returning, so the first request already
// routes around a dead backend. Stop with Close.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	ring, err := NewRing(opts.Backends, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:     opts,
		clock:    sim.Or(opts.Clock),
		tracer:   opts.Tracer,
		ring:     ring,
		backends: make(map[string]*backendState, len(opts.Backends)),
		mux:      http.NewServeMux(),
	}
	for _, u := range opts.Backends {
		copts := append([]client.Option{client.WithRetries(0)}, opts.ClientOptions...)
		c.backends[u] = &backendState{url: u, client: client.New(u, copts...)}
	}
	if opts.MaxInflight > 0 {
		c.slots = make(chan struct{}, opts.MaxInflight)
	}
	c.health = newHealth(opts.Backends, c.probeBackend, opts.ProbeInterval, opts.ProbeTimeout, c.clock)
	ctx, cancel := context.WithTimeout(context.Background(), opts.ProbeTimeout+time.Second)
	c.health.CheckNow(ctx)
	cancel()
	c.health.start()

	c.mux.HandleFunc("POST /v1/simulate", c.traced("coord.simulate", c.handleSimulate))
	c.mux.HandleFunc("POST /v1/model", c.traced("coord.model", c.handleModel))
	c.mux.HandleFunc("POST /v1/sweep", c.traced("coord.sweep", c.handleSweep))
	c.mux.HandleFunc("GET /v1/healthz", c.tracedLive("healthz", c.handleHealthz))
	c.mux.HandleFunc("GET /v1/readyz", c.tracedLive("readyz", c.handleReadyz))
	c.mux.HandleFunc("GET /v1/stats", c.tracedLive("stats", c.handleStats))
	c.mux.HandleFunc("GET /metrics", c.tracedLive("metrics", c.handleMetrics))
	c.mux.HandleFunc("GET /v1/debug/traces", c.tracedLive("traces", c.handleTraces))
	c.mux.HandleFunc("GET /v1/admin/backends", c.tracedLive("admin.list", c.requireAdmin(c.handleAdminList)))
	c.mux.HandleFunc("POST /v1/admin/backends", c.traced("admin.join", c.requireAdmin(c.handleAdminJoin)))
	c.mux.HandleFunc("DELETE /v1/admin/backends", c.traced("admin.leave", c.requireAdmin(c.handleAdminLeave)))
	return c, nil
}

// traced wraps a proxied-compute handler with the edge span of its
// trace: the local root when the request arrives bare, a remote child
// when it carries the propagation header. The span's context rides the
// request so every backend call beneath stitches under it.
func (c *Coordinator) traced(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c.tracer == nil {
			h(w, r)
			return
		}
		ctx := r.Context()
		var span *obs.Span
		if tid, sid, ok := obs.ParseHeader(r.Header.Get(obs.Header)); ok {
			ctx, span = c.tracer.StartRemoteSpan(ctx, name, tid, sid)
		} else {
			ctx, span = c.tracer.StartSpan(ctx, name)
		}
		h(w, r.WithContext(ctx))
		span.End()
	}
}

// tracedLive marks a probe/observability handler as deliberately
// untraced: scrapes and health probes arrive every few seconds and
// would churn the ring with single-span traces. The wrapper exists so
// every route registration goes through a span-policy wrapper, which
// the obscheck lint enforces.
func (c *Coordinator) tracedLive(_ string, h http.HandlerFunc) http.HandlerFunc {
	return h
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Ring returns the current routing ring (read-only; a membership
// change swaps in a new one).
func (c *Coordinator) Ring() *Ring { return c.currentRing() }

// RingVersion counts atomic ring swaps since boot.
func (c *Coordinator) RingVersion() uint64 {
	c.memberMu.RLock()
	defer c.memberMu.RUnlock()
	return c.ringVersion
}

// currentRing snapshots the routing ring. Handlers capture it once per
// request: in-flight work (sweep legs included) finishes against the
// ring it started on while new requests route on the new one.
func (c *Coordinator) currentRing() *Ring {
	c.memberMu.RLock()
	defer c.memberMu.RUnlock()
	return c.ring
}

// backendFor returns backend's live state, nil when it has been
// removed (a request routed on an old ring may still name it).
func (c *Coordinator) backendFor(backend string) *backendState {
	c.memberMu.RLock()
	defer c.memberMu.RUnlock()
	return c.backends[backend]
}

// CheckHealth runs one synchronous round of readiness probes.
func (c *Coordinator) CheckHealth(ctx context.Context) { c.health.CheckNow(ctx) }

// Close stops the health checker and releases the backend clients'
// idle connections.
func (c *Coordinator) Close() {
	c.health.close()
	c.memberMu.RLock()
	defer c.memberMu.RUnlock()
	for _, b := range c.backends {
		b.client.Close()
	}
}

// probeBackend is the active health check: one readyz round trip. The
// readyz body also carries the backend's warm-key count (memo plus
// persist tier), which feeds the warm-replica preference in
// candidates().
func (c *Coordinator) probeBackend(ctx context.Context, backend string) (ready, draining bool, warmKeys int) {
	b := c.backendFor(backend)
	if b == nil {
		return false, false, 0 // removed while a probe was in flight
	}
	rz, err := b.client.Readyz(ctx)
	if rz != nil {
		warmKeys = rz.WarmKeys
	}
	if err != nil {
		return false, rz != nil && rz.Draining, warmKeys
	}
	return true, false, warmKeys
}

// admit claims a coordinator admission slot; on overload it writes the
// 429 envelope and returns false.
func (c *Coordinator) admit(w http.ResponseWriter) (release func(), ok bool) {
	c.requests.Inc()
	if c.slots == nil {
		return func() {}, true
	}
	select {
	case c.slots <- struct{}{}:
		return func() { <-c.slots }, true
	default:
		c.shed.Inc()
		ae := server.Errf(server.CodeOverloaded, "cluster: coordinator at capacity (%d in flight)", cap(c.slots))
		ae.RetryAfterMs = 250
		writeErr(w, ae)
		return nil, false
	}
}

// pressure returns coordinator admission occupancy in [0, 1].
func (c *Coordinator) pressure() float64 {
	if c.slots == nil {
		return 0
	}
	return float64(len(c.slots)) / float64(cap(c.slots))
}

// requestCtx applies the coordinator's end-to-end timeout.
func (c *Coordinator) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if c.opts.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), c.opts.RequestTimeout)
}

// candidates returns the backends to try for key, in order: the ring's
// replica sequence with excluded members removed and healthy backends
// first. A healthy ring primary keeps its position — that is where the
// job's memo entry lives — but the failover tail is re-ordered
// warmest-first by each backend's last reported warm-key count, so a
// re-scatter prefers a replica whose memo or persist tier can likely
// answer without recomputing. When the primary itself is down or
// excluded, every healthy replica is a failover target and the whole
// healthy run is warm-sorted. The sort is stable: equal warmth
// preserves ring order, keeping routing deterministic. Unhealthy
// replicas stay at the tail as a last resort — when every replica
// looks down, trying one anyway is how the cluster recovers before the
// next probe.
func (c *Coordinator) candidates(ring *Ring, key string, excluded map[string]bool) []*backendState {
	urls := ring.Replicas(key, c.opts.Replicas)
	var healthy, down []*backendState
	for _, u := range urls {
		if excluded[u] {
			continue
		}
		b := c.backendFor(u)
		if b == nil {
			continue // removed after this request captured its ring
		}
		if c.health.healthy(u) {
			healthy = append(healthy, b)
		} else {
			down = append(down, b)
		}
	}
	if len(healthy) > 1 {
		tail := healthy
		if tail[0].url == urls[0] {
			tail = tail[1:]
		}
		sort.SliceStable(tail, func(i, j int) bool {
			return c.health.warm(tail[i].url) > c.health.warm(tail[j].url)
		})
	}
	return append(healthy, down...)
}

// retryable reports whether err could succeed on another replica:
// typed temporary API errors and transport failures can; validation
// errors and the caller's own context ending cannot.
func retryable(err error) bool {
	var ce *client.Error
	if errors.As(err, &ce) {
		return ce.Temporary()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true // transport-level failure
}

// noteFailure updates passive health from one failed call.
func (c *Coordinator) noteFailure(b *backendState, err error) {
	var ce *client.Error
	if errors.As(err, &ce) {
		if ce.Code == server.CodeShuttingDown {
			c.health.reportDraining(b.url)
		}
		return // an API answer means the backend is alive
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	c.health.reportFailure(b.url)
}

// hedgeDelay prices the hedge trigger for b: its observed HedgeQuantile
// latency once enough samples exist, floored by HedgeAfter and capped
// at 2s. Zero means hedging is off.
func (c *Coordinator) hedgeDelay(b *backendState) time.Duration {
	if c.opts.HedgeAfter < 0 {
		return 0
	}
	d := c.opts.HedgeAfter
	snap := b.latency.Snapshot()
	if snap.Count >= 16 {
		if q := time.Duration(snap.QuantileUs(c.opts.HedgeQuantile)) * time.Microsecond; q > d {
			d = q
		}
	}
	if max := 2 * time.Second; d > max {
		d = max
	}
	return d
}

// callBackend runs one client call against b with the per-backend
// bookkeeping every path shares.
func (c *Coordinator) callBackend(b *backendState, fn func() error) error {
	b.requests.Inc()
	b.inflight.Inc()
	start := c.clock.Now()
	err := fn()
	b.latency.Observe(c.clock.Since(start))
	b.inflight.Dec()
	if err != nil {
		b.failures.Inc()
	}
	return err
}

// runSingle executes one simulate/model job: try the key's replicas in
// ring order, hedging the primary after its latency quantile and
// failing over on any retryable error. The first success wins; losers
// are cancelled.
func (c *Coordinator) runSingle(ctx context.Context, ring *Ring, key string, do func(ctx context.Context, cl *client.Client) (any, error)) (any, error) {
	cands := c.candidates(ring, key, nil)
	if len(cands) == 0 {
		return nil, server.Errf(server.CodeUnavailable, "cluster: no backend available for job")
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attempt struct {
		v   any
		err error
		b   *backendState
	}
	results := make(chan attempt, len(cands))
	launched := 0
	launch := func() {
		b := cands[launched]
		idx := launched
		launched++
		go func() {
			// One span per backend attempt; attempt > 0 means a hedge
			// or a failover, and the shared trace ID is what lets the
			// chaos harness prove failover hops stay in one trace.
			cctx, span := obs.Start(actx, "call",
				obs.String("backend", b.url), obs.Int("attempt", idx))
			var v any
			err := c.callBackend(b, func() error {
				var err error
				v, err = do(cctx, b.client)
				return err
			})
			span.SetAttr("ok", strconv.FormatBool(err == nil))
			span.End()
			results <- attempt{v: v, err: err, b: b}
		}()
	}
	launch()

	var hedgeC <-chan time.Time
	if d := c.hedgeDelay(cands[0]); d > 0 && len(cands) > 1 {
		t := c.clock.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	pending := 1
	var lastErr error
	for {
		select {
		case a := <-results:
			pending--
			if a.err == nil {
				return a.v, nil
			}
			lastErr = a.err
			c.noteFailure(a.b, a.err)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if !retryable(a.err) {
				return nil, a.err
			}
			if launched < len(cands) {
				c.reroutes.Inc()
				launch()
				pending++
			}
			if pending == 0 {
				return nil, unavailableErr(lastErr)
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(cands) {
				c.hedges.Inc()
				launch()
				pending++
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// unavailableErr wraps the last per-replica error once every replica
// has failed.
func unavailableErr(last error) *server.APIError {
	msg := "no replica could serve the job"
	var ce *client.Error
	if errors.As(last, &ce) {
		msg = fmt.Sprintf("every replica failed, last: %s: %s", ce.Code, ce.Message)
	} else if last != nil {
		msg = "every replica failed, last: " + last.Error()
	}
	return server.Errf(server.CodeUnavailable, "cluster: %s", msg)
}

// apiErrorFrom maps any proxied-call error to the envelope the
// coordinator's own client-facing response carries.
func apiErrorFrom(err error) *server.APIError {
	var ae *server.APIError
	if errors.As(err, &ae) {
		return ae
	}
	var ce *client.Error
	if errors.As(err, &ce) {
		out := server.Errf(ce.Code, "%s", ce.Message)
		out.RetryAfterMs = ce.RetryAfter.Milliseconds()
		return out
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return server.Errf(server.CodeTimeout, "request timed out")
	case errors.Is(err, context.Canceled):
		return server.Errf(server.CodeCancelled, "request cancelled")
	default:
		return server.Errf(server.CodeUnavailable, "cluster: %v", err)
	}
}

// writeJSON and writeErr mirror the server's response formatting so a
// coordinator answers byte-compatibly with a single node.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	ae := apiErrorFrom(err)
	if ae.RetryAfterMs > 0 {
		secs := (ae.RetryAfterMs + 999) / 1000
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	writeJSON(w, ae.Code.HTTPStatus(), server.ErrorEnvelope{Error: ae})
}

// decodeJSON strictly decodes a request body, like the server does.
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return server.Errf(server.CodeInvalidRequest, "decoding request: %v", err)
	}
	if dec.More() {
		return server.Errf(server.CodeInvalidRequest, "trailing data after JSON body")
	}
	return nil
}

func (c *Coordinator) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req server.SimulateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	release, ok := c.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := c.requestCtx(r)
	defer cancel()
	key := server.SweepJob{Simulate: &req}.Key()
	v, err := c.runSingle(ctx, c.currentRing(), key, func(ctx context.Context, cl *client.Client) (any, error) {
		return cl.Simulate(ctx, req)
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	res := v.(*client.SimulateResult)
	writeConditional(w, r, res.ETag, res.Memoized, res)
}

func (c *Coordinator) handleModel(w http.ResponseWriter, r *http.Request) {
	var req server.ModelRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	release, ok := c.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := c.requestCtx(r)
	defer cancel()
	key := server.SweepJob{Model: &req}.Key()
	v, err := c.runSingle(ctx, c.currentRing(), key, func(ctx context.Context, cl *client.Client) (any, error) {
		return cl.Model(ctx, req)
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	res := v.(*client.ModelResult)
	writeConditional(w, r, res.ETag, res.Memoized, res)
}

// writeConditional echoes the backend's strong validator at the edge:
// ETags are derived from the canonical job key and deterministic
// result, so they match across backends and restarts, and the
// coordinator can answer If-None-Match itself without re-serializing a
// body. On 304 the memoized verdict rides the X-Vcached-Memoized
// header, exactly as a single node answers.
func writeConditional(w http.ResponseWriter, r *http.Request, etag string, memoized bool, body any) {
	if etag != "" {
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && server.ETagMatch(inm, etag) {
			w.Header().Set(server.MemoizedHeader, strconv.FormatBool(memoized))
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz: the coordinator is ready while at least one backend
// is. warm_keys aggregates the healthy backends' reported warm working
// sets — the cluster's routable warmth.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	warm := c.health.warmKeysTotal()
	if c.health.healthyCount() == 0 {
		writeJSON(w, http.StatusServiceUnavailable, server.ReadyzResponse{Status: "no healthy backends", WarmKeys: warm})
		return
	}
	writeJSON(w, http.StatusOK, server.ReadyzResponse{Status: "ok", WarmKeys: warm})
}

// BackendStats is one backend's row in the coordinator's /v1/stats.
type BackendStats struct {
	URL string `json:"url"`
	BackendHealth
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
	Inflight int64  `json:"inflight"`
	// P95Us is the observed 95th-percentile latency upper bound (µs) —
	// the quantity hedge delays are priced from.
	P95Us   int64                    `json:"p95Us"`
	Latency server.HistogramSnapshot `json:"latency"`
}

// StatsResponse is the coordinator's /v1/stats body. Schema 2 shapes
// the memo, persist, admission, and partial blocks identically to the
// single-node server's — aggregated across healthy backends — so one
// dashboard works against either tier. The cluster routing block and
// per-backend rows are the coordinator's tier-specific extras, just as
// pool stats are the server's.
type StatsResponse struct {
	Schema  int `json:"schema"`
	Cluster struct {
		Backends     int    `json:"backends"`
		Healthy      int    `json:"healthy"`
		Replicas     int    `json:"replicas"`
		RingPoints   int    `json:"ringPoints"`
		RingModulus  int64  `json:"ringModulus"`
		VirtualNodes int    `json:"virtualNodes"`
		WarmKeys     int    `json:"warmKeys"`
		RingVersion  uint64 `json:"ringVersion"`
	} `json:"cluster"`
	// Memo, Persist, and Partial sum the healthy backends' blocks;
	// backends that fail the (bounded) stats fan-out are skipped rather
	// than failing the whole endpoint.
	Memo    server.MemoBlock    `json:"memo"`
	Persist server.PersistBlock `json:"persist"`
	Partial server.PartialBlock `json:"partial"`
	// Admission is the coordinator's own valve, in front of the
	// backends' per-node admission control; Degraded sums the backends'
	// degraded-answer counters (the coordinator itself never degrades).
	Admission struct {
		Capacity int     `json:"capacity"`
		Queued   int     `json:"queued"`
		Shed     uint64  `json:"shed"`
		Degraded uint64  `json:"degraded"`
		Pressure float64 `json:"pressure"`
	} `json:"admission"`
	Requests uint64 `json:"requests"`
	Hedges   uint64 `json:"hedges"`
	Reroutes uint64 `json:"reroutes"`
	// Membership counts completed membership changes and the warm-state
	// records they moved.
	Membership struct {
		Joins           uint64 `json:"joins"`
		Leaves          uint64 `json:"leaves"`
		MigratedKeys    uint64 `json:"migratedKeys"`
		MigratedBytes   uint64 `json:"migratedBytes"`
		MigrationErrors uint64 `json:"migrationErrors"`
	} `json:"membership"`
	Backends []BackendStats `json:"backends"`
}

// statsFanoutTimeout bounds the per-backend stats collection behind the
// coordinator's /v1/stats; a slow backend costs at most this much and
// is then reported with zeroed aggregate contribution.
const statsFanoutTimeout = time.Second

// aggregateBackendStats fans /v1/stats out to the healthy backends and
// sums the uniform schema-2 blocks.
func (c *Coordinator) aggregateBackendStats(ctx context.Context) (memo server.MemoBlock, per server.PersistBlock, part server.PartialBlock, degraded uint64) {
	ctx, cancel := context.WithTimeout(ctx, statsFanoutTimeout)
	defer cancel()
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, u := range c.currentRing().Backends() {
		if !c.health.healthy(u) {
			continue
		}
		b := c.backendFor(u)
		if b == nil {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			v2, err := b.client.StatsV2(ctx)
			if err != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			memo.Hits += v2.Memo.Hits
			memo.Misses += v2.Memo.Misses
			memo.Evictions += v2.Memo.Evictions
			memo.Entries += v2.Memo.Entries
			memo.Capacity += v2.Memo.Capacity
			if v2.Persist.Enabled {
				per.Enabled = true
			}
			per.Keys += v2.Persist.Keys
			per.Segments += v2.Persist.Segments
			per.DiskBytes += v2.Persist.DiskBytes
			per.DeadBytes += v2.Persist.DeadBytes
			per.Hits += v2.Persist.Hits
			per.Misses += v2.Persist.Misses
			per.BytesAppended += v2.Persist.BytesAppended
			per.SegmentsCreated += v2.Persist.SegmentsCreated
			per.Compactions += v2.Persist.Compactions
			per.CorruptRecords += v2.Persist.CorruptRecords
			per.TornTruncations += v2.Persist.TornTruncations
			per.IOErrors += v2.Persist.IOErrors
			per.EvictedKeys += v2.Persist.EvictedKeys
			if v2.Persist.SnapshotRestore {
				per.SnapshotRestore = true
			}
			part.CancelledJobs += v2.Partial.CancelledJobs
			part.RefsCompleted += v2.Partial.RefsCompleted
			degraded += v2.Admission.Degraded
		}()
	}
	wg.Wait()
	if total := memo.Hits + memo.Misses; total > 0 {
		memo.HitRatio = float64(memo.Hits) / float64(total)
	}
	return memo, per, part, degraded
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	ring := c.currentRing()
	var resp StatsResponse
	resp.Schema = server.StatsSchemaVersion
	resp.Cluster.Backends = len(ring.Backends())
	resp.Cluster.Healthy = c.health.healthyCount()
	resp.Cluster.Replicas = c.opts.Replicas
	resp.Cluster.RingPoints = ring.Points()
	resp.Cluster.RingModulus = RingModulus
	resp.Cluster.VirtualNodes = ring.VirtualNodes()
	resp.Cluster.WarmKeys = c.health.warmKeysTotal()
	resp.Cluster.RingVersion = c.RingVersion()
	resp.Memo, resp.Persist, resp.Partial, resp.Admission.Degraded = c.aggregateBackendStats(r.Context())
	if c.slots != nil {
		resp.Admission.Capacity = cap(c.slots)
		resp.Admission.Queued = len(c.slots)
	}
	resp.Admission.Shed = c.shed.Value()
	resp.Admission.Pressure = c.pressure()
	resp.Requests = c.requests.Value()
	resp.Hedges = c.hedges.Value()
	resp.Reroutes = c.reroutes.Value()
	resp.Membership.Joins = c.joins.Value()
	resp.Membership.Leaves = c.leaves.Value()
	resp.Membership.MigratedKeys = c.migratedKeys.Value()
	resp.Membership.MigratedBytes = c.migratedBytes.Value()
	resp.Membership.MigrationErrors = c.migrationErrors.Value()
	hs := c.health.snapshot()
	for _, u := range ring.Backends() {
		b := c.backendFor(u)
		if b == nil {
			continue
		}
		snap := b.latency.Snapshot()
		resp.Backends = append(resp.Backends, BackendStats{
			URL:           u,
			BackendHealth: hs[u],
			Requests:      b.requests.Value(),
			Failures:      b.failures.Value(),
			Inflight:      b.inflight.Value(),
			P95Us:         snap.QuantileUs(0.95),
			Latency:       snap,
		})
	}
	server.SetDeprecationHeaders(w.Header().Set)
	writeJSON(w, http.StatusOK, resp)
}
