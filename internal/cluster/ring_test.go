package cluster

import (
	"fmt"
	"testing"
)

func testBackends(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8372", i+1)
	}
	return out
}

func testKeys(n int) []string {
	// Keys shaped like real job keys: structured, near-duplicate
	// strings — the population a weak hash would cluster.
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("simulate|prime:c=13|strided:stride=%d,n=4096|passes=2", 2*i+1)
	}
	return out
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate backend accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty backend name accepted")
	}
}

func TestRingDeterministicAndOrderInvariant(t *testing.T) {
	a, err := NewRing([]string{"x", "y", "z"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"z", "x", "y"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		if a.Primary(k) != b.Primary(k) {
			t.Fatalf("placement depends on construction order for %q: %s vs %s", k, a.Primary(k), b.Primary(k))
		}
	}
	if a.Points() != 3*DefaultVirtualNodes {
		t.Errorf("points = %d, want %d", a.Points(), 3*DefaultVirtualNodes)
	}
}

func TestRingSpreadsStructuredKeys(t *testing.T) {
	backends := testBackends(3)
	r, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(9000)
	for _, k := range keys {
		counts[r.Primary(k)]++
	}
	for _, b := range backends {
		frac := float64(counts[b]) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("backend %s owns %.1f%% of structured keys, want a reasonable spread (counts %v)", b, 100*frac, counts)
		}
	}
}

// TestRingConsistency is the consistent-hashing property: removing one
// backend must not move any key between the survivors.
func TestRingConsistency(t *testing.T) {
	backends := testBackends(4)
	full, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := backends[2]
	smaller, err := NewRing(append(append([]string{}, backends[:2]...), backends[3]), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range testKeys(4000) {
		was, now := full.Primary(k), smaller.Primary(k)
		if was == removed {
			moved++
			continue // its keys must move somewhere
		}
		if was != now {
			t.Fatalf("key %q moved %s → %s though its backend survived", k, was, now)
		}
	}
	if moved == 0 {
		t.Error("removed backend owned zero keys; distribution test should have caught this")
	}
}

// TestRingReplicas checks the failover sequence: distinct backends,
// primary first, deterministic, and exhaustive when n covers the ring.
func TestRingReplicas(t *testing.T) {
	backends := testBackends(4)
	r, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		reps := r.Replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("replicas(%q, 3) = %v", k, reps)
		}
		if reps[0] != r.Primary(k) {
			t.Fatalf("first replica %s is not the primary %s", reps[0], r.Primary(k))
		}
		seen := map[string]bool{}
		for _, b := range reps {
			if seen[b] {
				t.Fatalf("replica list repeats %s: %v", b, reps)
			}
			seen[b] = true
		}
		all := r.Replicas(k, 0)
		if len(all) != len(backends) {
			t.Fatalf("replicas(%q, 0) = %v, want all %d backends", k, all, len(backends))
		}
	}
}
