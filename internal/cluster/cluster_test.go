package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"primecache/internal/cache"
	"primecache/internal/client"
	"primecache/internal/server"
	"primecache/internal/sim"
	"primecache/internal/trace"
)

// sweep64 builds the acceptance batch: 64 distinct jobs across five
// cache organisations, varied strides and sizes, plus a band of model
// evaluations — every memo key unique so results carry no
// timing-dependent memoized flags.
func sweep64() server.SweepRequest {
	specs := []cache.Spec{
		{Kind: "prime", C: 13},
		{Kind: "direct", Lines: 8192},
		{Kind: "assoc", Lines: 8192, Ways: 4},
		{Kind: "skewed", Lines: 8192},
		{Kind: "victim", Lines: 8192},
	}
	var req server.SweepRequest
	for i := 0; i < 56; i++ {
		req.Jobs = append(req.Jobs, server.SweepJob{Simulate: &server.SimulateRequest{
			Cache:   specs[i%len(specs)],
			Pattern: trace.Pattern{Name: "strided", Stride: int64(3 + 2*i), N: 256 + 8*i, Stream: 1},
			Passes:  1 + i%3,
		}})
	}
	for i := 0; i < 8; i++ {
		req.Jobs = append(req.Jobs, server.SweepJob{Model: &server.ModelRequest{B: 512 << uint(i%4), Tm: 16 + 8*i}})
	}
	return req
}

// postSweep sends the batch raw and returns the response body bytes.
func postSweep(t *testing.T, url string, req server.SweepRequest) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweep: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, data)
	}
	return data
}

// TestClusterSweepMatchesSingleNode is the headline acceptance check: a
// 64-job sweep through a 3-node cluster must return a byte-identical
// response body — same job stats, same ordering, same wire format — as
// the same sweep against one standalone vcached.
func TestClusterSweepMatchesSingleNode(t *testing.T) {
	single := server.New(server.Options{})
	defer single.Close()
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()

	lc, err := StartLocal(3, server.Options{}, Options{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	req := sweep64()
	want := postSweep(t, sts.URL, req)
	got := postSweep(t, lc.URL(), req)
	if !bytes.Equal(want, got) {
		// Pinpoint the first divergence for the failure message.
		var w, g struct {
			Results []server.SweepResult `json:"results"`
		}
		if err := json.Unmarshal(want, &w); err != nil {
			t.Fatalf("single-node response undecodable: %v", err)
		}
		if err := json.Unmarshal(got, &g); err != nil {
			t.Fatalf("cluster response undecodable: %v\n%s", err, got)
		}
		if len(w.Results) != len(g.Results) {
			t.Fatalf("result counts differ: single %d, cluster %d", len(w.Results), len(g.Results))
		}
		for i := range w.Results {
			wj, _ := json.Marshal(w.Results[i])
			gj, _ := json.Marshal(g.Results[i])
			if !bytes.Equal(wj, gj) {
				t.Fatalf("job %d differs:\nsingle:  %s\ncluster: %s", i, wj, gj)
			}
		}
		t.Fatal("bodies differ only in framing — merge did not preserve single-node byte layout")
	}
	// Ordering is implied by byte equality, but assert it explicitly.
	var out struct {
		Results []server.SweepResult `json:"results"`
	}
	if err := json.Unmarshal(got, &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d; merge broke ordering", i, r.Index)
		}
		if r.Error != "" {
			t.Fatalf("job %d failed: %s (%s)", i, r.Error, r.ErrorCode)
		}
	}
	// The batch must actually have scattered: more than one backend saw
	// requests.
	busy := 0
	for _, b := range lc.Backends {
		if lc.Coordinator.backends[b.URL()].requests.Value() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("sweep touched %d backends, want scatter across ≥ 2", busy)
	}
}

// TestClusterFailoverMidSweep kills one backend while a 64-job sweep is
// in flight: every job must still succeed, rerouted to the dead
// backend's ring replica.
func TestClusterFailoverMidSweep(t *testing.T) {
	// The fault hook doubles as a synchronization point: every compute
	// announces itself, then blocks until the kill has landed. Once five
	// computes are in flight, at least three nodes are busy (two workers
	// each), so the victim is provably mid-sub-sweep when its
	// connections are severed — no wall-clock guessing.
	computing := make(chan struct{}, 256)
	release := make(chan struct{})
	node := server.Options{
		Workers: 2,
		Faults: func(stage string, _ uint64) server.Fault {
			if stage == "compute" {
				computing <- struct{}{}
				<-release
			}
			return server.Fault{}
		},
	}
	lc, err := StartLocal(3, node, Options{ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	// On any failure path, unblock the workers before lc.Close waits for
	// them (runs before the Close defer).
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()

	req := sweep64()
	done := make(chan []byte, 1)
	go func() {
		body, _ := json.Marshal(req)
		resp, err := http.Post(lc.URL()+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		done <- data
	}()

	for i := 0; i < 5; i++ {
		select {
		case <-computing:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d computes started; sweep never spread across the cluster", i)
		}
	}
	// Sever the victim's in-flight connections first (the sub-sweep on
	// it must fail), then finish the kill in the background: closing the
	// listener waits out handlers that are still blocked on release.
	lc.Backends[1].HTTP.CloseClientConnections()
	killed := make(chan struct{})
	go func() { defer close(killed); lc.Kill(1) }()
	defer func() { <-killed }()
	releaseOnce()

	data := <-done
	if data == nil {
		t.Fatal("sweep transport failed")
	}
	var out struct {
		Results []server.SweepResult `json:"results"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding sweep response: %v\n%s", err, data)
	}
	if len(out.Results) != len(req.Jobs) {
		t.Fatalf("got %d results for %d jobs", len(out.Results), len(req.Jobs))
	}
	for i, r := range out.Results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
		if r.Error != "" {
			t.Fatalf("job %d failed after failover: %s (%s)", i, r.Error, r.ErrorCode)
		}
		if r.Simulate == nil && r.Model == nil {
			t.Fatalf("job %d delivered empty result", i)
		}
	}
	// The victim was provably serving its sub-sweep when its connections
	// were cut, so the coordinator must have re-scattered that group.
	if lc.Coordinator.reroutes.Value() == 0 {
		t.Error("coordinator reports zero reroutes after a mid-sweep kill")
	}
}

// keyOnBackend builds a simulate request whose ring primary is the
// given backend URL.
func keyOnBackend(t *testing.T, r *Ring, url string) server.SimulateRequest {
	t.Helper()
	for n := 0; n < 10000; n++ {
		req := server.SimulateRequest{
			Cache:   cache.Spec{Kind: "prime", C: 13},
			Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 128 + n, Stream: 1},
		}
		if r.Primary(server.SweepJob{Simulate: &req}.Key()) == url {
			return req
		}
	}
	t.Fatal("no key found for backend; ring distribution broken")
	return server.SimulateRequest{}
}

// TestClusterRoutingMemoLocality checks shard stickiness: the same job
// key lands on the same backend, so the repeat is a memo hit, and
// exactly one backend ever sees the key.
func TestClusterRoutingMemoLocality(t *testing.T) {
	lc, err := StartLocal(3, server.Options{}, Options{ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	c := client.New(lc.URL(), client.WithRetries(0))
	req := server.SimulateRequest{Pattern: trace.Pattern{Name: "strided", Stride: 7, N: 2048}}
	first, err := c.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Memoized {
		t.Error("first request reported memoized")
	}
	second, err := c.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Memoized {
		t.Error("repeat of identical job not memoized — routing is not key-sticky")
	}
	touched := 0
	for _, b := range lc.Backends {
		if lc.Coordinator.backends[b.URL()].requests.Value() > 0 {
			touched++
		}
	}
	if touched != 1 {
		t.Errorf("identical job touched %d backends, want 1", touched)
	}
}

// TestClusterSingleJobFailover kills a job's primary and checks the
// coordinator reroutes the /v1/simulate to the next ring replica.
func TestClusterSingleJobFailover(t *testing.T) {
	lc, err := StartLocal(3, server.Options{}, Options{ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	victim := lc.Backends[0].URL()
	req := keyOnBackend(t, lc.Coordinator.ring, victim)
	lc.Kill(0)

	c := client.New(lc.URL(), client.WithRetries(0))
	res, err := c.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("simulate with dead primary: %v", err)
	}
	if res.Stats.Accesses == 0 {
		t.Error("empty stats from failover result")
	}
	if lc.Coordinator.reroutes.Value() == 0 {
		t.Error("failover left the reroute counter at zero")
	}
	if lc.Coordinator.health.healthy(victim) {
		t.Error("dead backend still marked healthy after passive failure")
	}
}

// TestClusterDrainingBackendRoutedAround checks the readiness
// integration: once a backend starts draining, one health-check round
// marks it out and later traffic avoids it entirely.
func TestClusterDrainingBackendRoutedAround(t *testing.T) {
	lc, err := StartLocal(3, server.Options{}, Options{ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	if err := lc.Backends[0].Server.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	lc.Coordinator.CheckHealth(context.Background())

	hs := lc.Coordinator.health.snapshot()[lc.Backends[0].URL()]
	if hs.Healthy || !hs.Draining {
		t.Fatalf("draining backend state = %+v, want unhealthy+draining", hs)
	}

	got := postSweep(t, lc.URL(), sweep64())
	var out struct {
		Results []server.SweepResult `json:"results"`
	}
	if err := json.Unmarshal(got, &out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if r.Error != "" {
			t.Fatalf("job %d failed against draining cluster: %s", i, r.Error)
		}
	}
	if n := lc.Coordinator.backends[lc.Backends[0].URL()].requests.Value(); n != 0 {
		t.Errorf("draining backend received %d requests, want 0", n)
	}
}

// TestClusterHedging stalls one backend indefinitely and checks a
// request whose primary it is gets hedged to the replica. The
// coordinator runs on a virtual clock: the hedge fires because the test
// advances time past the hedge delay, not because a wall-clock stall
// resolves — the primary never answers at all.
func TestClusterHedging(t *testing.T) {
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	slow := server.New(server.Options{
		Workers: 1,
		Faults: func(stage string, _ uint64) server.Fault {
			if stage == "compute" {
				<-release
			}
			return server.Fault{}
		},
	})
	defer slow.Close()
	defer releaseOnce()
	fast := server.New(server.Options{})
	defer fast.Close()
	slowTS := httptest.NewServer(slow.Handler())
	defer slowTS.Close()
	fastTS := httptest.NewServer(fast.Handler())
	defer fastTS.Close()

	vclk := sim.NewVirtual()
	coord, err := New(Options{
		Backends:      []string{slowTS.URL, fastTS.URL},
		ProbeInterval: -1,
		HedgeAfter:    20 * time.Millisecond,
		Clock:         vclk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	req := keyOnBackend(t, coord.ring, slowTS.URL)
	c := client.New(cts.URL, client.WithRetries(0))
	type outcome struct {
		res *client.SimulateResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := c.Simulate(context.Background(), req)
		done <- outcome{res, err}
	}()

	// The hedge timer is the only virtual waiter (the prober is off):
	// once it is armed the primary attempt is in flight and stalled, so
	// advancing past the delay must fire the replica.
	vclk.BlockUntil(1)
	vclk.Advance(20 * time.Millisecond)

	out := <-done
	if out.err != nil {
		t.Fatalf("hedged simulate: %v", out.err)
	}
	if out.res.Stats.Accesses == 0 {
		t.Error("empty stats from hedged result")
	}
	if coord.hedges.Value() == 0 {
		t.Error("hedge counter is zero; the replica was never fired")
	}
	releaseOnce()
}

// TestCoordinatorAdmissionValve checks the coordinator's own overload
// valve: with one slot and a slow backend, a concurrent second request
// is shed with the overloaded envelope and the shed shows in stats.
func TestCoordinatorAdmissionValve(t *testing.T) {
	// The first request's compute blocks until released, so the
	// coordinator's single admission slot is provably occupied — the
	// compute-start signal happens after the coordinator admitted and
	// proxied the request.
	computing := make(chan struct{}, 4)
	release := make(chan struct{})
	node := server.Options{
		Workers: 1,
		Faults: func(stage string, _ uint64) server.Fault {
			if stage == "compute" {
				computing <- struct{}{}
				<-release
			}
			return server.Fault{}
		},
	}
	lc, err := StartLocal(2, node, Options{ProbeInterval: -1, HedgeAfter: -1, MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()

	c := client.New(lc.URL(), client.WithRetries(0))
	first := make(chan error, 1)
	go func() {
		_, err := c.Simulate(context.Background(), server.SimulateRequest{
			Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 512},
		})
		first <- err
	}()
	select {
	case <-computing:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached a backend worker")
	}
	_, err = c.Simulate(context.Background(), server.SimulateRequest{
		Pattern: trace.Pattern{Name: "strided", Stride: 5, N: 512},
	})
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Code != server.CodeOverloaded {
		t.Fatalf("second request err = %v, want coordinator overloaded", err)
	}
	releaseOnce()
	if err := <-first; err != nil {
		t.Fatalf("first request failed: %v", err)
	}

	resp, err := http.Get(lc.URL() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission.Shed == 0 {
		t.Error("stats report zero sheds")
	}
	if stats.Admission.Capacity != 1 {
		t.Errorf("stats capacity = %d, want 1", stats.Admission.Capacity)
	}
	if stats.Cluster.Backends != 2 || stats.Cluster.RingModulus != RingModulus {
		t.Errorf("cluster stats malformed: %+v", stats.Cluster)
	}
}

// TestClusterReadyz checks the coordinator's own readiness: ready while
// any backend is healthy, 503 once all are gone.
func TestClusterReadyz(t *testing.T) {
	lc, err := StartLocal(2, server.Options{}, Options{ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	get := func() int {
		resp, err := http.Get(lc.URL() + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("readyz with healthy backends = %d", code)
	}
	lc.Kill(0)
	lc.Kill(1)
	lc.Coordinator.CheckHealth(context.Background())
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with all backends dead = %d, want 503", code)
	}
	// A compute request against the dead cluster gets the typed
	// upstream_unavailable envelope (replicas are tried as a last
	// resort, then reported unreachable).
	c := client.New(lc.URL(), client.WithRetries(0))
	_, err = c.Simulate(context.Background(), server.SimulateRequest{
		Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 256},
	})
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Code != server.CodeUnavailable {
		t.Fatalf("dead-cluster err = %v, want upstream_unavailable", err)
	}
	if !ce.Temporary() {
		t.Error("upstream_unavailable not classified Temporary")
	}
}

// TestClusterFailoverPrefersWarmReplica checks the warm-replica
// preference: when a job's ring primary dies, the re-route tries the
// replica with the largest reported warm working set first, not the
// next one in ring order.
func TestClusterFailoverPrefersWarmReplica(t *testing.T) {
	lc, err := StartLocal(3, server.Options{}, Options{ProbeInterval: -1, HedgeAfter: -1, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	primary := lc.Backends[0].URL()
	req := keyOnBackend(t, lc.Coordinator.ring, primary)
	key := server.SweepJob{Simulate: &req}.Key()
	order := lc.Coordinator.ring.Replicas(key, 3)
	if len(order) != 3 || order[0] != primary {
		t.Fatalf("replica order %v, want primary %s first", order, primary)
	}
	// Warm the ring-last replica directly (bypassing the coordinator) so
	// its memo — and therefore its readyz warm_keys — outweighs the
	// ring-second replica's.
	warmURL := order[2]
	wc := client.New(warmURL, client.WithRetries(0))
	for i := 0; i < 4; i++ {
		if _, err := wc.Simulate(context.Background(), server.SimulateRequest{
			Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 4096 + i, Stream: 1},
		}); err != nil {
			t.Fatalf("warming replica: %v", err)
		}
	}
	lc.Coordinator.CheckHealth(context.Background())
	if w := lc.Coordinator.health.warm(warmURL); w < 4 {
		t.Fatalf("warmed replica reports %d warm keys, want >= 4", w)
	}

	// Kill the primary; the next probe round marks it out.
	for i, b := range lc.Backends {
		if b.URL() == primary {
			lc.Kill(i)
		}
	}
	lc.Coordinator.CheckHealth(context.Background())

	cands := lc.Coordinator.candidates(lc.Coordinator.currentRing(), key, nil)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3", len(cands))
	}
	if cands[0].url != warmURL {
		t.Fatalf("first failover candidate is %s, want warm replica %s", cands[0].url, warmURL)
	}
	if cands[2].url != primary {
		t.Fatalf("dead primary is candidate %v, want last", cands)
	}

	// End to end: the proxied job lands on the warm replica, and the
	// cold middle replica sees no traffic.
	c := client.New(lc.URL(), client.WithRetries(0))
	if _, err := c.Simulate(context.Background(), req); err != nil {
		t.Fatalf("simulate with dead primary: %v", err)
	}
	if n := lc.Coordinator.backends[warmURL].requests.Value(); n == 0 {
		t.Error("warm replica saw no requests after failover")
	}
	if n := lc.Coordinator.backends[order[1]].requests.Value(); n != 0 {
		t.Errorf("cold replica saw %d requests; warm preference did not hold", n)
	}
}

// TestClusterConditionalGet checks the coordinator answers
// If-None-Match at the edge: the second identical request gets a
// bodiless 304 carrying the memoized verdict header, with the same
// ETag a backend would emit.
func TestClusterConditionalGet(t *testing.T) {
	lc, err := StartLocal(2, server.Options{}, Options{ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	body, _ := json.Marshal(server.SimulateRequest{
		Pattern: trace.Pattern{Name: "strided", Stride: 7, N: 1024, Stream: 1},
	})
	post := func(inm string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, lc.URL()+"/v1/simulate", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := post("")
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first request status %d", first.StatusCode)
	}
	etag := first.Header.Get("ETag")
	if etag == "" {
		t.Fatal("coordinator response carries no ETag")
	}

	second := post(etag)
	data, _ := io.ReadAll(second.Body)
	second.Body.Close()
	if second.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional repeat status %d, want 304", second.StatusCode)
	}
	if len(data) != 0 {
		t.Errorf("304 carried a %d-byte body", len(data))
	}
	if got := second.Header.Get(server.MemoizedHeader); got != "true" {
		t.Errorf("%s = %q on 304, want true (repeat is a memo hit)", server.MemoizedHeader, got)
	}
	if second.Header.Get("ETag") != etag {
		t.Errorf("304 ETag %q differs from original %q", second.Header.Get("ETag"), etag)
	}

	// The typed client sees the same round trip as NotModified.
	c := client.New(lc.URL(), client.WithRetries(0))
	var req server.SimulateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	res, err := c.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NotModified {
		t.Error("client repeat against coordinator not served from 304")
	}
	if !res.Memoized {
		t.Error("304-served repeat lost the memoized verdict")
	}
}

// TestCoordinatorStatsSchema2 checks the coordinator's /v1/stats speaks
// schema 2 with the uniform blocks aggregated across backends, and
// announces the schema-1 sunset.
func TestCoordinatorStatsSchema2(t *testing.T) {
	lc, err := StartLocal(2, server.Options{}, Options{ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	c := client.New(lc.URL(), client.WithRetries(0))
	req := server.SimulateRequest{Pattern: trace.Pattern{Name: "strided", Stride: 5, N: 2048, Stream: 1}}
	for i := 0; i < 2; i++ {
		if _, err := c.Simulate(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(lc.URL() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Deprecation") == "" || resp.Header.Get("Sunset") == "" {
		t.Error("coordinator stats missing Deprecation/Sunset headers")
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Schema != server.StatsSchemaVersion {
		t.Errorf("schema = %d, want %d", stats.Schema, server.StatsSchemaVersion)
	}
	if stats.Memo.Hits == 0 {
		t.Error("aggregated memo block reports zero hits after a memoized repeat")
	}
	if stats.Memo.Entries == 0 {
		t.Error("aggregated memo block reports zero entries")
	}
	if stats.Memo.Capacity == 0 {
		t.Error("aggregated memo capacity is zero")
	}
	if stats.Persist.Enabled {
		t.Error("persist block enabled with memory-only backends")
	}
	// The typed client's uniform view decodes the same blocks.
	v2, err := c.StatsV2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v2.Schema != server.StatsSchemaVersion || v2.Memo.Hits != stats.Memo.Hits {
		t.Errorf("client StatsV2 = %+v, disagrees with raw response", v2)
	}
}
