package cluster

import (
	"context"
	"crypto/subtle"
	"net/http"
	"time"

	"primecache/internal/client"
	"primecache/internal/server"
)

// The /v1/admin/backends surface: live cluster membership. GET lists
// the members, POST joins a backend (warm-state migration first, then
// an atomic ring swap), DELETE drains one out. All three are gated by
// the AdminToken bearer credential; join and leave additionally
// serialize on adminMu so concurrent membership changes cannot
// interleave their migrations and swaps.

// drainQuiesceTimeout bounds how long a leave waits for the departing
// backend's in-flight requests to finish after the ring swap. Wall
// clock, not the injected sim clock: the wait is an operational bound
// on real network activity, and an admin call must not block on a
// virtual clock nobody is advancing.
const drainQuiesceTimeout = 10 * time.Second

// requireAdmin gates h behind the configured admin token. With no
// token configured the whole admin surface answers not_found — an
// unconfigured coordinator does not reveal it has an admin API. A
// wrong or missing credential answers unauthorized; the comparison is
// constant-time.
func (c *Coordinator) requireAdmin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c.opts.AdminToken == "" {
			writeErr(w, server.Errf(server.CodeNotFound, "admin API disabled (start the coordinator with an admin token)"))
			return
		}
		got := []byte(r.Header.Get("Authorization"))
		want := []byte("Bearer " + c.opts.AdminToken)
		if subtle.ConstantTimeCompare(got, want) != 1 {
			writeErr(w, server.Errf(server.CodeUnauthorized, "missing or invalid admin token"))
			return
		}
		h(w, r)
	}
}

func (c *Coordinator) handleAdminList(w http.ResponseWriter, _ *http.Request) {
	c.memberMu.RLock()
	ring, version := c.ring, c.ringVersion
	c.memberMu.RUnlock()
	hs := c.health.snapshot()
	resp := client.AdminBackendsResponse{
		RingVersion:  version,
		VirtualNodes: ring.VirtualNodes(),
	}
	for _, u := range ring.Backends() {
		s := hs[u]
		resp.Backends = append(resp.Backends, client.AdminBackend{
			URL: u, Healthy: s.Healthy, Draining: s.Draining, WarmKeys: s.WarmKeys,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdminJoin adds a backend. Order matters: the joiner is probed,
// then warmed — every persist-tier record whose key it will own is
// streamed onto it — and only then does the ring swap. The first
// request the new routing sends it can answer memoized; at no point
// does a request route to a member that is not ready.
func (c *Coordinator) handleAdminJoin(w http.ResponseWriter, r *http.Request) {
	var req client.AdminChangeRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.URL == "" {
		writeErr(w, server.Errf(server.CodeInvalidRequest, "url is required"))
		return
	}
	ctx, cancel := c.requestCtx(r)
	defer cancel()

	c.adminMu.Lock()
	defer c.adminMu.Unlock()

	oldRing := c.currentRing()
	if oldRing.Has(req.URL) {
		writeErr(w, server.Errf(server.CodeInvalidRequest, "backend %q is already a member", req.URL))
		return
	}
	newRing, err := NewRing(append(oldRing.Backends(), req.URL), c.opts.VirtualNodes)
	if err != nil {
		writeErr(w, server.Errf(server.CodeInvalidRequest, "building ring: %v", err))
		return
	}

	copts := append([]client.Option{client.WithRetries(0)}, c.opts.ClientOptions...)
	joiner := &backendState{url: req.URL, client: client.New(req.URL, copts...)}
	pctx, pcancel := context.WithTimeout(ctx, c.opts.ProbeTimeout)
	rz, err := joiner.client.Readyz(pctx)
	pcancel()
	if err != nil {
		joiner.client.Close()
		writeErr(w, server.Errf(server.CodeUnavailable, "joining backend %q is not ready: %v", req.URL, err))
		return
	}

	// Warm the joiner while the old ring still routes: only the arcs
	// the joiner captures move, and only from their current owners.
	moves := movedRanges(oldRing, newRing)
	keys, bytes, errs := c.runMigration(ctx, moves, func(u string) *client.Client {
		if u == req.URL {
			return joiner.client
		}
		if b := c.backendFor(u); b != nil && c.health.healthy(u) {
			return b.client
		}
		return nil
	})

	c.memberMu.Lock()
	c.backends[req.URL] = joiner
	c.ring = newRing
	c.ringVersion++
	version := c.ringVersion
	c.memberMu.Unlock()
	c.health.add(req.URL, rz.WarmKeys)
	c.joins.Inc()

	writeJSON(w, http.StatusOK, client.AdminChangeResponse{
		RingVersion:     version,
		Backends:        newRing.Backends(),
		MigratedKeys:    keys,
		MigratedBytes:   bytes,
		MigrationErrors: errs,
	})
}

// handleAdminLeave drains a backend out: it is marked draining (the
// health tiebreak stops preferring it), its persisted shards stream to
// their new owners on the successor ring, the ring swaps atomically,
// and the backend is removed once its in-flight work quiesces — sweep
// legs already routed to it on the old ring finish normally.
func (c *Coordinator) handleAdminLeave(w http.ResponseWriter, r *http.Request) {
	target := r.URL.Query().Get("url")
	if target == "" {
		writeErr(w, server.Errf(server.CodeInvalidRequest, "url query parameter is required"))
		return
	}
	ctx, cancel := c.requestCtx(r)
	defer cancel()

	c.adminMu.Lock()
	defer c.adminMu.Unlock()

	oldRing := c.currentRing()
	if !oldRing.Has(target) {
		writeErr(w, server.Errf(server.CodeInvalidRequest, "backend %q is not a member", target))
		return
	}
	remaining := make([]string, 0, len(oldRing.Backends())-1)
	for _, b := range oldRing.Backends() {
		if b != target {
			remaining = append(remaining, b)
		}
	}
	if len(remaining) == 0 {
		writeErr(w, server.Errf(server.CodeInvalidRequest, "cannot remove the last backend"))
		return
	}
	newRing, err := NewRing(remaining, c.opts.VirtualNodes)
	if err != nil {
		writeErr(w, server.Errf(server.CodeInternal, "building ring: %v", err))
		return
	}

	// Stop preferring the leaver for new work while its shards move.
	c.health.reportDraining(target)
	leaver := c.backendFor(target)

	moves := movedRanges(oldRing, newRing)
	keys, bytes, errs := c.runMigration(ctx, moves, func(u string) *client.Client {
		if u == target {
			if leaver != nil {
				return leaver.client
			}
			return nil
		}
		if b := c.backendFor(u); b != nil && c.health.healthy(u) {
			return b.client
		}
		return nil
	})

	// Atomic swap: new requests route without the leaver; requests that
	// captured the old ring still resolve it via backendFor until the
	// final removal below.
	c.memberMu.Lock()
	c.ring = newRing
	c.ringVersion++
	version := c.ringVersion
	c.memberMu.Unlock()

	drained := c.quiesce(ctx, leaver)

	c.memberMu.Lock()
	delete(c.backends, target)
	c.memberMu.Unlock()
	c.health.remove(target)
	if leaver != nil {
		leaver.client.Close()
	}
	c.leaves.Inc()

	writeJSON(w, http.StatusOK, client.AdminChangeResponse{
		RingVersion:     version,
		Backends:        newRing.Backends(),
		MigratedKeys:    keys,
		MigratedBytes:   bytes,
		MigrationErrors: errs,
		Drained:         drained,
	})
}

// quiesce waits (bounded, wall clock) for b's in-flight request gauge
// to reach zero. Returns false when the wait times out or the admin
// request's context ends; the backend is removed regardless — a stuck
// request must not wedge membership.
func (c *Coordinator) quiesce(ctx context.Context, b *backendState) bool {
	if b == nil {
		return true
	}
	deadline := time.Now().Add(drainQuiesceTimeout)
	for b.inflight.Value() > 0 {
		if ctx.Err() != nil || !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}
