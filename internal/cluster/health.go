package cluster

import (
	"context"
	"sync"
	"time"

	"primecache/internal/sim"
)

// probeFunc checks one backend's readiness. ready means the backend can
// take new work; draining means it answered but reported it is shutting
// down (alive, not ready). warmKeys is the backend's self-reported warm
// working set (memo + persist tier), used to prefer warm replicas on
// failover.
type probeFunc func(ctx context.Context, backend string) (ready, draining bool, warmKeys int)

// BackendHealth is one backend's view in the checker, as surfaced by
// the coordinator's /v1/stats.
type BackendHealth struct {
	// Healthy reports the backend is taking new work.
	Healthy bool `json:"healthy"`
	// Draining reports the last probe found the backend alive but
	// shutting down.
	Draining bool `json:"draining"`
	// ConsecutiveFailures counts probe/request failures since the last
	// success.
	ConsecutiveFailures int `json:"consecutiveFailures"`
	// Probes counts completed active probes.
	Probes uint64 `json:"probes"`
	// WarmKeys is the backend's last reported warm working-set size
	// (resident memo entries or persisted keys, whichever is larger).
	// Failover re-scatter prefers warmer replicas.
	WarmKeys int `json:"warmKeys"`
}

// health tracks backend readiness two ways: actively (a periodic readyz
// probe per backend) and passively (the coordinator reports transport
// failures and draining responses as it sees them, so a backend that
// dies mid-sweep is routed around immediately instead of after the next
// probe tick). A backend recovers only through a successful probe.
type health struct {
	probe    probeFunc
	interval time.Duration
	timeout  time.Duration
	clock    sim.Clock

	mu    sync.Mutex
	state map[string]*BackendHealth

	stop chan struct{}
	done chan struct{}
}

// newHealth builds the checker with every backend optimistically
// healthy; callers normally run one synchronous CheckNow before
// trusting the state. start() launches the background loop.
func newHealth(backends []string, probe probeFunc, interval, timeout time.Duration, clk sim.Clock) *health {
	h := &health{
		probe:    probe,
		interval: interval,
		timeout:  timeout,
		clock:    sim.Or(clk),
		state:    make(map[string]*BackendHealth, len(backends)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, b := range backends {
		h.state[b] = &BackendHealth{Healthy: true}
	}
	return h
}

// start launches the periodic probe loop; no-op when the interval is
// not positive (tests drive CheckNow directly).
func (h *health) start() {
	if h.interval <= 0 {
		close(h.done)
		return
	}
	go func() {
		defer close(h.done)
		t := h.clock.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.CheckNow(context.Background())
			case <-h.stop:
				return
			}
		}
	}()
}

// close stops the background loop and waits for it to exit.
func (h *health) close() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}

// CheckNow probes every backend once, in parallel, and waits for all
// verdicts.
func (h *health) CheckNow(ctx context.Context) {
	h.mu.Lock()
	backends := make([]string, 0, len(h.state))
	for b := range h.state {
		backends = append(backends, b)
	}
	h.mu.Unlock()

	var wg sync.WaitGroup
	for _, b := range backends {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, h.timeout)
			defer cancel()
			ready, draining, warm := h.probe(pctx, b)
			h.record(b, ready, draining, warm)
		}(b)
	}
	wg.Wait()
}

// record applies one probe verdict. A failed probe keeps the last
// known warm count: the store is durable, so a backend that dies warm
// restarts warm, and the stale count is exactly the right tiebreak for
// routing around its replacement in the meantime.
func (h *health) record(backend string, ready, draining bool, warmKeys int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.state[backend]
	if s == nil {
		return
	}
	s.Probes++
	s.Draining = draining
	if ready {
		s.Healthy = true
		s.ConsecutiveFailures = 0
		s.WarmKeys = warmKeys
	} else {
		s.Healthy = false
		s.ConsecutiveFailures++
	}
}

// healthy reports whether backend should receive new work.
func (h *health) healthy(backend string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.state[backend]
	return s != nil && s.Healthy
}

// warm returns backend's last reported warm-key count.
func (h *health) warm(backend string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.state[backend]
	if s == nil {
		return 0
	}
	return s.WarmKeys
}

// warmKeysTotal sums the last reported warm counts across healthy
// backends — the cluster's routable warm working set, surfaced in the
// coordinator's readyz body.
func (h *health) warmKeysTotal() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, s := range h.state {
		if s.Healthy {
			n += s.WarmKeys
		}
	}
	return n
}

// add registers a newly joined backend, seeded with the warm-key count
// its admission probe reported so failover warm-sorting sees it
// immediately.
func (h *health) add(backend string, warmKeys int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state[backend] == nil {
		h.state[backend] = &BackendHealth{Healthy: true, WarmKeys: warmKeys}
	}
}

// remove forgets a departed backend; in-flight probes against it become
// no-ops (record tolerates a missing entry).
func (h *health) remove(backend string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.state, backend)
}

// reportFailure is the passive path: the coordinator saw a transport
// failure talking to backend, so stop routing to it now. Only a
// successful probe brings it back.
func (h *health) reportFailure(backend string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.state[backend]; s != nil {
		s.Healthy = false
		s.ConsecutiveFailures++
	}
}

// reportDraining is the passive path for a shutting_down response: the
// backend is alive but refusing new work.
func (h *health) reportDraining(backend string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.state[backend]; s != nil {
		s.Healthy = false
		s.Draining = true
	}
}

// snapshot copies the state for /v1/stats.
func (h *health) snapshot() map[string]BackendHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]BackendHealth, len(h.state))
	for b, s := range h.state {
		out[b] = *s
	}
	return out
}

// healthyCount returns how many backends are taking work.
func (h *health) healthyCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, s := range h.state {
		if s.Healthy {
			n++
		}
	}
	return n
}
