package cluster

import (
	"context"
	"errors"
	"sort"

	"primecache/internal/client"
	"primecache/internal/keyspace"
	"primecache/internal/server"
)

// movedRanges computes which arcs of the hash space change primary
// owner between two rings, grouped as moved[src][dst] — the key ranges
// whose owner is src on oldRing and dst on newRing. These are exactly
// the ranges a membership change must migrate: for a join every dst is
// the joiner, for a leave every src is the leaver (consistent hashing's
// minimal-disruption property, which the ring property tests assert).
//
// The walk merges both rings' point positions into one sorted boundary
// list. Between two consecutive boundaries neither ring has a point,
// so ownership on each ring is constant across the arc and equals the
// owner of the arc's upper bound (a key belongs to the first point at
// or clockwise after its hash). Each boundary arc where the owners
// differ is emitted as (prev, bound], with contiguous same-pair arcs
// coalesced.
func movedRanges(oldRing, newRing *Ring) map[string]map[string]keyspace.Ranges {
	bounds := append(oldRing.positions(), newRing.positions()...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	dedup := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	bounds = dedup

	moved := make(map[string]map[string]keyspace.Ranges)
	emit := func(src, dst string, arc keyspace.Range) {
		if moved[src] == nil {
			moved[src] = make(map[string]keyspace.Ranges)
		}
		rs := moved[src][dst]
		// Coalesce with the previous arc when contiguous: the walk emits
		// arcs in ascending order, so only the last range can extend.
		if n := len(rs); n > 0 && rs[n-1].Hi == arc.Lo {
			rs[n-1].Hi = arc.Hi
			moved[src][dst] = rs
			return
		}
		moved[src][dst] = append(rs, arc)
	}
	for i, b := range bounds {
		oldOwner, newOwner := oldRing.ownerAt(b), newRing.ownerAt(b)
		if oldOwner == newOwner {
			continue
		}
		// The arc ending at bounds[0] wraps from the last boundary; with
		// a single boundary Lo == Hi encodes the full circle.
		prev := bounds[(i+len(bounds)-1)%len(bounds)]
		emit(oldOwner, newOwner, keyspace.Range{Lo: prev, Hi: b})
	}
	return moved
}

// runMigration streams the persist-tier records covered by moves from
// each source to its destination: one export request per (src, dst)
// pair, piped directly into the destination's import endpoint — the
// CRC-checked record framing travels the wire unmodified, so a frame
// corrupted in transit is rejected exactly like a corrupt log record.
//
// clientFor resolves a backend URL to its client, returning nil for
// members that cannot serve a transfer right now (down, unknown);
// those pairs are skipped and counted as errors. A source running
// memory-only answers the export with not_found — that is a clean
// "nothing persisted to move", not an error. Migration is best-effort
// by design: a failed pair leaves its keys to recompute cold on first
// touch rather than failing the membership change.
func (c *Coordinator) runMigration(ctx context.Context, moves map[string]map[string]keyspace.Ranges, clientFor func(url string) *client.Client) (keys, bytes, errs int64) {
	// Deterministic pair order keeps logs and traces stable.
	srcs := make([]string, 0, len(moves))
	for src := range moves {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		dsts := make([]string, 0, len(moves[src]))
		for dst := range moves[src] {
			dsts = append(dsts, dst)
		}
		sort.Strings(dsts)
		for _, dst := range dsts {
			n, b, err := c.migratePair(ctx, clientFor(src), clientFor(dst), moves[src][dst])
			keys += n
			bytes += b
			if err != nil {
				errs++
			}
		}
	}
	c.migratedKeys.Add(uint64(keys))
	c.migratedBytes.Add(uint64(bytes))
	c.migrationErrors.Add(uint64(errs))
	return keys, bytes, errs
}

// errSkipTransfer marks a (src, dst) pair that cannot transfer —
// counted into migrationErrors by runMigration.
var errSkipTransfer = errors.New("cluster: migration pair skipped")

func (c *Coordinator) migratePair(ctx context.Context, src, dst *client.Client, ranges keyspace.Ranges) (keys, bytes int64, err error) {
	if src == nil || dst == nil {
		return 0, 0, errSkipTransfer
	}
	stream, err := src.PersistExport(ctx, ranges)
	if err != nil {
		var ce *client.Error
		if errors.As(err, &ce) && ce.Code == server.CodeNotFound {
			return 0, 0, nil // memory-only source: nothing persisted to move
		}
		return 0, 0, err
	}
	defer stream.Close()
	return dst.PersistImport(ctx, stream)
}
