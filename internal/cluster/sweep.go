package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"primecache/internal/obs"
	"primecache/internal/server"
)

// routedJob is one sweep job with its global index and routing key.
type routedJob struct {
	idx int
	job server.SweepJob
	key string
}

// handleSweep scatters the batch across the ring and gathers results
// back in input order, streaming each result as soon as it (and every
// earlier one) is ready — the same wire shape, ordering, and flush
// behaviour as a single node's /v1/sweep, so a client cannot tell a
// cluster from one big backend by looking at the bytes.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req server.SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Jobs) == 0 {
		writeErr(w, server.Errf(server.CodeInvalidRequest, "server: sweep has no jobs"))
		return
	}
	release, ok := c.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := c.requestCtx(r)
	defer cancel()

	jobs := make([]routedJob, len(req.Jobs))
	slots := make([]chan server.SweepResult, len(req.Jobs))
	for i, j := range req.Jobs {
		jobs[i] = routedJob{idx: i, job: j, key: j.Key()}
		slots[i] = make(chan server.SweepResult, 1)
	}
	deliver := func(res server.SweepResult) { slots[res.Index] <- res }
	// The ring is captured once: every leg of this sweep — including
	// failover re-scatters — routes on the ring the request arrived on,
	// even if a membership change swaps the ring mid-flight.
	go c.scatter(ctx, c.currentRing(), jobs, nil, deliver)

	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)
	if _, err := fmt.Fprint(w, "{\"results\":[\n"); err != nil {
		return
	}
	enc := json.NewEncoder(w)
	for i := range slots {
		if i > 0 {
			fmt.Fprint(w, ",\n")
		}
		if err := enc.Encode(c.gatherSlot(ctx, slots[i], i)); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	fmt.Fprint(w, "]}\n")
	if flusher != nil {
		flusher.Flush()
	}
}

// lostJobGrace is how long the gather loop waits past the request
// context's end for a straggler delivery before declaring the slot
// lost. Scatter normally delivers every slot exactly once (cancelled
// jobs arrive as timeout/cancelled envelopes), so this only fires on a
// failover bug — it turns a would-be hung response into a typed
// invariant violation the chaos harness can detect.
const lostJobGrace = 500 * time.Millisecond

// gatherSlot waits for job i's result. After the request context ends
// it allows a short grace for the error envelope already in flight,
// then gives up with an internal "result lost" envelope rather than
// blocking the whole response forever.
func (c *Coordinator) gatherSlot(ctx context.Context, slot <-chan server.SweepResult, i int) server.SweepResult {
	select {
	case res := <-slot:
		return res
	case <-ctx.Done():
	}
	t := c.clock.NewTimer(lostJobGrace)
	defer t.Stop()
	select {
	case res := <-slot:
		return res
	case <-t.C:
		return errorResult(i, server.Errf(server.CodeInternal,
			"cluster: job %d result lost (scatter never delivered it)", i))
	}
}

// scatter partitions jobs by each key's first viable replica (excluded
// backends removed) and runs one sub-sweep per backend concurrently.
// Failed groups recurse with the failed backend excluded, so a job is
// tried on every replica before its slot is filled with an error
// envelope; each job is delivered exactly once.
func (c *Coordinator) scatter(ctx context.Context, ring *Ring, jobs []routedJob, excluded map[string]bool, deliver func(server.SweepResult)) {
	groups := make(map[*backendState][]routedJob)
	for _, j := range jobs {
		cands := c.candidates(ring, j.key, excluded)
		if len(cands) == 0 {
			deliver(errorResult(j.idx, server.Errf(server.CodeUnavailable,
				"cluster: no backend available for job (tried %d replicas)", len(excluded))))
			continue
		}
		groups[cands[0]] = append(groups[cands[0]], j)
	}
	var wg sync.WaitGroup
	for b, group := range groups {
		wg.Add(1)
		go func(b *backendState, group []routedJob) {
			defer wg.Done()
			c.subSweep(ctx, ring, b, group, excluded, deliver)
		}(b, group)
	}
	wg.Wait()
}

// subSweep runs one backend's share of the batch and routes per-job and
// call-level failures onward.
func (c *Coordinator) subSweep(ctx context.Context, ring *Ring, b *backendState, group []routedJob, excluded map[string]bool, deliver func(server.SweepResult)) {
	sub := server.SweepRequest{Jobs: make([]server.SweepJob, len(group))}
	for i, j := range group {
		sub.Jobs[i] = j.job
	}
	// One span per scatter leg. attempt counts the exclusion depth, so a
	// rescattered group shows up as a deeper leg with the same trace ID —
	// the failover hop stays inside one trace. The leg's context carries
	// the span into client.Sweep, whose header stitches the backend's
	// whole server-side tree underneath it.
	lctx, span := obs.Start(ctx, "sweep.leg",
		obs.String("backend", b.url), obs.Int("jobs", len(group)), obs.Int("attempt", len(excluded)))
	ctx = lctx
	var results []server.SweepResult
	err := c.callBackend(b, func() error {
		var err error
		results, err = b.client.Sweep(ctx, sub)
		return err
	})
	span.SetAttr("ok", strconv.FormatBool(err == nil))
	span.End()
	if err != nil {
		// The whole sub-sweep failed: the backend died mid-stream, shed
		// the batch, or is draining. Retry every job on its next replica
		// unless the error is permanent (or the caller is gone).
		c.noteFailure(b, err)
		if c.opts.DropRescatter {
			return // test-only mutation: lose the group instead of failing over
		}
		if ctx.Err() == nil && retryable(err) {
			c.reroutes.Add(uint64(len(group)))
			c.scatter(ctx, ring, group, exclude(excluded, b.url), deliver)
			return
		}
		ae := apiErrorFrom(err)
		for _, j := range group {
			deliver(errorResult(j.idx, ae))
		}
		return
	}
	if len(results) != len(group) {
		ae := server.Errf(server.CodeInternal, "cluster: backend %s returned %d results for %d jobs", b.url, len(results), len(group))
		for _, j := range group {
			deliver(errorResult(j.idx, ae))
		}
		return
	}
	// Per-job envelopes pass through untouched except for temporary
	// codes, which get the same failover a call-level failure would.
	var retry []routedJob
	for i, res := range results {
		if isTemporaryCode(res.ErrorCode) && ctx.Err() == nil {
			retry = append(retry, group[i])
			continue
		}
		res.Index = group[i].idx
		deliver(res)
	}
	if len(retry) > 0 {
		c.reroutes.Add(uint64(len(retry)))
		c.scatter(ctx, ring, retry, exclude(excluded, b.url), deliver)
	}
}

// exclude copies m with backend added; scatter recursion terminates
// because the exclusion set grows by one live backend per level.
func exclude(m map[string]bool, backend string) map[string]bool {
	out := make(map[string]bool, len(m)+1)
	for k := range m {
		out[k] = true
	}
	out[backend] = true
	return out
}

// isTemporaryCode reports whether a per-job error code is worth a try
// on another replica.
func isTemporaryCode(code server.ErrorCode) bool {
	switch code {
	case server.CodeOverloaded, server.CodeShuttingDown, server.CodeUnavailable:
		return true
	}
	return false
}

// errorResult fills one job's slot with an error envelope.
func errorResult(idx int, ae *server.APIError) server.SweepResult {
	return server.SweepResult{Index: idx, Error: ae.Message, ErrorCode: ae.Code}
}
