package cluster

import (
	"fmt"
	"net/http/httptest"

	"primecache/internal/obs"
	"primecache/internal/server"
)

// LocalBackend is one in-process vcached node of a LocalCluster.
type LocalBackend struct {
	Server *server.Server
	HTTP   *httptest.Server
	killed bool
}

// URL returns the backend's base URL.
func (b *LocalBackend) URL() string { return b.HTTP.URL }

// LocalCluster is an in-process multi-node deployment on loopback: n
// real vcached servers, each behind its own httptest listener, fronted
// by a Coordinator that is itself served over HTTP. Tests and
// benchmarks use it to exercise the full cluster path — real sockets,
// real scatter-gather, real failover — inside one process.
type LocalCluster struct {
	Backends    []*LocalBackend
	Coordinator *Coordinator
	HTTP        *httptest.Server
}

// StartLocal spawns n backends with the given node options plus a
// coordinator. copts.Backends is filled in; the other coordinator
// options apply as given. When the coordinator is traced
// (copts.Tracer != nil) and the node options are not, each backend
// gets its own tracer (origin "backend-<i>", on the node clock) so
// cluster tests can stitch the full cross-process span forest.
func StartLocal(n int, node server.Options, copts Options) (*LocalCluster, error) {
	lc := &LocalCluster{}
	for i := 0; i < n; i++ {
		nopts := node
		if copts.Tracer != nil && nopts.Tracer == nil {
			nopts.Tracer = obs.NewTracer(obs.TracerOptions{
				Origin: fmt.Sprintf("backend-%d", i),
				Clock:  nopts.Clock,
			})
		}
		srv := server.New(nopts)
		ts := httptest.NewServer(srv.Handler())
		lc.Backends = append(lc.Backends, &LocalBackend{Server: srv, HTTP: ts})
		copts.Backends = append(copts.Backends, ts.URL)
	}
	coord, err := New(copts)
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.Coordinator = coord
	lc.HTTP = httptest.NewServer(coord.Handler())
	return lc, nil
}

// URL returns the coordinator's base URL.
func (lc *LocalCluster) URL() string { return lc.HTTP.URL }

// Kill abruptly stops backend i: in-flight connections are severed and
// the listener closes, like a crashed process. Idempotent.
func (lc *LocalCluster) Kill(i int) {
	b := lc.Backends[i]
	if b.killed {
		return
	}
	b.killed = true
	b.HTTP.CloseClientConnections()
	b.HTTP.Close()
	b.Server.Close()
}

// Close tears the whole cluster down.
func (lc *LocalCluster) Close() {
	if lc.HTTP != nil {
		lc.HTTP.Close()
	}
	if lc.Coordinator != nil {
		lc.Coordinator.Close()
	}
	for i := range lc.Backends {
		lc.Kill(i)
	}
}
