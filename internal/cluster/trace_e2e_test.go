package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"primecache/internal/cache"
	"primecache/internal/obs"
	"primecache/internal/server"
	"primecache/internal/sim"
	"primecache/internal/trace"
)

// traceSweep is a small batch with every job distinct (so memoization
// and single-flight cannot make the second run's spans differ from the
// first) spanning both simulate and model evaluation paths.
func traceSweep() server.SweepRequest {
	var req server.SweepRequest
	for i := 0; i < 9; i++ {
		req.Jobs = append(req.Jobs, server.SweepJob{Simulate: &server.SimulateRequest{
			Cache:   cache.Spec{Kind: "prime", C: 13},
			Pattern: trace.Pattern{Name: "strided", Stride: int64(3 + 2*i), N: 256 + 16*i, Stream: 1},
			Passes:  1,
		}})
	}
	for i := 0; i < 3; i++ {
		req.Jobs = append(req.Jobs, server.SweepJob{Model: &server.ModelRequest{B: 512 << uint(i), Tm: 16 + 8*i}})
	}
	return req
}

// waitUntil polls cond on the wall clock: trace publication happens
// after the HTTP response is written (the edge span ends when the
// handler returns), so the ring can trail the response by a scheduler
// beat even though every span is complete.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// stitchSweepTrace waits for the coordinator's newest trace and every
// backend-side piece of it, then renders the merged span forest.
func stitchSweepTrace(t *testing.T, lc *LocalCluster, ct *obs.Tracer, before uint64) (obs.TraceID, string) {
	t.Helper()
	waitUntil(t, "coordinator trace publication", func() bool { return ct.Finished() > before })
	tds := ct.Traces()
	td := tds[len(tds)-1]
	legs := 0
	for _, s := range td.Spans {
		if s.Name == "sweep.leg" {
			legs++
		}
	}
	if legs == 0 {
		t.Fatalf("coordinator trace %v has no sweep.leg spans:\n%s", td.Trace, td.Tree)
	}
	// Each leg lands on a distinct backend (no failover here), and a
	// backend publishes its piece of the trace when its edge span ends —
	// racing the coordinator's own publication, hence the wait.
	var stitched []obs.SpanData
	waitUntil(t, fmt.Sprintf("%d backend traces for %v", legs, td.Trace), func() bool {
		stitched = append([]obs.SpanData(nil), td.Spans...)
		found := 0
		for _, b := range lc.Backends {
			if btd, ok := b.Server.Tracer().TraceByID(td.Trace); ok {
				found++
				stitched = append(stitched, btd.Spans...)
			}
		}
		return found == legs
	})
	return td.Trace, obs.RenderTree(stitched)
}

// treeLine is one rendered span with its indentation depth resolved.
type treeLine struct {
	depth int
	text  string
}

func parseTree(t *testing.T, tree string) []treeLine {
	t.Helper()
	var out []treeLine
	for _, ln := range strings.Split(strings.TrimRight(tree, "\n"), "\n") {
		trimmed := strings.TrimLeft(ln, " ")
		indent := len(ln) - len(trimmed)
		if indent%2 != 0 {
			t.Fatalf("odd indent in tree line %q", ln)
		}
		out = append(out, treeLine{depth: indent / 2, text: trimmed})
	}
	return out
}

// countAt counts lines at depth whose text starts with prefix.
func countAt(lines []treeLine, depth int, prefix string) int {
	n := 0
	for _, l := range lines {
		if l.depth == depth && strings.HasPrefix(l.text, prefix) {
			n++
		}
	}
	return n
}

// TestClusterTraceDeterministicSpanTree is the end-to-end trace
// acceptance check: a sweep through a traced 3-node cluster on a
// virtual clock yields a stitched coordinator+backend span forest with
// the exact expected topology, and running the identical sweep again
// against the same cluster renders a byte-identical tree — span
// creation races, goroutine interleaving, and map iteration order must
// all be invisible in the rendering.
func TestClusterTraceDeterministicSpanTree(t *testing.T) {
	clk := sim.NewVirtual()
	ct := obs.NewTracer(obs.TracerOptions{Origin: "coord", Clock: clk})
	// Memoization off so the second run recomputes every job and its
	// memo.lookup spans still say hit=false.
	node := server.Options{Workers: 2, MemoEntries: -1, Clock: clk}
	lc, err := StartLocal(3, node, Options{ProbeInterval: -1, HedgeAfter: -1, Clock: clk, Tracer: ct})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	req := traceSweep()
	run := func() (obs.TraceID, string) {
		before := ct.Finished()
		postSweep(t, lc.URL(), req)
		return stitchSweepTrace(t, lc, ct, before)
	}
	tid1, tree1 := run()
	tid2, tree2 := run()
	if tid1 == tid2 {
		t.Fatalf("both runs claim trace %v — the ring returned a stale trace", tid1)
	}
	if tree1 != tree2 {
		t.Fatalf("same sweep on the same virtual-clock cluster rendered different trees:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", tree1, tree2)
	}

	lines := parseTree(t, tree1)
	// Virtual clock, never advanced: every span must report zero
	// duration. Any non-zero duration means a span measured wall time.
	for _, l := range lines {
		if !strings.HasSuffix(l.text, " durUs=0") {
			t.Errorf("span escaped the virtual clock: %q", l.text)
		}
	}
	// Exactly one root: the coordinator's edge span.
	if n := countAt(lines, 0, ""); n != 1 || lines[0].text != "coord.sweep durUs=0" {
		t.Fatalf("tree has %d roots, first %q; want the single coordinator edge span:\n%s", n, lines[0].text, tree1)
	}
	legs := countAt(lines, 1, "sweep.leg ")
	if legs < 2 {
		t.Errorf("sweep used %d legs, want scatter across >= 2 backends:\n%s", legs, tree1)
	}
	if n := countAt(lines, 1, ""); n != legs {
		t.Errorf("%d non-leg spans at depth 1:\n%s", n-legs, tree1)
	}
	for _, l := range lines {
		if l.depth == 1 && !strings.Contains(l.text, "ok=true") {
			t.Errorf("leg span not marked ok: %q", l.text)
		}
	}
	// Each leg's child is the backend's sweep edge span — the remote
	// stitch across the HTTP hop.
	if n := countAt(lines, 2, "sweep status=200 "); n != legs {
		t.Errorf("%d backend sweep edge spans for %d legs:\n%s", n, legs, tree1)
	}
	if n := countAt(lines, 3, "admit "); n != legs {
		t.Errorf("%d admit spans for %d legs:\n%s", n, legs, tree1)
	}
	jobs := len(req.Jobs)
	if n := countAt(lines, 3, "sweep.job idx="); n != jobs {
		t.Errorf("%d sweep.job spans for %d jobs:\n%s", n, jobs, tree1)
	}
	for _, want := range []string{"memo.lookup hit=false ", "pool.wait ", "pool.run "} {
		if n := countAt(lines, 4, want); n != jobs {
			t.Errorf("%d %q spans for %d jobs:\n%s", n, want, jobs, tree1)
		}
	}
	if n := countAt(lines, 5, "eval."); n == 0 {
		t.Errorf("no eval spans under pool.run:\n%s", tree1)
	}
}

// TestClusterTracePropagatesCallerHeader pins the propagation contract
// at the coordinator edge: a request that already carries
// X-Vcache-Trace must join that trace (remote edge span under the
// caller's span ID), not start a fresh one.
func TestClusterTracePropagatesCallerHeader(t *testing.T) {
	ct := obs.NewTracer(obs.TracerOptions{Origin: "coord"})
	lc, err := StartLocal(2, server.Options{Workers: 2}, Options{ProbeInterval: -1, HedgeAfter: -1, Tracer: ct})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	caller := obs.NewTracer(obs.TracerOptions{Origin: "caller"})
	ctx, root := caller.StartSpan(context.Background(), "client.sweep")
	body, err := json.Marshal(traceSweep())
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, lc.URL()+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	obs.Inject(ctx, httpReq.Header)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	root.End()

	waitUntil(t, "coordinator trace publication", func() bool { return ct.Finished() >= 1 })
	td, ok := ct.TraceByID(root.TraceID())
	if !ok {
		t.Fatalf("coordinator ring has no trace %v — the caller's header was dropped", root.TraceID())
	}
	edge := td.Spans[0]
	for _, s := range td.Spans {
		if s.Name == "coord.sweep" {
			edge = s
		}
	}
	if edge.Name != "coord.sweep" || !edge.Remote {
		t.Fatalf("edge span = %+v, want a remote coord.sweep span", edge)
	}
}
