package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// trialBackends builds a seeded topology of n distinct backend names,
// unique per trial so every trial hashes a fresh point set.
func trialBackends(trial, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node-%d-%d:8372", trial, i)
	}
	return out
}

// TestRingMembershipMinimalDisruption is the ring-versioning property
// over 1000 seeded topologies: when a backend joins, the only keys
// whose primary changes are those now owned by the joiner; when one
// leaves, only keys it owned change owner. Everything else stays put —
// the guarantee that makes warm-state migration sufficient (no other
// backend's shard is disturbed by a membership change).
func TestRingMembershipMinimalDisruption(t *testing.T) {
	keys := testKeys(200)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		n := 2 + rng.Intn(7)
		backends := trialBackends(trial, n)
		old, err := NewRing(backends, 0)
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 0 {
			joiner := fmt.Sprintf("http://node-%d-join:8372", trial)
			grown, err := NewRing(append(append([]string(nil), backends...), joiner), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				was, now := old.Primary(k), grown.Primary(k)
				if was != now && now != joiner {
					t.Fatalf("trial %d: join of %s moved key %q %s → %s — a join may only move keys to the joiner",
						trial, joiner, k, was, now)
				}
			}
		} else {
			leaver := backends[rng.Intn(n)]
			var rest []string
			for _, b := range backends {
				if b != leaver {
					rest = append(rest, b)
				}
			}
			shrunk, err := NewRing(rest, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				was, now := old.Primary(k), shrunk.Primary(k)
				if was != leaver && was != now {
					t.Fatalf("trial %d: leave of %s moved key %q %s → %s — a leave may only move the leaver's keys",
						trial, leaver, k, was, now)
				}
				if was == leaver && now == leaver {
					t.Fatalf("trial %d: departed backend %s still owns key %q", trial, leaver, k)
				}
			}
		}
	}
}

// TestMovedRangesMatchPrimaries: the arc computation the migration
// driver exports by must agree exactly with per-key routing — a key's
// hash falls in moved[src][dst] if and only if its primary moves from
// src to dst.
func TestMovedRangesMatchPrimaries(t *testing.T) {
	keys := testKeys(400)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		backends := trialBackends(trial, n)
		old, err := NewRing(backends, 0)
		if err != nil {
			t.Fatal(err)
		}
		var newMembers []string
		if trial%2 == 0 {
			newMembers = append(append([]string(nil), backends...),
				fmt.Sprintf("http://node-%d-join:8372", trial))
		} else {
			newMembers = backends[1:]
		}
		next, err := NewRing(newMembers, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := movedRanges(old, next)
		for _, k := range keys {
			was, now := old.Primary(k), next.Primary(k)
			inMoved := moved[was][now].ContainsKey(k)
			if was != now && !inMoved {
				t.Fatalf("trial %d: key %q moves %s → %s but movedRanges misses it", trial, k, was, now)
			}
			if was == now && inMoved {
				t.Fatalf("trial %d: key %q stays on %s but movedRanges claims it moves", trial, k, was)
			}
			// No other pair may claim the key either.
			for src, dsts := range moved {
				for dst, rs := range dsts {
					if rs.ContainsKey(k) && (src != was || dst != now) {
						t.Fatalf("trial %d: key %q (really %s → %s) claimed by pair %s → %s",
							trial, k, was, now, src, dst)
					}
				}
			}
		}
	}
}
