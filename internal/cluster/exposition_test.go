package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"primecache/internal/obs"
	"primecache/internal/server"
)

// TestCoordinatorMetricsExposition scrapes the coordinator after a
// sweep and validates the exposition end to end: parses as Prometheus
// text format, carries the per-backend families with their base-URL
// labels (the '://' forces the label-escaping path on every scrape),
// and the backend request counters account for the scattered legs.
func TestCoordinatorMetricsExposition(t *testing.T) {
	lc, err := StartLocal(3, server.Options{Workers: 2}, Options{ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	postSweep(t, lc.URL(), traceSweep())

	resp, err := http.Get(lc.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Type"); got != promContentType {
		t.Fatalf("/metrics content type = %q, want %q", got, promContentType)
	}
	if err := obs.CheckExposition(body); err != nil {
		t.Fatalf("coordinator /metrics is not valid Prometheus text: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"vcached_coordinator_requests_total 1",
		"vcached_coordinator_healthy_backends 3",
		"vcached_backend_latency_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	for _, b := range lc.Backends {
		if !strings.Contains(text, `vcached_backend_requests_total{backend="`+b.URL()+`"}`) {
			t.Errorf("/metrics has no requests counter for backend %s:\n%s", b.URL(), text)
		}
	}
}

// TestCoordinatorTracesEndpointWithoutTracer pins the 404 contract on
// an untraced coordinator.
func TestCoordinatorTracesEndpointWithoutTracer(t *testing.T) {
	lc, err := StartLocal(1, server.Options{}, Options{ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	resp, err := http.Get(lc.URL() + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/debug/traces without a tracer: status %d, want 404", resp.StatusCode)
	}
	var env server.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("404 body is not the unified error envelope: %v", err)
	}
	if env.Error == nil || env.Error.Code != server.CodeNotFound {
		t.Fatalf("envelope = %+v, want code %s", env, server.CodeNotFound)
	}
}
