package cluster

import (
	"testing"

	"primecache/internal/sim/leak"
)

// TestMain asserts the whole suite quiesces: prober tickers, hedge
// timers, scatter goroutines, and backend keep-alive loops must all be
// gone once the last test's cluster is closed.
func TestMain(m *testing.M) { leak.Main(m) }
