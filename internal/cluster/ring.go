// Package cluster runs N vcached backends behind one coordinator: a
// consistent-hash ring routes single jobs by their canonical memoization
// key (so each backend's memoizer stays hot for its shard of the key
// space), sweeps are scattered across healthy backends and gathered back
// in input order, and an active health checker plus per-job failover
// keep a dying or draining backend from failing requests.
//
// The placement scheme is the paper's cache-mapping insight turned
// inward: like the prime-modulus address mapping that spreads strided
// vectors conflict-free across cache sets, the ring hashes keys into a
// prime-sized space (the Mersenne prime 2³¹−1) so that structured key
// populations — sweeps enumerate grids of specs and strides — cannot
// resonate with the ring geometry and pile onto one backend.
package cluster

import (
	"fmt"
	"sort"
	"strconv"

	"primecache/internal/keyspace"
)

// RingModulus is the size of the hash space: the Mersenne prime 2³¹−1,
// the same modulus family the simulated cache uses for set mapping.
const RingModulus = keyspace.Modulus

// Ring is an immutable consistent-hash ring over a set of backends.
// Each backend owns VirtualNodes points; a key belongs to the first
// point at or clockwise after its hash. Build once with NewRing —
// membership changes mean building a new ring, which keeps lookups
// lock-free.
type Ring struct {
	points   []ringPoint
	backends []string
	vnodes   int
}

type ringPoint struct {
	pos     uint32
	backend int // index into backends
}

// DefaultVirtualNodes is the per-backend point count: prime, so the
// point pattern of one backend cannot alias another's.
const DefaultVirtualNodes = 97

// NewRing builds a ring over the given backends (order does not matter;
// placement depends only on the name set). virtualNodes <= 0 selects
// DefaultVirtualNodes.
func NewRing(backends []string, virtualNodes int) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one backend")
	}
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(backends))
	r := &Ring{backends: append([]string(nil), backends...), vnodes: virtualNodes}
	for i, b := range r.backends {
		if b == "" {
			return nil, fmt.Errorf("cluster: empty backend name")
		}
		if seen[b] {
			return nil, fmt.Errorf("cluster: duplicate backend %q", b)
		}
		seen[b] = true
		for v := 0; v < virtualNodes; v++ {
			pos := ringHash(b + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{pos: pos, backend: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Colliding points order by backend name so the ring is
		// deterministic regardless of input order.
		return r.backends[r.points[i].backend] < r.backends[r.points[j].backend]
	})
	return r, nil
}

// ringHash maps a string into the prime-sized ring space. The math
// lives in keyspace.Hash so backend servers evaluate migration-range
// membership with exactly the hash the ring routes by.
func ringHash(s string) uint32 { return keyspace.Hash(s) }

// find returns the index of the first point at or after pos, wrapping.
func (r *Ring) find(pos uint32) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Primary returns the backend owning key.
func (r *Ring) Primary(key string) string {
	return r.backends[r.points[r.find(ringHash(key))].backend]
}

// Replicas returns up to n distinct backends for key, in ring order:
// the primary first, then the backends met walking clockwise — the
// failover sequence every coordinator retry follows, so a key's jobs
// always land on the same fallback when its primary dies.
func (r *Ring) Replicas(key string, n int) []string {
	if n <= 0 || n > len(r.backends) {
		n = len(r.backends)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	start := r.find(ringHash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, r.backends[p.backend])
		}
	}
	return out
}

// ownerAt returns the backend owning ring position pos — Primary
// without the hashing, used by the migration-range walk.
func (r *Ring) ownerAt(pos uint32) string {
	return r.backends[r.points[r.find(pos)].backend]
}

// positions returns every point position on the ring, sorted ascending
// (duplicates possible on vnode collisions).
func (r *Ring) positions() []uint32 {
	out := make([]uint32, len(r.points))
	for i, p := range r.points {
		out[i] = p.pos
	}
	return out
}

// Has reports whether backend is a ring member.
func (r *Ring) Has(backend string) bool {
	for _, b := range r.backends {
		if b == backend {
			return true
		}
	}
	return false
}

// Backends returns the member set (in construction order).
func (r *Ring) Backends() []string { return append([]string(nil), r.backends...) }

// Points returns the number of virtual-node points on the ring.
func (r *Ring) Points() int { return len(r.points) }

// VirtualNodes returns the per-backend point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }
