package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// svgPalette holds the series stroke colours (colour-blind-safe).
var svgPalette = []string{"#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE", "#AA3377"}

// WriteSVG renders the series as a standalone SVG line chart — the
// repository's publishable form of the paper's figures. Axes are linear;
// each series gets a coloured polyline, point markers, and a legend
// entry.
func WriteSVG(w io.Writer, title, xLabel, yLabel string, series []PlotSeries, width, height int) error {
	if width < 200 || height < 150 {
		return fmt.Errorf("report: SVG area %dx%d too small", width, height)
	}
	if len(series) == 0 {
		return fmt.Errorf("report: no series to plot")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			return fmt.Errorf("report: series %q malformed", s.Name)
		}
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	minY = math.Min(minY, 0) // anchor cycles axes at zero
	if maxY == minY {
		maxY = minY + 1
	}

	const (
		padL, padR = 64, 16
		padT, padB = 36, 44
	)
	plotW := float64(width - padL - padR)
	plotH := float64(height - padT - padB)
	px := func(x float64) float64 { return float64(padL) + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(padT) + (1-(y-minY)/(maxY-minY))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", padL, xmlEscape(title))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", padL, padT, padL, height-padB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", padL, height-padB, width-padR, height-padB)
	// Ticks: min/max on both axes.
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n", padL-6, height-padB+4, trimNum(minY))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n", padL-6, padT+4, trimNum(maxY))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", padL, height-padB+18, trimNum(minX))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", width-padR, height-padB+18, trimNum(maxX))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", padL+int(plotW/2), height-8, xmlEscape(xLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		padT+int(plotH/2), padT+int(plotH/2), xmlEscape(yLabel))

	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		pts := make([]string, len(s.X))
		for i := range s.X {
			pts[i] = fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i]))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend.
		ly := padT + 8 + si*16
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", width-padR-150, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", width-padR-135, ly+9, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
