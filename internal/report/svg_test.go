package report

import (
	"strings"
	"testing"
)

func demoSeries() []PlotSeries {
	return []PlotSeries{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 4, 9}},
		{Name: "b<&>", X: []float64{0, 1, 2}, Y: []float64{9, 4, 1}},
	}
}

func TestWriteSVG(t *testing.T) {
	var sb strings.Builder
	if err := WriteSVG(&sb, "fig", "x", "cycles", demoSeries(), 640, 400); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "fig", "b&lt;&amp;&gt;", "cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<circle") != 6 {
		t.Errorf("markers = %d, want 6", strings.Count(out, "<circle"))
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("polylines = %d, want 2", strings.Count(out, "<polyline"))
	}
}

func TestWriteSVGValidation(t *testing.T) {
	var sb strings.Builder
	if err := WriteSVG(&sb, "", "", "", nil, 640, 400); err == nil {
		t.Error("empty series accepted")
	}
	if err := WriteSVG(&sb, "", "", "", demoSeries(), 50, 50); err == nil {
		t.Error("tiny area accepted")
	}
	bad := []PlotSeries{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}
	if err := WriteSVG(&sb, "", "", "", bad, 640, 400); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestWriteSVGConstant(t *testing.T) {
	var sb strings.Builder
	flat := []PlotSeries{{Name: "c", X: []float64{5, 5}, Y: []float64{3, 3}}}
	if err := WriteSVG(&sb, "flat", "x", "y", flat, 640, 400); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Error("degenerate ranges produced NaN coordinates")
	}
}
