package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PlotSeries is one curve for Plot.
type PlotSeries struct {
	Name string
	X, Y []float64
}

// Plot renders series as a fixed-size ASCII chart (linear axes), so
// cmd/figures can show the paper's figures as actual curves in a
// terminal. Each series is drawn with its own marker; a legend follows.
func Plot(w io.Writer, title string, series []PlotSeries, width, height int) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("report: plot area %dx%d too small", width, height)
	}
	if len(series) == 0 {
		return fmt.Errorf("report: no series to plot")
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@'}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			return fmt.Errorf("report: series %q malformed", s.Name)
		}
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(height-1)))
			if grid[row][col] == ' ' || grid[row][col] == mk {
				grid[row][col] = mk
			} else {
				grid[row][col] = '&' // overlapping series
			}
		}
	}

	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	yLabelW := 10
	for r, line := range grid {
		var label string
		switch r {
		case 0:
			label = trimNum(maxY)
		case height - 1:
			label = trimNum(minY)
		}
		if _, err := fmt.Fprintf(w, "%*s |%s\n", yLabelW, label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%*s +%s\n", yLabelW, "", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%*s  %-*s%s\n", yLabelW, "", width-len(trimNum(maxX)), trimNum(minX), trimNum(maxX)); err != nil {
		return err
	}
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "%*s  %c %s\n", yLabelW, "", markers[si%len(markers)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

func trimNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}
