package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden compares got against testdata/<name> and rewrites the file
// when the -update flag is set:
//
//	go test ./internal/report -run Golden -update
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(rerun with -update if the change is intended)", name, got, want)
	}
}

// goldenTable is a fixed table exercising alignment, numeric formatting,
// and CSV/Markdown escaping edge cases.
func goldenTable() *Table {
	t := New("Miss ratio vs stride, C=8191", "stride", "prime", "direct", "note")
	t.MustAddRow(1, 0.0122, 0.0122, "unit")
	t.MustAddRow(512, 0.0122, 1.0, "pow2, \"worst\" case")
	t.MustAddRow(8191, 1.0, 0.5, "stride = C")
	t.MustAddRow(-3, 0.0122, 0.25, "reverse, comma: a,b")
	return t
}

func goldenSeries() []PlotSeries {
	return []PlotSeries{
		{Name: "prime", X: []float64{1, 2, 4, 8, 16}, Y: []float64{1.22, 1.22, 1.22, 1.22, 1.22}},
		{Name: "direct", X: []float64{1, 2, 4, 8, 16}, Y: []float64{1.22, 3.1, 11.8, 47.0, 100}},
	}
}

func TestGoldenText(t *testing.T) {
	var b bytes.Buffer
	if err := goldenTable().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.txt", b.Bytes())
}

func TestGoldenCSV(t *testing.T) {
	var b bytes.Buffer
	if err := goldenTable().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.csv", b.Bytes())
}

func TestGoldenMarkdown(t *testing.T) {
	var b bytes.Buffer
	if err := goldenTable().WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.md", b.Bytes())
}

func TestGoldenPlot(t *testing.T) {
	var b bytes.Buffer
	if err := Plot(&b, "miss ratio (%) vs stride", goldenSeries(), 64, 16); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "plot.txt", b.Bytes())
}

func TestGoldenSVG(t *testing.T) {
	var b bytes.Buffer
	if err := WriteSVG(&b, "miss ratio vs stride", "stride", "miss %", goldenSeries(), 480, 300); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "plot.svg", b.Bytes())
}
