package report

import (
	"strings"
	"testing"
)

func TestTableBasics(t *testing.T) {
	tb := New("demo", "x", "y")
	if err := tb.AddRow(1, 2.5); err != nil {
		t.Fatal(err)
	}
	tb.MustAddRow("a", "b")
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	if tb.Cell(0, 1) != "2.5" || tb.Cell(1, 0) != "a" {
		t.Errorf("cells: %q %q", tb.Cell(0, 1), tb.Cell(1, 0))
	}
}

func TestAddRowArity(t *testing.T) {
	tb := New("demo", "x", "y")
	if err := tb.AddRow(1); err == nil {
		t.Error("short row accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow did not panic")
		}
	}()
	tb.MustAddRow(1, 2, 3)
}

func TestWriteText(t *testing.T) {
	tb := New("title", "name", "value")
	tb.MustAddRow("alpha", 1.0)
	tb.MustAddRow("b", 123456.0)
	out := tb.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "123456") {
		t.Errorf("missing cells in:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: header and row share the value column offset.
	if strings.Index(lines[1], "value") < 0 {
		t.Error("header misrendered")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := New("", "a", "b,comma")
	tb.MustAddRow(`quote"inside`, 2)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,\"b,comma\"\n\"quote\"\"inside\",2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFloatFormatting(t *testing.T) {
	if got := formatCell(3.14159265); got != "3.1416" {
		t.Errorf("formatCell = %q", got)
	}
	if got := formatCell(float32(2)); got != "2" {
		t.Errorf("formatCell(float32) = %q", got)
	}
	if got := formatCell(7); got != "7" {
		t.Errorf("formatCell(int) = %q", got)
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := New("md title", "a", "b|pipe")
	tb.MustAddRow("x|y", 2)
	var sb strings.Builder
	if err := tb.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**md title**", `| a | b\|pipe |`, "| --- | --- |", `| x\|y | 2 |`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
