// Package report renders experiment results as fixed-width text tables
// and CSV, the output formats of cmd/figures and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v, floats with 4
// significant decimals.
func (t *Table) AddRow(cells ...interface{}) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
	return nil
}

// MustAddRow is AddRow but panics on arity mismatch (a programming error).
func (t *Table) MustAddRow(cells ...interface{}) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case float64:
		return formatFloat(v)
	case float32:
		return formatFloat(float64(v))
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) && v > -1e15 && v < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 5, 64)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (without the title).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	if _, err := fmt.Fprintf(w, "%s\n", strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintf(w, "%s\n", strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the text form.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.WriteText(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteMarkdown renders the table as a GitHub-flavoured Markdown table
// (used to regenerate the result sections of EXPERIMENTS.md).
func (t *Table) WriteMarkdown(w io.Writer) error {
	esc := func(s string) string { return strings.ReplaceAll(s, "|", `\|`) }
	cols := make([]string, len(t.Columns))
	seps := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
		seps[i] = "---"
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n| %s |\n", strings.Join(cols, " | "), strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	return nil
}
