package report

import (
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	var sb strings.Builder
	err := Plot(&sb, "demo", []PlotSeries{
		{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "* up", "+ down", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 10 rows + axis + x labels + 2 legend lines
	if len(lines) != 15 {
		t.Errorf("got %d lines, want 15:\n%s", len(lines), out)
	}
	// The rising series puts a marker in the top-right region and the
	// falling one in the top-left.
	top := lines[1]
	if !strings.Contains(top, "*") && !strings.Contains(top, "+") && !strings.Contains(top, "&") {
		t.Errorf("top row empty: %q", top)
	}
}

func TestPlotValidation(t *testing.T) {
	var sb strings.Builder
	if err := Plot(&sb, "", nil, 40, 10); err == nil {
		t.Error("empty series accepted")
	}
	if err := Plot(&sb, "", []PlotSeries{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}, 40, 10); err == nil {
		t.Error("ragged series accepted")
	}
	if err := Plot(&sb, "", []PlotSeries{{Name: "x", X: []float64{1}, Y: []float64{1}}}, 4, 2); err == nil {
		t.Error("tiny plot area accepted")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	var sb strings.Builder
	err := Plot(&sb, "flat", []PlotSeries{{Name: "c", X: []float64{1, 2}, Y: []float64{5, 5}}}, 20, 5)
	if err != nil {
		t.Fatalf("constant series: %v", err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("no markers drawn")
	}
}

func TestTrimNum(t *testing.T) {
	if trimNum(5) != "5" || trimNum(2.5) != "2.5" {
		t.Errorf("trimNum: %q %q", trimNum(5), trimNum(2.5))
	}
}
