package trace

import (
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := Concat(
		Strided(0, 3, 5, 1),
		StridedWrite(1000, 1, 3, 2),
	)
	var sb strings.Builder
	if _, err := orig.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("len %d, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("ref %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestReadCommentsAndDefaults(t *testing.T) {
	in := "# comment\n\nR ff\nw 10 3\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 {
		t.Fatalf("len = %d, want 2", len(tr))
	}
	if tr[0].Addr != 0xff || tr[0].Write || tr[0].Stream != 0 {
		t.Errorf("ref 0 = %+v", tr[0])
	}
	if tr[1].Addr != 0x10 || !tr[1].Write || tr[1].Stream != 3 {
		t.Errorf("ref 1 = %+v", tr[1])
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{
		"X ff\n",
		"R\n",
		"R zz\n",
		"R ff notanint\n",
		"R ff 1 extra\n",
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func FuzzTraceRead(f *testing.F) {
	f.Add("R ff 1\nW 10 2\n")
	f.Add("# comment\n\nr 0\n")
	f.Add("X bad\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		// Anything accepted must round-trip exactly.
		var sb strings.Builder
		if _, err := tr.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round-trip reparse failed: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round-trip length %d != %d", len(back), len(tr))
		}
		for i := range tr {
			if back[i] != tr[i] {
				t.Fatalf("round-trip ref %d: %+v != %+v", i, back[i], tr[i])
			}
		}
	})
}
