package trace

import (
	"math"
	"strings"
	"testing"

	"primecache/internal/cache"
	"primecache/internal/vcm"
)

func TestProfileSingleStream(t *testing.T) {
	// 4 passes over a 256-element stride-3 vector.
	tr := Repeat(Strided(0, 3, 256, 1), 4)
	ps := Profile(tr)
	if len(ps) != 1 {
		t.Fatalf("streams = %d, want 1", len(ps))
	}
	p := ps[0]
	if p.Stream != 1 || p.Accesses != 1024 || p.Distinct != 256 {
		t.Errorf("profile = %+v", p)
	}
	if math.Abs(p.Reuse-4) > 1e-12 {
		t.Errorf("reuse = %v, want 4", p.Reuse)
	}
	// Strides: within a pass all 3; at pass boundaries a big jump back.
	if p.StrideHist[3] != 4*255 {
		t.Errorf("stride-3 steps = %d, want %d", p.StrideHist[3], 4*255)
	}
	if p.PStride1 != 0 {
		t.Errorf("P1 = %v, want 0", p.PStride1)
	}
	if p.Runs != 4+3 && p.Runs != 4 { // 4 runs + boundary steps form runs of their own
		t.Logf("runs = %d (boundary handling)", p.Runs)
	}
}

func TestProfileUnitStride(t *testing.T) {
	tr := Strided(100, 1, 500, 2)
	p := Profile(tr)[0]
	if p.PStride1 < 0.99 {
		t.Errorf("P1 = %v, want ≈ 1", p.PStride1)
	}
	if p.MeanRunLen < 499 {
		t.Errorf("mean run length = %v, want ≈ 500", p.MeanRunLen)
	}
}

func TestProfileEmptyAndTiny(t *testing.T) {
	if got := Profile(nil); len(got) != 0 {
		t.Errorf("Profile(nil) = %v", got)
	}
	p := Profile(Trace{{Addr: 8, Stream: 3}})[0]
	if p.Accesses != 1 || p.Distinct != 1 || p.Runs != 1 {
		t.Errorf("singleton profile = %+v", p)
	}
}

func TestFitVCMRecoversParameters(t *testing.T) {
	// Construct the VCM's canonical trace: stream 1 = B-element vector
	// reused R times (stride 5); stream 2 = B·Pds elements (stride 1)
	// interleaved.
	const b, r = 1024, 8
	const b2 = 256 // Pds = 0.25
	tr := Concat(
		Repeat(Strided(0, 5, b, 1), r),
		Repeat(Strided(1<<20, 1, b2, 2), r),
	)
	v, err := FitVCM(tr)
	if err != nil {
		t.Fatal(err)
	}
	if v.B != b {
		t.Errorf("B = %d, want %d", v.B, b)
	}
	if v.R != r {
		t.Errorf("R = %d, want %d", v.R, r)
	}
	if math.Abs(v.Pds-0.25) > 0.01 {
		t.Errorf("Pds = %v, want 0.25", v.Pds)
	}
	if v.P1S1 > 0.05 {
		t.Errorf("P1S1 = %v, want ≈ 0 (stride 5)", v.P1S1)
	}
	if v.P1S2 < 0.95 {
		t.Errorf("P1S2 = %v, want ≈ 1 (unit stride)", v.P1S2)
	}
}

func TestFitVCMErrors(t *testing.T) {
	if _, err := FitVCM(nil); err == nil {
		t.Error("empty trace accepted")
	}
}

// TestFitVCMFromKernelTrace closes the loop: profile the canonical
// strided-reuse pattern, feed the fitted VCM into the analytic model, and
// check the model still ranks prime below direct.
func TestFitVCMFromKernelTrace(t *testing.T) {
	tr := Concat(
		Repeat(Strided(0, 512, 2048, 1), 6),
		Repeat(Strided(1<<21+12345, 7, 512, 2), 6),
	)
	v, err := FitVCM(tr)
	if err != nil {
		t.Fatal(err)
	}
	mach := vcmDefaultMachine()
	const n = 1 << 20
	dir := vcmCPRDirect(mach, v, n)
	prm := vcmCPRPrime(mach, v, n)
	if prm >= dir {
		t.Errorf("fitted model: prime %v not below direct %v", prm, dir)
	}
}

// tiny shims keeping the vcm import local to this test file
func vcmDefaultMachine() vcm.Machine { return vcm.DefaultMachine(64, 32) }
func vcmCPRDirect(m vcm.Machine, v vcm.VCM, n int) float64 {
	return vcm.CyclesPerResultCC(vcm.DirectGeom(13), m, v, n)
}
func vcmCPRPrime(m vcm.Machine, v vcm.VCM, n int) float64 {
	return vcm.CyclesPerResultCC(vcm.PrimeGeom(13), m, v, n)
}

// TestFromVCMFitRoundTrip: FitVCM is a one-sided inverse of FromVCM.
func TestFromVCMFitRoundTrip(t *testing.T) {
	orig := vcm.VCM{B: 777, R: 5, Pds: 0.25, P1S1: 0, P1S2: 1}
	tr, err := FromVCM(orig, 9, 1, 0, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FitVCM(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got.B != orig.B || got.R != orig.R {
		t.Errorf("B/R = %d/%d, want %d/%d", got.B, got.R, orig.B, orig.R)
	}
	if math.Abs(got.Pds-0.25) > 0.01 {
		t.Errorf("Pds = %v, want 0.25", got.Pds)
	}
	if got.P1S1 > 0.05 || got.P1S2 < 0.95 {
		t.Errorf("P1 = %v/%v, want ≈0/≈1", got.P1S1, got.P1S2)
	}
}

func TestFromVCMValidation(t *testing.T) {
	if _, err := FromVCM(vcm.VCM{B: 0, R: 1}, 1, 1, 0, 0); err == nil {
		t.Error("bad VCM accepted")
	}
}

// TestFromVCMThroughCaches replays a VCM operating point through both
// cache simulators and checks the analytic ordering trace-level.
func TestFromVCMThroughCaches(t *testing.T) {
	v := vcm.VCM{B: 2048, R: 6, Pds: 0, P1S1: 0, P1S2: 0}
	tr, err := FromVCM(v, 512, 1, 0, 1<<21) // power-of-two stride
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := cache.NewDirect(8192)
	prime, _ := cache.NewPrime(13)
	ds := Replay(direct, tr)
	ps := Replay(prime, tr)
	if ps.MissRatio() >= ds.MissRatio() {
		t.Errorf("prime miss %v not below direct %v", ps.MissRatio(), ds.MissRatio())
	}
	if ps.Conflict != 0 {
		t.Errorf("prime conflicts = %d, want 0", ps.Conflict)
	}
}

// TestProfileReaderMatchesProfile: the streaming profiler agrees with the
// in-memory one on a serialised trace.
func TestProfileReaderMatchesProfile(t *testing.T) {
	tr := Concat(
		Repeat(Strided(0, 5, 300, 1), 3),
		Strided(1<<20, 1, 200, 2),
	)
	want := Profile(tr)
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ProfileReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streams %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Stream != w.Stream || g.Accesses != w.Accesses || g.Distinct != w.Distinct ||
			g.Runs != w.Runs || g.PStride1 != w.PStride1 || g.MeanRunLen != w.MeanRunLen {
			t.Errorf("stream %d:\n got %+v\nwant %+v", w.Stream, g, w)
		}
		for s, n := range w.StrideHist {
			if g.StrideHist[s] != n {
				t.Errorf("stream %d stride %d: %d, want %d", w.Stream, s, g.StrideHist[s], n)
			}
		}
	}
}

func TestProfileReaderErrors(t *testing.T) {
	for _, in := range []string{"R\n", "R zz\n", "R ff x\n"} {
		if _, err := ProfileReader(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
	got, err := ProfileReader(strings.NewReader("# only comments\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream profile: %v, %v", got, err)
	}
}
