package trace_test

// External test package: the generator lives in the oracle package,
// which imports trace.

import (
	"testing"

	"primecache/internal/oracle"
)

// TestRefCountMatchesBuild sweeps the oracle generator's pattern
// parameter space and asserts the closed-form RefCount agrees with the
// length of the materialised trace for every valid pattern — the
// property the server's cost-bounding admission check depends on.
func TestRefCountMatchesBuild(t *testing.T) {
	g := oracle.NewGen(20260806)
	for i := 0; i < 2000; i++ {
		p := g.Pattern()
		tr, err := p.Build()
		if err != nil {
			t.Fatalf("pattern %d (%s): generator produced invalid pattern: %v", i, p, err)
		}
		if got, want := p.RefCount(), len(tr); got != want {
			t.Fatalf("pattern %d (%s): RefCount() = %d, len(Build()) = %d", i, p, got, want)
		}
	}
}
