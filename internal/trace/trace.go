// Package trace builds and replays address traces for the vector access
// patterns the paper studies: strided sweeps, sub-block (sub-matrix)
// accesses, matrix row/column/diagonal walks, and blocked-FFT phases.
// Traces feed the cache simulator (package cache) and give trace-driven
// ground truth for the analytical model's interference counts.
package trace

import (
	"fmt"

	"primecache/internal/cache"
)

// WordBytes is the element size all generators use: one double-precision
// word, matching the paper's fixed 8-byte cache line.
const WordBytes = 8

// Ref is one memory reference.
type Ref struct {
	// Addr is the byte address.
	Addr uint64
	// Write marks a store.
	Write bool
	// Stream is the vector-stream id for interference attribution.
	Stream int
}

// Trace is an ordered reference sequence.
type Trace []Ref

// Strided returns an n-element load stream starting at word index base
// with the given word stride.
func Strided(baseWord uint64, strideWords int64, n, stream int) Trace {
	t := make(Trace, 0, n)
	a := int64(baseWord)
	for i := 0; i < n; i++ {
		t = append(t, Ref{Addr: uint64(a) * WordBytes, Stream: stream})
		a += strideWords
	}
	return t
}

// StridedWrite is Strided with Write set.
func StridedWrite(baseWord uint64, strideWords int64, n, stream int) Trace {
	t := Strided(baseWord, strideWords, n, stream)
	for i := range t {
		t[i].Write = true
	}
	return t
}

// Interleave merges traces round-robin, modelling concurrent vector
// streams (the paper's double-stream accesses). Exhausted traces drop out.
func Interleave(traces ...Trace) Trace {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := make(Trace, 0, total)
	idx := make([]int, len(traces))
	for len(out) < total {
		for k, t := range traces {
			if idx[k] < len(t) {
				out = append(out, t[idx[k]])
				idx[k]++
			}
		}
	}
	return out
}

// Repeat concatenates n copies of t, modelling a reuse factor of n.
func Repeat(t Trace, n int) Trace {
	if n <= 0 {
		return nil
	}
	out := make(Trace, 0, len(t)*n)
	for i := 0; i < n; i++ {
		out = append(out, t...)
	}
	return out
}

// Concat joins traces in order.
func Concat(traces ...Trace) Trace {
	var out Trace
	for _, t := range traces {
		out = append(out, t...)
	}
	return out
}

// Column returns a sweep of column j of a P×Q column-major matrix starting
// at word index base: unit stride, length p.
func Column(baseWord uint64, p, j, stream int) Trace {
	return Strided(baseWord+uint64(j*p), 1, p, stream)
}

// Row returns a sweep of row i of a P×Q column-major matrix: stride P,
// length q.
func Row(baseWord uint64, p, q, i, stream int) Trace {
	return Strided(baseWord+uint64(i), int64(p), q, stream)
}

// Diagonal returns the major-diagonal sweep of a P×Q column-major matrix:
// stride P+1, the access the paper notes can never be made conflict-free
// together with rows in a power-of-two cache.
func Diagonal(baseWord uint64, p, n, stream int) Trace {
	return Strided(baseWord, int64(p)+1, n, stream)
}

// Subblock returns a column-major walk of a b1×b2 sub-block of a matrix
// with leading dimension p: b2 unit-stride runs of b1 words, successive
// runs p words apart (§4's sub-block access).
func Subblock(baseWord uint64, p, b1, b2, stream int) Trace {
	t := make(Trace, 0, b1*b2)
	for col := 0; col < b2; col++ {
		t = append(t, Strided(baseWord+uint64(col*p), 1, b1, stream)...)
	}
	return t
}

// FFTStage returns the access stream of one radix-2 butterfly stage over n
// points with butterfly span (stride between pair elements) span: for each
// pair, load both halves. Strides are powers of two in every stage but the
// last — the pattern that thrashes a direct-mapped cache.
func FFTStage(baseWord uint64, n, span, stream int) (Trace, error) {
	if n <= 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("trace: FFT size must be a power of two > 1, got %d", n)
	}
	if span <= 0 || span >= n || n%(2*span) != 0 {
		return nil, fmt.Errorf("trace: invalid FFT span %d for n=%d", span, n)
	}
	t := make(Trace, 0, n)
	for group := 0; group < n; group += 2 * span {
		for k := 0; k < span; k++ {
			i := uint64(group + k)
			t = append(t, Ref{Addr: (baseWord + i) * WordBytes, Stream: stream})
			t = append(t, Ref{Addr: (baseWord + i + uint64(span)) * WordBytes, Stream: stream})
		}
	}
	return t, nil
}

// Replay runs the trace through any cache organisation and returns the
// stats delta for exactly this trace. The references stream through the
// batch API in fixed-size chunks, so organisations with a devirtualized
// fast path (see cache.BatchSim) replay at batch speed; the outcome is
// identical to per-access replay.
func Replay(c cache.Sim, t Trace) cache.Stats {
	before := c.Stats()
	var buf [replayChunk]cache.Access
	for lo := 0; lo < len(t); lo += replayChunk {
		hi := lo + replayChunk
		if hi > len(t) {
			hi = len(t)
		}
		n := hi - lo
		for i, r := range t[lo:hi] {
			buf[i] = cache.Access{Addr: r.Addr, Write: r.Write, Stream: r.Stream}
		}
		cache.AccessBatch(c, buf[:n], nil)
	}
	after := c.Stats()
	return diffStats(after, before)
}

func diffStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:          a.Accesses - b.Accesses,
		Reads:             a.Reads - b.Reads,
		Writes:            a.Writes - b.Writes,
		Hits:              a.Hits - b.Hits,
		Misses:            a.Misses - b.Misses,
		Compulsory:        a.Compulsory - b.Compulsory,
		Capacity:          a.Capacity - b.Capacity,
		Conflict:          a.Conflict - b.Conflict,
		SelfInterference:  a.SelfInterference - b.SelfInterference,
		CrossInterference: a.CrossInterference - b.CrossInterference,
		Evictions:         a.Evictions - b.Evictions,
	}
}
