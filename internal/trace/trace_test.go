package trace

import (
	"testing"

	"primecache/internal/cache"
)

func words(t Trace) []uint64 {
	out := make([]uint64, len(t))
	for i, r := range t {
		out[i] = r.Addr / WordBytes
	}
	return out
}

func TestStrided(t *testing.T) {
	tr := Strided(10, 3, 4, 1)
	want := []uint64{10, 13, 16, 19}
	got := words(tr)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("words = %v, want %v", got, want)
		}
		if tr[i].Write || tr[i].Stream != 1 {
			t.Fatalf("ref %d = %+v", i, tr[i])
		}
	}
	rev := Strided(10, -2, 3, 0)
	if w := words(rev); w[0] != 10 || w[1] != 8 || w[2] != 6 {
		t.Errorf("reverse words = %v", w)
	}
}

func TestStridedWrite(t *testing.T) {
	for _, r := range StridedWrite(0, 1, 3, 0) {
		if !r.Write {
			t.Fatal("StridedWrite produced a read")
		}
	}
}

func TestInterleave(t *testing.T) {
	a := Strided(0, 1, 3, 1)
	b := Strided(100, 1, 2, 2)
	got := words(Interleave(a, b))
	want := []uint64{0, 100, 1, 101, 2}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleaved = %v, want %v", got, want)
		}
	}
}

func TestRepeatConcat(t *testing.T) {
	a := Strided(0, 1, 2, 0)
	if got := len(Repeat(a, 3)); got != 6 {
		t.Errorf("Repeat len = %d", got)
	}
	if Repeat(a, 0) != nil {
		t.Error("Repeat(_,0) should be nil")
	}
	if got := len(Concat(a, a, a)); got != 6 {
		t.Errorf("Concat len = %d", got)
	}
}

func TestRowColumnDiagonal(t *testing.T) {
	const p, q = 100, 50 // P×Q column-major
	col := Column(0, p, 3, 0)
	if len(col) != p || words(col)[0] != 300 || words(col)[1] != 301 {
		t.Errorf("Column: len=%d first=%v", len(col), words(col)[:2])
	}
	row := Row(0, p, q, 7, 0)
	if len(row) != q || words(row)[0] != 7 || words(row)[1] != 107 {
		t.Errorf("Row: len=%d first=%v", len(row), words(row)[:2])
	}
	d := Diagonal(0, p, 10, 0)
	if words(d)[1] != 101 || words(d)[2] != 202 {
		t.Errorf("Diagonal: %v", words(d)[:3])
	}
}

func TestSubblock(t *testing.T) {
	tr := Subblock(5, 100, 3, 2, 0)
	want := []uint64{5, 6, 7, 105, 106, 107}
	got := words(tr)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subblock = %v, want %v", got, want)
		}
	}
}

func TestFFTStage(t *testing.T) {
	tr, err := FFTStage(0, 8, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 2, 1, 3, 4, 6, 5, 7}
	got := words(tr)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fft stage = %v, want %v", got, want)
		}
	}
	if _, err := FFTStage(0, 7, 2, 0); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	if _, err := FFTStage(0, 8, 8, 0); err == nil {
		t.Error("span ≥ n accepted")
	}
	if _, err := FFTStage(0, 8, 3, 0); err == nil {
		t.Error("non-dividing span accepted")
	}
}

func TestReplayDelta(t *testing.T) {
	c, _ := cache.NewDirect(16)
	s1 := Replay(c, Strided(0, 1, 16, 0))
	if s1.Accesses != 16 || s1.Misses != 16 || s1.Compulsory != 16 {
		t.Errorf("first replay: %+v", s1)
	}
	s2 := Replay(c, Strided(0, 1, 16, 0))
	if s2.Accesses != 16 || s2.Hits != 16 || s2.Misses != 0 {
		t.Errorf("second replay delta not isolated: %+v", s2)
	}
}

// TestPaperRowDiagonalTension reproduces the paper's §1 motivating
// observation: in any power-of-two cache, row accesses (stride P) and
// diagonal accesses (stride P+1) cannot both be conflict-free, while the
// prime-mapped cache handles both.
func TestPaperRowDiagonalTension(t *testing.T) {
	const p = 256 // leading dimension: rows stride 256, diagonal 257
	const n = 512 // elements accessed per pattern, < cache size

	direct, _ := cache.NewDirect(8192)
	prime, _ := cache.NewPrime(13)

	for name, c := range map[string]*cache.Cache{"direct": direct, "prime": prime} {
		rows := Replay(c, Repeat(Strided(0, p, n, 1), 2))
		diag := Replay(c, Repeat(Diagonal(1<<20, p, n, 2), 2))
		switch name {
		case "direct":
			// Stride 256 folds onto 32 lines: the second pass misses too.
			if rows.Conflict == 0 {
				t.Error("direct: row sweep should conflict")
			}
			if diag.Conflict != 0 {
				t.Error("direct: stride-257 diagonal is coprime to 8192; no conflicts expected")
			}
		case "prime":
			if rows.Conflict != 0 || diag.Conflict != 0 {
				t.Errorf("prime: conflicts rows=%d diag=%d, want 0", rows.Conflict, diag.Conflict)
			}
		}
	}
}
