package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The trace text format is one reference per line:
//
//	R <hex-addr> [stream]
//	W <hex-addr> [stream]
//
// Blank lines and lines starting with '#' are ignored. The stream id is
// optional and defaults to StreamNone-like 0-attribution (stream 0).

// WriteTo serialises the trace in the text format.
func (t Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, r := range t {
		op := "R"
		if r.Write {
			op = "W"
		}
		k, err := fmt.Fprintf(bw, "%s %x %d\n", op, r.Addr, r.Stream)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a trace from the text format.
func Read(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("trace: line %d: want 'R|W addr [stream]', got %q", lineNo, line)
		}
		var ref Ref
		switch fields[0] {
		case "R", "r":
		case "W", "w":
			ref.Write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q: %v", lineNo, fields[1], err)
		}
		ref.Addr = addr
		if len(fields) == 3 {
			s, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad stream %q: %v", lineNo, fields[2], err)
			}
			ref.Stream = s
		}
		t = append(t, ref)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t, nil
}
