package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"primecache/internal/vcm"
)

// StreamProfile summarises one vector stream's behaviour in a trace.
type StreamProfile struct {
	Stream int
	// Accesses is the reference count.
	Accesses int
	// Distinct is the number of distinct word addresses — the stream's
	// footprint, the VCM's vector length.
	Distinct int
	// Reuse is Accesses/Distinct, the VCM reuse factor R.
	Reuse float64
	// Runs is the number of maximal constant-stride runs.
	Runs int
	// MeanRunLen is the average run length (the strip/vector length).
	MeanRunLen float64
	// PStride1 is the fraction of stride steps equal to ±1.
	PStride1 float64
	// StrideHist maps |stride| → step count.
	StrideHist map[int64]int
}

// Profile analyses a trace per stream: run detection, stride histogram,
// footprint and reuse — the measurable counterparts of the paper's VCM
// parameters. Streams are returned in ascending id order.
func Profile(t Trace) []StreamProfile {
	byStream := map[int][]uint64{}
	for _, r := range t {
		w := r.Addr / WordBytes
		byStream[r.Stream] = append(byStream[r.Stream], w)
	}
	ids := make([]int, 0, len(byStream))
	for id := range byStream {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]StreamProfile, 0, len(ids))
	for _, id := range ids {
		words := byStream[id]
		p := StreamProfile{Stream: id, Accesses: len(words), StrideHist: map[int64]int{}}
		distinct := map[uint64]bool{}
		for _, w := range words {
			distinct[w] = true
		}
		p.Distinct = len(distinct)
		if p.Distinct > 0 {
			p.Reuse = float64(p.Accesses) / float64(p.Distinct)
		}
		// Run detection: a run continues while the stride repeats.
		unitSteps, steps := 0, 0
		runLenSum, runLen := 0, 1
		var curStride int64
		haveStride := false
		for i := 1; i < len(words); i++ {
			s := int64(words[i]) - int64(words[i-1])
			steps++
			if s == 1 || s == -1 {
				unitSteps++
			}
			abs := s
			if abs < 0 {
				abs = -abs
			}
			p.StrideHist[abs]++
			if haveStride && s == curStride {
				runLen++
				continue
			}
			if haveStride {
				p.Runs++
				runLenSum += runLen
			}
			curStride, haveStride, runLen = s, true, 2
		}
		if haveStride {
			p.Runs++
			runLenSum += runLen
		} else if len(words) > 0 {
			p.Runs = 1
			runLenSum = len(words)
		}
		if p.Runs > 0 {
			p.MeanRunLen = float64(runLenSum) / float64(p.Runs)
		}
		if steps > 0 {
			p.PStride1 = float64(unitSteps) / float64(steps)
		}
		out = append(out, p)
	}
	return out
}

// FitVCM estimates the paper's seven-tuple from a trace: B and R from the
// largest stream's footprint and reuse, P_ds from the footprint ratio of
// the second-largest stream, and the P_stride1 values from each stream's
// step statistics. It is the calibration bridge from measured programs to
// the analytic model. The trace needs at least one stream with a positive
// footprint.
func FitVCM(t Trace) (vcm.VCM, error) {
	profs := Profile(t)
	if len(profs) == 0 {
		return vcm.VCM{}, fmt.Errorf("trace: empty trace")
	}
	// Order by footprint, largest first.
	sort.Slice(profs, func(i, j int) bool { return profs[i].Distinct > profs[j].Distinct })
	p1 := profs[0]
	if p1.Distinct == 0 {
		return vcm.VCM{}, fmt.Errorf("trace: no addresses in trace")
	}
	v := vcm.VCM{
		B:    p1.Distinct,
		R:    int(p1.Reuse + 0.5),
		P1S1: p1.PStride1,
		P1S2: p1.PStride1,
	}
	if v.R < 1 {
		v.R = 1
	}
	if len(profs) > 1 && profs[1].Distinct > 0 {
		v.Pds = float64(profs[1].Distinct) / float64(p1.Distinct)
		if v.Pds > 1 {
			v.Pds = 1
		}
		v.P1S2 = profs[1].PStride1
	}
	if err := v.Validate(); err != nil {
		return vcm.VCM{}, fmt.Errorf("trace: fitted VCM invalid: %w", err)
	}
	return v, nil
}

// FromVCM generates the canonical trace of one VCM block: R passes over a
// B-element stride-s1 vector (stream 1), with the B·P_ds-element stride-s2
// second vector (stream 2) re-read every pass. It is the inverse of
// FitVCM up to stride identity — FitVCM(FromVCM(v, …)) recovers B, R,
// P_ds and the unit-stride probabilities — and doubles as the workload
// input for trace-driven cache runs of the analytic model's operating
// points.
func FromVCM(v vcm.VCM, s1, s2 int64, base1, base2 uint64) (Trace, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	b2len := int(float64(v.B)*v.Pds + 0.5)
	var out Trace
	for pass := 0; pass < v.R; pass++ {
		out = append(out, Strided(base1, s1, v.B, 1)...)
		if b2len > 0 {
			out = append(out, Strided(base2, s2, b2len, 2)...)
		}
	}
	return out, nil
}

// ProfileReader is Profile for traces too large to hold in memory: it
// reads the text trace format from r incrementally (constant memory per
// stream) and returns the same per-stream profiles. Footprints are exact
// (one map entry per distinct address per stream); run detection and the
// stride histogram are streamed.
func ProfileReader(r io.Reader) ([]StreamProfile, error) {
	type state struct {
		prof       StreamProfile
		distinct   map[uint64]bool
		last       uint64
		haveLast   bool
		curStride  int64
		haveStride bool
		runLen     int
		runLenSum  int
		unitSteps  int
		steps      int
	}
	streams := map[int]*state{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: line %d: malformed %q", lineNo, line)
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[1])
		}
		stream := 0
		if len(fields) >= 3 {
			stream, err = strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad stream %q", lineNo, fields[2])
			}
		}
		st := streams[stream]
		if st == nil {
			st = &state{distinct: map[uint64]bool{}}
			st.prof.Stream = stream
			st.prof.StrideHist = map[int64]int{}
			streams[stream] = st
		}
		w := addr / WordBytes
		st.prof.Accesses++
		st.distinct[w] = true
		if st.haveLast {
			s := int64(w) - int64(st.last)
			st.steps++
			if s == 1 || s == -1 {
				st.unitSteps++
			}
			abs := s
			if abs < 0 {
				abs = -abs
			}
			st.prof.StrideHist[abs]++
			if st.haveStride && s == st.curStride {
				st.runLen++
			} else {
				if st.haveStride {
					st.prof.Runs++
					st.runLenSum += st.runLen
				}
				st.curStride, st.haveStride, st.runLen = s, true, 2
			}
		}
		st.last, st.haveLast = w, true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	ids := make([]int, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]StreamProfile, 0, len(ids))
	for _, id := range ids {
		st := streams[id]
		if st.haveStride {
			st.prof.Runs++
			st.runLenSum += st.runLen
		} else if st.prof.Accesses > 0 {
			st.prof.Runs = 1
			st.runLenSum = st.prof.Accesses
		}
		st.prof.Distinct = len(st.distinct)
		if st.prof.Distinct > 0 {
			st.prof.Reuse = float64(st.prof.Accesses) / float64(st.prof.Distinct)
		}
		if st.prof.Runs > 0 {
			st.prof.MeanRunLen = float64(st.runLenSum) / float64(st.prof.Runs)
		}
		if st.steps > 0 {
			st.prof.PStride1 = float64(st.unitSteps) / float64(st.steps)
		}
		out = append(out, st.prof)
	}
	return out, nil
}
