package trace

import (
	"context"
	"fmt"

	"primecache/internal/cache"
)

// A Cursor streams the references of one Pattern pass without ever
// materialising the Trace: every pattern this package generates is a
// fixed sequence of strided runs, so the cursor holds only the current
// run's parameters and a running address. It produces exactly the
// references Pattern.Build would, in the same order, with the same
// address arithmetic (including the signed wrap-around semantics of
// Strided), but in O(1) memory for any pattern size.
type Cursor struct {
	p    Pattern
	runs int // total runs in one pass

	run  int   // current run index
	pos  int   // elements already emitted from the current run
	n    int   // current run length
	cur  int64 // current word address (Strided's running accumulator)
	strd int64 // current run's word stride
	strm int   // current run's stream id
}

// NewCursor validates p and returns a cursor positioned at the first
// reference of one pass.
func NewCursor(p Pattern) (*Cursor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Cursor{p: p.Normalize()}
	switch c.p.Name {
	case "strided", "diagonal":
		c.runs = 1
	case "subblock":
		c.runs = c.p.B2
	case "rowcol":
		c.runs = 2
	case "fft":
		c.runs = c.p.B2
	default:
		return nil, fmt.Errorf("trace: unknown pattern %q", c.p.Name)
	}
	c.Reset()
	return c, nil
}

// Reset rewinds the cursor to the start of the pass.
func (c *Cursor) Reset() {
	c.run = -1
	c.pos = 0
	c.n = 0
	c.nextRun()
}

// nextRun advances to the next non-empty run, loading its parameters;
// it leaves n == 0 when the pass is exhausted.
func (c *Cursor) nextRun() {
	p := &c.p
	for c.run++; c.run < c.runs; c.run++ {
		var base uint64
		switch p.Name {
		case "strided":
			base, c.strd, c.n, c.strm = p.Start, p.Stride, p.N, p.Stream
		case "diagonal":
			base, c.strd, c.n, c.strm = p.Start, int64(p.LD)+1, p.N, p.Stream
		case "subblock":
			base, c.strd, c.n, c.strm = p.Start+uint64(c.run*p.LD), 1, p.B1, p.Stream
		case "rowcol":
			if c.run == 0 {
				// Column sweep capped at the column height, as Build
				// slices col[:min(n/2, ld)].
				n := p.N / 2
				if n > p.LD {
					n = p.LD
				}
				base, c.strd, c.n, c.strm = p.Start, 1, n, p.Stream
			} else {
				base, c.strd, c.n, c.strm = p.Start, int64(p.LD), p.N/2, p.Stream+1
			}
		case "fft":
			base, c.strd, c.n, c.strm = p.Start+uint64(c.run), int64(p.B2), p.N/p.B2, p.Stream
		}
		if c.n > 0 {
			c.pos = 0
			c.cur = int64(base)
			return
		}
	}
	c.n = 0
}

// Next fills buf with the next references of the pass, as cache
// accesses, and returns how many it wrote; 0 means the pass is
// exhausted. All generated references are loads.
func (c *Cursor) Next(buf []cache.Access) int {
	filled := 0
	for filled < len(buf) && c.n > 0 {
		k := c.n - c.pos
		if k > len(buf)-filled {
			k = len(buf) - filled
		}
		cur, strd, strm := c.cur, c.strd, c.strm
		for i := 0; i < k; i++ {
			buf[filled+i] = cache.Access{Addr: uint64(cur) * WordBytes, Stream: strm}
			cur += strd
		}
		c.cur = cur
		c.pos += k
		filled += k
		if c.pos == c.n {
			c.nextRun()
		}
	}
	return filled
}

// replayChunk is the fixed batch size Replay and ReplayPattern stream
// through cache.AccessBatch: large enough to amortise the batch setup,
// small enough to live on the stack.
const replayChunk = 256

// ReplayPattern streams passes passes of p through any cache
// organisation in fixed-size chunks via the batch API and returns the
// stats delta, never materialising the trace: peak memory is O(1) in
// the pattern size. It is Replay for patterns too large to Build.
func ReplayPattern(c cache.Sim, p Pattern, passes int) (cache.Stats, error) {
	stats, _, err := ReplayPatternContext(context.Background(), c, p, passes, 0)
	return stats, err
}

// ReplayPatternContext is ReplayPattern with cooperative cancellation:
// it checks ctx.Err() roughly every checkEvery references (<= 0 selects
// one check per pass), so a replay whose requester has gone away stops
// within one checkpoint interval instead of finishing a multi-gigaref
// job. It returns the stats delta accumulated so far, the number of
// references completed, and ctx's error when it stopped early. Only
// Err() is consulted — a caller may supply any Context whose Err()
// flips, without a Done channel ever being selected on, so checkpoints
// stay cheap.
func ReplayPatternContext(ctx context.Context, c cache.Sim, p Pattern, passes int, checkEvery int) (cache.Stats, uint64, error) {
	cur, err := NewCursor(p)
	if err != nil {
		return cache.Stats{}, 0, err
	}
	before := c.Stats()
	var refsDone uint64
	budget := checkEvery
	var buf [replayChunk]cache.Access
	for pass := 0; pass < passes; pass++ {
		cur.Reset()
		for {
			n := cur.Next(buf[:])
			if n == 0 {
				break
			}
			cache.AccessBatch(c, buf[:n], nil)
			refsDone += uint64(n)
			if checkEvery <= 0 {
				continue
			}
			if budget -= n; budget > 0 {
				continue
			}
			budget = checkEvery
			if err := ctx.Err(); err != nil {
				return diffStats(c.Stats(), before), refsDone, err
			}
		}
		// A checkpoint between passes regardless of checkEvery, so even
		// a tiny-pattern × many-passes job stays cancellable.
		if err := ctx.Err(); err != nil {
			return diffStats(c.Stats(), before), refsDone, err
		}
	}
	return diffStats(c.Stats(), before), refsDone, nil
}
