package trace

import (
	"math"
	"testing"

	"primecache/internal/cache"
)

func TestPatternBuildMatchesGenerators(t *testing.T) {
	cases := []struct {
		name string
		p    Pattern
		want Trace
	}{
		{"strided", Pattern{Name: "strided", Start: 8, Stride: 3, N: 5},
			Strided(8, 3, 5, 1)},
		{"diagonal", Pattern{Name: "diagonal", Start: 0, LD: 100, N: 4},
			Diagonal(0, 100, 4, 1)},
		{"subblock", Pattern{Name: "subblock", LD: 100, B1: 2, B2: 3},
			Subblock(0, 100, 2, 3, 1)},
		{"fft", Pattern{Name: "fft", N: 8, B2: 2},
			Concat(Strided(0, 2, 4, 1), Strided(1, 2, 4, 1))},
	}
	for _, tc := range cases {
		got, err := tc.p.Build()
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %d refs, want %d", tc.name, len(got), len(tc.want))
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: ref %d = %+v, want %+v", tc.name, i, got[i], tc.want[i])
				break
			}
		}
	}
}

func TestPatternRowcol(t *testing.T) {
	tr, err := Pattern{Name: "rowcol", LD: 64, N: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Four column refs (stride 1) then four row refs (stride 64).
	if len(tr) != 8 {
		t.Fatalf("rowcol n=8: got %d refs", len(tr))
	}
	if tr[1].Addr-tr[0].Addr != 8 {
		t.Errorf("column phase stride = %d bytes, want 8", tr[1].Addr-tr[0].Addr)
	}
	if tr[5].Addr-tr[4].Addr != 8*64 {
		t.Errorf("row phase stride = %d bytes, want %d", tr[5].Addr-tr[4].Addr, 8*64)
	}
}

func TestPatternValidate(t *testing.T) {
	for _, p := range []Pattern{
		{Name: "bogus"},
		{Name: "strided", N: -1},
		{Name: "subblock", LD: -5},
		{Name: "fft", N: 10, B2: 3}, // b2 does not divide n
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error, got nil", p)
		}
	}
	// Defaults validate for every pattern name.
	for _, name := range []string{"strided", "diagonal", "subblock", "rowcol", "fft"} {
		if err := (Pattern{Name: name}).Validate(); err != nil {
			t.Errorf("default %s pattern: %v", name, err)
		}
	}
}

func TestPatternRefCount(t *testing.T) {
	// RefCount must agree with len(Build()) for every generator,
	// including rowcol's column-sweep cap at ld.
	for _, p := range []Pattern{
		{Name: "strided", Stride: 3, N: 5},
		{Name: "strided"}, // defaults
		{Name: "diagonal", LD: 100, N: 4},
		{Name: "subblock", LD: 100, B1: 2, B2: 3},
		{Name: "rowcol", LD: 64, N: 8},
		{Name: "rowcol", LD: 4, N: 100}, // column sweep capped at ld
		{Name: "fft", N: 8, B2: 2},
	} {
		tr, err := p.Build()
		if err != nil {
			t.Errorf("Build(%+v): %v", p, err)
			continue
		}
		if got := p.RefCount(); got != len(tr) {
			t.Errorf("RefCount(%+v) = %d, len(Build()) = %d", p, got, len(tr))
		}
	}
	// Counts that would overflow int saturate instead of wrapping, so a
	// bound check against them always rejects.
	if got := (Pattern{Name: "subblock", B1: math.MaxInt, B2: 2}).RefCount(); got != math.MaxInt {
		t.Errorf("overflowing subblock RefCount = %d, want MaxInt", got)
	}
	if got := (Pattern{Name: "unknown"}).RefCount(); got != 0 {
		t.Errorf("unknown pattern RefCount = %d, want 0", got)
	}
}

func TestPatternStringCanonical(t *testing.T) {
	a := Pattern{Name: "strided"}.String()
	b := Pattern{Name: "strided", Stride: 1, N: 4096, Stream: 1, LD: 77, B1: 9}.String()
	if a != b {
		t.Errorf("canonical strings differ: %q vs %q", a, b)
	}
}

func TestReplayOnAnySim(t *testing.T) {
	// Replay accepts any cache.Sim, not just *cache.Cache.
	tr, err := Pattern{Name: "strided", Stride: 512, N: 256}.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"prime:c=5", "skewed:lines=64", "victim:lines=64,victim=4"} {
		s, err := cache.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		st := Replay(sim, tr)
		if st.Accesses != 256 {
			t.Errorf("%s: replay counted %d accesses, want 256", spec, st.Accesses)
		}
	}
}
