package trace

import (
	"fmt"
	"math"
	"strings"
)

// Pattern is a serialisable description of a synthetic access pattern —
// the generator codec shared by the vcachesim CLI and the vcached
// server. Zero-valued fields take the CLI's historical defaults in
// Normalize.
type Pattern struct {
	// Name selects the generator: "strided", "diagonal", "subblock",
	// "rowcol", or "fft".
	Name string `json:"name"`
	// Start is the starting word address.
	Start uint64 `json:"start,omitempty"`
	// Stride is the word stride for "strided" (default 1).
	Stride int64 `json:"stride,omitempty"`
	// N is elements per pass (strided/diagonal/rowcol) or total points
	// (fft); default 4096.
	N int `json:"n,omitempty"`
	// LD is the matrix leading dimension for subblock/rowcol/diagonal
	// (default 10000).
	LD int `json:"ld,omitempty"`
	// B1 and B2 are sub-block rows/columns ("subblock") or the FFT B2
	// ("fft"); default 64.
	B1 int `json:"b1,omitempty"`
	B2 int `json:"b2,omitempty"`
	// Stream is the vector-stream id accesses are attributed to
	// (default 1).
	Stream int `json:"stream,omitempty"`
}

// Normalize returns a copy of p with defaults filled in for zero-valued
// fields.
func (p Pattern) Normalize() Pattern {
	if p.Name == "" {
		p.Name = "strided"
	}
	p.Name = strings.ToLower(p.Name)
	if p.Stride == 0 {
		p.Stride = 1
	}
	if p.N == 0 {
		p.N = 4096
	}
	if p.LD == 0 {
		p.LD = 10000
	}
	if p.B1 == 0 {
		p.B1 = 64
	}
	if p.B2 == 0 {
		p.B2 = 64
	}
	if p.Stream == 0 {
		p.Stream = 1
	}
	return p
}

// Validate checks the (normalised) pattern without materialising it.
func (p Pattern) Validate() error {
	p = p.Normalize()
	switch p.Name {
	case "strided", "diagonal", "subblock", "rowcol", "fft":
	default:
		return fmt.Errorf("trace: unknown pattern %q (want strided, diagonal, subblock, rowcol, or fft)", p.Name)
	}
	if p.N < 0 {
		return fmt.Errorf("trace: pattern n must be non-negative, got %d", p.N)
	}
	if p.LD <= 0 {
		return fmt.Errorf("trace: pattern ld must be positive, got %d", p.LD)
	}
	if p.B1 < 0 || p.B2 < 0 {
		return fmt.Errorf("trace: pattern b1/b2 must be non-negative, got %d/%d", p.B1, p.B2)
	}
	if p.Name == "fft" && (p.B2 <= 0 || p.N%p.B2 != 0) {
		return fmt.Errorf("trace: fft pattern needs b2 (%d) dividing n (%d)", p.B2, p.N)
	}
	return nil
}

// RefCount returns the number of references one pass of the pattern
// materialises — len(Build()) without the allocation — saturating at
// math.MaxInt on overflow. Callers can bound a job against a reference
// budget before paying for the trace.
func (p Pattern) RefCount() int {
	p = p.Normalize()
	switch p.Name {
	case "strided", "diagonal":
		return p.N
	case "subblock":
		return satMul(p.B1, p.B2)
	case "rowcol":
		// Build caps the column sweep at min(n/2, ld) and appends an
		// n/2-element row sweep.
		col := p.N / 2
		if col > p.LD {
			col = p.LD
		}
		return satAdd(col, p.N/2)
	case "fft":
		if p.B2 <= 0 {
			return 0
		}
		return satMul(p.B2, p.N/p.B2)
	default:
		return 0
	}
}

// satMul and satAdd multiply/add non-negative ints, saturating at
// math.MaxInt instead of wrapping.
func satMul(a, b int) int {
	if a > 0 && b > math.MaxInt/a {
		return math.MaxInt
	}
	return a * b
}

func satAdd(a, b int) int {
	if a > math.MaxInt-b {
		return math.MaxInt
	}
	return a + b
}

// Build materialises one pass of the pattern as a Trace.
func (p Pattern) Build() (Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.Normalize()
	switch p.Name {
	case "strided":
		return Strided(p.Start, p.Stride, p.N, p.Stream), nil
	case "diagonal":
		return Diagonal(p.Start, p.LD, p.N, p.Stream), nil
	case "subblock":
		return Subblock(p.Start, p.LD, p.B1, p.B2, p.Stream), nil
	case "rowcol":
		// Alternating column (stride 1) and row (stride ld) sweeps.
		col := Column(p.Start, p.LD, 0, p.Stream)
		row := Row(p.Start, p.LD, p.N/2, 0, p.Stream+1)
		n := p.N / 2
		if n > len(col) {
			n = len(col)
		}
		return Concat(col[:n], row), nil
	case "fft":
		rows := p.B2
		cols := p.N / p.B2
		var tr Trace
		for r := 0; r < rows; r++ {
			tr = append(tr, Strided(p.Start+uint64(r), int64(p.B2), cols, p.Stream)...)
		}
		return tr, nil
	default:
		return nil, fmt.Errorf("trace: unknown pattern %q", p.Name)
	}
}

// String returns the canonical compact form of the normalised pattern;
// equal patterns render identically, so the string doubles as a
// memoization key component.
func (p Pattern) String() string {
	p = p.Normalize()
	switch p.Name {
	case "strided":
		return fmt.Sprintf("strided:start=%d,stride=%d,n=%d,stream=%d", p.Start, p.Stride, p.N, p.Stream)
	case "diagonal":
		return fmt.Sprintf("diagonal:start=%d,ld=%d,n=%d,stream=%d", p.Start, p.LD, p.N, p.Stream)
	case "subblock":
		return fmt.Sprintf("subblock:start=%d,ld=%d,b1=%d,b2=%d,stream=%d", p.Start, p.LD, p.B1, p.B2, p.Stream)
	case "rowcol":
		return fmt.Sprintf("rowcol:start=%d,ld=%d,n=%d,stream=%d", p.Start, p.LD, p.N, p.Stream)
	case "fft":
		return fmt.Sprintf("fft:start=%d,n=%d,b2=%d,stream=%d", p.Start, p.N, p.B2, p.Stream)
	default:
		return p.Name
	}
}
