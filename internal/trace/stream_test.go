package trace

import (
	"runtime"
	"testing"

	"primecache/internal/cache"
)

// streamPatterns covers every generator the cursor implements, with
// parameters that exercise multi-run patterns (subblock/fft emit one run
// per column) and the rowcol column-sweep cap.
var streamPatterns = []Pattern{
	{Name: "strided", Start: 8, Stride: 3, N: 1000},
	{Name: "strided", Start: 1 << 20, Stride: -7, N: 500, Stream: 2},
	{Name: "diagonal", Start: 5, LD: 100, N: 300},
	{Name: "subblock", Start: 3, LD: 100, B1: 17, B2: 9},
	{Name: "rowcol", LD: 64, N: 200},  // column sweep capped at ld
	{Name: "rowcol", LD: 512, N: 200}, // column sweep uncapped
	{Name: "fft", N: 1 << 10, B2: 16},
	{Name: "strided", N: 0}, // empty pass
}

// collect streams one pass through the cursor with the given buffer size.
func collect(t *testing.T, cur *Cursor, bufSize int) []cache.Access {
	t.Helper()
	var out []cache.Access
	buf := make([]cache.Access, bufSize)
	for {
		n := cur.Next(buf)
		if n == 0 {
			break
		}
		out = append(out, buf[:n]...)
	}
	return out
}

// TestCursorMatchesBuild proves the cursor emits exactly the references
// Pattern.Build materialises — same order, addresses, and stream ids —
// for every pattern kind and across buffer sizes that split runs at
// awkward boundaries.
func TestCursorMatchesBuild(t *testing.T) {
	for _, p := range streamPatterns {
		want, err := p.Build()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		cur, err := NewCursor(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		for _, bufSize := range []int{1, 7, 64, 1023} {
			cur.Reset()
			got := collect(t, cur, bufSize)
			if len(got) != len(want) {
				t.Errorf("%s buf=%d: cursor emitted %d refs, Build has %d", p, bufSize, len(got), len(want))
				continue
			}
			for i := range got {
				w := cache.Access{Addr: want[i].Addr, Write: want[i].Write, Stream: want[i].Stream}
				if got[i] != w {
					t.Errorf("%s buf=%d: ref %d = %+v, want %+v", p, bufSize, i, got[i], w)
					break
				}
			}
		}
	}
}

// TestCursorResetRestartsPass checks Reset rewinds to the exact start of
// the pass, including from the middle of a multi-run pattern.
func TestCursorResetRestartsPass(t *testing.T) {
	p := Pattern{Name: "subblock", Start: 3, LD: 100, B1: 17, B2: 9}
	cur, err := NewCursor(p)
	if err != nil {
		t.Fatal(err)
	}
	first := collect(t, cur, 64)
	// Drain partway into the second run, then rewind.
	cur.Reset()
	var buf [23]cache.Access
	cur.Next(buf[:])
	cur.Reset()
	second := collect(t, cur, 64)
	if len(first) != len(second) {
		t.Fatalf("reset pass emitted %d refs, first pass %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("ref %d after reset = %+v, want %+v", i, second[i], first[i])
		}
	}
}

// TestReplayPatternMatchesReplay runs the same multi-pass workload through
// the streaming path and through Build+Replay on independent instances and
// requires identical stats deltas across cache organisations.
func TestReplayPatternMatchesReplay(t *testing.T) {
	specs := []string{"prime:c=5", "direct:lines=64", "skewed:lines=64", "victim:lines=64,victim=4"}
	for _, p := range streamPatterns {
		tr, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			s, err := cache.ParseSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			a, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			const passes = 3
			streamed, err := ReplayPattern(a, p, passes)
			if err != nil {
				t.Fatal(err)
			}
			var built cache.Stats
			for i := 0; i < passes; i++ {
				built.Add(Replay(b, tr))
			}
			if streamed != built {
				t.Errorf("%s on %s: streamed stats %+v, built stats %+v", p, spec, streamed, built)
			}
		}
	}
}

// TestReplayPatternBoundedMemory is the point of the streaming path: a
// 10^7-reference strided pass replays in O(1) memory. Materialising the
// trace would allocate 240 MB (24 bytes × 10^7 refs); the streaming
// replay must stay under one megabyte total.
func TestReplayPatternBoundedMemory(t *testing.T) {
	m, err := cache.NewDirectMapper(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	// Classification off: the shadow directory and compulsory map grow
	// with the number of distinct lines, which is legitimate state, not
	// replay overhead — this test isolates the replay path itself.
	c := cache.MustNew(cache.Config{Mapper: m, Ways: 1, DisableClassify: true})
	const n = 10_000_000
	p := Pattern{Name: "strided", Stride: 3, N: n}

	// Warm once so one-time growth (batch scratch buffers) is excluded.
	if _, err := ReplayPattern(c, Pattern{Name: "strided", Stride: 3, N: 1024}, 1); err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	st, err := ReplayPattern(c, p, 1)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != n {
		t.Fatalf("replay counted %d accesses, want %d", st.Accesses, n)
	}
	if got := after.TotalAlloc - before.TotalAlloc; got > 1<<20 {
		t.Errorf("streaming replay of %d refs allocated %d bytes, want ≤ %d", n, got, 1<<20)
	}
}
