package blocking

import (
	"testing"
	"testing/quick"

	"primecache/internal/core"
	"primecache/internal/vcm"
)

func TestChooseValidation(t *testing.T) {
	if _, err := Choose(vcm.CacheGeom{Mapping: vcm.MapDirect, Lines: 1000}, 100, 0); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := Choose(vcm.PrimeGeom(13), 0, 0); err == nil {
		t.Error("bad leading dimension accepted")
	}
}

func TestChoosePrimeMatchesPaperRecipe(t *testing.T) {
	g := vcm.PrimeGeom(13)
	ch, err := Choose(g, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ch.B1 != 1809 || ch.B2 != 4 || !ch.ConflictFree {
		t.Errorf("choice = %+v, want 1809x4 conflict-free", ch)
	}
	if ch.Utilization < 0.88 {
		t.Errorf("utilization = %v", ch.Utilization)
	}
}

func TestChoosePrimeRespectsCap(t *testing.T) {
	g := vcm.PrimeGeom(13)
	ch, err := Choose(g, 10000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if ch.B1*ch.B2 > 2000 {
		t.Errorf("footprint %d exceeds cap", ch.B1*ch.B2)
	}
	if !ch.ConflictFree {
		t.Error("capped prime block should stay conflict-free")
	}
}

func TestChoosePrimeDegenerate(t *testing.T) {
	g := vcm.PrimeGeom(13)
	ch, err := Choose(g, 8191, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ch.B2 != 1 {
		t.Errorf("degenerate P should force single-column blocking, got %+v", ch)
	}
}

func TestChooseDirectPowerOfTwoLD(t *testing.T) {
	// P a multiple of the set count: only one column image exists; the
	// recommendation degrades to a single column (per way).
	g := vcm.DirectGeom(13)
	ch, err := Choose(g, 8192, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ch.B2 != 1 {
		t.Errorf("direct with P ≡ 0 should block single columns, got %+v", ch)
	}
	// A generic P gives a real 2-D block.
	ch, err = Choose(g, 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ch.B2 < 2 || !ch.ConflictFree {
		t.Errorf("generic direct choice = %+v", ch)
	}
}

// TestPrimeChoiceConflictFreeBySimulation verifies every recommendation
// against the actual cache simulator.
func TestPrimeChoiceConflictFreeBySimulation(t *testing.T) {
	g := vcm.PrimeGeom(13)
	f := func(pRaw uint16, capRaw uint16) bool {
		p := int(pRaw)%30000 + 1
		cap := int(capRaw) % 8191
		ch, err := Choose(g, p, cap)
		if err != nil {
			return false
		}
		v := core.MustPrime(13)
		for pass := 0; pass < 2; pass++ {
			if _, err := v.LoadSubblock(0, p, ch.B1, ch.B2, 1); err != nil {
				return false
			}
		}
		return v.Stats().Conflict == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDirectChoiceConflictFreeWhenClaimed: whenever the direct chooser
// claims conflict-freeness, the simulator must agree.
func TestDirectChoiceConflictFreeWhenClaimed(t *testing.T) {
	g := vcm.DirectGeom(13)
	for _, p := range []int{3000, 1000, 5555, 12345, 8191, 9000} {
		ch, err := Choose(g, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ch.ConflictFree {
			continue
		}
		v := core.MustDirect(8192)
		for pass := 0; pass < 2; pass++ {
			if _, err := v.LoadSubblock(0, p, ch.B1, ch.B2, 1); err != nil {
				t.Fatal(err)
			}
		}
		if v.Stats().Conflict != 0 {
			t.Errorf("P=%d: claimed conflict-free block %+v conflicted (%d)", p, ch, v.Stats().Conflict)
		}
	}
}

// TestPrimeBlockingAtRealisticDimensions pins down where the asymmetry
// actually lives (an honest refinement of §4): for *generic* leading
// dimensions both mappings admit high-utilisation conflict-free blocks,
// but at the power-of-two leading dimensions numerical arrays actually
// have, the direct-mapped cache degenerates to single-column blocking
// (b2 = 1 — no cross-column reuse at all) while the prime mapping keeps a
// multi-column conflict-free block at utilisation ≈ 1.
func TestPrimeBlockingAtRealisticDimensions(t *testing.T) {
	for _, p := range []int{8192, 16384, 24576, 32768} {
		dc, err := Choose(vcm.DirectGeom(13), p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dc.B2 != 1 {
			t.Errorf("P=%d: direct chooser found b2=%d; P ≡ 0 (mod sets) admits only single columns", p, dc.B2)
		}
		pc, err := Choose(vcm.PrimeGeom(13), p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pc.B2 < 2 {
			t.Errorf("P=%d: prime chooser b2=%d, want multi-column", p, pc.B2)
		}
		if pc.Utilization < 0.9 {
			t.Errorf("P=%d: prime utilization %v, want ≈ 1", p, pc.Utilization)
		}
	}
	// And across generic dimensions the prime recipe sustains ≥0.8 mean
	// utilisation (the §4 claim proper).
	var sum float64
	count := 0
	for p := 1001; p < 30000; p += 777 {
		pc, err := Choose(vcm.PrimeGeom(13), p, 0)
		if err != nil {
			t.Fatal(err)
		}
		sum += pc.Utilization
		count++
	}
	if sum/float64(count) < 0.8 {
		t.Errorf("mean prime utilization %v, want ≥ 0.8", sum/float64(count))
	}
}
