// Package blocking chooses blocking factors for blocked numerical kernels
// given a cache geometry — the tooling side of the paper's thesis that
// "cache memory can improve the performance of vector processing provided
// that application programs can be blocked". For prime-mapped caches it
// applies the §4 recipe (conflict-free for any leading dimension); for
// bit-selection caches it falls back to the best the hardware admits: a
// block whose columns land on disjoint set ranges, which exists only when
// the leading dimension cooperates.
package blocking

import (
	"fmt"

	"primecache/internal/vcm"
)

// Choice is a recommended sub-block shape with its predicted behaviour.
type Choice struct {
	// B1 is the column height (consecutive words); B2 the column count.
	B1, B2 int
	// ConflictFree reports whether the block is guaranteed free of
	// self-interference in the target cache.
	ConflictFree bool
	// Utilization is B1·B2 / lines.
	Utilization float64
}

// Choose returns a blocking recommendation for a P-leading-dimension
// column-major matrix on geometry g. maxWords caps the block footprint
// (0 means the full cache).
func Choose(g vcm.CacheGeom, p, maxWords int) (Choice, error) {
	if err := g.Validate(); err != nil {
		return Choice{}, err
	}
	if p <= 0 {
		return Choice{}, fmt.Errorf("blocking: leading dimension must be positive, got %d", p)
	}
	if maxWords <= 0 || maxWords > g.Lines {
		maxWords = g.Lines
	}
	switch g.Mapping {
	case vcm.MapPrime:
		return choosePrime(g, p, maxWords)
	default:
		return chooseDirect(g, p, maxWords)
	}
}

func choosePrime(g vcm.CacheGeom, p, maxWords int) (Choice, error) {
	c := g.Lines
	b1, b2, err := vcm.MaxConflictFreeBlock(c, p)
	if err != nil {
		// Degenerate P ≡ 0 (mod C): only single columns are safe.
		b1 = min(maxWords, c)
		return Choice{B1: b1, B2: 1, ConflictFree: true, Utilization: float64(b1) / float64(c)}, nil
	}
	// Respect the footprint cap, shrinking columns first (keeps the
	// conflict-free tiling property: fewer columns of the same height).
	for b1*b2 > maxWords && b2 > 1 {
		b2--
	}
	if b1 > maxWords {
		b1 = maxWords
	}
	if !vcm.SubblockConditions(c, p, b1, b2) {
		// Shrinking b1 below the maximal point keeps the forward or
		// backward tiling valid only with the matching b2 bound; re-check
		// and fall back to a single column if needed.
		b2 = 1
	}
	return Choice{B1: b1, B2: b2, ConflictFree: true, Utilization: float64(b1*b2) / float64(c)}, nil
}

func chooseDirect(g vcm.CacheGeom, p, maxWords int) (Choice, error) {
	sets := g.Sets()
	ways := g.Lines / sets
	s := p % sets
	// Columns land s sets apart (mod sets). The block is conflict-free
	// when the b2 column images tile without wrap, exactly as in the
	// prime case but with the power-of-two modulus — which fails for the
	// leading dimensions numerical codes actually use (multiples of
	// powers of two), leaving only single-column blocking.
	if s == 0 {
		b1 := min(maxWords, sets)
		return Choice{B1: b1, B2: ways, ConflictFree: ways*b1 <= g.Lines,
			Utilization: float64(b1*ways) / float64(g.Lines)}, nil
	}
	sp := sets - s
	span := s
	if sp < span {
		span = sp
	}
	b1 := span
	if b1 > maxWords {
		b1 = maxWords
	}
	b2 := sets / span
	for b1*b2 > maxWords && b2 > 1 {
		b2--
	}
	ok := b1 <= span && (b2-1)*span+b1 <= sets
	return Choice{B1: b1, B2: b2, ConflictFree: ok, Utilization: float64(b1*b2) / float64(g.Lines)}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
