package vproc

import (
	"math/rand"
	"testing"

	"primecache/internal/vcm"
)

func run(t *testing.T, cfg Config, n int) Result {
	t.Helper()
	r, err := Run(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunValidation(t *testing.T) {
	good := Config{Mach: vcm.DefaultMachine(32, 8), Work: vcm.DefaultVCM(512)}
	if _, err := Run(good, 0); err == nil {
		t.Error("n=0 accepted")
	}
	bad := good
	bad.Mach.Banks = 33
	if _, err := Run(bad, 1024); err == nil {
		t.Error("bad machine accepted")
	}
	bad = good
	bad.Work.B = 0
	if _, err := Run(bad, 1024); err == nil {
		t.Error("bad workload accepted")
	}
	g := vcm.CacheGeom{Mapping: vcm.MapDirect, Lines: 1000}
	bad = good
	bad.Geom = &g
	if _, err := Run(bad, 1024); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	cfg := Config{Mach: vcm.DefaultMachine(32, 8), Work: vcm.DefaultVCM(512), Seed: 7}
	a := run(t, cfg, 8192)
	b := run(t, cfg, 8192)
	if a.Cycles != b.Cycles {
		t.Errorf("same seed diverged: %v vs %v", a.Cycles, b.Cycles)
	}
	cfg.Seed = 8
	if c := run(t, cfg, 8192); c.Cycles == a.Cycles {
		t.Error("different seed produced identical cycles (suspicious)")
	}
}

func TestMMUnitStrideNearIdeal(t *testing.T) {
	// All-unit strides, no double streams: the MM-model should approach
	// 1 cycle per result plus loop overheads.
	cfg := Config{
		Mach: vcm.DefaultMachine(32, 8),
		Work: vcm.VCM{B: 1024, R: 4, Pds: 0, P1S1: 1, P1S2: 1},
	}
	r := run(t, cfg, 1<<16)
	cpr := r.CyclesPerResult()
	if cpr < 1 || cpr > 2.5 {
		t.Errorf("ideal MM cycles/result = %v, want ≈ 1–2", cpr)
	}
}

func TestCCReuseHitsInCache(t *testing.T) {
	g := vcm.PrimeGeom(13)
	cfg := Config{
		Mach: vcm.DefaultMachine(32, 8),
		Work: vcm.VCM{B: 1024, R: 8, Pds: 0, P1S1: 0, P1S2: 0}, // random strides
		Geom: &g,
		Seed: 3,
	}
	r := run(t, cfg, 1<<15)
	if r.CacheStats.Accesses == 0 {
		t.Fatal("no cache activity recorded")
	}
	// Prime mapping: reuse passes hit; overall hit ratio ≈ (R−1)/R.
	if hr := r.CacheStats.HitRatio(); hr < 0.8 {
		t.Errorf("prime CC hit ratio = %v, want ≈ 7/8", hr)
	}
	if r.CacheStats.Conflict != 0 {
		t.Errorf("prime CC conflicts = %d, want 0 (B < C)", r.CacheStats.Conflict)
	}
}

func TestDirectCCConflictsOnRandomStrides(t *testing.T) {
	g := vcm.DirectGeom(13)
	cfg := Config{
		Mach: vcm.DefaultMachine(32, 8),
		Work: vcm.VCM{B: 2048, R: 8, Pds: 0, P1S1: 0, P1S2: 0},
		Geom: &g,
		Seed: 3,
	}
	r := run(t, cfg, 1<<15)
	if r.CacheStats.Conflict == 0 {
		t.Error("direct CC with random strides should conflict")
	}
}

// TestSimulatedOrderingMatchesAnalyticSingleStream is the cross-check
// experiment on the single-stream workload (P_ds = 0), where both the
// analytic self-interference terms and the event simulation rest on the
// same gcd arithmetic: the measured ordering prime < MM < direct must
// match the analytic model, and each measured value must agree with the
// analytic prediction within a factor of ~2.
func TestSimulatedOrderingMatchesAnalyticSingleStream(t *testing.T) {
	mach := vcm.DefaultMachine(64, 32)
	work := vcm.VCM{B: 4096, R: 16, Pds: 0, P1S1: 0.25, P1S2: 0.25}
	const n = 1 << 16
	dg, pg := vcm.DirectGeom(13), vcm.PrimeGeom(13)

	mm := run(t, Config{Mach: mach, Work: work, Seed: 11}, n)
	dir := run(t, Config{Mach: mach, Work: work, Geom: &dg, Seed: 11}, n)
	prm := run(t, Config{Mach: mach, Work: work, Geom: &pg, Seed: 11}, n)

	if !(prm.CyclesPerResult() < mm.CyclesPerResult() && mm.CyclesPerResult() < dir.CyclesPerResult()) {
		t.Fatalf("simulated ordering: prime %v mm %v direct %v",
			prm.CyclesPerResult(), mm.CyclesPerResult(), dir.CyclesPerResult())
	}
	checks := []struct {
		name     string
		sim, ana float64
	}{
		{"mm", mm.CyclesPerResult(), vcm.CyclesPerResultMM(mach, work, n)},
		{"direct", dir.CyclesPerResult(), vcm.CyclesPerResultCC(dg, mach, work, n)},
		{"prime", prm.CyclesPerResult(), vcm.CyclesPerResultCC(pg, mach, work, n)},
	}
	for _, c := range checks {
		ratio := c.sim / c.ana
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("%s: simulated %v vs analytic %v (ratio %v)", c.name, c.sim, c.ana, ratio)
		}
	}
}

// TestSimulatedDoubleStreamBiases records a reproduction finding: with
// double streams the paper's two cross-interference approximations pull in
// opposite directions. The footprint model (I_c^C) is optimistic — in a
// real cache the overlapped lines ping-pong between the streams, so both
// sides miss on every pass — while the congruence stall model (I_c^M)
// charges t_m−|i−j| for every aligned pair and overstates what an
// event-driven bank pipeline loses. The trace-level simulation therefore
// shows a larger cache-side cross-interference cost and a smaller
// memory-side one than the formulas. The cache-mapping comparison itself
// (prime below direct) survives, which is the paper's claim.
func TestSimulatedDoubleStreamBiases(t *testing.T) {
	mach := vcm.DefaultMachine(64, 32)
	work := vcm.DefaultVCM(4096)
	work.R = 16
	const n = 1 << 16
	dg, pg := vcm.DirectGeom(13), vcm.PrimeGeom(13)

	mm := run(t, Config{Mach: mach, Work: work, Seed: 11}, n)
	dir := run(t, Config{Mach: mach, Work: work, Geom: &dg, Seed: 11}, n)
	prm := run(t, Config{Mach: mach, Work: work, Geom: &pg, Seed: 11}, n)

	if prm.CyclesPerResult() >= dir.CyclesPerResult() {
		t.Errorf("prime %v not below direct %v under double streams",
			prm.CyclesPerResult(), dir.CyclesPerResult())
	}
	// Footprint-model optimism: simulated prime CPR exceeds the analytic
	// prediction (ping-pong misses the formula does not charge).
	if anaP := vcm.CyclesPerResultCC(pg, mach, work, n); prm.CyclesPerResult() < anaP {
		t.Errorf("expected simulated prime (%v) above analytic (%v): ping-pong bias vanished?",
			prm.CyclesPerResult(), anaP)
	}
	// Congruence-model pessimism: simulated MM CPR falls below the
	// analytic prediction.
	if anaM := vcm.CyclesPerResultMM(mach, work, n); mm.CyclesPerResult() > anaM {
		t.Errorf("expected simulated MM (%v) below analytic (%v): stall-model bias vanished?",
			mm.CyclesPerResult(), anaM)
	}
}

func TestSimulatedReuseOneEquivalence(t *testing.T) {
	// R = 1: CC and MM machines do the same work (one memory pass), so
	// measured cycles should be close.
	mach := vcm.DefaultMachine(32, 8)
	work := vcm.DefaultVCM(1024)
	work.R = 1
	g := vcm.PrimeGeom(13)
	const n = 1 << 15
	mm := run(t, Config{Mach: mach, Work: work, Seed: 5}, n)
	cc := run(t, Config{Mach: mach, Work: work, Geom: &g, Seed: 5}, n)
	// The stride draws differ (the CC-model draws from 2..C, the MM-model
	// from 2..M, per §3.1), so allow stochastic spread around 1.
	ratio := cc.Cycles / mm.Cycles
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("R=1 CC/MM cycle ratio = %v, want ≈ 1", ratio)
	}
}

func TestStrideDistribution(t *testing.T) {
	m := &machine{cfg: Config{Mach: vcm.DefaultMachine(32, 8), Work: vcm.DefaultVCM(64)}}
	m.rng = rand.New(rand.NewSource(1))
	ones := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		s := m.drawStride(0.25, 64)
		if s == 1 {
			ones++
		}
		if s < 1 || s > 64 {
			t.Fatalf("stride %d out of range", s)
		}
	}
	frac := float64(ones) / trials
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("P(stride=1) = %v, want ≈ 0.25", frac)
	}
	if s := m.drawStride(0, 1); s != 1 {
		t.Errorf("limit<2 must force stride 1, got %d", s)
	}
}

// TestPresetThroughSimulator runs the §3.1 matmul preset through the
// trace-level machine: the prime CC-model beats the direct CC-model on
// measured cycles, matching the analytic table.
func TestPresetThroughSimulator(t *testing.T) {
	work, err := vcm.MatMulVCM(32) // B=1024, R=32
	if err != nil {
		t.Fatal(err)
	}
	mach := vcm.DefaultMachine(64, 32)
	dg, pg := vcm.DirectGeom(13), vcm.PrimeGeom(13)
	const n = 1 << 14
	dir := run(t, Config{Mach: mach, Work: work, Geom: &dg, Seed: 3}, n)
	prm := run(t, Config{Mach: mach, Work: work, Geom: &pg, Seed: 3}, n)
	// The preset's first stream is unit stride, so the two mappings are
	// nearly identical here; require prime within noise of direct.
	if prm.CyclesPerResult() > dir.CyclesPerResult()*1.01 {
		t.Errorf("matmul preset: prime %v above direct %v", prm.CyclesPerResult(), dir.CyclesPerResult())
	}
}
