// Package vproc contains cycle-approximate simulators of the paper's two
// machine models. Unlike package vcm, which evaluates the paper's closed
// formulas, vproc *executes* the generic vector computation: it draws
// strides from the VCM distributions, issues strided register loads
// against the event-driven interleaved memory (package membank), and runs
// reuse passes through a real cache simulator (package cache), counting
// cycles as it goes. The experiments use it as independent ground truth
// for the analytic model's shape.
package vproc

import (
	"fmt"
	"math"
	"math/rand"

	"primecache/internal/cache"
	"primecache/internal/membank"
	"primecache/internal/vcm"
)

// Config selects a machine, a workload and (for the CC-model) a cache
// geometry.
type Config struct {
	// Mach is the shared machine model.
	Mach vcm.Machine
	// Work is the VCM workload tuple.
	Work vcm.VCM
	// Geom selects the CC-model cache; nil runs the MM-model.
	Geom *vcm.CacheGeom
	// Seed makes stride/base draws reproducible.
	Seed int64
}

// Result is the outcome of a simulated run.
type Result struct {
	// Cycles is the simulated total execution time.
	Cycles float64
	// Results is N·R, the number of element results produced.
	Results int
	// CacheStats holds the CC-model cache counters (zero for MM).
	CacheStats cache.Stats
}

// CyclesPerResult is the paper's metric.
func (r Result) CyclesPerResult() float64 {
	if r.Results == 0 {
		return 0
	}
	return r.Cycles / float64(r.Results)
}

type machine struct {
	cfg   Config
	rng   *rand.Rand
	banks *membank.System
	cache *cache.Cache
	total cache.Stats // accumulated across per-block flushes
}

// Run simulates the blocked computation over n data elements and returns
// measured cycles.
func Run(cfg Config, n int) (Result, error) {
	if err := cfg.Mach.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Work.Validate(); err != nil {
		return Result{}, err
	}
	if n <= 0 {
		return Result{}, fmt.Errorf("vproc: data size must be positive, got %d", n)
	}
	m := &machine{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		banks: membank.MustNew(cfg.Mach.Banks, cfg.Mach.Tm),
	}
	if cfg.Geom != nil {
		if err := cfg.Geom.Validate(); err != nil {
			return Result{}, err
		}
		arr, err := buildCache(*cfg.Geom)
		if err != nil {
			return Result{}, err
		}
		m.cache = arr
	}

	var cycles float64
	blocks := (n + cfg.Work.B - 1) / cfg.Work.B
	for b := 0; b < blocks; b++ {
		cycles += m.runBlock()
	}
	res := Result{Cycles: cycles, Results: n * cfg.Work.R}
	if m.cache != nil {
		m.total.Add(m.cache.Stats())
		res.CacheStats = m.total
	}
	return res, nil
}

// buildCache realises a vcm geometry as a cache simulator: prime and
// bit-selection mappings, any associativity (LRU).
func buildCache(g vcm.CacheGeom) (*cache.Cache, error) {
	if g.Mapping == vcm.MapPrime {
		c := uint(math.Round(math.Log2(float64(g.Lines + 1))))
		pm, err := cache.NewPrimeMapper(c)
		if err != nil {
			return nil, err
		}
		return cache.New(cache.Config{Mapper: pm, Ways: 1})
	}
	ways := g.Ways
	if ways < 1 {
		ways = 1
	}
	dm, err := cache.NewDirectMapper(g.Lines / ways)
	if err != nil {
		return nil, err
	}
	return cache.New(cache.Config{Mapper: dm, Ways: ways, Policy: cache.LRU})
}

// drawStride draws from the paper's distribution: 1 with probability p1,
// otherwise uniform on 2..limit.
func (m *machine) drawStride(p1 float64, limit int) int64 {
	if limit < 2 || m.rng.Float64() < p1 {
		return 1
	}
	return int64(2 + m.rng.Intn(limit-1))
}

// strideLimit is the modulus-relevant stride range: C for the CC-model, M
// for the MM-model, as §3.1 prescribes.
func (m *machine) strideLimit() int {
	if m.cfg.Geom != nil {
		return m.cfg.Geom.Lines
	}
	return m.cfg.Mach.Banks
}

// runBlock simulates one block: an initial memory pass plus R−1 reuse
// passes (through the cache on the CC-model, through memory again on the
// MM-model).
func (m *machine) runBlock() float64 {
	w := m.cfg.Work
	s1 := m.drawStride(w.P1S1, m.strideLimit())
	s2 := m.drawStride(w.P1S2, m.strideLimit())
	base1 := uint64(m.rng.Intn(1 << 28))
	base2 := uint64(m.rng.Intn(1 << 28))
	b2len := int(math.Round(float64(w.B) * w.Pds))

	var cycles float64
	if m.cache != nil {
		// Blocks evict each other; the paper's model charges each block
		// its own compulsory load, which a flush mirrors without
		// polluting interference counts across unrelated base addresses.
		m.total.Add(m.cache.Stats())
		m.cache.Flush()
	}
	for pass := 0; pass < w.R; pass++ {
		if pass == 0 || m.cache == nil {
			cycles += m.memoryPass(base1, s1, base2, s2, b2len)
		} else {
			cycles += m.cachePass(base1, s1, base2, s2, b2len)
		}
	}
	return cycles
}

// memoryPass streams the block from the interleaved banks: Eq. (1)'s
// overhead structure with stalls measured by the event-driven bank model.
func (m *machine) memoryPass(base1 uint64, s1 int64, base2 uint64, s2 int64, b2len int) float64 {
	w := m.cfg.Work
	mach := m.cfg.Mach
	cycles := mach.OuterOverhead
	processed := 0
	i2 := 0
	for processed < w.B {
		l := mach.MVL
		if w.B-processed < l {
			l = w.B - processed
		}
		cycles += mach.InnerOverhead + mach.TStart() + float64(l)
		m.banks.Reset()
		start1 := uint64(int64(base1) + int64(processed)*s1)
		if w.Pds > 0 && m.rng.Float64() < w.Pds && b2len > 0 {
			start2 := uint64(int64(base2) + int64(i2%b2len)*s2)
			r1, r2 := m.banks.DualLoad(start1, s1, l, start2, s2, l)
			st := r1.StallCycles
			if r2.StallCycles > st {
				st = r2.StallCycles
			}
			cycles += float64(st)
			i2 += l
		} else {
			r := m.banks.VectorLoad(start1, s1, l)
			cycles += float64(r.StallCycles)
		}
		m.fillCache(start1, s1, l, 1)
		processed += l
	}
	// The double-stream operations of the first pass stream the whole
	// second vector through the cache (its load time is charged via the
	// dual-issue stalls above); install its footprint so reuse passes see
	// it resident, exactly as the analytic model assumes.
	if b2len > 0 && w.Pds > 0 {
		m.fillCache(base2, s2, b2len, 2)
	}
	return cycles
}

// fillCache installs the lines touched by a memory pass; the fills are
// pipelined with the load so they add no cycles.
func (m *machine) fillCache(start uint64, stride int64, l, stream int) {
	if m.cache == nil {
		return
	}
	a := int64(start)
	for i := 0; i < l; i++ {
		m.cache.Access(cache.Access{Addr: uint64(a) * 8, Stream: stream})
		a += stride
	}
}

// cachePass re-runs the block against the cache: hits cost one cycle,
// misses stall the full memory time (the paper's un-pipelined miss
// penalty).
func (m *machine) cachePass(base1 uint64, s1 int64, base2 uint64, s2 int64, b2len int) float64 {
	w := m.cfg.Work
	mach := m.cfg.Mach
	cycles := mach.OuterOverhead
	processed := 0
	i2 := 0
	miss := float64(mach.Tm)
	for processed < w.B {
		l := mach.MVL
		if w.B-processed < l {
			l = w.B - processed
		}
		cycles += mach.InnerOverhead + mach.TStart() - float64(mach.Tm)
		access := func(start uint64, stride int64, count, stream int) {
			a := int64(start)
			for i := 0; i < count; i++ {
				r := m.cache.Access(cache.Access{Addr: uint64(a) * 8, Stream: stream})
				if r.Hit {
					cycles++
				} else {
					cycles += miss
				}
				a += stride
			}
		}
		access(uint64(int64(base1)+int64(processed)*s1), s1, l, 1)
		if w.Pds > 0 && m.rng.Float64() < w.Pds && b2len > 0 {
			access(uint64(int64(base2)+int64(i2%b2len)*s2), s2, l, 2)
			i2 += l
		}
		processed += l
	}
	return cycles
}
