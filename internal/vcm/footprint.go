package vcm

// Exact footprint arithmetic for the CC-model cross-interference. The
// paper's I_c^C (§3.3) is a probabilistic footprint argument: each of the
// B·P_ds second-stream elements lands in the first vector's footprint
// with probability B/C. These functions compute the overlap exactly for
// given strides and placement, which the simulation experiments use to
// quantify the footprint model's ping-pong bias (see EXPERIMENTS.md).

// FootprintOverlap returns |F1 ∩ F2|: the number of cache sets occupied
// by both a b1-element stride-s1 vector starting at set 0 and a
// b2-element stride-s2 vector starting at set offset, under geometry g.
func FootprintOverlap(g CacheGeom, s1 int, b1 int, s2 int, b2 int, offset int) int {
	sets := g.Sets()
	f1 := make(map[int]bool, b1)
	idx := 0
	step1 := ((s1 % sets) + sets) % sets
	for i := 0; i < b1; i++ {
		f1[idx] = true
		idx = (idx + step1) % sets
	}
	step2 := ((s2 % sets) + sets) % sets
	idx = ((offset % sets) + sets) % sets
	overlap := 0
	seen := make(map[int]bool, b2)
	for i := 0; i < b2; i++ {
		if f1[idx] && !seen[idx] {
			overlap++
			seen[idx] = true
		}
		idx = (idx + step2) % sets
	}
	return overlap
}

// ExpectedOverlap is the footprint model's estimate of the same quantity:
// b1·b2/C (with saturation at min(b1, b2)), the random-placement
// expectation behind Eq. I_c^C.
func ExpectedOverlap(g CacheGeom, b1, b2 int) float64 {
	e := float64(b1) * float64(b2) / float64(g.Lines)
	if lim := float64(min(b1, b2)); e > lim {
		return lim
	}
	return e
}

// IcCPingPong is the trace-calibrated cross-interference charge: every
// overlapped set costs *two* misses per reuse pass (each stream evicts
// the other's line and re-misses), each stalling t_m cycles. It is the
// corrected version of IcC that the double-stream simulations in package
// vproc actually exhibit.
func IcCPingPong(g CacheGeom, m Machine, b int, pds float64) float64 {
	return 2 * IcC(g, m, b, pds)
}
