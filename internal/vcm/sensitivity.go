package vcm

import "fmt"

// SensitivityEntry reports how cycles-per-result responds to one
// parameter excursion.
type SensitivityEntry struct {
	Parameter string
	// Low and High are CPR at the −/+ excursion; Base at the nominal
	// point.
	Low, Base, High float64
}

// Swing returns the relative CPR range (High−Low)/Base (signed by
// direction of increase).
func (e SensitivityEntry) Swing() float64 {
	if e.Base == 0 {
		return 0
	}
	return (e.High - e.Low) / e.Base
}

// Sensitivity performs a one-at-a-time ±factor excursion of every model
// parameter around the operating point and returns the CPR swings — the
// tornado analysis that shows which knobs the paper's conclusions hinge
// on. factor must be in (0, 1); integer parameters move by at least 1.
func Sensitivity(g CacheGeom, m Machine, v VCM, n int, factor float64) ([]SensitivityEntry, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if factor <= 0 || factor >= 1 {
		return nil, fmt.Errorf("vcm: sensitivity factor %v outside (0,1)", factor)
	}
	base := CyclesPerResultCC(g, m, v, n)
	cpr := func(mm Machine, vv VCM) float64 { return CyclesPerResultCC(g, mm, vv, n) }

	scaleInt := func(x int, f float64) int {
		d := int(float64(x) * f)
		if d < 1 {
			d = 1
		}
		return d
	}
	clamp01 := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}

	out := []SensitivityEntry{}

	{ // t_m
		lo, hi := m, m
		lo.Tm = max(1, m.Tm-scaleInt(m.Tm, factor))
		hi.Tm = m.Tm + scaleInt(m.Tm, factor)
		out = append(out, SensitivityEntry{"t_m", cpr(lo, v), base, cpr(hi, v)})
	}
	{ // B (with R tracking B when R == B, the figures' convention)
		lo, hi := v, v
		lo.B = max(1, v.B-scaleInt(v.B, factor))
		hi.B = v.B + scaleInt(v.B, factor)
		if v.R == v.B {
			lo.R, hi.R = lo.B, hi.B
		}
		out = append(out, SensitivityEntry{"B", cpr(m, lo), base, cpr(m, hi)})
	}
	{ // R
		lo, hi := v, v
		lo.R = max(1, v.R-scaleInt(v.R, factor))
		hi.R = v.R + scaleInt(v.R, factor)
		out = append(out, SensitivityEntry{"R", cpr(m, lo), base, cpr(m, hi)})
	}
	{ // P_ds
		lo, hi := v, v
		lo.Pds = clamp01(v.Pds * (1 - factor))
		hi.Pds = clamp01(v.Pds * (1 + factor))
		out = append(out, SensitivityEntry{"P_ds", cpr(m, lo), base, cpr(m, hi)})
	}
	{ // P_stride1
		lo, hi := v, v
		lo.P1S1 = clamp01(v.P1S1 * (1 - factor))
		lo.P1S2 = lo.P1S1
		hi.P1S1 = clamp01(v.P1S1 * (1 + factor))
		hi.P1S2 = hi.P1S1
		out = append(out, SensitivityEntry{"P_stride1", cpr(m, lo), base, cpr(m, hi)})
	}
	{ // T_start extra
		lo, hi := m, m
		lo.TStartExtra = m.TStartExtra * (1 - factor)
		hi.TStartExtra = m.TStartExtra * (1 + factor)
		out = append(out, SensitivityEntry{"T_start", cpr(lo, v), base, cpr(hi, v)})
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
