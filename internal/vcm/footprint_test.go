package vcm

import (
	"math/rand"
	"testing"
)

func TestFootprintOverlapExact(t *testing.T) {
	g := PrimeGeom(7) // 127 sets
	// Identical vectors overlap completely.
	if got := FootprintOverlap(g, 3, 40, 3, 40, 0); got != 40 {
		t.Errorf("identical vectors overlap = %d, want 40", got)
	}
	// Disjoint ranges (unit stride, offset beyond length) overlap zero.
	if got := FootprintOverlap(g, 1, 40, 1, 40, 50); got != 0 {
		t.Errorf("disjoint overlap = %d, want 0", got)
	}
	// Adjacent with partial overlap: F1 = {0..39}, F2 = {30..69} → 10.
	if got := FootprintOverlap(g, 1, 40, 1, 40, 30); got != 10 {
		t.Errorf("partial overlap = %d, want 10", got)
	}
	// Stride collapsing onto one set.
	if got := FootprintOverlap(g, 127, 40, 1, 40, 0); got != 1 {
		t.Errorf("collapsed overlap = %d, want 1", got)
	}
}

// TestFootprintModelCalibration validates the paper's B·b2/C expectation:
// averaged over random strides and offsets in the prime cache (where
// footprints are full-size and pseudo-uniformly placed), the exact
// overlap matches the formula within a few percent.
func TestFootprintModelCalibration(t *testing.T) {
	g := PrimeGeom(13)
	rng := rand.New(rand.NewSource(21))
	const b1, b2 = 4096, 1024
	want := ExpectedOverlap(g, b1, b2) // 512.06
	var sum float64
	const trials = 60
	for i := 0; i < trials; i++ {
		s1 := 2 + rng.Intn(8189)
		s2 := 2 + rng.Intn(8189)
		off := rng.Intn(8191)
		sum += float64(FootprintOverlap(g, s1, b1, s2, b2, off))
	}
	got := sum / trials
	if got < 0.9*want || got > 1.1*want {
		t.Errorf("mean overlap %v, footprint model predicts %v", got, want)
	}
}

func TestExpectedOverlapSaturates(t *testing.T) {
	g := PrimeGeom(7)
	// Saturation needs one vector longer than the cache (b1 > C): the
	// overlap can never exceed the shorter footprint.
	if got := ExpectedOverlap(g, 200, 50); got != 50 {
		t.Errorf("saturated overlap = %v, want 50", got)
	}
	if got := ExpectedOverlap(g, 10, 10); got != 100.0/127 {
		t.Errorf("overlap = %v, want %v", got, 100.0/127)
	}
}

func TestIcCPingPongDoubles(t *testing.T) {
	g := PrimeGeom(13)
	m := DefaultMachine(64, 32)
	if got, want := IcCPingPong(g, m, 4096, 0.25), 2*IcC(g, m, 4096, 0.25); got != want {
		t.Errorf("ping-pong charge %v, want %v", got, want)
	}
}
