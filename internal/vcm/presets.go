package vcm

import "fmt"

// The §3.1 workload presets: the paper instantiates its seven-tuple for
// three named algorithms. Each constructor returns the VCM the paper
// derives for a blocking parameter b.

// MatMulVCM is the blocked matrix multiply of Lam et al. as the paper
// models it: blocking factor B = b² (a b×b sub-matrix), reuse factor
// R = b, and one double-stream access per b−1 single-stream accesses
// (P_ds = 1/b). Column accesses are unit stride; the second stream's
// stride is effectively random for an arbitrary matrix (P1 ≈ 1/C → 0).
func MatMulVCM(b int) (VCM, error) {
	if b < 2 {
		return VCM{}, fmt.Errorf("vcm: matmul blocking parameter must be ≥ 2, got %d", b)
	}
	return VCM{B: b * b, R: b, Pds: 1 / float64(b), P1S1: 1, P1S2: 0}, nil
}

// LUVCM is the blocked LU decomposition (Armstrong) as the paper models
// it: blocking factor b², average reuse factor 3b/2.
func LUVCM(b int) (VCM, error) {
	if b < 2 {
		return VCM{}, fmt.Errorf("vcm: LU blocking parameter must be ≥ 2, got %d", b)
	}
	return VCM{B: b * b, R: 3 * b / 2, Pds: 1 / float64(b), P1S1: 1, P1S2: 0}, nil
}

// FFTVCM is the blocked FFT as the paper models it: blocking factor b,
// reuse factor log₂ b, single-stream (twiddle factors in registers),
// power-of-two strides (P1 = 0). b must be a power of two ≥ 4. For the
// full two-pass model use FFTTotal.
func FFTVCM(b int) (VCM, error) {
	if b < 4 || b&(b-1) != 0 {
		return VCM{}, fmt.Errorf("vcm: FFT blocking parameter must be a power of two ≥ 4, got %d", b)
	}
	r := 0
	for x := b; x > 1; x >>= 1 {
		r++
	}
	return VCM{B: b, R: r, Pds: 0, P1S1: 0, P1S2: 0}, nil
}

// RowColumnVCM is the paper's §3.1 example "VCM = [b, r, 1, 1, P, 1, 1/C]":
// double-stream accesses to columns (unit stride) and rows (random stride)
// of a sub-matrix, each pair used r times.
func RowColumnVCM(b, r int) (VCM, error) {
	if b < 1 || r < 1 {
		return VCM{}, fmt.Errorf("vcm: invalid row/column parameters b=%d r=%d", b, r)
	}
	return VCM{B: b, R: r, Pds: 1, P1S1: 1, P1S2: 0}, nil
}

// DiagonalVCM is the paper's "VCM = [b, r, 0, P+1, −, 1/C, −]": a single
// stream along the major diagonal, whose stride P+1 is effectively random
// with respect to the cache modulus.
func DiagonalVCM(b, r int) (VCM, error) {
	if b < 1 || r < 1 {
		return VCM{}, fmt.Errorf("vcm: invalid diagonal parameters b=%d r=%d", b, r)
	}
	return VCM{B: b, R: r, Pds: 0, P1S1: 0, P1S2: 0}, nil
}
