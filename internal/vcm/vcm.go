package vcm

import (
	"fmt"
	"math"
)

// Machine holds the machine-model parameters shared by the MM- and
// CC-models: M = 2^m interleaved banks of access time Tm cycles, vector
// registers of MVL words, and the loop-overhead constants of Eq. (1)
// (taken, like the paper, from Hennessy & Patterson's DLX vector model).
type Machine struct {
	// MVL is the maximum vector register length (paper: 64).
	MVL int
	// Banks is M, the number of interleaved memory banks (power of two).
	Banks int
	// Tm is the memory access time in processor cycles.
	Tm int
	// OuterOverhead is the fixed per-block overhead (paper: 10 cycles).
	OuterOverhead float64
	// InnerOverhead is the per-strip overhead added to T_start
	// (paper: 15 cycles).
	InnerOverhead float64
	// TStartExtra is the stride-independent part of the vector start-up
	// time; T_start = TStartExtra + Tm (paper: 30 + t_m).
	TStartExtra float64
}

// DefaultMachine returns the paper's machine parameters for a given bank
// count and memory access time: MVL = 64, T_start = 30 + t_m, overheads 10
// and 15 cycles.
func DefaultMachine(banks, tm int) Machine {
	return Machine{MVL: 64, Banks: banks, Tm: tm, OuterOverhead: 10, InnerOverhead: 15, TStartExtra: 30}
}

// Validate checks machine parameters.
func (m Machine) Validate() error {
	if m.MVL <= 0 {
		return fmt.Errorf("vcm: MVL must be positive, got %d", m.MVL)
	}
	if m.Banks <= 0 || m.Banks&(m.Banks-1) != 0 {
		return fmt.Errorf("vcm: Banks must be a positive power of two, got %d", m.Banks)
	}
	if m.Tm <= 0 {
		return fmt.Errorf("vcm: Tm must be positive, got %d", m.Tm)
	}
	return nil
}

// TStart returns the vector start-up time T_start = TStartExtra + Tm.
func (m Machine) TStart() float64 { return m.TStartExtra + float64(m.Tm) }

// VCM is the paper's seven-tuple workload model. Stride distributions are
// represented the way the paper uses them: a stride is 1 with probability
// P1, otherwise uniform over the remaining residues (2..M for the MM-model,
// 2..C for the CC-model). Setting P1 = 1 models a fixed unit stride;
// P1 ≈ 1/C models a fully random stride (the paper's row-access case).
type VCM struct {
	// B is the blocking factor: the length of the first vector.
	B int
	// R is the reuse factor: how many times each block is operated on.
	R int
	// Pds is the probability a vector operation loads two streams from
	// memory simultaneously; the second stream has length B·Pds.
	Pds float64
	// P1S1 and P1S2 are P_stride1 for the first and second stream.
	P1S1, P1S2 float64
}

// Pss returns the single-stream probability 1 − Pds.
func (v VCM) Pss() float64 { return 1 - v.Pds }

// Validate checks workload parameters.
func (v VCM) Validate() error {
	if v.B <= 0 {
		return fmt.Errorf("vcm: blocking factor B must be positive, got %d", v.B)
	}
	if v.R <= 0 {
		return fmt.Errorf("vcm: reuse factor R must be positive, got %d", v.R)
	}
	for _, p := range []float64{v.Pds, v.P1S1, v.P1S2} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("vcm: probability %v out of [0,1]", p)
		}
	}
	return nil
}

// DefaultVCM returns the workload used for the paper's random-stride
// figures: reuse factor R = B, double-stream probability 0.25, and
// P_stride1 = 0.25 (the average of the Fu & Patel measurements the paper
// cites) for both streams. The paper does not state its P_ds; 0.25
// reproduces the headline ratios of Figure 7 (see EXPERIMENTS.md).
func DefaultVCM(b int) VCM {
	return VCM{B: b, R: b, Pds: 0.25, P1S1: 0.25, P1S2: 0.25}
}

// TBlock is Eq. (1): the execution time of one sequence of operations on a
// vector of length B given a per-element time telemt,
//
//	T_B = 10 + ceil(B/MVL)·(15 + T_start) + B·telemt.
func (m Machine) TBlock(b int, telemt float64) float64 {
	strips := math.Ceil(float64(b) / float64(m.MVL))
	return m.OuterOverhead + strips*(m.InnerOverhead+m.TStart()) + float64(b)*telemt
}

// ceilDiv returns ceil(a/b) for positive ints.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
