package vcm

import (
	"math"
)

// IsMStride returns the memory self-interference stall cycles a single
// MVL-element vector stream with the given stride suffers (§3.2): the
// stream revisits a bank after k = M/gcd(M, stride) issues, so when
// t_m > k every sweep of k accesses is delayed t_m − k cycles; the
// degenerate k = 1 (stride a multiple of M) delays each element the full
// t_m − 1 cycles.
func IsMStride(m Machine, stride int) float64 {
	k := banksVisited(m.Banks, stride)
	tm := float64(m.Tm)
	if k == 1 {
		return float64(m.MVL) * (tm - 1)
	}
	if m.Tm <= k {
		return 0
	}
	sweeps := float64(m.MVL) / float64(k)
	return (tm - float64(k)) * sweeps
}

// IsMExact returns the stride-distribution average of IsMStride: stride 1
// with probability p1, otherwise uniform over 2..M. This is the summation
// the paper's Eq.-for-I_s^M closed form was derived from.
func IsMExact(m Machine, p1 float64) float64 {
	if m.Banks < 2 {
		return 0
	}
	total := p1 * IsMStride(m, 1)
	w := (1 - p1) / float64(m.Banks-1)
	for s := 2; s <= m.Banks; s++ {
		total += w * IsMStride(m, s)
	}
	return total
}

// IsM is the paper's closed form for the average memory self-interference
// of one MVL-element stream,
//
//	I_s^M = MVL·(1−P1)/(M−1)·[t_m + (t_m/2)·⌊log₂ t_m⌋ − 2^⌊log₂ t_m⌋],
//
// valid for t_m < M (so that unit stride incurs no stalls), which all of
// the paper's figures respect. IsMExact is used when t_m ≥ M.
func IsM(m Machine, p1 float64) float64 {
	if m.Tm >= m.Banks {
		return IsMExact(m, p1)
	}
	j := math.Floor(math.Log2(float64(m.Tm)))
	tm := float64(m.Tm)
	bracket := tm + tm/2*j - math.Exp2(j)
	return float64(m.MVL) * (1 - p1) / float64(m.Banks-1) * bracket
}

// IcMEnumerate is the congruence-equation solver of §3.2: for strides s1,
// s2 and a bank offset D between the two streams' starting addresses,
// cross-interference occurs at every solution of
//
//	s1·i ≡ s2·j + D (mod M),  i, j ∈ [0, MVL), |i − j| < t_m,
//
// costing t_m − |i−j| stall cycles. The result is averaged over D uniform
// on 1..M, as the paper assumes.
func IcMEnumerate(m Machine, s1, s2 int) float64 {
	M := int64(m.Banks)
	L := m.MVL
	tm := m.Tm
	var total int64
	for d := int64(1); d <= M; d++ {
		for i := 0; i < L; i++ {
			lhs := (int64(s1)*int64(i) - d) % M
			for j := 0; j < L; j++ {
				diff := i - j
				if diff < 0 {
					diff = -diff
				}
				if diff >= tm {
					continue
				}
				if (lhs-int64(s2)*int64(j))%M == 0 {
					total += int64(tm - diff)
				}
			}
		}
	}
	return float64(total) / float64(M)
}

// IcM is the closed form of the D-averaged congruence solver. For fixed
// (i, j) exactly one D residue satisfies the congruence, so averaging over
// uniform D counts every pair with |i−j| < t_m once, independent of the
// strides:
//
//	I_c^M = (1/M)·[ MVL·t_m + Σ_{d=1}^{min(t_m,MVL)−1} 2·(MVL−d)·(t_m−d) ].
//
// TestIcMClosedFormMatchesSolver verifies the identity against
// IcMEnumerate over the full stride range.
func IcM(m Machine) float64 {
	L := m.MVL
	tm := m.Tm
	total := float64(L * tm)
	dmax := tm - 1
	if L-1 < dmax {
		dmax = L - 1
	}
	for d := 1; d <= dmax; d++ {
		total += 2 * float64(L-d) * float64(tm-d)
	}
	return total / float64(m.Banks)
}

// TElemtMM is Eq. (2): the average cycles to process one vector element on
// the MM-model,
//
//	T_elemt^M = 1 + P_ss·I_s/MVL + P_ds·(I_s1 + I_s2 + I_c)/MVL,
//
// where the two self-interference terms use each stream's own stride
// distribution (the paper writes 2·I_s^M because it gives both streams the
// same distribution).
func TElemtMM(m Machine, v VCM) float64 {
	is1 := IsM(m, v.P1S1)
	stalls := v.Pss() * is1
	if v.Pds > 0 {
		is2 := IsM(m, v.P1S2)
		stalls += v.Pds * (is1 + is2 + IcM(m))
	}
	return 1 + stalls/float64(m.MVL)
}

// TBlockMM is T_B (Eq. 1) with the MM-model per-element time.
func TBlockMM(m Machine, v VCM) float64 {
	return m.TBlock(v.B, TElemtMM(m, v))
}

// TotalMM is Eq. (3), the MM-model execution time for a problem of N
// elements blocked into ceil(N/B) segments, each operated on R times.
// (The paper prints ceil(N/R); Eq. (4) and dimensional analysis show the
// block count is ceil(N/B).)
func TotalMM(m Machine, v VCM, n int) float64 {
	return TBlockMM(m, v) * float64(v.R) * float64(ceilDiv(n, v.B))
}

// CyclesPerResultMM is the paper's plotted metric T_N / (N·R) for the
// MM-model.
func CyclesPerResultMM(m Machine, v VCM, n int) float64 {
	return TotalMM(m, v, n) / (float64(n) * float64(v.R))
}

func banksVisited(banks, stride int) int {
	if stride < 0 {
		stride = -stride
	}
	stride %= banks
	if stride == 0 {
		return 1
	}
	g := stride
	b := banks
	for b != 0 {
		g, b = b, g%b
	}
	return banks / g
}
