package vcm

import "testing"

func TestMatMulVCM(t *testing.T) {
	v, err := MatMulVCM(32)
	if err != nil {
		t.Fatal(err)
	}
	if v.B != 1024 || v.R != 32 {
		t.Errorf("B=%d R=%d, want 1024/32", v.B, v.R)
	}
	if !almostEqual(v.Pds, 1.0/32, 1e-15) {
		t.Errorf("Pds = %v", v.Pds)
	}
	if err := v.Validate(); err != nil {
		t.Errorf("invalid preset: %v", err)
	}
	if _, err := MatMulVCM(1); err == nil {
		t.Error("b=1 accepted")
	}
}

func TestLUVCM(t *testing.T) {
	v, err := LUVCM(16)
	if err != nil {
		t.Fatal(err)
	}
	if v.B != 256 || v.R != 24 {
		t.Errorf("B=%d R=%d, want 256/24", v.B, v.R)
	}
	if _, err := LUVCM(0); err == nil {
		t.Error("b=0 accepted")
	}
}

func TestFFTVCM(t *testing.T) {
	v, err := FFTVCM(1024)
	if err != nil {
		t.Fatal(err)
	}
	if v.B != 1024 || v.R != 10 || v.Pds != 0 {
		t.Errorf("preset = %+v", v)
	}
	for _, b := range []int{0, 2, 3, 100} {
		if _, err := FFTVCM(b); err == nil {
			t.Errorf("FFTVCM(%d) accepted", b)
		}
	}
}

func TestRowColumnDiagonalVCM(t *testing.T) {
	rc, err := RowColumnVCM(1024, 8)
	if err != nil || rc.Pds != 1 || rc.P1S1 != 1 {
		t.Errorf("RowColumnVCM = %+v, %v", rc, err)
	}
	d, err := DiagonalVCM(1024, 8)
	if err != nil || d.Pds != 0 || d.P1S1 != 0 {
		t.Errorf("DiagonalVCM = %+v, %v", d, err)
	}
	if _, err := RowColumnVCM(0, 1); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := DiagonalVCM(1, 0); err == nil {
		t.Error("bad params accepted")
	}
}

// TestPresetsOrdering: for each §3.1 preset the prime-mapped CC-model
// beats the direct-mapped one, which is the paper's point across its
// motivating algorithms.
func TestPresetsOrdering(t *testing.T) {
	m := DefaultMachine(64, 32)
	const n = 1 << 20
	mk := []func() (VCM, error){
		func() (VCM, error) { return MatMulVCM(64) },
		func() (VCM, error) { return LUVCM(64) },
		func() (VCM, error) { return FFTVCM(4096) },
		func() (VCM, error) { return RowColumnVCM(4096, 64) },
		func() (VCM, error) { return DiagonalVCM(4096, 64) },
	}
	for i, f := range mk {
		v, err := f()
		if err != nil {
			t.Fatal(err)
		}
		dir := CyclesPerResultCC(DirectGeom(13), m, v, n)
		prm := CyclesPerResultCC(PrimeGeom(13), m, v, n)
		if prm >= dir {
			t.Errorf("preset %d: prime %v not below direct %v", i, prm, dir)
		}
	}
}
