package vcm

import (
	"testing"
	"testing/quick"
)

func TestMaxConflictFreeBlock(t *testing.T) {
	const c = 8191
	cases := []struct {
		p      int
		b1, b2 int
	}{
		{1000, 1000, 8},  // P mod C = 1000 < C−1000
		{8000, 191, 42},  // C − 8000 mod C = 191
		{8190, 1, 8191},  // stride ≡ −1
		{10000, 1809, 4}, // 10000 mod 8191 = 1809
		{4096, 4095, 2},  // min(4096, 4095)
	}
	for _, tc := range cases {
		b1, b2, err := MaxConflictFreeBlock(c, tc.p)
		if err != nil {
			t.Errorf("P=%d: %v", tc.p, err)
			continue
		}
		if b1 != tc.b1 || b2 != tc.b2 {
			t.Errorf("P=%d: got (%d,%d), want (%d,%d)", tc.p, b1, b2, tc.b1, tc.b2)
		}
		if !SubblockConditions(c, tc.p, b1, b2) {
			t.Errorf("P=%d: maximal block fails the sufficient conditions", tc.p)
		}
	}
}

func TestMaxConflictFreeBlockDegenerate(t *testing.T) {
	if _, _, err := MaxConflictFreeBlock(8191, 8191); err == nil {
		t.Error("P ≡ 0 (mod C) should fail")
	}
	if _, _, err := MaxConflictFreeBlock(8191, 2*8191); err == nil {
		t.Error("P ≡ 0 (mod C) should fail")
	}
	if _, _, err := MaxConflictFreeBlock(0, 5); err == nil {
		t.Error("invalid C should fail")
	}
	if _, _, err := MaxConflictFreeBlock(8191, 0); err == nil {
		t.Error("invalid P should fail")
	}
}

// TestPaperConditionCounterexample records the reproduction finding: the
// paper's literal §4 conditions admit a colliding block. C = 127, P ≡ 45:
// b1 = 2 ≤ min(45, 82) and b2 = 51 ≤ ⌊127/2⌋, yet 48·45 ≡ 1 (mod 127), so
// column 48 lands one line above column 0 and their footprints overlap.
func TestPaperConditionCounterexample(t *testing.T) {
	const c, p, b1, b2 = 127, 45, 2, 51
	paperOK := b1 <= min(p%c, c-p%c) && b2 <= c/b1
	if !paperOK {
		t.Fatal("counterexample no longer satisfies the paper's conditions")
	}
	if SubblockConflictFree(c, p, b1, b2) {
		t.Fatal("counterexample is actually conflict-free; finding is wrong")
	}
	if SubblockConditions(c, p, b1, b2) {
		t.Error("corrected conditions must reject the counterexample")
	}
}

func TestSubblockConditionsBounds(t *testing.T) {
	const c = 127
	// 1000 mod 127 = 111, so columns are 111 apart going forward or 16
	// going backward; b1 = 7 with b2 = 8 tiles backward: 7·16 + 7 ≤ 127.
	if !SubblockConditions(c, 1000, 7, 8) {
		t.Error("valid block rejected")
	}
	if SubblockConditions(c, 1000, 17, 8) { // b1 > 16 and 7·111+17 > 127
		t.Error("b1 over both limits accepted")
	}
	if SubblockConditions(c, 1000, 7, 19) { // 18·16+7 > 127 and 18·111+7 > 127
		t.Error("b2 over the tiling limit accepted")
	}
	if SubblockConditions(c, 1000, 0, 1) || SubblockConditions(c, 0, 1, 1) {
		t.Error("degenerate parameters accepted")
	}
	// P ≡ 0: only a single column can be safe.
	if !SubblockConditions(c, c, 5, 1) || SubblockConditions(c, c, 5, 2) {
		t.Error("P ≡ 0 handling wrong")
	}
}

func TestSubblockConflictFreeExact(t *testing.T) {
	if !SubblockConflictFree(127, 1000, 16, 7) {
		t.Error("known-good block reported colliding")
	}
	if SubblockConflictFree(127, 127, 2, 2) {
		t.Error("P ≡ 0 collision missed")
	}
	if SubblockConflictFree(127, 45, 2, 51) {
		t.Error("counterexample block reported conflict-free")
	}
	if SubblockConflictFree(127, 45, 64, 2) == false {
		// columns 0 and 45..108: footprints [0,64) and [45,109) overlap.
		t.Log("64x2 at spacing 45 collides as expected")
	}
	if SubblockConflictFree(0, 1, 1, 1) || SubblockConflictFree(127, 1, 128, 1) {
		t.Error("degenerate inputs accepted")
	}
}

// TestSubblockConditionsImplyConflictFree is the soundness property: every
// block the cheap test accepts is exactly conflict-free.
func TestSubblockConditionsImplyConflictFree(t *testing.T) {
	const c = 127
	f := func(pRaw uint16, b1Raw, b2Raw uint8) bool {
		p := int(pRaw)%5000 + 1
		b1 := int(b1Raw)%c + 1
		b2 := int(b2Raw)%c + 1
		if !SubblockConditions(c, p, b1, b2) {
			return true // only soundness is claimed
		}
		return SubblockConflictFree(c, p, b1, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMaxBlockConflictFreeProperty: the paper's recommended maximal block
// is always conflict-free (the point of §4).
func TestMaxBlockConflictFreeProperty(t *testing.T) {
	const c = 127
	f := func(pRaw uint16) bool {
		p := int(pRaw)%5000 + 1
		if p%c == 0 {
			return true
		}
		b1, b2, err := MaxConflictFreeBlock(c, p)
		if err != nil {
			return false
		}
		return SubblockConflictFree(c, p, b1, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSubblockUtilizationApproachesOne(t *testing.T) {
	// With the maximal block, utilisation b1·b2/C exceeds 0.5 for any P
	// (b2 = ⌊C/b1⌋ wastes less than b1 lines) and is often ≈1.
	const c = 8191
	for p := 1; p < 3*c; p += 37 {
		if p%c == 0 {
			continue
		}
		b1, b2, err := MaxConflictFreeBlock(c, p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		u := SubblockUtilization(c, b1, b2)
		if u <= 0.5 || u > 1 {
			t.Errorf("P=%d: utilization %v outside (0.5, 1]", p, u)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
