package vcm

import "fmt"

// SubblockConditions reports whether a b1×b2 sub-block of a P×Q
// column-major matrix is guaranteed conflict-free in a prime-mapped cache
// of C lines. b1 is the column height (consecutive words), b2 the number
// of columns; consecutive columns start P words apart, i.e. s = P mod C
// apart in the cache.
//
// The paper (§4) states the conditions
//
//	b1 ≤ min(P mod C, C − P mod C)  and  b2 ≤ ⌊C/b1⌋,
//
// but as literally written they are not sufficient: with C = 127,
// P ≡ 45, b1 = 2, b2 = 51 they hold, yet columns 0 and 48 collide because
// 48·45 ≡ 1 (mod 127) — once b1 < s, column starts wrap around and can
// land inside an earlier column's footprint. This function implements the
// corrected sufficient condition: the columns must tile without wraparound
// in one of the two directions,
//
//	(b1 ≤ s  and (b2−1)·s  + b1 ≤ C)  or
//	(b1 ≤ s′ and (b2−1)·s′ + b1 ≤ C),   s = P mod C, s′ = C − s,
//
// which reduces to the paper's conditions exactly at its recommended
// maximal block b1 = min(s, s′), b2 = ⌊C/b1⌋. Use SubblockConflictFree for
// an exact (but O(b1·b2)) check of arbitrary blocks.
func SubblockConditions(c, p, b1, b2 int) bool {
	if b1 <= 0 || b2 <= 0 || p <= 0 || c <= 1 {
		return false
	}
	s := p % c
	if s == 0 {
		return b2 == 1 && b1 <= c // all columns collide; only one column is safe
	}
	sp := c - s
	if b1 <= s && (b2-1)*s+b1 <= c {
		return true
	}
	return b1 <= sp && (b2-1)*sp+b1 <= c
}

// SubblockConflictFree exhaustively checks that the b1·b2 words of the
// sub-block map to distinct residues mod C — the ground truth the cheap
// SubblockConditions test is validated against.
func SubblockConflictFree(c, p, b1, b2 int) bool {
	if b1 <= 0 || b2 <= 0 || p <= 0 || c <= 1 || b1*b2 > c {
		return false
	}
	seen := make(map[int]bool, b1*b2)
	for col := 0; col < b2; col++ {
		base := col * p % c
		for row := 0; row < b1; row++ {
			idx := (base + row) % c
			if seen[idx] {
				return false
			}
			seen[idx] = true
		}
	}
	return true
}

// MaxConflictFreeBlock returns the paper's recommended blocking of a P×Q
// column-major matrix for a prime-mapped cache of C lines: b1 = min(P mod
// C, C − P mod C) and b2 = ⌊C/b1⌋, which drives cache utilisation b1·b2/C
// toward 1 and is conflict-free (this maximal point of the paper's
// conditions is correct; see SubblockConditions for the general-case
// caveat). It fails when P ≡ 0 (mod C), the single degenerate dimension,
// in which case the caller should re-block with a different leading
// dimension.
func MaxConflictFreeBlock(c, p int) (b1, b2 int, err error) {
	if c <= 1 || p <= 0 {
		return 0, 0, fmt.Errorf("vcm: invalid sub-block parameters C=%d P=%d", c, p)
	}
	pm := p % c
	if pm == 0 {
		return 0, 0, fmt.Errorf("vcm: leading dimension P=%d is a multiple of C=%d; no conflict-free block exists", p, c)
	}
	b1 = pm
	if c-pm < b1 {
		b1 = c - pm
	}
	return b1, c / b1, nil
}

// SubblockUtilization returns b1·b2/C, the fraction of the cache a
// conflict-free sub-block occupies.
func SubblockUtilization(c, b1, b2 int) float64 {
	return float64(b1*b2) / float64(c)
}
