package vcm

import (
	"math"
	"testing"
	"testing/quick"
)

// randomValidInputs maps raw fuzz values onto a valid (machine, workload)
// pair within the model's assumptions.
func randomValidInputs(banksRaw, tmRaw uint8, bRaw uint16, rRaw uint8, pdsRaw, p1Raw uint8) (Machine, VCM) {
	banks := 8 << (banksRaw % 5)     // 8..128
	tm := 1 + int(tmRaw)%(banks-1)   // 1..banks-1 (closed-form regime)
	b := 1 + int(bRaw)%8191          // 1..8191
	r := 1 + int(rRaw)%64            // 1..64
	pds := float64(pdsRaw%101) / 100 // 0..1
	p1 := float64(p1Raw%101) / 100   // 0..1
	m := DefaultMachine(banks, tm)
	v := VCM{B: b, R: r, Pds: pds, P1S1: p1, P1S2: p1}
	return m, v
}

// TestModelTotalsFiniteAndPositive: every valid operating point yields
// finite, positive totals and per-element times ≥ 1 on all three machines.
func TestModelTotalsFiniteAndPositive(t *testing.T) {
	dg, pg := DirectGeom(13), PrimeGeom(13)
	f := func(banksRaw, tmRaw uint8, bRaw uint16, rRaw uint8, pdsRaw, p1Raw uint8) bool {
		m, v := randomValidInputs(banksRaw, tmRaw, bRaw, rRaw, pdsRaw, p1Raw)
		const n = 1 << 18
		vals := []float64{
			TElemtMM(m, v), TElemtCC(dg, m, v), TElemtCC(pg, m, v),
			TotalMM(m, v, n), TotalCC(dg, m, v, n), TotalCC(pg, m, v, n),
			CyclesPerResultMM(m, v, n), CyclesPerResultCC(dg, m, v, n), CyclesPerResultCC(pg, m, v, n),
		}
		for i, x := range vals {
			if math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
				t.Logf("val %d = %v at %+v %+v", i, x, m, v)
				return false
			}
		}
		// Per-element times never drop below the ideal 1 cycle.
		return vals[0] >= 1 && vals[1] >= 1 && vals[2] >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPrimeNeverWorseProperty: across random valid operating points the
// prime-mapped CC-model's per-element time never exceeds the
// direct-mapped one's by more than the C = 8191-vs-8192 footprint sliver.
func TestPrimeNeverWorseProperty(t *testing.T) {
	dg, pg := DirectGeom(13), PrimeGeom(13)
	f := func(banksRaw, tmRaw uint8, bRaw uint16, rRaw uint8, pdsRaw, p1Raw uint8) bool {
		m, v := randomValidInputs(banksRaw, tmRaw, bRaw, rRaw, pdsRaw, p1Raw)
		prm := TElemtCC(pg, m, v)
		dir := TElemtCC(dg, m, v)
		return prm <= dir*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMonotoneInTmProperty: all three machines slow down (weakly) as the
// memory access time grows, everything else fixed.
func TestMonotoneInTmProperty(t *testing.T) {
	dg, pg := DirectGeom(13), PrimeGeom(13)
	f := func(bRaw uint16, rRaw, pdsRaw, p1Raw uint8) bool {
		_, v := randomValidInputs(2, 0, bRaw, rRaw, pdsRaw, p1Raw)
		const n = 1 << 18
		prev := [3]float64{}
		for i, tm := range []int{2, 4, 8, 16, 31} {
			m := DefaultMachine(32, tm)
			cur := [3]float64{
				CyclesPerResultMM(m, v, n),
				CyclesPerResultCC(dg, m, v, n),
				CyclesPerResultCC(pg, m, v, n),
			}
			if i > 0 {
				for k := 0; k < 3; k++ {
					if cur[k] < prev[k]-1e-9 {
						return false
					}
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMissRatioBoundsProperty: the analytic miss ratio stays within
// [1/(B·R), 1] — at least the compulsory pass, at most everything.
func TestMissRatioBoundsProperty(t *testing.T) {
	dg, pg := DirectGeom(13), PrimeGeom(13)
	f := func(banksRaw, tmRaw uint8, bRaw uint16, rRaw uint8, pdsRaw, p1Raw uint8) bool {
		m, v := randomValidInputs(banksRaw, tmRaw, bRaw, rRaw, pdsRaw, p1Raw)
		for _, g := range []CacheGeom{dg, pg} {
			mr := MissRatioCC(g, m, v)
			if mr < 1/(float64(v.B)*float64(v.R))-1e-12 || mr > 1+1e-9 {
				t.Logf("miss ratio %v at %+v %+v (%v)", mr, m, v, g.Mapping)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
