package vcm

import (
	"fmt"
	"math"
)

// Mapping selects the CC-model's cache indexing scheme.
type Mapping int

const (
	// MapDirect is conventional bit-selection over 2^c lines.
	MapDirect Mapping = iota
	// MapPrime is the paper's Mersenne-prime mapping over 2^c − 1 lines.
	MapPrime
)

// String implements fmt.Stringer.
func (m Mapping) String() string {
	if m == MapPrime {
		return "prime"
	}
	return "direct"
}

// CacheGeom is the CC-model cache geometry: Lines lines of one
// double-precision word each (the paper's fixed 8-byte line), arranged as
// Lines/Ways sets of Ways ways. Ways 0 means direct (1).
type CacheGeom struct {
	Mapping Mapping
	Lines   int
	// Ways is the associativity; §2.1's set-associative variant of the
	// bit-selection cache. Prime mapping is always Ways = 1.
	Ways int
}

// DirectGeom returns a direct-mapped geometry of 2^c lines.
func DirectGeom(c uint) CacheGeom { return CacheGeom{Mapping: MapDirect, Lines: 1 << c, Ways: 1} }

// AssocGeom returns a set-associative bit-selection geometry of 2^c lines
// in ways ways.
func AssocGeom(c uint, ways int) CacheGeom {
	return CacheGeom{Mapping: MapDirect, Lines: 1 << c, Ways: ways}
}

// PrimeGeom returns a prime-mapped geometry of 2^c − 1 lines.
func PrimeGeom(c uint) CacheGeom { return CacheGeom{Mapping: MapPrime, Lines: 1<<c - 1, Ways: 1} }

func (g CacheGeom) ways() int {
	if g.Ways <= 1 {
		return 1
	}
	return g.Ways
}

// Sets returns the number of sets, Lines/Ways.
func (g CacheGeom) Sets() int { return g.Lines / g.ways() }

// Validate checks the geometry.
func (g CacheGeom) Validate() error {
	if g.Lines <= 1 {
		return fmt.Errorf("vcm: cache needs more than one line, got %d", g.Lines)
	}
	w := g.ways()
	if g.Lines%w != 0 {
		return fmt.Errorf("vcm: %d lines not divisible into %d ways", g.Lines, w)
	}
	switch g.Mapping {
	case MapDirect:
		sets := g.Lines / w
		if sets&(sets-1) != 0 {
			return fmt.Errorf("vcm: bit-selection mapping needs power-of-two sets, got %d", sets)
		}
	case MapPrime:
		if w != 1 {
			return fmt.Errorf("vcm: prime mapping is direct-mapped; got %d ways", w)
		}
		if (g.Lines+1)&g.Lines != 0 {
			return fmt.Errorf("vcm: prime mapping needs 2^c−1 lines, got %d", g.Lines)
		}
	default:
		return fmt.Errorf("vcm: unknown mapping %d", int(g.Mapping))
	}
	return nil
}

// LinesVisited returns the number of distinct line frames a stride-s
// sweep can occupy: ways · S/gcd(S, stride) over S sets. §2.1's point
// falls straight out of the arithmetic: halving the sets to double the
// ways leaves the product unchanged whenever gcd(S, s) scales with S —
// which it does for the power-of-two strides that matter.
func (g CacheGeom) LinesVisited(stride int) int {
	if stride < 0 {
		stride = -stride
	}
	sets := g.Sets()
	stride %= sets
	if stride == 0 {
		return g.ways()
	}
	a, b := stride, sets
	for b != 0 {
		a, b = b, a%b
	}
	return g.ways() * (sets / a)
}

// IsCStride returns the self-interference stall cycles of loading a
// B-element vector with a specific stride into the cache: B − C/gcd(C,s)
// misses when positive (B − 1 when the stride collapses onto one line),
// each stalling t_m cycles.
func IsCStride(g CacheGeom, m Machine, b, stride int) float64 {
	lines := g.LinesVisited(stride)
	misses := 0
	if lines == 1 {
		misses = b - 1
	} else if b > lines {
		misses = b - lines
	}
	if misses <= 0 {
		return 0
	}
	return float64(misses) * float64(m.Tm)
}

// IsCExact averages IsCStride over the paper's stride distribution
// (stride 1 with probability p1, otherwise uniform on 2..C). It is the
// summation form of Eq. (5) for the direct mapping and of Eq. (8) for the
// prime mapping.
func IsCExact(g CacheGeom, m Machine, b int, p1 float64) float64 {
	total := p1 * IsCStride(g, m, b, 1)
	w := (1 - p1) / float64(g.Lines-1)
	if g.Mapping == MapPrime {
		// Only strides ≡ 0 (mod C) conflict; within 2..C that is s = C
		// alone, plus the B > C overflow term for every other stride.
		total += w * IsCStride(g, m, b, g.Lines)
		if b > g.Lines {
			total += w * float64(g.Lines-2) * float64(b-g.Lines) * float64(m.Tm)
		}
		return total
	}
	for s := 2; s <= g.Lines; s++ {
		total += w * IsCStride(g, m, b, s)
	}
	return total
}

// IsC returns the average self-interference stalls of a B-element vector
// under the geometry's closed form: Eq. (6) for the direct mapping,
//
//	I_s^C = (1−P1)/(C−1)·(1/3)·(3B·2^⌊log₂B⌋ − 2·2^{2⌊log₂B⌋} − 1)·t_m,
//
// and Eq. (8) for the prime mapping,
//
//	I_s^C = (1−P1)·(B−1)/(C−1)·t_m.
//
// Both require B ≤ C (a blocked program never exceeds the cache); larger B
// falls back to the exact summation.
func IsC(g CacheGeom, m Machine, b int, p1 float64) float64 {
	if b <= 0 {
		return 0
	}
	if b > g.Lines || g.ways() > 1 {
		// Eq. (6) was derived for the direct map; associative geometries
		// and cache-overflowing blocks use the exact summation.
		return IsCExact(g, m, b, p1)
	}
	tm := float64(m.Tm)
	switch g.Mapping {
	case MapPrime:
		return (1 - p1) * float64(b-1) / float64(g.Lines-1) * tm
	default:
		j := math.Exp2(math.Floor(math.Log2(float64(b))))
		bracket := (3*float64(b)*j - 2*j*j - 1) / 3
		return (1 - p1) / float64(g.Lines-1) * bracket * tm
	}
}

// IcC is the footprint-model cross-interference (§3.3): each of the B·Pds
// second-stream elements falls into the first vector's footprint with
// probability B/C, stalling t_m cycles,
//
//	I_c^C = B²·P_ds/C · t_m.
func IcC(g CacheGeom, m Machine, b int, pds float64) float64 {
	return float64(b) * float64(b) * pds / float64(g.Lines) * float64(m.Tm)
}

// TElemtCC is Eq. (7): per-element time on the CC-model,
//
//	T_elemt^C = 1 + P_ss·I_s(B)/B + P_ds·(I_s(B) + I_s(B·P_ds) + I_c)/B.
//
// (The paper prints the middle double-stream term as I_c^C(B·P_ds); by
// analogy with Eq. (2)'s 2·I_s^M + I_c^M it is the second stream's
// self-interference, I_s^C at length B·P_ds.)
func TElemtCC(g CacheGeom, m Machine, v VCM) float64 {
	is1 := IsC(g, m, v.B, v.P1S1)
	stalls := v.Pss() * is1
	if v.Pds > 0 {
		b2 := int(math.Round(float64(v.B) * v.Pds))
		is2 := IsC(g, m, b2, v.P1S2)
		stalls += v.Pds * (is1 + is2 + IcC(g, m, v.B, v.Pds))
	}
	return 1 + stalls/float64(v.B)
}

// TotalCC is Eq. (4): the CC-model execution time. The first pass over
// each block streams from memory at MM-model speed (T_B covers the
// compulsory and capacity misses); the remaining R−1 passes run from the
// cache with start-up reduced by t_m and per-element time T_elemt^C.
func TotalCC(g CacheGeom, m Machine, v VCM, n int) float64 {
	tb := TBlockMM(m, v)
	strips := math.Ceil(float64(v.B) / float64(m.MVL))
	reuse := m.OuterOverhead + strips*(m.InnerOverhead+m.TStart()-float64(m.Tm)) + float64(v.B)*TElemtCC(g, m, v)
	return (tb + reuse*float64(v.R-1)) * float64(ceilDiv(n, v.B))
}

// CyclesPerResultCC is T_N^C / (N·R).
func CyclesPerResultCC(g CacheGeom, m Machine, v VCM, n int) float64 {
	return TotalCC(g, m, v, n) / (float64(n) * float64(v.R))
}

// MissRatioCC returns the analytic demand miss ratio of the blocked
// computation on the CC-model: the compulsory load of each block plus the
// interference misses of the R−1 reuse passes, over B·R references. It is
// the quantity So & Zecca measured ("hit ratios high enough to take
// advantage of a cache"), derived from the same interference terms as
// TElemtCC (stall cycles / t_m = misses).
func MissRatioCC(g CacheGeom, m Machine, v VCM) float64 {
	is1 := IsC(g, m, v.B, v.P1S1)
	perPass := v.Pss() * is1
	if v.Pds > 0 {
		b2 := int(math.Round(float64(v.B) * v.Pds))
		perPass += v.Pds * (is1 + IsC(g, m, b2, v.P1S2) + IcC(g, m, v.B, v.Pds))
	}
	missesPerPass := perPass / float64(m.Tm)
	total := float64(v.B) + float64(v.R-1)*missesPerPass
	ratio := total / (float64(v.B) * float64(v.R))
	// The underlying stall formulas are uncapped (at extreme P_ds the
	// footprint charge can exceed one miss-equivalent per reference); a
	// ratio saturates at 1.
	if ratio > 1 {
		return 1
	}
	return ratio
}

// HitRatioCC is 1 − MissRatioCC.
func HitRatioCC(g CacheGeom, m Machine, v VCM) float64 {
	return 1 - MissRatioCC(g, m, v)
}
