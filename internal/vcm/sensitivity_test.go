package vcm

import "testing"

func TestSensitivityValidation(t *testing.T) {
	m := DefaultMachine(64, 32)
	v := DefaultVCM(4096)
	g := DirectGeom(13)
	if _, err := Sensitivity(g, m, v, 1<<20, 0); err == nil {
		t.Error("factor 0 accepted")
	}
	if _, err := Sensitivity(g, m, v, 1<<20, 1); err == nil {
		t.Error("factor 1 accepted")
	}
	bad := m
	bad.Banks = 3
	if _, err := Sensitivity(g, bad, v, 1<<20, 0.2); err == nil {
		t.Error("bad machine accepted")
	}
}

func TestSensitivityDirections(t *testing.T) {
	// B = 1K keeps the direct cache on the winning side of the Figure 8
	// crossover, so reuse helps; at B = 4K the reuse pass is slower than
	// the memory pass and the R direction legitimately flips.
	m := DefaultMachine(64, 32)
	v := DefaultVCM(1024)
	v.R = 8 // moderate reuse so the R excursion has visible effect
	g := DirectGeom(13)
	entries, err := Sensitivity(g, m, v, 1<<20, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("entries = %d, want 6", len(entries))
	}
	byName := map[string]SensitivityEntry{}
	for _, e := range entries {
		byName[e.Parameter] = e
		if e.Base <= 0 || e.Low <= 0 || e.High <= 0 {
			t.Errorf("%s: non-positive CPR %+v", e.Parameter, e)
		}
	}
	// More memory latency, more double streams, bigger blocks → slower;
	// more unit strides → faster.
	for _, name := range []string{"t_m", "P_ds", "B"} {
		if e := byName[name]; !(e.Low < e.High) {
			t.Errorf("%s: CPR not increasing (%v → %v)", name, e.Low, e.High)
		}
	}
	if e := byName["P_stride1"]; !(e.Low > e.High) {
		t.Errorf("P_stride1: CPR not decreasing (%v → %v)", e.Low, e.High)
	}
	// More reuse amortises the memory pass → faster.
	if e := byName["R"]; !(e.Low > e.High) {
		t.Errorf("R: CPR not decreasing (%v → %v)", e.Low, e.High)
	}
}

// TestSensitivityPrimeDominatedByPds: the prime-mapped design's only
// material stall term at this point is cross-interference, so P_ds should
// have the largest swing and P_stride1 almost none — the model's way of
// saying the prime cache removed the stride sensitivity.
func TestSensitivityPrimeDominatedByPds(t *testing.T) {
	m := DefaultMachine(64, 32)
	v := DefaultVCM(4096)
	entries, err := Sensitivity(PrimeGeom(13), m, v, 1<<20, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var pds, p1 float64
	for _, e := range entries {
		switch e.Parameter {
		case "P_ds":
			pds = abs(e.Swing())
		case "P_stride1":
			p1 = abs(e.Swing())
		}
	}
	if pds < 5*p1 {
		t.Errorf("prime P_ds swing %v not ≫ P_stride1 swing %v", pds, p1)
	}
	// On the direct map the stride distribution still matters a lot.
	dEntries, _ := Sensitivity(DirectGeom(13), m, v, 1<<20, 0.25)
	var dp1 float64
	for _, e := range dEntries {
		if e.Parameter == "P_stride1" {
			dp1 = abs(e.Swing())
		}
	}
	if dp1 < 10*p1 {
		t.Errorf("direct P_stride1 swing %v not ≫ prime's %v", dp1, p1)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
