// Package vcm implements the analytical performance model of Yang & Wu
// (ISCA 1992), Section 3: a generic vector computation model
//
//	VCM = [B, R, P_ds, s1, s2, P_stride1(s1), P_stride1(s2)]
//
// evaluated on two machine models — the MM-model (memory-register vector
// processor over M interleaved banks, no cache) and the CC-model (the same
// machine with a vector cache of C lines, direct- or prime-mapped).
//
// The package provides every quantity the paper derives:
//
//   - MM-model memory self-interference I_s^M, both the paper's closed form
//     and the exact stride-enumeration it was derived from (Eq. 2 context);
//   - MM-model cross-interference I_c^M via the congruence-equation solver
//     the authors describe, plus a closed form obtained by averaging the
//     solver over the uniformly distributed bank offset D;
//   - CC-model cache self-interference I_s^C for direct mapping (Eqs. 5–6)
//     and prime mapping (Eq. 8), and the footprint cross-interference I_c^C;
//   - block execution time T_B (Eq. 1), per-element times T_elemt (Eqs. 2
//     and 7), and total times T_N (Eqs. 3 and 4), with the metric the paper
//     plots: clock cycles per result = T_N / (N·R);
//   - the two-pass FFT model of Section 4 and the sub-block conflict-free
//     blocking conditions.
//
// Two formulas in the paper contain apparent typos; this package implements
// the dimensionally consistent reading and documents each at the point of
// use (see TotalMM and TElemtCC).
package vcm
