package vcm

import (
	"fmt"
	"math"
)

// FFTPlan describes the two-dimensional blocked Cooley–Tukey FFT of §4: an
// N-point transform viewed as a B2×B1 matrix stored column-major. Phase 1
// performs B2 row FFTs of B1 points each (row elements are stride B2
// apart); phase 2 multiplies twiddle factors and performs B1 column FFTs
// of B2 points each (unit stride). N, B1 and B2 must be powers of two with
// N = B1·B2.
type FFTPlan struct {
	N, B1, B2 int
}

// Validate checks the plan.
func (p FFTPlan) Validate() error {
	for _, v := range []struct {
		name string
		x    int
	}{{"N", p.N}, {"B1", p.B1}, {"B2", p.B2}} {
		if v.x <= 1 || v.x&(v.x-1) != 0 {
			return fmt.Errorf("vcm: FFT %s must be a power of two > 1, got %d", v.name, v.x)
		}
	}
	if p.B1*p.B2 != p.N {
		return fmt.Errorf("vcm: FFT needs B1·B2 = N, got %d·%d ≠ %d", p.B1, p.B2, p.N)
	}
	return nil
}

// fftSelfMisses returns the per-row-FFT self-interference miss count for
// phase 1: B1 elements with stride B2 occupy C/gcd(B2, C) lines, so a
// direct-mapped cache (C and B2 both powers of two) folds the row onto
// gcd… lines while the prime-mapped cache conflicts only when B2 is a
// multiple of C.
func fftSelfMisses(g CacheGeom, b1, b2 int) int {
	lines := g.LinesVisited(b2)
	if lines == 1 {
		if b1 > 1 {
			return b1 - 1
		}
		return 0
	}
	if b1 > lines {
		return b1 - lines
	}
	return 0
}

// fftPhase evaluates Eq. (4) for one FFT phase: blocks of b points reused
// log₂ b times, with memory-side loading stalls from the given stride and
// cache-side per-element stall telemtStall (total stall cycles per block).
func fftPhase(g CacheGeom, m Machine, n, b, stride int, selfMisses int) float64 {
	r := int(math.Round(math.Log2(float64(b))))
	if r < 1 {
		r = 1
	}
	// Initial load: Eq. (1) with the stride-specific memory
	// self-interference (the "adjusted for FFT stride characteristics"
	// note in §4). Stalls scale from one MVL register load to the block.
	telemtM := 1 + IsMStride(m, stride)/float64(m.MVL)
	tb := m.TBlock(b, telemtM)
	// Cached passes: per-element time 1 plus t_m per interference miss.
	telemtC := 1 + float64(selfMisses)*float64(m.Tm)/float64(b)
	strips := math.Ceil(float64(b) / float64(m.MVL))
	reuse := m.OuterOverhead + strips*(m.InnerOverhead+m.TStart()-float64(m.Tm)) + float64(b)*telemtC
	return (tb + reuse*float64(r-1)) * float64(ceilDiv(n, b))
}

// FFTTotal returns the modelled execution time of the blocked FFT on the
// CC-model with geometry g. Phase 1 (row FFTs, stride B2) suffers the
// mapping-dependent self-interference; phase 2 (column FFTs, unit stride)
// is conflict-free when B2 < C, as the paper assumes.
func FFTTotal(g CacheGeom, m Machine, p FFTPlan) float64 {
	phase1 := fftPhase(g, m, p.N, p.B1, p.B2, fftSelfMisses(g, p.B1, p.B2))
	misses2 := 0
	if p.B2 > g.Lines { // paper assumes B2 < C; degrade gracefully beyond
		misses2 = p.B2 - g.Lines
	}
	phase2 := fftPhase(g, m, p.N, p.B2, 1, misses2)
	return phase1 + phase2
}

// FFTCyclesPerPoint is the paper's FFT metric: total time divided by N.
func FFTCyclesPerPoint(g CacheGeom, m Machine, p FFTPlan) float64 {
	return FFTTotal(g, m, p) / float64(p.N)
}

// FFTAgarwalTotal models the Agarwal-style blocked FFT the paper's §4
// closes with: instead of one row FFT at a time, groups of G consecutive
// rows are loaded like a §4 sub-block (G consecutive words per column,
// columns B2 apart) and transformed together, then the B2-point column
// FFTs run as before. The paper notes "the selection of B2 is tricky" on
// a conventional cache, while on the prime-mapped cache "optimization is
// guaranteed as long as the block size is less than the cache size"; this
// model makes both statements computable: the group's self-interference
// is the exact residue-collision count of its sub-block footprint.
func FFTAgarwalTotal(g CacheGeom, m Machine, p FFTPlan, group int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if group < 1 || p.B2%group != 0 {
		return 0, fmt.Errorf("vcm: group %d must divide B2 = %d", group, p.B2)
	}
	// Collisions within one group footprint: G·B1 cells at residues
	// col·B2 + row.
	collisions := groupCollisions(g, p.B2, group, p.B1)
	blockWords := group * p.B1
	r := int(math.Round(math.Log2(float64(p.B1))))
	if r < 1 {
		r = 1
	}
	// Group load: B1 column segments of G consecutive words, stride B2
	// between columns — memory-side behaviour ≈ stride-B2 bursts.
	telemtM := 1 + IsMStride(m, p.B2)/float64(m.MVL)
	tb := m.TBlock(blockWords, telemtM)
	telemtC := 1 + float64(collisions)*float64(m.Tm)/float64(blockWords)
	strips := math.Ceil(float64(blockWords) / float64(m.MVL))
	reuse := m.OuterOverhead + strips*(m.InnerOverhead+m.TStart()-float64(m.Tm)) + float64(blockWords)*telemtC
	groups := p.B2 / group
	phase1 := (tb + reuse*float64(r-1)) * float64(groups)

	misses2 := 0
	if p.B2 > g.Lines {
		misses2 = p.B2 - g.Lines
	}
	phase2 := fftPhase(g, m, p.N, p.B2, 1, misses2)
	return phase1 + phase2, nil
}

// groupCollisions counts the cells of a G×B1 sub-block (column spacing
// stride) that collide with an earlier cell under geometry g.
func groupCollisions(g CacheGeom, stride, rows, cols int) int {
	sets := g.Sets()
	seen := make(map[int]bool, rows*cols)
	collisions := 0
	for c := 0; c < cols; c++ {
		base := c * stride % sets
		for r := 0; r < rows; r++ {
			idx := (base + r) % sets
			if seen[idx] {
				collisions++
			} else {
				seen[idx] = true
			}
		}
	}
	return collisions
}
