package vcm

import "testing"

func TestFFTPlanValidate(t *testing.T) {
	if err := (FFTPlan{N: 1 << 20, B1: 1 << 10, B2: 1 << 10}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := []FFTPlan{
		{N: 1 << 20, B1: 1 << 10, B2: 1 << 9},
		{N: 0, B1: 2, B2: 2},
		{N: 12, B1: 3, B2: 4},
		{N: 4, B1: 1, B2: 4},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestFFTSelfMisses(t *testing.T) {
	d, p := DirectGeom(13), PrimeGeom(13)
	// Direct: stride B2 = 1024 folds a 4096-point row onto
	// C/gcd(8192,1024) = 8 lines → 4088 misses.
	if got := fftSelfMisses(d, 4096, 1024); got != 4096-8 {
		t.Errorf("direct misses = %d, want %d", got, 4096-8)
	}
	// Prime: 1024 is coprime to 8191 → conflict-free.
	if got := fftSelfMisses(p, 4096, 1024); got != 0 {
		t.Errorf("prime misses = %d, want 0", got)
	}
	// Prime with B2 an exact multiple of C: everything collides.
	if got := fftSelfMisses(p, 4096, 8191); got != 4095 {
		t.Errorf("prime degenerate misses = %d, want 4095", got)
	}
	if got := fftSelfMisses(d, 4, 8192); got != 3 {
		t.Errorf("direct single-line misses = %d, want 3", got)
	}
	if got := fftSelfMisses(d, 1, 8192); got != 0 {
		t.Errorf("one-element row misses = %d, want 0", got)
	}
}

func TestFFTPrimeBeatsDirectAcrossB2(t *testing.T) {
	// Figure "12" (the paper's second Figure 11): N = 2^20, sweep B2.
	m := DefaultMachine(64, 32)
	d, p := DirectGeom(13), PrimeGeom(13)
	const n = 1 << 20
	var maxRatio float64
	for b2 := 16; b2 <= 8192; b2 *= 2 {
		plan := FFTPlan{N: n, B1: n / b2, B2: b2}
		if err := plan.Validate(); err != nil {
			t.Fatal(err)
		}
		dir := FFTCyclesPerPoint(d, m, plan)
		prm := FFTCyclesPerPoint(p, m, plan)
		if prm >= dir {
			t.Errorf("B2=%d: prime %v ≥ direct %v", b2, prm, dir)
		}
		if r := dir / prm; r > maxRatio {
			maxRatio = r
		}
	}
	if maxRatio < 2 {
		t.Errorf("max direct/prime FFT ratio %v; paper reports >2×", maxRatio)
	}
}

func TestFFTPrimeFlatInB2(t *testing.T) {
	// "Optimization is guaranteed as long as the blocking factor is less
	// than the cache size": prime-mapped cycles/point barely move with B2.
	// Both blocks must fit in the cache for the paper's guarantee, so the
	// sweep keeps B1 = N/B2 ≤ C as well.
	m := DefaultMachine(64, 32)
	p := PrimeGeom(13)
	const n = 1 << 20
	lo, hi := 1e18, 0.0
	for b2 := 256; b2 <= 4096; b2 *= 2 {
		v := FFTCyclesPerPoint(p, m, FFTPlan{N: n, B1: n / b2, B2: b2})
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo > 1.5 {
		t.Errorf("prime FFT cycles vary %vx across B2; expected nearly flat", hi/lo)
	}
}

func TestFFTTotalPositiveAndFinite(t *testing.T) {
	m := DefaultMachine(32, 8)
	for _, g := range []CacheGeom{DirectGeom(13), PrimeGeom(13)} {
		total := FFTTotal(g, m, FFTPlan{N: 1 << 16, B1: 256, B2: 256})
		if total <= 0 {
			t.Errorf("%v: FFTTotal = %v", g.Mapping, total)
		}
	}
}

func TestFFTAgarwalValidation(t *testing.T) {
	m := DefaultMachine(64, 32)
	p := FFTPlan{N: 1 << 16, B1: 256, B2: 256}
	if _, err := FFTAgarwalTotal(DirectGeom(13), m, p, 3); err == nil {
		t.Error("non-dividing group accepted")
	}
	if _, err := FFTAgarwalTotal(DirectGeom(13), m, FFTPlan{N: 10, B1: 5, B2: 2}, 1); err == nil {
		t.Error("bad plan accepted")
	}
}

// TestFFTAgarwalGrouping probes §4's closing claim ("with the
// prime-mapped cache … optimization is guaranteed as long as the block
// size is less than the cache size") and finds it needs the same
// qualification as the sub-block conditions: a G-row group spans B1
// columns spaced B2 apart, and once (B1−1)·B2 exceeds C the wrapped
// columns land a small offset apart (B1·B2 mod C), colliding with groups
// taller than that offset. G = 1 is genuinely conflict-free for any
// coprime spacing; G = 16 at B1 = B2 = 256 (wrap offset 1) is not.
func TestFFTAgarwalGrouping(t *testing.T) {
	p := FFTPlan{N: 1 << 16, B1: 256, B2: 256}
	if c := groupCollisions(PrimeGeom(13), p.B2, 1, p.B1); c != 0 {
		t.Errorf("prime G=1 collisions = %d, want 0", c)
	}
	if c := groupCollisions(PrimeGeom(13), p.B2, 16, p.B1); c == 0 {
		t.Error("prime G=16 should collide (wrap offset 1); the §4 qualification vanished")
	}
	// The direct map collides at every group size.
	if c := groupCollisions(DirectGeom(13), p.B2, 1, p.B1); c == 0 {
		t.Error("direct G=1 should collide (32 positions for 256 columns)")
	}
	if c := groupCollisions(DirectGeom(13), p.B2, 16, p.B1); c == 0 {
		t.Error("direct grouped FFT should collide at B2=256, G=16")
	}
	// Prime collides strictly less than direct at every G.
	for _, g := range []int{1, 2, 4, 8, 16} {
		pc := groupCollisions(PrimeGeom(13), p.B2, g, p.B1)
		dc := groupCollisions(DirectGeom(13), p.B2, g, p.B1)
		if pc >= dc {
			t.Errorf("G=%d: prime collisions %d not below direct %d", g, pc, dc)
		}
	}
}

func TestFFTAgarwalCostOrdering(t *testing.T) {
	m := DefaultMachine(64, 32)
	p := FFTPlan{N: 1 << 16, B1: 256, B2: 256}
	dg, pg := DirectGeom(13), PrimeGeom(13)
	for _, group := range []int{1, 4, 16} {
		dt, err := FFTAgarwalTotal(dg, m, p, group)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := FFTAgarwalTotal(pg, m, p, group)
		if err != nil {
			t.Fatal(err)
		}
		if pt >= dt {
			t.Errorf("group=%d: prime %v not below direct %v", group, pt, dt)
		}
	}
	// On the prime cache the conflict-free G = 1 is the optimum here —
	// grouping only pays once the group itself tiles conflict-free.
	p1, _ := FFTAgarwalTotal(pg, m, p, 1)
	p16, _ := FFTAgarwalTotal(pg, m, p, 16)
	if p16 <= p1 {
		t.Errorf("expected G=16 (%v) to cost more than G=1 (%v) given its wrap collisions", p16, p1)
	}
}
