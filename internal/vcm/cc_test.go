package vcm

import (
	"testing"
)

func TestCacheGeomValidate(t *testing.T) {
	if err := DirectGeom(13).Validate(); err != nil {
		t.Errorf("direct 8192: %v", err)
	}
	if err := PrimeGeom(13).Validate(); err != nil {
		t.Errorf("prime 8191: %v", err)
	}
	bad := []CacheGeom{
		{Mapping: MapDirect, Lines: 1000},
		{Mapping: MapPrime, Lines: 1000},
		{Mapping: MapDirect, Lines: 0},
		{Mapping: Mapping(9), Lines: 8192},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geom %d accepted", i)
		}
	}
	if MapDirect.String() != "direct" || MapPrime.String() != "prime" {
		t.Error("Mapping.String mismatch")
	}
}

func TestLinesVisited(t *testing.T) {
	d := DirectGeom(13)
	p := PrimeGeom(13)
	cases := []struct {
		stride      int
		direct, prm int
	}{
		{1, 8192, 8191},
		{2, 4096, 8191},
		{512, 16, 8191},
		{8192, 1, 8191},
		{8191, 8192, 1},
		{3, 8192, 8191},
		{0, 1, 1},
		{-512, 16, 8191},
		{2 * 8191, 4096, 1},
	}
	for _, tc := range cases {
		if got := d.LinesVisited(tc.stride); got != tc.direct {
			t.Errorf("direct LinesVisited(%d) = %d, want %d", tc.stride, got, tc.direct)
		}
		if got := p.LinesVisited(tc.stride); got != tc.prm {
			t.Errorf("prime LinesVisited(%d) = %d, want %d", tc.stride, got, tc.prm)
		}
	}
}

// TestIsCDirectClosedFormMatchesSum is the Eq. (5) ↔ Eq. (6) identity.
func TestIsCDirectClosedFormMatchesSum(t *testing.T) {
	m := DefaultMachine(32, 8)
	for _, c := range []uint{7, 10, 13} {
		g := DirectGeom(c)
		for _, b := range []int{1, 2, 100, 255, 256, 1000, 1 << (c - 1), 1 << c} {
			for _, p1 := range []float64{0, 0.25, 1} {
				got, want := IsC(g, m, b, p1), IsCExact(g, m, b, p1)
				if !almostEqual(got, want, 1e-9) {
					t.Errorf("direct C=2^%d B=%d p1=%v: closed %v != exact %v", c, b, p1, got, want)
				}
			}
		}
	}
}

func TestIsCPrimeClosedFormMatchesSum(t *testing.T) {
	m := DefaultMachine(32, 8)
	g := PrimeGeom(13)
	for _, b := range []int{1, 2, 100, 4096, 8191} {
		for _, p1 := range []float64{0, 0.25, 1} {
			got, want := IsC(g, m, b, p1), IsCExact(g, m, b, p1)
			if !almostEqual(got, want, 1e-12) {
				t.Errorf("prime B=%d p1=%v: closed %v != exact %v", b, p1, got, want)
			}
		}
	}
}

func TestIsCPowerOfTwoSpecialCase(t *testing.T) {
	// For B a power of two the paper reduces Eq. (6) to
	// (1−P1)/(3(C−1))·(B²−1)·t_m.
	m := DefaultMachine(32, 8)
	g := DirectGeom(13)
	for _, b := range []int{2, 64, 1024, 4096} {
		want := (1 - 0.25) / (3 * float64(g.Lines-1)) * float64(b*b-1) * float64(m.Tm)
		if got := IsC(g, m, b, 0.25); !almostEqual(got, want, 1e-12) {
			t.Errorf("B=%d: %v, want %v", b, got, want)
		}
	}
}

func TestIsCPrimeFarBelowDirect(t *testing.T) {
	m := DefaultMachine(64, 32)
	d, p := DirectGeom(13), PrimeGeom(13)
	for _, b := range []int{256, 1024, 4096, 8191} {
		pd, pp := IsC(d, m, b, 0.25), IsC(p, m, b, 0.25)
		if pp >= pd {
			t.Errorf("B=%d: prime Is %v ≥ direct %v", b, pp, pd)
		}
		if b >= 1024 && pd/pp < 100 {
			t.Errorf("B=%d: prime/direct gap only %vx", b, pd/pp)
		}
	}
}

func TestIsCZeroAndOverflow(t *testing.T) {
	m := DefaultMachine(32, 8)
	g := PrimeGeom(13)
	if IsC(g, m, 0, 0.25) != 0 {
		t.Error("IsC(B=0) != 0")
	}
	// B > C falls back to the exact sum and is positive (capacity-driven).
	if IsC(g, m, 10000, 0.25) <= 0 {
		t.Error("IsC(B>C) should be positive")
	}
	if got, want := IsC(g, m, 10000, 0.25), IsCExact(g, m, 10000, 0.25); !almostEqual(got, want, 1e-12) {
		t.Errorf("overflow fallback %v != exact %v", got, want)
	}
}

func TestIcCFootprint(t *testing.T) {
	m := DefaultMachine(64, 16)
	g := DirectGeom(13)
	// B²·Pds/C·t_m = 1024²·0.25/8192·16 = 512.
	if got := IcC(g, m, 1024, 0.25); !almostEqual(got, 512, 1e-12) {
		t.Errorf("IcC = %v, want 512", got)
	}
	if got := IcC(g, m, 1024, 0); got != 0 {
		t.Errorf("IcC with Pds=0 = %v", got)
	}
}

func TestTElemtCCSingleStream(t *testing.T) {
	m := DefaultMachine(32, 8)
	g := PrimeGeom(13)
	v := VCM{B: 1024, R: 8, Pds: 0, P1S1: 1, P1S2: 1}
	if got := TElemtCC(g, m, v); got != 1 {
		t.Errorf("unit-stride single-stream TElemtCC = %v, want 1", got)
	}
}

func TestTotalCCEqualsMMWhenReuseIsOne(t *testing.T) {
	// §3.4 / Figure 5: with R = 1 the two machines perform identically —
	// the initial (and only) pass streams from memory either way.
	m := DefaultMachine(32, 8)
	for _, geom := range []CacheGeom{DirectGeom(13), PrimeGeom(13)} {
		v := DefaultVCM(1024)
		v.R = 1
		n := 64 * 1024
		mm, cc := TotalMM(m, v, n), TotalCC(geom, m, v, n)
		if !almostEqual(mm, cc, 1e-12) {
			t.Errorf("%v: R=1 MM %v != CC %v", geom.Mapping, mm, cc)
		}
	}
}

func TestCCModelImprovesWithReuse(t *testing.T) {
	// Figure 5's shape: at t_m = 16 the prime CC-model beats the MM-model
	// for every R > 1, with diminishing returns.
	m := DefaultMachine(32, 16)
	g := PrimeGeom(13)
	n := 64 * 1024
	prev := -1.0
	for _, r := range []int{2, 4, 8, 16, 32, 64} {
		v := DefaultVCM(1024)
		v.R = r
		mm, cc := CyclesPerResultMM(m, v, n), CyclesPerResultCC(g, m, v, n)
		if cc >= mm {
			t.Errorf("R=%d: CC %v not better than MM %v", r, cc, mm)
		}
		if prev > 0 && cc >= prev {
			// cycles per result should keep falling with more reuse
			t.Errorf("R=%d: CPR %v did not improve on %v", r, cc, prev)
		}
		prev = cc
	}
}

func TestFigure7Shape(t *testing.T) {
	// The headline result: M = 64, B = 4K, R = B. At t_m = M = 64 the
	// prime-mapped CC-model runs ≈3× faster than the direct-mapped
	// CC-model and ≈5× faster than the MM-model.
	m := DefaultMachine(64, 64)
	v := DefaultVCM(4096)
	n := 1 << 20
	mm := CyclesPerResultMM(m, v, n)
	dir := CyclesPerResultCC(DirectGeom(13), m, v, n)
	prm := CyclesPerResultCC(PrimeGeom(13), m, v, n)
	if !(prm < dir && dir < mm) {
		t.Fatalf("ordering violated: prime %v direct %v mm %v", prm, dir, mm)
	}
	if ratio := dir / prm; ratio < 2 || ratio > 5 {
		t.Errorf("direct/prime ratio %v outside paper's ≈3×", ratio)
	}
	if ratio := mm / prm; ratio < 3.5 || ratio > 7 {
		t.Errorf("mm/prime ratio %v outside paper's ≈5×", ratio)
	}
}

func TestFigure7PrimeInsensitiveToTm(t *testing.T) {
	// "The prime-mapped cache shows little change in performance as
	// memory access time increases."
	m4 := DefaultMachine(64, 4)
	m64 := DefaultMachine(64, 64)
	v := DefaultVCM(4096)
	n := 1 << 20
	g := PrimeGeom(13)
	lo, hi := CyclesPerResultCC(g, m4, v, n), CyclesPerResultCC(g, m64, v, n)
	if hi/lo > 3 {
		t.Errorf("prime CPR grew %vx from t_m=4 to 64; direct grows far more", hi/lo)
	}
	d := CyclesPerResultCC(DirectGeom(13), m4, v, n)
	dHi := CyclesPerResultCC(DirectGeom(13), m64, v, n)
	if dHi/d <= hi/lo {
		t.Errorf("direct growth %vx should exceed prime growth %vx", dHi/d, hi/lo)
	}
}

func TestFigure8Shape(t *testing.T) {
	// M = 64, t_m = 32: direct CC crosses above the MM-model as B grows
	// past ≈3K while prime CC stays flat and lowest.
	m := DefaultMachine(64, 32)
	n := 1 << 20
	var crossed bool
	for _, b := range []int{256, 512, 1024, 2048, 4096, 8192} {
		v := DefaultVCM(b)
		mm := CyclesPerResultMM(m, v, n)
		dir := CyclesPerResultCC(DirectGeom(13), m, v, n)
		prm := CyclesPerResultCC(PrimeGeom(13), m, v, n)
		if prm > mm || prm > dir {
			t.Errorf("B=%d: prime %v not the best (mm %v direct %v)", b, prm, mm, dir)
		}
		if dir > mm {
			crossed = true
			if b < 2048 {
				t.Errorf("direct crossed MM too early at B=%d", b)
			}
		}
	}
	if !crossed {
		t.Error("direct CC never crossed above MM; Figure 8 expects a crossover")
	}
}

func TestFigure9Shape(t *testing.T) {
	// Sweeping P_stride1: schemes converge as P1 → 1 and prime wins for
	// every P1 < 1.
	m := DefaultMachine(64, 32)
	n := 1 << 20
	for _, p1 := range []float64{0, 0.25, 0.5, 0.75, 0.95} {
		v := DefaultVCM(4096)
		v.P1S1, v.P1S2 = p1, p1
		dir := CyclesPerResultCC(DirectGeom(13), m, v, n)
		prm := CyclesPerResultCC(PrimeGeom(13), m, v, n)
		if prm >= dir {
			t.Errorf("P1=%v: prime %v ≥ direct %v", p1, prm, dir)
		}
	}
	v := DefaultVCM(4096)
	v.P1S1, v.P1S2 = 1, 1
	dir := CyclesPerResultCC(DirectGeom(13), m, v, n)
	prm := CyclesPerResultCC(PrimeGeom(13), m, v, n)
	// At P1 = 1 only the footprint cross-interference remains; the tiny
	// difference comes from C = 8191 vs 8192.
	if !almostEqual(dir, prm, 0.01) {
		t.Errorf("P1=1: direct %v and prime %v should coincide", dir, prm)
	}
}

func TestFigure10Shape(t *testing.T) {
	// Sweeping P_ds: cycles grow with the double-stream fraction; prime
	// stays at or below direct throughout.
	m := DefaultMachine(64, 32)
	n := 1 << 20
	prevP, prevD := -1.0, -1.0
	for _, pds := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
		v := DefaultVCM(4096)
		v.Pds = pds
		dir := CyclesPerResultCC(DirectGeom(13), m, v, n)
		prm := CyclesPerResultCC(PrimeGeom(13), m, v, n)
		if prm > dir+1e-9 {
			t.Errorf("Pds=%v: prime %v > direct %v", pds, prm, dir)
		}
		if prm < prevP || dir < prevD {
			t.Errorf("Pds=%v: cycles decreased (prime %v direct %v)", pds, prm, dir)
		}
		prevP, prevD = prm, dir
	}
}

func TestAssocGeomValidate(t *testing.T) {
	if err := AssocGeom(13, 4).Validate(); err != nil {
		t.Errorf("4-way 8192: %v", err)
	}
	if AssocGeom(13, 4).Sets() != 2048 {
		t.Errorf("Sets = %d", AssocGeom(13, 4).Sets())
	}
	if err := (CacheGeom{Mapping: MapDirect, Lines: 8192, Ways: 3}).Validate(); err == nil {
		t.Error("non-dividing ways accepted")
	}
	if err := (CacheGeom{Mapping: MapPrime, Lines: 8191, Ways: 2}).Validate(); err == nil {
		t.Error("associative prime accepted")
	}
}

// TestAssocFrameReach is §2.1 in the model: for power-of-two strides the
// frames reachable are identical at every associativity.
func TestAssocFrameReach(t *testing.T) {
	direct := DirectGeom(13)
	for _, ways := range []int{2, 4, 8} {
		g := AssocGeom(13, ways)
		for _, s := range []int{2, 4, 8, 64, 512, 1024} {
			if got, want := g.LinesVisited(s), direct.LinesVisited(s); got != want {
				t.Errorf("%d-way stride %d: frames %d, want %d (same as direct)", ways, s, got, want)
			}
		}
	}
	// Only strides beyond the set count gain: stride 4096 in 4-way
	// reaches gcd(2048,4096)=2048 → 1 set × 4 ways = 4 frames vs 2.
	if got := AssocGeom(13, 4).LinesVisited(4096); got != 4 {
		t.Errorf("4-way stride-4096 frames = %d, want 4", got)
	}
	if got := DirectGeom(13).LinesVisited(4096); got != 2 {
		t.Errorf("direct stride-4096 frames = %d, want 2", got)
	}
}

// TestAssocBarelyBeatsDirect quantifies §2.1's conclusion: the average
// self-interference of the set-associative cache is only marginally lower
// than direct-mapped and nowhere near the prime mapping.
func TestAssocBarelyBeatsDirect(t *testing.T) {
	m := DefaultMachine(64, 32)
	const b = 4096
	dir := IsCExact(DirectGeom(13), m, b, 0.25)
	assoc4 := IsCExact(AssocGeom(13, 4), m, b, 0.25)
	prime := IsC(PrimeGeom(13), m, b, 0.25)
	if !(assoc4 <= dir) {
		t.Errorf("4-way Is %v above direct %v", assoc4, dir)
	}
	if assoc4 < 0.7*dir {
		t.Errorf("4-way Is %v improved more than 30%% over direct %v; §2.1 expects marginal", assoc4, dir)
	}
	if prime > assoc4/50 {
		t.Errorf("prime Is %v not ≪ 4-way %v", prime, assoc4)
	}
}

func TestMissRatioCC(t *testing.T) {
	m := DefaultMachine(64, 32)
	// Ideal workload: unit stride, single stream → only the compulsory
	// pass misses: miss ratio = 1/R.
	v := VCM{B: 1024, R: 8, Pds: 0, P1S1: 1, P1S2: 1}
	for _, g := range []CacheGeom{DirectGeom(13), PrimeGeom(13)} {
		if got, want := MissRatioCC(g, m, v), 1.0/8; !almostEqual(got, want, 1e-12) {
			t.Errorf("%v ideal miss ratio = %v, want %v", g.Mapping, got, want)
		}
	}
	// Random strides: the prime cache stays near 1/R (So & Zecca's "high
	// enough" hit ratio), the direct cache does not.
	v = DefaultVCM(4096)
	v.R = 16
	dir := MissRatioCC(DirectGeom(13), m, v)
	prm := MissRatioCC(PrimeGeom(13), m, v)
	if prm >= dir {
		t.Errorf("prime miss ratio %v not below direct %v", prm, dir)
	}
	if HitRatioCC(PrimeGeom(13), m, VCM{B: 4096, R: 16, Pds: 0, P1S1: 0.25, P1S2: 0.25}) < 0.93 {
		t.Errorf("prime single-stream hit ratio %v, want ≥ 0.93",
			HitRatioCC(PrimeGeom(13), m, VCM{B: 4096, R: 16, Pds: 0, P1S1: 0.25, P1S2: 0.25}))
	}
	if HitRatioCC(DirectGeom(13), m, v)+MissRatioCC(DirectGeom(13), m, v) != 1 {
		t.Error("hit + miss != 1")
	}
}

// TestMissRatioMatchesSimulation validates the analytic miss ratio
// against the trace-level CC simulator on the single-stream workload.
func TestMissRatioMatchesSimulation(t *testing.T) {
	// Covered end-to-end in internal/vproc (TestCCReuseHitsInCache reports
	// ≈(R−1)/R hit ratio for the prime cache); here check the analytic
	// value for the same configuration.
	m := DefaultMachine(32, 8)
	v := VCM{B: 1024, R: 8, Pds: 0, P1S1: 0, P1S2: 0}
	got := HitRatioCC(PrimeGeom(13), m, v)
	if got < 0.85 || got > 0.88 {
		t.Errorf("analytic prime hit ratio = %v, want ≈ 7/8", got)
	}
}
