package vcm

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestIsMStride(t *testing.T) {
	m := DefaultMachine(32, 8)
	cases := []struct {
		stride int
		want   float64
	}{
		{1, 0},            // 32 banks visited, revisit ≥ t_m
		{3, 0},            // odd: all banks
		{2, 0},            // 16 banks > t_m
		{4, 0},            // 8 banks = t_m → no stall
		{8, (8 - 4) * 16}, // 4 banks: 16 sweeps × (t_m−4)
		{16, (8 - 2) * 32},
		{32, 64 * 7}, // same bank: MVL·(t_m−1)
		{-8, (8 - 4) * 16},
		{64, 64 * 7},
		{40, (8 - 4) * 16}, // gcd(32,40)=8 → 4 banks
	}
	for _, tc := range cases {
		if got := IsMStride(m, tc.stride); got != tc.want {
			t.Errorf("IsMStride(stride=%d) = %v, want %v", tc.stride, got, tc.want)
		}
	}
}

// TestIsMClosedFormMatchesSum verifies the paper's "simple algebraic
// manipulation": the closed form for I_s^M equals the stride-enumerated
// average for t_m < M.
func TestIsMClosedFormMatchesSum(t *testing.T) {
	for _, banks := range []int{16, 32, 64, 128} {
		for _, tm := range []int{2, 4, 7, 8, 13, 15} {
			if tm >= banks {
				continue
			}
			m := DefaultMachine(banks, tm)
			for _, p1 := range []float64{0, 0.25, 0.5, 1} {
				got, want := IsM(m, p1), IsMExact(m, p1)
				if !almostEqual(got, want, 1e-12) {
					t.Errorf("M=%d tm=%d p1=%v: closed %v != exact %v", banks, tm, p1, got, want)
				}
			}
		}
	}
}

func TestIsMUnitStrideFree(t *testing.T) {
	m := DefaultMachine(32, 8)
	if got := IsM(m, 1); got != 0 {
		t.Errorf("IsM with P1=1 = %v, want 0", got)
	}
}

func TestIsMFallsBackWhenTmLarge(t *testing.T) {
	// t_m ≥ M violates the closed form's assumption; IsM must agree with
	// the enumeration there too (it falls back).
	m := DefaultMachine(32, 64)
	if got, want := IsM(m, 0.25), IsMExact(m, 0.25); got != want {
		t.Errorf("fallback: %v != %v", got, want)
	}
	// And unit stride now stalls: revisit interval 32 < t_m = 64.
	if IsMStride(m, 1) == 0 {
		t.Error("unit stride with t_m ≥ M should stall")
	}
}

// TestIcMClosedFormMatchesSolver verifies that the D-averaged congruence
// solver is stride-independent and equals the closed form.
func TestIcMClosedFormMatchesSolver(t *testing.T) {
	m := DefaultMachine(16, 6)
	m.MVL = 32 // keep the enumeration fast
	want := IcM(m)
	for _, s1 := range []int{1, 2, 3, 8, 15, 16} {
		for _, s2 := range []int{1, 5, 8, 16} {
			got := IcMEnumerate(m, s1, s2)
			if !almostEqual(got, want, 1e-12) {
				t.Errorf("IcMEnumerate(s1=%d,s2=%d) = %v, want %v", s1, s2, got, want)
			}
		}
	}
}

func TestIcMGrowsWithTm(t *testing.T) {
	prev := -1.0
	for _, tm := range []int{2, 4, 8, 16, 32} {
		m := DefaultMachine(64, tm)
		ic := IcM(m)
		if ic <= prev {
			t.Errorf("IcM(tm=%d) = %v not increasing (prev %v)", tm, ic, prev)
		}
		prev = ic
	}
}

func TestTElemtMMFloor(t *testing.T) {
	m := DefaultMachine(32, 8)
	v := DefaultVCM(1024)
	if got := TElemtMM(m, v); got < 1 {
		t.Errorf("TElemtMM = %v < 1", got)
	}
	// No stalls at all with P1 = 1 and no double streams.
	v.P1S1, v.Pds = 1, 0
	if got := TElemtMM(m, v); got != 1 {
		t.Errorf("ideal TElemtMM = %v, want 1", got)
	}
}

func TestTBlockEquation1(t *testing.T) {
	m := DefaultMachine(32, 8) // T_start = 38
	// B = 128, telemt = 1: 10 + 2·(15+38) + 128 = 244.
	if got := m.TBlock(128, 1); got != 244 {
		t.Errorf("TBlock(128,1) = %v, want 244", got)
	}
	// Partial strip rounds up: B = 130 → 3 strips.
	if got := m.TBlock(130, 1); got != 10+3*53+130 {
		t.Errorf("TBlock(130,1) = %v, want %v", got, 10+3*53+130)
	}
}

func TestTotalMMScalesWithReuse(t *testing.T) {
	m := DefaultMachine(32, 8)
	v := DefaultVCM(1024)
	n := 64 * 1024
	t1 := TotalMM(m, v, n)
	v.R *= 2
	if got := TotalMM(m, v, n); !almostEqual(got, 2*t1, 1e-12) {
		t.Errorf("doubling R: %v, want %v", got, 2*t1)
	}
}

func TestCyclesPerResultMMIndependentOfR(t *testing.T) {
	// T_N ∝ R, so cycles per result must not depend on R for the MM-model.
	m := DefaultMachine(32, 8)
	a := DefaultVCM(1024)
	b := a
	b.R = 7
	n := 64 * 1024
	if x, y := CyclesPerResultMM(m, a, n), CyclesPerResultMM(m, b, n); !almostEqual(x, y, 1e-12) {
		t.Errorf("CPR depends on R: %v vs %v", x, y)
	}
}

func TestMachineValidate(t *testing.T) {
	ok := DefaultMachine(32, 8)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
	bad := []Machine{
		{MVL: 0, Banks: 32, Tm: 8},
		{MVL: 64, Banks: 33, Tm: 8},
		{MVL: 64, Banks: 0, Tm: 8},
		{MVL: 64, Banks: 32, Tm: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad machine %d accepted", i)
		}
	}
}

func TestVCMValidate(t *testing.T) {
	if err := DefaultVCM(1024).Validate(); err != nil {
		t.Errorf("default VCM rejected: %v", err)
	}
	bad := []VCM{
		{B: 0, R: 1},
		{B: 1, R: 0},
		{B: 1, R: 1, Pds: -0.1},
		{B: 1, R: 1, P1S1: 1.5},
		{B: 1, R: 1, P1S2: math.NaN()},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad VCM %d accepted", i)
		}
	}
	if got := (VCM{Pds: 0.3}).Pss(); !almostEqual(got, 0.7, 1e-15) {
		t.Errorf("Pss = %v", got)
	}
}
