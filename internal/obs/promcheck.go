package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels []Label
	value  float64
	line   int
}

// CheckExposition validates a Prometheus text-format payload the hard
// way: every line must lex (name charset, label-name charset, label
// escaping, float values), every sample must follow its family's TYPE
// line, and every histogram family must have per-label-set bucket
// ladders that are monotone in le with an explicit +Inf bucket whose
// value equals the family's _count. Tests run every /metrics body
// through it so the exposition can never drift into something a
// scraper would reject.
func CheckExposition(data []byte) error {
	types := map[string]string{} // family -> type
	var samples []promSample
	for i, raw := range strings.Split(string(data), "\n") {
		line := i + 1
		s := strings.TrimRight(raw, " ")
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			if err := checkComment(s, line, types); err != nil {
				return err
			}
			continue
		}
		ps, err := parseSample(s, line)
		if err != nil {
			return err
		}
		samples = append(samples, ps)
	}
	for _, ps := range samples {
		base := histBase(ps.name, types)
		family := ps.name
		if base != "" {
			family = base
		}
		if _, ok := types[family]; !ok {
			return fmt.Errorf("prom: line %d: sample %s has no preceding # TYPE line", ps.line, ps.name)
		}
	}
	return checkHistograms(samples, types)
}

func checkComment(s string, line int, types map[string]string) error {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("prom: line %d: malformed TYPE comment", line)
		}
		name, typ := fields[2], fields[3]
		if !nameRe.MatchString(name) {
			return fmt.Errorf("prom: line %d: invalid metric name %q in TYPE", line, name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("prom: line %d: unknown metric type %q", line, typ)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("prom: line %d: duplicate TYPE for %s", line, name)
		}
		types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("prom: line %d: malformed HELP comment", line)
		}
		if !nameRe.MatchString(fields[2]) {
			return fmt.Errorf("prom: line %d: invalid metric name %q in HELP", line, fields[2])
		}
	}
	return nil
}

// parseSample lexes one sample line: name[{labels}] value [timestamp].
func parseSample(s string, line int) (promSample, error) {
	ps := promSample{line: line}
	i := 0
	for i < len(s) && s[i] != '{' && s[i] != ' ' {
		i++
	}
	ps.name = s[:i]
	if !nameRe.MatchString(ps.name) {
		return ps, fmt.Errorf("prom: line %d: invalid metric name %q", line, ps.name)
	}
	rest := s[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		ps.labels, rest, err = parseLabels(rest, line)
		if err != nil {
			return ps, err
		}
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return ps, fmt.Errorf("prom: line %d: want 'value [timestamp]' after metric, got %q", line, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return ps, fmt.Errorf("prom: line %d: invalid value %q: %v", line, fields[0], err)
	}
	ps.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return ps, fmt.Errorf("prom: line %d: invalid timestamp %q", line, fields[1])
		}
	}
	return ps, nil
}

// parseLabels consumes a {name="value",...} block, validating label
// names and escape sequences, and returns the remainder of the line.
func parseLabels(s string, line int) ([]Label, string, error) {
	var labels []Label
	i := 1 // past '{'
	for {
		for i < len(s) && s[i] == ',' {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) {
			return nil, "", fmt.Errorf("prom: line %d: unterminated label block", line)
		}
		name := s[i:j]
		if !labelRe.MatchString(name) {
			return nil, "", fmt.Errorf("prom: line %d: invalid label name %q", line, name)
		}
		if j+1 >= len(s) || s[j+1] != '"' {
			return nil, "", fmt.Errorf("prom: line %d: label %s value not quoted", line, name)
		}
		val, next, err := parseQuoted(s[j+1:], line)
		if err != nil {
			return nil, "", err
		}
		labels = append(labels, Label{Name: name, Value: val})
		i = len(s) - len(next)
	}
}

// parseQuoted consumes a quoted label value with \\, \" and \n as the
// only legal escapes.
func parseQuoted(s string, line int) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("prom: line %d: dangling escape in label value", line)
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("prom: line %d: illegal escape \\%c in label value", line, s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("prom: line %d: unterminated label value", line)
}

// histBase maps a histogram series name (_bucket/_sum/_count) to its
// family name, "" when the name is not a histogram series.
func histBase(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return ""
}

// histKey identifies one histogram sample: family plus its labels
// minus le.
func histKey(base string, labels []Label) string {
	parts := []string{base}
	for _, l := range labels {
		if l.Name != "le" {
			parts = append(parts, l.Name+"="+l.Value)
		}
	}
	return strings.Join(parts, "\x00")
}

type histLadder struct {
	base    string
	buckets map[float64]float64 // le -> cumulative count
	sum     *float64
	count   *float64
	firstAt int
}

// checkHistograms verifies every histogram family's bucket ladders.
func checkHistograms(samples []promSample, types map[string]string) error {
	ladders := map[string]*histLadder{}
	for _, ps := range samples {
		base := histBase(ps.name, types)
		if base == "" {
			if types[ps.name] == "histogram" {
				return fmt.Errorf("prom: line %d: %s typed histogram but emitted as a plain sample", ps.line, ps.name)
			}
			continue
		}
		key := histKey(base, ps.labels)
		l := ladders[key]
		if l == nil {
			l = &histLadder{base: base, buckets: map[float64]float64{}, firstAt: ps.line}
			ladders[key] = l
		}
		switch {
		case strings.HasSuffix(ps.name, "_bucket"):
			le, ok := leValue(ps.labels)
			if !ok {
				return fmt.Errorf("prom: line %d: %s bucket without a valid le label", ps.line, ps.name)
			}
			if _, dup := l.buckets[le]; dup {
				return fmt.Errorf("prom: line %d: duplicate le=%v bucket for %s", ps.line, le, base)
			}
			l.buckets[le] = ps.value
		case strings.HasSuffix(ps.name, "_sum"):
			v := ps.value
			l.sum = &v
		case strings.HasSuffix(ps.name, "_count"):
			v := ps.value
			l.count = &v
		}
	}
	for _, l := range ladders {
		if err := l.check(); err != nil {
			return err
		}
	}
	return nil
}

func leValue(labels []Label) (float64, bool) {
	for _, l := range labels {
		if l.Name != "le" {
			continue
		}
		if l.Value == "+Inf" {
			return math.Inf(1), true
		}
		v, err := strconv.ParseFloat(l.Value, 64)
		return v, err == nil
	}
	return 0, false
}

func (l *histLadder) check() error {
	if len(l.buckets) == 0 {
		return fmt.Errorf("prom: histogram %s (near line %d) has no buckets", l.base, l.firstAt)
	}
	inf, ok := l.buckets[math.Inf(1)]
	if !ok {
		return fmt.Errorf("prom: histogram %s (near line %d) is missing the +Inf bucket", l.base, l.firstAt)
	}
	les := make([]float64, 0, len(l.buckets))
	for le := range l.buckets {
		les = append(les, le)
	}
	sort.Float64s(les)
	prev := 0.0
	for _, le := range les {
		if l.buckets[le] < prev {
			return fmt.Errorf("prom: histogram %s: bucket le=%v count %v below previous %v — ladder not cumulative",
				l.base, le, l.buckets[le], prev)
		}
		prev = l.buckets[le]
	}
	if l.count == nil {
		return fmt.Errorf("prom: histogram %s is missing its _count series", l.base)
	}
	if l.sum == nil {
		return fmt.Errorf("prom: histogram %s is missing its _sum series", l.base)
	}
	if *l.count != inf {
		return fmt.Errorf("prom: histogram %s: _count %v != +Inf bucket %v", l.base, *l.count, inf)
	}
	return nil
}
