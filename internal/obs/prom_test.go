package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"latency.pool":      "latency_pool",
		"requests":          "requests",
		"9lives":            "_9lives",
		"a-b c/d":           "a_b_c_d",
		"already_fine:name": "already_fine:name",
	}
	for in, want := range cases {
		if got := MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
	for in := range cases {
		if !nameRe.MatchString(MetricName(in)) {
			t.Errorf("MetricName(%q) not a valid metric name", in)
		}
	}
}

func sampleFamilies() []Family {
	return []Family{
		{
			Name: "vcached_requests_total", Help: "Requests per handler.", Kind: KindCounter,
			Samples: []Sample{
				{Labels: []Label{{Name: "handler", Value: "simulate"}}, Value: 42},
				{Labels: []Label{{Name: "handler", Value: "sweep"}}, Value: 7},
			},
		},
		{
			Name: "vcached_inflight", Help: "In-flight requests.", Kind: KindGauge,
			Samples: []Sample{{Value: 3}},
		},
		{
			Name: "vcached_latency_seconds", Help: `Latency with "quoted" help \ and such.`, Kind: KindHistogram,
			Samples: []Sample{{
				Labels: []Label{{Name: "backend", Value: `http://127.0.0.1:1234/x"y\z`}},
				Hist: &HistValue{
					Edges:     []float64{0.0001, 0.001, 0.01},
					CumCounts: []uint64{5, 9, 12, 15},
					Sum:       0.0421,
				},
			}},
		},
	}
}

func TestWritePromRoundTripsThroughChecker(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, sampleFamilies()); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE vcached_requests_total counter",
		"# TYPE vcached_latency_seconds histogram",
		`vcached_requests_total{handler="simulate"} 42`,
		`vcached_latency_seconds_bucket{backend="http://127.0.0.1:1234/x\"y\\z",le="+Inf"} 15`,
		"vcached_latency_seconds_count{", // count carries the labels too
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("CheckExposition rejected our own output: %v\n%s", err, out)
	}
}

func TestWritePromSortsFamilies(t *testing.T) {
	var buf bytes.Buffer
	fams := []Family{
		{Name: "zzz", Kind: KindGauge, Samples: []Sample{{Value: 1}}},
		{Name: "aaa", Kind: KindGauge, Samples: []Sample{{Value: 2}}},
	}
	if err := WriteProm(&buf, fams); err != nil {
		t.Fatal(err)
	}
	if strings.Index(buf.String(), "aaa") > strings.Index(buf.String(), "zzz") {
		t.Fatalf("families not sorted:\n%s", buf.String())
	}
	if fams[0].Name != "zzz" {
		t.Fatal("WriteProm mutated the caller's slice order")
	}
}

func TestWritePromRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		fams []Family
	}{
		{"bad metric name", []Family{{Name: "has space", Kind: KindGauge}}},
		{"bad label name", []Family{{Name: "ok", Kind: KindGauge,
			Samples: []Sample{{Labels: []Label{{Name: "le-bad", Value: "x"}}, Value: 1}}}}},
		{"hist without data", []Family{{Name: "h", Kind: KindHistogram, Samples: []Sample{{Value: 1}}}}},
		{"hist count/edge mismatch", []Family{{Name: "h", Kind: KindHistogram,
			Samples: []Sample{{Hist: &HistValue{Edges: []float64{1}, CumCounts: []uint64{1}}}}}}},
		{"hist edges not ascending", []Family{{Name: "h", Kind: KindHistogram,
			Samples: []Sample{{Hist: &HistValue{Edges: []float64{2, 1}, CumCounts: []uint64{1, 2, 3}}}}}}},
		{"hist counts decreasing", []Family{{Name: "h", Kind: KindHistogram,
			Samples: []Sample{{Hist: &HistValue{Edges: []float64{1, 2}, CumCounts: []uint64{5, 3, 9}}}}}}},
		{"hist inf below last", []Family{{Name: "h", Kind: KindHistogram,
			Samples: []Sample{{Hist: &HistValue{Edges: []float64{1}, CumCounts: []uint64{5, 3}}}}}}},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := WriteProm(&buf, c.fams); err == nil {
			t.Errorf("%s: WriteProm accepted invalid input", c.name)
		}
	}
}

func TestCheckExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"no TYPE", "foo 1\n"},
		{"bad name", "# TYPE 1foo gauge\n1foo 1\n"},
		{"bad type", "# TYPE foo widget\nfoo 1\n"},
		{"duplicate TYPE", "# TYPE foo gauge\n# TYPE foo gauge\nfoo 1\n"},
		{"bad value", "# TYPE foo gauge\nfoo one\n"},
		{"bad label name", "# TYPE foo gauge\nfoo{2x=\"v\"} 1\n"},
		{"unquoted label", "# TYPE foo gauge\nfoo{x=v} 1\n"},
		{"unterminated label", "# TYPE foo gauge\nfoo{x=\"v} 1\n"},
		{"illegal escape", "# TYPE foo gauge\nfoo{x=\"a\\tb\"} 1\n"},
		{"hist as plain sample", "# TYPE h histogram\nh 1\n"},
		{"hist missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n"},
		{"hist not monotone", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"hist count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n"},
		{"hist missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n"},
		{"hist missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\n"},
		{"hist bucket without le", "# TYPE h histogram\nh_bucket 5\nh_sum 1\nh_count 5\n"},
		{"duplicate le", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
	}
	for _, c := range cases {
		if err := CheckExposition([]byte(c.body)); err == nil {
			t.Errorf("%s: CheckExposition accepted malformed payload:\n%s", c.name, c.body)
		}
	}
}

func TestCheckExpositionAcceptsValid(t *testing.T) {
	body := strings.Join([]string{
		"# a free-standing comment",
		"# HELP foo A gauge.",
		"# TYPE foo gauge",
		`foo{x="a\\b\"c\nd"} 1.5`,
		"# TYPE bar counter",
		"bar 0 1700000000000",
		"# TYPE h histogram",
		`h_bucket{node="a",le="0.001"} 2`,
		`h_bucket{node="a",le="+Inf"} 4`,
		`h_sum{node="a"} 0.01`,
		`h_count{node="a"} 4`,
		`h_bucket{node="b",le="0.001"} 0`,
		`h_bucket{node="b",le="+Inf"} 0`,
		`h_sum{node="b"} 0`,
		`h_count{node="b"} 0`,
		"",
	}, "\n")
	if err := CheckExposition([]byte(body)); err != nil {
		t.Fatalf("CheckExposition rejected valid payload: %v", err)
	}
}

func TestEscapeLabelRoundTrip(t *testing.T) {
	nasty := "a\\b\"c\nd,e{f}g"
	escaped := escapeLabel(nasty)
	got, rest, err := parseQuoted(`"`+escaped+`"`, 1)
	if err != nil || rest != "" {
		t.Fatalf("parseQuoted failed: %v rest=%q", err, rest)
	}
	if got != nasty {
		t.Fatalf("round trip: %q -> %q -> %q", nasty, escaped, got)
	}
}
