package obs

import (
	"fmt"
	"sort"
	"strings"
)

// treeNode is one span plus its resolved children.
type treeNode struct {
	span     SpanData
	children []*treeNode
}

// line renders one span without its IDs: IDs are minted by racing
// goroutines, so a byte-stable rendering keeps only the deterministic
// parts — name, attributes, and the (clock-sourced) duration.
func (n *treeNode) line() string {
	var b strings.Builder
	b.WriteString(n.span.Name)
	for _, a := range n.span.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.K, a.V)
	}
	fmt.Fprintf(&b, " durUs=%d", n.span.DurationUs)
	return b.String()
}

// RenderTree renders spans (from one ring or several stitched rings)
// as a deterministic ASCII forest. Children attach by parent span ID;
// a span whose parent is not in the set becomes a root. Siblings sort
// by start time, then by their rendered line under natural order
// (embedded integers compare numerically, so "job idx=2" sorts before
// "job idx=10"), which makes the output a pure function of the span
// set — the byte-identical-across-runs property the end-to-end
// determinism test pins.
func RenderTree(spans []SpanData) string {
	byID := make(map[SpanID]*treeNode, len(spans))
	nodes := make([]*treeNode, 0, len(spans))
	for _, s := range spans {
		n := &treeNode{span: s}
		byID[s.Span] = n
		nodes = append(nodes, n)
	}
	var roots []*treeNode
	for _, n := range nodes {
		if p, ok := byID[n.span.Parent]; ok && p != n {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	var b strings.Builder
	for _, r := range roots {
		writeNode(&b, r, 0)
	}
	return b.String()
}

func sortNodes(ns []*treeNode) {
	sort.SliceStable(ns, func(i, j int) bool {
		si, sj := ns[i].span, ns[j].span
		if !si.Start.Equal(sj.Start) {
			return si.Start.Before(sj.Start)
		}
		return naturalLess(ns[i].line(), ns[j].line())
	})
	for _, n := range ns {
		sortNodes(n.children)
	}
}

func writeNode(b *strings.Builder, n *treeNode, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.line())
	b.WriteByte('\n')
	for _, c := range n.children {
		writeNode(b, c, depth+1)
	}
}

// naturalLess compares strings with embedded unsigned integers
// compared numerically: "job 2" < "job 10".
func naturalLess(a, b string) bool {
	for len(a) > 0 && len(b) > 0 {
		if isDigit(a[0]) && isDigit(b[0]) {
			an, arest := takeNumber(a)
			bn, brest := takeNumber(b)
			if an != bn {
				return an < bn
			}
			a, b = arest, brest
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return len(a) < len(b)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// takeNumber splits a leading digit run into its value and the rest.
// Runs longer than 18 digits saturate rather than overflow.
func takeNumber(s string) (uint64, string) {
	var n uint64
	i := 0
	for ; i < len(s) && isDigit(s[i]); i++ {
		if i < 18 {
			n = n*10 + uint64(s[i]-'0')
		}
	}
	return n, s[i:]
}
