package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Kind is a Prometheus metric family type.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a cumulative-bucket latency distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// HistValue is one histogram sample: the finite upper bounds plus the
// cumulative count ladder. CumCounts has one entry per finite edge
// plus a final entry for the implicit +Inf bucket, and must be
// non-decreasing; the last entry is the observation count.
type HistValue struct {
	// Edges are the finite le bounds, ascending.
	Edges []float64
	// CumCounts are cumulative counts per edge; len(Edges)+1 entries,
	// the last being the +Inf bucket (== total count).
	CumCounts []uint64
	// Sum is the sum of all observations.
	Sum float64
}

// Sample is one labelled value within a family. Exactly one of Value
// (counter/gauge) and Hist (histogram) is meaningful.
type Sample struct {
	Labels []Label
	Value  float64
	Hist   *HistValue
}

// Family is one metric family: a name, a help line, a type, and its
// samples.
type Family struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []Sample
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// MetricName sanitizes an internal registry name ("latency.pool") into
// the Prometheus charset ("latency_pool"): every character outside
// [a-zA-Z0-9_:] becomes '_', and a leading digit gets a '_' prefix.
func MetricName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel applies the exposition-format label-value escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp applies the exposition-format HELP escapes.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteProm renders families in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, one HELP and TYPE line
// each, histograms expanded into _bucket/_sum/_count series with an
// explicit +Inf bucket. Invalid metric or label names are an error —
// exposition must never emit a line a scraper would reject.
func WriteProm(w io.Writer, families []Family) error {
	fams := make([]Family, len(families))
	copy(fams, families)
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	for _, f := range fams {
		if !nameRe.MatchString(f.Name) {
			return fmt.Errorf("obs: invalid metric name %q", f.Name)
		}
		for _, s := range f.Samples {
			for _, l := range s.Labels {
				if !labelRe.MatchString(l.Name) {
					return fmt.Errorf("obs: metric %s: invalid label name %q", f.Name, l.Name)
				}
			}
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if f.Kind == KindHistogram {
				if err := writeHist(w, f.Name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(s.Labels), formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHist(w io.Writer, name string, s Sample) error {
	h := s.Hist
	if h == nil {
		return fmt.Errorf("obs: histogram family %s has a sample without hist data", name)
	}
	if len(h.CumCounts) != len(h.Edges)+1 {
		return fmt.Errorf("obs: histogram %s: %d cumulative counts for %d edges (want edges+1)",
			name, len(h.CumCounts), len(h.Edges))
	}
	for i, edge := range h.Edges {
		if i > 0 && edge <= h.Edges[i-1] {
			return fmt.Errorf("obs: histogram %s: edges not ascending at %v", name, edge)
		}
		if i > 0 && h.CumCounts[i] < h.CumCounts[i-1] {
			return fmt.Errorf("obs: histogram %s: cumulative counts decrease at le=%v", name, edge)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, labelString(s.Labels, Label{Name: "le", Value: formatFloat(edge)}), h.CumCounts[i]); err != nil {
			return err
		}
	}
	total := h.CumCounts[len(h.CumCounts)-1]
	if n := len(h.Edges); n > 0 && total < h.CumCounts[n-1] {
		return fmt.Errorf("obs: histogram %s: +Inf bucket below last finite bucket", name)
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, labelString(s.Labels, Label{Name: "le", Value: "+Inf"}), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(s.Labels), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(s.Labels), total)
	return err
}
