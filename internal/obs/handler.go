package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// tracesResponse is the /v1/debug/traces envelope.
type tracesResponse struct {
	Origin string      `json:"origin"`
	Traces []TraceData `json:"traces"`
}

// TracesHandler serves the finished-trace ring as JSON. Without a
// query it returns every retained trace, oldest first; ?id=<hex trace
// id> returns just that trace (404 when it has been evicted), and
// ?last=N returns the N most recent.
func (t *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := tracesResponse{Origin: t.origin}
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id: want 16 hex digits", http.StatusBadRequest)
				return
			}
			td, ok := t.TraceByID(TraceID(id))
			if !ok {
				http.Error(w, "trace not found (evicted or never finished)", http.StatusNotFound)
				return
			}
			resp.Traces = []TraceData{td}
		} else {
			resp.Traces = t.Traces()
			if lastStr := r.URL.Query().Get("last"); lastStr != "" {
				n, err := strconv.Atoi(lastStr)
				if err != nil || n < 0 {
					http.Error(w, "bad last: want a non-negative integer", http.StatusBadRequest)
					return
				}
				if n < len(resp.Traces) {
					resp.Traces = resp.Traces[len(resp.Traces)-n:]
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}
