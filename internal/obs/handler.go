package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// tracesResponse is the /v1/debug/traces envelope.
type tracesResponse struct {
	Origin string      `json:"origin"`
	Traces []TraceData `json:"traces"`
}

// writeHandlerError emits the service's unified error envelope
// ({"error":{"code","message"}}). The shape is duplicated here rather
// than imported: obs sits below the server package, which already
// imports obs for spans. The codes used ("invalid_request",
// "not_found") are members of the server's ErrorCode contract.
func writeHandlerError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"error": map[string]string{"code": code, "message": message}})
}

// TracesHandler serves the finished-trace ring as JSON. Without a
// query it returns every retained trace, oldest first; ?id=<hex trace
// id> returns just that trace (404 when it has been evicted), and
// ?last=N returns the N most recent.
func (t *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := tracesResponse{Origin: t.origin}
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 16, 64)
			if err != nil {
				writeHandlerError(w, http.StatusBadRequest, "invalid_request", "bad trace id: want 16 hex digits")
				return
			}
			td, ok := t.TraceByID(TraceID(id))
			if !ok {
				writeHandlerError(w, http.StatusNotFound, "not_found", "trace not found (evicted or never finished)")
				return
			}
			resp.Traces = []TraceData{td}
		} else {
			resp.Traces = t.Traces()
			if lastStr := r.URL.Query().Get("last"); lastStr != "" {
				n, err := strconv.Atoi(lastStr)
				if err != nil || n < 0 {
					writeHandlerError(w, http.StatusBadRequest, "invalid_request", "bad last: want a non-negative integer")
					return
				}
				if n < len(resp.Traces) {
					resp.Traces = resp.Traces[len(resp.Traces)-n:]
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}
