package obs

import (
	"testing"
	"time"
)

func mkSpan(trace TraceID, id, parent SpanID, name string, start int64, attrs ...Attr) SpanData {
	return SpanData{
		Trace: trace, Span: id, Parent: parent, Name: name,
		Start: time.Unix(0, start*int64(time.Microsecond)).UTC(),
		Attrs: attrs,
	}
}

func TestRenderTreeOrphanBecomesRoot(t *testing.T) {
	spans := []SpanData{
		mkSpan(1, 2, 99, "orphan", 5), // parent 99 not in the set
		mkSpan(1, 1, 0, "root", 0),
		mkSpan(1, 3, 1, "child", 1),
	}
	want := "root durUs=0\n" +
		"  child durUs=0\n" +
		"orphan durUs=0\n"
	if got := RenderTree(spans); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderTreeNaturalSiblingOrder(t *testing.T) {
	// Same start time: siblings fall back to natural line order, so
	// job=2 sorts before job=10 even though "10" < "2" lexically.
	spans := []SpanData{
		mkSpan(1, 1, 0, "root", 0),
		mkSpan(1, 4, 1, "leg", 1, Int("job", 10)),
		mkSpan(1, 3, 1, "leg", 1, Int("job", 2)),
		mkSpan(1, 2, 1, "leg", 1, Int("job", 1)),
	}
	want := "root durUs=0\n" +
		"  leg job=1 durUs=0\n" +
		"  leg job=2 durUs=0\n" +
		"  leg job=10 durUs=0\n"
	if got := RenderTree(spans); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderTreeStartTimeWinsOverName(t *testing.T) {
	spans := []SpanData{
		mkSpan(1, 1, 0, "root", 0),
		mkSpan(1, 2, 1, "zzz", 1),
		mkSpan(1, 3, 1, "aaa", 2),
	}
	want := "root durUs=0\n" +
		"  zzz durUs=0\n" +
		"  aaa durUs=0\n"
	if got := RenderTree(spans); got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderTreeInputOrderIrrelevant(t *testing.T) {
	spans := []SpanData{
		mkSpan(1, 1, 0, "root", 0),
		mkSpan(1, 2, 1, "a", 1),
		mkSpan(1, 3, 2, "b", 2),
		mkSpan(1, 4, 1, "c", 3),
	}
	fwd := RenderTree(spans)
	rev := make([]SpanData, 0, len(spans))
	for i := len(spans) - 1; i >= 0; i-- {
		rev = append(rev, spans[i])
	}
	if got := RenderTree(rev); got != fwd {
		t.Fatalf("tree depends on input order:\n%s\nvs\n%s", got, fwd)
	}
}

func TestNaturalLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"job 2", "job 10", true},
		{"job 10", "job 2", false},
		{"job 2", "job 2", false},
		{"a", "b", true},
		{"a1b2", "a1b10", true},
		{"x 999999999999999999999", "x 1000000000000000000000", false}, // >18-digit runs saturate without overflow
		{"abc", "abcd", true},
	}
	for _, c := range cases {
		if got := naturalLess(c.a, c.b); got != c.want {
			t.Errorf("naturalLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
