package obs

import (
	"testing"

	"primecache/internal/sim/leak"
)

// The tracer owns no goroutines by construction; leak.Main pins that —
// a refactor that adds a background flusher or sampler goroutine to the
// ring fails the suite.
func TestMain(m *testing.M) { leak.Main(m) }
