// Package obs is the zero-dependency observability layer threaded
// through the vcached service stack: request tracing (trace/span IDs
// minted at the edge, propagated across processes via the
// X-Vcache-Trace header, recorded into a bounded ring buffer and
// served at /v1/debug/traces), Prometheus text exposition for the
// hand-rolled metric registry, and deterministic span-tree rendering
// for tests. Spans take their timestamps from an injectable sim.Clock,
// so a cluster driven by a sim.Virtual clock produces byte-identical
// span trees on every run — per-path latency attribution that works
// under deterministic simulation, not just on the wall clock.
package obs

import (
	"context"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"primecache/internal/sim"
)

// TraceID identifies one request end to end, across every process it
// touches. Zero is "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. The high 32 bits encode
// the minting tracer's origin, so IDs from different processes never
// collide when a test stitches their rings together.
type SpanID uint64

func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }
func (s SpanID) String() string  { return fmt.Sprintf("%016x", uint64(s)) }

// Header is the trace-propagation header: "<traceID>-<parentSpanID>",
// both zero-padded hex. A server receiving it records its edge span as
// a remote child of the sender's span instead of minting a new trace.
const Header = "X-Vcache-Trace"

// FormatHeader renders the header value for an outgoing request.
func FormatHeader(t TraceID, s SpanID) string { return t.String() + "-" + s.String() }

// ParseHeader decodes a header value; ok is false for anything
// malformed (including an absent/empty value), in which case the
// receiver starts a fresh trace.
func ParseHeader(v string) (TraceID, SpanID, bool) {
	t, rest, found := strings.Cut(v, "-")
	if !found || len(t) != 16 || len(rest) != 16 {
		return 0, 0, false
	}
	tid, err := strconv.ParseUint(t, 16, 64)
	if err != nil {
		return 0, 0, false
	}
	sid, err := strconv.ParseUint(rest, 16, 64)
	if err != nil || tid == 0 {
		return 0, 0, false
	}
	return TraceID(tid), SpanID(sid), true
}

// Attr is one span attribute. Attributes are an ordered list, not a
// map, so rendering is deterministic.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{K: k, V: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{K: k, V: strconv.Itoa(v)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{K: k, V: strconv.FormatBool(v)} }

// SpanData is one finished span, as stored in the ring and served by
// /v1/debug/traces.
type SpanData struct {
	Trace  TraceID `json:"trace"`
	Span   SpanID  `json:"span"`
	Parent SpanID  `json:"parent,omitempty"`
	// Remote marks a span whose parent lives in another process (the
	// parent ID arrived via the propagation header).
	Remote     bool      `json:"remote,omitempty"`
	Origin     string    `json:"origin"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationUs int64     `json:"durationUs"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// Span is one in-progress timed operation. A nil *Span is a valid
// no-op receiver for SetAttr and End, so instrumented code paths never
// have to check whether tracing is wired up.
type Span struct {
	tracer *Tracer
	acc    *traceAcc

	trace  TraceID
	id     SpanID
	parent SpanID
	remote bool
	root   bool // this span created acc; its End publishes the trace
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// TraceID returns the span's trace, 0 on a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// ID returns the span's ID, 0 on a nil span.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr appends one attribute. No-op on a nil or ended span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{K: k, V: v})
	}
	s.mu.Unlock()
}

// End finishes the span: its duration is measured on the tracer's
// clock and the span is appended to its trace. Ending the span that
// started the trace publishes the whole trace to the ring buffer (late
// stragglers still append afterwards — the ring holds live
// accumulators, and snapshots copy under the trace lock). End is
// idempotent; a nil span ignores it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	data := SpanData{
		Trace:      s.trace,
		Span:       s.id,
		Parent:     s.parent,
		Remote:     s.remote,
		Origin:     s.tracer.origin,
		Name:       s.name,
		Start:      s.start,
		DurationUs: s.tracer.clock.Since(s.start).Microseconds(),
		Attrs:      attrs,
	}
	s.acc.add(data)
	if s.root {
		s.tracer.publish(s.acc, data)
	}
}

// traceAcc accumulates one trace's finished spans.
type traceAcc struct {
	mu      sync.Mutex
	trace   TraceID
	spans   []SpanData
	dropped int
	max     int
}

func (a *traceAcc) add(d SpanData) {
	a.mu.Lock()
	if len(a.spans) >= a.max {
		a.dropped++
	} else {
		a.spans = append(a.spans, d)
	}
	a.mu.Unlock()
}

func (a *traceAcc) snapshot() ([]SpanData, int) {
	a.mu.Lock()
	out := make([]SpanData, len(a.spans))
	copy(out, a.spans)
	dropped := a.dropped
	a.mu.Unlock()
	return out, dropped
}

// TracerOptions configures a Tracer. The zero value works: origin
// "proc", real clock, 256-trace ring, 2048 spans per trace, no log
// sampling.
type TracerOptions struct {
	// Origin names this process in stitched multi-process traces and
	// namespaces its span IDs. Defaults to "proc".
	Origin string
	// Clock is the span time source; nil selects sim.Real. Inject a
	// sim.Virtual clock for deterministic traces.
	Clock sim.Clock
	// Capacity bounds the finished-trace ring buffer (default 256).
	Capacity int
	// MaxSpans bounds spans retained per trace; excess spans are
	// counted, not stored (default 2048).
	MaxSpans int
	// Logger, when non-nil, receives one structured line per sampled
	// finished trace (trace ID, root span, duration, span count).
	Logger *slog.Logger
	// SampleEvery logs every Nth finished trace; <= 0 with a Logger
	// set logs every trace.
	SampleEvery int
}

// Tracer mints spans and retains finished traces in a bounded ring.
// It owns no goroutines: publishing is a slice append under a mutex,
// so a Tracer can never leak.
type Tracer struct {
	origin     string
	originHash uint64
	clock      sim.Clock
	logger     *slog.Logger
	sample     int

	spanCtr  atomic.Uint64
	traceCtr atomic.Uint64
	finished atomic.Uint64

	mu   sync.Mutex
	ring []*traceAcc // oldest first
	cap  int
	max  int
}

// NewTracer builds a Tracer.
func NewTracer(o TracerOptions) *Tracer {
	if o.Origin == "" {
		o.Origin = "proc"
	}
	if o.Capacity <= 0 {
		o.Capacity = 256
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = 2048
	}
	h := fnv.New32a()
	h.Write([]byte(o.Origin))
	return &Tracer{
		origin:     o.Origin,
		originHash: uint64(h.Sum32()) << 32,
		clock:      sim.Or(o.Clock),
		logger:     o.Logger,
		sample:     o.SampleEvery,
		cap:        o.Capacity,
		max:        o.MaxSpans,
	}
}

// Origin returns the tracer's process name.
func (t *Tracer) Origin() string { return t.origin }

func (t *Tracer) nextSpanID() SpanID {
	return SpanID(t.originHash | (t.spanCtr.Add(1) & 0xffffffff))
}

func (t *Tracer) nextTraceID() TraceID {
	return TraceID(t.originHash | (t.traceCtr.Add(1) & 0xffffffff))
}

type ctxKey struct{}

// SpanFrom returns the span carried by ctx, nil when there is none.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextWithSpan returns ctx carrying s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// StartSpan begins a span under the span already in ctx, or — when ctx
// carries none — roots a fresh trace. The returned context carries the
// new span for its children.
func (t *Tracer) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if parent := SpanFrom(ctx); parent != nil {
		return startChild(ctx, parent, name, attrs)
	}
	return t.startRoot(ctx, name, t.nextTraceID(), 0, false, attrs)
}

// StartRemoteSpan begins the local root of a propagated trace: the
// parent span lives in the process that sent the header.
func (t *Tracer) StartRemoteSpan(ctx context.Context, name string, trace TraceID, parent SpanID, attrs ...Attr) (context.Context, *Span) {
	return t.startRoot(ctx, name, trace, parent, true, attrs)
}

func (t *Tracer) startRoot(ctx context.Context, name string, trace TraceID, parent SpanID, remote bool, attrs []Attr) (context.Context, *Span) {
	s := &Span{
		tracer: t,
		acc:    &traceAcc{trace: trace, max: t.max},
		trace:  trace,
		id:     t.nextSpanID(),
		parent: parent,
		remote: remote,
		root:   true,
		name:   name,
		start:  t.clock.Now(),
		attrs:  attrs,
	}
	return ContextWithSpan(ctx, s), s
}

// Start begins a child span of whatever span ctx carries, through that
// span's own tracer. When ctx has no span it returns (ctx, nil) — and
// the nil span's methods are no-ops — so deep layers (the worker pool,
// the evaluators) can instrument unconditionally.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	return startChild(ctx, parent, name, attrs)
}

func startChild(ctx context.Context, parent *Span, name string, attrs []Attr) (context.Context, *Span) {
	t := parent.tracer
	s := &Span{
		tracer: t,
		acc:    parent.acc,
		trace:  parent.trace,
		id:     t.nextSpanID(),
		parent: parent.id,
		name:   name,
		start:  t.clock.Now(),
		attrs:  attrs,
	}
	return ContextWithSpan(ctx, s), s
}

// Inject writes the propagation header for the span in ctx; no-op when
// ctx carries none.
func Inject(ctx context.Context, h http.Header) {
	if s := SpanFrom(ctx); s != nil {
		h.Set(Header, FormatHeader(s.trace, s.id))
	}
}

// publish appends a finished trace to the ring and emits the sampled
// log line.
func (t *Tracer) publish(acc *traceAcc, root SpanData) {
	t.mu.Lock()
	t.ring = append(t.ring, acc)
	if len(t.ring) > t.cap {
		t.ring = t.ring[len(t.ring)-t.cap:]
	}
	t.mu.Unlock()

	n := t.finished.Add(1)
	if t.logger == nil {
		return
	}
	if t.sample > 1 && n%uint64(t.sample) != 0 {
		return
	}
	spans, _ := acc.snapshot()
	t.logger.LogAttrs(context.Background(), slog.LevelInfo, "trace finished",
		slog.String("trace", root.Trace.String()),
		slog.String("origin", t.origin),
		slog.String("root", root.Name),
		slog.Int64("durationUs", root.DurationUs),
		slog.Int("spans", len(spans)))
}

// Finished returns how many traces have completed since the tracer was
// built (including ones the ring has since evicted).
func (t *Tracer) Finished() uint64 { return t.finished.Load() }

// TraceData is one finished trace as served by /v1/debug/traces.
type TraceData struct {
	Trace TraceID    `json:"trace"`
	Spans []SpanData `json:"spans"`
	// Dropped counts spans beyond the per-trace retention cap.
	Dropped int `json:"dropped,omitempty"`
	// Tree is the deterministic rendering of this process's spans (see
	// RenderTree); stitch rings from several processes for the full
	// cross-process tree.
	Tree string `json:"tree"`
}

// Traces snapshots the ring, oldest trace first.
func (t *Tracer) Traces() []TraceData {
	t.mu.Lock()
	accs := make([]*traceAcc, len(t.ring))
	copy(accs, t.ring)
	t.mu.Unlock()
	out := make([]TraceData, 0, len(accs))
	for _, acc := range accs {
		spans, dropped := acc.snapshot()
		out = append(out, TraceData{
			Trace:   acc.trace,
			Spans:   spans,
			Dropped: dropped,
			Tree:    RenderTree(spans),
		})
	}
	return out
}

// TraceByID returns one finished trace from the ring.
func (t *Tracer) TraceByID(id TraceID) (TraceData, bool) {
	for _, td := range t.Traces() {
		if td.Trace == id {
			return td, true
		}
	}
	return TraceData{}, false
}
