package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"primecache/internal/sim"
)

func TestHeaderRoundTrip(t *testing.T) {
	tid, sid := TraceID(0xdeadbeef01020304), SpanID(0x0000000a0000000b)
	v := FormatHeader(tid, sid)
	if want := "deadbeef01020304-0000000a0000000b"; v != want {
		t.Fatalf("FormatHeader = %q, want %q", v, want)
	}
	gt, gs, ok := ParseHeader(v)
	if !ok || gt != tid || gs != sid {
		t.Fatalf("ParseHeader(%q) = %v %v %v", v, gt, gs, ok)
	}
	for _, bad := range []string{
		"", "-", "deadbeef", "deadbeef01020304-", "-0000000a0000000b",
		"deadbeef0102030-0000000a0000000b",   // short trace
		"deadbeef01020304-0000000a0000000bc", // long span
		"zzzzbeef01020304-0000000a0000000b",  // bad hex
		"0000000000000000-0000000a0000000b",  // zero trace
	} {
		if _, _, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) accepted malformed header", bad)
		}
	}
}

func TestSpanLifecycleVirtualClock(t *testing.T) {
	clk := sim.NewVirtual()
	tr := NewTracer(TracerOptions{Origin: "test", Clock: clk})

	ctx, root := tr.StartSpan(context.Background(), "request", String("path", "/v1/simulate"))
	_, child := Start(ctx, "admit")
	clk.Advance(50 * time.Microsecond)
	child.End()
	_, child2 := Start(ctx, "pool.wait", Int("depth", 3))
	clk.Advance(25 * time.Microsecond)
	child2.End()
	clk.Advance(10 * time.Microsecond)
	root.SetAttr("status", "200")
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	td := traces[0]
	if len(td.Spans) != 3 || td.Dropped != 0 {
		t.Fatalf("got %d spans (%d dropped), want 3", len(td.Spans), td.Dropped)
	}
	want := "request path=/v1/simulate status=200 durUs=85\n" +
		"  admit durUs=50\n" +
		"  pool.wait depth=3 durUs=25\n"
	if td.Tree != want {
		t.Fatalf("tree:\n%s\nwant:\n%s", td.Tree, want)
	}
	for _, s := range td.Spans {
		if s.Trace != td.Trace {
			t.Errorf("span %s has trace %v, want %v", s.Name, s.Trace, td.Trace)
		}
		if s.Origin != "test" {
			t.Errorf("span %s origin %q, want test", s.Name, s.Origin)
		}
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	ctx, s := Start(context.Background(), "orphan", Int("i", 1))
	if s != nil {
		t.Fatal("Start without a parent span should return nil")
	}
	s.SetAttr("k", "v") // must not panic
	s.End()
	if s.TraceID() != 0 || s.ID() != 0 {
		t.Fatal("nil span should have zero IDs")
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("context should not carry a span")
	}
}

func TestEndIdempotentAndLateAttrs(t *testing.T) {
	clk := sim.NewVirtual()
	tr := NewTracer(TracerOptions{Origin: "test", Clock: clk})
	_, root := tr.StartSpan(context.Background(), "r")
	clk.Advance(time.Microsecond)
	root.End()
	clk.Advance(time.Second)
	root.End()                 // second End ignored
	root.SetAttr("late", "no") // attrs after End ignored
	if got := tr.Finished(); got != 1 {
		t.Fatalf("Finished = %d, want 1", got)
	}
	td := tr.Traces()[0]
	if len(td.Spans) != 1 || td.Spans[0].DurationUs != 1 || len(td.Spans[0].Attrs) != 0 {
		t.Fatalf("span corrupted by post-End calls: %+v", td.Spans[0])
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(TracerOptions{Origin: "test", Clock: sim.NewVirtual(), Capacity: 2})
	for i := 0; i < 3; i++ {
		_, s := tr.StartSpan(context.Background(), fmt.Sprintf("r%d", i))
		s.End()
	}
	traces := tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(traces))
	}
	if got := traces[0].Spans[0].Name; got != "r1" {
		t.Fatalf("oldest retained trace is %q, want r1 (r0 evicted)", got)
	}
	if tr.Finished() != 3 {
		t.Fatalf("Finished = %d, want 3", tr.Finished())
	}
}

func TestMaxSpansDropCounting(t *testing.T) {
	tr := NewTracer(TracerOptions{Origin: "test", Clock: sim.NewVirtual(), MaxSpans: 2})
	ctx, root := tr.StartSpan(context.Background(), "r")
	for i := 0; i < 4; i++ {
		_, c := Start(ctx, "child")
		c.End()
	}
	root.End()
	td := tr.Traces()[0]
	if len(td.Spans) != 2 || td.Dropped != 3 {
		t.Fatalf("got %d spans %d dropped, want 2 spans 3 dropped", len(td.Spans), td.Dropped)
	}
}

func TestRemoteSpanStitching(t *testing.T) {
	clk := sim.NewVirtual()
	coord := NewTracer(TracerOptions{Origin: "coordinator", Clock: clk})
	backend := NewTracer(TracerOptions{Origin: "backend-0", Clock: clk})

	ctx, root := coord.StartSpan(context.Background(), "sweep")
	ctx, leg := Start(ctx, "sweep.leg", Int("jobs", 4))

	// Propagate exactly as client/server do.
	req := httptest.NewRequest("POST", "/v1/simulate", nil)
	Inject(ctx, req.Header)
	tid, psid, ok := ParseHeader(req.Header.Get(Header))
	if !ok {
		t.Fatal("injected header did not parse")
	}
	if tid != root.TraceID() || psid != leg.ID() {
		t.Fatal("header does not carry the innermost span")
	}

	bctx, edge := backend.StartRemoteSpan(context.Background(), "simulate", tid, psid)
	_, pool := Start(bctx, "pool.run")
	clk.Advance(30 * time.Microsecond)
	pool.End()
	edge.End()
	leg.End()
	root.End()

	if !edge2(backend).Remote {
		t.Fatal("backend edge span should be marked remote")
	}

	// Stitch both rings and check the cross-process tree.
	var all []SpanData
	for _, tr := range []*Tracer{coord, backend} {
		for _, td := range tr.Traces() {
			if td.Trace != tid {
				t.Fatalf("tracer %s retained foreign trace %v", tr.Origin(), td.Trace)
			}
			all = append(all, td.Spans...)
		}
	}
	seen := map[SpanID]bool{}
	for _, s := range all {
		if seen[s.Span] {
			t.Fatalf("span ID collision across origins: %v", s.Span)
		}
		seen[s.Span] = true
	}
	want := "sweep durUs=30\n" +
		"  sweep.leg jobs=4 durUs=30\n" +
		"    simulate durUs=30\n" +
		"      pool.run durUs=30\n"
	if got := RenderTree(all); got != want {
		t.Fatalf("stitched tree:\n%s\nwant:\n%s", got, want)
	}
}

// edge2 pulls the single remote edge span out of a backend ring.
func edge2(tr *Tracer) SpanData {
	for _, td := range tr.Traces() {
		for _, s := range td.Spans {
			if s.Remote {
				return s
			}
		}
	}
	return SpanData{}
}

func TestLogSampling(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{}))
	tr := NewTracer(TracerOptions{Origin: "test", Clock: sim.NewVirtual(), Logger: logger, SampleEvery: 2})
	for i := 0; i < 4; i++ {
		_, s := tr.StartSpan(context.Background(), "r")
		s.End()
	}
	if got := strings.Count(buf.String(), "trace finished"); got != 2 {
		t.Fatalf("sampled %d log lines, want 2:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "origin=test") {
		t.Fatalf("log line missing origin attr:\n%s", buf.String())
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(TracerOptions{Origin: "test"})
	ctx, root := tr.StartSpan(context.Background(), "fanout")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, s := Start(ctx, "leg", Int("i", i))
			_, inner := Start(cctx, "inner")
			inner.SetAttr("ok", "true")
			inner.End()
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	td := tr.Traces()[0]
	if len(td.Spans) != 65 {
		t.Fatalf("got %d spans, want 65", len(td.Spans))
	}
}

func TestTracesHandler(t *testing.T) {
	clk := sim.NewVirtual()
	tr := NewTracer(TracerOptions{Origin: "test", Clock: clk})
	var ids []TraceID
	for i := 0; i < 3; i++ {
		_, s := tr.StartSpan(context.Background(), fmt.Sprintf("r%d", i))
		ids = append(ids, s.TraceID())
		s.End()
	}
	h := tr.TracesHandler()

	get := func(url string) (*httptest.ResponseRecorder, tracesResponse) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var resp tracesResponse
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("GET %s: bad JSON: %v", url, err)
			}
		}
		return rec, resp
	}

	_, resp := get("/v1/debug/traces")
	if len(resp.Traces) != 3 || resp.Origin != "test" {
		t.Fatalf("full listing: %d traces origin %q", len(resp.Traces), resp.Origin)
	}
	_, resp = get("/v1/debug/traces?last=2")
	if len(resp.Traces) != 2 || resp.Traces[1].Trace != ids[2] {
		t.Fatalf("last=2 returned wrong window")
	}
	_, resp = get("/v1/debug/traces?id=" + ids[1].String())
	if len(resp.Traces) != 1 || resp.Traces[0].Trace != ids[1] {
		t.Fatalf("id filter returned wrong trace")
	}
	if rec, _ := get("/v1/debug/traces?id=zzzz"); rec.Code != 400 {
		t.Fatalf("bad id: code %d, want 400", rec.Code)
	}
	if rec, _ := get("/v1/debug/traces?id=00000000000000ff"); rec.Code != 404 {
		t.Fatalf("unknown id: code %d, want 404", rec.Code)
	}
	if rec, _ := get("/v1/debug/traces?last=-1"); rec.Code != 400 {
		t.Fatalf("bad last: code %d, want 400", rec.Code)
	}
}
