// Package stats provides the small statistical helpers the experiment
// harness uses: moments, extrema, and crossover detection on sampled
// curves (the paper's figures are compared by where curves cross, not by
// absolute values).
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation; 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the extrema; it panics on an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// GeoMean returns the geometric mean of positive samples; it returns an
// error if any sample is non-positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: GeoMean of empty slice")
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean needs positive samples, got %v", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Crossover finds the first x at which curve a rises above curve b, by
// linear interpolation between samples: both curves are sampled at xs. It
// returns NaN when a stays below b (or the inputs are malformed).
func Crossover(xs, a, b []float64) float64 {
	if len(xs) != len(a) || len(xs) != len(b) || len(xs) == 0 {
		return math.NaN()
	}
	for i := range xs {
		d := a[i] - b[i]
		if d > 0 {
			if i == 0 {
				return xs[0]
			}
			dPrev := a[i-1] - b[i-1]
			t := -dPrev / (d - dPrev)
			return xs[i-1] + t*(xs[i]-xs[i-1])
		}
	}
	return math.NaN()
}

// Spread returns max/min of positive samples, the "how flat is this
// curve" measure used for the prime-mapped shape checks.
func Spread(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: Spread of empty slice")
	}
	min, max := MinMax(xs)
	if min <= 0 {
		return 0, fmt.Errorf("stats: Spread needs positive samples, got min %v", min)
	}
	return max / min, nil
}

// Histogram is a map-backed frequency count with ordered rendering.
type Histogram struct {
	counts map[int64]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int64]int)}
}

// Observe adds one occurrence of v.
func (h *Histogram) Observe(v int64) {
	h.counts[v]++
	h.total++
}

// ObserveN adds n occurrences of v.
func (h *Histogram) ObserveN(v int64, n int) {
	if n <= 0 {
		return
	}
	h.counts[v] += n
	h.total += n
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Count returns the occurrences of v.
func (h *Histogram) Count(v int64) int { return h.counts[v] }

// TopK returns the k most frequent values (ties broken by smaller value)
// with their counts.
func (h *Histogram) TopK(k int) []struct {
	Value int64
	Count int
} {
	type pair struct {
		Value int64
		Count int
	}
	ps := make([]pair, 0, len(h.counts))
	for v, c := range h.counts {
		ps = append(ps, pair{v, c})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Count != ps[j].Count {
			return ps[i].Count > ps[j].Count
		}
		return ps[i].Value < ps[j].Value
	})
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]struct {
		Value int64
		Count int
	}, k)
	for i := 0; i < k; i++ {
		out[i] = struct {
			Value int64
			Count int
		}{ps[i].Value, ps[i].Count}
	}
	return out
}

// Render writes an ASCII bar chart of the top-k values.
func (h *Histogram) Render(w io.Writer, k, barWidth int) error {
	top := h.TopK(k)
	if len(top) == 0 {
		_, err := fmt.Fprintln(w, "(empty histogram)")
		return err
	}
	max := top[0].Count
	for _, e := range top {
		bar := e.Count * barWidth / max
		if bar == 0 && e.Count > 0 {
			bar = 1
		}
		pct := 100 * float64(e.Count) / float64(h.total)
		if _, err := fmt.Fprintf(w, "%10d | %-*s %d (%.1f%%)\n",
			e.Value, barWidth, strings.Repeat("#", bar), e.Count, pct); err != nil {
			return err
		}
	}
	return nil
}
