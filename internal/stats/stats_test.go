package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single sample stddev != 0")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || g != 2 {
		t.Errorf("GeoMean = %v, %v", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("non-positive sample accepted")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestCrossover(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	a := []float64{0, 1, 3, 5}
	b := []float64{2, 2, 2, 2}
	// a−b: −2, −1, 1 → crossover between x=1 and x=2 at t=0.5.
	if got := Crossover(xs, a, b); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Crossover = %v, want 1.5", got)
	}
	if got := Crossover(xs, b, a); got != 0 {
		t.Errorf("immediate crossover = %v, want 0", got)
	}
	if !math.IsNaN(Crossover(xs, []float64{0, 0, 0, 0}, b)) {
		t.Error("no-crossover should be NaN")
	}
	if !math.IsNaN(Crossover(xs[:2], a, b)) {
		t.Error("length mismatch should be NaN")
	}
}

func TestSpread(t *testing.T) {
	s, err := Spread([]float64{2, 4, 8})
	if err != nil || s != 4 {
		t.Errorf("Spread = %v, %v", s, err)
	}
	if _, err := Spread([]float64{0, 1}); err == nil {
		t.Error("non-positive accepted")
	}
	if _, err := Spread(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		// Clamp to a range where the running sum cannot overflow.
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			xs[i] = math.Mod(x, 1e9)
		}
		min, max := MinMax(xs)
		m := Mean(xs)
		return m >= min-1e-6 && m <= max+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	h.ObserveN(7, 3)
	h.ObserveN(9, 0) // no-op
	h.Observe(1)
	if h.Total() != 14 || h.Count(5) != 10 || h.Count(7) != 3 || h.Count(9) != 0 {
		t.Errorf("totals: %d %d %d %d", h.Total(), h.Count(5), h.Count(7), h.Count(9))
	}
	top := h.TopK(2)
	if len(top) != 2 || top[0].Value != 5 || top[1].Value != 7 {
		t.Errorf("TopK = %+v", top)
	}
	if got := h.TopK(99); len(got) != 3 {
		t.Errorf("TopK over-length = %d", len(got))
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram()
	h.ObserveN(512, 100)
	h.ObserveN(1, 25)
	var sb strings.Builder
	if err := h.Render(&sb, 5, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "512") || !strings.Contains(out, "####") || !strings.Contains(out, "(80.0%)") {
		t.Errorf("render:\n%s", out)
	}
	empty := NewHistogram()
	sb.Reset()
	if err := empty.Render(&sb, 5, 20); err != nil || !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty render: %q, %v", sb.String(), err)
	}
}
