package persist

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedStore writes a known key set and crashes (Kill), returning the
// dir. Keys key-0..key-9 hold value-0..value-9.
func seedStore(t *testing.T, graceful bool) string {
	t.Helper()
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 10; i++ {
		mustPut(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
	if graceful {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	} else {
		st.Kill()
	}
	return dir
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segmentPrefix) && strings.HasSuffix(e.Name(), segmentSuffix) {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	if len(segs) == 0 {
		t.Fatal("no segment files found")
	}
	return segs
}

// TestCrashRecoveryTable is the corruption matrix from the issue: every
// fault must either truncate cleanly (torn tail) or cold-start the
// affected extent with the corruption counter incremented — and the
// store must never serve a wrong or partial value afterwards.
func TestCrashRecoveryTable(t *testing.T) {
	cases := []struct {
		name     string
		graceful bool
		mutate   func(t *testing.T, dir string)
		// check runs against the reopened store.
		check func(t *testing.T, st *Store)
	}{
		{
			name: "torn-final-record-garbage-header",
			mutate: func(t *testing.T, dir string) {
				// Crash mid-append: only 5 of the 8 header bytes landed.
				seg := segFiles(t, dir)[0]
				f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			check: func(t *testing.T, st *Store) {
				for i := 0; i < 10; i++ {
					wantGet(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
				}
				if st.Stats().TornTruncations != 1 {
					t.Fatalf("torn = %d, want 1", st.Stats().TornTruncations)
				}
				if st.Stats().CorruptRecords != 0 {
					t.Fatalf("a torn tail is not corruption, corrupt = %d", st.Stats().CorruptRecords)
				}
			},
		},
		{
			name: "torn-final-record-partial-payload",
			mutate: func(t *testing.T, dir string) {
				// A plausible header promising 100 payload bytes, then
				// only a few of them.
				seg := segFiles(t, dir)[0]
				f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				rec := encodeRecord(kindPut, "torn-key", make([]byte, 100))
				if _, err := f.Write(rec[:len(rec)-60]); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			check: func(t *testing.T, st *Store) {
				for i := 0; i < 10; i++ {
					wantGet(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
				}
				wantMiss(t, st, "torn-key")
				if st.Stats().TornTruncations != 1 {
					t.Fatalf("torn = %d, want 1", st.Stats().TornTruncations)
				}
			},
		},
		{
			name: "flipped-crc-byte-mid-log",
			mutate: func(t *testing.T, dir string) {
				// Flip one payload byte of the FIRST record: a full,
				// in-bounds record whose checksum now lies. Mid-log rot,
				// not a torn tail — the whole segment is quarantined.
				seg := segFiles(t, dir)[0]
				data, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				data[recordHeaderLen+1] ^= 0xFF
				if err := os.WriteFile(seg, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, st *Store) {
				// Cold start for that segment: every key gone, but
				// counted — and nothing wrong was ever served.
				for i := 0; i < 10; i++ {
					wantMiss(t, st, fmt.Sprintf("key-%d", i))
				}
				if st.Stats().CorruptRecords == 0 {
					t.Fatal("mid-log corruption must increment the corrupt counter")
				}
			},
		},
		{
			name:     "truncated-index-snapshot",
			graceful: true,
			mutate: func(t *testing.T, dir string) {
				snap := filepath.Join(dir, snapshotName)
				fi, err := os.Stat(snap)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(snap, fi.Size()/2); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, st *Store) {
				if st.Stats().SnapshotRestore {
					t.Fatal("truncated snapshot must not be trusted")
				}
				for i := 0; i < 10; i++ {
					wantGet(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
				}
			},
		},
		{
			name:     "bit-flipped-index-snapshot",
			graceful: true,
			mutate: func(t *testing.T, dir string) {
				snap := filepath.Join(dir, snapshotName)
				data, err := os.ReadFile(snap)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0x01
				if err := os.WriteFile(snap, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, st *Store) {
				if st.Stats().SnapshotRestore {
					t.Fatal("checksum-failing snapshot must not be trusted")
				}
				for i := 0; i < 10; i++ {
					wantGet(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
				}
			},
		},
		{
			name: "leftover-compaction-tmp",
			mutate: func(t *testing.T, dir string) {
				// Crash after compaction wrote its temp file but before
				// the rename: recovery must discard the temp and trust
				// the retained old segments.
				tmp := filepath.Join(dir, "seg-0000000000000099.log.tmp")
				if err := os.WriteFile(tmp, []byte("half-finished compaction output"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, st *Store) {
				for i := 0; i < 10; i++ {
					wantGet(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
				}
			},
		},
		{
			name: "zero-length-segment",
			mutate: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "seg-0000000000000050.log"), nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, st *Store) {
				for i := 0; i < 10; i++ {
					wantGet(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := seedStore(t, tc.graceful)
			tc.mutate(t, dir)
			st := mustOpen(t, Options{Dir: dir})
			defer st.Kill()
			tc.check(t, st)

			// Whatever happened, the store must keep working.
			mustPut(t, st, "after-recovery", "still-writable")
			wantGet(t, st, "after-recovery", "still-writable")
		})
	}
}

// TestQuarantinedSegmentSurvivesForForensics checks the corrupt file is
// renamed aside, not deleted.
func TestQuarantinedSegmentSurvivesForForensics(t *testing.T) {
	dir := seedStore(t, false)
	seg := segFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeaderLen+1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st := mustOpen(t, Options{Dir: dir})
	defer st.Kill()
	if _, err := os.Stat(seg + corruptSuffix); err != nil {
		t.Fatalf("quarantined segment should be kept as %s: %v", seg+corruptSuffix, err)
	}
}

// TestFaultInjectedAppend proves a failed write never leaves a
// half-record behind: the store truncates the partial append and later
// writes land cleanly.
func TestFaultInjectedAppend(t *testing.T) {
	ffs := NewFaultFS(nil)
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir, FS: ffs})

	mustPut(t, st, "before", "fault")
	ffs.Fail(OpWrite, 0, nil)
	if err := st.Put(context.Background(), "doomed", []byte("never lands")); err == nil {
		t.Fatal("Put should surface the injected write error")
	}
	ffs.Clear()
	wantMiss(t, st, "doomed")
	mustPut(t, st, "after", "fault cleared")
	wantGet(t, st, "before", "fault")
	wantGet(t, st, "after", "fault cleared")
	if st.Stats().IOErrors == 0 {
		t.Fatal("injected write error should be counted")
	}
	st.Kill()

	// Recovery sees only the intact records.
	st2 := mustOpen(t, Options{Dir: dir})
	defer st2.Kill()
	wantGet(t, st2, "before", "fault")
	wantGet(t, st2, "after", "fault cleared")
	wantMiss(t, st2, "doomed")
	if st2.Stats().CorruptRecords != 0 {
		t.Fatalf("truncated partial append must not read as corruption, corrupt=%d", st2.Stats().CorruptRecords)
	}
}

// TestKillMidCompaction fails the compaction's sync and rename windows:
// each abort must retain the old segments and lose nothing.
func TestKillMidCompaction(t *testing.T) {
	for _, op := range []Op{OpSync, OpRename} {
		t.Run(string(op), func(t *testing.T) {
			ffs := NewFaultFS(nil)
			dir := t.TempDir()
			st := mustOpen(t, Options{Dir: dir, FS: ffs})
			for i := 0; i < 10; i++ {
				mustPut(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
			}
			mustPut(t, st, "key-0", "rewritten")

			ffs.Fail(op, 0, nil)
			if err := st.Compact(context.Background()); err == nil {
				t.Fatal("Compact should surface the injected error")
			}
			ffs.Clear()

			// The live store still answers from the retained segments.
			wantGet(t, st, "key-0", "rewritten")
			for i := 1; i < 10; i++ {
				wantGet(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
			}
			st.Kill()

			st2 := mustOpen(t, Options{Dir: dir})
			defer st2.Kill()
			wantGet(t, st2, "key-0", "rewritten")
			for i := 1; i < 10; i++ {
				wantGet(t, st2, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
			}
			// A later compaction attempt succeeds.
			if err := st2.Compact(context.Background()); err != nil {
				t.Fatalf("post-recovery Compact: %v", err)
			}
			wantGet(t, st2, "key-0", "rewritten")
		})
	}
}

// TestBrokenStoreGoesReadOnly: when even truncating the failed append
// fails, the store must refuse further writes instead of gambling.
func TestBrokenStoreGoesReadOnly(t *testing.T) {
	ffs := NewFaultFS(nil)
	st := mustOpen(t, Options{Dir: t.TempDir(), FS: ffs})
	defer st.Kill()
	mustPut(t, st, "good", "value")

	// Fail the write AND make the file unfixable by closing it behind
	// the store's back — Truncate on a closed fd fails.
	st.mu.Lock()
	st.segs[len(st.segs)-1].f.Close()
	st.mu.Unlock()
	if err := st.Put(context.Background(), "doomed", []byte("x")); err == nil {
		t.Fatal("Put on a sabotaged file should fail")
	}
	if err := st.Put(context.Background(), "also-doomed", []byte("x")); err == nil {
		t.Fatal("broken store must reject writes")
	}
	// Reads of already-indexed keys still work (different segment? no —
	// same file). The contract is only: no wrong data, no new writes.
}
