package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FS is the slice of the filesystem the store uses, abstracted so tests
// can inject IO faults deterministically (see FaultFS). The production
// implementation is OS.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
}

// File is one open log or snapshot file. The store reads with ReadAt
// and writes with WriteAt at offsets it tracks itself, so a failed
// append can be truncated away without trusting any kernel-side append
// position.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// OS is the production filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                    { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)  { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Op names one filesystem operation class a FaultFS can fail.
type Op string

// The operation classes a fault can be armed against — each names the
// FS or File method family it intercepts.
const (
	OpOpen   Op = "open"
	OpWrite  Op = "write"
	OpRead   Op = "read"
	OpSync   Op = "sync"
	OpRename Op = "rename"
	OpRemove Op = "remove"
)

// ErrInjected is the error FaultFS returns when no explicit error was
// armed for the failing operation.
var ErrInjected = errors.New("persist: injected io error")

// FaultFS wraps an FS and fails chosen operations on demand: arm a
// fault with Fail and every matching operation after the countdown
// returns the injected error until Clear. The store's crash-recovery
// tests use it to prove that an append, fsync, or rename failing at any
// point never corrupts what was already durable.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	counts map[Op]int
	faults map[Op]*fault
}

type fault struct {
	after int // operations to let through before failing
	err   error
}

// NewFaultFS wraps inner (OS when nil).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner, counts: map[Op]int{}, faults: map[Op]*fault{}}
}

// Fail arms op to fail after `after` more successful operations of that
// kind (0 fails the very next one), returning err (ErrInjected when
// nil). The fault stays armed — every later matching operation fails
// too — until Clear.
func (f *FaultFS) Fail(op Op, after int, err error) {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults[op] = &fault{after: after, err: err}
}

// Clear disarms every fault.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = map[Op]*fault{}
}

// Count reports how many operations of kind op have been attempted.
func (f *FaultFS) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// check counts one operation and returns the injected error when the
// armed fault's countdown has run out.
func (f *FaultFS) check(op Op) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	fl := f.faults[op]
	if fl == nil {
		return nil
	}
	if fl.after > 0 {
		fl.after--
		return nil
	}
	return fl.err
}

// OpenFile implements FS: it counts the operation, injects an armed
// open fault, and wraps the returned file so its reads, writes, and
// syncs route through the same fault table.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.check(OpOpen); err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(name), err)
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// Rename implements FS, injecting armed rename faults.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.check(OpRename); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS, injecting armed remove faults.
func (f *FaultFS) Remove(name string) error {
	if err := f.check(OpRemove); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// ReadDir implements FS; directory listing is never faulted.
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }

// MkdirAll implements FS; directory creation is never faulted.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// faultFile routes the per-file operations through the parent's fault
// table.
type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.fs.check(OpWrite); err != nil {
		// Model a torn write: half the buffer lands before the fault.
		n, _ := f.File.WriteAt(p[:len(p)/2], off)
		return n, err
	}
	return f.File.WriteAt(p, off)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.check(OpRead); err != nil {
		return 0, err
	}
	return f.File.ReadAt(p, off)
}

func (f *faultFile) Sync() error {
	if err := f.fs.check(OpSync); err != nil {
		return err
	}
	return f.File.Sync()
}
