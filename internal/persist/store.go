// Package persist is the disk-backed second-level memo tier behind the
// in-memory LRU: an append-only, CRC-checksummed, length-prefixed
// record log with an in-memory key index, segment rotation, and
// compaction, plus an atomic index snapshot so vcached restarts warm
// without rescanning the whole log.
//
// Durability contract: a Put is recoverable once it returns (the bytes
// are in the segment, verified by checksum on every later read) and
// durable across power loss once Sync or Close has run. Corruption
// never propagates — a torn final record is truncated away, a bad
// checksum mid-log quarantines the segment and counts it, and every
// Get re-verifies the checksum before returning bytes.
package persist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"primecache/internal/obs"
)

// Options configures Open.
type Options struct {
	// Dir holds the segment files and index snapshot; created when
	// missing.
	Dir string
	// MaxBytes caps total segment bytes on disk; when rotation pushes
	// past the cap the store compacts, then drops oldest segments (and
	// their keys) until under budget. 0 = 256 MiB, negative = unbounded.
	MaxBytes int64
	// SegmentBytes is the rotation threshold for the active segment.
	// 0 = 8 MiB.
	SegmentBytes int64
	// FS overrides the filesystem (tests inject FaultFS). Nil = OS.
	FS FS
}

const (
	defaultMaxBytes     = 256 << 20
	defaultSegmentBytes = 8 << 20
	snapshotName        = "index.snap"
	segmentPrefix       = "seg-"
	segmentSuffix       = ".log"
	corruptSuffix       = ".corrupt"

	// compactMinDeadRatio is the dead-bytes fraction at which rotation
	// triggers a compaction pass.
	compactMinDeadRatio = 0.5
)

// ErrClosed is returned by mutations on a closed store.
var ErrClosed = errors.New("persist: store closed")

// errBroken marks a store that hit an unrecoverable write error and
// went read-only for safety.
var errBroken = errors.New("persist: store broken by io error")

type segment struct {
	id   int64
	path string
	f    File
	size int64
}

// ref locates one live record.
type ref struct {
	seg *segment
	off int64
	n   int64
}

// Store is the disk tier. All methods are safe for concurrent use.
type Store struct {
	dir      string
	fs       FS
	maxBytes int64
	segBytes int64

	mu     sync.RWMutex
	segs   []*segment // ascending id; last is active
	index  map[string]ref
	dead   int64 // bytes owned by superseded or tombstoned records
	broken bool
	closed bool

	hits         atomic.Uint64
	misses       atomic.Uint64
	bytesAppended atomic.Uint64
	segsCreated  atomic.Uint64
	compactions  atomic.Uint64
	corrupt      atomic.Uint64
	torn         atomic.Uint64
	ioErrors     atomic.Uint64
	evictedKeys  atomic.Uint64
	restoredSnap atomic.Bool
}

// Stats is a point-in-time snapshot of the store's counters and shape,
// surfaced through /v1/stats and the vcached_persist_* Prometheus
// families.
type Stats struct {
	Keys           int    `json:"keys"`
	Segments       int    `json:"segments"`
	DiskBytes      int64  `json:"diskBytes"`
	DeadBytes      int64  `json:"deadBytes"`
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	BytesAppended  uint64 `json:"bytesAppended"`
	SegmentsCreated uint64 `json:"segmentsCreated"`
	Compactions    uint64 `json:"compactions"`
	CorruptRecords uint64 `json:"corruptRecords"`
	TornTruncations uint64 `json:"tornTruncations"`
	IOErrors       uint64 `json:"ioErrors"`
	EvictedKeys    uint64 `json:"evictedKeys"`
	SnapshotRestore bool  `json:"snapshotRestore"`
}

// Open recovers the store in dir: leftover temp files are discarded,
// the index snapshot is restored when it exactly matches the segments
// on disk, and otherwise every segment is scanned — truncating torn
// tails and quarantining corrupt segments along the way.
func Open(opts Options) (*Store, error) {
	s := &Store{
		dir:      opts.Dir,
		fs:       opts.FS,
		maxBytes: opts.MaxBytes,
		segBytes: opts.SegmentBytes,
		index:    make(map[string]ref),
	}
	if s.fs == nil {
		s.fs = OS
	}
	if s.maxBytes == 0 {
		s.maxBytes = defaultMaxBytes
	}
	if s.segBytes <= 0 {
		s.segBytes = defaultSegmentBytes
	}
	if s.dir == "" {
		return nil, errors.New("persist: Options.Dir is required")
	}
	if err := s.fs.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: mkdir: %w", err)
	}
	ids, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		seg, err := s.openSegment(id)
		if err != nil {
			s.closeAll()
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	if !s.restoreSnapshot() {
		s.scanAll()
	}
	// Always append into a fresh segment after recovery: pre-crash
	// segments stay immutable, so a recovered offset can never collide
	// with new writes.
	if err := s.rotateLocked(); err != nil {
		s.closeAll()
		return nil, err
	}
	return s, nil
}

// listSegments returns segment ids in ascending order, removing any
// leftover temporary files from an interrupted compaction or snapshot.
func (s *Store) listSegments() ([]int64, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: readdir: %w", err)
	}
	var ids []int64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			_ = s.fs.Remove(filepath.Join(s.dir, name))
			continue
		}
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		var id int64
		if _, err := fmt.Sscanf(name, segmentPrefix+"%016d"+segmentSuffix, &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func (s *Store) segmentPath(id int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016d%s", segmentPrefix, id, segmentSuffix))
}

func (s *Store) openSegment(id int64) (*segment, error) {
	path := s.segmentPath(id)
	f, err := s.fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: stat segment: %w", err)
	}
	return &segment{id: id, path: path, f: f, size: fi.Size()}, nil
}

// scanAll rebuilds the index from the segment logs in id order, so a
// later record for the same key always wins. Each segment is scanned in
// full before its records are applied: a corrupt segment is quarantined
// whole (renamed *.corrupt) rather than half-trusted.
func (s *Store) scanAll() {
	kept := s.segs[:0]
	for _, seg := range s.segs {
		entries, verdict := s.scanSegment(seg)
		if verdict == segCorrupt {
			seg.f.Close()
			_ = s.fs.Rename(seg.path, seg.path+corruptSuffix)
			continue
		}
		for _, e := range entries {
			s.applyEntry(e.kind, e.key, ref{seg: seg, off: e.off, n: e.n})
		}
		kept = append(kept, seg)
	}
	s.segs = kept
}

type scanEntry struct {
	kind byte
	key  string
	off  int64
	n    int64
}

type segVerdict int

const (
	segClean segVerdict = iota
	segCorrupt
)

// scanSegment walks seg record by record. A torn tail is truncated in
// place (counted in tornTruncations); corruption anywhere else condemns
// the segment. Read errors during scan are treated as corruption — we
// cannot vouch for the bytes.
func (s *Store) scanSegment(seg *segment) ([]scanEntry, segVerdict) {
	var entries []scanEntry
	off := int64(0)
	for off < seg.size {
		kind, key, _, n, err := readRecordAt(seg.f, off, seg.size, maxRecordLen)
		switch {
		case err == nil:
			entries = append(entries, scanEntry{kind: kind, key: key, off: off, n: n})
			off += n
		case errors.Is(err, errTorn):
			s.torn.Add(1)
			if terr := seg.f.Truncate(off); terr == nil {
				seg.size = off
			} else {
				// Can't cut the tail off: quarantine rather than leave
				// a known-bad extent appendable.
				s.ioErrors.Add(1)
				return nil, segCorrupt
			}
			return entries, segClean
		default:
			s.corrupt.Add(1)
			return nil, segCorrupt
		}
	}
	return entries, segClean
}

// applyEntry folds one log record into the index with dead-byte
// accounting.
func (s *Store) applyEntry(kind byte, key string, r ref) {
	if old, ok := s.index[key]; ok {
		s.dead += old.n
	}
	if kind == kindTombstone {
		delete(s.index, key)
		s.dead += r.n
		return
	}
	s.index[key] = r
}

// Get returns the stored value for key. The record's checksum and key
// are re-verified on every read; a record that fails verification is
// dropped from the index and counted corrupt, and the caller sees a
// plain miss — never bad bytes.
func (s *Store) Get(key string) ([]byte, bool) { return s.read(key, true) }

// read is Get's body; count false skips the hit/miss counters so
// replication reads (Export) do not distort cache statistics. Corrupt
// records are counted and quarantined either way.
func (s *Store) read(key string, count bool) ([]byte, bool) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, false
	}
	r, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		if count {
			s.misses.Add(1)
		}
		return nil, false
	}
	kind, gotKey, value, _, err := readRecordAt(r.seg.f, r.off, r.off+r.n, maxRecordLen)
	if err != nil || kind != kindPut || gotKey != key {
		s.corrupt.Add(1)
		if count {
			s.misses.Add(1)
		}
		s.mu.Lock()
		if cur, ok := s.index[key]; ok && cur == r {
			delete(s.index, key)
			s.dead += r.n
		}
		s.mu.Unlock()
		return nil, false
	}
	if count {
		s.hits.Add(1)
	}
	return value, true
}

// Has reports whether key is indexed without touching disk.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Keys returns the live key count.
func (s *Store) Keys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Put appends key=value. On a write error the partial append is
// truncated away; if even that fails the store goes read-only (broken)
// rather than risk serving a half-written record.
func (s *Store) Put(ctx context.Context, key string, value []byte) error {
	rec := encodeRecord(kindPut, key, value)
	return s.append(ctx, key, rec, false)
}

// Delete appends a tombstone for key; compaction drops both the
// tombstone and the records it shadows.
func (s *Store) Delete(ctx context.Context, key string) error {
	s.mu.RLock()
	_, present := s.index[key]
	s.mu.RUnlock()
	if !present {
		return nil
	}
	rec := encodeRecord(kindTombstone, key, nil)
	return s.append(ctx, key, rec, true)
}

func (s *Store) append(ctx context.Context, key string, rec []byte, tombstone bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.broken {
		return errBroken
	}
	if int64(len(rec)) > maxRecordLen {
		return fmt.Errorf("persist: record for %q exceeds %d bytes", key, maxRecordLen)
	}
	active := s.activeLocked()
	if active.size > 0 && active.size+int64(len(rec)) > s.segBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		s.maybeCompactLocked(ctx)
		active = s.activeLocked()
	}
	off := active.size
	if _, err := active.f.WriteAt(rec, off); err != nil {
		s.ioErrors.Add(1)
		// Cut off whatever partially landed so the tail stays parseable.
		if terr := active.f.Truncate(off); terr != nil {
			s.broken = true
		}
		return fmt.Errorf("persist: append: %w", err)
	}
	active.size = off + int64(len(rec))
	s.bytesAppended.Add(uint64(len(rec)))
	r := ref{seg: active, off: off, n: int64(len(rec))}
	kind := kindPut
	if tombstone {
		kind = kindTombstone
	}
	s.applyEntry(kind, key, r)
	return nil
}

func (s *Store) activeLocked() *segment { return s.segs[len(s.segs)-1] }

// rotateLocked opens a new active segment with an id above every
// existing one.
func (s *Store) rotateLocked() error {
	var next int64 = 1
	if len(s.segs) > 0 {
		last := s.activeLocked()
		if last.size == 0 {
			return nil // current active is still empty; reuse it
		}
		next = last.id + 1
	}
	seg, err := s.openSegment(next)
	if err != nil {
		s.ioErrors.Add(1)
		return err
	}
	s.segs = append(s.segs, seg)
	s.segsCreated.Add(1)
	return nil
}

func (s *Store) totalBytesLocked() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.size
	}
	return n
}

// maybeCompactLocked runs after a rotation: compact when enough of the
// log is dead, then evict oldest segments while over the disk budget.
// Failures here degrade capacity, never correctness, so errors only
// bump counters.
func (s *Store) maybeCompactLocked(ctx context.Context) {
	total := s.totalBytesLocked()
	if s.dead > 0 && (float64(s.dead) >= compactMinDeadRatio*float64(total) ||
		(s.maxBytes > 0 && total > s.maxBytes)) {
		if err := s.compactLocked(ctx); err != nil {
			s.ioErrors.Add(1)
		}
		total = s.totalBytesLocked()
	}
	if s.maxBytes > 0 {
		for total > s.maxBytes && len(s.segs) > 1 {
			oldest := s.segs[0]
			for key, r := range s.index {
				if r.seg == oldest {
					delete(s.index, key)
					s.evictedKeys.Add(1)
				}
			}
			oldest.f.Close()
			_ = s.fs.Remove(oldest.path)
			total -= oldest.size
			s.segs = s.segs[1:]
		}
	}
}

// Compact rewrites all live records into one fresh segment and deletes
// the old ones. Safe against a crash at any point: the rewrite targets
// a *.tmp file that recovery discards, the rename makes it the
// highest-id segment (so its records win any overlap with the old
// ones), and the old segments are only removed after the rename lands.
func (s *Store) Compact(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.broken {
		return errBroken
	}
	return s.compactLocked(ctx)
}

func (s *Store) compactLocked(ctx context.Context) error {
	_, span := obs.Start(ctx, "persist-compact")
	defer span.End()

	old := s.segs
	newID := s.activeLocked().id + 1
	path := s.segmentPath(newID)
	tmp := path + ".tmp"
	f, err := s.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: compact open: %w", err)
	}
	abort := func(err error) error {
		f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}

	// Rewrite live records in stable (segment, offset) order for
	// reproducible output and sequential reads.
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := s.index[keys[i]], s.index[keys[j]]
		if a.seg.id != b.seg.id {
			return a.seg.id < b.seg.id
		}
		return a.off < b.off
	})
	newRefs := make(map[string]ref, len(keys))
	var off int64
	seg := &segment{id: newID, path: path}
	for _, key := range keys {
		r := s.index[key]
		kind, gotKey, value, _, err := readRecordAt(r.seg.f, r.off, r.off+r.n, maxRecordLen)
		if err != nil || kind != kindPut || gotKey != key {
			// Rot discovered during compaction: drop the record, count
			// it, and keep going — same contract as Get.
			s.corrupt.Add(1)
			delete(s.index, key)
			continue
		}
		rec := encodeRecord(kindPut, key, value)
		if _, err := f.WriteAt(rec, off); err != nil {
			return abort(fmt.Errorf("persist: compact write: %w", err))
		}
		newRefs[key] = ref{seg: seg, off: off, n: int64(len(rec))}
		off += int64(len(rec))
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("persist: compact sync: %w", err))
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		return abort(fmt.Errorf("persist: compact rename: %w", err))
	}
	seg.f, seg.size = f, off

	// The compacted segment is durable; the old ones are now garbage.
	for _, o := range old {
		o.f.Close()
		_ = s.fs.Remove(o.path)
	}
	s.segs = []*segment{seg}
	for key := range s.index {
		s.index[key] = newRefs[key]
	}
	s.dead = 0
	s.compactions.Add(1)
	span.SetAttr("live_keys", fmt.Sprint(len(s.index)))
	// Reopen a fresh active segment so the compacted one stays immutable.
	return s.rotateLocked()
}

// Sync fsyncs the active segment — the durability point for everything
// appended so far.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.activeLocked().f.Sync(); err != nil {
		s.ioErrors.Add(1)
		return err
	}
	return nil
}

// Close is the graceful path: fsync every segment, write the index
// snapshot atomically, and close the files. The next Open restores from
// the snapshot without scanning.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var firstErr error
	for _, seg := range s.segs {
		if err := seg.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil && !s.broken {
		if err := s.writeSnapshotLocked(); err != nil {
			firstErr = err
		}
	}
	s.closeAllLocked()
	return firstErr
}

// Kill closes the file handles without syncing or snapshotting — the
// crash path used by tests and by Server.Close. Recovery after Kill
// exercises the full scan-and-truncate path.
func (s *Store) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeAllLocked()
}

func (s *Store) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeAllLocked()
}

func (s *Store) closeAllLocked() {
	if s.closed {
		return
	}
	for _, seg := range s.segs {
		seg.f.Close()
	}
	s.closed = true
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	keys := len(s.index)
	segs := len(s.segs)
	disk := s.totalBytesLocked()
	dead := s.dead
	s.mu.RUnlock()
	return Stats{
		Keys:            keys,
		Segments:        segs,
		DiskBytes:       disk,
		DeadBytes:       dead,
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		BytesAppended:   s.bytesAppended.Load(),
		SegmentsCreated: s.segsCreated.Load(),
		Compactions:     s.compactions.Load(),
		CorruptRecords:  s.corrupt.Load(),
		TornTruncations: s.torn.Load(),
		IOErrors:        s.ioErrors.Load(),
		EvictedKeys:     s.evictedKeys.Load(),
		SnapshotRestore: s.restoredSnap.Load(),
	}
}
