package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Wire streaming for warm-state migration: the export endpoint sends
// persisted records to a joining node using exactly the store's on-disk
// record framing — [u32 payloadLen][u32 crc32(payload)][payload] with a
// kindPut payload — so every byte on the wire is CRC-checked with the
// same code path that guards the log, and a truncated transfer is
// detected the same way a torn log tail is.

// WriteFrame writes one key/value record in the store's framing.
func WriteFrame(w io.Writer, key string, value []byte) error {
	_, err := w.Write(encodeRecord(kindPut, key, value))
	return err
}

// FrameReader decodes a stream of WriteFrame records.
type FrameReader struct {
	r   *bufio.Reader
	err error
}

// NewFrameReader wraps r for frame-at-a-time decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Next returns the next record. io.EOF signals a clean end of stream
// (the stream ended exactly on a frame boundary); any other error means
// the stream was truncated mid-frame or a frame failed its checksum,
// and the reader stays failed.
func (f *FrameReader) Next() (key string, value []byte, err error) {
	if f.err != nil {
		return "", nil, f.err
	}
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
		if err == io.EOF {
			f.err = io.EOF
		} else {
			f.err = fmt.Errorf("persist: truncated frame header: %w", err)
		}
		return "", nil, f.err
	}
	payloadLen := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	if payloadLen < minPayloadLen || payloadLen > maxRecordLen {
		f.err = fmt.Errorf("persist: frame length %d outside [%d, %d]", payloadLen, minPayloadLen, int64(maxRecordLen))
		return "", nil, f.err
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(f.r, payload); err != nil {
		f.err = fmt.Errorf("persist: truncated frame payload: %w", err)
		return "", nil, f.err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		f.err = fmt.Errorf("persist: frame checksum mismatch")
		return "", nil, f.err
	}
	kind, key, value, derr := decodePayload(payload)
	if derr != nil {
		f.err = fmt.Errorf("persist: undecodable frame: %w", derr)
		return "", nil, f.err
	}
	if kind != kindPut {
		f.err = fmt.Errorf("persist: unexpected frame kind %d", kind)
		return "", nil, f.err
	}
	return key, value, nil
}

// Export invokes fn for every live record whose key satisfies pred, in
// sorted key order so an export stream is deterministic for a given
// store state. Values are re-read (and CRC-verified) from disk without
// touching the hit/miss counters — an export is replication traffic,
// not cache traffic. Records that fail verification mid-export are
// skipped (the store's read path quarantines them); fn's first error
// aborts the walk and is returned.
func (s *Store) Export(pred func(key string) bool, fn func(key string, value []byte) error) error {
	s.mu.RLock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		if pred == nil || pred(k) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v, ok := s.read(k, false)
		if !ok {
			continue // deleted or quarantined since the snapshot
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}
