package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk record framing, little-endian throughout:
//
//	[u32 payloadLen][u32 crc32(payload)][payload]
//	payload = [u8 kind][u32 keyLen][key bytes][value bytes]
//
// The CRC covers the whole payload, so a flipped bit anywhere in kind,
// key, or value is caught on scan and on every read. The length prefix
// lets the scanner distinguish a torn tail (the record runs past EOF —
// the tell-tale of a crash mid-append) from mid-log corruption (the
// record fits but its checksum lies).

const (
	recordHeaderLen = 8
	minPayloadLen   = 5 // kind + keyLen, with an empty key

	kindPut       = byte(1)
	kindTombstone = byte(2)

	// maxRecordLen bounds one record so a garbage length prefix cannot
	// drive a multi-gigabyte allocation during scan.
	maxRecordLen = 64 << 20
	// maxSnapshotLen bounds the single framed index snapshot record.
	maxSnapshotLen = 256 << 20
)

var (
	errTorn    = errors.New("persist: torn record")
	errCorrupt = errors.New("persist: corrupt record")
)

// encodeRecord frames one put or tombstone. The returned slice is the
// exact bytes appended to the log.
func encodeRecord(kind byte, key string, value []byte) []byte {
	payloadLen := minPayloadLen + len(key) + len(value)
	buf := make([]byte, recordHeaderLen+payloadLen)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payloadLen))
	payload := buf[recordHeaderLen:]
	payload[0] = kind
	binary.LittleEndian.PutUint32(payload[1:5], uint32(len(key)))
	copy(payload[5:], key)
	copy(payload[5+len(key):], value)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return buf
}

// decodePayload splits a checksum-verified payload into its fields.
func decodePayload(payload []byte) (kind byte, key string, value []byte, err error) {
	if len(payload) < minPayloadLen {
		return 0, "", nil, errCorrupt
	}
	kind = payload[0]
	if kind != kindPut && kind != kindTombstone {
		return 0, "", nil, errCorrupt
	}
	keyLen := int(binary.LittleEndian.Uint32(payload[1:5]))
	if keyLen < 0 || minPayloadLen+keyLen > len(payload) {
		return 0, "", nil, errCorrupt
	}
	key = string(payload[5 : 5+keyLen])
	value = payload[5+keyLen:]
	return kind, key, value, nil
}

// readRecordAt reads and fully verifies the record at off, bounded by
// size (the known good extent of the file). It distinguishes a torn
// tail from corruption:
//
//   - errTorn: the header or payload runs past `size`, or the FINAL
//     record's checksum fails — a crash mid-append; truncating to off
//     loses only the un-acknowledged write.
//   - errCorrupt: a record that fits entirely before EOF fails its
//     checksum or decodes inconsistently — bits rotted under us.
func readRecordAt(f File, off, size int64, maxLen int) (kind byte, key string, value []byte, recLen int64, err error) {
	if off+recordHeaderLen > size {
		return 0, "", nil, 0, errTorn
	}
	var hdr [recordHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return 0, "", nil, 0, fmt.Errorf("persist: read header: %w", err)
	}
	payloadLen := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	if off+recordHeaderLen+payloadLen > size {
		// The length prefix may itself be garbage from a partial write;
		// either way the record does not fit, so it is a torn tail.
		return 0, "", nil, 0, errTorn
	}
	if payloadLen < minPayloadLen || payloadLen > int64(maxLen) {
		return 0, "", nil, 0, errCorrupt
	}
	payload := make([]byte, payloadLen)
	if _, err := f.ReadAt(payload, off+recordHeaderLen); err != nil {
		return 0, "", nil, 0, fmt.Errorf("persist: read payload: %w", err)
	}
	recLen = recordHeaderLen + payloadLen
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		if off+recLen == size {
			// Bad checksum on the very last record: the payload bytes
			// never fully landed. Torn, not rot.
			return 0, "", nil, 0, errTorn
		}
		return 0, "", nil, 0, errCorrupt
	}
	kind, key, value, err = decodePayload(payload)
	if err != nil {
		return 0, "", nil, 0, err
	}
	return kind, key, value, recLen, nil
}
