package persist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := map[string]string{
		"alpha": "one",
		"beta":  strings.Repeat("v", 4096),
		"gamma": "",
	}
	for k, v := range want {
		if err := WriteFrame(&buf, k, []byte(v)); err != nil {
			t.Fatalf("WriteFrame(%q): %v", k, err)
		}
	}
	fr := NewFrameReader(&buf)
	got := map[string]string{}
	for {
		k, v, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got[k] = string(v)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q: got %q, want %q", k, got[k], v)
		}
	}
	// A finished reader stays at EOF.
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
}

// TestFrameReaderTruncation: a stream cut mid-frame must error, never
// report a clean EOF — exactly the torn-tail distinction the log
// recovery makes.
func TestFrameReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "key", []byte("a value long enough to cut")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, recordHeaderLen - 1, recordHeaderLen + 3, len(full) - 1} {
		fr := NewFrameReader(bytes.NewReader(full[:cut]))
		_, _, err := fr.Next()
		if err == nil || err == io.EOF {
			t.Errorf("cut at %d: err = %v, want a truncation error", cut, err)
		}
	}
}

func TestFrameReaderCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "key", []byte("value")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] ^= 0xff // flip a payload byte; the CRC must catch it
	fr := NewFrameReader(bytes.NewReader(b))
	if _, _, err := fr.Next(); err == nil || err == io.EOF {
		t.Fatalf("corrupted frame read back: err = %v, want checksum error", err)
	}
}

func TestStoreExport(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("key-%02d", i)
		if err := s.Put(context.Background(), k, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	hitsBefore := s.Stats().Hits

	var keys []string
	pred := func(k string) bool { return strings.HasSuffix(k, "3") || strings.HasSuffix(k, "7") }
	err = s.Export(pred, func(k string, v []byte) error {
		keys = append(keys, k)
		if want := "value-" + k[len(k)-1:]; string(v) != want {
			t.Errorf("key %s exported value %q, want %q", k, v, want)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	if want := []string{"key-03", "key-07"}; len(keys) != 2 || keys[0] != want[0] || keys[1] != want[1] {
		t.Fatalf("exported keys %v, want %v (sorted)", keys, want)
	}
	if got := s.Stats().Hits; got != hitsBefore {
		t.Errorf("export moved the hit counter %d → %d; replication traffic must not count as cache traffic", hitsBefore, got)
	}

	// fn's error aborts the walk and surfaces.
	boom := errors.New("boom")
	calls := 0
	if err := s.Export(nil, func(string, []byte) error { calls++; return boom }); !errors.Is(err, boom) {
		t.Fatalf("Export error = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("Export kept walking after fn error: %d calls", calls)
	}
}
