package persist

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
)

// The index snapshot lets a graceful restart skip the full log scan:
// Close writes the whole index (plus the exact size of every segment)
// as one checksummed frame, via a temp file and an atomic rename. Open
// trusts it only when the segment ids and byte sizes on disk match the
// snapshot exactly — any append, crash, or truncation after the
// snapshot makes the comparison fail and recovery falls back to the
// scan, so a stale or torn snapshot can never resurrect deleted keys
// or miss newer records.

type snapSegment struct {
	ID   int64 `json:"id"`
	Size int64 `json:"size"`
}

type snapEntry struct {
	Key string `json:"k"`
	Seg int64  `json:"s"`
	Off int64  `json:"o"`
	Len int64  `json:"n"`
}

type snapFile struct {
	Version  int           `json:"version"`
	Segments []snapSegment `json:"segments"`
	Entries  []snapEntry   `json:"entries"`
}

const snapVersion = 1

func (s *Store) snapshotPath() string { return filepath.Join(s.dir, snapshotName) }

// writeSnapshotLocked serialises the index; callers hold s.mu.
func (s *Store) writeSnapshotLocked() error {
	snap := snapFile{Version: snapVersion}
	for _, seg := range s.segs {
		snap.Segments = append(snap.Segments, snapSegment{ID: seg.id, Size: seg.size})
	}
	for key, r := range s.index {
		snap.Entries = append(snap.Entries, snapEntry{Key: key, Seg: r.seg.id, Off: r.off, Len: r.n})
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	tmp := s.snapshotPath() + ".tmp"
	f, err := s.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(frame, 0); err != nil {
		f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	return s.fs.Rename(tmp, s.snapshotPath())
}

// restoreSnapshot loads the snapshot during Open. It returns false —
// meaning "scan instead" — on any framing, checksum, decode, or
// disk-mismatch problem; restore is an optimisation, never a source of
// truth.
func (s *Store) restoreSnapshot() bool {
	f, err := s.fs.OpenFile(s.snapshotPath(), os.O_RDONLY, 0)
	if err != nil {
		return false
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil || fi.Size() < 8 || fi.Size() > 8+maxSnapshotLen {
		return false
	}
	frame := make([]byte, fi.Size())
	if _, err := f.ReadAt(frame, 0); err != nil {
		return false
	}
	payloadLen := int64(binary.LittleEndian.Uint32(frame[0:4]))
	if payloadLen != fi.Size()-8 {
		return false
	}
	payload := frame[8:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[4:8]) {
		return false
	}
	var snap snapFile
	if err := json.Unmarshal(payload, &snap); err != nil || snap.Version != snapVersion {
		return false
	}

	// The snapshot must describe exactly the segments on disk, byte for
	// byte: same id set, same sizes.
	if len(snap.Segments) != len(s.segs) {
		return false
	}
	byID := make(map[int64]*segment, len(s.segs))
	for _, seg := range s.segs {
		byID[seg.id] = seg
	}
	for _, ss := range snap.Segments {
		seg, ok := byID[ss.ID]
		if !ok || seg.size != ss.Size {
			return false
		}
	}

	index := make(map[string]ref, len(snap.Entries))
	var live int64
	for _, e := range snap.Entries {
		seg, ok := byID[e.Seg]
		if !ok || e.Off < 0 || e.Len < recordHeaderLen+minPayloadLen || e.Off+e.Len > seg.size {
			return false
		}
		index[e.Key] = ref{seg: seg, off: e.Off, n: e.Len}
		live += e.Len
	}
	s.index = index
	s.dead = s.totalBytesLocked() - live
	s.restoredSnap.Store(true)
	return true
}
