package persist

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

func mustPut(t *testing.T, st *Store, key, value string) {
	t.Helper()
	if err := st.Put(context.Background(), key, []byte(value)); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func wantGet(t *testing.T, st *Store, key, value string) {
	t.Helper()
	got, ok := st.Get(key)
	if !ok {
		t.Fatalf("Get(%q): miss, want %q", key, value)
	}
	if string(got) != value {
		t.Fatalf("Get(%q) = %q, want %q", key, got, value)
	}
}

func wantMiss(t *testing.T, st *Store, key string) {
	t.Helper()
	if got, ok := st.Get(key); ok {
		t.Fatalf("Get(%q) = %q, want miss", key, got)
	}
}

func TestPutGetOverwriteDelete(t *testing.T) {
	st := mustOpen(t, Options{Dir: t.TempDir()})
	defer st.Kill()

	wantMiss(t, st, "absent")
	mustPut(t, st, "a", "one")
	mustPut(t, st, "b", "two")
	wantGet(t, st, "a", "one")
	wantGet(t, st, "b", "two")

	mustPut(t, st, "a", "one-prime")
	wantGet(t, st, "a", "one-prime")

	if err := st.Delete(context.Background(), "b"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	wantMiss(t, st, "b")
	if st.Keys() != 1 {
		t.Fatalf("Keys = %d, want 1", st.Keys())
	}

	stats := st.Stats()
	if stats.Hits != 3 || stats.Misses != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 3/2", stats.Hits, stats.Misses)
	}
	if stats.DeadBytes == 0 {
		t.Fatal("overwrite + delete should have accrued dead bytes")
	}
}

func TestReopenAfterKillScansLog(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 50; i++ {
		mustPut(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
	mustPut(t, st, "key-7", "rewritten")
	if err := st.Delete(context.Background(), "key-9"); err != nil {
		t.Fatal(err)
	}
	st.Kill() // crash: no sync, no snapshot

	st2 := mustOpen(t, Options{Dir: dir})
	defer st2.Kill()
	if st2.Stats().SnapshotRestore {
		t.Fatal("kill must not leave a usable snapshot")
	}
	wantGet(t, st2, "key-7", "rewritten")
	wantMiss(t, st2, "key-9")
	for i := 0; i < 50; i++ {
		if i == 7 || i == 9 {
			continue
		}
		wantGet(t, st2, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
}

func TestReopenAfterCloseRestoresSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 20; i++ {
		mustPut(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2 := mustOpen(t, Options{Dir: dir})
	defer st2.Kill()
	if !st2.Stats().SnapshotRestore {
		t.Fatal("graceful close should let the next open restore from snapshot")
	}
	for i := 0; i < 20; i++ {
		wantGet(t, st2, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
}

func TestSnapshotIgnoredAfterFurtherWrites(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir})
	mustPut(t, st, "a", "one")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Write more, then crash: the old snapshot no longer matches disk.
	st2 := mustOpen(t, Options{Dir: dir})
	mustPut(t, st2, "b", "two")
	st2.Kill()

	st3 := mustOpen(t, Options{Dir: dir})
	defer st3.Kill()
	if st3.Stats().SnapshotRestore {
		t.Fatal("stale snapshot must not be trusted after further appends")
	}
	wantGet(t, st3, "a", "one")
	wantGet(t, st3, "b", "two")
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir, SegmentBytes: 512})
	defer st.Kill()

	// Rewrite a small key set many times: most of the log is dead, so
	// rotation must trigger compaction and shrink disk usage.
	for round := 0; round < 40; round++ {
		for i := 0; i < 4; i++ {
			mustPut(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("round-%d-value-%d", round, i))
		}
	}
	for i := 0; i < 4; i++ {
		wantGet(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("round-39-value-%d", i))
	}
	stats := st.Stats()
	if stats.Compactions == 0 {
		t.Fatalf("expected at least one compaction, stats=%+v", stats)
	}
	if stats.SegmentsCreated == 0 {
		t.Fatal("expected segment rotation")
	}
	if stats.DiskBytes > 4096 {
		t.Fatalf("compaction should bound disk usage, got %d bytes", stats.DiskBytes)
	}
}

func TestMaxBytesEvictsOldestSegments(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir, SegmentBytes: 256, MaxBytes: 1024})
	defer st.Kill()

	// Distinct keys only: nothing is dead, so staying under MaxBytes
	// must come from dropping whole old segments.
	for i := 0; i < 200; i++ {
		mustPut(t, st, fmt.Sprintf("key-%03d", i), fmt.Sprintf("value-%03d", i))
	}
	stats := st.Stats()
	if stats.EvictedKeys == 0 {
		t.Fatalf("expected evictions under MaxBytes pressure, stats=%+v", stats)
	}
	if stats.DiskBytes > 2048 {
		t.Fatalf("disk usage %d way over budget", stats.DiskBytes)
	}
	// The newest keys must have survived.
	wantGet(t, st, "key-199", "value-199")
}

func TestCompactionPreservesEverythingAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir, SegmentBytes: 1 << 20})
	for i := 0; i < 30; i++ {
		mustPut(t, st, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
	mustPut(t, st, "key-3", "rewritten")
	if err := st.Delete(context.Background(), "key-5"); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(context.Background()); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	wantGet(t, st, "key-3", "rewritten")
	wantMiss(t, st, "key-5")
	if st.Stats().DeadBytes != 0 {
		t.Fatalf("dead bytes after compact = %d, want 0", st.Stats().DeadBytes)
	}
	st.Kill()

	st2 := mustOpen(t, Options{Dir: dir})
	defer st2.Kill()
	wantGet(t, st2, "key-3", "rewritten")
	wantMiss(t, st2, "key-5")
	for i := 0; i < 30; i++ {
		if i == 3 || i == 5 {
			continue
		}
		wantGet(t, st2, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
}

func TestGetVerifiesChecksumOnRead(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, Options{Dir: dir})
	defer st.Kill()
	mustPut(t, st, "poisoned", "payload-bytes-here")

	// Flip a value byte behind the store's back.
	seg := filepath.Join(dir, "seg-0000000000000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	wantMiss(t, st, "poisoned")
	if st.Stats().CorruptRecords == 0 {
		t.Fatal("read-time checksum failure must be counted corrupt")
	}
	// The poisoned entry is dropped, not retried forever.
	if st.Has("poisoned") {
		t.Fatal("corrupt record should be expelled from the index")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	st := mustOpen(t, Options{Dir: t.TempDir(), SegmentBytes: 4096})
	defer st.Kill()
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%10)
				if err := st.Put(context.Background(), key, []byte(fmt.Sprintf("v%d", i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
		go func(w int) {
			for i := 0; i < 100; i++ {
				st.Get(fmt.Sprintf("w%d-k%d", w, i%10))
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestClosedStoreRejectsMutations(t *testing.T) {
	st := mustOpen(t, Options{Dir: t.TempDir()})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(context.Background(), "k", []byte("v")); err == nil {
		t.Fatal("Put on closed store should fail")
	}
	if _, ok := st.Get("k"); ok {
		t.Fatal("Get on closed store should miss")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double Close should be a no-op, got %v", err)
	}
}
