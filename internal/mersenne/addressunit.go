package mersenne

import "fmt"

// AddressUnit is a functional model of the Figure-1 cache-address
// generator. It owns one c-bit end-around-carry adder, a stride register
// holding the vector stride converted to Mersenne form, an index register
// holding the cache index of the previously generated element, and an
// optional file of start-address registers so re-accessed vectors skip the
// starting-address conversion.
//
// Every operation reports its cost in adder steps (c-bit additions), the
// quantity the paper's critical-path argument is about: per-element index
// generation must take exactly one step, and a vector start-up at most a
// couple.
type AddressUnit struct {
	mod       Modulus
	stride    uint64 // stride register, Mersenne form
	index     uint64 // index of the previously generated element
	started   bool
	startRegs map[int]uint64 // vector id → saved starting index
	adderOps  uint64         // cumulative c-bit additions performed
}

// NewAddressUnit returns an address unit for the given modulus with an
// empty start-register file.
func NewAddressUnit(mod Modulus) *AddressUnit {
	return &AddressUnit{mod: mod, startRegs: make(map[int]uint64)}
}

// Modulus returns the unit's Mersenne modulus.
func (u *AddressUnit) Modulus() Modulus { return u.mod }

// AdderOps returns the cumulative number of c-bit additions the unit has
// performed, the hardware-cost counter used by the datapath tests and the
// ablation benchmarks.
func (u *AddressUnit) AdderOps() uint64 { return u.adderOps }

// ResetCost zeroes the adder-step counter.
func (u *AddressUnit) ResetCost() { u.adderOps = 0 }

// SetStride loads the stride register: the integer stride is converted to
// Mersenne form by folding, exactly as the paper does "at the time when the
// vector stride is loaded into the vector stride register". It returns the
// converted stride and the conversion cost in adder steps.
func (u *AddressUnit) SetStride(stride int64) (converted uint64, steps int) {
	var r uint64
	if stride >= 0 {
		r, steps = u.mod.ReduceSteps(uint64(stride))
	} else {
		r, steps = u.mod.ReduceSteps(uint64(-stride))
		if r != 0 {
			r = u.mod.Value() - r
		}
	}
	u.stride = r
	u.adderOps += uint64(steps)
	return r, steps
}

// Stride returns the current contents of the stride register (Mersenne
// form).
func (u *AddressUnit) Stride() uint64 { return u.stride }

// Start converts the line address of a vector's first element into a cache
// index by folding, loads the index register with it, and returns the index
// and the folding cost. This is the multiplexor path that selects the tag
// and index fields of the memory address as the adder operands.
func (u *AddressUnit) Start(lineAddr uint64) (index uint64, steps int) {
	index, steps = u.mod.ReduceSteps(lineAddr)
	u.index = index
	u.started = true
	u.adderOps += uint64(steps)
	return index, steps
}

// Next produces the cache index of the next vector element: one end-around
// c-bit addition of the stride register into the index register. This is
// the steady-state path and always costs exactly one adder step.
func (u *AddressUnit) Next() uint64 {
	if !u.started {
		panic("mersenne: AddressUnit.Next before Start")
	}
	u.index = u.mod.Add(u.index, u.stride)
	u.adderOps++
	return u.index
}

// Index returns the current contents of the index register.
func (u *AddressUnit) Index() uint64 { return u.index }

// SaveStart stores the current index register into start register id, the
// optional register file the paper proposes so that re-accessed vectors pay
// no reconversion. It returns an error when the unit has not started a
// vector yet.
func (u *AddressUnit) SaveStart(id int) error {
	if !u.started {
		return fmt.Errorf("mersenne: no vector in flight to save as start register %d", id)
	}
	u.startRegs[id] = u.index
	return nil
}

// Restart reloads the index register from start register id at zero adder
// cost. The boolean reports whether the register was populated.
func (u *AddressUnit) Restart(id int) (uint64, bool) {
	idx, ok := u.startRegs[id]
	if !ok {
		return 0, false
	}
	u.index = idx
	u.started = true
	return idx, true
}

// DropStart removes start register id, modelling the cheaper design point
// the paper discusses (recalculate on each vector start-up instead of
// paying for registers).
func (u *AddressUnit) DropStart(id int) { delete(u.startRegs, id) }

// StartRegisters returns the number of start registers currently in use.
func (u *AddressUnit) StartRegisters() int { return len(u.startRegs) }

// Indices generates the cache indices of an n-element vector with the given
// starting line address and stride, using the Start/Next datapath. It is a
// convenience for tests and trace generation.
func (u *AddressUnit) Indices(start uint64, stride int64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	out := make([]uint64, n)
	u.SetStride(stride)
	idx, _ := u.Start(start)
	out[0] = idx
	for i := 1; i < n; i++ {
		out[i] = u.Next()
	}
	return out
}
