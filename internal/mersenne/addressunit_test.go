package mersenne

import (
	"testing"
	"testing/quick"
)

func TestAddressUnitIndicesMatchMod(t *testing.T) {
	m := MustNew(13)
	u := NewAddressUnit(m)
	const n = 200
	for _, tc := range []struct {
		start  uint64
		stride int64
	}{
		{0, 1}, {12345, 1}, {7, 8192}, {1 << 20, 4096}, {99, 8191}, {500, -3}, {0, -8191},
	} {
		got := u.Indices(tc.start, tc.stride, n)
		for i := 0; i < n; i++ {
			addr := int64(tc.start) + int64(i)*tc.stride
			want := m.ReduceSigned(addr)
			if got[i] != want {
				t.Fatalf("start=%d stride=%d elem %d: index %d, want %d", tc.start, tc.stride, i, got[i], want)
			}
		}
	}
}

func TestAddressUnitIndicesProperty(t *testing.T) {
	m := MustNew(13)
	f := func(start uint32, stride int16) bool {
		u := NewAddressUnit(m)
		idx := u.Indices(uint64(start), int64(stride), 64)
		for i, got := range idx {
			if got != m.ReduceSigned(int64(start)+int64(i)*int64(stride)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddressUnitNextCostsOneAdd(t *testing.T) {
	u := NewAddressUnit(MustNew(13))
	u.SetStride(5)
	u.Start(12345)
	before := u.AdderOps()
	u.Next()
	if got := u.AdderOps() - before; got != 1 {
		t.Errorf("Next cost %d adder steps, want exactly 1", got)
	}
}

func TestAddressUnitStartCostBounded(t *testing.T) {
	// 32-bit addresses with c=13: tag is 19 bits, so the start-up
	// conversion is at most two c-bit additions (the paper's claim that "a
	// couple of stages of c-bit additions" suffice).
	u := NewAddressUnit(MustNew(13))
	for _, a := range []uint64{0, 1, 8190, 8191, 1 << 20, 0xFFFFFFFF} {
		_, steps := u.Start(a)
		if steps > 2 {
			t.Errorf("Start(%#x) took %d folding steps, want ≤ 2", a, steps)
		}
	}
}

func TestAddressUnitStrideConversion(t *testing.T) {
	u := NewAddressUnit(MustNew(5)) // modulus 31
	conv, _ := u.SetStride(33)
	if conv != 2 {
		t.Errorf("SetStride(33) = %d, want 2", conv)
	}
	conv, _ = u.SetStride(-1)
	if conv != 30 {
		t.Errorf("SetStride(-1) = %d, want 30", conv)
	}
	if u.Stride() != 30 {
		t.Errorf("Stride() = %d, want 30", u.Stride())
	}
}

func TestAddressUnitNextBeforeStartPanics(t *testing.T) {
	u := NewAddressUnit(MustNew(5))
	defer func() {
		if recover() == nil {
			t.Fatal("Next before Start did not panic")
		}
	}()
	u.Next()
}

func TestAddressUnitStartRegisters(t *testing.T) {
	u := NewAddressUnit(MustNew(13))
	if err := u.SaveStart(0); err == nil {
		t.Error("SaveStart before any vector should fail")
	}
	u.SetStride(3)
	start, _ := u.Start(999)
	if err := u.SaveStart(7); err != nil {
		t.Fatalf("SaveStart: %v", err)
	}
	u.Next()
	u.Next()
	idx, ok := u.Restart(7)
	if !ok || idx != start {
		t.Errorf("Restart(7) = (%d,%v), want (%d,true)", idx, ok, start)
	}
	if u.Index() != start {
		t.Errorf("Index() after Restart = %d, want %d", u.Index(), start)
	}
	if got := u.StartRegisters(); got != 1 {
		t.Errorf("StartRegisters() = %d, want 1", got)
	}
	u.DropStart(7)
	if _, ok := u.Restart(7); ok {
		t.Error("Restart after DropStart should fail")
	}
	if got := u.StartRegisters(); got != 0 {
		t.Errorf("StartRegisters() after drop = %d, want 0", got)
	}
}

func TestAddressUnitRestartCostFree(t *testing.T) {
	u := NewAddressUnit(MustNew(13))
	u.SetStride(3)
	u.Start(12345)
	u.SaveStart(1)
	u.ResetCost()
	u.Restart(1)
	if u.AdderOps() != 0 {
		t.Errorf("Restart cost %d adder steps, want 0", u.AdderOps())
	}
}

func TestAddressUnitIndicesEmpty(t *testing.T) {
	u := NewAddressUnit(MustNew(13))
	if got := u.Indices(0, 1, 0); got != nil {
		t.Errorf("Indices(n=0) = %v, want nil", got)
	}
}

func TestAddressUnitConflictFreePrimeStrides(t *testing.T) {
	// The headline property: with a prime number of lines, a vector of
	// length ≤ C with any stride not a multiple of C touches all-distinct
	// cache lines.
	m := MustNew(13)
	u := NewAddressUnit(m)
	C := int(m.Value())
	for _, stride := range []int64{1, 2, 3, 7, 8, 64, 4096, 8190, 8192, 12345} {
		if stride%int64(C) == 0 {
			continue
		}
		idx := u.Indices(777, stride, C)
		seen := make(map[uint64]bool, C)
		for _, x := range idx {
			if seen[x] {
				t.Fatalf("stride %d: duplicate index %d within %d accesses", stride, x, C)
			}
			seen[x] = true
		}
	}
}
