package mersenne

import (
	"fmt"
)

// MaxExponent is the largest supported exponent c. With c ≤ 31 every
// residue fits in 31 bits and products of two residues fit in uint64, so
// MulMod needs no multiprecision arithmetic.
const MaxExponent = 31

// primeExponents lists the exponents c ≤ MaxExponent for which 2^c − 1 is
// prime (the Mersenne primes 3, 7, 31, 127, 8191, 131071, 524287,
// 2147483647). The paper's example cache uses c = 13 (8191 lines).
var primeExponents = [...]uint{2, 3, 5, 7, 13, 17, 19, 31}

// PrimeExponents returns the exponents c ≤ MaxExponent for which 2^c − 1 is
// a Mersenne prime, in increasing order.
func PrimeExponents() []uint {
	out := make([]uint, len(primeExponents))
	copy(out, primeExponents[:])
	return out
}

// IsPrimeExponent reports whether 2^c − 1 is a Mersenne prime for c ≤
// MaxExponent.
func IsPrimeExponent(c uint) bool {
	for _, p := range primeExponents {
		if p == c {
			return true
		}
	}
	return false
}

// LargestPrimeExponentAtMost returns the largest prime exponent p ≤ c, and
// false if there is none (c < 2).
func LargestPrimeExponentAtMost(c uint) (uint, bool) {
	best, ok := uint(0), false
	for _, p := range primeExponents {
		if p <= c && p >= best {
			best, ok = p, true
		}
	}
	return best, ok
}

// Modulus is a Mersenne modulus 2^c − 1. The zero value is not valid; use
// New.
type Modulus struct {
	c     uint
	value uint64 // 2^c − 1, doubles as the c-bit mask
}

// New returns the Mersenne modulus 2^c − 1. It requires 2 ≤ c ≤ MaxExponent
// but does not require 2^c − 1 to be prime: the composite Mersenne moduli
// are useful as experimental baselines. Use NewPrime when primality is
// required.
func New(c uint) (Modulus, error) {
	if c < 2 || c > MaxExponent {
		return Modulus{}, fmt.Errorf("mersenne: exponent %d out of range [2,%d]", c, MaxExponent)
	}
	return Modulus{c: c, value: 1<<c - 1}, nil
}

// NewPrime is New restricted to exponents for which 2^c − 1 is prime.
func NewPrime(c uint) (Modulus, error) {
	if !IsPrimeExponent(c) {
		return Modulus{}, fmt.Errorf("mersenne: 2^%d-1 is not a Mersenne prime", c)
	}
	return New(c)
}

// MustNew is New but panics on error; intended for constants in tests and
// examples.
func MustNew(c uint) Modulus {
	m, err := New(c)
	if err != nil {
		panic(err)
	}
	return m
}

// C returns the exponent c.
func (m Modulus) C() uint { return m.c }

// Value returns the modulus 2^c − 1.
func (m Modulus) Value() uint64 { return m.value }

// IsPrime reports whether the modulus is a Mersenne prime.
func (m Modulus) IsPrime() bool { return IsPrimeExponent(m.c) }

// String implements fmt.Stringer.
func (m Modulus) String() string { return fmt.Sprintf("2^%d-1 (%d)", m.c, m.value) }

// Reduce returns x mod (2^c − 1) in [0, 2^c−2] by folding successive c-bit
// fields of x, the operation the paper performs with a short sequence of
// c-bit additions when a vector's starting address enters the cache address
// generator.
func (m Modulus) Reduce(x uint64) uint64 {
	for x > m.value {
		x = (x & m.value) + (x >> m.c)
	}
	if x == m.value { // 2^c − 1 ≡ 0
		return 0
	}
	return x
}

// ReduceSteps returns Reduce(x) along with the number of c-bit end-around
// adder stages the reduction takes in the Figure-1 hardware: the address is
// split into c-bit digits (d₀ the index field, d₁, d₂, … the tag subfields)
// and the digits are summed one EAC addition at a time, each stage folding
// its own carry-out. The paper's critical-path argument is that this count
// is ceil(addressBits/c) − 1, i.e. at most "a couple" for realistic address
// and cache sizes.
func (m Modulus) ReduceSteps(x uint64) (r uint64, steps int) {
	r = x & m.value
	x >>= m.c
	for x != 0 {
		r = m.Add(r, x&m.value)
		x >>= m.c
		steps++
	}
	if r == m.value {
		r = 0
	}
	return r, steps
}

// ReduceSigned returns x mod (2^c − 1) for a possibly negative x, in
// [0, 2^c−2]. Vector strides may be negative (e.g. reverse sweeps).
func (m Modulus) ReduceSigned(x int64) uint64 {
	if x >= 0 {
		return m.Reduce(uint64(x))
	}
	r := m.Reduce(uint64(-x))
	if r == 0 {
		return 0
	}
	return m.value - r
}

// Add returns (a + b) mod (2^c − 1) for residues a, b in [0, 2^c−1]. It
// models the end-around-carry adder: one c-bit addition whose carry-out is
// folded into the carry-in.
func (m Modulus) Add(a, b uint64) uint64 {
	if a > m.value || b > m.value {
		panic("mersenne: Add operand out of residue range")
	}
	s := a + b
	s = (s & m.value) + (s >> m.c)
	if s == m.value {
		return 0
	}
	return s
}

// Sub returns (a − b) mod (2^c − 1) for residues a, b in [0, 2^c−1].
func (m Modulus) Sub(a, b uint64) uint64 {
	if a > m.value || b > m.value {
		panic("mersenne: Sub operand out of residue range")
	}
	if b == m.value {
		b = 0
	}
	return m.Add(a, m.value-b)
}

// MulMod returns (a·b) mod (2^c − 1). Operands are first reduced; the
// product of two residues fits in uint64 because c ≤ 31.
func (m Modulus) MulMod(a, b uint64) uint64 {
	return m.Reduce(m.Reduce(a) * m.Reduce(b))
}

// Congruent reports whether a ≡ b (mod 2^c − 1).
func (m Modulus) Congruent(a, b uint64) bool {
	return m.Reduce(a) == m.Reduce(b)
}

// Inverse returns the multiplicative inverse of a modulo 2^c − 1 and true
// when it exists (a not ≡ 0 and gcd(a, modulus) = 1; for prime moduli
// every non-zero residue is invertible). The sub-block analysis uses it
// to locate colliding columns: columns j1, j2 of spacing s collide when
// (j1 − j2) ≡ ±s⁻¹·r for small r.
func (m Modulus) Inverse(a uint64) (uint64, bool) {
	a = m.Reduce(a)
	if a == 0 {
		return 0, false
	}
	// Extended Euclid on (a, v).
	v := int64(m.value)
	r0, r1 := int64(a), v
	s0, s1 := int64(1), int64(0)
	for r1 != 0 {
		q := r0 / r1
		r0, r1 = r1, r0-q*r1
		s0, s1 = s1, s0-q*s1
	}
	if r0 != 1 {
		return 0, false
	}
	s0 %= v
	if s0 < 0 {
		s0 += v
	}
	return uint64(s0), true
}
