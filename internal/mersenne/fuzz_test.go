package mersenne

import "testing"

// FuzzReduce cross-checks the folding reduction against the hardware
// division for arbitrary inputs and every prime exponent.
func FuzzReduce(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(8191))
	f.Add(uint64(1) << 63)
	f.Add(^uint64(0))
	f.Add(uint64(0xDEADBEEFCAFEBABE))
	f.Fuzz(func(t *testing.T, x uint64) {
		for _, c := range PrimeExponents() {
			m := MustNew(c)
			if got, want := m.Reduce(x), x%m.Value(); got != want {
				t.Fatalf("c=%d Reduce(%#x) = %d, want %d", c, x, got, want)
			}
			r, _ := m.ReduceSteps(x)
			if r != x%m.Value() {
				t.Fatalf("c=%d ReduceSteps(%#x) = %d, want %d", c, x, r, x%m.Value())
			}
		}
	})
}

// FuzzAddressUnit drives the Figure-1 datapath with arbitrary start
// addresses and strides and checks every generated index against the
// architectural modulus.
func FuzzAddressUnit(f *testing.F) {
	f.Add(uint64(0), int64(1))
	f.Add(uint64(12345), int64(-7))
	f.Add(uint64(1)<<40, int64(8191))
	f.Fuzz(func(t *testing.T, start uint64, stride int64) {
		if stride > 1<<40 || stride < -(1<<40) || start > 1<<50 {
			return // keep i·stride within int64
		}
		m := MustNew(13)
		u := NewAddressUnit(m)
		u.SetStride(stride)
		idx, _ := u.Start(start)
		if want := m.Reduce(start); idx != want {
			t.Fatalf("Start(%d) = %d, want %d", start, idx, want)
		}
		addr := int64(start)
		for i := 1; i < 64; i++ {
			addr += stride
			if got, want := u.Next(), m.ReduceSigned(addr); got != want {
				t.Fatalf("elem %d: %d, want %d", i, got, want)
			}
		}
	})
}
