package mersenne

import "math/big"

// LucasLehmer reports whether 2^p − 1 is prime using the Lucas–Lehmer test:
// with s₀ = 4 and s_{k+1} = s_k² − 2 (mod 2^p − 1), 2^p − 1 is prime iff
// s_{p−2} ≡ 0. It is exact for any odd prime p; p = 2 is special-cased
// (2²−1 = 3 is prime). Composite p always yields composite 2^p − 1, which
// the test reports correctly, so callers may pass any p ≥ 2.
func LucasLehmer(p uint) bool {
	if p < 2 {
		return false
	}
	if p == 2 {
		return true
	}
	if p%2 == 0 {
		return false // 2^p−1 divisible by 3 for even p > 2
	}
	// A composite p gives a composite Mersenne number; the LL sequence will
	// not vanish, so running the test is still correct, just wasteful. Do a
	// cheap trial division on p first.
	for d := uint(3); d*d <= p; d += 2 {
		if p%d == 0 {
			return false
		}
	}
	m := new(big.Int).Lsh(big.NewInt(1), p)
	m.Sub(m, big.NewInt(1))
	s := big.NewInt(4)
	two := big.NewInt(2)
	for i := uint(0); i < p-2; i++ {
		s.Mul(s, s)
		s.Sub(s, two)
		s.Mod(s, m)
	}
	return s.Sign() == 0
}
