package mersenne

// Table-driven edge-case tests for the stride-conversion path — the
// SetStride folding that loads the vector stride register, including the
// modular-inverse arithmetic built on it. Covers strides congruent to 0
// mod 2^c − 1, negative strides, and strides far beyond 2^c.

import (
	"math/big"
	"testing"
)

// refMod computes stride mod (2^c − 1) in ordinary big-int arithmetic,
// mapped to the non-negative residue — the specification SetStride's
// folding hardware must match.
func refMod(stride int64, modulus uint64) uint64 {
	m := new(big.Int).SetUint64(modulus)
	r := new(big.Int).Mod(big.NewInt(stride), m)
	return r.Uint64()
}

func TestSetStrideEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		c      uint
		stride int64
	}{
		{"zero", 13, 0},
		{"unit", 13, 1},
		{"modulus itself", 13, 8191},
		{"multiple of modulus", 13, 3 * 8191},
		{"huge multiple of modulus", 13, 8191 << 32},
		{"negative unit", 13, -1},
		{"negative modulus", 13, -8191},
		{"negative multiple", 13, -5 * 8191},
		{"negative general", 13, -517},
		{"negative huge", 13, -(1 << 52) - 12345},
		{"stride 2^c", 13, 1 << 13},
		{"stride 2^c + 1", 13, (1 << 13) + 1},
		{"stride far beyond 2^c", 13, (1 << 40) + 7},
		{"max int53-ish", 13, 1<<53 - 1},
		{"small modulus zero residue", 5, 31},
		{"small modulus wrap", 5, 1 << 20},
		{"small modulus negative", 5, -33},
		{"large exponent", 31, (1 << 62) + 991},
		{"large exponent negative", 31, -(1 << 45) - 17},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod := MustNew(tc.c)
			u := NewAddressUnit(mod)
			converted, steps := u.SetStride(tc.stride)
			if want := refMod(tc.stride, mod.Value()); converted != want {
				t.Fatalf("SetStride(%d) mod 2^%d-1 = %d, want %d", tc.stride, tc.c, converted, want)
			}
			if converted != u.Stride() {
				t.Fatalf("stride register holds %d, returned %d", u.Stride(), converted)
			}
			if converted >= mod.Value() {
				t.Fatalf("converted stride %d not a canonical residue of %d", converted, mod.Value())
			}
			if steps < 0 {
				t.Fatalf("negative conversion cost %d", steps)
			}
			// The conversion cost must be accounted in the cumulative
			// adder-step counter the paper's cost argument is about.
			if u.AdderOps() != uint64(steps) {
				t.Fatalf("AdderOps() = %d after conversion of cost %d", u.AdderOps(), steps)
			}
		})
	}
}

// TestSetStrideZeroResidueSequence: a stride ≡ 0 mod (2^c − 1) must pin
// every element of the vector to the start index — the degenerate case
// where all elements land on one cache line.
func TestSetStrideZeroResidueSequence(t *testing.T) {
	u := NewAddressUnit(MustNew(13))
	for _, stride := range []int64{0, 8191, -8191, 2 * 8191} {
		got := u.Indices(12345, stride, 8)
		want := MustNew(13).Reduce(12345)
		for i, idx := range got {
			if idx != want {
				t.Fatalf("stride %d: element %d has index %d, want pinned %d", stride, i, idx, want)
			}
		}
	}
}

// TestSetStrideSequenceMatchesBigInt walks the Start/Next datapath for
// edge-case strides and cross-checks every generated index against
// big-int modular arithmetic on (start + i·stride).
func TestSetStrideSequenceMatchesBigInt(t *testing.T) {
	const n = 64
	for _, c := range []uint{5, 13, 17} {
		mod := MustNew(c)
		for _, stride := range []int64{
			-(1 << 33) - 7, -int64(mod.Value()), -513, -1,
			0, 1, int64(mod.Value()), int64(mod.Value()) + 1,
			1 << int64(c), (1 << 38) + 11,
		} {
			u := NewAddressUnit(mod)
			const start = 987654321
			got := u.Indices(start, stride, n)
			m := new(big.Int).SetUint64(mod.Value())
			for i := 0; i < n; i++ {
				addr := new(big.Int).Mul(big.NewInt(stride), big.NewInt(int64(i)))
				addr.Add(addr, big.NewInt(start))
				want := new(big.Int).Mod(addr, m).Uint64()
				if got[i] != want {
					t.Fatalf("c=%d stride=%d: element %d index %d, want %d", c, stride, i, got[i], want)
				}
			}
		}
	}
}

// TestInverseOfConvertedStride: for prime moduli every non-zero
// converted stride must be invertible, inverses must round-trip, and the
// zero residue (stride ≡ 0) must report non-invertible — the
// modular-inverse path the sub-block analysis depends on.
func TestInverseOfConvertedStride(t *testing.T) {
	mod := MustNew(13)
	u := NewAddressUnit(mod)
	for _, stride := range []int64{1, 2, 512, 8190, -1, -512, (1 << 30) + 3, 8191, 3 * 8191} {
		conv, _ := u.SetStride(stride)
		inv, ok := mod.Inverse(conv)
		if conv == 0 {
			if ok {
				t.Fatalf("stride %d (residue 0) reported invertible", stride)
			}
			continue
		}
		if !ok {
			t.Fatalf("stride %d (residue %d) not invertible under prime modulus", stride, conv)
		}
		if got := mod.MulMod(conv, inv); got != 1 {
			t.Fatalf("stride %d: %d · %d ≡ %d, want 1", stride, conv, inv, got)
		}
	}
}
