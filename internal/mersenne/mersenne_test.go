package mersenne

import (
	"testing"
	"testing/quick"
)

func TestNewValidRange(t *testing.T) {
	for c := uint(2); c <= MaxExponent; c++ {
		m, err := New(c)
		if err != nil {
			t.Fatalf("New(%d): %v", c, err)
		}
		if got, want := m.Value(), uint64(1)<<c-1; got != want {
			t.Errorf("New(%d).Value() = %d, want %d", c, got, want)
		}
		if m.C() != c {
			t.Errorf("New(%d).C() = %d", c, m.C())
		}
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	for _, c := range []uint{0, 1, MaxExponent + 1, 64} {
		if _, err := New(c); err == nil {
			t.Errorf("New(%d) succeeded, want error", c)
		}
	}
}

func TestNewPrime(t *testing.T) {
	for _, c := range PrimeExponents() {
		if _, err := NewPrime(c); err != nil {
			t.Errorf("NewPrime(%d): %v", c, err)
		}
	}
	for _, c := range []uint{4, 6, 8, 9, 11, 12, 15, 23, 29} {
		if _, err := NewPrime(c); err == nil {
			t.Errorf("NewPrime(%d) succeeded for composite Mersenne", c)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestIsPrimeExponent(t *testing.T) {
	want := map[uint]bool{2: true, 3: true, 5: true, 7: true, 13: true, 17: true, 19: true, 31: true}
	for c := uint(0); c <= MaxExponent; c++ {
		if got := IsPrimeExponent(c); got != want[c] {
			t.Errorf("IsPrimeExponent(%d) = %v, want %v", c, got, want[c])
		}
	}
}

func TestLargestPrimeExponentAtMost(t *testing.T) {
	cases := []struct {
		in   uint
		want uint
		ok   bool
	}{
		{1, 0, false},
		{2, 2, true},
		{3, 3, true},
		{4, 3, true},
		{12, 7, true},
		{13, 13, true},
		{14, 13, true},
		{16, 13, true},
		{18, 17, true},
		{31, 31, true},
		{100, 31, true},
	}
	for _, tc := range cases {
		got, ok := LargestPrimeExponentAtMost(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("LargestPrimeExponentAtMost(%d) = (%d,%v), want (%d,%v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestReduceMatchesNaiveMod(t *testing.T) {
	for _, c := range []uint{2, 3, 5, 7, 13} {
		m := MustNew(c)
		v := m.Value()
		for x := uint64(0); x < 4*v+5; x++ {
			if got, want := m.Reduce(x), x%v; got != want {
				t.Fatalf("c=%d Reduce(%d) = %d, want %d", c, x, got, want)
			}
		}
	}
}

func TestReducePropertyQuick(t *testing.T) {
	m := MustNew(13)
	f := func(x uint64) bool { return m.Reduce(x) == x%m.Value() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceSteps(t *testing.T) {
	m := MustNew(13)
	// A value already in range folds zero times.
	if _, steps := m.ReduceSteps(42); steps != 0 {
		t.Errorf("ReduceSteps(42) took %d steps, want 0", steps)
	}
	// A 32-bit address (tag ≤ 19 bits) folds in at most 2 steps — the
	// paper's Alliant FX/8 example.
	for _, x := range []uint64{1 << 31, 0xFFFFFFFF, 0xDEADBEEF} {
		r, steps := m.ReduceSteps(x)
		if r != x%m.Value() {
			t.Errorf("ReduceSteps(%#x) = %d, want %d", x, r, x%m.Value())
		}
		if steps > 2 {
			t.Errorf("ReduceSteps(%#x) took %d steps, want ≤ 2", x, steps)
		}
	}
}

func TestReduceSigned(t *testing.T) {
	m := MustNew(5) // modulus 31
	cases := []struct {
		in   int64
		want uint64
	}{
		{0, 0}, {1, 1}, {31, 0}, {-1, 30}, {-31, 0}, {-32, 30}, {-62, 0}, {62, 0}, {-5, 26},
	}
	for _, tc := range cases {
		if got := m.ReduceSigned(tc.in); got != tc.want {
			t.Errorf("ReduceSigned(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestReduceSignedProperty(t *testing.T) {
	m := MustNew(13)
	v := int64(m.Value())
	f := func(x int64) bool {
		want := ((x % v) + v) % v
		return m.ReduceSigned(x) == uint64(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddMatchesMod(t *testing.T) {
	m := MustNew(5)
	v := m.Value()
	for a := uint64(0); a <= v; a++ {
		for b := uint64(0); b <= v; b++ {
			if got, want := m.Add(a, b), (a+b)%v; got != want {
				t.Fatalf("Add(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	m := MustNew(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Add out-of-range did not panic")
		}
	}()
	m.Add(m.Value()+1, 0)
}

func TestSubMatchesMod(t *testing.T) {
	m := MustNew(5)
	v := m.Value()
	for a := uint64(0); a <= v; a++ {
		for b := uint64(0); b <= v; b++ {
			want := (a%v + v - b%v) % v
			if got := m.Sub(a, b); got != want {
				t.Fatalf("Sub(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulMod(t *testing.T) {
	m := MustNew(13)
	v := m.Value()
	cases := [][2]uint64{{0, 0}, {1, v}, {v, v}, {v - 1, v - 1}, {12345, 67890}, {1 << 40, 3}}
	for _, tc := range cases {
		want := (tc[0] % v) * (tc[1] % v) % v
		if got := m.MulMod(tc[0], tc[1]); got != want {
			t.Errorf("MulMod(%d,%d) = %d, want %d", tc[0], tc[1], got, want)
		}
	}
}

func TestMulModProperty(t *testing.T) {
	m := MustNew(19)
	v := m.Value()
	f := func(a, b uint64) bool {
		return m.MulMod(a, b) == (a%v)*(b%v)%v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCongruent(t *testing.T) {
	m := MustNew(13)
	if !m.Congruent(0, m.Value()) {
		t.Error("0 and 2^c-1 should be congruent")
	}
	if !m.Congruent(5, 5+7*m.Value()) {
		t.Error("x and x+k·v should be congruent")
	}
	if m.Congruent(1, 2) {
		t.Error("1 and 2 should not be congruent")
	}
}

func TestStringer(t *testing.T) {
	if got, want := MustNew(13).String(), "2^13-1 (8191)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLucasLehmer(t *testing.T) {
	for p := uint(2); p <= 31; p++ {
		want := IsPrimeExponent(p)
		if got := LucasLehmer(p); got != want {
			t.Errorf("LucasLehmer(%d) = %v, want %v", p, got, want)
		}
	}
	if LucasLehmer(0) || LucasLehmer(1) {
		t.Error("LucasLehmer should reject p < 2")
	}
	// A few beyond the table: 61 is a Mersenne-prime exponent, 67 is not
	// (famously, M67 is composite despite 67 prime).
	if !LucasLehmer(61) {
		t.Error("LucasLehmer(61) = false, want true")
	}
	if LucasLehmer(67) {
		t.Error("LucasLehmer(67) = true, want false")
	}
}

func TestInverse(t *testing.T) {
	m := MustNew(13)
	v := m.Value()
	for _, a := range []uint64{1, 2, 45, 4096, v - 1, v + 5} {
		inv, ok := m.Inverse(a)
		if !ok {
			t.Fatalf("Inverse(%d) not found", a)
		}
		if got := m.MulMod(a, inv); got != 1 {
			t.Errorf("a·a⁻¹ = %d, want 1 (a=%d inv=%d)", got, a, inv)
		}
	}
	if _, ok := m.Inverse(0); ok {
		t.Error("Inverse(0) should not exist")
	}
	if _, ok := m.Inverse(v); ok {
		t.Error("Inverse(v) ≡ Inverse(0) should not exist")
	}
}

func TestInverseProperty(t *testing.T) {
	m := MustNew(17)
	f := func(a uint64) bool {
		inv, ok := m.Inverse(a)
		if m.Reduce(a) == 0 {
			return !ok
		}
		return ok && m.MulMod(a, inv) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInverseCompositeModulus(t *testing.T) {
	// 2^4−1 = 15: residues sharing a factor with 15 have no inverse.
	m := MustNew(4)
	if _, ok := m.Inverse(3); ok {
		t.Error("3 invertible mod 15")
	}
	if _, ok := m.Inverse(5); ok {
		t.Error("5 invertible mod 15")
	}
	inv, ok := m.Inverse(2)
	if !ok || m.MulMod(2, inv) != 1 {
		t.Errorf("Inverse(2) mod 15 = (%d,%v)", inv, ok)
	}
}

// TestInverseLocatesSubblockCollision reconstructs the §4 counterexample
// arithmetically: with C = 127 and spacing 45, the colliding column is
// 45⁻¹ ≡ 48 — exactly the Δcol that made the paper's literal conditions
// fail.
func TestInverseLocatesSubblockCollision(t *testing.T) {
	m := MustNew(7)
	inv, ok := m.Inverse(45)
	if !ok || inv != 48 {
		t.Errorf("45⁻¹ mod 127 = (%d,%v), want 48", inv, ok)
	}
}
