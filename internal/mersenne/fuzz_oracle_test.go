package mersenne_test

// External test package: the oracle package imports mersenne, so the
// differential fuzz target must live outside package mersenne to avoid
// an import cycle.

import (
	"testing"

	"primecache/internal/mersenne"
	"primecache/internal/oracle"
)

// FuzzModulusVsBigInt cross-checks the entire end-around-carry residue
// API against the math/big reference for every supported prime exponent.
// The seed corpus mirrors the package's table tests: boundary residues
// (0, 2^c−2, 2^c−1), the paper's 8191-line example, and dense bit
// patterns that exercise multi-stage folds.
func FuzzModulusVsBigInt(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(8190), uint64(8191))
	f.Add(uint64(8191), uint64(8192))
	f.Add(uint64(1)<<63, uint64(1)<<62)
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(0xDEADBEEFCAFEBABE), uint64(0x0123456789ABCDEF))
	f.Fuzz(func(t *testing.T, x, y uint64) {
		for _, c := range mersenne.PrimeExponents() {
			m := mersenne.MustNew(c)
			ref := oracle.MustNewRefModulus(c)
			if got, want := m.Reduce(x), ref.Reduce(x); got != want {
				t.Fatalf("c=%d Reduce(%#x) = %d, want %d", c, x, got, want)
			}
			if got, want := m.ReduceSigned(int64(x)), ref.ReduceSigned(int64(x)); got != want {
				t.Fatalf("c=%d ReduceSigned(%d) = %d, want %d", c, int64(x), got, want)
			}
			if got, want := m.MulMod(x, y), ref.Mul(x, y); got != want {
				t.Fatalf("c=%d MulMod(%#x, %#x) = %d, want %d", c, x, y, got, want)
			}
			if got, want := m.Congruent(x, y), ref.Congruent(x, y); got != want {
				t.Fatalf("c=%d Congruent(%#x, %#x) = %v, want %v", c, x, y, got, want)
			}
			// Add/Sub accept residues only; fold the fuzz inputs in.
			a, b := x%(m.Value()+1), y%(m.Value()+1)
			if got, want := m.Add(a, b), ref.Add(a, b); got != want {
				t.Fatalf("c=%d Add(%d, %d) = %d, want %d", c, a, b, got, want)
			}
			if got, want := m.Sub(a, b), ref.Sub(a, b); got != want {
				t.Fatalf("c=%d Sub(%d, %d) = %d, want %d", c, a, b, got, want)
			}
			inv, ok := m.Inverse(a)
			rinv, rok := ref.Inverse(a)
			if ok != rok || (ok && inv != rinv) {
				t.Fatalf("c=%d Inverse(%d) = (%d, %v), want (%d, %v)", c, a, inv, ok, rinv, rok)
			}
		}
	})
}
