// Package mersenne implements arithmetic modulo Mersenne numbers 2^c − 1
// and a functional model of the prime-mapped cache address-generation
// datapath from Yang & Wu, "A Novel Cache Design for Vector Processing"
// (ISCA 1992), Figure 1.
//
// A Mersenne number M_c = 2^c − 1 has the property 2^c ≡ 1 (mod M_c), so
// reduction of an arbitrary address is a sequence of c-bit additions
// ("folding"), and addition modulo M_c is a single c-bit addition with the
// carry-out wired back into the carry-in (an end-around-carry adder). The
// paper exploits exactly this to generate prime-mapped cache indices in
// parallel with — and no slower than — ordinary address arithmetic.
//
// The package provides:
//
//   - Modulus: a validated modulus 2^c − 1 with Reduce, Add, Sub and MulMod
//     in the canonical residue range [0, 2^c−2].
//   - AddressUnit: the Figure-1 datapath (stride register, index register,
//     start-address registers, multiplexors feeding one c-bit end-around
//     adder) with gate-level cost accounting in adder steps.
//   - Primality utilities, including a Lucas–Lehmer test, so callers can
//     check that a chosen c yields a Mersenne prime.
package mersenne
