package bench

// Delta is one scenario present in both reports.
type Delta struct {
	Name     string
	Old, New Result
	// NsPct is the ns/op change in percent: positive is slower.
	NsPct float64
}

// Comparison is the full diff of two reports, keyed on scenario names.
type Comparison struct {
	// Deltas lists scenarios present in both reports, in the old
	// report's order.
	Deltas []Delta
	// Missing lists scenarios the old report has and the new one lacks
	// — a renamed or dropped scenario must update the baseline
	// explicitly, so a comparison with missing scenarios fails.
	Missing []string
	// Added lists scenarios only the new report has; informational.
	Added []string
}

// CompareReports diffs two reports.
func CompareReports(old, new Report) Comparison {
	var c Comparison
	for _, o := range old.Scenarios {
		n, ok := new.Scenario(o.Name)
		if !ok {
			c.Missing = append(c.Missing, o.Name)
			continue
		}
		d := Delta{Name: o.Name, Old: o, New: n}
		if o.NsPerOp > 0 {
			d.NsPct = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		c.Deltas = append(c.Deltas, d)
	}
	for _, n := range new.Scenarios {
		if _, ok := old.Scenario(n.Name); !ok {
			c.Added = append(c.Added, n.Name)
		}
	}
	return c
}

// Regressions returns the deltas whose ns/op grew by more than tolPct
// percent.
func (c Comparison) Regressions(tolPct float64) []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.NsPct > tolPct {
			out = append(out, d)
		}
	}
	return out
}

// Failed reports whether the comparison should gate a change: any
// scenario regressed beyond tolerance, or the new report dropped a
// scenario the baseline tracks.
func (c Comparison) Failed(tolPct float64) bool {
	return len(c.Regressions(tolPct)) > 0 || len(c.Missing) > 0
}
