// Package bench is the benchmark-regression harness behind cmd/primebench:
// a pinned suite of named scenarios (see Suite), a self-contained
// measurement runner, a BENCH_*.json report codec, and a comparator that
// flags regressions between two reports. The runner is deliberately
// independent of `go test -bench` so the suite can be driven
// programmatically (a one-iteration smoke pass in CI, a full run for a
// committed baseline) and serialised with provenance (git SHA, date, Go
// version) for later comparison.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// SchemaVersion is the report format version; ReadReport rejects
// anything else so `primebench compare` never diffs across formats
// silently.
const SchemaVersion = 1

// Scenario is one named, repeatable measurement.
type Scenario struct {
	// Name identifies the scenario across reports; comparisons are
	// keyed on it. Convention: area/subject/variant.
	Name string
	// Refs is the number of cache references one op issues, for the
	// derived refs/sec throughput metric; 0 when not meaningful.
	Refs int
	// Setup builds fresh scenario state and returns the operation to
	// measure plus an optional cleanup. The op is called once untimed
	// as warm-up, then in timed batches.
	Setup func() (op func() error, cleanup func(), err error)
}

// Options tunes the runner.
type Options struct {
	// MinTime is the minimum measuring time per scenario; the runner
	// doubles the batch size until one timed batch reaches it. Zero or
	// negative means a single iteration — the smoke mode: it validates
	// every scenario end to end but its numbers are meaningless.
	MinTime time.Duration
}

// Result is one scenario's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	// RefsPerSec is the cache-reference throughput, when the scenario
	// declares a per-op reference count.
	RefsPerSec float64 `json:"refsPerSec,omitempty"`
}

// Report is the serialised form of one suite run — the content of a
// BENCH_*.json file.
type Report struct {
	SchemaVersion int    `json:"schemaVersion"`
	GitSHA        string `json:"gitSHA,omitempty"`
	Date          string `json:"date,omitempty"`
	GoVersion     string `json:"goVersion"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	Scenarios     []Result `json:"scenarios"`
}

// Measure runs one scenario: warm-up, then timed batches of doubling
// size until one batch reaches opt.MinTime, reporting the final batch.
// Allocation figures come from the runtime's memstats around the timed
// batch, after a forced GC.
func Measure(s Scenario, opt Options) (Result, error) {
	op, cleanup, err := s.Setup()
	if err != nil {
		return Result{}, err
	}
	if cleanup != nil {
		defer cleanup()
	}
	if err := op(); err != nil { // warm-up, untimed
		return Result{}, err
	}
	var before, after runtime.MemStats
	for n := 1; ; n *= 2 {
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if err := op(); err != nil {
				return Result{}, err
			}
		}
		dt := time.Since(t0)
		runtime.ReadMemStats(&after)
		if dt >= opt.MinTime || n >= 1<<30 {
			r := Result{
				Name:        s.Name,
				Iterations:  n,
				NsPerOp:     float64(dt.Nanoseconds()) / float64(n),
				BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
			}
			if s.Refs > 0 && dt > 0 {
				r.RefsPerSec = float64(s.Refs) * float64(n) / dt.Seconds()
			}
			return r, nil
		}
	}
}

// Run measures every scenario in order and assembles a report with the
// runtime's provenance fields filled in (the caller adds GitSHA and
// Date). progress, when non-nil, is called after each scenario.
func Run(scenarios []Scenario, opt Options, progress func(Result)) (Report, error) {
	rep := Report{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
	}
	for _, s := range scenarios {
		r, err := Measure(s, opt)
		if err != nil {
			return rep, fmt.Errorf("bench: scenario %s: %w", s.Name, err)
		}
		rep.Scenarios = append(rep.Scenarios, r)
		if progress != nil {
			progress(r)
		}
	}
	return rep, nil
}

// Scenario returns the named result, if present.
func (r Report) Scenario(name string) (Result, bool) {
	for _, s := range r.Scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Result{}, false
}

// validate checks the invariants ReadReport relies on.
func (r Report) validate() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("bench: report schema version %d, this tool reads %d", r.SchemaVersion, SchemaVersion)
	}
	seen := make(map[string]bool, len(r.Scenarios))
	for _, s := range r.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("bench: report has an unnamed scenario")
		}
		if seen[s.Name] {
			return fmt.Errorf("bench: report lists scenario %q twice", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// WriteJSON serialises the report, indented, with a trailing newline.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport parses and validates a report.
func DecodeReport(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("bench: %w", err)
	}
	if err := rep.validate(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// ReadReport loads a BENCH_*.json file.
func ReadReport(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	rep, err := DecodeReport(f)
	if err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
