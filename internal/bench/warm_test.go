package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"primecache/internal/cache"
	"primecache/internal/client"
	"primecache/internal/persist"
	"primecache/internal/server"
	"primecache/internal/trace"
)

// warmBenchJob is the job both sides of the speedup test serve: a
// 4-way set-associative organisation (never eligible for the analytic
// closed form, so the cold side must simulate all 128Ki references) at
// a size where compute dwarfs the HTTP round trip.
func warmBenchJob() server.SimulateRequest {
	return server.SimulateRequest{
		Cache:   cache.Spec{Kind: "assoc", Lines: 4096, Ways: 4},
		Pattern: trace.Pattern{Name: "strided", Stride: 17, N: 1 << 16, Stream: 1},
		Passes:  2,
	}
}

// coldCompute is the control: memo and persist both absent, so every op
// recomputes the job from scratch through the pool.
func coldCompute(job server.SimulateRequest) Scenario {
	return Scenario{Name: "test/cold-compute", Setup: func() (func() error, func(), error) {
		srv := server.New(server.Options{MemoEntries: -1})
		ts := httptest.NewServer(srv.Handler())
		c := client.New(ts.URL, client.WithRetries(0), client.WithHTTPClient(ts.Client()))
		cleanup := func() {
			ts.Close()
			srv.Close()
		}
		op := func() error {
			res, err := c.Simulate(context.Background(), job)
			if err != nil {
				return err
			}
			if res.Memoized {
				return fmt.Errorf("cold op was memoized — control is not measuring compute")
			}
			return nil
		}
		return op, cleanup, nil
	}}
}

// warmFromDisk computes the job once on a persist-backed instance,
// restarts onto the same directory with the memoizer disabled, and
// serves every op from the warm-start store.
func warmFromDisk(job server.SimulateRequest) (Scenario, error) {
	dir, err := os.MkdirTemp("", "bench-warm-test-*")
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{Name: "test/warm-from-disk", Setup: func() (func() error, func(), error) {
		store, err := persist.Open(persist.Options{Dir: dir})
		if err != nil {
			return nil, nil, err
		}
		srv1 := server.New(server.Options{Persist: store})
		ts1 := httptest.NewServer(srv1.Handler())
		c1 := client.New(ts1.URL, client.WithRetries(0), client.WithHTTPClient(ts1.Client()))
		if _, err := c1.Simulate(context.Background(), job); err != nil {
			ts1.Close()
			srv1.Close()
			return nil, nil, err
		}
		ts1.Close()
		if err := srv1.Shutdown(context.Background()); err != nil {
			return nil, nil, err
		}
		store2, err := persist.Open(persist.Options{Dir: dir})
		if err != nil {
			return nil, nil, err
		}
		srv2 := server.New(server.Options{Persist: store2, MemoEntries: -1})
		ts2 := httptest.NewServer(srv2.Handler())
		c2 := client.New(ts2.URL, client.WithRetries(0), client.WithHTTPClient(ts2.Client()))
		cleanup := func() {
			ts2.Close()
			srv2.Close()
			os.RemoveAll(dir)
		}
		op := func() error {
			res, err := c2.Simulate(context.Background(), job)
			if err != nil {
				return err
			}
			if !res.Memoized {
				return fmt.Errorf("warm op recomputed instead of hitting the persist tier")
			}
			return nil
		}
		return op, cleanup, nil
	}}, nil
}

// TestWarmRestartSpeedup pins the acceptance bound from the persistence
// design: answering a previously-persisted job after a restart must be
// at least 10× faster than recomputing it. Both sides run the identical
// request through the identical HTTP stack; the only difference is
// whether the answer comes from disk or from 128Ki simulated
// references.
func TestWarmRestartSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	job := warmBenchJob()
	warm, err := warmFromDisk(job)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MinTime: 200 * time.Millisecond}
	coldRes, err := Measure(coldCompute(job), opts)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := Measure(warm, opts)
	if err != nil {
		t.Fatal(err)
	}
	ratio := coldRes.NsPerOp / warmRes.NsPerOp
	t.Logf("cold %.0f ns/op, warm %.0f ns/op, speedup %.1f×", coldRes.NsPerOp, warmRes.NsPerOp, ratio)
	if ratio < 10 {
		t.Errorf("warm restart is only %.1f× faster than cold compute, want ≥ 10×", ratio)
	}
}
