package bench

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestMeasureCountsIterations checks the runner's batching contract: one
// untimed warm-up call, then doubling timed batches, reporting only the
// final batch.
func TestMeasureCountsIterations(t *testing.T) {
	calls := 0
	s := Scenario{Name: "counter", Refs: 10, Setup: func() (func() error, func(), error) {
		return func() error {
			calls++
			time.Sleep(100 * time.Microsecond)
			return nil
		}, nil, nil
	}}
	r, err := Measure(s, Options{MinTime: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations < 2 {
		t.Errorf("iterations = %d, want ≥ 2 for a 100µs op over a 2ms window", r.Iterations)
	}
	// warm-up + 1 + 2 + … + final batch
	want := 1
	for n := 1; n <= r.Iterations; n *= 2 {
		want += n
	}
	if calls != want {
		t.Errorf("op ran %d times, want %d (warm-up plus doubling batches up to %d)", calls, want, r.Iterations)
	}
	if r.NsPerOp <= 0 {
		t.Errorf("NsPerOp = %v, want > 0", r.NsPerOp)
	}
	if r.RefsPerSec <= 0 {
		t.Errorf("RefsPerSec = %v, want > 0 for Refs=10", r.RefsPerSec)
	}
}

// TestMeasureSmokeSingleIteration checks MinTime ≤ 0 runs exactly one
// timed iteration, and that cleanup and setup errors propagate.
func TestMeasureSmokeSingleIteration(t *testing.T) {
	calls, cleaned := 0, false
	s := Scenario{Name: "smoke", Setup: func() (func() error, func(), error) {
		return func() error { calls++; return nil }, func() { cleaned = true }, nil
	}}
	r, err := Measure(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations != 1 || calls != 2 { // warm-up + one timed
		t.Errorf("iterations = %d, op calls = %d; want 1 and 2", r.Iterations, calls)
	}
	if !cleaned {
		t.Error("cleanup did not run")
	}

	_, err = Measure(Scenario{Name: "bad", Setup: func() (func() error, func(), error) {
		return nil, nil, fmt.Errorf("no hardware")
	}}, Options{})
	if err == nil {
		t.Error("setup error did not propagate")
	}
	_, err = Measure(Scenario{Name: "failing-op", Setup: func() (func() error, func(), error) {
		return func() error { return fmt.Errorf("op broke") }, nil, nil
	}}, Options{})
	if err == nil {
		t.Error("op error did not propagate")
	}
}

// TestReportRoundTrip proves the JSON codec is lossless and that
// DecodeReport validates what it accepts.
func TestReportRoundTrip(t *testing.T) {
	rep := Report{
		SchemaVersion: SchemaVersion,
		GitSHA:        "abc1234",
		Date:          "2026-08-06T12:00:00Z",
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		Scenarios: []Result{
			{Name: "a", Iterations: 128, NsPerOp: 812.5, BytesPerOp: 16, AllocsPerOp: 0.5, RefsPerSec: 7.875e7},
			{Name: "b", Iterations: 1, NsPerOp: 31250},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round trip changed the report:\n got %+v\nwant %+v", got, rep)
	}

	for _, bad := range []string{
		`{"schemaVersion": 2, "scenarios": []}`,
		`{"schemaVersion": 1, "scenarios": [{"name": "a"}, {"name": "a"}]}`,
		`{"schemaVersion": 1, "scenarios": [{"name": ""}]}`,
		`not json`,
	} {
		if _, err := DecodeReport(strings.NewReader(bad)); err == nil {
			t.Errorf("DecodeReport accepted %q", bad)
		}
	}
}

// TestCompareRegression uses the checked-in fixtures: BENCH_regressed
// slows one scenario by 60%, drops one, and adds one.
func TestCompareRegression(t *testing.T) {
	old, err := ReadReport("testdata/BENCH_base.json")
	if err != nil {
		t.Fatal(err)
	}
	new, err := ReadReport("testdata/BENCH_regressed.json")
	if err != nil {
		t.Fatal(err)
	}
	c := CompareReports(old, new)
	regs := c.Regressions(15)
	if len(regs) != 1 || regs[0].Name != "cache/prime/strided64/batch" {
		t.Fatalf("regressions = %+v, want exactly cache/prime/strided64/batch", regs)
	}
	if got := regs[0].NsPct; got < 59.9 || got > 60.1 {
		t.Errorf("regression delta = %.2f%%, want 60%%", got)
	}
	if len(c.Missing) != 1 || c.Missing[0] != "cache/direct/strided64/batch" {
		t.Errorf("missing = %v, want [cache/direct/strided64/batch]", c.Missing)
	}
	if len(c.Added) != 1 || c.Added[0] != "cache/prime/analytic-sweep" {
		t.Errorf("added = %v, want [cache/prime/analytic-sweep]", c.Added)
	}
	if !c.Failed(15) {
		t.Error("comparison with a 60% regression and a missing scenario did not fail")
	}
	// A huge tolerance forgives the slowdown but not the dropped scenario.
	if !c.Failed(100) {
		t.Error("missing scenario alone must fail the comparison")
	}
}

// TestCompareWithinTolerance uses the BENCH_ok fixture: every scenario
// within ±8%, nothing missing.
func TestCompareWithinTolerance(t *testing.T) {
	old, err := ReadReport("testdata/BENCH_base.json")
	if err != nil {
		t.Fatal(err)
	}
	new, err := ReadReport("testdata/BENCH_ok.json")
	if err != nil {
		t.Fatal(err)
	}
	c := CompareReports(old, new)
	if len(c.Deltas) != 3 || len(c.Missing) != 0 || len(c.Added) != 0 {
		t.Fatalf("deltas/missing/added = %d/%d/%d, want 3/0/0", len(c.Deltas), len(c.Missing), len(c.Added))
	}
	if c.Failed(15) {
		t.Errorf("comparison failed within tolerance: regressions %+v", c.Regressions(15))
	}
	// The same drift fails under a 5% tolerance (prime slowed 8%).
	if !c.Failed(5) {
		t.Error("8% drift passed a 5% tolerance")
	}
	// Identical reports compare clean at zero tolerance.
	if CompareReports(old, old).Failed(0) {
		t.Error("self-comparison failed")
	}
}

// TestSuiteSmoke runs every pinned scenario once — service scenarios
// included — and checks the assembled report: at least the 8 scenarios
// the baseline contract requires, unique names, and a clean round trip.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke skipped in -short mode")
	}
	scenarios := Suite()
	if len(scenarios) < 8 {
		t.Fatalf("suite has %d scenarios, the baseline contract requires ≥ 8", len(scenarios))
	}
	rep, err := Run(scenarios, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, r := range rep.Scenarios {
		if seen[r.Name] {
			t.Errorf("duplicate scenario name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Iterations != 1 {
			t.Errorf("%s: smoke ran %d iterations, want 1", r.Name, r.Iterations)
		}
		if r.NsPerOp < 0 {
			t.Errorf("%s: NsPerOp = %v", r.Name, r.NsPerOp)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeReport(&buf); err != nil {
		t.Errorf("smoke report does not round trip: %v", err)
	}
}
