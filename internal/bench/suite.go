package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"

	"primecache/internal/cache"
	"primecache/internal/client"
	"primecache/internal/cluster"
	"primecache/internal/persist"
	"primecache/internal/server"
	"primecache/internal/trace"
)

// Suite returns the pinned scenario list. Names are part of the BENCH
// file contract: renaming one makes `primebench compare` report the old
// name missing, which fails — update the committed baseline in the same
// change.
func Suite() []Scenario {
	primeSpec := cache.Spec{Kind: "prime", C: 13}
	scenarios := []Scenario{
		strided64("cache/prime/strided64/per-access", specBuilder(primeSpec), false),
	}
	for _, org := range []struct {
		label string
		spec  cache.Spec
	}{
		{"prime", primeSpec},
		{"direct", cache.Spec{Kind: "direct", Lines: 8192}},
		{"assoc4", cache.Spec{Kind: "assoc", Lines: 8192, Ways: 4}},
		{"skewed", cache.Spec{Kind: "skewed", Lines: 8192}},
		{"victim", cache.Spec{Kind: "victim", Lines: 8192}},
	} {
		scenarios = append(scenarios,
			strided64(fmt.Sprintf("cache/%s/strided64/batch", org.label), specBuilder(org.spec), true))
	}
	scenarios = append(scenarios,
		strided64("cache/prefetch/strided64/batch", buildPrefetch, true),
		replayChunked(primeSpec),
		analyticSweep(primeSpec),
		serviceSimulate("service/simulate/memo-hit", true),
		serviceSimulate("service/simulate/memo-miss", false),
		serviceOverload(),
		serviceWarmRestart(),
		clusterSweepScatter(),
	)
	return scenarios
}

func specBuilder(spec cache.Spec) func() (cache.Sim, error) {
	return spec.Build
}

// buildPrefetch assembles the one organisation Spec.Build cannot: a
// stride-prefetching wrapper over a small direct-mapped cache.
func buildPrefetch() (cache.Sim, error) {
	base, err := cache.NewDirect(256)
	if err != nil {
		return nil, err
	}
	return cache.NewPrefetchCache(base, cache.PrefetchStride, 2)
}

// strided64 measures the paper's canonical vector access — a 64-element
// stride-512 sweep — in steady state (the first pass runs at setup), per
// access or through the devirtualized batch path.
func strided64(name string, build func() (cache.Sim, error), batch bool) Scenario {
	return Scenario{Name: name, Refs: 64, Setup: func() (func() error, func(), error) {
		sim, err := build()
		if err != nil {
			return nil, nil, err
		}
		accs := make([]cache.Access, 64)
		for i := range accs {
			accs[i] = cache.Access{Addr: uint64(i) * 512 * 8, Stream: 1}
		}
		cache.AccessBatch(sim, accs, nil) // warm: steady-state passes only
		if batch {
			bs, ok := sim.(cache.BatchSim)
			if !ok {
				return nil, nil, fmt.Errorf("%s does not implement cache.BatchSim", name)
			}
			return func() error { bs.AccessBatch(accs, nil); return nil }, nil, nil
		}
		return func() error {
			for _, a := range accs {
				sim.Access(a)
			}
			return nil
		}, nil, nil
	}}
}

// replayChunked measures the streaming replay path end to end: a
// 64Ki-reference strided pass through trace.ReplayPattern (cursor +
// fixed-size batches), the loop the server runs for non-vector patterns.
func replayChunked(spec cache.Spec) Scenario {
	const n = 1 << 16
	return Scenario{Name: "cache/prime/replay-chunked-64k", Refs: n, Setup: func() (func() error, func(), error) {
		sim, err := spec.Build()
		if err != nil {
			return nil, nil, err
		}
		p := trace.Pattern{Name: "strided", Stride: 512, N: n, Stream: 1}
		if _, err := trace.ReplayPattern(sim, p, 1); err != nil { // warm + validate
			return nil, nil, err
		}
		return func() error {
			_, err := trace.ReplayPattern(sim, p, 1)
			return err
		}, nil, nil
	}}
}

// analyticSweep measures the closed-form strided-sweep model — the
// O(passes) arithmetic that replaces a 32M-reference simulation for
// qualifying jobs.
func analyticSweep(spec cache.Spec) Scenario {
	return Scenario{Name: "cache/prime/analytic-sweep", Setup: func() (func() error, func(), error) {
		return func() error {
			if _, ok := cache.StridedSweepStats(spec, 9, 512, 1<<22, 8, 1); !ok {
				return fmt.Errorf("closed form declined the sweep")
			}
			return nil
		}, nil, nil
	}}
}

// serviceSimulate measures one /v1/simulate round trip against an
// in-process vcached instance: memo-hit repeats one request (served from
// the memoizer), memo-miss varies the pattern every op (every request
// simulates 2×2048 references).
func serviceSimulate(name string, hit bool) Scenario {
	refs := 2 * 2048
	if hit {
		refs = 0 // memoized: no references are simulated
	}
	return Scenario{Name: name, Refs: refs, Setup: func() (func() error, func(), error) {
		srv := server.New(server.Options{})
		ts := httptest.NewServer(srv.Handler())
		cleanup := func() {
			ts.Close()
			srv.Close()
		}
		client := ts.Client()
		post := func(start uint64) error {
			body, err := json.Marshal(server.SimulateRequest{
				Cache:   cache.Spec{Kind: "prime", C: 7},
				Pattern: trace.Pattern{Name: "strided", Start: start * 1024, Stride: 7, N: 2048},
			})
			if err != nil {
				return err
			}
			resp, err := client.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("simulate status %d", resp.StatusCode)
			}
			return nil
		}
		var seq uint64
		op := func() error {
			var v uint64
			if !hit {
				seq++
				v = seq
			}
			return post(v)
		}
		return op, cleanup, nil
	}}
}

// serviceWarmRestart measures the disk tier end to end: setup computes
// a band of jobs on a vcached instance over a persist directory, shuts
// it down gracefully (fsync + snapshot), then boots a fresh instance on
// the same directory with the in-memory memoizer disabled — so every
// measured op answers a pre-restart job straight from the warm-start
// store (decode, disk lookup, CRC re-verify, respond), never from
// memory and never by recomputing. Compare against
// service/simulate/memo-miss for the cold cost of the same round trip.
func serviceWarmRestart() Scenario {
	const jobs = 8
	return Scenario{Name: "service/vcached-warm-restart", Setup: func() (func() error, func(), error) {
		dir, err := os.MkdirTemp("", "primebench-warm-*")
		if err != nil {
			return nil, nil, err
		}
		fail := func(err error) (func() error, func(), error) {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		reqs := make([]server.SimulateRequest, jobs)
		for i := range reqs {
			reqs[i] = server.SimulateRequest{
				Cache:   cache.Spec{Kind: "assoc", Lines: 4096, Ways: 4},
				Pattern: trace.Pattern{Name: "strided", Stride: int64(7 + 2*i), N: 8192, Stream: 1},
				Passes:  2,
			}
		}
		// First incarnation: compute the band, then shut down cleanly so
		// the directory ends with a snapshot to restore from.
		store, err := persist.Open(persist.Options{Dir: dir})
		if err != nil {
			return fail(err)
		}
		srv1 := server.New(server.Options{Persist: store})
		ts1 := httptest.NewServer(srv1.Handler())
		c1 := client.New(ts1.URL, client.WithRetries(0), client.WithHTTPClient(ts1.Client()))
		for _, rq := range reqs {
			if _, err := c1.Simulate(context.Background(), rq); err != nil {
				ts1.Close()
				srv1.Close()
				return fail(fmt.Errorf("warm-restart setup compute: %w", err))
			}
		}
		ts1.Close()
		if err := srv1.Shutdown(context.Background()); err != nil {
			return fail(err)
		}
		store2, err := persist.Open(persist.Options{Dir: dir})
		if err != nil {
			return fail(err)
		}
		srv2 := server.New(server.Options{Persist: store2, MemoEntries: -1})
		ts2 := httptest.NewServer(srv2.Handler())
		c2 := client.New(ts2.URL, client.WithRetries(0), client.WithHTTPClient(ts2.Client()))
		cleanup := func() {
			ts2.Close()
			srv2.Close()
			os.RemoveAll(dir)
		}
		var seq int
		op := func() error {
			rq := reqs[seq%jobs]
			seq++
			res, err := c2.Simulate(context.Background(), rq)
			if err != nil {
				return err
			}
			if !res.Memoized {
				return fmt.Errorf("warm restart recomputed stride %d instead of serving it from disk", rq.Pattern.Stride)
			}
			return nil
		}
		return op, cleanup, nil
	}}
}

// clusterSweepScatter measures the coordinator's scatter-gather path:
// one op sends a 48-job sweep through a 3-backend in-process cluster.
// The jobs repeat across ops, so after the warm-up every backend answers
// its shard from its memoizer — the number tracks pure cluster overhead
// (routing, fan-out over loopback HTTP, ordered merge), the fixed cost
// sharding adds on top of single-node serving.
func clusterSweepScatter() Scenario {
	const jobs = 48
	return Scenario{Name: "cluster/sweep-scatter", Setup: func() (func() error, func(), error) {
		lc, err := cluster.StartLocal(3, server.Options{}, cluster.Options{
			ProbeInterval: -1,
			HedgeAfter:    -1,
		})
		if err != nil {
			return nil, nil, err
		}
		var req server.SweepRequest
		for i := 0; i < jobs; i++ {
			req.Jobs = append(req.Jobs, server.SweepJob{Simulate: &server.SimulateRequest{
				Cache:   cache.Spec{Kind: "prime", C: 7},
				Pattern: trace.Pattern{Name: "strided", Stride: int64(3 + 2*i), N: 1024, Stream: 1},
			}})
		}
		c := client.New(lc.URL(), client.WithRetries(0))
		op := func() error {
			results, err := c.Sweep(context.Background(), req)
			if err != nil {
				return err
			}
			if len(results) != jobs {
				return fmt.Errorf("cluster sweep returned %d of %d results", len(results), jobs)
			}
			for _, r := range results {
				if r.Error != "" {
					return fmt.Errorf("cluster sweep job %d failed: %s", r.Index, r.Error)
				}
			}
			return nil
		}
		return op, lc.Close, nil
	}}
}

// serviceOverload measures vcached throughput at 4× pool saturation:
// every op fires 8 concurrent distinct simulate requests at a 2-worker,
// zero-backlog instance through the typed client (no retries). Admitted
// requests simulate; the rest exercise the shed fast path — both
// outcomes count, so the number tracks how much useful work plus
// rejection the valve sustains per second under sustained overload.
func serviceOverload() Scenario {
	const (
		workers    = 2
		concurrent = 4 * workers
		jobRefs    = 2 * 2048
	)
	return Scenario{Name: "service/vcached-overload", Refs: concurrent * jobRefs, Setup: func() (func() error, func(), error) {
		srv := server.New(server.Options{Workers: workers, QueueDepth: -1})
		ts := httptest.NewServer(srv.Handler())
		cleanup := func() {
			ts.Close()
			srv.Close()
		}
		c := client.New(ts.URL, client.WithRetries(0), client.WithHTTPClient(ts.Client()))
		var seq uint64
		op := func() error {
			base := seq
			seq += concurrent
			errs := make(chan error, concurrent)
			for i := 0; i < concurrent; i++ {
				go func(start uint64) {
					_, err := c.Simulate(context.Background(), server.SimulateRequest{
						Cache:   cache.Spec{Kind: "prime", C: 7},
						Pattern: trace.Pattern{Name: "strided", Start: start * 1024, Stride: 7, N: 2048},
					})
					var ce *client.Error
					if err != nil && errors.As(err, &ce) && ce.Code == server.CodeOverloaded {
						err = nil // shedding is the scenario, not a failure
					}
					errs <- err
				}(base + uint64(i))
			}
			for i := 0; i < concurrent; i++ {
				if err := <-errs; err != nil {
					return err
				}
			}
			return nil
		}
		return op, cleanup, nil
	}}
}
