package membank

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("accepted 0 banks")
	}
	if _, err := New(3, 4); err == nil {
		t.Error("accepted non-power-of-two banks")
	}
	if _, err := New(8, 0); err == nil {
		t.Error("accepted zero access time")
	}
	s, err := New(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Banks() != 32 || s.AccessTime() != 8 || s.Log2Banks() != 5 {
		t.Errorf("Banks=%d AccessTime=%d Log2=%d", s.Banks(), s.AccessTime(), s.Log2Banks())
	}
}

func TestBankOf(t *testing.T) {
	s := MustNew(8, 4)
	for w := uint64(0); w < 32; w++ {
		if got := s.BankOf(w); got != int(w%8) {
			t.Errorf("BankOf(%d) = %d, want %d", w, got, w%8)
		}
	}
}

func TestUnitStrideNoStalls(t *testing.T) {
	// t_m < M: a unit-stride stream returns to a bank after M cycles,
	// well past its t_m busy window — fully pipelined, zero stalls.
	s := MustNew(32, 8)
	r := s.VectorLoad(0, 1, 256)
	if r.StallCycles != 0 {
		t.Errorf("unit stride stalls = %d, want 0", r.StallCycles)
	}
	if r.FinishCycle != 255+8 {
		t.Errorf("finish = %d, want 263", r.FinishCycle)
	}
}

func TestStrideMStallsEveryElement(t *testing.T) {
	// Stride M hits the same bank every access: each of the n−1 later
	// elements waits the full t_m − 1 extra cycles.
	s := MustNew(32, 8)
	n := 64
	r := s.VectorLoad(0, 32, n)
	want := int64((n - 1) * (8 - 1))
	if r.StallCycles != want {
		t.Errorf("stride-M stalls = %d, want %d", r.StallCycles, want)
	}
}

func TestPowerOfTwoStrideSteadyState(t *testing.T) {
	// Stride 8 in 32 banks visits 4 banks; with t_m = 8 the sweep of 4
	// issues must stretch to 8 cycles: steady-state issue interval
	// t_m/k = 2 cycles/element → stalls ≈ n·(t_m−k)/k.
	s := MustNew(32, 8)
	n := 128
	r := s.VectorLoad(0, 8, n)
	ideal := int64(n - 1)
	got := r.StallCycles
	// Exact steady state: element i issues at cycle 2i (after warm-up of
	// 4 elements issued back-to-back then throttled).
	if got < ideal-8 || got > ideal+8 {
		t.Errorf("stride-8 stalls = %d, want ≈ %d (t_m/k=2 per element)", got, ideal)
	}
}

func TestOddStrideConflictFree(t *testing.T) {
	// Any odd stride visits all 32 banks: revisit interval 32 > t_m = 8.
	s := MustNew(32, 8)
	for _, stride := range []int64{1, 3, 5, 7, 9, 31, 33} {
		s.Reset()
		if r := s.VectorLoad(5, stride, 256); r.StallCycles != 0 {
			t.Errorf("odd stride %d stalls = %d, want 0", stride, r.StallCycles)
		}
	}
}

func TestNegativeStride(t *testing.T) {
	s := MustNew(32, 8)
	if r := s.VectorLoad(1024, -1, 64); r.StallCycles != 0 {
		t.Errorf("reverse unit stride stalls = %d, want 0", r.StallCycles)
	}
	s.Reset()
	if r := s.VectorLoad(1024, -32, 16); r.StallCycles == 0 {
		t.Error("reverse stride-M should stall")
	}
}

func TestVectorLoadEmpty(t *testing.T) {
	s := MustNew(8, 4)
	if r := s.VectorLoad(0, 1, 0); r != (LoadResult{}) {
		t.Errorf("empty load = %+v", r)
	}
}

func TestResetClearsBusy(t *testing.T) {
	s := MustNew(8, 16)
	s.VectorLoad(0, 8, 8) // hammer bank 0
	s.Reset()
	if r := s.VectorLoad(0, 1, 8); r.StallCycles != 0 {
		t.Errorf("stalls after Reset = %d, want 0", r.StallCycles)
	}
}

func TestDualLoadDisjointBanksNoInterference(t *testing.T) {
	// Stream 1 on even banks (stride 2 from 0), stream 2 on odd banks
	// (stride 2 from 1): 16 banks each, t_m = 8 < 16 → no stalls at all.
	s := MustNew(32, 8)
	r1, r2 := s.DualLoad(0, 2, 64, 1, 2, 64)
	if r1.StallCycles != 0 || r2.StallCycles != 0 {
		t.Errorf("disjoint dual streams stalled: %d, %d", r1.StallCycles, r2.StallCycles)
	}
}

func TestDualLoadSameBankInterferes(t *testing.T) {
	// Both streams hammering bank 0 serialise completely.
	s := MustNew(32, 8)
	r1, r2 := s.DualLoad(0, 32, 16, 0, 32, 16)
	if r1.StallCycles+r2.StallCycles == 0 {
		t.Error("same-bank dual streams should interfere")
	}
	single := MustNew(32, 8)
	sr := single.VectorLoad(0, 32, 16)
	if r2.StallCycles <= sr.StallCycles {
		t.Errorf("cross-interference (%d) should exceed self-only stalls (%d)", r2.StallCycles, sr.StallCycles)
	}
}

func TestDualLoadZeroLengthStreams(t *testing.T) {
	s := MustNew(8, 4)
	r1, r2 := s.DualLoad(0, 1, 4, 0, 1, 0)
	if r2 != (LoadResult{}) {
		t.Errorf("empty second stream = %+v", r2)
	}
	if r1.Elements != 4 || r1.StallCycles != 0 {
		t.Errorf("first stream = %+v", r1)
	}
}

func TestBanksVisited(t *testing.T) {
	cases := []struct {
		banks  int
		stride int64
		want   int
	}{
		{32, 1, 32}, {32, 2, 16}, {32, 4, 8}, {32, 8, 4}, {32, 16, 2}, {32, 32, 1},
		{32, 3, 32}, {32, 6, 16}, {32, 0, 1}, {32, -2, 16}, {32, 64, 1}, {32, 33, 32},
		{64, 48, 4},
	}
	for _, tc := range cases {
		if got := BanksVisited(tc.banks, tc.stride); got != tc.want {
			t.Errorf("BanksVisited(%d,%d) = %d, want %d", tc.banks, tc.stride, got, tc.want)
		}
	}
}

func TestStallsGrowWithAccessTime(t *testing.T) {
	// Baily's observation: the same stride pattern stalls more as the
	// processor–memory speed gap widens.
	prev := int64(-1)
	for _, tm := range []int{4, 8, 16, 32} {
		s := MustNew(32, tm)
		r := s.VectorLoad(0, 16, 128)
		if r.StallCycles < prev {
			t.Errorf("t_m=%d stalls %d < previous %d", tm, r.StallCycles, prev)
		}
		prev = r.StallCycles
	}
}

func TestPrimeBankedValidation(t *testing.T) {
	if _, err := NewPrimeBanked(1, 4); err == nil {
		t.Error("accepted 1 bank")
	}
	if _, err := NewPrimeBanked(61, 0); err == nil {
		t.Error("accepted zero access time")
	}
	s, err := NewPrimeBanked(61, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Banks() != 61 {
		t.Errorf("Banks = %d", s.Banks())
	}
}

func TestPrimeBankedBankOf(t *testing.T) {
	s, _ := NewPrimeBanked(61, 8)
	for w := uint64(0); w < 200; w++ {
		if got := s.BankOf(w); got != int(w%61) {
			t.Fatalf("BankOf(%d) = %d, want %d", w, got, w%61)
		}
	}
}

// TestPrimeBankedPowerOfTwoStrides is the Budnik–Kuck point the paper
// builds on: power-of-two strides, fatal for 2^m interleaving, spread over
// all banks when the bank count is prime.
func TestPrimeBankedPowerOfTwoStrides(t *testing.T) {
	prime, _ := NewPrimeBanked(61, 8)
	pow2, _ := New(64, 8)
	for _, stride := range []int64{2, 4, 8, 16, 32, 64, 128} {
		prime.Reset()
		pow2.Reset()
		pr := prime.VectorLoad(0, stride, 256)
		cr := pow2.VectorLoad(0, stride, 256)
		if pr.StallCycles != 0 {
			t.Errorf("prime banks stalled %d cycles at stride %d", pr.StallCycles, stride)
		}
		if stride >= 16 && cr.StallCycles == 0 {
			t.Errorf("2^m banks did not stall at stride %d", stride)
		}
	}
}

func TestPrimeBankedWorstStride(t *testing.T) {
	// Stride = bank count collapses onto one bank, prime or not.
	s, _ := NewPrimeBanked(61, 8)
	r := s.VectorLoad(0, 61, 32)
	if want := int64(31 * 7); r.StallCycles != want {
		t.Errorf("stalls = %d, want %d", r.StallCycles, want)
	}
}

func TestPrimeBankedNegativeStride(t *testing.T) {
	s, _ := NewPrimeBanked(61, 8)
	if r := s.VectorLoad(1<<20, -8, 128); r.StallCycles != 0 {
		t.Errorf("reverse power-of-two stride stalled %d cycles", r.StallCycles)
	}
}

func TestBanksVisitedPrime(t *testing.T) {
	if got := BanksVisited(61, 8); got != 61 {
		t.Errorf("BanksVisited(61,8) = %d, want 61", got)
	}
	if got := BanksVisited(61, 61); got != 1 {
		t.Errorf("BanksVisited(61,61) = %d, want 1", got)
	}
	if got := BanksVisited(61, 122); got != 1 {
		t.Errorf("BanksVisited(61,122) = %d, want 1", got)
	}
}

func TestEffectiveBandwidth(t *testing.T) {
	cases := []struct {
		banks, tm int
		stride    int64
		want      float64
	}{
		{32, 8, 1, 1},
		{32, 8, 8, 0.5},   // 4 banks / 8 cycles
		{32, 8, 16, 0.25}, // 2 banks
		{32, 8, 32, 1.0 / 8},
		{32, 8, 3, 1},
		{61, 8, 8, 1}, // prime banks: full bandwidth (61 banks visited)
	}
	for _, tc := range cases {
		if got := EffectiveBandwidth(tc.banks, tc.tm, tc.stride); got != tc.want {
			t.Errorf("EffectiveBandwidth(%d,%d,%d) = %v, want %v", tc.banks, tc.tm, tc.stride, got, tc.want)
		}
	}
}

// TestEffectiveBandwidthMatchesSimulation validates the closed form
// against the event-driven simulator in steady state.
func TestEffectiveBandwidthMatchesSimulation(t *testing.T) {
	const n = 4096
	for _, banks := range []int{32, 64} {
		for _, tm := range []int{4, 8, 16} {
			for _, stride := range []int64{1, 2, 4, 8, 16, 32, 3, 5, 12} {
				s := MustNew(banks, tm)
				r := s.VectorLoad(0, stride, n)
				measured := float64(n) / float64(int64(n)+r.StallCycles)
				want := EffectiveBandwidth(banks, tm, stride)
				if measured < want*0.9 || measured > want*1.1 {
					t.Errorf("M=%d tm=%d s=%d: simulated bw %v, closed form %v", banks, tm, stride, measured, want)
				}
			}
		}
	}
}

func TestMultiLoadMatchesDualLoad(t *testing.T) {
	a := MustNew(32, 8)
	b := MustNew(32, 8)
	r1a, r2a := a.DualLoad(0, 3, 64, 1000, 5, 64)
	rs := b.MultiLoad([]StreamSpec{{0, 3, 64}, {1000, 5, 64}})
	if rs[0] != r1a || rs[1] != r2a {
		t.Errorf("MultiLoad %+v, DualLoad (%+v, %+v)", rs, r1a, r2a)
	}
}

func TestMultiLoadEmpty(t *testing.T) {
	s := MustNew(8, 4)
	rs := s.MultiLoad([]StreamSpec{{0, 1, 0}, {0, 1, 4}})
	if rs[0] != (LoadResult{}) {
		t.Errorf("empty stream = %+v", rs[0])
	}
	if rs[1].Elements != 4 {
		t.Errorf("stream 1 = %+v", rs[1])
	}
}

// TestMultiStreamContentionGrows is Bailey's point: with t_m comparable to
// M, each added unit-stride stream steals bandwidth and per-stream stalls
// grow quickly even though a single stream runs stall-free.
func TestMultiStreamContentionGrows(t *testing.T) {
	const n = 512
	prev := int64(-1)
	for _, k := range []int{1, 2, 4, 8} {
		s := MustNew(64, 32)
		specs := make([]StreamSpec, k)
		for i := range specs {
			specs[i] = StreamSpec{Start: uint64(i * 7), Stride: 1, N: n}
		}
		rs := s.MultiLoad(specs)
		var total int64
		for _, r := range rs {
			total += r.StallCycles
		}
		perStream := total / int64(k)
		if perStream < prev {
			t.Errorf("k=%d: per-stream stalls %d fell below k-1's %d", k, perStream, prev)
		}
		prev = perStream
		if k == 1 && total != 0 {
			t.Errorf("single unit-stride stream stalled %d", total)
		}
		if k == 8 && perStream == 0 {
			t.Error("8 streams on 64 banks with t_m=32 should contend")
		}
	}
}

func TestVectorStoreReservesBanks(t *testing.T) {
	s := MustNew(32, 8)
	// Stores to bank 0 every cycle delay a following read of bank 0.
	s.VectorStore(0, 32, 8)
	r := s.VectorLoad(0, 32, 4)
	if r.StallCycles == 0 {
		t.Error("read after store burst should stall on busy bank")
	}
}

func TestReadWriteInterference(t *testing.T) {
	s := MustNew(32, 8)
	// Disjoint banks: even-bank writes, odd-bank reads → no stalls.
	if got := s.ReadWriteInterference(1, 2, 0, 2, 64); got != 0 {
		t.Errorf("disjoint read/write stalls = %d, want 0", got)
	}
	// Same single bank: heavy interference.
	if got := s.ReadWriteInterference(0, 32, 0, 32, 16); got == 0 {
		t.Error("same-bank read/write should interfere")
	}
	// State is reset afterwards.
	if r := s.VectorLoad(0, 1, 32); r.StallCycles != 0 {
		t.Errorf("state leaked: %d stalls", r.StallCycles)
	}
}
