package membank_test

// External test package: the oracle package imports membank, so the
// brute-force fuzz target must live outside package membank to avoid an
// import cycle.

import (
	"testing"

	"primecache/internal/membank"
	"primecache/internal/oracle"
)

// FuzzBankModelVsBruteForce checks the busy-till vector-load model and
// the closed-form BanksVisited against the oracle's reservation-list
// brute force, for both power-of-two interleaving and the §2.3
// prime-banked organisation. Seeds mirror the package's table tests:
// unit stride, the all-conflict bank-count stride, an odd conflict-free
// stride, and a negative sweep.
func FuzzBankModelVsBruteForce(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint64(0), int64(1), uint16(64))
	f.Add(uint8(3), uint8(8), uint64(0), int64(8), uint16(32))
	f.Add(uint8(4), uint8(6), uint64(100), int64(17), uint16(100))
	f.Add(uint8(2), uint8(3), uint64(1000), int64(-3), uint16(50))
	f.Fuzz(func(t *testing.T, m, tmRaw uint8, start uint64, stride int64, nRaw uint16) {
		banks := 1 << (1 + int(m)%6) // 2..64
		tm := 1 + int(tmRaw)%16
		n := int(nRaw) % 512
		start %= 1 << 40
		if stride > 1<<20 {
			stride = 1 << 20
		}
		if stride < -(1 << 20) {
			stride = -(1 << 20)
		}

		sys, err := membank.New(banks, tm)
		if err != nil {
			t.Fatal(err)
		}
		got := sys.VectorLoad(start, stride, n)
		want := oracle.RefVectorLoad(banks, tm, start, stride, n)
		if got != want {
			t.Fatalf("pow2 banks=%d tm=%d start=%d stride=%d n=%d: fast %+v, brute force %+v",
				banks, tm, start, stride, n, got, want)
		}
		if gv, wv := membank.BanksVisited(banks, stride), oracle.RefBanksVisited(banks, stride); gv != wv {
			t.Fatalf("BanksVisited(%d, %d) = %d, brute force %d", banks, stride, gv, wv)
		}

		// Prime-banked variant: same decode law with a non-power-of-two
		// modulus; 2^m − 1 is a convenient odd bank count.
		pbanks := banks - 1
		if pbanks >= 2 {
			psys, err := membank.NewPrimeBanked(pbanks, tm)
			if err != nil {
				t.Fatal(err)
			}
			got := psys.VectorLoad(start, stride, n)
			want := oracle.RefVectorLoad(pbanks, tm, start, stride, n)
			if got != want {
				t.Fatalf("prime banks=%d tm=%d start=%d stride=%d n=%d: fast %+v, brute force %+v",
					pbanks, tm, start, stride, n, got, want)
			}
		}
	})
}
