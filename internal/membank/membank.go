// Package membank simulates the low-order-bit interleaved memory system of
// the paper's machine models (Figures 2 and 3): M = 2^m banks with access
// time t_m processor cycles, fed by pipelined buses that carry one word per
// cycle. Word w lives in bank w mod M, so a stride-s vector sweep visits
// M/gcd(M,s) distinct banks and stalls whenever it returns to a bank sooner
// than t_m cycles after the previous access — the memory-side analogue of
// cache line interference, and the reason the paper's MM-model degrades for
// non-unit strides.
package membank

import (
	"fmt"
	"math/bits"
)

// System is an event-driven simulator of an interleaved memory system. It
// is not safe for concurrent use.
type System struct {
	banks    int
	tm       int64
	mask     uint64
	isPow2   bool
	busyTill []int64 // cycle at which each bank next accepts a request
}

// New returns a memory system with banks banks (a power of two, matching
// the low-order-bit interleaving the paper assumes) and access time tm
// cycles per bank request.
func New(banks, tm int) (*System, error) {
	if banks <= 0 || banks&(banks-1) != 0 {
		return nil, fmt.Errorf("membank: banks must be a positive power of two, got %d", banks)
	}
	if tm <= 0 {
		return nil, fmt.Errorf("membank: access time must be positive, got %d", tm)
	}
	return &System{banks: banks, tm: int64(tm), mask: uint64(banks - 1), isPow2: true, busyTill: make([]int64, banks)}, nil
}

// NewPrimeBanked returns a memory system with a prime number of banks,
// word w in bank w mod banks — the Budnik–Kuck / Burroughs BSP / Lawrie–
// Vora organisation the paper's §2.3 traces its idea to. Power-of-two
// strides (the usual FFT offenders) then spread over all banks, at the
// cost of the modulo in the address path that those designs paid hardware
// for and that prime *cache* mapping avoids. Any bank count ≥ 2 is
// accepted; primality is the caller's interest, not a mechanical
// requirement.
func NewPrimeBanked(banks, tm int) (*System, error) {
	if banks < 2 {
		return nil, fmt.Errorf("membank: need at least 2 banks, got %d", banks)
	}
	if tm <= 0 {
		return nil, fmt.Errorf("membank: access time must be positive, got %d", tm)
	}
	return &System{banks: banks, tm: int64(tm), busyTill: make([]int64, banks)}, nil
}

// MustNew is New but panics on error.
func MustNew(banks, tm int) *System {
	s, err := New(banks, tm)
	if err != nil {
		panic(err)
	}
	return s
}

// Banks returns the number of banks.
func (s *System) Banks() int { return s.banks }

// AccessTime returns t_m in cycles.
func (s *System) AccessTime() int { return int(s.tm) }

// Reset clears all bank busy state.
func (s *System) Reset() {
	for i := range s.busyTill {
		s.busyTill[i] = 0
	}
}

// BankOf returns the bank holding word address w.
func (s *System) BankOf(word uint64) int {
	if s.isPow2 {
		return int(word & s.mask)
	}
	return int(word % uint64(s.banks))
}

// bankOfSigned maps a possibly negative running address to its bank.
func (s *System) bankOfSigned(addr int64) int {
	if s.isPow2 {
		return int(uint64(addr) & s.mask)
	}
	m := addr % int64(s.banks)
	if m < 0 {
		m += int64(s.banks)
	}
	return int(m)
}

// issue requests the bank at the earliest cycle ≥ t, marks it busy for t_m
// cycles, and returns the actual issue cycle.
func (s *System) issue(bank int, t int64) int64 {
	if s.busyTill[bank] > t {
		t = s.busyTill[bank]
	}
	s.busyTill[bank] = t + s.tm
	return t
}

// LoadResult reports the outcome of a simulated vector load.
type LoadResult struct {
	// Elements is the vector length issued.
	Elements int
	// FinishCycle is the cycle the last element's data arrives.
	FinishCycle int64
	// StallCycles is the total issue slip versus a perfectly pipelined
	// one-element-per-cycle stream (last issue cycle − (Elements−1)).
	StallCycles int64
}

// VectorLoad simulates a single-stream strided load of n words starting at
// word address start, one request per cycle on one read bus, starting at
// cycle 0. It mutates bank state; call Reset between independent
// experiments.
func (s *System) VectorLoad(start uint64, stride int64, n int) LoadResult {
	if n <= 0 {
		return LoadResult{}
	}
	t := int64(0)
	var last int64
	addr := int64(start)
	for i := 0; i < n; i++ {
		bank := s.bankOfSigned(addr)
		last = s.issue(bank, t)
		t = last + 1 // the bus issues at most one request per cycle
		addr += stride
	}
	return LoadResult{Elements: n, FinishCycle: last + s.tm, StallCycles: last - int64(n-1)}
}

// DualLoad simulates two concurrent strided streams (the paper's
// double-stream case) on the two read buses: in each cycle each bus may
// issue one request, but a bank accepts a new request only t_m cycles after
// the previous one. When both streams want the same bank in the same cycle
// the first stream wins. It returns per-stream results; stalls are counted
// against the same one-per-cycle ideal.
func (s *System) DualLoad(start1 uint64, stride1 int64, n1 int, start2 uint64, stride2 int64, n2 int) (LoadResult, LoadResult) {
	t1, t2 := int64(0), int64(0)
	var last1, last2 int64
	a1, a2 := int64(start1), int64(start2)
	i1, i2 := 0, 0
	for i1 < n1 || i2 < n2 {
		// Issue in global time order so bank reservations interleave the
		// way two synchronous buses would; stream 1 wins ties.
		if i1 < n1 && (i2 >= n2 || t1 <= t2) {
			bank := s.bankOfSigned(a1)
			last1 = s.issue(bank, t1)
			t1 = last1 + 1
			a1 += stride1
			i1++
		} else if i2 < n2 {
			bank := s.bankOfSigned(a2)
			last2 = s.issue(bank, t2)
			t2 = last2 + 1
			a2 += stride2
			i2++
		}
	}
	r1 := LoadResult{Elements: n1, FinishCycle: last1 + s.tm, StallCycles: last1 - int64(max(n1-1, 0))}
	r2 := LoadResult{Elements: n2, FinishCycle: last2 + s.tm, StallCycles: last2 - int64(max(n2-1, 0))}
	if n1 == 0 {
		r1 = LoadResult{}
	}
	if n2 == 0 {
		r2 = LoadResult{}
	}
	return r1, r2
}

// BanksVisited returns M/gcd(M, s), the number of distinct banks a stride-s
// sweep touches (Oed & Lange); stride 0 visits one bank.
func BanksVisited(banks int, stride int64) int {
	if stride < 0 {
		stride = -stride
	}
	if stride == 0 {
		return 1
	}
	return banks / gcd(banks, int(stride%int64(banks)+int64(banks))%banks)
}

func gcd(a, b int) int {
	if a == 0 {
		return b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// Log2Banks returns m = log2(M).
func (s *System) Log2Banks() int { return bits.TrailingZeros(uint(s.banks)) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// EffectiveBandwidth returns the steady-state words per cycle a stride-s
// stream achieves against this organisation (Oed & Lange): a sweep visits
// k = M/gcd(M, s) banks, so the issue rate is capped at k/t_m when the
// revisit interval k is shorter than the bank busy time, and at the full
// one word per cycle otherwise.
func EffectiveBandwidth(banks, tm int, stride int64) float64 {
	k := float64(BanksVisited(banks, stride))
	if k >= float64(tm) {
		return 1
	}
	return k / float64(tm)
}

// StreamSpec describes one stream for MultiLoad.
type StreamSpec struct {
	Start  uint64
	Stride int64
	N      int
}

// MultiLoad simulates k concurrent strided streams, one bus each — the
// multiple-vector-stream scenario of Bailey that the paper's introduction
// cites: even hundreds of banks cannot feed many concurrent streams. Each
// cycle every bus may issue one request in stream order; a bank accepts a
// new request only t_m cycles after the previous. Ties go to the
// lower-numbered stream. It returns per-stream results.
func (s *System) MultiLoad(specs []StreamSpec) []LoadResult {
	k := len(specs)
	t := make([]int64, k)
	last := make([]int64, k)
	addr := make([]int64, k)
	idx := make([]int, k)
	for i, sp := range specs {
		addr[i] = int64(sp.Start)
	}
	for {
		// Pick the stream with the smallest next issue time that still
		// has work; lower index wins ties.
		best := -1
		for i := range specs {
			if idx[i] >= specs[i].N {
				continue
			}
			if best == -1 || t[i] < t[best] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		bank := s.bankOfSigned(addr[best])
		last[best] = s.issue(bank, t[best])
		t[best] = last[best] + 1
		addr[best] += specs[best].Stride
		idx[best]++
	}
	out := make([]LoadResult, k)
	for i, sp := range specs {
		if sp.N <= 0 {
			continue
		}
		out[i] = LoadResult{Elements: sp.N, FinishCycle: last[i] + s.tm, StallCycles: last[i] - int64(sp.N-1)}
	}
	return out
}

// VectorStore simulates a strided store stream on the write bus: one
// request per cycle, each occupying its bank for t_m cycles, sharing bank
// state with any reads simulated on the same System. With the paper's
// write buffers the processor never stalls on the store itself, so no
// stall count is returned — but the bank reservations it leaves behind
// delay subsequent reads, which is the coupling ReadWriteInterference
// measures.
func (s *System) VectorStore(start uint64, stride int64, n int) {
	t := int64(0)
	addr := int64(start)
	for i := 0; i < n; i++ {
		bank := s.bankOfSigned(addr)
		t = s.issue(bank, t) + 1
		addr += stride
	}
}

// ReadWriteInterference measures the read-stream stalls caused by a
// concurrent store stream on the write bus: it simulates the store stream
// first (reserving banks), then the read stream, and returns the read
// stalls. With disjoint banks the result is 0; with colliding strides the
// writes steal bank cycles the paper's write-buffer argument otherwise
// hides.
func (s *System) ReadWriteInterference(readStart uint64, readStride int64, writeStart uint64, writeStride int64, n int) int64 {
	s.Reset()
	s.VectorStore(writeStart, writeStride, n)
	r := s.VectorLoad(readStart, readStride, n)
	s.Reset()
	return r.StallCycles
}
