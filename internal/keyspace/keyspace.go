// Package keyspace defines the cluster's shared key-hash space: the
// Mersenne-prime ring positions every tier agrees on, plus the arc
// (range) arithmetic the warm-migration protocol uses to describe which
// slices of the ring moved between two ring generations.
//
// It is a leaf package on purpose. The consistent-hash ring lives in
// internal/cluster, but a backend server must be able to evaluate "does
// this key fall in the arcs the coordinator asked for" without
// importing the cluster package (which imports the server package).
// Both sides import keyspace instead, so a key hashes identically on
// the coordinator and on every backend.
package keyspace

import (
	"fmt"
	"strconv"
	"strings"
)

// Modulus is the size of the hash space: the Mersenne prime 2³¹−1, the
// same modulus family the simulated cache uses for set mapping. Ring
// positions are in [0, Modulus).
const Modulus = 1<<31 - 1

// Hash maps a string into the prime-sized ring space: FNV-1a over the
// bytes, a 64-bit avalanche finalizer (FNV alone leaves the hashes of
// near-identical strings — vnode labels differ only in a digit or two —
// strongly correlated), folded by the Mersenne modulus.
func Hash(s string) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return uint32(h % Modulus)
}

// Range is one arc of the ring, half-open on the left: it contains the
// positions in (Lo, Hi], walking clockwise from Lo. Lo >= Hi means the
// arc wraps through zero; in particular Lo == Hi denotes the full
// circle (walking clockwise from Lo all the way back to it).
type Range struct {
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
}

// Contains reports whether position h lies on the arc.
func (r Range) Contains(h uint32) bool {
	if r.Lo < r.Hi {
		return h > r.Lo && h <= r.Hi
	}
	return h > r.Lo || h <= r.Hi
}

// String renders the arc as "lo-hi" (decimal), the wire form the
// export endpoint's owner parameter carries.
func (r Range) String() string {
	return strconv.FormatUint(uint64(r.Lo), 10) + "-" + strconv.FormatUint(uint64(r.Hi), 10)
}

// Ranges is a set of arcs; a key belongs to the set when any arc
// contains its hash.
type Ranges []Range

// Contains reports whether any arc contains position h.
func (rs Ranges) Contains(h uint32) bool {
	for _, r := range rs {
		if r.Contains(h) {
			return true
		}
	}
	return false
}

// ContainsKey reports whether any arc contains Hash(key).
func (rs Ranges) ContainsKey(key string) bool { return rs.Contains(Hash(key)) }

// String renders the set as comma-joined "lo-hi" arcs.
func (rs Ranges) String() string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// ParseRanges parses the wire form produced by Ranges.String: one or
// more comma-separated "lo-hi" decimal arcs, each endpoint within the
// modulus.
func ParseRanges(s string) (Ranges, error) {
	if s == "" {
		return nil, fmt.Errorf("keyspace: empty range set")
	}
	parts := strings.Split(s, ",")
	out := make(Ranges, 0, len(parts))
	for _, p := range parts {
		lo, hi, ok := strings.Cut(p, "-")
		if !ok {
			return nil, fmt.Errorf("keyspace: range %q is not lo-hi", p)
		}
		l, err := strconv.ParseUint(lo, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("keyspace: range %q: bad lo: %v", p, err)
		}
		h, err := strconv.ParseUint(hi, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("keyspace: range %q: bad hi: %v", p, err)
		}
		if l >= Modulus || h >= Modulus {
			return nil, fmt.Errorf("keyspace: range %q exceeds the ring modulus %d", p, int64(Modulus))
		}
		out = append(out, Range{Lo: uint32(l), Hi: uint32(h)})
	}
	return out, nil
}
