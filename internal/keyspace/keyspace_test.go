package keyspace

import (
	"math/rand"
	"testing"
)

func TestHashWithinModulus(t *testing.T) {
	for _, s := range []string{"", "a", "backend#0", "backend#1", "some-long-canonical-job-key|prime|13"} {
		if h := Hash(s); h >= Modulus {
			t.Errorf("Hash(%q) = %d, outside [0, %d)", s, h, int64(Modulus))
		}
	}
	if Hash("a") == Hash("b") {
		t.Error("trivial collision between distinct single-byte keys")
	}
}

func TestRangeContains(t *testing.T) {
	plain := Range{Lo: 100, Hi: 200}
	for h, want := range map[uint32]bool{100: false, 101: true, 200: true, 201: false, 50: false} {
		if got := plain.Contains(h); got != want {
			t.Errorf("(100,200].Contains(%d) = %v, want %v", h, got, want)
		}
	}
	wrap := Range{Lo: Modulus - 10, Hi: 5}
	for h, want := range map[uint32]bool{Modulus - 10: false, Modulus - 9: true, 0: true, 5: true, 6: false, 1000: false} {
		if got := wrap.Contains(h); got != want {
			t.Errorf("wrap.Contains(%d) = %v, want %v", h, got, want)
		}
	}
	full := Range{Lo: 42, Hi: 42}
	for _, h := range []uint32{0, 41, 42, 43, Modulus - 1} {
		if !full.Contains(h) {
			t.Errorf("full-circle arc must contain %d", h)
		}
	}
}

func TestRangesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		rs := make(Ranges, n)
		for i := range rs {
			rs[i] = Range{Lo: uint32(rng.Int63n(Modulus)), Hi: uint32(rng.Int63n(Modulus))}
		}
		parsed, err := ParseRanges(rs.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", rs.String(), err)
		}
		if len(parsed) != len(rs) {
			t.Fatalf("round trip changed arc count: %d -> %d", len(rs), len(parsed))
		}
		for i := range rs {
			if parsed[i] != rs[i] {
				t.Fatalf("arc %d changed in round trip: %v -> %v", i, rs[i], parsed[i])
			}
		}
		// Membership agrees on random probes.
		for p := 0; p < 20; p++ {
			h := uint32(rng.Int63n(Modulus))
			if rs.Contains(h) != parsed.Contains(h) {
				t.Fatalf("membership of %d disagrees after round trip", h)
			}
		}
	}
}

func TestParseRangesRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "10", "a-b", "1-2-3", "10-", "-10", "2147483647-0", "0-2147483647"} {
		if _, err := ParseRanges(bad); err == nil {
			t.Errorf("ParseRanges(%q) accepted garbage", bad)
		}
	}
}
