// Package hw is a gate-level structural model of the paper's Figure-1
// address-generation hardware: a c-bit ripple-carry adder with end-around
// carry, the two operand multiplexors, and the stride/index/start
// registers. It exists to check the paper's two hardware claims
// quantitatively rather than rhetorically:
//
//  1. cost — "2 multiplexors, a full adder and a few registers" — via
//     gate and flip-flop counts;
//  2. timing — "takes no longer than the normal address calculation" —
//     via worst-case carry-chain depth in gate delays, compared against
//     the machine's full-width address adder.
//
// The bit-level adder is verified against the arithmetic model in
// package mersenne exhaustively for small widths and by property test at
// the paper's width.
package hw

import "fmt"

// Gate-cost constants (classic two-level realisations).
const (
	// GatesPerFullAdder: 2 XOR + 2 AND + 1 OR.
	GatesPerFullAdder = 5
	// GatesPerMuxBit: a 2:1 mux per bit (2 AND + 1 OR + shared INV).
	GatesPerMuxBit = 4
	// DelayPerCarry is the gate delay a ripple carry spends per bit
	// (carry-out is two levels from carry-in).
	DelayPerCarry = 2
	// DelaySum is the final sum XOR level.
	DelaySum = 1
)

// FullAdder returns the sum and carry of one bit position.
func FullAdder(a, b, cin bool) (sum, cout bool) {
	axb := a != b
	sum = axb != cin
	cout = (a && b) || (axb && cin)
	return sum, cout
}

// RippleAdd adds two w-bit values bit by bit and returns the w-bit sum
// and the carry-out. Operands must fit in w bits.
func RippleAdd(a, b uint64, w uint, cin bool) (uint64, bool) {
	if w == 0 || w > 63 {
		panic(fmt.Sprintf("hw: width %d out of range", w))
	}
	mask := uint64(1)<<w - 1
	if a&^mask != 0 || b&^mask != 0 {
		panic("hw: operand wider than adder")
	}
	var sum uint64
	carry := cin
	for i := uint(0); i < w; i++ {
		var s bool
		s, carry = FullAdder(a>>i&1 == 1, b>>i&1 == 1, carry)
		if s {
			sum |= 1 << i
		}
	}
	return sum, carry
}

// EndAroundAdd is the Figure-1 adder: a c-bit ripple addition whose
// carry-out feeds the carry-in (one's-complement / mod 2^c−1 addition).
// In hardware the end-around path settles combinationally; structurally
// that equals re-running the ripple with cin = cout, which converges in
// one extra pass. Results of 2^c−1 (≡ 0) are left as all-ones, exactly as
// a one's-complement adder leaves them; CanonicalIndex folds that to 0.
func EndAroundAdd(a, b uint64, c uint) uint64 {
	s, cout := RippleAdd(a, b, c, false)
	if cout {
		s, _ = RippleAdd(s, 0, c, true)
	}
	return s
}

// CanonicalIndex maps the adder's all-ones representation of zero onto
// the architectural index 0.
func CanonicalIndex(s uint64, c uint) uint64 {
	if s == uint64(1)<<c-1 {
		return 0
	}
	return s
}

// Datapath is the structural Figure-1 unit for exponent c with nStart
// start registers.
type Datapath struct {
	C      uint
	NStart int
}

// NewDatapath returns the paper's unit: c-bit adder, two operand muxes,
// a stride register, an index register, and nStart start registers.
func NewDatapath(c uint, nStart int) (Datapath, error) {
	if c < 2 || c > 31 {
		return Datapath{}, fmt.Errorf("hw: exponent %d out of range", c)
	}
	if nStart < 0 {
		return Datapath{}, fmt.Errorf("hw: negative start-register count")
	}
	return Datapath{C: c, NStart: nStart}, nil
}

// Gates returns the combinational gate count: one c-bit adder and two
// c-bit 2:1 muxes.
func (d Datapath) Gates() int {
	return int(d.C)*GatesPerFullAdder + 2*int(d.C)*GatesPerMuxBit
}

// FlipFlops returns the storage cost: stride + index + start registers,
// each c bits.
func (d Datapath) FlipFlops() int {
	return (2 + d.NStart) * int(d.C)
}

// Delay returns the worst-case combinational delay of one index step in
// gate delays: mux select, then a ripple carry that may traverse the
// chain twice (the end-around pass), then the sum XOR.
func (d Datapath) Delay() int {
	return 1 + 2*int(d.C)*DelayPerCarry + DelaySum
}

// AddressAdderDelay returns the delay of the machine's ordinary w-bit
// address adder (ripple realisation), the unit the paper compares
// against: every existing vector machine already tolerates this path.
func AddressAdderDelay(w uint) int {
	return int(w)*DelayPerCarry + DelaySum
}

// FitsCriticalPath reports the paper's timing claim for address width w:
// the Figure-1 step is no slower than the normal address calculation.
func (d Datapath) FitsCriticalPath(w uint) bool {
	return d.Delay() <= AddressAdderDelay(w)
}

// Carry-lookahead timing. Real machines do not ripple 32 bits; both the
// main address adder and the Figure-1 adder would use a lookahead scheme
// whose depth grows logarithmically. The end-around carry adds one more
// lookahead traversal, so the ratio of the two paths stays bounded and
// the paper's claim survives fast-adder realisations at every practical
// width.

// CLADelay returns the delay in gate delays of a w-bit carry-lookahead
// adder built from 4-bit lookahead groups: one level of P/G generation,
// ⌈log₄ w⌉ lookahead levels, and the final sum stage.
func CLADelay(w uint) int {
	if w == 0 {
		return 0
	}
	levels := 0
	for n := w; n > 1; n = (n + 3) / 4 {
		levels++
	}
	return 2 + 2*levels + DelaySum
}

// CLAEndAroundDelay is CLADelay with the end-around pass: the carry-out
// re-enters through one extra lookahead traversal.
func CLAEndAroundDelay(c uint) int {
	return CLADelay(c) + 2*logCeil4(c)
}

func logCeil4(w uint) int {
	levels := 0
	for n := w; n > 1; n = (n + 3) / 4 {
		levels++
	}
	return levels
}

// FitsCriticalPathCLA reports whether a c-bit end-around lookahead adder
// fits within a w-bit lookahead address adder.
func FitsCriticalPathCLA(c, w uint) bool {
	return CLAEndAroundDelay(c) <= CLADelay(w)
}
