package hw

import (
	"testing"
	"testing/quick"

	"primecache/internal/mersenne"
)

func TestFullAdderTruthTable(t *testing.T) {
	cases := []struct {
		a, b, cin, sum, cout bool
	}{
		{false, false, false, false, false},
		{true, false, false, true, false},
		{false, true, false, true, false},
		{true, true, false, false, true},
		{false, false, true, true, false},
		{true, false, true, false, true},
		{false, true, true, false, true},
		{true, true, true, true, true},
	}
	for _, tc := range cases {
		s, c := FullAdder(tc.a, tc.b, tc.cin)
		if s != tc.sum || c != tc.cout {
			t.Errorf("FullAdder(%v,%v,%v) = (%v,%v), want (%v,%v)", tc.a, tc.b, tc.cin, s, c, tc.sum, tc.cout)
		}
	}
}

func TestRippleAddExhaustiveSmall(t *testing.T) {
	const w = 5
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 32; b++ {
			for _, cin := range []bool{false, true} {
				s, cout := RippleAdd(a, b, w, cin)
				total := a + b
				if cin {
					total++
				}
				if s != total&31 || cout != (total > 31) {
					t.Fatalf("RippleAdd(%d,%d,%v) = (%d,%v)", a, b, cin, s, cout)
				}
			}
		}
	}
}

func TestRippleAddPanics(t *testing.T) {
	for _, f := range []func(){
		func() { RippleAdd(0, 0, 0, false) },
		func() { RippleAdd(0, 0, 64, false) },
		func() { RippleAdd(32, 0, 5, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestEndAroundAddMatchesMersenneExhaustive checks the bit-level adder
// against the arithmetic model for every residue pair at c = 5.
func TestEndAroundAddMatchesMersenneExhaustive(t *testing.T) {
	const c = 5
	m := mersenne.MustNew(c)
	for a := uint64(0); a < 31; a++ {
		for b := uint64(0); b < 31; b++ {
			got := CanonicalIndex(EndAroundAdd(a, b, c), c)
			want := m.Add(a, b)
			if got != want {
				t.Fatalf("EAC(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// TestEndAroundAddMatchesMersenneProperty checks the paper's width.
func TestEndAroundAddMatchesMersenneProperty(t *testing.T) {
	const c = 13
	m := mersenne.MustNew(c)
	f := func(aRaw, bRaw uint16) bool {
		a := uint64(aRaw) % 8191
		b := uint64(bRaw) % 8191
		return CanonicalIndex(EndAroundAdd(a, b, c), c) == m.Add(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDatapathCost(t *testing.T) {
	d, err := NewDatapath(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 13-bit adder (65 gates) + two 13-bit muxes (104 gates).
	if got := d.Gates(); got != 13*5+2*13*4 {
		t.Errorf("Gates = %d", got)
	}
	// stride + index + 4 start registers, 13 bits each.
	if got := d.FlipFlops(); got != 6*13 {
		t.Errorf("FlipFlops = %d", got)
	}
	if _, err := NewDatapath(1, 0); err == nil {
		t.Error("tiny exponent accepted")
	}
	if _, err := NewDatapath(13, -1); err == nil {
		t.Error("negative start registers accepted")
	}
}

// TestCriticalPathClaim is the paper's §2.3 timing argument, quantified:
// at the paper's parameters (c = 13, 32-bit addresses) the Figure-1 step
// fits inside the normal address adder's delay — and the claim fails if
// the cache grows so large that 2c approaches the address width, which
// the test documents.
func TestCriticalPathClaim(t *testing.T) {
	d, _ := NewDatapath(13, 4)
	if !d.FitsCriticalPath(32) {
		t.Errorf("c=13 delay %d exceeds 32-bit adder %d; the paper's claim should hold",
			d.Delay(), AddressAdderDelay(32))
	}
	// The margin: 54 vs 65 gate delays.
	if d.Delay() != 1+2*13*2+1 {
		t.Errorf("Delay = %d", d.Delay())
	}
	if AddressAdderDelay(32) != 65 {
		t.Errorf("AddressAdderDelay(32) = %d", AddressAdderDelay(32))
	}
	// A 2^17−1-line cache against 32-bit addresses would NOT fit — the
	// scaling limit of the ripple realisation (real designs would use a
	// faster carry scheme, as would the main adder).
	big, _ := NewDatapath(17, 0)
	if big.FitsCriticalPath(32) {
		t.Error("c=17 should exceed a 32-bit ripple adder; expected documented limit")
	}
	if !big.FitsCriticalPath(64) {
		t.Error("c=17 fits a 64-bit address path")
	}
}

// TestDatapathSequence runs a full vector's index generation through the
// structural adder and compares against the functional AddressUnit.
func TestDatapathSequence(t *testing.T) {
	const c = 13
	m := mersenne.MustNew(c)
	u := mersenne.NewAddressUnit(m)
	stride := int64(517)
	u.SetStride(stride)
	want, _ := u.Start(99999)

	// Structural path: reduce start by repeated EAC of digits, then step.
	idx := CanonicalIndex(EndAroundAdd(99999&8191, (99999>>13)&8191, c), c)
	if idx != want {
		t.Fatalf("structural start index %d, want %d", idx, want)
	}
	sConv := m.Reduce(uint64(stride))
	for i := 0; i < 1000; i++ {
		want = u.Next()
		idx = CanonicalIndex(EndAroundAdd(idx, sConv, c), c)
		if idx != want {
			t.Fatalf("element %d: structural %d, functional %d", i+1, idx, want)
		}
	}
}

func TestCLADelay(t *testing.T) {
	if CLADelay(0) != 0 {
		t.Error("CLADelay(0) != 0")
	}
	// Depth grows logarithmically: 32 bits needs 3 lookahead levels.
	if got := CLADelay(32); got != 2+2*3+1 {
		t.Errorf("CLADelay(32) = %d, want 9", got)
	}
	if CLADelay(13) >= CLADelay(32) {
		t.Error("13-bit CLA not faster than 32-bit")
	}
}

// TestCriticalPathClaimCLA records a reproduction finding: the paper's
// timing claim is realisation-dependent. With ripple adders the c-bit
// end-around adder fits comfortably inside the 32-bit address adder
// (TestCriticalPathClaim); with carry-lookahead adders the end-around
// pass costs one extra lookahead traversal and the bare Figure-1 adder
// comes out slightly SLOWER than a bare 32-bit CLA (11 vs 9 gate delays
// at c = 13). The claim still holds in context — the normal address path
// includes operand muxing and register setup beyond the bare adder, and
// the cache-address generation runs in parallel with, not in series
// after, it — but "takes no longer than the normal address calculation"
// is not adder-for-adder true in fast-carry realisations.
func TestCriticalPathClaimCLA(t *testing.T) {
	if FitsCriticalPathCLA(13, 32) {
		t.Error("bare-adder CLA comparison unexpectedly fits; finding is stale")
	}
	// The excess stays small: within ~35% of the bare 32-bit CLA, i.e.
	// absorbed by one mux + register level of the real address path.
	ratio := float64(CLAEndAroundDelay(13)) / float64(CLADelay(32))
	if ratio > 1.35 {
		t.Errorf("EAC-CLA/CLA32 ratio %v, want ≤ 1.35", ratio)
	}
	// Sanity: the end-around pass does cost something, and wider EAC
	// adders stay log-bounded.
	if CLAEndAroundDelay(13) <= CLADelay(13) {
		t.Error("end-around pass should add delay")
	}
	if CLAEndAroundDelay(19) > 2*CLADelay(32) {
		t.Error("EAC-CLA growth not log-bounded")
	}
}
