package client_test

import (
	"testing"

	"primecache/internal/sim/leak"
)

// TestMain asserts the suite quiesces: no retry-backoff timer or
// keep-alive connection loop may survive the tests.
func TestMain(m *testing.M) { leak.Main(m) }
