package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"primecache/internal/keyspace"
	"primecache/internal/obs"
)

// Cluster-administration and warm-migration methods. The wire types for
// the coordinator's /v1/admin surface live here (not in the cluster
// package) because the dependency arrow points the other way: the
// coordinator imports this package for its backend clients, so these
// shapes are what both sides marshal.

// AdminBackend is one backend row in the coordinator's membership view.
type AdminBackend struct {
	// URL is the backend's base URL — its ring identity.
	URL string `json:"url"`
	// Healthy reports the backend is taking new work.
	Healthy bool `json:"healthy"`
	// Draining reports the backend is being removed (or reported itself
	// shutting down) and only finishes in-flight work.
	Draining bool `json:"draining"`
	// WarmKeys is the backend's last reported warm working-set size.
	WarmKeys int `json:"warmKeys"`
}

// AdminBackendsResponse is the GET /v1/admin/backends body.
type AdminBackendsResponse struct {
	// RingVersion counts atomic ring swaps since the coordinator booted;
	// it bumps by one on every successful join or leave.
	RingVersion uint64 `json:"ringVersion"`
	// VirtualNodes is the per-backend ring point count.
	VirtualNodes int `json:"virtualNodes"`
	// Backends lists the current members in ring construction order.
	Backends []AdminBackend `json:"backends"`
}

// AdminChangeRequest is the POST /v1/admin/backends body.
type AdminChangeRequest struct {
	// URL is the backend to add, e.g. "http://10.0.0.4:8372".
	URL string `json:"url"`
}

// AdminChangeResponse reports one completed membership change.
type AdminChangeResponse struct {
	// RingVersion is the ring generation after the swap.
	RingVersion uint64 `json:"ringVersion"`
	// Backends is the member set after the change.
	Backends []string `json:"backends"`
	// MigratedKeys and MigratedBytes count warm-state records moved for
	// this change (export → import, both sides CRC-checked).
	MigratedKeys  int64 `json:"migratedKeys"`
	MigratedBytes int64 `json:"migratedBytes"`
	// MigrationErrors counts source/destination transfers that failed or
	// were skipped; the affected keys recompute cold on first touch
	// instead of failing the membership change.
	MigrationErrors int64 `json:"migrationErrors"`
	// Drained reports (on a leave) that the departing backend's in-flight
	// work quiesced before removal; false means the quiesce wait timed
	// out and the backend was removed anyway.
	Drained bool `json:"drained,omitempty"`
}

// AdminBackends fetches the coordinator's live membership view.
// Requires WithAdminToken.
func (c *Client) AdminBackends(ctx context.Context) (*AdminBackendsResponse, error) {
	var out AdminBackendsResponse
	if _, err := c.do(ctx, http.MethodGet, "/v1/admin/backends", nil, &out, ""); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdminJoin adds a backend to the cluster: the coordinator migrates the
// persisted records the joiner now owns onto it, then atomically swaps
// the routing ring. Requires WithAdminToken.
func (c *Client) AdminJoin(ctx context.Context, backendURL string) (*AdminChangeResponse, error) {
	var out AdminChangeResponse
	if _, err := c.do(ctx, http.MethodPost, "/v1/admin/backends", AdminChangeRequest{URL: backendURL}, &out, ""); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdminLeave drains a backend out of the cluster: its shards re-scatter
// to the ring successors (with warm-state migration), the ring swaps,
// and the backend is removed once in-flight work quiesces. Requires
// WithAdminToken.
func (c *Client) AdminLeave(ctx context.Context, backendURL string) (*AdminChangeResponse, error) {
	var out AdminChangeResponse
	path := "/v1/admin/backends?url=" + url.QueryEscape(backendURL)
	if _, err := c.do(ctx, http.MethodDelete, path, nil, &out, ""); err != nil {
		return nil, err
	}
	return &out, nil
}

// PersistExport streams the backend's persisted records whose keys hash
// into owner, as CRC-checked persist frames. The caller must Close the
// returned stream; a typed *Error is returned for non-2xx answers
// (CodeNotFound when the backend runs memory-only).
func (c *Client) PersistExport(ctx context.Context, owner keyspace.Ranges) (io.ReadCloser, error) {
	u := c.base + "/v1/persist/export?owner=" + url.QueryEscape(owner.String())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET /v1/persist/export: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, decodeError(resp, data)
	}
	return resp.Body, nil
}

// PersistImport streams persist frames into the backend's disk tier and
// returns how many records and value bytes it accepted. The reader is
// consumed to EOF on success.
func (c *Client) PersistImport(ctx context.Context, frames io.Reader) (imported, bytes int64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/persist/import", frames)
	if err != nil {
		return 0, 0, fmt.Errorf("client: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, 0, fmt.Errorf("client: POST /v1/persist/import: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, 0, fmt.Errorf("client: reading import response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return 0, 0, decodeError(resp, data)
	}
	var out struct {
		Imported int64 `json:"imported"`
		Bytes    int64 `json:"bytes"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return 0, 0, fmt.Errorf("client: decoding import response: %w", err)
	}
	return out.Imported, out.Bytes, nil
}
