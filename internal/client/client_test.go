package client_test

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"primecache/internal/client"
	"primecache/internal/server"
	"primecache/internal/trace"
)

// overloadedBody is the unified envelope an overloaded server emits.
const overloadedBody = `{"error":{"code":"overloaded","message":"queue full","retry_after_ms":10}}`

// shedThenServe returns a handler that sheds the first n requests with a
// 429 envelope and then answers with ok.
func shedThenServe(n int64, attempts *atomic.Int64, ok string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if attempts.Add(1) <= n {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(overloadedBody))
			return
		}
		w.Write([]byte(ok))
	}
}

func TestRetriesOverloadedThenSucceeds(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(shedThenServe(2, &attempts, `{"memoized":true,"cache":"prime"}`))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(3), client.WithBackoff(time.Millisecond, 20*time.Millisecond), client.WithSeed(1))
	res, err := c.Simulate(context.Background(), server.SimulateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two sheds + one success)", got)
	}
	if !res.Memoized || res.Cache != "prime" {
		t.Errorf("response not decoded: %+v", res)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(shedThenServe(1<<30, &attempts, ""))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(2), client.WithBackoff(time.Millisecond, 5*time.Millisecond), client.WithSeed(1))
	_, err := c.Simulate(context.Background(), server.SimulateRequest{})
	var ce *client.Error
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *client.Error", err)
	}
	if ce.Code != server.CodeOverloaded || ce.Status != http.StatusTooManyRequests {
		t.Errorf("error = %+v, want overloaded/429", ce)
	}
	if ce.RetryAfter != 10*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 10ms from the envelope", ce.RetryAfter)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (initial + 2 retries)", got)
	}
}

func TestNoRetryOnPermanentError(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"code":"invalid_request","message":"bad passes"}}`))
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(5), client.WithSeed(1))
	_, err := c.Simulate(context.Background(), server.SimulateRequest{})
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Code != server.CodeInvalidRequest {
		t.Fatalf("err = %v, want invalid_request client error", err)
	}
	if ce.Temporary() {
		t.Error("invalid_request reported Temporary")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on permanent errors)", got)
	}
}

func TestRetryAfterHeaderFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"overloaded","message":"later"}}`))
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(0))
	_, err := c.Simulate(context.Background(), server.SimulateRequest{})
	var ce *client.Error
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *client.Error", err)
	}
	if ce.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s parsed from the header", ce.RetryAfter)
	}
}

func TestContextCancelsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"overloaded","message":"later","retry_after_ms":60000}}`))
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	c := client.New(ts.URL, client.WithRetries(5), client.WithBackoff(time.Minute, time.Minute), client.WithSeed(1))
	start := time.Now()
	_, err := c.Simulate(ctx, server.SimulateRequest{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("cancelled call took %v, backoff did not honor ctx", took)
	}
}

// TestEndToEndAgainstRealServer drives every client method against an
// actual vcached instance, not a stub.
func TestEndToEndAgainstRealServer(t *testing.T) {
	s := server.New(server.Options{Workers: 2, MemoEntries: 16})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := client.New(ts.URL, client.WithSeed(1))
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	req := server.SimulateRequest{Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 4096}, Passes: 2}
	res, err := c.Simulate(ctx, req)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.Stats.Accesses == 0 {
		t.Error("simulate returned empty stats")
	}
	again, err := c.Simulate(ctx, req)
	if err != nil {
		t.Fatalf("second simulate: %v", err)
	}
	if !again.Memoized {
		t.Error("identical second request not memoized")
	}
	mres, err := c.Model(ctx, server.ModelRequest{})
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	if mres.Speedup <= 0 {
		t.Error("model returned no speedup")
	}
	sres, err := c.Sweep(ctx, server.SweepRequest{Jobs: []server.SweepJob{
		{Simulate: &req}, {Model: &server.ModelRequest{}},
	}})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(sres) != 2 || sres[0].Simulate == nil || sres[1].Model == nil {
		t.Errorf("sweep results malformed: %+v", sres)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Pool.Workers != 2 {
		t.Errorf("stats workers = %d, want 2", stats.Pool.Workers)
	}
	if stats.Admission.Capacity == 0 {
		t.Error("stats admission capacity missing")
	}
	// A validation error surfaces as a typed permanent error.
	_, err = c.Simulate(ctx, server.SimulateRequest{Passes: -1})
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Code != server.CodeInvalidRequest {
		t.Errorf("bad request err = %v, want invalid_request", err)
	}
}

// flakySheds builds a FaultFunc that force-sheds the first n admit
// attempts, so a real vcached instance behaves like a flaky overloaded
// backend with fully deterministic timing.
func flakySheds(n uint64) server.FaultFunc {
	return func(stage string, seq uint64) server.Fault {
		if stage == "admit" && seq <= n {
			return server.Fault{QueueFull: true}
		}
		return server.Fault{}
	}
}

// TestRetryRecoversFromFlakyBackend drives the client against a real
// fault-injected vcached: the first two admits are force-shed with the
// organic 429 envelope, the third succeeds. The retry loop must absorb
// both sheds.
func TestRetryRecoversFromFlakyBackend(t *testing.T) {
	s := server.New(server.Options{Workers: 1, Faults: flakySheds(2)})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(3),
		client.WithBackoff(time.Millisecond, 10*time.Millisecond),
		client.WithRand(rand.NewSource(7)))
	res, err := c.Simulate(context.Background(), server.SimulateRequest{
		Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 512},
	})
	if err != nil {
		t.Fatalf("simulate through flaky backend: %v", err)
	}
	if res.Stats.Accesses == 0 {
		t.Error("empty stats from recovered request")
	}
	if shed := s.Metrics().Counter("admission.shed").Value(); shed != 2 {
		t.Errorf("backend shed %d requests, want 2", shed)
	}
}

// TestRetryBudgetExhaustedAgainstFlakyBackend exhausts the budget
// against a backend that sheds every admit: the caller must get the
// typed overloaded error after exactly initial+retries attempts.
func TestRetryBudgetExhaustedAgainstFlakyBackend(t *testing.T) {
	s := server.New(server.Options{Workers: 1, Faults: flakySheds(1 << 30)})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(2),
		client.WithBackoff(time.Millisecond, 2*time.Millisecond),
		client.WithRand(rand.NewSource(7)))
	_, err := c.Simulate(context.Background(), server.SimulateRequest{
		Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 512},
	})
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Code != server.CodeOverloaded {
		t.Fatalf("err = %v, want typed overloaded error", err)
	}
	if shed := s.Metrics().Counter("admission.shed").Value(); shed != 3 {
		t.Errorf("backend saw %d attempts, want 3 (initial + 2 retries)", shed)
	}
}

// TestRetryAfterFloorsBackoff checks the hint is a floor: with a 1ms
// backoff base but a server-priced Retry-After (≥100ms by construction,
// see retryAfterHint), two retries must take at least 200ms — the bare
// exponential schedule alone would finish in single-digit milliseconds.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	s := server.New(server.Options{Workers: 1, Faults: flakySheds(1 << 30)})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(2),
		client.WithBackoff(time.Millisecond, 5*time.Second),
		client.WithRand(rand.NewSource(7)))
	start := time.Now()
	_, err := c.Simulate(context.Background(), server.SimulateRequest{
		Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 512},
	})
	took := time.Since(start)
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Code != server.CodeOverloaded {
		t.Fatalf("err = %v, want typed overloaded error", err)
	}
	if ce.RetryAfter < 100*time.Millisecond {
		t.Fatalf("shed envelope RetryAfter = %v, want ≥ 100ms from the server's pricing", ce.RetryAfter)
	}
	if took < 200*time.Millisecond {
		t.Errorf("two floored retries took %v, want ≥ 200ms (hint not honored as floor)", took)
	}
}

// TestReadyzProbe checks the probe distinguishes ready, draining, and
// gone backends.
func TestReadyzProbe(t *testing.T) {
	s := server.New(server.Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := client.New(ts.URL)
	rz, err := c.Readyz(context.Background())
	if err != nil || rz == nil || rz.Draining {
		t.Fatalf("readyz on live server = %+v, %v; want ready", rz, err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	rz, err = c.Readyz(context.Background())
	if err == nil {
		t.Fatal("readyz on draining server returned nil error")
	}
	if rz == nil || !rz.Draining {
		t.Fatalf("readyz on draining server = %+v, want draining body alongside the error", rz)
	}
	ts.Close()
	if _, err := c.Readyz(context.Background()); err == nil {
		t.Fatal("readyz on dead server returned nil error")
	}
}
