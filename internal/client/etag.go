package client

import (
	"container/list"
	"sync"
)

// The client-side conditional-request cache: per canonical job key it
// remembers the last ETag the server returned together with the
// decoded result. Later identical requests carry If-None-Match; a 304
// answer is served from the stored copy with NotModified set, saving
// the response body on every memo/persist hit. Results are
// deterministic, so a stored entity never goes stale — the ETag either
// matches (same job, same result) or the entry is simply replaced.
type etagCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recent
	byKey map[string]*list.Element // value: *etagEntry
}

type etagEntry struct {
	key    string
	etag   string
	result any // *SimulateResult or *ModelResult snapshot (value copy)
}

func newEtagCache(capacity int) *etagCache {
	if capacity <= 0 {
		return nil
	}
	return &etagCache{cap: capacity, order: list.New(), byKey: map[string]*list.Element{}}
}

// lookup returns the stored validator and result snapshot for key.
func (c *etagCache) lookup(key string) (etag string, result any, ok bool) {
	if c == nil {
		return "", nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return "", nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*etagEntry)
	return e.etag, e.result, true
}

// store remembers the validator and result for key, evicting the least
// recently used entry beyond capacity.
func (c *etagCache) store(key, etag string, result any) {
	if c == nil || etag == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value = &etagEntry{key: key, etag: etag, result: result}
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&etagEntry{key: key, etag: etag, result: result})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*etagEntry).key)
	}
}
