package client_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"primecache/internal/client"
	"primecache/internal/server"
	"primecache/internal/trace"
)

// TestConditionalRequestRoundTrip drives the client's ETag cache
// against a real vcached instance: the first call fetches and stores
// the validator, the identical second call carries If-None-Match, is
// answered 304 bodiless, and surfaces the stored payload with
// NotModified set and the server's memoization verdict from the header.
func TestConditionalRequestRoundTrip(t *testing.T) {
	s := server.New(server.Options{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(0))
	ctx := context.Background()
	req := server.SimulateRequest{Pattern: trace.Pattern{Name: "strided", Stride: 5, N: 4096}, Passes: 2}

	first, err := c.Simulate(ctx, req)
	if err != nil {
		t.Fatalf("first simulate: %v", err)
	}
	if first.NotModified {
		t.Error("first response claims NotModified with an empty cache")
	}
	if first.ETag == "" {
		t.Fatal("first response carries no ETag")
	}

	second, err := c.Simulate(ctx, req)
	if err != nil {
		t.Fatalf("second simulate: %v", err)
	}
	if !second.NotModified {
		t.Error("identical repeat was not answered from the conditional cache")
	}
	if !second.Memoized {
		t.Error("304 did not carry the server's memoized verdict")
	}
	if second.ETag != first.ETag {
		t.Errorf("ETag changed across identical requests: %q then %q", first.ETag, second.ETag)
	}
	if !reflect.DeepEqual(second.Stats, first.Stats) {
		t.Errorf("stored copy diverged from the original:\n got %+v\nwant %+v", second.Stats, first.Stats)
	}

	mreq := server.ModelRequest{}
	m1, err := c.Model(ctx, mreq)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	m2, err := c.Model(ctx, mreq)
	if err != nil {
		t.Fatalf("second model: %v", err)
	}
	if !m2.NotModified || m2.ETag != m1.ETag || m2.Speedup != m1.Speedup {
		t.Errorf("model conditional round trip: NotModified=%v etag %q vs %q speedup %v vs %v",
			m2.NotModified, m2.ETag, m1.ETag, m2.Speedup, m1.Speedup)
	}
}

// TestConditionalDisabled pins WithETagCache(0): no validator is
// stored, no If-None-Match is sent, every response is a full 200.
func TestConditionalDisabled(t *testing.T) {
	var conditional atomic.Int64
	s := server.New(server.Options{Workers: 2})
	defer s.Shutdown(context.Background())
	inner := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("If-None-Match") != "" {
			conditional.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(0), client.WithETagCache(0))
	ctx := context.Background()
	req := server.SimulateRequest{Pattern: trace.Pattern{Name: "strided", Stride: 5, N: 4096}, Passes: 2}
	for i := 0; i < 2; i++ {
		res, err := c.Simulate(ctx, req)
		if err != nil {
			t.Fatalf("simulate %d: %v", i, err)
		}
		if res.NotModified {
			t.Errorf("call %d: NotModified with conditionals disabled", i)
		}
	}
	if n := conditional.Load(); n != 0 {
		t.Errorf("client sent %d conditional requests with the ETag cache disabled", n)
	}
}

// TestStatsV2SchemaShim exercises the client's versioned-stats path
// against both generations: a live schema-2 server, and a stub
// replaying a schema-1 body (no schema field, no persist block) that
// the shim must stamp as schema 1 with a zero persist tier.
func TestStatsV2SchemaShim(t *testing.T) {
	s := server.New(server.Options{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx := context.Background()
	c := client.New(ts.URL, client.WithRetries(0))
	req := server.SimulateRequest{Pattern: trace.Pattern{Name: "strided", Stride: 5, N: 4096}, Passes: 2}
	if _, err := c.Simulate(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulate(ctx, req); err != nil {
		t.Fatal(err)
	}
	v2, err := c.StatsV2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Schema != server.StatsSchemaVersion {
		t.Errorf("live server schema = %d, want %d", v2.Schema, server.StatsSchemaVersion)
	}
	if v2.Memo.Hits == 0 {
		t.Error("schema-2 memo block lost the hit counter")
	}
	if v2.Persist.Enabled {
		t.Error("memory-only server reports an enabled persist tier")
	}

	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"memo": map[string]any{"enabled": true, "hits": 7, "misses": 3, "hitRatio": 0.7},
		})
	}))
	defer legacy.Close()
	lv2, err := client.New(legacy.URL, client.WithRetries(0)).StatsV2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lv2.Schema != 1 {
		t.Errorf("schema-1 body stamped as schema %d, want 1", lv2.Schema)
	}
	if lv2.Memo.Hits != 7 || lv2.Memo.Misses != 3 {
		t.Errorf("shared memo block did not survive the shim: %+v", lv2.Memo)
	}
	if lv2.Persist.Enabled || lv2.Persist.Keys != 0 {
		t.Errorf("schema-1 shim invented a persist tier: %+v", lv2.Persist)
	}
}
