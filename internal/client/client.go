// Package client is the typed Go client for the vcached HTTP API. It
// speaks the unified error envelope, propagates contexts into every
// request, and retries transient failures (overloaded, shutting_down,
// connection errors) with exponential backoff, full jitter, and respect
// for the server's Retry-After hint — so callers see either a result, a
// typed *Error, or their own context's error, never a raw wire failure
// that a later attempt would have absorbed.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"primecache/internal/obs"
	"primecache/internal/server"
	"primecache/internal/sim"
)

// Client talks to one vcached instance.
type Client struct {
	base    string
	hc      *http.Client
	retries int           // extra attempts after the first
	backoff time.Duration // first retry delay, doubled per attempt
	maxWait time.Duration // ceiling on any single delay
	clock   sim.Clock     // backoff timer source; sim.Real in production
	etags   *etagCache    // conditional-request cache; nil when disabled
	token   string        // admin bearer token; empty sends no Authorization

	mu  sync.Mutex
	rng *rand.Rand
}

// Option configures a Client.
type Option func(*Client)

// WithRetries sets how many times a transient failure is retried after
// the initial attempt (default 3). 0 disables retries.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the first retry delay and the per-delay ceiling
// (defaults 50ms and 5s). The delay doubles each attempt, is raised to
// the server's Retry-After hint when one is present, and is then
// jittered to half-to-full of its value.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxWait = base, max }
}

// WithSeed makes the jitter deterministic, for tests.
func WithSeed(seed int64) Option {
	return WithRand(rand.NewSource(seed))
}

// WithRand injects the randomness source behind the retry jitter, so
// tests can control (or record) every delay the client picks.
func WithRand(src rand.Source) Option {
	return func(c *Client) { c.rng = rand.New(src) }
}

// WithHTTPClient substitutes the underlying HTTP client (defaults to a
// dedicated client with a 2-minute overall timeout).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithETagCache resizes the conditional-request cache: the client
// remembers the last n (ETag, result) pairs per canonical job key and
// sends If-None-Match automatically, serving 304s from the stored copy
// with NotModified set (default 256; <= 0 disables conditionals).
func WithETagCache(n int) Option {
	return func(c *Client) { c.etags = newEtagCache(n) }
}

// WithClock injects the time source behind retry backoff waits, so
// simulation tests advance the delays explicitly instead of waiting
// them out on the wall clock.
func WithClock(clk sim.Clock) Option {
	return func(c *Client) { c.clock = sim.Or(clk) }
}

// WithAdminToken sets the bearer token sent as an Authorization header
// on every request, required by the coordinator's token-gated
// /v1/admin endpoints. Non-admin endpoints ignore it.
func WithAdminToken(token string) Option {
	return func(c *Client) { c.token = token }
}

// New returns a client for the vcached instance at baseURL
// (e.g. "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{Timeout: 2 * time.Minute},
		retries: 3,
		backoff: 50 * time.Millisecond,
		maxWait: 5 * time.Second,
		clock:   sim.Real,
		etags:   newEtagCache(256),
	}
	for _, o := range opts {
		o(c)
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return c
}

// Error is a failed API call, carrying the server's machine code and
// Retry-After hint alongside the HTTP status.
type Error struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the machine error code from the unified envelope.
	Code server.ErrorCode
	// Message is the human-readable error message.
	Message string
	// RetryAfter is the server's backoff hint, zero when absent.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("vcached: %s (%d): %s", e.Code, e.Status, e.Message)
}

// Temporary reports whether a later identical request could succeed, the
// retry predicate: overload, shutdown, and an unreachable upstream pass
// (another replica, or this one once drained or healed); validation and
// size errors never will.
func (e *Error) Temporary() bool {
	return e.Code == server.CodeOverloaded || e.Code == server.CodeShuttingDown || e.Code == server.CodeUnavailable
}

// SimulateResult is a simulate response plus the transport-level
// memoization flag. ETag carries the response's strong validator;
// NotModified is true when this call was answered 304 from the
// client's conditional cache (the payload is the stored copy, and
// Memoized reflects the server's verdict from the 304's header).
type SimulateResult struct {
	server.SimulateResponse
	Memoized    bool   `json:"memoized"`
	ETag        string `json:"-"`
	NotModified bool   `json:"-"`
}

// ModelResult is a model response plus the memoization flag; see
// SimulateResult for ETag/NotModified semantics.
type ModelResult struct {
	server.ModelResponse
	Memoized    bool   `json:"memoized"`
	ETag        string `json:"-"`
	NotModified bool   `json:"-"`
}

// Simulate runs one cache simulation.
func (c *Client) Simulate(ctx context.Context, req server.SimulateRequest) (*SimulateResult, error) {
	key := "simulate|" + req.Key()
	inm, cached, _ := c.etags.lookup(key)
	var out SimulateResult
	cond, err := c.do(ctx, http.MethodPost, "/v1/simulate", req, &out, inm)
	if err != nil {
		return nil, err
	}
	if cond.notModified {
		if prev, ok := cached.(SimulateResult); ok {
			out = prev
			out.NotModified = true
			out.Memoized = cond.memoized
			return &out, nil
		}
		// The entry was evicted while the request was in flight;
		// refetch unconditionally.
		if cond, err = c.do(ctx, http.MethodPost, "/v1/simulate", req, &out, ""); err != nil {
			return nil, err
		}
	}
	out.ETag = cond.etag
	c.etags.store(key, cond.etag, out)
	return &out, nil
}

// Model evaluates the analytic models at one operating point.
func (c *Client) Model(ctx context.Context, req server.ModelRequest) (*ModelResult, error) {
	key := "model|" + req.Key()
	inm, cached, _ := c.etags.lookup(key)
	var out ModelResult
	cond, err := c.do(ctx, http.MethodPost, "/v1/model", req, &out, inm)
	if err != nil {
		return nil, err
	}
	if cond.notModified {
		if prev, ok := cached.(ModelResult); ok {
			out = prev
			out.NotModified = true
			out.Memoized = cond.memoized
			return &out, nil
		}
		if cond, err = c.do(ctx, http.MethodPost, "/v1/model", req, &out, ""); err != nil {
			return nil, err
		}
	}
	out.ETag = cond.etag
	c.etags.store(key, cond.etag, out)
	return &out, nil
}

// Sweep runs a batch of jobs, returning per-job results in input order.
// Per-job failures arrive inside SweepResult.Error/ErrorCode, not as a
// call-level error.
func (c *Client) Sweep(ctx context.Context, req server.SweepRequest) ([]server.SweepResult, error) {
	var out struct {
		Results []server.SweepResult `json:"results"`
	}
	if _, err := c.do(ctx, http.MethodPost, "/v1/sweep", req, &out, ""); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Stats fetches the server's counters (the full tier-specific body;
// dashboards that only need the uniform blocks should use StatsV2).
func (c *Client) Stats(ctx context.Context) (*server.StatsResponse, error) {
	var out server.StatsResponse
	if _, err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out, ""); err != nil {
		return nil, err
	}
	return &out, nil
}

// StatsV2 fetches the uniform schema-2 stats view. Against a schema-1
// server (one predating the versioned schema) the shared blocks decode
// identically — the memo/admission/partial shapes did not change — so
// the shim only has to stamp the schema it actually got and leave the
// persist block zero-valued.
func (c *Client) StatsV2(ctx context.Context) (*server.StatsV2, error) {
	resp, err := c.Stats(ctx)
	if err != nil {
		return nil, err
	}
	v2 := resp.V2()
	if v2.Schema == 0 {
		v2.Schema = 1
	}
	return &v2, nil
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &struct{}{}, "")
	return err
}

// BaseURL returns the instance this client talks to.
func (c *Client) BaseURL() string { return c.base }

// Close releases the client's idle keep-alive connections. Long-lived
// owners (the cluster coordinator, test suites with goroutine-leak
// checking) call it when done with the backend; the client remains
// usable afterwards, it just has to re-dial.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// Readyz probes readiness with a single round trip — no retries, the
// whole point is to learn the instance's state right now. A decoded
// body is returned whenever the server produced one, so callers can
// distinguish "alive but draining" (resp.Draining, alongside a non-nil
// error) from "gone" (nil response).
func (c *Client) Readyz(ctx context.Context) (*server.ReadyzResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/readyz", nil)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET /v1/readyz: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("client: reading readyz response: %w", err)
	}
	var rz server.ReadyzResponse
	if jsonErr := json.Unmarshal(data, &rz); jsonErr != nil {
		if resp.StatusCode == http.StatusOK {
			return nil, fmt.Errorf("client: decoding readyz response: %w", jsonErr)
		}
		return nil, decodeError(resp, data)
	}
	if resp.StatusCode != http.StatusOK {
		return &rz, &Error{Status: resp.StatusCode, Code: server.CodeShuttingDown, Message: rz.Status}
	}
	return &rz, nil
}

// cond carries the conditional-request outcome of one call: the
// response's ETag, whether the server answered 304, and the memoized
// verdict from the 304's X-Vcached-Memoized header.
type cond struct {
	etag        string
	notModified bool
	memoized    bool
}

// do issues one logical API call: marshal, attempt, and retry transient
// failures until the retry budget or ctx runs out. The last error is
// returned when the budget is exhausted. A non-empty ifNoneMatch rides
// every attempt as an If-None-Match header.
func (c *Client) do(ctx context.Context, method, path string, in, out any, ifNoneMatch string) (cond, error) {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return cond{}, fmt.Errorf("client: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		var cd cond
		cd, lastErr = c.once(ctx, method, path, body, out, ifNoneMatch)
		if lastErr == nil || ctx.Err() != nil || attempt >= c.retries {
			return cd, lastErr
		}
		var ae *Error
		isAPI := asClientError(lastErr, &ae)
		if isAPI && !ae.Temporary() {
			return cd, lastErr
		}
		delay := c.backoff << attempt
		if isAPI && ae.RetryAfter > delay {
			delay = ae.RetryAfter
		}
		if delay > c.maxWait {
			delay = c.maxWait
		}
		// Additive jitter in [0, delay/2], so synchronized clients that
		// were all shed by one overload spike do not retry in lockstep.
		// The hint is a floor: the server asked for at least that long.
		c.mu.Lock()
		delay += time.Duration(c.rng.Int63n(int64(delay/2) + 1))
		c.mu.Unlock()
		t := c.clock.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return cond{}, ctx.Err()
		case <-t.C:
		}
	}
}

// asClientError unwraps err into *Error if it is one.
func asClientError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

// once performs a single HTTP round trip.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any, ifNoneMatch string) (cond, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return cond{}, fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	// Propagate the caller's trace, if any, so the backend's spans
	// stitch under it.
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return cond{}, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return cond{}, fmt.Errorf("client: reading response: %w", err)
	}
	cd := cond{etag: resp.Header.Get("ETag")}
	if resp.StatusCode == http.StatusNotModified {
		// Bodiless by definition; the stored entity is current. The
		// memoized verdict rides a header since there is no body.
		cd.notModified = true
		cd.memoized = resp.Header.Get("X-Vcached-Memoized") == "true"
		return cd, nil
	}
	if resp.StatusCode/100 != 2 {
		return cd, decodeError(resp, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return cd, fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return cd, nil
}

// decodeError maps a non-2xx response to *Error, preferring the unified
// envelope and falling back to the raw body for non-vcached middleboxes.
func decodeError(resp *http.Response, data []byte) error {
	e := &Error{Status: resp.StatusCode}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(data, &env); err == nil && env.Error != nil {
		e.Code = env.Error.Code
		e.Message = env.Error.Message
		e.RetryAfter = time.Duration(env.Error.RetryAfterMs) * time.Millisecond
	} else {
		e.Code = server.CodeInternal
		e.Message = strings.TrimSpace(string(data))
	}
	if e.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}
