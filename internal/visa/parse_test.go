package visa

import (
	"strings"
	"testing"

	"primecache/internal/vcm"
)

const demoAsm = `
# strip-mined y += 2.5*x over 128 elements
loads  s0, 2.5
loada  a0, 0
loada  a1, 1
loada  a2, 1000
loada  a3, 1
setvl  64
loop   2
  loadv  v0, (a0), a1
  mulvs  v0, v0, s0
  loadv  v1, (a2), a3
  addvv  v1, v1, v0
  storev v1, (a2), a3
  adda   a0, 64
  adda   a2, 64
endloop
`

func TestParseAndRun(t *testing.T) {
	prog, err := Parse(strings.NewReader(demoAsm))
	if err != nil {
		t.Fatal(err)
	}
	c := newCPU(t, Config{Mach: vcm.DefaultMachine(32, 8), MemWords: 4096})
	for i := 0; i < 128; i++ {
		c.Mem()[i] = 2
		c.Mem()[1000+i] = 1
	}
	if err := c.Run(prog); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if got := c.Mem()[1000+i]; got != 6 {
			t.Fatalf("y[%d] = %v, want 6", i, got)
		}
	}
}

// TestParseDisassembleRoundTrip: Parse inverts Disassemble.
func TestParseDisassembleRoundTrip(t *testing.T) {
	orig, err := DAXPYLoop(3, 0, 5000, 2, 1, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(Disassemble(orig)))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("len %d, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("instr %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"bogus v0, v1\n",
		"setvl\n",
		"setvl x\n",
		"loada s0, 5\n",
		"loada a0\n",
		"loada a0, z\n",
		"loads s0, nan-ish\n",
		"loadv v0, (s0), a1\n",
		"loadv v0, (a0)\n",
		"addvv v0, v1\n",
		"addvv v0, v1, s2\n",
		"sumv v0, v1\n",
		"sumv s0\n",
		"loop\n",
		"loop x\n",
		"endloop extra\n",
		"mulvs v0, v0, a0\n",
		"loadv vX, (a0), a1\n",
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", strings.TrimSpace(in))
		}
	}
}

func TestParseToleratesPcColumn(t *testing.T) {
	prog, err := Parse(strings.NewReader("   0  setvl  64\n   1  addvv  v0, v1, v2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 2 || prog[1].Op != OpAddVV {
		t.Errorf("parsed = %+v", prog)
	}
}
