// Package visa implements a small vector instruction set and a
// cycle-accounting interpreter for it — the programmer-visible face of
// the paper's machine models. A CPU has vector registers of MVL words, a
// vector-length register, address and scalar register files, an
// interleaved main memory (package membank) and optionally a vector data
// cache in front of it; vector loads and stores run through the cache
// exactly as the CC-model prescribes (first touch streams from banks,
// hits cost one cycle, misses stall the full memory time).
//
// Programs are built with the Assembler and produce real numeric results
// in the machine's memory, so tests can check both values and timing.
package visa

import (
	"fmt"
	"math"

	"primecache/internal/cache"
	"primecache/internal/membank"
	"primecache/internal/vcm"
)

// Register-file sizes.
const (
	NumVectorRegs  = 8
	NumScalarRegs  = 8
	NumAddressRegs = 8
)

// Op is an instruction opcode.
type Op int

// The instruction set: enough to express strip-mined BLAS-1-style
// kernels (the paper's SAXPY-like computation model).
const (
	// OpSetVL sets the vector length register to min(Imm, MVL).
	OpSetVL Op = iota
	// OpLoadA loads the immediate into address register D.
	OpLoadA
	// OpAddA adds the immediate to address register D.
	OpAddA
	// OpLoadS loads the float immediate into scalar register D.
	OpLoadS
	// OpLoadV loads VL elements into vector register D from the address
	// in address register A with the stride in address register B.
	OpLoadV
	// OpStoreV stores VL elements of vector register D to the address in
	// address register A with the stride in address register B.
	OpStoreV
	// OpAddVV sets V[D] = V[A] + V[B] elementwise over VL.
	OpAddVV
	// OpMulVV sets V[D] = V[A] · V[B] elementwise over VL.
	OpMulVV
	// OpAddVS sets V[D] = V[A] + S[B] over VL.
	OpAddVS
	// OpMulVS sets V[D] = V[A] · S[B] over VL.
	OpMulVS
	// OpSumV reduces V[A] into scalar register D (sum over VL).
	OpSumV
	// OpAddSS sets S[D] = S[A] + S[B].
	OpAddSS
	// OpGather loads V[D][i] = mem[A[A] + V[B][i]] — indexed (gather)
	// load, the access mode vector machines provide for irregular data.
	// The index vector's elements are truncated to integers.
	OpGather
	// OpScatter stores V[D][i] to mem[A[A] + V[B][i]].
	OpScatter
	// OpLoopStart begins a counted loop of Imm iterations; loops nest up
	// to MaxLoopDepth deep.
	OpLoopStart
	// OpLoopEnd closes the innermost loop, branching back while
	// iterations remain.
	OpLoopEnd
)

// MaxLoopDepth bounds loop nesting.
const MaxLoopDepth = 8

// String implements fmt.Stringer.
func (o Op) String() string {
	names := [...]string{"setvl", "loada", "adda", "loads", "loadv", "storev",
		"addvv", "mulvv", "addvs", "mulvs", "sumv", "addss", "gather", "scatter", "loop", "endloop"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one instruction.
type Instr struct {
	Op      Op
	D, A, B int
	Imm     int64
	FImm    float64
}

// Program is an instruction sequence.
type Program []Instr

// Config describes a CPU.
type Config struct {
	// Mach supplies MVL, bank count and t_m.
	Mach vcm.Machine
	// MemWords is the size of main memory in words.
	MemWords int
	// CacheGeom optionally puts a vector cache in front of memory
	// (direct- or prime-mapped one-word lines).
	CacheGeom *vcm.CacheGeom
	// PrimeBankedMemory selects a prime number of banks (largest
	// Mersenne prime ≤ Mach.Banks) instead of 2^m low-order interleaving.
	PrimeBankedMemory bool
	// Chaining enables vector chaining: an arithmetic vector operation
	// that consumes the register the previous vector instruction produced
	// overlaps its element traversal with the producer, paying only its
	// start-up cost (the DLX-style chaining the paper's T_start constants
	// presume).
	Chaining bool
}

// CPU is the vector machine.
type CPU struct {
	cfg   Config
	mem   []float64
	banks *membank.System
	cache *cache.Cache

	v  [NumVectorRegs][]float64
	s  [NumScalarRegs]float64
	a  [NumAddressRegs]int64
	vl int

	cycles   int64
	prevVDst int // destination of the previous vector instruction (−1 none)
}

// New builds a CPU.
func New(cfg Config) (*CPU, error) {
	if err := cfg.Mach.Validate(); err != nil {
		return nil, err
	}
	if cfg.MemWords <= 0 {
		return nil, fmt.Errorf("visa: MemWords must be positive, got %d", cfg.MemWords)
	}
	var banks *membank.System
	var err error
	if cfg.PrimeBankedMemory {
		p, ok := primeAtMost(cfg.Mach.Banks)
		if !ok {
			return nil, fmt.Errorf("visa: no Mersenne prime ≤ %d banks", cfg.Mach.Banks)
		}
		banks, err = membank.NewPrimeBanked(p, cfg.Mach.Tm)
	} else {
		banks, err = membank.New(cfg.Mach.Banks, cfg.Mach.Tm)
	}
	if err != nil {
		return nil, err
	}
	c := &CPU{cfg: cfg, mem: make([]float64, cfg.MemWords), banks: banks, vl: cfg.Mach.MVL, prevVDst: -1}
	for i := range c.v {
		c.v[i] = make([]float64, cfg.Mach.MVL)
	}
	if cfg.CacheGeom != nil {
		if err := cfg.CacheGeom.Validate(); err != nil {
			return nil, err
		}
		var mapper cache.Mapper
		if cfg.CacheGeom.Mapping == vcm.MapPrime {
			exp := uint(math.Round(math.Log2(float64(cfg.CacheGeom.Lines + 1))))
			pm, err := cache.NewPrimeMapper(exp)
			if err != nil {
				return nil, err
			}
			mapper = pm
		} else {
			dm, err := cache.NewDirectMapper(cfg.CacheGeom.Lines)
			if err != nil {
				return nil, err
			}
			mapper = dm
		}
		arr, err := cache.New(cache.Config{Mapper: mapper, Ways: 1})
		if err != nil {
			return nil, err
		}
		c.cache = arr
	}
	return c, nil
}

func primeAtMost(n int) (int, bool) {
	best, ok := 0, false
	for _, c := range []uint{2, 3, 5, 7, 13, 17, 19} {
		if p := 1<<c - 1; p <= n && p > best {
			best, ok = p, true
		}
	}
	return best, ok
}

// Mem returns the backing memory for initialisation and inspection.
func (c *CPU) Mem() []float64 { return c.mem }

// Cycles returns the accumulated cycle count.
func (c *CPU) Cycles() int64 { return c.cycles }

// CacheStats returns the vector cache's statistics (zero value without a
// cache).
func (c *CPU) CacheStats() cache.Stats {
	if c.cache == nil {
		return cache.Stats{}
	}
	return c.cache.Stats()
}

// Scalar returns scalar register i.
func (c *CPU) Scalar(i int) float64 { return c.s[i] }

// Run executes the program from the beginning; register state persists
// across calls, cycle counts accumulate. Counted loops (OpLoopStart /
// OpLoopEnd) branch structurally and may nest to MaxLoopDepth.
func (c *CPU) Run(p Program) error {
	type frame struct {
		body      int   // pc of the first body instruction
		remaining int64 // iterations left after the current one
	}
	var stack []frame
	for pc := 0; pc < len(p); pc++ {
		ins := p[pc]
		switch ins.Op {
		case OpLoopStart:
			if ins.Imm < 0 {
				return fmt.Errorf("visa: pc %d: negative loop count %d", pc, ins.Imm)
			}
			if len(stack) >= MaxLoopDepth {
				return fmt.Errorf("visa: pc %d: loop nesting exceeds %d", pc, MaxLoopDepth)
			}
			c.cycles++
			if ins.Imm == 0 {
				// Skip to the matching end.
				depth := 1
				for pc++; pc < len(p); pc++ {
					switch p[pc].Op {
					case OpLoopStart:
						depth++
					case OpLoopEnd:
						depth--
					}
					if depth == 0 {
						break
					}
				}
				if pc >= len(p) {
					return fmt.Errorf("visa: unmatched loop start")
				}
				continue
			}
			stack = append(stack, frame{body: pc + 1, remaining: ins.Imm - 1})
		case OpLoopEnd:
			if len(stack) == 0 {
				return fmt.Errorf("visa: pc %d: loop end without start", pc)
			}
			c.cycles++
			top := &stack[len(stack)-1]
			if top.remaining > 0 {
				top.remaining--
				pc = top.body - 1
			} else {
				stack = stack[:len(stack)-1]
			}
		default:
			if err := c.step(ins); err != nil {
				return fmt.Errorf("visa: pc %d (%v): %w", pc, ins.Op, err)
			}
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("visa: %d unterminated loop(s)", len(stack))
	}
	return nil
}

func (c *CPU) step(ins Instr) error {
	switch ins.Op {
	case OpSetVL:
		if ins.Imm < 0 {
			return fmt.Errorf("negative vector length %d", ins.Imm)
		}
		c.vl = int(ins.Imm)
		if c.vl > c.cfg.Mach.MVL {
			c.vl = c.cfg.Mach.MVL
		}
		c.cycles++
	case OpLoadA:
		if err := checkReg(ins.D, NumAddressRegs); err != nil {
			return err
		}
		c.a[ins.D] = ins.Imm
		c.cycles++
	case OpAddA:
		if err := checkReg(ins.D, NumAddressRegs); err != nil {
			return err
		}
		c.a[ins.D] += ins.Imm
		c.cycles++
	case OpLoadS:
		if err := checkReg(ins.D, NumScalarRegs); err != nil {
			return err
		}
		c.s[ins.D] = ins.FImm
		c.cycles++
	case OpLoadV:
		return c.vectorMem(ins, false)
	case OpStoreV:
		return c.vectorMem(ins, true)
	case OpAddVV, OpMulVV:
		if err := checkRegs(ins, NumVectorRegs, NumVectorRegs); err != nil {
			return err
		}
		for i := 0; i < c.vl; i++ {
			if ins.Op == OpAddVV {
				c.v[ins.D][i] = c.v[ins.A][i] + c.v[ins.B][i]
			} else {
				c.v[ins.D][i] = c.v[ins.A][i] * c.v[ins.B][i]
			}
		}
		c.chargeVectorOp(ins.A, ins.B)
		c.prevVDst = ins.D
	case OpAddVS, OpMulVS:
		if err := checkReg(ins.D, NumVectorRegs); err != nil {
			return err
		}
		if err := checkReg(ins.A, NumVectorRegs); err != nil {
			return err
		}
		if err := checkReg(ins.B, NumScalarRegs); err != nil {
			return err
		}
		for i := 0; i < c.vl; i++ {
			if ins.Op == OpAddVS {
				c.v[ins.D][i] = c.v[ins.A][i] + c.s[ins.B]
			} else {
				c.v[ins.D][i] = c.v[ins.A][i] * c.s[ins.B]
			}
		}
		c.chargeVectorOp(ins.A, -1)
		c.prevVDst = ins.D
	case OpSumV:
		if err := checkReg(ins.D, NumScalarRegs); err != nil {
			return err
		}
		if err := checkReg(ins.A, NumVectorRegs); err != nil {
			return err
		}
		var sum float64
		for i := 0; i < c.vl; i++ {
			sum += c.v[ins.A][i]
		}
		c.s[ins.D] = sum
		c.chargeVectorOp(ins.A, -1)
		c.prevVDst = -1 // reductions end a chain
	case OpAddSS:
		if err := checkRegs(ins, NumScalarRegs, NumScalarRegs); err != nil {
			return err
		}
		c.s[ins.D] = c.s[ins.A] + c.s[ins.B]
		c.cycles++
	case OpGather, OpScatter:
		return c.vectorIndexed(ins, ins.Op == OpScatter)
	default:
		return fmt.Errorf("unknown opcode %d", int(ins.Op))
	}
	return nil
}

// vectorStartup is the functional-unit start-up cost per vector
// operation.
const vectorStartup = 4

// chargeVectorOp accounts one arithmetic vector operation: with chaining
// enabled and an input fed by the previous vector instruction's
// destination, the traversal overlaps and only the start-up is paid.
func (c *CPU) chargeVectorOp(srcA, srcB int) {
	if c.cfg.Chaining && c.prevVDst >= 0 && (srcA == c.prevVDst || srcB == c.prevVDst) {
		c.cycles += vectorStartup
		return
	}
	c.cycles += int64(c.vl) + vectorStartup
}

func (c *CPU) vectorMem(ins Instr, store bool) error {
	if err := checkReg(ins.D, NumVectorRegs); err != nil {
		return err
	}
	if err := checkReg(ins.A, NumAddressRegs); err != nil {
		return err
	}
	if err := checkReg(ins.B, NumAddressRegs); err != nil {
		return err
	}
	base, stride := c.a[ins.A], c.a[ins.B]
	// Bounds check the whole sweep first: the machine traps, it does not
	// corrupt.
	addr := base
	for i := 0; i < c.vl; i++ {
		if addr < 0 || addr >= int64(len(c.mem)) {
			return fmt.Errorf("address %d out of memory (%d words) at element %d", addr, len(c.mem), i)
		}
		addr += stride
	}
	// Data movement.
	addr = base
	for i := 0; i < c.vl; i++ {
		if store {
			c.mem[addr] = c.v[ins.D][i]
		} else {
			c.v[ins.D][i] = c.mem[addr]
		}
		addr += stride
	}
	if !store {
		c.prevVDst = ins.D
	} else {
		c.prevVDst = -1
	}
	// Timing. Stores are buffered (the paper's write-buffer assumption):
	// they cost issue cycles but no stalls.
	c.cycles += int64(c.cfg.Mach.TStart())
	if store {
		c.cycles += int64(c.vl)
		if c.cache != nil {
			addr = base
			for i := 0; i < c.vl; i++ {
				c.cache.Access(cache.Access{Addr: uint64(addr) * 8, Write: true, Stream: ins.D})
				addr += stride
			}
		}
		return nil
	}
	if c.cache == nil {
		r := c.banks.VectorLoad(uint64(base), stride, c.vl)
		c.cycles += int64(c.vl) + r.StallCycles
		c.banks.Reset()
		return nil
	}
	// CC-model. The paper distinguishes two regimes: *compulsory* misses
	// stream from the pipelined banks (Eq. 1 — "the compulsory misses …
	// can be properly pipelined in a vector computer"), while
	// interference misses on reuse passes stall the full unpipelined t_m
	// each.
	compulsory := 0
	addr = base
	for i := 0; i < c.vl; i++ {
		r := c.cache.Access(cache.Access{Addr: uint64(addr) * 8, Stream: ins.D})
		switch {
		case r.Hit:
			c.cycles++
		case r.Kind == cache.MissCompulsory:
			compulsory++ // charged below as one pipelined bank stream
		default:
			c.cycles += int64(c.cfg.Mach.Tm)
		}
		addr += stride
	}
	if compulsory > 0 {
		r := c.banks.VectorLoad(uint64(base), stride, compulsory)
		c.cycles += int64(compulsory) + r.StallCycles
		c.banks.Reset()
	}
	return nil
}

// vectorIndexed implements gather/scatter: element i uses the address
// A[base] + trunc(V[idx][i]). Timing mirrors the strided paths — gathers
// hit the cache element by element (or the banks, unpipelined: random
// addresses defeat the issue pipeline, so each element pays t_m on the
// MM-model); scatters are buffered.
func (c *CPU) vectorIndexed(ins Instr, store bool) error {
	if err := checkReg(ins.D, NumVectorRegs); err != nil {
		return err
	}
	if err := checkReg(ins.A, NumAddressRegs); err != nil {
		return err
	}
	if err := checkReg(ins.B, NumVectorRegs); err != nil {
		return err
	}
	base := c.a[ins.A]
	idx := c.v[ins.B]
	for i := 0; i < c.vl; i++ {
		addr := base + int64(idx[i])
		if addr < 0 || addr >= int64(len(c.mem)) {
			return fmt.Errorf("gather/scatter address %d out of memory (%d words) at element %d", addr, len(c.mem), i)
		}
	}
	c.cycles += int64(c.cfg.Mach.TStart())
	for i := 0; i < c.vl; i++ {
		addr := base + int64(idx[i])
		if store {
			c.mem[addr] = c.v[ins.D][i]
			c.cycles++
			if c.cache != nil {
				c.cache.Access(cache.Access{Addr: uint64(addr) * 8, Write: true, Stream: ins.D})
			}
			continue
		}
		c.v[ins.D][i] = c.mem[addr]
		if c.cache != nil {
			if r := c.cache.Access(cache.Access{Addr: uint64(addr) * 8, Stream: ins.D}); r.Hit {
				c.cycles++
			} else {
				c.cycles += int64(c.cfg.Mach.Tm)
			}
		} else {
			c.cycles += int64(c.cfg.Mach.Tm)
		}
	}
	return nil
}

func checkReg(r, n int) error {
	if r < 0 || r >= n {
		return fmt.Errorf("register %d out of range [0,%d)", r, n)
	}
	return nil
}

func checkRegs(ins Instr, nd, nab int) error {
	if err := checkReg(ins.D, nd); err != nil {
		return err
	}
	if err := checkReg(ins.A, nab); err != nil {
		return err
	}
	return checkReg(ins.B, nab)
}
