package visa

import (
	"fmt"
	"strings"
)

// Assembler builds Programs fluently. Each method appends one instruction
// and returns the assembler, so strip-mined loops read top to bottom:
//
//	var a Assembler
//	a.SetVL(64).LoadA(0, base).LoadA(1, stride).LoadV(0, 0, 1)
type Assembler struct {
	p Program
}

// Program returns the assembled program.
func (a *Assembler) Program() Program { return a.p }

// SetVL appends a set-vector-length instruction.
func (a *Assembler) SetVL(n int) *Assembler {
	a.p = append(a.p, Instr{Op: OpSetVL, Imm: int64(n)})
	return a
}

// LoadA sets address register d to the immediate.
func (a *Assembler) LoadA(d int, imm int64) *Assembler {
	a.p = append(a.p, Instr{Op: OpLoadA, D: d, Imm: imm})
	return a
}

// AddA adds the immediate to address register d.
func (a *Assembler) AddA(d int, imm int64) *Assembler {
	a.p = append(a.p, Instr{Op: OpAddA, D: d, Imm: imm})
	return a
}

// LoadS sets scalar register d to the float immediate.
func (a *Assembler) LoadS(d int, f float64) *Assembler {
	a.p = append(a.p, Instr{Op: OpLoadS, D: d, FImm: f})
	return a
}

// LoadV loads vector register d from [A[base]] with stride A[stride].
func (a *Assembler) LoadV(d, base, stride int) *Assembler {
	a.p = append(a.p, Instr{Op: OpLoadV, D: d, A: base, B: stride})
	return a
}

// StoreV stores vector register d to [A[base]] with stride A[stride].
func (a *Assembler) StoreV(d, base, stride int) *Assembler {
	a.p = append(a.p, Instr{Op: OpStoreV, D: d, A: base, B: stride})
	return a
}

// AddVV appends V[d] = V[x] + V[y].
func (a *Assembler) AddVV(d, x, y int) *Assembler {
	a.p = append(a.p, Instr{Op: OpAddVV, D: d, A: x, B: y})
	return a
}

// MulVV appends V[d] = V[x] · V[y].
func (a *Assembler) MulVV(d, x, y int) *Assembler {
	a.p = append(a.p, Instr{Op: OpMulVV, D: d, A: x, B: y})
	return a
}

// AddVS appends V[d] = V[x] + S[s].
func (a *Assembler) AddVS(d, x, s int) *Assembler {
	a.p = append(a.p, Instr{Op: OpAddVS, D: d, A: x, B: s})
	return a
}

// MulVS appends V[d] = V[x] · S[s].
func (a *Assembler) MulVS(d, x, s int) *Assembler {
	a.p = append(a.p, Instr{Op: OpMulVS, D: d, A: x, B: s})
	return a
}

// SumV appends S[d] = Σ V[x].
func (a *Assembler) SumV(d, x int) *Assembler {
	a.p = append(a.p, Instr{Op: OpSumV, D: d, A: x})
	return a
}

// DAXPY assembles the strip-mined y ← α·x + y over n elements with the
// given word strides — the paper's prototypical vector operation. It uses
// V0/V1, S0, and address registers A0–A3.
func DAXPY(alpha float64, xBase, yBase int64, strideX, strideY int64, n, mvl int) Program {
	var a Assembler
	a.LoadS(0, alpha)
	a.LoadA(0, xBase)
	a.LoadA(1, strideX)
	a.LoadA(2, yBase)
	a.LoadA(3, strideY)
	for done := 0; done < n; done += mvl {
		l := mvl
		if n-done < l {
			l = n - done
		}
		a.SetVL(l)
		a.LoadV(0, 0, 1)  // V0 = x
		a.MulVS(0, 0, 0)  // V0 = α·x
		a.LoadV(1, 2, 3)  // V1 = y
		a.AddVV(1, 1, 0)  // V1 = y + α·x
		a.StoreV(1, 2, 3) // y = V1
		a.AddA(0, int64(l)*strideX)
		a.AddA(2, int64(l)*strideY)
	}
	return a.Program()
}

// AddSS appends S[d] = S[x] + S[y].
func (a *Assembler) AddSS(d, x, y int) *Assembler {
	a.p = append(a.p, Instr{Op: OpAddSS, D: d, A: x, B: y})
	return a
}

// DotProduct assembles S1 = Σ x·y over n elements (unit stride),
// accumulating strip partial sums.
func DotProduct(xBase, yBase int64, n, mvl int) Program {
	var a Assembler
	a.LoadS(1, 0)
	a.LoadA(0, xBase)
	a.LoadA(2, yBase)
	a.LoadA(1, 1) // unit stride
	for done := 0; done < n; done += mvl {
		l := mvl
		if n-done < l {
			l = n - done
		}
		a.SetVL(l)
		a.LoadV(0, 0, 1)
		a.LoadV(1, 2, 1)
		a.MulVV(0, 0, 1)
		a.SumV(2, 0)     // S2 = strip sum
		a.AddSS(1, 1, 2) // S1 += S2
		a.AddA(0, int64(l))
		a.AddA(2, int64(l))
	}
	return a.Program()
}

// Gather appends V[d][i] = mem[A[base] + V[idx][i]].
func (a *Assembler) Gather(d, base, idx int) *Assembler {
	a.p = append(a.p, Instr{Op: OpGather, D: d, A: base, B: idx})
	return a
}

// Scatter appends mem[A[base] + V[idx][i]] = V[d][i].
func (a *Assembler) Scatter(d, base, idx int) *Assembler {
	a.p = append(a.p, Instr{Op: OpScatter, D: d, A: base, B: idx})
	return a
}

// LoopStart opens a counted loop of n iterations.
func (a *Assembler) LoopStart(n int64) *Assembler {
	a.p = append(a.p, Instr{Op: OpLoopStart, Imm: n})
	return a
}

// LoopEnd closes the innermost loop.
func (a *Assembler) LoopEnd() *Assembler {
	a.p = append(a.p, Instr{Op: OpLoopEnd})
	return a
}

// DAXPYLoop is DAXPY expressed with a hardware loop instead of unrolled
// strips; n must be a multiple of mvl (trailing elements would need a
// separately assembled tail strip).
func DAXPYLoop(alpha float64, xBase, yBase int64, strideX, strideY int64, n, mvl int) (Program, error) {
	if n%mvl != 0 {
		return nil, fmt.Errorf("visa: DAXPYLoop needs n divisible by MVL (n=%d, mvl=%d)", n, mvl)
	}
	var a Assembler
	a.LoadS(0, alpha)
	a.LoadA(0, xBase)
	a.LoadA(1, strideX)
	a.LoadA(2, yBase)
	a.LoadA(3, strideY)
	a.SetVL(mvl)
	a.LoopStart(int64(n / mvl))
	a.LoadV(0, 0, 1)
	a.MulVS(0, 0, 0)
	a.LoadV(1, 2, 3)
	a.AddVV(1, 1, 0)
	a.StoreV(1, 2, 3)
	a.AddA(0, int64(mvl)*strideX)
	a.AddA(2, int64(mvl)*strideY)
	a.LoopEnd()
	return a.Program(), nil
}

// Disassemble renders the program as readable assembly, one instruction
// per line, with loop bodies indented.
func Disassemble(p Program) string {
	var b strings.Builder
	indent := 0
	for pc, ins := range p {
		if ins.Op == OpLoopEnd && indent > 0 {
			indent--
		}
		fmt.Fprintf(&b, "%4d  %s%s\n", pc, strings.Repeat("  ", indent), formatInstr(ins))
		if ins.Op == OpLoopStart {
			indent++
		}
	}
	return b.String()
}

func formatInstr(ins Instr) string {
	switch ins.Op {
	case OpSetVL:
		return fmt.Sprintf("setvl  %d", ins.Imm)
	case OpLoadA:
		return fmt.Sprintf("loada  a%d, %d", ins.D, ins.Imm)
	case OpAddA:
		return fmt.Sprintf("adda   a%d, %d", ins.D, ins.Imm)
	case OpLoadS:
		return fmt.Sprintf("loads  s%d, %g", ins.D, ins.FImm)
	case OpLoadV:
		return fmt.Sprintf("loadv  v%d, (a%d), a%d", ins.D, ins.A, ins.B)
	case OpStoreV:
		return fmt.Sprintf("storev v%d, (a%d), a%d", ins.D, ins.A, ins.B)
	case OpAddVV:
		return fmt.Sprintf("addvv  v%d, v%d, v%d", ins.D, ins.A, ins.B)
	case OpMulVV:
		return fmt.Sprintf("mulvv  v%d, v%d, v%d", ins.D, ins.A, ins.B)
	case OpAddVS:
		return fmt.Sprintf("addvs  v%d, v%d, s%d", ins.D, ins.A, ins.B)
	case OpMulVS:
		return fmt.Sprintf("mulvs  v%d, v%d, s%d", ins.D, ins.A, ins.B)
	case OpSumV:
		return fmt.Sprintf("sumv   s%d, v%d", ins.D, ins.A)
	case OpAddSS:
		return fmt.Sprintf("addss  s%d, s%d, s%d", ins.D, ins.A, ins.B)
	case OpGather:
		return fmt.Sprintf("gather v%d, (a%d + v%d)", ins.D, ins.A, ins.B)
	case OpScatter:
		return fmt.Sprintf("scatter v%d, (a%d + v%d)", ins.D, ins.A, ins.B)
	case OpLoopStart:
		return fmt.Sprintf("loop   %d", ins.Imm)
	case OpLoopEnd:
		return "endloop"
	default:
		return fmt.Sprintf("op(%d)", int(ins.Op))
	}
}
