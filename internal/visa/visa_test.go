package visa

import (
	"math"
	"strings"
	"testing"

	"primecache/internal/vcm"
)

func newCPU(t *testing.T, cfg Config) *CPU {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mmConfig() Config {
	return Config{Mach: vcm.DefaultMachine(32, 8), MemWords: 1 << 16}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Mach: vcm.DefaultMachine(32, 8), MemWords: 0}); err == nil {
		t.Error("zero memory accepted")
	}
	bad := vcm.DefaultMachine(32, 8)
	bad.Banks = 33
	if _, err := New(Config{Mach: bad, MemWords: 100}); err == nil {
		t.Error("bad machine accepted")
	}
	g := vcm.CacheGeom{Mapping: vcm.MapDirect, Lines: 100}
	if _, err := New(Config{Mach: vcm.DefaultMachine(32, 8), MemWords: 100, CacheGeom: &g}); err == nil {
		t.Error("bad cache geometry accepted")
	}
}

func TestScalarAndAddressOps(t *testing.T) {
	c := newCPU(t, mmConfig())
	var a Assembler
	a.LoadA(0, 100).AddA(0, -30).LoadS(2, 1.5).LoadS(3, 2.5).AddSS(1, 2, 3)
	if err := c.Run(a.Program()); err != nil {
		t.Fatal(err)
	}
	if c.a[0] != 70 {
		t.Errorf("A0 = %d, want 70", c.a[0])
	}
	if c.Scalar(1) != 4 {
		t.Errorf("S1 = %v, want 4", c.Scalar(1))
	}
}

func TestVectorLoadStoreRoundTrip(t *testing.T) {
	c := newCPU(t, mmConfig())
	for i := 0; i < 64; i++ {
		c.Mem()[100+i*3] = float64(i) * 1.5
	}
	var a Assembler
	a.SetVL(64).LoadA(0, 100).LoadA(1, 3).LoadV(0, 0, 1).
		LoadA(2, 5000).LoadA(3, 1).StoreV(0, 2, 3)
	if err := c.Run(a.Program()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if got := c.Mem()[5000+i]; got != float64(i)*1.5 {
			t.Fatalf("mem[%d] = %v, want %v", 5000+i, got, float64(i)*1.5)
		}
	}
}

func TestVectorArithmetic(t *testing.T) {
	c := newCPU(t, mmConfig())
	for i := 0; i < 8; i++ {
		c.Mem()[i] = float64(i)
		c.Mem()[100+i] = 10
	}
	var a Assembler
	a.SetVL(8).
		LoadA(0, 0).LoadA(1, 1).LoadV(0, 0, 1). // V0 = 0..7
		LoadA(2, 100).LoadV(1, 2, 1).           // V1 = 10s
		AddVV(2, 0, 1).                         // V2 = 10..17
		MulVV(3, 0, 1).                         // V3 = 0,10,...,70
		LoadS(0, 2).MulVS(4, 0, 0).             // V4 = 0,2,...,14
		AddVS(5, 0, 0).                         // V5 = 2..9
		SumV(1, 2)                              // S1 = Σ V2 = 108
	if err := c.Run(a.Program()); err != nil {
		t.Fatal(err)
	}
	if c.v[2][3] != 13 || c.v[3][3] != 30 || c.v[4][3] != 6 || c.v[5][3] != 5 {
		t.Errorf("vector results: %v %v %v %v", c.v[2][3], c.v[3][3], c.v[4][3], c.v[5][3])
	}
	if c.Scalar(1) != 108 {
		t.Errorf("S1 = %v, want 108", c.Scalar(1))
	}
}

func TestSetVLClampsToMVL(t *testing.T) {
	c := newCPU(t, mmConfig())
	if err := c.Run(Program{{Op: OpSetVL, Imm: 1000}}); err != nil {
		t.Fatal(err)
	}
	if c.vl != 64 {
		t.Errorf("vl = %d, want MVL=64", c.vl)
	}
	if err := c.Run(Program{{Op: OpSetVL, Imm: -1}}); err == nil {
		t.Error("negative VL accepted")
	}
}

func TestMemoryBoundsTrap(t *testing.T) {
	c := newCPU(t, Config{Mach: vcm.DefaultMachine(32, 8), MemWords: 100})
	var a Assembler
	a.SetVL(64).LoadA(0, 90).LoadA(1, 1).LoadV(0, 0, 1)
	if err := c.Run(a.Program()); err == nil {
		t.Error("out-of-bounds load accepted")
	}
	var b Assembler
	b.SetVL(4).LoadA(0, 2).LoadA(1, -1).LoadV(0, 0, 1)
	if err := c.Run(b.Program()); err == nil {
		t.Error("negative-address load accepted")
	}
}

func TestRegisterBoundsTrap(t *testing.T) {
	c := newCPU(t, mmConfig())
	for _, p := range []Program{
		{{Op: OpLoadA, D: 8}},
		{{Op: OpLoadS, D: -1}},
		{{Op: OpLoadV, D: 9}},
		{{Op: OpAddVV, D: 0, A: 0, B: 8}},
		{{Op: OpSumV, D: 9}},
		{{Op: Op(99)}},
	} {
		if err := c.Run(p); err == nil {
			t.Errorf("program %+v accepted", p)
		}
	}
}

func TestDAXPYCorrectness(t *testing.T) {
	c := newCPU(t, mmConfig())
	const n = 200
	for i := 0; i < n; i++ {
		c.Mem()[i] = float64(i)         // x
		c.Mem()[10000+i*2] = float64(i) // y, stride 2
	}
	if err := c.Run(DAXPY(3, 0, 10000, 1, 2, n, 64)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 3*float64(i) + float64(i)
		if got := c.Mem()[10000+i*2]; got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestDotProductCorrectness(t *testing.T) {
	c := newCPU(t, mmConfig())
	const n = 150
	var want float64
	for i := 0; i < n; i++ {
		c.Mem()[i] = float64(i % 7)
		c.Mem()[20000+i] = float64(i % 5)
		want += float64(i%7) * float64(i%5)
	}
	if err := c.Run(DotProduct(0, 20000, n, 64)); err != nil {
		t.Fatal(err)
	}
	if got := c.Scalar(1); math.Abs(got-want) > 1e-9 {
		t.Errorf("dot = %v, want %v", got, want)
	}
}

func TestCyclesAccumulate(t *testing.T) {
	c := newCPU(t, mmConfig())
	p := DAXPY(2, 0, 30000, 1, 1, 128, 64)
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	first := c.Cycles()
	if first <= 0 {
		t.Fatal("no cycles counted")
	}
	if err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if c.Cycles() <= first {
		t.Error("cycles did not accumulate")
	}
}

// TestCachedCPUPrimeVsDirect runs the same strided re-reduction program
// on three machines — no cache, direct cache, prime cache — and checks
// both identical numerics and the paper's timing ordering.
func TestCachedCPUPrimeVsDirect(t *testing.T) {
	const (
		stride = 512
		n      = 2048
		reps   = 4
	)
	prog := func() Program {
		var a Assembler
		a.LoadA(1, stride)
		a.LoadS(1, 0)
		for r := 0; r < reps; r++ {
			a.LoadA(0, 0)
			for done := 0; done < n; done += 64 {
				a.SetVL(64)
				a.LoadV(0, 0, 1)
				a.SumV(2, 0)
				a.AddSS(1, 1, 2)
				a.AddA(0, 64*stride)
			}
		}
		return a.Program()
	}()

	run := func(geom *vcm.CacheGeom) (float64, int64) {
		cfg := Config{Mach: vcm.DefaultMachine(64, 32), MemWords: stride*n + 1, CacheGeom: geom}
		c := newCPU(t, cfg)
		for i := 0; i < n; i++ {
			c.Mem()[i*stride] = float64(i % 9)
		}
		if err := c.Run(prog); err != nil {
			t.Fatal(err)
		}
		return c.Scalar(1), c.Cycles()
	}

	dg, pg := vcm.DirectGeom(13), vcm.PrimeGeom(13)
	vMM, cyMM := run(nil)
	vDir, cyDir := run(&dg)
	vPrm, cyPrm := run(&pg)

	if vMM != vDir || vMM != vPrm {
		t.Fatalf("results differ: %v %v %v", vMM, vDir, vPrm)
	}
	if !(cyPrm < cyDir) {
		t.Errorf("prime cycles %d not below direct %d", cyPrm, cyDir)
	}
	if !(cyPrm < cyMM) {
		t.Errorf("prime cycles %d not below MM %d", cyPrm, cyMM)
	}
	// Direct-mapped at stride 512 thrashes: every reuse load misses, so
	// it should be at least as slow as the cacheless machine.
	if cyDir < cyMM/2 {
		t.Errorf("direct cycles %d suspiciously fast vs MM %d", cyDir, cyMM)
	}
}

func TestPrimeBankedMemoryCPU(t *testing.T) {
	cfg := Config{Mach: vcm.DefaultMachine(64, 32), MemWords: 1 << 16, PrimeBankedMemory: true}
	c := newCPU(t, cfg)
	for i := 0; i < 64; i++ {
		c.Mem()[i*64] = 1
	}
	var a Assembler
	a.SetVL(64).LoadA(0, 0).LoadA(1, 64).LoadV(0, 0, 1).SumV(0, 0)
	if err := c.Run(a.Program()); err != nil {
		t.Fatal(err)
	}
	primeCycles := c.Cycles()

	cfg.PrimeBankedMemory = false
	c2 := newCPU(t, cfg)
	for i := 0; i < 64; i++ {
		c2.Mem()[i*64] = 1
	}
	if err := c2.Run(a.Program()); err != nil {
		t.Fatal(err)
	}
	if primeCycles >= c2.Cycles() {
		t.Errorf("prime-banked stride-64 load (%d cycles) not faster than 2^m banks (%d)", primeCycles, c2.Cycles())
	}
	if c.Scalar(0) != 64 {
		t.Errorf("sum = %v, want 64", c.Scalar(0))
	}
}

func TestOpString(t *testing.T) {
	if OpSetVL.String() != "setvl" || OpAddSS.String() != "addss" {
		t.Error("Op names wrong")
	}
	if Op(99).String() != "op(99)" {
		t.Error("unknown op name wrong")
	}
}

func TestCacheStatsExposed(t *testing.T) {
	g := vcm.PrimeGeom(13)
	c := newCPU(t, Config{Mach: vcm.DefaultMachine(32, 8), MemWords: 1 << 16, CacheGeom: &g})
	var a Assembler
	a.SetVL(64).LoadA(0, 0).LoadA(1, 1).LoadV(0, 0, 1)
	if err := c.Run(a.Program()); err != nil {
		t.Fatal(err)
	}
	if s := c.CacheStats(); s.Accesses != 64 {
		t.Errorf("cache accesses = %d, want 64", s.Accesses)
	}
	mm := newCPU(t, mmConfig())
	if s := mm.CacheStats(); s.Accesses != 0 {
		t.Error("MM machine should report zero cache stats")
	}
}

func TestGatherScatter(t *testing.T) {
	c := newCPU(t, mmConfig())
	// Data at scattered addresses; index vector selects them.
	for i := 0; i < 16; i++ {
		c.Mem()[100+i*37] = float64(i) * 2
	}
	var a Assembler
	a.SetVL(16).LoadA(0, 100)
	// Build the index vector in memory first, then load it.
	for i := 0; i < 16; i++ {
		c.Mem()[5000+i] = float64(i * 37)
	}
	a.LoadA(2, 5000).LoadA(3, 1).LoadV(1, 2, 3) // V1 = indices
	a.Gather(0, 0, 1)                           // V0 = mem[100 + V1]
	a.LoadA(4, 8000).Scatter(0, 4, 1)           // mem[8000 + V1] = V0
	if err := c.Run(a.Program()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if got := c.Mem()[8000+i*37]; got != float64(i)*2 {
			t.Fatalf("scattered[%d] = %v, want %v", i, got, float64(i)*2)
		}
	}
}

func TestGatherBoundsTrap(t *testing.T) {
	c := newCPU(t, Config{Mach: vcm.DefaultMachine(32, 8), MemWords: 100})
	var a Assembler
	a.SetVL(4).LoadA(0, 95)
	c.Mem()[0] = 0
	c.Mem()[1] = 10 // 95+10 > 100
	a.LoadA(2, 0).LoadA(3, 1).LoadV(1, 2, 3).Gather(0, 0, 1)
	if err := c.Run(a.Program()); err == nil {
		t.Error("out-of-bounds gather accepted")
	}
	var b Assembler
	b.p = Program{{Op: OpGather, D: 9, A: 0, B: 0}}
	if err := c.Run(b.p); err == nil {
		t.Error("bad register accepted")
	}
}

func TestGatherCachedVsUncached(t *testing.T) {
	// Repeated gathers of the same index set: cached machine hits on the
	// second pass, the MM machine pays t_m per element every time.
	prog := func() Program {
		var a Assembler
		a.SetVL(64).LoadA(2, 5000).LoadA(3, 1).LoadV(1, 2, 3).LoadA(0, 0)
		// Three passes: the cached machine pays its unpipelined misses
		// once, the MM machine pays t_m per element every pass.
		a.Gather(0, 0, 1)
		a.Gather(0, 0, 1)
		a.Gather(0, 0, 1)
		return a.Program()
	}()
	g := vcm.PrimeGeom(13)
	run := func(geom *vcm.CacheGeom) int64 {
		c := newCPU(t, Config{Mach: vcm.DefaultMachine(64, 32), MemWords: 1 << 16, CacheGeom: geom})
		for i := 0; i < 64; i++ {
			c.Mem()[5000+i] = float64(i * 97 % 4000)
		}
		if err := c.Run(prog); err != nil {
			t.Fatal(err)
		}
		return c.Cycles()
	}
	if cached, raw := run(&g), run(nil); cached >= raw {
		t.Errorf("cached gather cycles %d not below uncached %d", cached, raw)
	}
}

func TestLoopBasics(t *testing.T) {
	c := newCPU(t, mmConfig())
	var a Assembler
	a.LoadS(1, 0).LoadS(2, 1)
	a.LoopStart(5).AddSS(1, 1, 2).LoopEnd()
	if err := c.Run(a.Program()); err != nil {
		t.Fatal(err)
	}
	if c.Scalar(1) != 5 {
		t.Errorf("S1 = %v, want 5", c.Scalar(1))
	}
}

func TestLoopNested(t *testing.T) {
	c := newCPU(t, mmConfig())
	var a Assembler
	a.LoadS(1, 0).LoadS(2, 1)
	a.LoopStart(3).LoopStart(4).AddSS(1, 1, 2).LoopEnd().LoopEnd()
	if err := c.Run(a.Program()); err != nil {
		t.Fatal(err)
	}
	if c.Scalar(1) != 12 {
		t.Errorf("S1 = %v, want 12", c.Scalar(1))
	}
}

func TestLoopZeroIterations(t *testing.T) {
	c := newCPU(t, mmConfig())
	var a Assembler
	a.LoadS(1, 7).LoadS(2, 1)
	a.LoopStart(0).AddSS(1, 1, 2).LoopEnd()
	a.AddSS(1, 1, 2) // executes once after the skipped loop
	if err := c.Run(a.Program()); err != nil {
		t.Fatal(err)
	}
	if c.Scalar(1) != 8 {
		t.Errorf("S1 = %v, want 8 (body skipped)", c.Scalar(1))
	}
}

func TestLoopErrors(t *testing.T) {
	c := newCPU(t, mmConfig())
	if err := c.Run(Program{{Op: OpLoopEnd}}); err == nil {
		t.Error("dangling loop end accepted")
	}
	if err := c.Run(Program{{Op: OpLoopStart, Imm: 2}}); err == nil {
		t.Error("unterminated loop accepted")
	}
	if err := c.Run(Program{{Op: OpLoopStart, Imm: -1}, {Op: OpLoopEnd}}); err == nil {
		t.Error("negative count accepted")
	}
	if err := c.Run(Program{{Op: OpLoopStart, Imm: 0}}); err == nil {
		t.Error("unmatched zero loop accepted")
	}
	deep := Program{}
	for i := 0; i < MaxLoopDepth+1; i++ {
		deep = append(deep, Instr{Op: OpLoopStart, Imm: 1})
	}
	for i := 0; i < MaxLoopDepth+1; i++ {
		deep = append(deep, Instr{Op: OpLoopEnd})
	}
	if err := c.Run(deep); err == nil {
		t.Error("over-deep nesting accepted")
	}
}

func TestDAXPYLoopMatchesUnrolled(t *testing.T) {
	const n = 256
	setup := func(c *CPU) {
		for i := 0; i < n; i++ {
			c.Mem()[i] = float64(i % 11)
			c.Mem()[30000+i] = float64(i % 5)
		}
	}
	unrolled := newCPU(t, mmConfig())
	setup(unrolled)
	if err := unrolled.Run(DAXPY(2, 0, 30000, 1, 1, n, 64)); err != nil {
		t.Fatal(err)
	}
	looped := newCPU(t, mmConfig())
	setup(looped)
	prog, err := DAXPYLoop(2, 0, 30000, 1, 1, n, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := looped.Run(prog); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if unrolled.Mem()[30000+i] != looped.Mem()[30000+i] {
			t.Fatalf("y[%d]: unrolled %v, looped %v", i, unrolled.Mem()[30000+i], looped.Mem()[30000+i])
		}
	}
	// The looped program is far shorter as code.
	if len(prog) >= n/64*7 {
		t.Errorf("looped program %d instrs, want ≪ unrolled", len(prog))
	}
	if _, err := DAXPYLoop(1, 0, 0, 1, 1, 100, 64); err == nil {
		t.Error("non-multiple n accepted")
	}
}

func TestDisassemble(t *testing.T) {
	prog, err := DAXPYLoop(2, 0, 100, 1, 1, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(prog)
	for _, want := range []string{"loop   2", "loadv  v0, (a0), a1", "mulvs  v0, v0, s0", "endloop", "storev"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	// Every opcode formats.
	all := Program{
		{Op: OpSetVL, Imm: 64}, {Op: OpLoadA}, {Op: OpAddA}, {Op: OpLoadS},
		{Op: OpLoadV}, {Op: OpStoreV}, {Op: OpAddVV}, {Op: OpMulVV},
		{Op: OpAddVS}, {Op: OpMulVS}, {Op: OpSumV}, {Op: OpAddSS},
		{Op: OpGather}, {Op: OpScatter}, {Op: OpLoopStart, Imm: 1}, {Op: OpLoopEnd},
		{Op: Op(99)},
	}
	lines := strings.Count(Disassemble(all), "\n")
	if lines != len(all) {
		t.Errorf("disassembly lines = %d, want %d", lines, len(all))
	}
}

func TestChainingSpeedsDependentOps(t *testing.T) {
	prog := DAXPY(2.5, 0, 32768, 1, 1, 1024, 64)
	setup := func(chain bool) *CPU {
		c := newCPU(t, Config{Mach: vcm.DefaultMachine(32, 8), MemWords: 1 << 16, Chaining: chain})
		for i := 0; i < 1024; i++ {
			c.Mem()[i] = float64(i % 7)
			c.Mem()[32768+i] = 1
		}
		return c
	}
	plain := setup(false)
	if err := plain.Run(prog); err != nil {
		t.Fatal(err)
	}
	chained := setup(true)
	if err := chained.Run(prog); err != nil {
		t.Fatal(err)
	}
	if chained.Cycles() >= plain.Cycles() {
		t.Errorf("chained %d cycles not below unchained %d", chained.Cycles(), plain.Cycles())
	}
	// Numerics identical.
	for i := 0; i < 1024; i++ {
		if plain.Mem()[32768+i] != chained.Mem()[32768+i] {
			t.Fatalf("y[%d] differs: %v vs %v", i, plain.Mem()[32768+i], chained.Mem()[32768+i])
		}
	}
}

func TestChainingOnlyAppliesToDependents(t *testing.T) {
	// Independent back-to-back ops never chain.
	mk := func(chain bool) int64 {
		c := newCPU(t, Config{Mach: vcm.DefaultMachine(32, 8), MemWords: 1 << 10, Chaining: chain})
		var a Assembler
		a.SetVL(64).AddVV(2, 0, 1).AddVV(5, 3, 4) // second op independent of first
		if err := c.Run(a.Program()); err != nil {
			t.Fatal(err)
		}
		return c.Cycles()
	}
	if mk(true) != mk(false) {
		t.Error("independent ops should cost the same with and without chaining")
	}
	// Dependent pair chains.
	c := newCPU(t, Config{Mach: vcm.DefaultMachine(32, 8), MemWords: 1 << 10, Chaining: true})
	var a Assembler
	a.SetVL(64).AddVV(2, 0, 1).MulVV(3, 2, 1)
	if err := c.Run(a.Program()); err != nil {
		t.Fatal(err)
	}
	// setvl(1) + (64+4) + 4 = 73.
	if c.Cycles() != 73 {
		t.Errorf("chained pair cycles = %d, want 73", c.Cycles())
	}
}
