package visa

import (
	"fmt"
	"math"
	"math/rand"

	"primecache/internal/vcm"
)

// CompileVCM translates the paper's generic vector computation (one block
// of the VCM tuple, all R passes) into a concrete instruction sequence:
// strip-mined strided loads of the first vector, double-stream loads of
// the second with probability P_ds per strip, and a SAXPY-style multiply
// accumulate per strip. Strides are drawn from the VCM distribution with
// the given seed, so the same program can be replayed on every machine
// configuration — the instruction-level counterpart of package vproc.
//
// The returned program assumes memory of at least MemWordsForVCM words.
func CompileVCM(work vcm.VCM, mach vcm.Machine, strideLimit int, seed int64) (Program, error) {
	if err := work.Validate(); err != nil {
		return nil, err
	}
	if err := mach.Validate(); err != nil {
		return nil, err
	}
	if strideLimit < 1 {
		return nil, fmt.Errorf("visa: stride limit must be positive, got %d", strideLimit)
	}
	rng := rand.New(rand.NewSource(seed))
	draw := func(p1 float64) int64 {
		if strideLimit < 2 || rng.Float64() < p1 {
			return 1
		}
		return int64(2 + rng.Intn(strideLimit-1))
	}
	s1 := draw(work.P1S1)
	s2 := draw(work.P1S2)
	b2len := int(math.Round(float64(work.B) * work.Pds))

	var a Assembler
	a.LoadA(1, s1) // stride register, stream 1
	a.LoadA(3, s2) // stride register, stream 2
	a.LoadS(0, 1.0001)
	base2 := int64(work.B)*s1 + 4096 // second vector beyond the first
	i2 := 0
	if work.Pds == 0 {
		// Single-stream passes are identical: emit one body inside a
		// hardware loop (OpLoopStart) instead of unrolling R copies.
		a.LoopStart(int64(work.R))
		a.LoadA(0, 0)
		for done := 0; done < work.B; done += mach.MVL {
			l := mach.MVL
			if work.B-done < l {
				l = work.B - done
			}
			a.SetVL(l)
			a.LoadV(0, 0, 1)
			a.MulVS(0, 0, 0)
			a.AddA(0, int64(l)*s1)
		}
		a.LoopEnd()
		return a.Program(), nil
	}
	for pass := 0; pass < work.R; pass++ {
		a.LoadA(0, 0) // stream-1 cursor
		for done := 0; done < work.B; done += mach.MVL {
			l := mach.MVL
			if work.B-done < l {
				l = work.B - done
			}
			a.SetVL(l)
			a.LoadV(0, 0, 1)
			if work.Pds > 0 && b2len > 0 && rng.Float64() < work.Pds {
				start2 := base2 + int64(i2%b2len)*s2
				a.LoadA(2, start2)
				a.LoadV(1, 2, 3)
				a.MulVV(0, 0, 1)
				i2 += l
			} else {
				a.MulVS(0, 0, 0)
			}
			a.AddA(0, int64(l)*s1)
		}
	}
	return a.Program(), nil
}

// MemWordsForVCM returns a safe memory size for a program compiled from
// work with the given stride limit.
func MemWordsForVCM(work vcm.VCM, strideLimit int) int {
	b2len := int(math.Round(float64(work.B) * work.Pds))
	span := work.B*strideLimit + 4096 + (b2len+1)*strideLimit + 1
	return span + 1
}
