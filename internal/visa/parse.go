package visa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads textual vector assembly — the format Disassemble emits,
// minus the leading program-counter column — into a Program. One
// instruction per line; blank lines and '#' or ';' comments are ignored.
// Register operands are v0–v7, s0–s7, a0–a7; memory operands are
// "(aN)"-style. Example:
//
//	loads  s0, 2.5
//	loada  a0, 0
//	loada  a1, 1
//	setvl  64
//	loop   4
//	  loadv  v0, (a0), a1
//	  mulvs  v0, v0, s0
//	  adda   a0, 64
//	endloop
func Parse(r io.Reader) (Program, error) {
	var prog Program
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		// Tolerate Disassemble's leading pc column ("  12  loadv …").
		fields := strings.Fields(line)
		if len(fields) > 1 {
			if _, err := strconv.Atoi(fields[0]); err == nil {
				fields = fields[1:]
			}
		}
		ins, err := parseInstr(fields)
		if err != nil {
			return nil, fmt.Errorf("visa: line %d: %w", lineNo, err)
		}
		prog = append(prog, ins)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("visa: %w", err)
	}
	return prog, nil
}

func parseInstr(fields []string) (Instr, error) {
	if len(fields) == 0 {
		return Instr{}, fmt.Errorf("empty instruction")
	}
	op := strings.ToLower(fields[0])
	args := strings.Split(strings.Join(fields[1:], ""), ",")
	if len(args) == 1 && args[0] == "" {
		args = nil
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case "setvl":
		if err := need(1); err != nil {
			return Instr{}, err
		}
		n, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return Instr{}, fmt.Errorf("bad vector length %q", args[0])
		}
		return Instr{Op: OpSetVL, Imm: n}, nil
	case "loada", "adda":
		if err := need(2); err != nil {
			return Instr{}, err
		}
		d, err := reg(args[0], 'a')
		if err != nil {
			return Instr{}, err
		}
		imm, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return Instr{}, fmt.Errorf("bad immediate %q", args[1])
		}
		o := OpLoadA
		if op == "adda" {
			o = OpAddA
		}
		return Instr{Op: o, D: d, Imm: imm}, nil
	case "loads":
		if err := need(2); err != nil {
			return Instr{}, err
		}
		d, err := reg(args[0], 's')
		if err != nil {
			return Instr{}, err
		}
		f, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return Instr{}, fmt.Errorf("bad float immediate %q", args[1])
		}
		return Instr{Op: OpLoadS, D: d, FImm: f}, nil
	case "loadv", "storev":
		if err := need(3); err != nil {
			return Instr{}, err
		}
		d, err := reg(args[0], 'v')
		if err != nil {
			return Instr{}, err
		}
		base, err := reg(strings.Trim(args[1], "()"), 'a')
		if err != nil {
			return Instr{}, err
		}
		stride, err := reg(args[2], 'a')
		if err != nil {
			return Instr{}, err
		}
		o := OpLoadV
		if op == "storev" {
			o = OpStoreV
		}
		return Instr{Op: o, D: d, A: base, B: stride}, nil
	case "addvv", "mulvv", "addvs", "mulvs", "addss":
		if err := need(3); err != nil {
			return Instr{}, err
		}
		kinds := map[string][3]byte{
			"addvv": {'v', 'v', 'v'}, "mulvv": {'v', 'v', 'v'},
			"addvs": {'v', 'v', 's'}, "mulvs": {'v', 'v', 's'},
			"addss": {'s', 's', 's'},
		}
		ops := map[string]Op{"addvv": OpAddVV, "mulvv": OpMulVV, "addvs": OpAddVS, "mulvs": OpMulVS, "addss": OpAddSS}
		k := kinds[op]
		d, err := reg(args[0], k[0])
		if err != nil {
			return Instr{}, err
		}
		a, err := reg(args[1], k[1])
		if err != nil {
			return Instr{}, err
		}
		b, err := reg(args[2], k[2])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: ops[op], D: d, A: a, B: b}, nil
	case "sumv":
		if err := need(2); err != nil {
			return Instr{}, err
		}
		d, err := reg(args[0], 's')
		if err != nil {
			return Instr{}, err
		}
		a, err := reg(args[1], 'v')
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpSumV, D: d, A: a}, nil
	case "loop":
		if err := need(1); err != nil {
			return Instr{}, err
		}
		n, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return Instr{}, fmt.Errorf("bad loop count %q", args[0])
		}
		return Instr{Op: OpLoopStart, Imm: n}, nil
	case "endloop":
		if err := need(0); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpLoopEnd}, nil
	default:
		return Instr{}, fmt.Errorf("unknown mnemonic %q", op)
	}
}

// reg parses a register token like "v3" of the expected class.
func reg(tok string, class byte) (int, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 2 || tok[0] != class {
		return 0, fmt.Errorf("expected %c-register, got %q", class, tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return n, nil
}
