package visa

import (
	"testing"

	"primecache/internal/vcm"
)

func TestCompileVCMValidation(t *testing.T) {
	mach := vcm.DefaultMachine(64, 32)
	if _, err := CompileVCM(vcm.VCM{B: 0, R: 1}, mach, 64, 1); err == nil {
		t.Error("bad workload accepted")
	}
	bad := mach
	bad.Banks = 3
	if _, err := CompileVCM(vcm.DefaultVCM(64), bad, 64, 1); err == nil {
		t.Error("bad machine accepted")
	}
	if _, err := CompileVCM(vcm.DefaultVCM(64), mach, 0, 1); err == nil {
		t.Error("bad stride limit accepted")
	}
}

func TestCompileVCMDeterministic(t *testing.T) {
	mach := vcm.DefaultMachine(64, 32)
	w := vcm.DefaultVCM(512)
	w.R = 4
	p1, err := CompileVCM(w, mach, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := CompileVCM(w, mach, 64, 9)
	if len(p1) != len(p2) {
		t.Fatalf("lengths differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	p3, _ := CompileVCM(w, mach, 64, 10)
	same := len(p3) == len(p1)
	if same {
		diff := false
		for i := range p1 {
			if p1[i] != p3[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds compiled identical programs (suspicious)")
	}
}

// TestThreeFidelityAgreement is the capstone cross-check: the same VCM
// operating point evaluated at three fidelities — the analytic model
// (vcm), the trace-level machine simulator (vproc, exercised in its own
// package), and the instruction-level machine (this package) — must agree
// on the paper's ordering: prime-mapped below direct-mapped, both serving
// reuse better than no cache at all at t_m = 32.
func TestThreeFidelityAgreement(t *testing.T) {
	mach := vcm.DefaultMachine(64, 32)
	work := vcm.VCM{B: 2048, R: 8, Pds: 0, P1S1: 0, P1S2: 0} // all-random strides
	const strideLimit = 1 << 13                              // the CC stride range; shared so the ISA program is identical

	// One compiled program holds one stride draw; aggregate several
	// blocks so the stride distribution (the model's averaging) plays
	// out.
	memWords := MemWordsForVCM(work, strideLimit)
	run := func(geom *vcm.CacheGeom) int64 {
		var total int64
		for seed := int64(0); seed < 32; seed++ {
			prog, err := CompileVCM(work, mach, strideLimit, seed)
			if err != nil {
				t.Fatal(err)
			}
			cpu, err := New(Config{Mach: mach, MemWords: memWords, CacheGeom: geom})
			if err != nil {
				t.Fatal(err)
			}
			if err := cpu.Run(prog); err != nil {
				t.Fatal(err)
			}
			total += cpu.Cycles()
		}
		return total
	}
	dg, pg := vcm.DirectGeom(13), vcm.PrimeGeom(13)
	mm := run(nil)
	dir := run(&dg)
	prm := run(&pg)

	if !(prm < dir) {
		t.Errorf("ISA level: prime %d not below direct %d", prm, dir)
	}
	if !(prm < mm) {
		t.Errorf("ISA level: prime %d not below MM %d", prm, mm)
	}
	// The analytic model agrees on the ordering at this point.
	anaDir := vcm.CyclesPerResultCC(dg, mach, work, work.B)
	anaPrm := vcm.CyclesPerResultCC(pg, mach, work, work.B)
	anaMM := vcm.CyclesPerResultMM(mach, work, work.B)
	if !(anaPrm < anaDir && anaPrm < anaMM) {
		t.Errorf("analytic ordering broken: prime %v direct %v mm %v", anaPrm, anaDir, anaMM)
	}
	// And the magnitudes correspond loosely: ISA prime/direct ratio within
	// 3× of the analytic ratio.
	isaRatio := float64(dir) / float64(prm)
	anaRatio := anaDir / anaPrm
	if isaRatio < anaRatio/3 || isaRatio > anaRatio*3 {
		t.Errorf("ISA direct/prime %v vs analytic %v (beyond 3x)", isaRatio, anaRatio)
	}
}

func TestMemWordsForVCM(t *testing.T) {
	w := vcm.DefaultVCM(512)
	if got := MemWordsForVCM(w, 64); got < 512*64 {
		t.Errorf("MemWords = %d, too small", got)
	}
}
