// Package sim is the deterministic-simulation toolkit behind the chaos
// harness: an injectable clock (real in production, virtual in tests),
// and seeded fault schedules whose event logs are replayable from their
// seed. The server, cluster, and client packages take a sim.Clock so
// their timers — pool latency measurement, admission Retry-After
// pricing, readiness-probe ticks, hedge delays, retry backoff — can be
// driven explicitly by tests instead of by wall-clock sleeps.
package sim

import (
	"sync/atomic"
	"time"
)

// Clock is the time source threaded through the service layers. The
// production implementation is Real; tests substitute a *Virtual clock
// and advance it explicitly.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the elapsed time on this clock since t.
	Since(t time.Time) time.Duration
	// Sleep blocks until the clock has advanced by d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once it
	// has advanced by d.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires once the clock has advanced
	// by d.
	NewTimer(d time.Duration) *Timer
	// NewTicker returns a ticker that fires every d of clock time.
	NewTicker(d time.Duration) *Ticker
}

// Timer is a one-shot timer on a Clock. C delivers at most one value.
type Timer struct {
	C    <-chan time.Time
	stop func() bool
}

// Stop cancels the timer; it reports whether the stop prevented the
// timer from firing.
func (t *Timer) Stop() bool { return t.stop() }

// Ticker delivers clock ticks on C until stopped.
type Ticker struct {
	C    <-chan time.Time
	stop func()
}

// Stop shuts the ticker down. It does not close C.
func (t *Ticker) Stop() { t.stop() }

// Real is the production clock: a thin veneer over package time.
var Real Clock = realClock{}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop}
}

func (realClock) NewTicker(d time.Duration) *Ticker {
	t := time.NewTicker(d)
	return &Ticker{C: t.C, stop: t.Stop}
}

// Or returns c, or Real when c is nil — the idiom option structs use to
// default their Clock field.
func Or(c Clock) Clock {
	if c == nil {
		return Real
	}
	return c
}

// offsetClock shifts Now/Since by a mutable offset while delegating
// timers to the base clock. The chaos harness uses it to model clock
// skew on one node without touching the others.
type offsetClock struct {
	base   Clock
	offset atomic.Int64 // nanoseconds of skew
}

// NewOffset wraps base with a skewable view of time. The returned
// setter adjusts the skew atomically; timers and sleeps are unaffected
// (skew shifts what a node *reports*, not how fast it runs).
func NewOffset(base Clock) (Clock, func(time.Duration)) {
	oc := &offsetClock{base: base}
	return oc, func(d time.Duration) { oc.offset.Store(int64(d)) }
}

func (c *offsetClock) Now() time.Time {
	return c.base.Now().Add(time.Duration(c.offset.Load()))
}

func (c *offsetClock) Since(t time.Time) time.Duration        { return c.Now().Sub(t) }
func (c *offsetClock) Sleep(d time.Duration)                  { c.base.Sleep(d) }
func (c *offsetClock) After(d time.Duration) <-chan time.Time { return c.base.After(d) }
func (c *offsetClock) NewTimer(d time.Duration) *Timer        { return c.base.NewTimer(d) }
func (c *offsetClock) NewTicker(d time.Duration) *Ticker      { return c.base.NewTicker(d) }
