package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// EventKind classifies one injected fault in a Schedule.
type EventKind string

const (
	// EventCrash kills a node: in-flight connections sever, its memo
	// state is lost, and it refuses connections until EventRestart.
	EventCrash EventKind = "crash"
	// EventRestart brings a crashed node back with fresh (empty) state.
	EventRestart EventKind = "restart"
	// EventPartition cuts the coordinator↔node link: the process keeps
	// running (memo intact) but the coordinator cannot reach it.
	EventPartition EventKind = "partition"
	// EventHeal reconnects a partitioned node.
	EventHeal EventKind = "heal"
	// EventLatency gives every request to the node an added service
	// delay of Dur until the next latency/heal event.
	EventLatency EventKind = "latency"
	// EventSkew offsets the node's reported clock by Dur.
	EventSkew EventKind = "skew"
	// EventProbe runs one synchronous coordinator health-check round.
	// Between probes, failures are discovered passively — which is what
	// exercises mid-sweep failover.
	EventProbe EventKind = "probe"
	// EventLeave drains the node out of the cluster through the admin
	// API: its persisted shards migrate to the ring successors, the ring
	// swaps, and the harness then decommissions the node (wiping its
	// disk) so a later rejoin starts genuinely cold.
	EventLeave EventKind = "leave"
	// EventJoin adds a previously departed node back through the admin
	// API: the coordinator migrates the moved key ranges onto it before
	// the ring swap, and the harness checks the warm-join invariant —
	// the first probe of a migrated key answers memoized.
	EventJoin EventKind = "join"
)

// Event is one scheduled fault. Node is ignored for EventProbe.
type Event struct {
	Step int
	Kind EventKind
	Node int
	// Dur parameterizes latency spikes and clock skew.
	Dur time.Duration
}

func (e Event) String() string {
	switch e.Kind {
	case EventProbe:
		return fmt.Sprintf("step %02d: probe", e.Step)
	case EventLatency, EventSkew:
		return fmt.Sprintf("step %02d: %s node%d %v", e.Step, e.Kind, e.Node, e.Dur)
	default:
		return fmt.Sprintf("step %02d: %s node%d", e.Step, e.Kind, e.Node)
	}
}

// Schedule is a seeded fault plan over a fixed-size cluster: at each
// step zero or more events apply, then one sweep runs and the
// invariants are checked. The generator is a pure function of
// (seed, nodes, steps), so a schedule — and therefore the whole event
// log of a run — is replayable from its seed.
type Schedule struct {
	Seed   int64
	Nodes  int
	Steps  int
	Events []Event
}

// At returns the events scheduled for one step, in generation order.
func (s Schedule) At(step int) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Step == step {
			out = append(out, e)
		}
	}
	return out
}

// Log renders the canonical event log: one line per event. Two runs of
// the same seed must produce byte-identical logs.
func (s Schedule) Log() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d nodes=%d steps=%d\n", s.Seed, s.Nodes, s.Steps)
	for _, e := range s.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// nodeState tracks the generator's view of one node so it only emits
// sensible transitions (no restarting a live node, no double crash).
type nodeState int

const (
	nodeUp nodeState = iota
	nodeCrashed
	nodePartitioned
	nodeDeparted
)

// GenOptions selects optional event classes for GenerateWith.
type GenOptions struct {
	// Membership adds live join/leave events: an up node may drain out
	// of the cluster (another must stay reachable), and a departed node
	// eventually rejoins. Off, the generator is byte-identical to the
	// original Generate for every seed — replayability of historical
	// seeds is part of the schedule contract.
	Membership bool
}

// Generate builds the seeded fault plan. Invariant: at least one node
// is reachable (up and unpartitioned) after every step, so a run with
// working failover must deliver every job — which is exactly what makes
// the no-lost-jobs invariant sharp. Panics if nodes < 2 or steps < 1.
func Generate(seed int64, nodes, steps int) Schedule {
	return GenerateWith(seed, nodes, steps, GenOptions{})
}

// GenerateWith is Generate with optional event classes; zero options
// reproduce Generate exactly (same seed, same bytes).
func GenerateWith(seed int64, nodes, steps int, opts GenOptions) Schedule {
	if nodes < 2 || steps < 1 {
		panic("sim: Generate needs nodes >= 2 and steps >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed, Nodes: nodes, Steps: steps}
	state := make([]nodeState, nodes)

	reachable := func() int {
		n := 0
		for _, st := range state {
			if st == nodeUp {
				n++
			}
		}
		return n
	}

	for step := 0; step < steps; step++ {
		// 0–2 fault events per step, then maybe a probe round.
		for i, n := 0, rng.Intn(3); i < n; i++ {
			node := rng.Intn(nodes)
			switch state[node] {
			case nodeCrashed:
				state[node] = nodeUp
				s.Events = append(s.Events, Event{Step: step, Kind: EventRestart, Node: node})
			case nodePartitioned:
				state[node] = nodeUp
				s.Events = append(s.Events, Event{Step: step, Kind: EventHeal, Node: node})
			case nodeDeparted:
				state[node] = nodeUp
				s.Events = append(s.Events, Event{Step: step, Kind: EventJoin, Node: node})
			case nodeUp:
				// The fault die gains a face only when membership events
				// are enabled, so legacy seeds replay byte-identically.
				faults := 4
				if opts.Membership {
					faults = 5
				}
				switch k := rng.Intn(faults); k {
				case 0: // crash, only if another node stays reachable
					if reachable() > 1 {
						state[node] = nodeCrashed
						s.Events = append(s.Events, Event{Step: step, Kind: EventCrash, Node: node})
					}
				case 1: // partition, same constraint
					if reachable() > 1 {
						state[node] = nodePartitioned
						s.Events = append(s.Events, Event{Step: step, Kind: EventPartition, Node: node})
					}
				case 2:
					d := time.Duration(1+rng.Intn(5)) * time.Millisecond
					s.Events = append(s.Events, Event{Step: step, Kind: EventLatency, Node: node, Dur: d})
				case 3:
					d := time.Duration(rng.Intn(21)-10) * time.Second
					s.Events = append(s.Events, Event{Step: step, Kind: EventSkew, Node: node, Dur: d})
				case 4: // leave, only if another node stays reachable
					if reachable() > 1 {
						state[node] = nodeDeparted
						s.Events = append(s.Events, Event{Step: step, Kind: EventLeave, Node: node})
					}
				}
			}
		}
		// Probe rounds are themselves scheduled: roughly every other
		// step the coordinator learns the truth; in between, crashed
		// nodes are found the hard way (passively, mid-sweep).
		if rng.Intn(2) == 0 {
			s.Events = append(s.Events, Event{Step: step, Kind: EventProbe})
		}
	}
	return s
}
