package sim

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualAdvanceFiresInDeadlineOrder(t *testing.T) {
	v := NewVirtual()
	a := v.After(30 * time.Millisecond)
	b := v.After(10 * time.Millisecond)
	c := v.After(20 * time.Millisecond)

	v.Advance(time.Hour)
	order := make([]time.Time, 3)
	order[0], order[1], order[2] = <-b, <-c, <-a
	for i := 1; i < len(order); i++ {
		if !order[i-1].Before(order[i]) {
			t.Fatalf("fire times out of order: %v", order)
		}
	}
	if got := order[0]; !got.Equal(VirtualEpoch.Add(10 * time.Millisecond)) {
		t.Errorf("first fire delivered %v, want epoch+10ms", got)
	}
	if now := v.Now(); !now.Equal(VirtualEpoch.Add(time.Hour)) {
		t.Errorf("Now = %v after Advance(1h)", now)
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtual()
	tm := v.NewTimer(10 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	v.Advance(time.Second)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
	if n := v.Waiters(); n != 0 {
		t.Fatalf("%d waiters registered after stop", n)
	}
}

func TestVirtualTickerRearmsAndDropsBackloggedTicks(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(10 * time.Millisecond)
	defer tk.Stop()

	// Advancing 35ms with nobody draining: one tick is buffered, the
	// backlog is dropped (time.Ticker semantics).
	v.Advance(35 * time.Millisecond)
	first := <-tk.C
	if !first.Equal(VirtualEpoch.Add(10 * time.Millisecond)) {
		t.Errorf("first tick at %v, want epoch+10ms", first)
	}
	select {
	case extra := <-tk.C:
		t.Fatalf("backlogged tick delivered: %v", extra)
	default:
	}
	// The next window fires the re-armed tick.
	v.Advance(10 * time.Millisecond)
	if tick := <-tk.C; tick.Before(first) {
		t.Errorf("re-armed tick %v before first %v", tick, first)
	}
}

func TestVirtualSleepBlocksUntilAdvance(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		v.Sleep(50 * time.Millisecond)
		close(done)
	}()
	v.BlockUntil(1)
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	v.Advance(50 * time.Millisecond)
	<-done
}

func TestVirtualConcurrentWaiters(t *testing.T) {
	v := NewVirtual()
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.Sleep(time.Duration(i+1) * time.Millisecond)
		}(i)
	}
	v.BlockUntil(n)
	v.Advance(n * time.Millisecond)
	wg.Wait()
}

func TestOffsetClockSkews(t *testing.T) {
	v := NewVirtual()
	oc, setSkew := NewOffset(v)
	if !oc.Now().Equal(v.Now()) {
		t.Fatal("zero-offset clock disagrees with base")
	}
	setSkew(-3 * time.Second)
	if got, want := oc.Now(), v.Now().Add(-3*time.Second); !got.Equal(want) {
		t.Fatalf("skewed Now = %v, want %v", got, want)
	}
	// Timers ride the base clock, unaffected by skew.
	ch := oc.After(10 * time.Millisecond)
	v.Advance(10 * time.Millisecond)
	<-ch
}

func TestRealClockBasics(t *testing.T) {
	start := Real.Now()
	Real.Sleep(time.Millisecond)
	if Real.Since(start) <= 0 {
		t.Error("Real.Since not monotonic across Sleep")
	}
	tm := Real.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Error("Stop on pending real timer returned false")
	}
	tk := Real.NewTicker(time.Millisecond)
	<-tk.C
	tk.Stop()
	if Or(nil) != Real {
		t.Error("Or(nil) != Real")
	}
	v := NewVirtual()
	if Or(v) != Clock(v) {
		t.Error("Or(v) did not pass v through")
	}
}

func TestGenerateDeterministicLog(t *testing.T) {
	a := Generate(42, 3, 12)
	b := Generate(42, 3, 12)
	if a.Log() != b.Log() {
		t.Fatalf("same seed produced different logs:\n%s\nvs\n%s", a.Log(), b.Log())
	}
	if c := Generate(43, 3, 12); c.Log() == a.Log() {
		t.Error("different seeds produced identical logs")
	}
}

func TestGenerateKeepsOneNodeReachable(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		s := Generate(seed, 3, 20)
		state := make([]nodeState, s.Nodes)
		for step := 0; step < s.Steps; step++ {
			for _, e := range s.At(step) {
				switch e.Kind {
				case EventCrash:
					state[e.Node] = nodeCrashed
				case EventPartition:
					state[e.Node] = nodePartitioned
				case EventRestart, EventHeal:
					state[e.Node] = nodeUp
				}
			}
			up := 0
			for _, st := range state {
				if st == nodeUp {
					up++
				}
			}
			if up == 0 {
				t.Fatalf("seed %d step %d: no reachable node\n%s", seed, step, s.Log())
			}
		}
	}
}

func TestGenerateEventStateMachine(t *testing.T) {
	// Transitions must be legal: restart only after crash, heal only
	// after partition, crash/partition only from up.
	for seed := int64(0); seed < 100; seed++ {
		s := Generate(seed, 4, 16)
		state := make([]nodeState, s.Nodes)
		for _, e := range s.Events {
			switch e.Kind {
			case EventCrash, EventPartition, EventLatency, EventSkew:
				if state[e.Node] != nodeUp {
					t.Fatalf("seed %d: %s on non-up node\n%s", seed, e, s.Log())
				}
				if e.Kind == EventCrash {
					state[e.Node] = nodeCrashed
				} else if e.Kind == EventPartition {
					state[e.Node] = nodePartitioned
				}
			case EventRestart:
				if state[e.Node] != nodeCrashed {
					t.Fatalf("seed %d: restart of non-crashed node\n%s", seed, e)
				}
				state[e.Node] = nodeUp
			case EventHeal:
				if state[e.Node] != nodePartitioned {
					t.Fatalf("seed %d: heal of non-partitioned node\n%s", seed, e)
				}
				state[e.Node] = nodeUp
			}
		}
	}
}

func TestGenerateWithZeroOptionsMatchesGenerate(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		if a, b := Generate(seed, 3, 12).Log(), GenerateWith(seed, 3, 12, GenOptions{}).Log(); a != b {
			t.Fatalf("seed %d: GenerateWith zero options diverges from Generate:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestGenerateWithMembership checks the membership extension: leaves
// and joins appear, transitions stay legal (leave only from up, join
// only after leave, nothing else touches a departed node), and at
// least one node stays both reachable and a member after every step.
func TestGenerateWithMembership(t *testing.T) {
	sawLeave, sawJoin := false, false
	for seed := int64(0); seed < 200; seed++ {
		s := GenerateWith(seed, 3, 20, GenOptions{Membership: true})
		state := make([]nodeState, s.Nodes)
		for step := 0; step < s.Steps; step++ {
			for _, e := range s.At(step) {
				switch e.Kind {
				case EventCrash, EventPartition, EventLatency, EventSkew, EventLeave:
					if state[e.Node] != nodeUp {
						t.Fatalf("seed %d: %s on non-up node\n%s", seed, e, s.Log())
					}
					switch e.Kind {
					case EventCrash:
						state[e.Node] = nodeCrashed
					case EventPartition:
						state[e.Node] = nodePartitioned
					case EventLeave:
						state[e.Node] = nodeDeparted
						sawLeave = true
					}
				case EventRestart:
					if state[e.Node] != nodeCrashed {
						t.Fatalf("seed %d: restart of non-crashed node\n%s", seed, e)
					}
					state[e.Node] = nodeUp
				case EventHeal:
					if state[e.Node] != nodePartitioned {
						t.Fatalf("seed %d: heal of non-partitioned node\n%s", seed, e)
					}
					state[e.Node] = nodeUp
				case EventJoin:
					if state[e.Node] != nodeDeparted {
						t.Fatalf("seed %d: join of non-departed node\n%s", seed, e)
					}
					state[e.Node] = nodeUp
					sawJoin = true
				}
			}
			up := 0
			for _, st := range state {
				if st == nodeUp {
					up++
				}
			}
			if up == 0 {
				t.Fatalf("seed %d step %d: no reachable member\n%s", seed, step, s.Log())
			}
		}
	}
	if !sawLeave || !sawJoin {
		t.Fatalf("200 membership schedules produced leave=%v join=%v events; want both", sawLeave, sawJoin)
	}
}
