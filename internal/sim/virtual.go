package sim

import (
	"sort"
	"sync"
	"time"
)

// Virtual is a deterministic Clock driven entirely by Advance: Now
// stands still until a test moves it, and every Sleep/After/Timer/
// Ticker waiter fires exactly when the advancing test walks past its
// deadline. Waiters with earlier deadlines always fire first, and each
// fire observes the clock set to its own deadline, so a timer cascade
// unfolds in the same order on every run.
//
// Advance only releases waiters that are already registered. A test
// that races Advance against the goroutine that is about to call After
// should first call BlockUntil(n) to wait for the registration.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*vwaiter
	changed *sync.Cond // signaled whenever the waiter set changes
}

type vwaiter struct {
	at     time.Time
	ch     chan time.Time
	period time.Duration // > 0: ticker, re-arms after each fire
	dead   bool
}

// VirtualEpoch is the instant a fresh Virtual clock reads. Its exact
// value is arbitrary; what matters is that every run starts from the
// same one.
var VirtualEpoch = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

// NewVirtual returns a Virtual clock set to VirtualEpoch.
func NewVirtual() *Virtual {
	v := &Virtual{now: VirtualEpoch}
	v.changed = sync.NewCond(&v.mu)
	return v
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep blocks until the clock has been advanced by d. Sleep(0) and
// negative durations return immediately.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After returns a channel delivering the virtual time once the clock
// has advanced by d. Non-positive d fires at the next Advance (like a
// zero timer, it still waits for the driver to move time).
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	return v.addWaiter(d, 0).ch
}

// NewTimer returns a one-shot timer firing after d of virtual time.
func (v *Virtual) NewTimer(d time.Duration) *Timer {
	w := v.addWaiter(d, 0)
	return &Timer{C: w.ch, stop: func() bool { return v.removeWaiter(w) }}
}

// NewTicker returns a ticker firing every d of virtual time. d must be
// positive, matching time.NewTicker.
func (v *Virtual) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("sim: non-positive Virtual ticker period")
	}
	w := v.addWaiter(d, d)
	return &Ticker{C: w.ch, stop: func() { v.removeWaiter(w) }}
}

func (v *Virtual) addWaiter(d, period time.Duration) *vwaiter {
	v.mu.Lock()
	defer v.mu.Unlock()
	w := &vwaiter{at: v.now.Add(d), ch: make(chan time.Time, 1), period: period}
	v.waiters = append(v.waiters, w)
	v.changed.Broadcast()
	return w
}

func (v *Virtual) removeWaiter(w *vwaiter) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if w.dead {
		return false
	}
	w.dead = true
	for i, o := range v.waiters {
		if o == w {
			v.waiters = append(v.waiters[:i], v.waiters[i+1:]...)
			break
		}
	}
	v.changed.Broadcast()
	return true
}

// Advance moves the clock forward by d, firing every waiter whose
// deadline falls within the window in deadline order. Each fire sets
// the clock to that waiter's deadline first, so a handler reading Now
// inside the window sees its own trigger time.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	target := v.now.Add(d)
	for {
		w := v.nextDueLocked(target)
		if w == nil {
			break
		}
		v.now = w.at
		w.ch <- v.now // buffered(1); one-shots fire once, tickers may drop
		if w.period > 0 {
			w.at = w.at.Add(w.period)
		} else {
			w.dead = true
			v.dropDeadLocked()
		}
		v.changed.Broadcast()
	}
	v.now = target
}

// nextDueLocked returns the earliest live waiter due at or before
// target whose channel can accept a fire, or nil. A ticker whose
// buffered tick was never drained is skipped past target (dropped
// ticks, like time.Ticker).
func (v *Virtual) nextDueLocked(target time.Time) *vwaiter {
	sort.SliceStable(v.waiters, func(i, j int) bool { return v.waiters[i].at.Before(v.waiters[j].at) })
	for _, w := range v.waiters {
		if w.at.After(target) {
			break
		}
		if len(w.ch) == cap(w.ch) {
			// Undrained ticker: skip the backlogged ticks.
			if w.period > 0 {
				for !w.at.After(target) {
					w.at = w.at.Add(w.period)
				}
			}
			continue
		}
		return w
	}
	return nil
}

func (v *Virtual) dropDeadLocked() {
	live := v.waiters[:0]
	for _, w := range v.waiters {
		if !w.dead {
			live = append(live, w)
		}
	}
	v.waiters = live
}

// Waiters returns how many timers, tickers, and sleeps are currently
// registered.
func (v *Virtual) Waiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// BlockUntil blocks until at least n waiters are registered on the
// clock — the synchronization point between a test and the goroutine
// whose timer it is about to Advance past.
func (v *Virtual) BlockUntil(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.waiters) < n {
		v.changed.Wait()
	}
}
