package leak

import (
	"strings"
	"testing"
	"time"
)

func TestSnapshotSeesPlantedGoroutine(t *testing.T) {
	block := make(chan struct{})
	done := make(chan struct{})
	go func() { // deliberately leaked until the test releases it
		defer close(done)
		plantedLeakMarker(block)
	}()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if found := findMarker(Snapshot()); found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Snapshot never saw the planted goroutine")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	<-done
	if left := Wait(2 * time.Second); findMarker(left) {
		t.Fatalf("planted goroutine still reported after release:\n%s", strings.Join(left, "\n\n"))
	}
}

//go:noinline
func plantedLeakMarker(block chan struct{}) { <-block }

func findMarker(stacks []string) bool {
	for _, g := range stacks {
		if strings.Contains(g, "plantedLeakMarker") {
			return true
		}
	}
	return false
}

func TestWaitReturnsEmptyOnQuietSuite(t *testing.T) {
	if left := Wait(2 * time.Second); len(left) > 0 {
		t.Errorf("quiet test reported %d leaked goroutine(s):\n%s", len(left), strings.Join(left, "\n\n"))
	}
}

func TestMain(m *testing.M) { Main(m) }
