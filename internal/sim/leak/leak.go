// Package leak is a goroutine-leak checker for test suites and the
// chaos harness: it snapshots the live goroutines, filters the ones the
// runtime and test framework own, and reports whatever is left. The
// server, cluster, and client suites assert through Main that they end
// with no stray prober tickers, hedge timers, pool workers, or
// keep-alive loops; the chaos harness runs the same check at quiesce as
// one of its invariants.
package leak

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignored are stack substrings marking goroutines the checker must not
// count: the test framework itself, signal plumbing, and this package's
// own snapshot machinery.
var ignored = []string{
	"testing.Main(",
	"testing.(*M).",
	"testing.(*T).Run(",
	"testing.runFuzzing(",
	"testing.tRunner.func", // tRunner cleanup goroutine parked on a select
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ReadTrace",
	"primecache/internal/sim/leak.Snapshot",
}

// Snapshot returns the stacks of all interesting live goroutines, one
// string per goroutine. The calling goroutine is excluded.
func Snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
stacks:
	for i, g := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the goroutine running Snapshot
		}
		for _, ig := range ignored {
			if strings.Contains(g, ig) {
				continue stacks
			}
		}
		out = append(out, g)
	}
	return out
}

// Wait polls Snapshot until it comes back empty or timeout elapses,
// returning the survivors. The poll gives connection read-loops and
// draining workers a moment to notice closed listeners — a goroutine
// that is merely *exiting* is not a leak, one that survives the whole
// window is.
func Wait(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	for {
		left := Snapshot()
		if len(left) == 0 || time.Now().After(deadline) {
			return left
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Check fails t if goroutines are still running when the test ends.
// Call it directly at the end of a test, or early as
// `defer leak.Check(t)` around the whole body.
func Check(t testing.TB) {
	t.Helper()
	if left := Wait(2 * time.Second); len(left) > 0 {
		t.Errorf("leaked %d goroutine(s):\n%s", len(left), strings.Join(left, "\n\n"))
	}
}

// Main wraps testing.M.Run with a suite-level leak check: after every
// test in the package has passed, no interesting goroutine may remain.
// Use from TestMain:
//
//	func TestMain(m *testing.M) { leak.Main(m) }
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if left := Wait(5 * time.Second); len(left) > 0 {
			fmt.Fprintf(os.Stderr, "leak: suite leaked %d goroutine(s):\n%s\n",
				len(left), strings.Join(left, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}
