package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"primecache/internal/cache"
	"primecache/internal/client"
	"primecache/internal/cluster"
	"primecache/internal/obs"
	"primecache/internal/server"
	"primecache/internal/sim"
	"primecache/internal/sim/leak"
	"primecache/internal/trace"
)

// Options configures one chaos run. The zero value picks the standard
// 3-node, 8-step, 24-job configuration.
type Options struct {
	// Seed selects the fault schedule; the whole run is replayable from
	// it alone.
	Seed int64
	// Nodes is the cluster size (default 3, minimum 2).
	Nodes int
	// Steps is the schedule length (default 8).
	Steps int
	// Jobs is the sweep batch size run after every step (default 24).
	Jobs int
	// DropRescatter plants the deliberate failover bug in the
	// coordinator, to prove the no-lost-jobs invariant trips on it.
	DropRescatter bool
	// Persist gives every node a disk-backed memo tier in its own temp
	// directory. The directory survives crash/restart events — like a
	// disk across a process crash — so each restart exercises the
	// store's recovery path, and the warm-restart invariant checks a
	// restarted node answers previously-persisted jobs without
	// recomputing.
	Persist bool
	// RequestTimeout bounds one coordinator request (default 30s — the
	// run is step-synchronous, so this only matters when failover is
	// broken and a job's result never arrives).
	RequestTimeout time.Duration
	// Membership adds live join/leave events to the generated schedule:
	// a leave drains the node through the coordinator's admin API and
	// then decommissions it (disk wiped), a join boots it cold and adds
	// it back — which is what makes the warm-join invariant sharp: any
	// warmth the joiner shows can only have arrived via migration.
	Membership bool
	// Schedule overrides the generated schedule; nil selects
	// sim.GenerateWith(Seed, Nodes, Steps, {Membership}).
	Schedule *sim.Schedule
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Steps <= 0 {
		o.Steps = 8
	}
	if o.Jobs <= 0 {
		o.Jobs = 24
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	return o
}

// Violation is one invariant breach, tagged with the step and invariant
// name so a seed's failure reads like a trace.
type Violation struct {
	Step      int
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("step %02d: invariant %s violated: %s", v.Step, v.Invariant, v.Detail)
}

// Report is the outcome of one chaos run.
type Report struct {
	// Schedule is the fault schedule the run executed.
	Schedule sim.Schedule
	// Log is the deterministic event log: the schedule's events plus
	// one sweep-outcome line per step. Two runs with the same seed and
	// options produce byte-identical logs.
	Log []string
	// Violations holds every invariant breach, in step order.
	Violations []Violation
	// WarmChecks counts warm-restart invariant evaluations that ran: a
	// node restarted with the probe job on disk and was actually
	// checked. A persist-enabled run whose schedule restarts the probe's
	// owner should report at least one.
	WarmChecks int
	// WarmJoinChecks counts warm-join invariant evaluations: a node
	// joined with the probe job migrated onto its freshly wiped disk and
	// was actually checked.
	WarmJoinChecks int
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Invariant names, as they appear in violations.
const (
	InvJobs       = "no-lost-jobs"      // every sweep job answered exactly once, in order, successfully
	InvOracle     = "oracle-identical"  // payloads byte-identical to the single-node oracle
	InvLocality   = "memo-locality"     // repeat of an identical job is a memo hit
	InvAdmission  = "admission-quiesce" // admission/pool/inflight gauges return to zero between steps
	InvTrace      = "trace-stitching"   // every backend trace stitches to a coordinator trace across the hop
	InvLeak       = "goroutine-leak"    // everything spawned during the run exits at teardown
	InvWarm       = "warm-restart"      // a restarted node answers previously-persisted jobs memoized, with zero pool work
	InvMembership = "membership-change" // admin join/leave calls complete against a reachable cluster
	InvWarmJoin   = "warm-join"         // a freshly joined node answers a migrated probe job memoized, with zero pool work
)

// chaosAdminToken gates the coordinator's admin API inside the harness;
// membership events authenticate with it.
const chaosAdminToken = "chaos-admin"

// run owns the live pieces of one chaos execution.
type run struct {
	opts   Options
	sched  sim.Schedule
	nodes  []*node
	coord  *cluster.Coordinator
	tracer *obs.Tracer
	cts    *httptest.Server
	cl     *client.Client
	req    server.SweepRequest
	oracle [][]byte // per-index payload JSON from the single-node reference
	probe  server.SimulateRequest
	dirs   []string // per-node persist temp dirs, removed at teardown
	rep    *Report
}

// Run executes one seeded chaos schedule against a fresh in-process
// cluster and returns the report. Setup or oracle failures — problems
// with the harness, not the cluster — surface as an error instead.
func Run(o Options) (*Report, error) {
	o = o.withDefaults()
	sched := sim.GenerateWith(o.Seed, o.Nodes, o.Steps, sim.GenOptions{Membership: o.Membership})
	if o.Schedule != nil {
		sched = *o.Schedule
	}
	r := &run{opts: o, sched: sched, rep: &Report{Schedule: sched}}
	if err := r.setup(); err != nil {
		r.teardown()
		return nil, err
	}
	// The sweep runs before the locality probe on purpose: right after
	// the step's faults land, the coordinator still believes every node
	// is healthy, so the scatter routes straight into freshly-crashed
	// backends and mid-flight failover (not probe-ahead avoidance) is
	// what the no-lost-jobs invariant exercises.
	for step := 0; step < r.sched.Steps; step++ {
		r.applyEvents(step)
		r.runSweep(step)
		r.checkLocality(step)
		r.checkQuiesce(step)
		r.checkTraces(step)
	}
	r.teardown()
	if left := leak.Wait(2 * time.Second); len(left) > 0 {
		r.violate(r.sched.Steps, InvLeak,
			fmt.Sprintf("%d goroutine(s) survived teardown:\n%s", len(left), left[0]))
	}
	return r.rep, nil
}

// setup boots the nodes, the coordinator, and the single-node oracle,
// and precomputes the reference payloads.
func (r *run) setup() error {
	r.req = sweepJobs(r.opts.Jobs)
	r.probe = server.SimulateRequest{
		Cache:   cache.Spec{Kind: "prime", C: 13},
		Pattern: trace.Pattern{Name: "strided", Stride: 17, N: 4096, Stream: 1},
	}

	// Single-node oracle: the same jobs on one plain vcached. Payloads
	// are pure functions of the job, so the cluster must reproduce them
	// byte for byte no matter which node computes what.
	oracle := server.New(server.Options{})
	ots := httptest.NewServer(oracle.Handler())
	ocl := client.New(ots.URL, client.WithRetries(0))
	res, err := ocl.Sweep(context.Background(), r.req)
	ocl.Close()
	ots.Close()
	oracle.Close()
	if err != nil {
		return fmt.Errorf("chaos: oracle sweep: %w", err)
	}
	r.oracle = make([][]byte, len(res))
	for i, sr := range res {
		if sr.Error != "" {
			return fmt.Errorf("chaos: oracle job %d failed: %s", i, sr.Error)
		}
		if r.oracle[i], err = payloadJSON(sr); err != nil {
			return fmt.Errorf("chaos: oracle job %d: %w", i, err)
		}
	}

	backends := make([]string, r.sched.Nodes)
	for i := 0; i < r.sched.Nodes; i++ {
		dir := ""
		if r.opts.Persist {
			var err error
			if dir, err = os.MkdirTemp("", fmt.Sprintf("chaos-persist-%d-*", i)); err != nil {
				return fmt.Errorf("chaos: persist dir: %w", err)
			}
			r.dirs = append(r.dirs, dir)
		}
		n := newNode(i, server.Options{}, dir)
		r.nodes = append(r.nodes, n)
		backends[i] = n.ts.URL
	}
	// Probing and hedging are schedule-driven: the background prober is
	// off (EventProbe runs rounds explicitly) and hedging is disabled so
	// a request's backend is a deterministic function of health state.
	// Tracing stays on for every run: the harness doubles as the proof
	// that instrumentation never perturbs an invariant, and the stitching
	// check needs the rings. Capacity covers a full run (every step's
	// sweep plus two locality probes) without eviction.
	r.tracer = obs.NewTracer(obs.TracerOptions{Origin: "coord", Capacity: 1024})
	coord, err := cluster.New(cluster.Options{
		Backends:       backends,
		Replicas:       r.sched.Nodes,
		ProbeInterval:  -1,
		HedgeAfter:     -1,
		RequestTimeout: r.opts.RequestTimeout,
		Tracer:         r.tracer,
		DropRescatter:  r.opts.DropRescatter,
		AdminToken:     chaosAdminToken,
	})
	if err != nil {
		return fmt.Errorf("chaos: coordinator: %w", err)
	}
	r.coord = coord
	r.cts = httptest.NewServer(coord.Handler())
	r.cl = client.New(r.cts.URL, client.WithRetries(0), client.WithAdminToken(chaosAdminToken))
	return nil
}

func (r *run) teardown() {
	if r.cl != nil {
		r.cl.Close()
	}
	if r.cts != nil {
		r.cts.CloseClientConnections()
		r.cts.Close()
	}
	if r.coord != nil {
		r.coord.Close()
	}
	for _, n := range r.nodes {
		n.close()
	}
	for _, d := range r.dirs {
		os.RemoveAll(d)
	}
}

func (r *run) violate(step int, inv, detail string) {
	r.rep.Violations = append(r.rep.Violations, Violation{Step: step, Invariant: inv, Detail: detail})
}

func (r *run) logf(format string, args ...any) {
	r.rep.Log = append(r.rep.Log, fmt.Sprintf(format, args...))
}

// applyEvents plays this step's schedule entries against the cluster.
func (r *run) applyEvents(step int) {
	for _, ev := range r.sched.At(step) {
		r.rep.Log = append(r.rep.Log, ev.String())
		n := r.nodes[ev.Node]
		switch ev.Kind {
		case sim.EventCrash:
			n.crash()
		case sim.EventRestart:
			n.start()
			r.checkWarm(step, n)
		case sim.EventPartition:
			n.partition()
		case sim.EventHeal:
			n.heal()
		case sim.EventLatency:
			n.spike(ev.Dur)
		case sim.EventSkew:
			n.setSkew(ev.Dur)
		case sim.EventProbe:
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			r.coord.CheckHealth(ctx)
			cancel()
		case sim.EventLeave:
			r.adminLeave(step, n)
		case sim.EventJoin:
			r.adminJoin(step, n)
		}
	}
}

// adminLeave drains a node out through the admin API, then
// decommissions it: the process is killed and its disk wiped, so a
// later rejoin starts genuinely cold and any warmth it then shows can
// only have arrived via the coordinator's migration. The admin call
// happens while the node is still up — the leave migration exports
// from it.
func (r *run) adminLeave(step int, n *node) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout)
	defer cancel()
	if _, err := r.cl.AdminLeave(ctx, n.ts.URL); err != nil {
		r.violate(step, InvMembership, fmt.Sprintf("leave of node %d failed: %v", n.idx, err))
		return
	}
	n.decommission()
}

// adminJoin boots the decommissioned node cold on its original URL and
// adds it back through the admin API, then evaluates the warm-join
// invariant: if the coordinator's migration landed the fixed probe job
// on the joiner's freshly wiped disk, the joiner must answer it
// memoized with zero pool work.
func (r *run) adminJoin(step int, n *node) {
	n.start()
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout)
	defer cancel()
	if _, err := r.cl.AdminJoin(ctx, n.ts.URL); err != nil {
		r.violate(step, InvMembership, fmt.Sprintf("join of node %d failed: %v", n.idx, err))
		return
	}
	r.warmProbe(step, n, InvWarmJoin, &r.rep.WarmJoinChecks)
}

// checkWarm evaluates the warm-restart invariant on a node that just
// restarted: if its persist directory holds the fixed probe job (a
// prior incarnation computed and stored it before dying), the fresh
// server — whose memo and pool are empty — must answer that job
// memoized with zero pool work, straight from disk. The probe goes to
// the node directly but rides a span from the coordinator's tracer, so
// the trace-stitching invariant sees a remote-parented trace the
// coordinator knows, exactly like proxied traffic.
func (r *run) checkWarm(step int, n *node) {
	r.warmProbe(step, n, InvWarm, &r.rep.WarmChecks)
}

// warmProbe is the shared body of the warm-restart and warm-join
// invariants: when the node's persist tier holds the fixed probe job,
// the node — whose memo and pool are empty — must answer it memoized
// with zero pool work, straight from disk.
func (r *run) warmProbe(step int, n *node, inv string, checks *int) {
	if !r.opts.Persist {
		return
	}
	srv := n.server()
	if srv == nil || srv.Persist() == nil {
		return
	}
	key := server.SweepJob{Simulate: &r.probe}.Key()
	if _, ok := srv.Persist().Get(key); !ok {
		return // this node never served the probe; nothing to assert
	}
	*checks++
	before := srv.Metrics().Counter("pool.completed").Value()

	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout)
	defer cancel()
	ctx, span := r.tracer.StartSpan(ctx, "warm-probe")
	// A dedicated transport guarantees a fresh connection: the shared
	// default pool may hold a keep-alive connection the crash severed,
	// and a stale-connection EOF would read as a false violation.
	tr := &http.Transport{}
	ncl := client.New(n.ts.URL, client.WithRetries(0),
		client.WithHTTPClient(&http.Client{Transport: tr, Timeout: r.opts.RequestTimeout}))
	res, err := ncl.Simulate(ctx, r.probe)
	tr.CloseIdleConnections()
	span.End()
	if err != nil {
		r.violate(step, inv, fmt.Sprintf("node %d: probe against warm node failed: %v", n.idx, err))
		return
	}
	if !res.Memoized {
		r.violate(step, inv, fmt.Sprintf("node %d answered the persisted probe job unmemoized — the disk tier was not consulted", n.idx))
	}
	if after := srv.Metrics().Counter("pool.completed").Value(); after != before {
		r.violate(step, inv, fmt.Sprintf("node %d burned %d pool job(s) answering a persisted job, want 0", n.idx, after-before))
	}
}

// checkLocality sends the fixed probe job twice through the
// coordinator. Whatever faults are live, the two calls see identical
// health state, so they must route to the same backend and the second
// must be a memo hit — shard stickiness surviving failover. Both calls
// failing is legitimate under some schedules (the probe's replicas may
// all be mid-discovery); a success pair that misses the memo is not.
func (r *run) checkLocality(step int) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout)
	defer cancel()
	first, err := r.cl.Simulate(ctx, r.probe)
	if err != nil {
		return
	}
	second, err := r.cl.Simulate(ctx, r.probe)
	if err != nil {
		r.violate(step, InvLocality, fmt.Sprintf("repeat of just-served probe job failed: %v", err))
		return
	}
	if !second.Memoized {
		r.violate(step, InvLocality, "repeat of identical probe job not memoized — routing lost shard stickiness")
	}
	if first.HitRatio != second.HitRatio {
		r.violate(step, InvLocality, fmt.Sprintf("probe pair disagrees: hit ratio %v then %v", first.HitRatio, second.HitRatio))
	}
}

// runSweep pushes the full batch through the coordinator and checks the
// job-conservation and oracle invariants on what comes back.
func (r *run) runSweep(step int) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RequestTimeout+5*time.Second)
	defer cancel()
	results, err := r.cl.Sweep(ctx, r.req)
	if err != nil {
		r.logf("step %02d: sweep ok=0 err=%d (call failed)", step, len(r.req.Jobs))
		r.violate(step, InvJobs, fmt.Sprintf("sweep call failed outright: %v", err))
		return
	}

	ok, failed := 0, 0
	seen := make(map[int]bool, len(results))
	for pos, sr := range results {
		if sr.Index != pos {
			r.violate(step, InvJobs, fmt.Sprintf("result %d carries index %d — jobs reordered or duplicated", pos, sr.Index))
		}
		if seen[sr.Index] {
			r.violate(step, InvJobs, fmt.Sprintf("job %d answered twice", sr.Index))
		}
		seen[sr.Index] = true
		if sr.Error != "" {
			failed++
			continue
		}
		ok++
		if sr.Index < 0 || sr.Index >= len(r.oracle) {
			continue
		}
		got, err := payloadJSON(sr)
		if err != nil {
			r.violate(step, InvOracle, fmt.Sprintf("job %d: %v", sr.Index, err))
			continue
		}
		if !bytes.Equal(got, r.oracle[sr.Index]) {
			r.violate(step, InvOracle, fmt.Sprintf("job %d payload differs from single-node oracle:\n cluster: %s\n  oracle: %s",
				sr.Index, got, r.oracle[sr.Index]))
		}
	}
	r.logf("step %02d: sweep ok=%d err=%d", step, ok, failed)

	if len(results) != len(r.req.Jobs) {
		r.violate(step, InvJobs, fmt.Sprintf("sent %d jobs, got %d results", len(r.req.Jobs), len(results)))
	}
	// The generator keeps at least one node reachable and the ring is
	// configured with full replication, so with working failover every
	// job must succeed; a per-job error means a job was lost to a dead
	// replica instead of re-scattered.
	for _, sr := range results {
		if sr.Error != "" {
			r.violate(step, InvJobs, fmt.Sprintf("job %d failed despite a reachable replica: %s: %s", sr.Index, sr.ErrorCode, sr.Error))
		}
	}
}

// checkQuiesce asserts conservation at rest: once the step's requests
// have all been answered, every admission slot has been released and
// every in-flight gauge is back to zero, on the coordinator and on each
// live node. Handlers finish their bookkeeping just after writing the
// response, so the check polls briefly before calling it a leak.
func (r *run) checkQuiesce(step int) {
	deadline := time.Now().Add(2 * time.Second)
	var detail string
	for {
		detail = r.quiesceProblem()
		if detail == "" {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	r.violate(step, InvAdmission, detail)
}

// quiesceProblem returns a description of the first gauge still off
// zero, or "" when everything is at rest.
func (r *run) quiesceProblem() string {
	for _, n := range r.nodes {
		srv := n.server()
		if srv == nil {
			continue
		}
		snap := srv.Metrics().Snapshot()
		for _, g := range []string{"admission.queued", "pool.busy", "pool.queued", "inflight"} {
			if v := snap.Gauges[g]; v != 0 {
				return fmt.Sprintf("node %d gauge %s = %d at rest, want 0", n.idx, g, v)
			}
		}
	}
	return ""
}

// checkTraces asserts the distributed-tracing invariant at rest: every
// trace in every live node's ring must carry a remotely-parented edge
// span (the propagation header survived the hop) and its trace ID must
// exist in the coordinator's own ring — including traces created by
// re-scattered or hedged work, which is exactly how "a failover hop
// stays inside one trace" is proven. Publication trails the HTTP
// response by a scheduler beat (the edge span ends after the handler
// returns), so the check polls briefly like checkQuiesce does.
func (r *run) checkTraces(step int) {
	deadline := time.Now().Add(2 * time.Second)
	var detail string
	for {
		detail = r.traceProblem()
		if detail == "" {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	r.violate(step, InvTrace, detail)
}

// traceProblem returns a description of the first stitching breach, or
// "" when every backend trace joins up.
func (r *run) traceProblem() string {
	known := make(map[obs.TraceID]bool)
	for _, td := range r.tracer.Traces() {
		known[td.Trace] = true
	}
	for _, n := range r.nodes {
		srv := n.server()
		if srv == nil {
			continue
		}
		for _, td := range srv.Tracer().Traces() {
			remote := false
			for _, s := range td.Spans {
				if s.Remote {
					remote = true
					break
				}
			}
			if !remote {
				return fmt.Sprintf("node %d trace %016x has no remote edge span — the propagation header was dropped", n.idx, uint64(td.Trace))
			}
			if !known[td.Trace] {
				return fmt.Sprintf("node %d trace %016x is unknown to the coordinator — the trace ID did not survive the hop", n.idx, uint64(td.Trace))
			}
		}
	}
	return ""
}

// payloadJSON renders the node-independent part of one sweep result:
// the simulate/model payload without the Memoized flag (a repeat step
// legitimately serves from the memo) or the index envelope.
func payloadJSON(sr server.SweepResult) ([]byte, error) {
	var v any
	switch {
	case sr.Simulate != nil:
		v = sr.Simulate
	case sr.Model != nil:
		v = sr.Model
	default:
		return nil, fmt.Errorf("result %d carries no payload", sr.Index)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("marshal result %d: %w", sr.Index, err)
	}
	return b, nil
}

// sweepJobs builds the deterministic batch every step replays: a spread
// of cache organisations and strides plus a band of model evaluations,
// every key distinct so per-node memo state stays interpretable.
func sweepJobs(n int) server.SweepRequest {
	specs := []cache.Spec{
		{Kind: "prime", C: 13},
		{Kind: "direct", Lines: 8192},
		{Kind: "assoc", Lines: 8192, Ways: 4},
		{Kind: "skewed", Lines: 8192},
		{Kind: "victim", Lines: 8192},
	}
	var req server.SweepRequest
	models := n / 4
	for i := 0; i < n-models; i++ {
		req.Jobs = append(req.Jobs, server.SweepJob{Simulate: &server.SimulateRequest{
			Cache:   specs[i%len(specs)],
			Pattern: trace.Pattern{Name: "strided", Stride: int64(3 + 2*i), N: 256 + 8*i, Stream: 1},
			Passes:  1 + i%3,
		}})
	}
	for i := 0; i < models; i++ {
		req.Jobs = append(req.Jobs, server.SweepJob{Model: &server.ModelRequest{B: 512 << uint(i%4), Tm: 16 + 8*i}})
	}
	return req
}
