package chaos

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"primecache/internal/sim"
	"primecache/internal/sim/leak"
)

// TestMain asserts the whole chaos suite quiesces: every simulated
// cluster the runs boot must be fully gone at exit.
func TestMain(m *testing.M) { leak.Main(m) }

// schedules returns how many seeded schedules TestChaosSchedules runs:
// CHAOS_SCHEDULES when set (the Makefile's chaos target passes 50),
// otherwise a smoke-sized default.
func schedules(t *testing.T) int {
	if s := os.Getenv("CHAOS_SCHEDULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("CHAOS_SCHEDULES=%q is not a positive integer", s)
		}
		return n
	}
	if testing.Short() {
		return 2
	}
	return 8
}

// TestChaosSchedules is the headline check: N seeded fault schedules,
// each replayed against a fresh 3-node cluster, and every invariant
// must hold at every step. On a violation the seed is printed — rerun
// with that seed (or the logged schedule) to reproduce the failure.
func TestChaosSchedules(t *testing.T) {
	n := schedules(t)
	for i := 0; i < n; i++ {
		seed := int64(1 + i)
		rep, err := Run(Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d: %d invariant violation(s); reproduce with Run(Options{Seed: %d})", seed, len(rep.Violations), seed)
			for _, v := range rep.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			t.Logf("seed %d schedule:\n%s", seed, rep.Schedule.Log())
			t.Logf("seed %d event log:\n%s", seed, strings.Join(rep.Log, "\n"))
		}
	}
}

// TestChaosSeedReplay pins determinism: the same seed must produce a
// byte-identical schedule and event log across two full runs.
func TestChaosSeedReplay(t *testing.T) {
	const seed = 7
	first, err := Run(Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := first.Schedule.Log(), second.Schedule.Log(); a != b {
		t.Errorf("schedule not reproducible from seed %d:\n--- first\n%s\n--- second\n%s", seed, a, b)
	}
	a, b := strings.Join(first.Log, "\n"), strings.Join(second.Log, "\n")
	if a != b {
		t.Errorf("event log not reproducible from seed %d:\n--- first\n%s\n--- second\n%s", seed, a, b)
	}
	if first.Failed() || second.Failed() {
		t.Errorf("replay runs violated invariants: %v / %v", first.Violations, second.Violations)
	}
}

// brokenFailoverSchedule crashes two of three nodes in step 0 with no
// probe rounds: the sweep's sub-batches for the dead primaries fail in
// flight and must be re-scattered to the survivor.
func brokenFailoverSchedule() *sim.Schedule {
	return &sim.Schedule{
		Seed:  -1,
		Nodes: 3,
		Steps: 1,
		Events: []sim.Event{
			{Step: 0, Kind: sim.EventCrash, Node: 0},
			{Step: 0, Kind: sim.EventCrash, Node: 2},
		},
	}
}

// TestChaosBrokenFailoverTripsInvariant proves the invariants have
// teeth: with the coordinator's re-scatter deliberately broken
// (DropRescatter), jobs routed to the crashed nodes are lost and the
// no-lost-jobs invariant must fire. The identical schedule with
// failover intact must pass clean — so the violation is the bug, not
// the schedule.
func TestChaosBrokenFailoverTripsInvariant(t *testing.T) {
	control, err := Run(Options{
		Seed:           -1,
		Schedule:       brokenFailoverSchedule(),
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if control.Failed() {
		t.Fatalf("control run (working failover) violated invariants: %v", control.Violations)
	}

	broken, err := Run(Options{
		Seed:           -1,
		Schedule:       brokenFailoverSchedule(),
		RequestTimeout: 2 * time.Second,
		DropRescatter:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tripped := false
	for _, v := range broken.Violations {
		if v.Invariant == InvJobs {
			tripped = true
		}
	}
	if !tripped {
		t.Errorf("broken failover not caught: want a %s violation, got %v", InvJobs, broken.Violations)
	}
}

// warmRestartSchedule cycles a crash/restart through every node, with
// a probe round after each fault so routing follows health: step 0 is
// fault-free (seeding the probe job onto its primary's disk), then
// each node in turn is killed for a step and restarted the next.
// Whichever node owns the probe job, its restart lands on a warm disk
// — so a full cycle forces at least one warm-restart check.
func warmRestartSchedule(nodes int) *sim.Schedule {
	s := &sim.Schedule{Seed: -2, Nodes: nodes, Steps: 2*nodes + 1}
	step := 1
	for i := 0; i < nodes; i++ {
		s.Events = append(s.Events,
			sim.Event{Step: step, Kind: sim.EventCrash, Node: i},
			sim.Event{Step: step, Kind: sim.EventProbe},
		)
		step++
		s.Events = append(s.Events,
			sim.Event{Step: step, Kind: sim.EventRestart, Node: i},
			sim.Event{Step: step, Kind: sim.EventProbe},
		)
		step++
	}
	return s
}

// TestChaosWarmRestart drives kill-and-restart schedules against a
// persist-enabled cluster: every invariant must hold — including the
// warm-restart one, which must actually have run — proving a restarted
// backend answers previously-persisted jobs from disk with zero pool
// work, and that the store's crash recovery never corrupts an answer.
func TestChaosWarmRestart(t *testing.T) {
	rep, err := Run(Options{Seed: -2, Schedule: warmRestartSchedule(3), Persist: true})
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if rep.Failed() {
		for _, v := range rep.Violations {
			t.Errorf("%s", v)
		}
		t.Logf("event log:\n%s", strings.Join(rep.Log, "\n"))
	}
	if rep.WarmChecks == 0 {
		t.Error("schedule restarted every node yet no warm-restart check ran — the persist tier never held the probe job")
	}

	// A generated kill schedule over a persist-enabled cluster must hold
	// the same invariants: recovery runs against whatever the crash left.
	rep, err = Run(Options{Seed: 3, Persist: true})
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if rep.Failed() {
		for _, v := range rep.Violations {
			t.Errorf("seeded persist run: %s", v)
		}
		t.Logf("event log:\n%s", strings.Join(rep.Log, "\n"))
	}
}

// warmJoinSchedule cycles a leave/join through every node, with probe
// rounds keeping health current. Step 0 is fault-free: the sweep and
// the locality probes run, so the probe job is computed and persisted
// by its ring owner. Then each node in turn leaves (its shards —
// probe job included, when it owns it — migrate to the survivors and
// its disk is wiped) and rejoins the next step (the coordinator
// migrates its shard back onto its cold disk). Whichever node owns
// the probe job, its rejoin therefore lands the job on a freshly
// wiped disk via migration alone — forcing at least one warm-join
// check across the cycle.
func warmJoinSchedule(nodes int) *sim.Schedule {
	s := &sim.Schedule{Seed: -3, Nodes: nodes, Steps: 2*nodes + 1}
	step := 1
	for i := 0; i < nodes; i++ {
		s.Events = append(s.Events,
			sim.Event{Step: step, Kind: sim.EventLeave, Node: i},
			sim.Event{Step: step, Kind: sim.EventProbe},
		)
		step++
		s.Events = append(s.Events,
			sim.Event{Step: step, Kind: sim.EventJoin, Node: i},
			sim.Event{Step: step, Kind: sim.EventProbe},
		)
		step++
	}
	return s
}

// TestChaosWarmJoin drives live membership churn against a
// persist-enabled cluster: every invariant must hold — including the
// warm-join one, which must actually have run — proving a node that
// joins with a wiped disk answers its migrated shard memoized, with
// zero pool work, before any recomputation could have warmed it.
func TestChaosWarmJoin(t *testing.T) {
	rep, err := Run(Options{Seed: -3, Schedule: warmJoinSchedule(3), Persist: true, Membership: true})
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if rep.Failed() {
		for _, v := range rep.Violations {
			t.Errorf("%s", v)
		}
		t.Logf("event log:\n%s", strings.Join(rep.Log, "\n"))
	}
	if rep.WarmJoinChecks == 0 {
		t.Error("schedule cycled every node through leave/join yet no warm-join check ran — migration never delivered the probe job")
	}
}

// TestChaosMembershipSchedules runs generated schedules with the
// membership event class enabled: joins and leaves interleave with
// crashes, partitions, latency, and skew, and every invariant must
// still hold.
func TestChaosMembershipSchedules(t *testing.T) {
	n := schedules(t)
	for i := 0; i < n; i++ {
		seed := int64(100 + i)
		rep, err := Run(Options{Seed: seed, Membership: true, Persist: true})
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d: %d invariant violation(s); reproduce with Run(Options{Seed: %d, Membership: true, Persist: true})",
				seed, len(rep.Violations), seed)
			for _, v := range rep.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			t.Logf("seed %d schedule:\n%s", seed, rep.Schedule.Log())
			t.Logf("seed %d event log:\n%s", seed, strings.Join(rep.Log, "\n"))
		}
	}
}
