// Package chaos is the deterministic cluster-simulation harness: it
// deploys an in-process vcached cluster behind fault gates, applies a
// seeded sim.Schedule of crashes, restarts, partitions, latency spikes,
// and clock skew, runs a sweep after every step, and checks the
// distributed-systems invariants the cluster must keep — no lost or
// duplicated jobs, byte-identical results against a single-node oracle,
// memoizer locality across failover, admission-gauge conservation at
// quiesce, trace stitching across every hop (including failover hops),
// and no goroutine leaks at teardown. Every run's event log is a pure
// function of its seed, so any violation is replayable from the seed
// alone.
package chaos

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"primecache/internal/obs"
	"primecache/internal/persist"
	"primecache/internal/server"
	"primecache/internal/sim"
)

// gate sits between a node's listener and its handler, modelling the
// network path the coordinator sees: severed while the node is crashed
// or partitioned, slowed during a latency spike, transparent otherwise.
type gate struct {
	mu      sync.Mutex
	down    bool
	latency time.Duration
	inner   http.Handler
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	down, lat, inner := g.down, g.latency, g.inner
	g.mu.Unlock()
	if down || inner == nil {
		// Sever the connection without an HTTP response, like a dead
		// host: the client sees a transport failure, not an envelope.
		panic(http.ErrAbortHandler)
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	inner.ServeHTTP(w, r)
}

func (g *gate) set(fn func(*gate)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	fn(g)
}

// node is one simulated vcached backend: a real server.Server behind a
// gate, on a skewable clock, restartable in place (the listener — and
// therefore the URL the ring hashes — survives a crash; the server's
// memory state does not, while its persist directory, when configured,
// survives like a disk would).
type node struct {
	idx     int
	opts    server.Options
	dir     string // persist directory surviving restarts; "" = memory-only
	gate    *gate
	ts      *httptest.Server
	setSkew func(time.Duration)

	mu  sync.Mutex
	srv *server.Server
	up  bool
	gen int // boot generation, bumped on every start
}

// newNode boots one backend. nopts is copied; its Clock is replaced by
// the node's own skewable clock. A non-empty dir gives the node a
// disk-backed memo tier whose contents outlive crash/restart cycles.
func newNode(idx int, nopts server.Options, dir string) *node {
	n := &node{idx: idx, opts: nopts, dir: dir, gate: &gate{}}
	n.opts.Clock, n.setSkew = sim.NewOffset(sim.Real)
	n.ts = httptest.NewServer(n.gate)
	n.start()
	return n
}

// start boots a fresh server behind the gate (initial boot and every
// restart): empty memoizer, zeroed metrics, fresh tracer —
// crash-restart loses memory state. A persist-configured node reopens
// its directory, running the store's crash recovery against whatever
// the dying incarnation left on disk. The tracer's origin carries the
// boot generation so span IDs from a pre-crash incarnation can never
// collide with post-restart ones inside the same stitched trace.
func (n *node) start() {
	n.mu.Lock()
	n.gen++
	gen := n.gen
	n.mu.Unlock()
	opts := n.opts
	opts.Tracer = obs.NewTracer(obs.TracerOptions{
		Origin:   fmt.Sprintf("node-%d.%d", n.idx, gen),
		Clock:    opts.Clock,
		Capacity: 1024,
	})
	if n.dir != "" {
		store, err := persist.Open(persist.Options{Dir: n.dir})
		if err != nil {
			// Open fails open on data corruption (that is the store's
			// contract, exercised by its own tests); an error here means
			// the harness itself lost its temp dir — unrecoverable.
			panic(fmt.Sprintf("chaos: node %d reopening persist dir: %v", n.idx, err))
		}
		opts.Persist = store
	}
	srv := server.New(opts)
	n.mu.Lock()
	n.srv = srv
	n.up = true
	n.mu.Unlock()
	n.gate.set(func(g *gate) { g.down = false; g.inner = srv.Handler() })
}

// crash kills the process: the gate severs new requests, in-flight
// connections are cut, and the server (memo, pool, metrics) is gone.
func (n *node) crash() {
	n.gate.set(func(g *gate) { g.down = true; g.inner = nil })
	n.mu.Lock()
	srv := n.srv
	n.srv = nil
	n.up = false
	n.mu.Unlock()
	n.ts.CloseClientConnections()
	if srv != nil {
		srv.Close()
	}
}

// decommission retires the node after it has left the cluster: the
// process dies and — unlike a crash, where the disk survives — its
// persist directory is wiped. The listener (and so the URL identity)
// stays, so a later join reuses the same ring name with genuinely cold
// state.
func (n *node) decommission() {
	n.crash()
	if n.dir != "" {
		if err := os.RemoveAll(n.dir); err != nil {
			panic(fmt.Sprintf("chaos: node %d wiping persist dir: %v", n.idx, err))
		}
		if err := os.MkdirAll(n.dir, 0o755); err != nil {
			panic(fmt.Sprintf("chaos: node %d recreating persist dir: %v", n.idx, err))
		}
	}
}

// partition cuts the coordinator↔node link but leaves the process —
// and its memoizer — running.
func (n *node) partition() {
	n.gate.set(func(g *gate) { g.down = true })
	n.ts.CloseClientConnections()
}

// heal reconnects a partitioned node.
func (n *node) heal() {
	n.gate.set(func(g *gate) { g.down = false })
}

// spike sets the added per-request service latency.
func (n *node) spike(d time.Duration) {
	n.gate.set(func(g *gate) { g.latency = d })
}

// server returns the live server, or nil while crashed.
func (n *node) server() *server.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// live reports whether the process is running (a partitioned node is
// live; a crashed one is not).
func (n *node) live() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up
}

// close tears the node down for good.
func (n *node) close() {
	n.ts.CloseClientConnections()
	n.ts.Close()
	n.mu.Lock()
	srv := n.srv
	n.srv = nil
	n.up = false
	n.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}
