package workloads

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"primecache/internal/cache"
)

func randMatrix(rows, cols int, base uint64, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols, base)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

func TestMatrixAddressing(t *testing.T) {
	m := NewMatrix(10, 5, 1000)
	m.Set(3, 2, 7.5)
	if m.At(3, 2) != 7.5 {
		t.Error("At/Set mismatch")
	}
	if got := m.WordAddr(3, 2); got != 1000+3+2*10 {
		t.Errorf("WordAddr = %d, want %d", got, 1023)
	}
}

func TestBlockedMatMulCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, blk := range []int{1, 3, 8, 16, 100} {
		a := randMatrix(17, 13, 0, rng)
		b := randMatrix(13, 11, 4096, rng)
		c := NewMatrix(17, 11, 8192)
		ref := NewMatrix(17, 11, 8192)
		if err := BlockedMatMul(a, b, c, blk, nil); err != nil {
			t.Fatal(err)
		}
		if err := MatMulReference(a, b, ref); err != nil {
			t.Fatal(err)
		}
		for i := range c.Data {
			if math.Abs(c.Data[i]-ref.Data[i]) > 1e-9 {
				t.Fatalf("blk=%d: element %d = %v, want %v", blk, i, c.Data[i], ref.Data[i])
			}
		}
	}
}

func TestBlockedMatMulShapeErrors(t *testing.T) {
	a := NewMatrix(3, 4, 0)
	b := NewMatrix(5, 6, 0)
	c := NewMatrix(3, 6, 0)
	if err := BlockedMatMul(a, b, c, 2, nil); err == nil {
		t.Error("shape mismatch accepted")
	}
	b2 := NewMatrix(4, 6, 0)
	if err := BlockedMatMul(a, b2, c, 0, nil); err == nil {
		t.Error("zero block accepted")
	}
	if err := MatMulReference(a, b, c); err == nil {
		t.Error("reference shape mismatch accepted")
	}
}

func TestBlockedMatMulEmitsReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(8, 8, 0, rng)
	b := randMatrix(8, 8, 1000, rng)
	c := NewMatrix(8, 8, 2000)
	mem, _ := cache.NewDirect(64)
	if err := BlockedMatMul(a, b, c, 4, mem); err != nil {
		t.Fatal(err)
	}
	s := mem.Stats()
	// Eight 4×4×4 tiles: per tile 16 (j,k) pairs × (1 B-load + 4 rows ×
	// (2 loads + 1 store)) = 208 → 1664 accesses, 512 of them stores.
	if s.Accesses != 1664 {
		t.Errorf("accesses = %d, want 1664", s.Accesses)
	}
	if s.Writes != 512 {
		t.Errorf("writes = %d, want 512", s.Writes)
	}
}

func TestBlockedLUCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, blk := range []int{1, 2, 5, 16, 64} {
		n := 24
		a := randMatrix(n, n, 0, rng)
		for i := 0; i < n; i++ { // diagonal dominance for pivot-free LU
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		orig := NewMatrix(n, n, 0)
		copy(orig.Data, a.Data)
		if err := BlockedLU(a, blk, nil); err != nil {
			t.Fatalf("blk=%d: %v", blk, err)
		}
		rec := LUReconstruct(a)
		for i := range rec.Data {
			if math.Abs(rec.Data[i]-orig.Data[i]) > 1e-8 {
				t.Fatalf("blk=%d: L·U element %d = %v, want %v", blk, i, rec.Data[i], orig.Data[i])
			}
		}
	}
}

func TestBlockedLUErrors(t *testing.T) {
	if err := BlockedLU(NewMatrix(3, 4, 0), 2, nil); err == nil {
		t.Error("non-square accepted")
	}
	if err := BlockedLU(NewMatrix(3, 3, 0), 0, nil); err == nil {
		t.Error("zero block accepted")
	}
	z := NewMatrix(3, 3, 0) // all zeros → zero pivot
	if err := BlockedLU(z, 2, nil); err == nil {
		t.Error("zero pivot accepted")
	}
}

func TestFFT2DMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][2]int{{4, 4}, {8, 4}, {4, 8}, {16, 16}, {64, 8}} {
		b1, b2 := dims[0], dims[1]
		n := b1 * b2
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		want := FFTReference(x)
		got := make([]complex128, n)
		copy(got, x)
		if err := FFT2D(got, b1, b2, 0, nil); err != nil {
			t.Fatal(err)
		}
		// FFT2D leaves X[k2 + B1·k1] at got[k1 + B2·k2].
		for k1 := 0; k1 < b2; k1++ {
			for k2 := 0; k2 < b1; k2++ {
				g := got[k1+b2*k2]
				w := want[k2+b1*k1]
				if cmplx.Abs(g-w) > 1e-8*(1+cmplx.Abs(w)) {
					t.Fatalf("B1=%d B2=%d: X[%d,%d] = %v, want %v", b1, b2, k1, k2, g, w)
				}
			}
		}
	}
}

func TestFFT2DErrors(t *testing.T) {
	x := make([]complex128, 16)
	if err := FFT2D(x, 3, 5, 0, nil); err == nil {
		t.Error("non-power-of-two factors accepted")
	}
	if err := FFT2D(x, 8, 4, 0, nil); err == nil {
		t.Error("B1·B2 ≠ N accepted")
	}
	if err := FFT2D(x[:15], 5, 3, 0, nil); err == nil {
		t.Error("non-power-of-two length accepted")
	}
}

func TestFFT2DStridePattern(t *testing.T) {
	// Row-FFT phase must access stride-B2 addresses: with B2 = 32 and a
	// direct-mapped cache of 32 lines, the row phase folds onto one line
	// and conflicts; the unit-stride column phase does not.
	const b1, b2 = 64, 32
	x := make([]complex128, b1*b2)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	mem, _ := cache.NewDirect(32)
	if err := FFT2D(x, b1, b2, 0, mem); err != nil {
		t.Fatal(err)
	}
	if s := mem.Stats(); s.Conflict == 0 {
		t.Error("expected conflicts from the stride-B2 row phase")
	}
}

func TestSAXPY(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{10, 20, 30, 40}
	mem, _ := cache.NewDirect(16)
	if err := SAXPY(2, x, y, 0, 100, 1, 1, 4, mem); err != nil {
		t.Fatal(err)
	}
	want := []float64{12, 24, 36, 48}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	if s := mem.Stats(); s.Accesses != 12 || s.Writes != 4 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSAXPYStridedAndErrors(t *testing.T) {
	x := make([]float64, 10)
	y := make([]float64, 10)
	for i := range x {
		x[i] = 1
	}
	if err := SAXPY(3, x, y, 0, 0, 3, 2, 4, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if y[2*i] != 3 {
			t.Errorf("y[%d] = %v, want 3", 2*i, y[2*i])
		}
	}
	if err := SAXPY(1, x, y, 0, 0, 3, 4, 4, nil); err == nil {
		t.Error("short buffer accepted")
	}
	if err := SAXPY(1, x, y, 0, 0, 0, 1, 4, nil); err == nil {
		t.Error("zero stride accepted")
	}
}

// TestMatMulPrimeVsDirect runs the real blocked kernel on tiles of a huge
// matrix whose leading dimension is a multiple of the direct-mapped cache
// size (LD = 300·8192): in the direct-mapped cache all columns of a tile
// fold onto the same sets and the k-sweep thrashes, while the prime-mapped
// cache sees columns spaced LD mod 8191 = 300 lines apart — the §4
// sub-block geometry — and stays conflict-free.
func TestMatMulPrimeVsDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const rows, inner, cols, ld, blk = 64, 16, 16, 300 * 8192, 16
	mk := func(base uint64) *Matrix {
		m := NewMatrixLD(rows, inner, ld, base)
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		return m
	}
	run := func(mem Memory) cache.Stats {
		a := mk(0)
		b := randMatrix(inner, cols, 1<<20, rng)
		c := NewMatrixLD(rows, cols, ld, 1<<26+128)
		if err := BlockedMatMul(a, b, c, blk, mem); err != nil {
			t.Fatal(err)
		}
		return mem.(*cache.Cache).Stats()
	}
	dm, _ := cache.NewDirect(8192)
	pm, _ := cache.NewPrime(13)
	direct, prime := run(dm), run(pm)
	if direct.Conflict == 0 {
		t.Fatal("direct-mapped tile sweep should thrash")
	}
	if prime.Conflict*20 >= direct.Conflict {
		t.Errorf("prime conflicts %d not ≪ direct %d", prime.Conflict, direct.Conflict)
	}
	if prime.MissRatio() >= direct.MissRatio() {
		t.Errorf("prime miss ratio %v ≥ direct %v", prime.MissRatio(), direct.MissRatio())
	}
}

// TestFFTPrimeVsDirect compares the two mappings on the real blocked FFT:
// with N = B1·B2 > C the row phase's power-of-two stride folds in the
// direct-mapped cache but stays spread in the prime-mapped one.
func TestFFTPrimeVsDirect(t *testing.T) {
	const b1, b2 = 128, 128
	mkInput := func() []complex128 {
		x := make([]complex128, b1*b2)
		for i := range x {
			x[i] = complex(float64(i%13)-6, float64(i%7)-3)
		}
		return x
	}
	dm, _ := cache.NewDirect(8192)
	pm, _ := cache.NewPrime(13)
	if err := FFT2D(mkInput(), b1, b2, 0, dm); err != nil {
		t.Fatal(err)
	}
	if err := FFT2D(mkInput(), b1, b2, 0, pm); err != nil {
		t.Fatal(err)
	}
	ds, ps := dm.Stats(), pm.Stats()
	if ds.Conflict == 0 {
		t.Fatal("direct-mapped FFT rows should conflict (128 > 8192/128)")
	}
	if ps.Conflict*20 >= ds.Conflict {
		t.Errorf("prime FFT conflicts %d not ≪ direct %d", ps.Conflict, ds.Conflict)
	}
	if ps.MissRatio() >= ds.MissRatio() {
		t.Errorf("prime miss ratio %v ≥ direct %v", ps.MissRatio(), ds.MissRatio())
	}
}

func TestGEMV(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a := randMatrix(7, 5, 0, rng)
	x := NewVector(5, 10000)
	y := NewVector(7, 20000)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	want := make([]float64, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			want[i] += a.At(i, j) * x.Data[j]
		}
	}
	mem, _ := cache.NewPrime(13)
	if err := GEMV(a, x, y, mem); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(y.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
	if mem.Stats().Accesses == 0 {
		t.Error("no trace emitted")
	}
	if err := GEMV(a, NewVector(4, 0), y, nil); err == nil {
		t.Error("shape mismatch accepted")
	}
}
