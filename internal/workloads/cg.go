package workloads

import (
	"fmt"
	"math"

	"primecache/internal/cache"
)

// Vector is a float64 vector bound to a word address range, the 1-D
// analogue of Matrix.
type Vector struct {
	// BaseWord is the word address of element 0.
	BaseWord uint64
	Data     []float64
}

// NewVector allocates an n-element zero vector based at baseWord.
func NewVector(n int, baseWord uint64) *Vector {
	return &Vector{BaseWord: baseWord, Data: make([]float64, n)}
}

func (v *Vector) load(mem Memory, stream, i int) float64 {
	mem.Access(cache.Access{Addr: (v.BaseWord + uint64(i)) * 8, Stream: stream})
	return v.Data[i]
}

func (v *Vector) store(mem Memory, stream, i int, x float64) {
	mem.Access(cache.Access{Addr: (v.BaseWord + uint64(i)) * 8, Write: true, Stream: stream})
	v.Data[i] = x
}

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	// Iterations actually performed.
	Iterations int
	// Residual is the final ‖b − A·x‖₂.
	Residual float64
	// Converged reports whether the residual dropped below the
	// tolerance.
	Converged bool
}

// ConjugateGradient solves A·x = b for symmetric positive-definite A,
// emitting every reference of its matvec / daxpy / dot steps into mem —
// the full memory life of an iterative solver, mixing unit-stride vector
// sweeps with column sweeps of A. x holds the initial guess and receives
// the solution.
func ConjugateGradient(a *Matrix, b, x *Vector, maxIter int, tol float64, mem Memory) (CGResult, error) {
	n := a.Rows
	if a.Cols != n {
		return CGResult{}, fmt.Errorf("workloads: CG needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b.Data) != n || len(x.Data) != n {
		return CGResult{}, fmt.Errorf("workloads: CG vector lengths %d,%d do not match n=%d", len(b.Data), len(x.Data), n)
	}
	if maxIter <= 0 || tol <= 0 {
		return CGResult{}, fmt.Errorf("workloads: CG needs positive maxIter and tol")
	}
	mm := sink(mem)

	// Work vectors live after x in the address space so their streams
	// are distinguishable.
	r := NewVector(n, x.BaseWord+uint64(n)+64)
	p := NewVector(n, r.BaseWord+uint64(n)+64)
	ap := NewVector(n, p.BaseWord+uint64(n)+64)

	matvec := func(dst *Vector, src *Vector) {
		for i := 0; i < n; i++ {
			dst.Data[i] = 0
		}
		// Column-major SAXPY formulation: dst += A(:,j)·src[j].
		for j := 0; j < n; j++ {
			sj := src.load(mm, StreamB, j)
			for i := 0; i < n; i++ {
				aij := a.load(mm, StreamA, i, j)
				dst.store(mm, StreamC, i, dst.Data[i]+aij*sj)
			}
		}
	}
	dot := func(u, v *Vector, su, sv int) float64 {
		var s float64
		for i := 0; i < n; i++ {
			s += u.load(mm, su, i) * v.load(mm, sv, i)
		}
		return s
	}

	// r = b − A·x; p = r.
	matvec(ap, x)
	for i := 0; i < n; i++ {
		ri := b.load(mm, StreamB, i) - ap.load(mm, StreamC, i)
		r.store(mm, StreamA, i, ri)
		p.store(mm, StreamB, i, ri)
	}
	rr := dot(r, r, StreamA, StreamA)

	res := CGResult{}
	for k := 0; k < maxIter; k++ {
		res.Iterations = k + 1
		matvec(ap, p)
		pap := dot(p, ap, StreamB, StreamC)
		if pap == 0 {
			break
		}
		alpha := rr / pap
		for i := 0; i < n; i++ {
			x.store(mm, StreamB, i, x.load(mm, StreamB, i)+alpha*p.load(mm, StreamB, i))
			r.store(mm, StreamA, i, r.load(mm, StreamA, i)-alpha*ap.load(mm, StreamC, i))
		}
		rrNew := dot(r, r, StreamA, StreamA)
		if math.Sqrt(rrNew) < tol {
			res.Residual = math.Sqrt(rrNew)
			res.Converged = true
			return res, nil
		}
		beta := rrNew / rr
		for i := 0; i < n; i++ {
			p.store(mm, StreamB, i, r.load(mm, StreamA, i)+beta*p.load(mm, StreamB, i))
		}
		rr = rrNew
	}
	res.Residual = math.Sqrt(rr)
	res.Converged = res.Residual < tol
	return res, nil
}
