package workloads

import (
	"math"
	"math/rand"
	"testing"

	"primecache/internal/cache"
)

// spdMatrix builds a random symmetric positive-definite matrix.
func spdMatrix(n int, base uint64, rng *rand.Rand) *Matrix {
	m := NewMatrix(n, n, base)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.Float64() - 0.5
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
		m.Set(i, i, m.At(i, i)+float64(n)) // diagonal dominance → SPD
	}
	return m
}

func TestConjugateGradientSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 32
	a := spdMatrix(n, 0, rng)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.Float64()*2 - 1
	}
	b := NewVector(n, 1<<16)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.At(i, j) * xTrue[j]
		}
		b.Data[i] = s
	}
	x := NewVector(n, 1<<17)
	res, err := ConjugateGradient(a, b, x, 200, 1e-9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	for i := range xTrue {
		if math.Abs(x.Data[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x.Data[i], xTrue[i])
		}
	}
	if res.Iterations > n+5 {
		t.Errorf("CG took %d iterations for n=%d", res.Iterations, n)
	}
}

func TestConjugateGradientErrors(t *testing.T) {
	a := NewMatrix(3, 4, 0)
	if _, err := ConjugateGradient(a, NewVector(3, 0), NewVector(3, 0), 10, 1e-6, nil); err == nil {
		t.Error("non-square accepted")
	}
	sq := NewMatrix(3, 3, 0)
	if _, err := ConjugateGradient(sq, NewVector(2, 0), NewVector(3, 0), 10, 1e-6, nil); err == nil {
		t.Error("bad vector length accepted")
	}
	if _, err := ConjugateGradient(sq, NewVector(3, 0), NewVector(3, 0), 0, 1e-6, nil); err == nil {
		t.Error("zero maxIter accepted")
	}
	if _, err := ConjugateGradient(sq, NewVector(3, 0), NewVector(3, 0), 5, 0, nil); err == nil {
		t.Error("zero tol accepted")
	}
}

func TestConjugateGradientTraced(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 24
	// Bases chosen so their residues mod 8191 don't overlap A's sets
	// (powers of two land near set 0 and would cross-interfere — itself
	// a nice demonstration, but not this test's point).
	a := spdMatrix(n, 0, rng)
	b := NewVector(n, 100000)
	for i := range b.Data {
		b.Data[i] = rng.Float64()
	}
	x := NewVector(n, 200000)
	mem, _ := cache.NewPrime(13)
	res, err := ConjugateGradient(a, b, x, 100, 1e-8, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("traced CG did not converge")
	}
	s := mem.Stats()
	if s.Accesses == 0 || s.Writes == 0 {
		t.Errorf("trace not emitted: %+v", s)
	}
	// Everything fits in the 8191-line cache: misses are the compulsory
	// loads only — no conflicts at all — and the solve runs hot.
	if s.Conflict != 0 {
		t.Errorf("conflicts = %d, want 0 for an in-cache solve", s.Conflict)
	}
	if s.HitRatio() < 0.9 {
		t.Errorf("hit ratio %v, want ≥ 0.9 (compulsory-only misses)", s.HitRatio())
	}
}
