package workloads

import (
	"math"
	"math/rand"
	"testing"

	"primecache/internal/cache"
)

func TestTransposeCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMatrix(7, 11, 0, rng)
	b := NewMatrix(11, 7, 4096)
	if err := Transpose(a, b, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		for j := 0; j < 11; j++ {
			if a.At(i, j) != b.At(j, i) {
				t.Fatalf("b(%d,%d) = %v, want %v", j, i, b.At(j, i), a.At(i, j))
			}
		}
	}
	if err := Transpose(a, NewMatrix(7, 11, 0), nil); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestBlockedTransposeMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, blk := range []int{1, 3, 8, 64} {
		a := randMatrix(13, 9, 0, rng)
		plain := NewMatrix(9, 13, 0)
		blocked := NewMatrix(9, 13, 0)
		if err := Transpose(a, plain, nil); err != nil {
			t.Fatal(err)
		}
		if err := BlockedTranspose(a, blocked, blk, nil); err != nil {
			t.Fatal(err)
		}
		for i := range plain.Data {
			if plain.Data[i] != blocked.Data[i] {
				t.Fatalf("blk=%d element %d differs", blk, i)
			}
		}
	}
	if err := BlockedTranspose(randMatrix(4, 4, 0, rng), NewMatrix(4, 4, 0), 0, nil); err == nil {
		t.Error("zero block accepted")
	}
	if err := BlockedTranspose(randMatrix(4, 5, 0, rng), NewMatrix(4, 5, 0), 2, nil); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestTransposeEmitsBothStreams(t *testing.T) {
	a := NewMatrix(8, 8, 0)
	b := NewMatrix(8, 8, 1024)
	mem, _ := cache.NewDirect(64)
	if err := Transpose(a, b, mem); err != nil {
		t.Fatal(err)
	}
	s := mem.Stats()
	if s.Reads != 64 || s.Writes != 64 {
		t.Errorf("reads/writes = %d/%d, want 64/64", s.Reads, s.Writes)
	}
}

func TestStencil5Correct(t *testing.T) {
	src := NewMatrix(4, 4, 0)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	dst := NewMatrix(4, 4, 100)
	if err := Stencil5(src, dst, nil); err != nil {
		t.Fatal(err)
	}
	// Interior points (1,1),(2,1),(1,2),(2,2).
	want := (src.At(1, 1) + src.At(0, 1) + src.At(2, 1) + src.At(1, 0) + src.At(1, 2)) / 5
	if math.Abs(dst.At(1, 1)-want) > 1e-12 {
		t.Errorf("dst(1,1) = %v, want %v", dst.At(1, 1), want)
	}
	if dst.At(0, 0) != 0 || dst.At(3, 3) != 0 {
		t.Error("boundary written")
	}
	if err := Stencil5(src, NewMatrix(5, 4, 0), nil); err == nil {
		t.Error("shape mismatch accepted")
	}
	if err := Stencil5(NewMatrix(2, 2, 0), NewMatrix(2, 2, 0), nil); err == nil {
		t.Error("tiny matrix accepted")
	}
}

// TestTransposePowerOfTwoLDPrimeVsDirect: a transpose with LD = 8192 on
// both caches. Direct: write stream's stride-8192 rows fold onto a single
// set per row — interference against the unit-stride read stream; prime:
// spread.
func TestTransposePowerOfTwoLDPrimeVsDirect(t *testing.T) {
	run := func(mem Memory) cache.Stats {
		a := NewMatrixLD(64, 16, 8192, 0)
		b := NewMatrixLD(16, 64, 8192, 1<<25)
		for i := range a.Data {
			a.Data[i] = float64(i)
		}
		if err := BlockedTranspose(a, b, 16, mem); err != nil {
			t.Fatal(err)
		}
		return mem.(*cache.Cache).Stats()
	}
	dm, _ := cache.NewDirect(8192)
	pm, _ := cache.NewPrime(13)
	direct, prime := run(dm), run(pm)
	if prime.MissRatio() > direct.MissRatio() {
		t.Errorf("prime miss ratio %v above direct %v", prime.MissRatio(), direct.MissRatio())
	}
}
