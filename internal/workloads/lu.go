package workloads

import (
	"fmt"
	"math"
)

// BlockedLU factors a in place into L·U (unit-diagonal L below the
// diagonal, U on and above) using right-looking blocked elimination with
// block size blk and no pivoting — Armstrong's blocked LU, the paper's
// example of a kernel with blocking factor b² and reuse factor 3b/2. The
// matrix must be square and (for stability, since there is no pivoting)
// should be diagonally dominant. Every element reference is emitted into
// mem.
func BlockedLU(a *Matrix, blk int, mem Memory) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("workloads: LU needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if blk <= 0 {
		return fmt.Errorf("workloads: blocking factor must be positive, got %d", blk)
	}
	mm := sink(mem)
	n := a.Rows
	for kk := 0; kk < n; kk += blk {
		kmax := min(kk+blk, n)
		// Factor the diagonal panel A[kk:n, kk:kmax] unblocked.
		for k := kk; k < kmax; k++ {
			piv := a.load(mm, StreamA, k, k)
			if math.Abs(piv) < 1e-300 {
				return fmt.Errorf("workloads: zero pivot at %d (LU without pivoting)", k)
			}
			for i := k + 1; i < n; i++ {
				lik := a.load(mm, StreamA, i, k) / piv
				a.store(mm, StreamA, i, k, lik)
			}
			for j := k + 1; j < kmax; j++ {
				akj := a.load(mm, StreamA, k, j)
				for i := k + 1; i < n; i++ {
					aij := a.load(mm, StreamA, i, j)
					lik := a.load(mm, StreamA, i, k)
					a.store(mm, StreamA, i, j, aij-lik*akj)
				}
			}
		}
		// Update the trailing row panel: U[kk:kmax, kmax:n] by forward
		// substitution with the unit-lower block L[kk:kmax, kk:kmax].
		for j := kmax; j < n; j++ {
			for k := kk; k < kmax; k++ {
				akj := a.load(mm, StreamB, k, j)
				for i := k + 1; i < kmax; i++ {
					aij := a.load(mm, StreamB, i, j)
					lik := a.load(mm, StreamA, i, k)
					a.store(mm, StreamB, i, j, aij-lik*akj)
				}
			}
		}
		// Rank-blk update of the trailing sub-matrix.
		for j := kmax; j < n; j++ {
			for k := kk; k < kmax; k++ {
				ukj := a.load(mm, StreamB, k, j)
				for i := kmax; i < n; i++ {
					aij := a.load(mm, StreamC, i, j)
					lik := a.load(mm, StreamA, i, k)
					a.store(mm, StreamC, i, j, aij-lik*ukj)
				}
			}
		}
	}
	return nil
}

// LUReconstruct multiplies the packed L·U factors back into a fresh
// matrix, for validating BlockedLU.
func LUReconstruct(lu *Matrix) *Matrix {
	n := lu.Rows
	out := NewMatrix(n, n, lu.BaseWord)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= min(i, j); k++ {
				var l float64
				if k == i {
					l = 1
				} else {
					l = lu.At(i, k)
				}
				s += l * lu.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}
